package ssmfp_test

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ssmfp"
)

// TestLiveStatusCongestedHopState pins the congested-hop view of the
// Status snapshot: the per-destination pending breakdown is exact and the
// parked count is present, and both survive the JSON round trip that
// /debug/ssmfp serves.
func TestLiveStatusCongestedHopState(t *testing.T) {
	// An hour-long tick freezes the protocol: nothing leaves the pending
	// rings, so the snapshot is deterministic.
	live := ssmfp.NewLiveNetwork(ssmfp.Line(3), ssmfp.LiveOptions{Seed: 1, Tick: time.Hour})
	defer live.Close()
	for i := 0; i < 3; i++ {
		if _, err := live.Send(0, 2, "far"); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := live.Send(0, 1, "near"); err != nil {
		t.Fatal(err)
	}

	st := live.Status()
	var q0 *ssmfp.LiveQueue
	for i := range st.Queues {
		if st.Queues[i].Proc == 0 {
			q0 = &st.Queues[i]
		}
	}
	if q0 == nil {
		t.Fatal("no queue row for proc 0")
	}
	if q0.Pending != 4 || q0.PendingByDest[2] != 3 || q0.PendingByDest[1] != 1 {
		t.Fatalf("pending breakdown wrong: %+v", q0)
	}
	if q0.Parked != 0 {
		t.Fatalf("parked = %d on an idle node", q0.Parked)
	}

	// The JSON form keeps the breakdown (this is what /debug/ssmfp shows).
	b, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	var back ssmfp.LiveStatus
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, q := range back.Queues {
		if q.Proc == 0 && q.PendingByDest[2] == 3 && q.PendingByDest[1] == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("pendingByDest lost in JSON round trip: %s", b)
	}
}

// TestLiveNetworkMetricsHandler scrapes the live network's Prometheus
// endpoint and checks the protocol series are there with sane values.
func TestLiveNetworkMetricsHandler(t *testing.T) {
	live := ssmfp.NewLiveNetwork(ssmfp.Ring(4), ssmfp.LiveOptions{Seed: 2})
	defer live.Close()
	if _, err := live.Send(0, 2, "scrape-me"); err != nil {
		t.Fatal(err)
	}
	if !live.WaitDelivered(1, 10*time.Second) {
		t.Fatal("not delivered")
	}

	rec := httptest.NewRecorder()
	live.MetricsHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("GET /metrics: %d", rec.Code)
	}
	body := rec.Body.String()
	for _, series := range []string{
		"ssmfp_sends_total 1",
		"ssmfp_deliveries_total 1",
		"ssmfp_frames_sent_total{kind=\"offer\"}",
		"ssmfp_buf_occupancy",
		"ssmfp_wire_bytes_sent_total",
	} {
		if !strings.Contains(body, series) {
			t.Fatalf("scrape missing %q:\n%s", series, body)
		}
	}
}
