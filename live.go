package ssmfp

import (
	"net/http"
	"time"

	"ssmfp/internal/msgpass"
	"ssmfp/internal/telemetry"
)

// LiveNetwork runs the protocol in the message-passing model: one
// goroutine per processor, Go channels as asynchronous links, distance-
// vector routing gossip, and an offer/accept/cancel handshake realizing
// the hop transfer with exactly-once semantics — the engineering answer to
// the paper's closing open problem. Links may drop frames; retransmission
// recovers them.
type LiveNetwork struct {
	nw *msgpass.Network
}

// LiveOptions tunes a LiveNetwork.
type LiveOptions struct {
	// Seed drives loss and corruption randomness.
	Seed int64
	// LossRate drops each frame with this probability (0..1).
	LossRate float64
	// DupRate delivers each frame twice with this probability (0..1).
	DupRate float64
	// Latency and Jitter delay each frame by base + uniform extra; jitter
	// makes consecutive frames overtake each other (genuine reordering).
	Latency time.Duration
	Jitter  time.Duration
	// BandwidthBps caps each directed link at this many encoded frame
	// bytes per second (0 = unlimited), modelling a real line rate.
	BandwidthBps int
	// CorruptStart randomizes the initial routing state and plants garbage
	// messages in buffers.
	CorruptStart bool
	// Tick is the gossip/retransmission period (default 200µs).
	Tick time.Duration
}

// NewLiveNetwork builds and starts a message-passing deployment on t.
// Call Close when done.
func NewLiveNetwork(t *Topology, opts LiveOptions) *LiveNetwork {
	nw := msgpass.New(t, msgpass.Options{
		Seed:         opts.Seed,
		LossRate:     opts.LossRate,
		DupRate:      opts.DupRate,
		Latency:      opts.Latency,
		Jitter:       opts.Jitter,
		BandwidthBps: opts.BandwidthBps,
		CorruptInit:  opts.CorruptStart,
		Tick:         opts.Tick,
	})
	nw.Start()
	return &LiveNetwork{nw: nw}
}

// ErrClosed is returned by Send on a LiveNetwork that has been closed.
var ErrClosed = msgpass.ErrStopped

// Send injects a message and returns a tracking ID. After Close it
// returns ErrClosed instead of injecting (load generators race shutdown;
// a closed network must refuse work, not panic).
func (l *LiveNetwork) Send(src, dst ProcessID, payload string) (uint64, error) {
	return l.nw.Send(src, payload, dst)
}

// WaitDelivered blocks until at least k messages (valid or not) have been
// delivered, or the timeout elapses. On a closed network it returns
// promptly: true if the threshold was already met, false otherwise.
func (l *LiveNetwork) WaitDelivered(k int, timeout time.Duration) bool {
	return l.nw.WaitDelivered(k, timeout)
}

// Deliveries returns a snapshot of deliveries so far.
func (l *LiveNetwork) Deliveries() []Delivery {
	var out []Delivery
	for _, d := range l.nw.Deliveries() {
		out = append(out, Delivery{
			Payload: d.Msg.Payload, From: d.Msg.Src, To: d.At, Valid: d.Msg.Valid,
		})
	}
	return out
}

// DeliveredExactlyOnce reports whether every UID in ids was delivered
// exactly once so far.
func (l *LiveNetwork) DeliveredExactlyOnce(ids ...uint64) bool {
	counts := make(map[uint64]int)
	for _, d := range l.nw.Deliveries() {
		counts[d.Msg.UID]++
	}
	for _, id := range ids {
		if counts[id] != 1 {
			return false
		}
	}
	return true
}

// LiveStatus is a point-in-time introspection snapshot of a running
// LiveNetwork: delivery progress, wire-level frame counters, and per-node
// queue occupancy.
type LiveStatus struct {
	Deliveries     int         `json:"deliveries"`
	DVSent         int         `json:"dvSent"`
	OffersSent     int         `json:"offersSent"`
	AcceptsSent    int         `json:"acceptsSent"`
	CancelsSent    int         `json:"cancelsSent"`
	CancelAcksSent int         `json:"cancelAcksSent"`
	FramesLost     int         `json:"framesLost"` // loss injector + congestion drops
	Queues         []LiveQueue `json:"queues"`
}

// LiveQueue is one node's queue occupancy: unprocessed incoming frames,
// higher-layer sends not yet accepted, occupied buffers, offers parked
// while bufR is busy, and frames sitting in the node's outbound wire
// queues. All counts are exact at the snapshot instant (event-driven,
// not tick-sampled). PendingByDest breaks Pending down by destination —
// only destinations with queued messages appear, so a congested route
// is visible at a glance.
type LiveQueue struct {
	Proc          ProcessID         `json:"proc"`
	Inbox         int               `json:"inbox"`
	Pending       int               `json:"pending"`
	PendingByDest map[ProcessID]int `json:"pendingByDest,omitempty"`
	BufR          int               `json:"bufR"`
	BufE          int               `json:"bufE"`
	Parked        int               `json:"parked"`
	WireOut       int               `json:"wireOut"`
}

// Status snapshots the network's live counters; safe to call from any
// goroutine while the network runs.
func (l *LiveNetwork) Status() LiveStatus {
	st := l.nw.Stats()
	out := LiveStatus{
		Deliveries:     len(l.nw.Deliveries()),
		DVSent:         st.DVSent,
		OffersSent:     st.OffersSent,
		AcceptsSent:    st.AcceptsSent,
		CancelsSent:    st.CancelsSent,
		CancelAcksSent: st.CancelAcksSent,
		FramesLost:     st.LostInjected + st.LostCongestion,
	}
	for _, q := range l.nw.QueueDepths() {
		out.Queues = append(out.Queues, LiveQueue{
			Proc: q.Proc, Inbox: q.Inbox, Pending: q.Pending,
			PendingByDest: q.PendingByDest,
			BufR:          q.BufR, BufE: q.BufE, Parked: q.Parked, WireOut: q.WireOut,
		})
	}
	return out
}

// MetricsHandler returns the network's Prometheus text endpoint — mount
// it at /metrics (obs.HandlerWith does this for the debug mux). The
// handler stays valid after Close; it serves the final counter values.
func (l *LiveNetwork) MetricsHandler() http.Handler {
	return telemetry.Handler(l.nw.Telemetry())
}

// Close stops every processor goroutine and waits for them. Close is
// idempotent: further calls are no-ops, and a closed network keeps
// serving Deliveries, Status, and DeliveredExactlyOnce snapshots.
func (l *LiveNetwork) Close() { l.nw.Stop() }
