package ssmfp

import (
	"time"

	"ssmfp/internal/msgpass"
)

// LiveNetwork runs the protocol in the message-passing model: one
// goroutine per processor, Go channels as asynchronous links, distance-
// vector routing gossip, and an offer/accept/cancel handshake realizing
// the hop transfer with exactly-once semantics — the engineering answer to
// the paper's closing open problem. Links may drop frames; retransmission
// recovers them.
type LiveNetwork struct {
	nw *msgpass.Network
}

// LiveOptions tunes a LiveNetwork.
type LiveOptions struct {
	// Seed drives loss and corruption randomness.
	Seed int64
	// LossRate drops each frame with this probability (0..1).
	LossRate float64
	// DupRate delivers each frame twice with this probability (0..1).
	DupRate float64
	// CorruptStart randomizes the initial routing state and plants garbage
	// messages in buffers.
	CorruptStart bool
	// Tick is the gossip/retransmission period (default 200µs).
	Tick time.Duration
}

// NewLiveNetwork builds and starts a message-passing deployment on t.
// Call Close when done.
func NewLiveNetwork(t *Topology, opts LiveOptions) *LiveNetwork {
	nw := msgpass.New(t, msgpass.Options{
		Seed:        opts.Seed,
		LossRate:    opts.LossRate,
		DupRate:     opts.DupRate,
		CorruptInit: opts.CorruptStart,
		Tick:        opts.Tick,
	})
	nw.Start()
	return &LiveNetwork{nw: nw}
}

// Send injects a message and returns a tracking ID.
func (l *LiveNetwork) Send(src, dst ProcessID, payload string) uint64 {
	return l.nw.Send(src, payload, dst)
}

// WaitDelivered blocks until at least k messages (valid or not) have been
// delivered, or the timeout elapses.
func (l *LiveNetwork) WaitDelivered(k int, timeout time.Duration) bool {
	return l.nw.WaitDelivered(k, timeout)
}

// Deliveries returns a snapshot of deliveries so far.
func (l *LiveNetwork) Deliveries() []Delivery {
	var out []Delivery
	for _, d := range l.nw.Deliveries() {
		out = append(out, Delivery{
			Payload: d.Msg.Payload, From: d.Msg.Src, To: d.At, Valid: d.Msg.Valid,
		})
	}
	return out
}

// DeliveredExactlyOnce reports whether every UID in ids was delivered
// exactly once so far.
func (l *LiveNetwork) DeliveredExactlyOnce(ids ...uint64) bool {
	counts := make(map[uint64]int)
	for _, d := range l.nw.Deliveries() {
		counts[d.Msg.UID]++
	}
	for _, id := range ids {
		if counts[id] != 1 {
			return false
		}
	}
	return true
}

// Close stops every processor goroutine and waits for them.
func (l *LiveNetwork) Close() { l.nw.Stop() }
