package ssmfp

import (
	"ssmfp/internal/core"
	"ssmfp/internal/faults"
)

// InjectFaults strikes the network with count random transient faults —
// routing tables scrambled, buffered messages dropped, overwritten,
// cloned or recolored, queues shuffled, request bits flipped — between
// steps, and returns how many in-flight messages the strike may have
// touched. Those messages leave the exactly-once accounting (a fault can
// legitimately destroy or duplicate state it hits); every message sent
// after the strike is guaranteed again, which is what snap-stabilization
// means for mid-run faults. The seed argument makes strikes reproducible.
func (n *Network) InjectFaults(seed int64, count int) (compromised int) {
	inFlight := faults.InFlightValid(n.engine, n.g)
	n.tracker.MarkCompromised(inFlight...)
	n.tracker.MarkCompromised(faults.NewInjector(n.g, seed, nil).Strike(n.engine, count)...)
	faults.RearmRequests(n.engine, n.g)
	return n.tracker.Compromised()
}

// Pending reports how many higher-layer messages are enqueued but not yet
// accepted by R1 across the network.
func (n *Network) Pending() int {
	total := 0
	for p := 0; p < n.g.N(); p++ {
		total += len(n.engine.PeekStateOf(ProcessID(p)).(*core.Node).FW.Pending)
	}
	return total
}
