// Package ssmfp is a complete, executable reproduction of "A
// snap-stabilizing point-to-point communication protocol in
// message-switched networks" (Cournier, Dubois, Villain — IPDPS 2009).
//
// SSMFP solves the message forwarding problem — deliver every generated
// message to its destination once and only once — starting from ANY
// initial configuration: corrupted routing tables, garbage messages in
// buffers, scrambled fairness queues. A self-stabilizing silent routing
// algorithm A runs simultaneously with priority; SSMFP's two buffers per
// destination (reception and emission), message colors in {0..Δ}, and six
// guarded rules R1–R6 guarantee that no valid message is ever lost or
// duplicated, even while A is still repairing the routes.
//
// The package offers two ways to run the protocol:
//
//   - Network: the paper's locally-shared-memory state model, executed on
//     a deterministic guarded-action engine with pluggable daemons
//     (synchronous, central, distributed, weakly fair, adversarial) —
//     the setting of the paper's proofs and of every experiment in
//     EXPERIMENTS.md.
//
//   - LiveNetwork: a message-passing port (one goroutine per processor,
//     Go channels as links, offer/accept/cancel hop transfers with
//     retransmission) answering the paper's closing open problem with an
//     engineering artifact that keeps the exactly-once guarantee on lossy
//     asynchronous links.
//
// Quick start:
//
//	net := ssmfp.NewNetwork(ssmfp.Grid(3, 3), ssmfp.WithCorruptStart(42))
//	net.Send(0, 8, "hello through the rubble")
//	report := net.Run()
//	fmt.Println(report)           // delivered exactly once, SP satisfied
//
// The internal packages contain the full system inventory (state-model
// engine, daemons, routing, buffer graphs, checkers, workloads, metrics,
// trace rendering, experiment harness); see DESIGN.md for the map and
// EXPERIMENTS.md for the paper-versus-measured record.
package ssmfp
