package transport

import (
	"encoding/binary"
	"fmt"
	"io"

	"ssmfp/internal/graph"
)

// Wire format, version 1.
//
// A frame on a byte stream is a big-endian uint32 length prefix followed
// by a body of exactly that many bytes:
//
//	frame   := u32be(len(body)) body
//	body    := u8(version=1) u8(kind) uvarint(from) payload
//	payload := dv | offer | ack            (selected by kind)
//	dv      := uvarint(n) n × varint(dist)          (zigzag)
//	offer   := uvarint(dest) uvarint(seq) msg
//	ack     := uvarint(dest) uvarint(seq)           (accept/cancel/cancelAck)
//	msg     := uvarint(len(payload)) payload-bytes varint(color)
//	           uvarint(uid) uvarint(src) uvarint(dest) u8(valid)
//
// Varints are Go's encoding/binary varints; signed fields use zigzag.
// The body length is capped at MaxFrameBytes; ReadFrame rejects longer
// prefixes without allocating, so a corrupted or hostile peer cannot make
// a node allocate unbounded memory. Decoding is total: any byte slice
// either decodes to a well-formed Frame or returns an error — the fuzz
// test FuzzFrameCodec holds the codec to that plus round-trip identity.

// CodecVersion is the wire-format version this build writes and accepts.
const CodecVersion = 1

// MaxFrameBytes bounds one encoded frame body. The largest legitimate
// frame is an offer whose message payload is application data; 1 MiB
// leaves generous headroom while keeping the allocation bounded.
const MaxFrameBytes = 1 << 20

// AppendFrame appends f's encoded body (without the length prefix) to buf
// and returns the extended slice.
func AppendFrame(buf []byte, f *Frame) []byte {
	buf = append(buf, CodecVersion, byte(f.Kind()))
	buf = binary.AppendUvarint(buf, uint64(f.From))
	switch k := f.Kind(); k {
	case KindDV:
		buf = binary.AppendUvarint(buf, uint64(len(f.DV)))
		for _, d := range f.DV {
			buf = binary.AppendVarint(buf, int64(d))
		}
	case KindOffer:
		buf = binary.AppendUvarint(buf, uint64(f.Offer.Dest))
		buf = binary.AppendUvarint(buf, f.Offer.Seq)
		m := &f.Offer.Msg
		buf = binary.AppendUvarint(buf, uint64(len(m.Payload)))
		buf = append(buf, m.Payload...)
		buf = binary.AppendVarint(buf, int64(m.Color))
		buf = binary.AppendUvarint(buf, m.UID)
		buf = binary.AppendUvarint(buf, uint64(m.Src))
		buf = binary.AppendUvarint(buf, uint64(m.Dest))
		if m.Valid {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	case KindAccept, KindCancel, KindCancelAck:
		a := f.ack()
		buf = binary.AppendUvarint(buf, uint64(a.Dest))
		buf = binary.AppendUvarint(buf, a.Seq)
	default:
		panic(fmt.Sprintf("transport: encoding frame of kind %v", k))
	}
	return buf
}

// ack returns the control payload of an accept/cancel/cancelAck frame.
func (f *Frame) ack() *Ack {
	switch {
	case f.Accept != nil:
		return f.Accept
	case f.Cancel != nil:
		return f.Cancel
	default:
		return f.CancelAck
	}
}

// EncodeFrame encodes f's body into a fresh slice.
func EncodeFrame(f *Frame) []byte { return AppendFrame(nil, f) }

// EncodedSize returns len(EncodeFrame(f)) — the chaos bandwidth cap and
// byte counters use it. (Computed by encoding; frames are small.)
func EncodedSize(f *Frame) int { return len(EncodeFrame(f)) }

// decoder walks an encoded body with bounds checking.
type decoder struct {
	b   []byte
	pos int
	err error
}

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf(format, args...)
	}
}

func (d *decoder) u8() byte {
	if d.err != nil {
		return 0
	}
	if d.pos >= len(d.b) {
		d.fail("transport: truncated frame at byte %d", d.pos)
		return 0
	}
	v := d.b[d.pos]
	d.pos++
	return v
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.pos:])
	if n <= 0 {
		d.fail("transport: bad uvarint at byte %d", d.pos)
		return 0
	}
	d.pos += n
	return v
}

func (d *decoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b[d.pos:])
	if n <= 0 {
		d.fail("transport: bad varint at byte %d", d.pos)
		return 0
	}
	d.pos += n
	return v
}

func (d *decoder) bytes(n uint64) []byte {
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.b)-d.pos) {
		d.fail("transport: truncated frame: need %d bytes at %d, have %d", n, d.pos, len(d.b)-d.pos)
		return nil
	}
	v := d.b[d.pos : d.pos+int(n)]
	d.pos += int(n)
	return v
}

// proc bounds a decoded processor ID: wire values are untrusted, and a
// negative or absurd ID must not become a slice index downstream.
func (d *decoder) proc() graph.ProcessID {
	v := d.uvarint()
	if v > 1<<31 {
		d.fail("transport: processor id %d out of range", v)
		return 0
	}
	return graph.ProcessID(v)
}

// DecodeFrame decodes one encoded body. Every error path is explicit: a
// wrong version, unknown kind, truncation, over-long field, or trailing
// garbage all fail without panicking.
func DecodeFrame(b []byte) (Frame, error) {
	if len(b) > MaxFrameBytes {
		return Frame{}, fmt.Errorf("transport: frame body %d bytes exceeds cap %d", len(b), MaxFrameBytes)
	}
	d := &decoder{b: b}
	if v := d.u8(); d.err == nil && v != CodecVersion {
		return Frame{}, fmt.Errorf("transport: wire version %d, want %d", v, CodecVersion)
	}
	kind := FrameKind(d.u8())
	var f Frame
	f.From = d.proc()
	switch kind {
	case KindDV:
		n := d.uvarint()
		if d.err == nil && n > uint64(len(b)) {
			// Each distance costs ≥1 byte; a count beyond the body length
			// is corrupt, not merely truncated.
			return Frame{}, fmt.Errorf("transport: dv length %d exceeds frame", n)
		}
		dv := make([]int, 0, n)
		for i := uint64(0); i < n && d.err == nil; i++ {
			dv = append(dv, int(d.varint()))
		}
		f.DV = dv
		if d.err == nil && len(f.DV) == 0 {
			return Frame{}, fmt.Errorf("transport: empty dv frame")
		}
	case KindOffer:
		o := &Offer{Dest: d.proc(), Seq: d.uvarint()}
		plen := d.uvarint()
		o.Msg.Payload = string(d.bytes(plen))
		o.Msg.Color = int(d.varint())
		o.Msg.UID = d.uvarint()
		o.Msg.Src = d.proc()
		o.Msg.Dest = d.proc()
		o.Msg.Valid = d.u8() != 0
		f.Offer = o
	case KindAccept:
		f.Accept = &Ack{Dest: d.proc(), Seq: d.uvarint()}
	case KindCancel:
		f.Cancel = &Ack{Dest: d.proc(), Seq: d.uvarint()}
	case KindCancelAck:
		f.CancelAck = &Ack{Dest: d.proc(), Seq: d.uvarint()}
	default:
		if d.err == nil {
			return Frame{}, fmt.Errorf("transport: unknown frame kind %d", kind)
		}
	}
	if d.err != nil {
		return Frame{}, d.err
	}
	if d.pos != len(b) {
		return Frame{}, fmt.Errorf("transport: %d trailing bytes after frame", len(b)-d.pos)
	}
	return f, nil
}

// WriteFrame writes f with its length prefix to w and returns the number
// of bytes written.
func WriteFrame(w io.Writer, f *Frame) (int, error) {
	body := EncodeFrame(f)
	if len(body) > MaxFrameBytes {
		return 0, fmt.Errorf("transport: frame body %d bytes exceeds cap %d", len(body), MaxFrameBytes)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if n, err := w.Write(hdr[:]); err != nil {
		return n, err
	}
	n, err := w.Write(body)
	return 4 + n, err
}

// ReadFrame reads one length-prefixed frame from r. It rejects length
// prefixes beyond MaxFrameBytes before allocating.
func ReadFrame(r io.Reader) (Frame, int, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Frame{}, 0, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrameBytes {
		return Frame{}, 4, fmt.Errorf("transport: frame length %d exceeds cap %d", n, MaxFrameBytes)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return Frame{}, 4, err
	}
	f, err := DecodeFrame(body)
	return f, 4 + int(n), err
}
