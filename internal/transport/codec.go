package transport

import (
	"encoding/binary"
	"fmt"
	"io"
	"math/bits"
	"sync"

	"ssmfp/internal/graph"
)

// Wire format, version 1.
//
// A frame on a byte stream is a big-endian uint32 length prefix followed
// by a body of exactly that many bytes:
//
//	frame   := u32be(len(body)) body
//	body    := u8(version=1) u8(kind) uvarint(from) payload
//	payload := dv | offer | ack            (selected by kind)
//	dv      := uvarint(n) n × varint(dist)          (zigzag)
//	offer   := uvarint(dest) uvarint(seq) msg
//	ack     := uvarint(dest) uvarint(seq)           (accept/cancel/cancelAck)
//	msg     := uvarint(len(payload)) payload-bytes varint(color)
//	           uvarint(uid) uvarint(src) uvarint(dest) u8(valid)
//
// Varints are Go's encoding/binary varints; signed fields use zigzag.
// The body length is capped at MaxFrameBytes; ReadFrame rejects longer
// prefixes without allocating, so a corrupted or hostile peer cannot make
// a node allocate unbounded memory. Decoding is total: any byte slice
// either decodes to a well-formed Frame or returns an error — the fuzz
// test FuzzFrameCodec holds the codec to that plus round-trip identity.
//
// Buffer ownership: WriteFrame and ReadFrame stage bytes in a shared
// sync.Pool. A pooled buffer lives exactly one call — it is returned
// before the function does, which is sound because DecodeFrame never
// aliases its input (payload bytes are copied into a fresh string, DV
// into a fresh slice). Oversized buffers (> maxPooledBuf) are not
// returned to the pool, so a single huge frame cannot pin memory.

// CodecVersion is the wire-format version this build writes and accepts.
const CodecVersion = 1

// MaxFrameBytes bounds one encoded frame body. The largest legitimate
// frame is an offer whose message payload is application data; 1 MiB
// leaves generous headroom while keeping the allocation bounded.
const MaxFrameBytes = 1 << 20

// maxPooledBuf caps the capacity of buffers kept in the codec pool.
const maxPooledBuf = 64 << 10

var bufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 512)
	return &b
}}

// AppendFrame appends f's encoded body (without the length prefix) to buf
// and returns the extended slice.
func AppendFrame(buf []byte, f *Frame) []byte {
	buf = append(buf, CodecVersion, byte(f.Kind))
	buf = binary.AppendUvarint(buf, uint64(f.From))
	switch f.Kind {
	case KindDV:
		if len(f.DV) == 0 {
			panic("transport: encoding dv frame with empty vector")
		}
		buf = binary.AppendUvarint(buf, uint64(len(f.DV)))
		for _, d := range f.DV {
			buf = binary.AppendVarint(buf, int64(d))
		}
	case KindOffer:
		buf = binary.AppendUvarint(buf, uint64(f.Offer.Dest))
		buf = binary.AppendUvarint(buf, f.Offer.Seq)
		m := &f.Offer.Msg
		buf = binary.AppendUvarint(buf, uint64(len(m.Payload)))
		buf = append(buf, m.Payload...)
		buf = binary.AppendVarint(buf, int64(m.Color))
		buf = binary.AppendUvarint(buf, m.UID)
		buf = binary.AppendUvarint(buf, uint64(m.Src))
		buf = binary.AppendUvarint(buf, uint64(m.Dest))
		if m.Valid {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	case KindAccept, KindCancel, KindCancelAck:
		buf = binary.AppendUvarint(buf, uint64(f.Ack.Dest))
		buf = binary.AppendUvarint(buf, f.Ack.Seq)
	default:
		panic(fmt.Sprintf("transport: encoding frame of kind %v", f.Kind))
	}
	return buf
}

// EncodeFrame encodes f's body into a fresh slice.
func EncodeFrame(f *Frame) []byte { return AppendFrame(nil, f) }

// uvarintLen is the encoded size of v as a uvarint.
func uvarintLen(v uint64) int {
	return (bits.Len64(v|1) + 6) / 7
}

// varintLen is the encoded size of v as a zigzag varint.
func varintLen(v int64) int {
	return uvarintLen(uint64(v)<<1 ^ uint64(v>>63))
}

// EncodedSize returns len(EncodeFrame(f)) without encoding — the chaos
// bandwidth cap computes it on every send, so it must not allocate.
func EncodedSize(f *Frame) int {
	n := 2 + uvarintLen(uint64(f.From))
	switch f.Kind {
	case KindDV:
		n += uvarintLen(uint64(len(f.DV)))
		for _, d := range f.DV {
			n += varintLen(int64(d))
		}
	case KindOffer:
		m := &f.Offer.Msg
		n += uvarintLen(uint64(f.Offer.Dest)) + uvarintLen(f.Offer.Seq)
		n += uvarintLen(uint64(len(m.Payload))) + len(m.Payload)
		n += varintLen(int64(m.Color)) + uvarintLen(m.UID)
		n += uvarintLen(uint64(m.Src)) + uvarintLen(uint64(m.Dest)) + 1
	case KindAccept, KindCancel, KindCancelAck:
		n += uvarintLen(uint64(f.Ack.Dest)) + uvarintLen(f.Ack.Seq)
	}
	return n
}

// decoder walks an encoded body with bounds checking.
type decoder struct {
	b   []byte
	pos int
	err error
}

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf(format, args...)
	}
}

func (d *decoder) u8() byte {
	if d.err != nil {
		return 0
	}
	if d.pos >= len(d.b) {
		d.fail("transport: truncated frame at byte %d", d.pos)
		return 0
	}
	v := d.b[d.pos]
	d.pos++
	return v
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.pos:])
	if n <= 0 {
		d.fail("transport: bad uvarint at byte %d", d.pos)
		return 0
	}
	d.pos += n
	return v
}

func (d *decoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b[d.pos:])
	if n <= 0 {
		d.fail("transport: bad varint at byte %d", d.pos)
		return 0
	}
	d.pos += n
	return v
}

func (d *decoder) bytes(n uint64) []byte {
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.b)-d.pos) {
		d.fail("transport: truncated frame: need %d bytes at %d, have %d", n, d.pos, len(d.b)-d.pos)
		return nil
	}
	v := d.b[d.pos : d.pos+int(n)]
	d.pos += int(n)
	return v
}

// proc bounds a decoded processor ID: wire values are untrusted, and a
// negative or absurd ID must not become a slice index downstream.
func (d *decoder) proc() graph.ProcessID {
	v := d.uvarint()
	if v > 1<<31 {
		d.fail("transport: processor id %d out of range", v)
		return 0
	}
	return graph.ProcessID(v)
}

// DecodeFrame decodes one encoded body. Every error path is explicit: a
// wrong version, unknown kind, truncation, over-long field, or trailing
// garbage all fail without panicking. The returned Frame never aliases b
// (payload bytes are copied), so callers may reuse b immediately.
func DecodeFrame(b []byte) (Frame, error) {
	if len(b) > MaxFrameBytes {
		return Frame{}, fmt.Errorf("transport: frame body %d bytes exceeds cap %d", len(b), MaxFrameBytes)
	}
	d := &decoder{b: b}
	if v := d.u8(); d.err == nil && v != CodecVersion {
		return Frame{}, fmt.Errorf("transport: wire version %d, want %d", v, CodecVersion)
	}
	kind := FrameKind(d.u8())
	var f Frame
	f.From = d.proc()
	switch kind {
	case KindDV:
		n := d.uvarint()
		if d.err == nil && n > uint64(len(b)) {
			// Each distance costs ≥1 byte; a count beyond the body length
			// is corrupt, not merely truncated.
			return Frame{}, fmt.Errorf("transport: dv length %d exceeds frame", n)
		}
		dv := make([]int, 0, n)
		for i := uint64(0); i < n && d.err == nil; i++ {
			dv = append(dv, int(d.varint()))
		}
		f.DV = dv
		if d.err == nil && len(f.DV) == 0 {
			return Frame{}, fmt.Errorf("transport: empty dv frame")
		}
	case KindOffer:
		f.Offer.Dest = d.proc()
		f.Offer.Seq = d.uvarint()
		plen := d.uvarint()
		f.Offer.Msg.Payload = string(d.bytes(plen))
		f.Offer.Msg.Color = int(d.varint())
		f.Offer.Msg.UID = d.uvarint()
		f.Offer.Msg.Src = d.proc()
		f.Offer.Msg.Dest = d.proc()
		f.Offer.Msg.Valid = d.u8() != 0
	case KindAccept, KindCancel, KindCancelAck:
		f.Ack.Dest = d.proc()
		f.Ack.Seq = d.uvarint()
	default:
		if d.err == nil {
			return Frame{}, fmt.Errorf("transport: unknown frame kind %d", kind)
		}
	}
	if d.err != nil {
		return Frame{}, d.err
	}
	if d.pos != len(b) {
		return Frame{}, fmt.Errorf("transport: %d trailing bytes after frame", len(b)-d.pos)
	}
	f.Kind = kind
	return f, nil
}

// WriteFrame writes f with its length prefix to w and returns the number
// of bytes written. Header and body are coalesced into one buffered Write
// (staged in a pooled buffer), so the reported count is exactly what the
// underlying writer accepted — a short write can no longer desynchronize
// the byte accounting between header and body.
func WriteFrame(w io.Writer, f *Frame) (int, error) {
	bp := bufPool.Get().(*[]byte)
	buf := append((*bp)[:0], 0, 0, 0, 0) // reserve the length prefix
	buf = AppendFrame(buf, f)
	body := len(buf) - 4
	if body > MaxFrameBytes {
		putBuf(bp, buf)
		return 0, fmt.Errorf("transport: frame body %d bytes exceeds cap %d", body, MaxFrameBytes)
	}
	binary.BigEndian.PutUint32(buf[:4], uint32(body))
	n, err := w.Write(buf)
	putBuf(bp, buf)
	return n, err
}

// putBuf returns a staging buffer to the pool unless it grew too large to
// be worth keeping.
func putBuf(bp *[]byte, buf []byte) {
	if cap(buf) <= maxPooledBuf {
		*bp = buf[:0]
		bufPool.Put(bp)
	}
}

// ReadFrame reads one length-prefixed frame from r. It rejects length
// prefixes beyond MaxFrameBytes before allocating, and stages the body in
// a pooled buffer (safe because DecodeFrame copies everything it keeps).
func ReadFrame(r io.Reader) (Frame, int, error) {
	// The header is staged in the pooled buffer too: a stack array passed
	// to the io.Reader interface escapes, which would cost one allocation
	// per frame on the receive path.
	bp := bufPool.Get().(*[]byte)
	if cap(*bp) < 4 {
		*bp = make([]byte, 0, 512)
	}
	hdr := (*bp)[:4]
	if _, err := io.ReadFull(r, hdr); err != nil {
		putBuf(bp, hdr)
		return Frame{}, 0, err
	}
	n := binary.BigEndian.Uint32(hdr)
	if n > MaxFrameBytes {
		putBuf(bp, hdr)
		return Frame{}, 4, fmt.Errorf("transport: frame length %d exceeds cap %d", n, MaxFrameBytes)
	}
	var body []byte
	switch {
	case int(n) <= cap(*bp):
		body = (*bp)[:n]
	case n <= maxPooledBuf:
		*bp = make([]byte, n)
		body = *bp
	default:
		bufPool.Put(bp)
		bp = nil
		body = make([]byte, n)
	}
	if _, err := io.ReadFull(r, body); err != nil {
		if bp != nil {
			putBuf(bp, body)
		}
		return Frame{}, 4, err
	}
	f, err := DecodeFrame(body)
	if bp != nil {
		putBuf(bp, body)
	}
	return f, 4 + int(n), err
}
