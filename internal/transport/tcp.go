package transport

import (
	"bufio"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"ssmfp/internal/graph"
	"ssmfp/internal/obs"
)

// TCPOptions configures a node-scoped TCP transport.
type TCPOptions struct {
	// Local is the processor this transport serves.
	Local graph.ProcessID
	// Peers maps each neighbor of Local to its dial address. It may also
	// carry Local's own listen address (used when Listen is empty) and
	// non-neighbor entries, which are ignored. The transport copies the
	// map; later AddPeer calls extend the copy, not the caller's map.
	Peers map[graph.ProcessID]string
	// Listen is the address to listen on; empty selects Peers[Local].
	Listen string
	// Listener, when non-nil, is a pre-bound listener to use instead of
	// binding Listen — in-process loopback clusters bind n listeners on
	// port 0 first so every peer address is known before any node starts.
	Listener net.Listener
	// Depth is the per-link outbound queue and inbound buffer (≤0 =
	// DefaultDepth). A full queue drops frames, like a congested Chan link.
	Depth int
	// BackoffMin/BackoffMax bound the reconnect backoff (defaults 20ms
	// and 1s); each failed dial doubles the wait up to the max, plus up
	// to 50% seeded jitter, and a successful dial resets it.
	BackoffMin, BackoffMax time.Duration
	// DialTimeout bounds one dial attempt (default 2s).
	DialTimeout time.Duration
	// Seed drives the backoff jitter.
	Seed int64
	// Bus, when non-nil, receives KindWire events for dials, redials and
	// accepted connections (wall-clock domain, Step/Round −1).
	Bus *obs.Bus
	// Dial, when non-nil, replaces net.DialTimeout for outbound
	// connections — how a secure wrapper substitutes a TLS client
	// handshake without re-implementing the writer's reconnect logic.
	Dial func(addr string, timeout time.Duration) (net.Conn, error)
	// Inbound, when non-nil, is consulted for every decoded inbound frame
	// before it is demultiplexed, with the connection it arrived on. A nil
	// return admits the frame; ErrRejectFrame drops the frame but keeps
	// the connection (a recoverable policy rejection); any other error
	// drops the frame AND ends the connection (the stream can no longer
	// be trusted — e.g. a peer whose certificate identity contradicts the
	// frame's self-identified sender).
	Inbound func(conn net.Conn, f *Frame) error
}

// ErrRejectFrame is the sentinel an Inbound gate returns to drop one frame
// without condemning the connection it arrived on.
var ErrRejectFrame = errors.New("transport: frame rejected by inbound gate")

func (o TCPOptions) withDefaults() TCPOptions {
	if o.Depth <= 0 {
		o.Depth = DefaultDepth
	}
	if o.BackoffMin <= 0 {
		o.BackoffMin = 20 * time.Millisecond
	}
	if o.BackoffMax < o.BackoffMin {
		o.BackoffMax = time.Second
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 2 * time.Second
	}
	return o
}

// TCP carries frames for one processor over real sockets: a single
// listener accepts inbound connections from any peer (frames self-identify
// via Frame.From, so inbound links are demultiplexed per frame), and one
// writer goroutine per neighbor lazily dials the peer's address on first
// use, reconnecting with exponential backoff + jitter when the connection
// drops. Frames queued while the link is down are flushed after
// reconnect; frames overflowing the queue are dropped and recovered by
// the protocol's retransmission, so a process can start, crash, or come
// up late without any coordination. The transport is elastic: AddPeer
// teaches it a new neighbor's address and EnsureLink/DropLink grow and
// shrink the link set at runtime — how a long-lived node rides cluster
// membership changes.
type TCP struct {
	opts TCPOptions
	ln   net.Listener
	rng  *rand.Rand // seeds per-writer jitter streams; guarded by lmu

	// lmu guards the elastic state: the link maps and the peer address
	// book. Hot paths hold it only for a map read.
	lmu   sync.RWMutex
	out   map[graph.ProcessID]*tcpSendLink
	in    map[graph.ProcessID]*tcpRecvLink
	peers map[graph.ProcessID]string

	bytesSent   atomic.Uint64
	bytesRecvd  atomic.Uint64
	dials       atomic.Uint64
	redials     atomic.Uint64
	recvUnknown atomic.Uint64

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	mu    sync.Mutex
	conns map[net.Conn]struct{}
}

// NewTCP builds and starts the transport for opts.Local on g: it binds
// the listener immediately (so Addr is routable before any peer dials)
// and starts one writer per neighbor. Dialing is lazy.
func NewTCP(g *graph.Graph, opts TCPOptions) (*TCP, error) {
	opts = opts.withDefaults()
	nbrs := g.Neighbors(opts.Local)
	for _, q := range nbrs {
		if _, ok := opts.Peers[q]; !ok {
			return nil, fmt.Errorf("transport: no peer address for neighbor %d of %d", q, opts.Local)
		}
	}
	ln := opts.Listener
	if ln == nil {
		addr := opts.Listen
		if addr == "" {
			addr = opts.Peers[opts.Local]
		}
		if addr == "" {
			return nil, fmt.Errorf("transport: node %d has no listen address", opts.Local)
		}
		var err error
		ln, err = net.Listen("tcp", addr)
		if err != nil {
			return nil, fmt.Errorf("transport: node %d listen: %w", opts.Local, err)
		}
	}
	t := &TCP{
		opts:  opts,
		ln:    ln,
		rng:   rand.New(rand.NewSource(opts.Seed ^ int64(opts.Local)<<17)),
		out:   make(map[graph.ProcessID]*tcpSendLink, len(nbrs)),
		in:    make(map[graph.ProcessID]*tcpRecvLink, len(nbrs)),
		peers: make(map[graph.ProcessID]string, len(opts.Peers)),
		stop:  make(chan struct{}),
		conns: make(map[net.Conn]struct{}),
	}
	for q, addr := range opts.Peers {
		t.peers[q] = addr
	}
	for _, q := range nbrs {
		t.addSendLinkLocked(q)
		t.in[q] = &tcpRecvLink{ch: make(chan Frame, opts.Depth)}
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// addSendLinkLocked creates the outbound link to q and starts its writer.
// Caller holds lmu (or is still in NewTCP, pre-publication).
func (t *TCP) addSendLinkLocked(q graph.ProcessID) {
	sl := &tcpSendLink{tr: t, peer: q, outq: make(chan Frame, t.opts.Depth), stop: make(chan struct{})}
	t.out[q] = sl
	t.wg.Add(1)
	go t.writer(sl, rand.New(rand.NewSource(t.rng.Int63())))
}

// Addr is the listener's address — with port-0 binds, the address peers
// must be given to dial this node.
func (t *TCP) Addr() string { return t.ln.Addr().String() }

// AddPeer records (or updates) a peer's dial address, so a link to it can
// be ensured later. Safe while traffic flows.
func (t *TCP) AddPeer(q graph.ProcessID, addr string) {
	t.lmu.Lock()
	t.peers[q] = addr
	t.lmu.Unlock()
}

// peerAddr reads q's dial address under the lock.
func (t *TCP) peerAddr(q graph.ProcessID) string {
	t.lmu.RLock()
	defer t.lmu.RUnlock()
	return t.peers[q]
}

// KnownSender reports whether p currently has an inbound demux slot —
// i.e. whether p is a member this node would accept frames from. Inbound
// gates use it to distinguish a stranger with a valid certificate from a
// configured neighbor.
func (t *TCP) KnownSender(p graph.ProcessID) bool {
	t.lmu.RLock()
	_, ok := t.in[p]
	t.lmu.RUnlock()
	return ok
}

// dial opens one outbound connection via the configured Dial hook (or
// plain TCP when unset).
func (t *TCP) dial(addr string) (net.Conn, error) {
	if d := t.opts.Dial; d != nil {
		return d(addr, t.opts.DialTimeout)
	}
	return net.DialTimeout("tcp", addr, t.opts.DialTimeout)
}

// EnsureLink grows the link set at runtime. Only edges incident to the
// local processor are meaningful; the outbound direction requires the
// peer's address to be known (AddPeer).
func (t *TCP) EnsureLink(from, to graph.ProcessID) error {
	t.lmu.Lock()
	defer t.lmu.Unlock()
	switch {
	case from == t.opts.Local:
		if _, ok := t.out[to]; ok {
			return nil
		}
		if _, known := t.peers[to]; !known {
			return fmt.Errorf("transport: tcp node %d has no address for new peer %d", t.opts.Local, to)
		}
		t.addSendLinkLocked(to)
	case to == t.opts.Local:
		if _, ok := t.in[from]; !ok {
			t.in[from] = &tcpRecvLink{ch: make(chan Frame, t.opts.Depth)}
		}
	}
	return nil // non-incident edges are another node's business
}

// DropLink shrinks the link set: the outbound writer stops and its
// connection closes; the inbound demux forgets the peer (its frames count
// as unknown-sender noise until it too reconfigures).
func (t *TCP) DropLink(from, to graph.ProcessID) {
	t.lmu.Lock()
	defer t.lmu.Unlock()
	switch {
	case from == t.opts.Local:
		if sl, ok := t.out[to]; ok {
			close(sl.stop)
			delete(t.out, to)
		}
	case to == t.opts.Local:
		delete(t.in, from)
	}
}

// Link returns the operative end of the directed edge: the send end for
// from == Local, the receive end for to == Local. Asking for an edge not
// incident to Local, or a non-neighbor edge, panics.
func (t *TCP) Link(from, to graph.ProcessID) Link {
	t.lmu.RLock()
	defer t.lmu.RUnlock()
	switch {
	case from == t.opts.Local:
		if l, ok := t.out[to]; ok {
			return l
		}
	case to == t.opts.Local:
		if l, ok := t.in[from]; ok {
			return l
		}
	}
	panic(fmt.Sprintf("transport: tcp node %d asked for link %d→%d", t.opts.Local, from, to))
}

// Stats sums this node's wire counters.
func (t *TCP) Stats() Stats {
	s := Stats{
		BytesSent:  t.bytesSent.Load(),
		BytesRecvd: t.bytesRecvd.Load(),
		Dials:      t.dials.Load(),
		Redials:    t.redials.Load(),
	}
	t.lmu.RLock()
	defer t.lmu.RUnlock()
	for _, l := range t.out {
		ls := l.Stats()
		s.FramesSent += ls.Sent
		s.DroppedFull += ls.DroppedFull
	}
	for _, l := range t.in {
		ls := l.Stats()
		s.FramesRecvd += ls.Recvd
		s.DroppedFull += ls.DroppedFull
	}
	return s
}

// Close stops the listener, every writer, and every open connection.
func (t *TCP) Close() error {
	t.stopOnce.Do(func() {
		close(t.stop)
		t.ln.Close()
		t.mu.Lock()
		for c := range t.conns {
			c.Close()
		}
		t.mu.Unlock()
	})
	t.wg.Wait()
	return nil
}

func (t *TCP) track(c net.Conn) {
	t.mu.Lock()
	t.conns[c] = struct{}{}
	t.mu.Unlock()
}

func (t *TCP) untrack(c net.Conn) {
	t.mu.Lock()
	delete(t.conns, c)
	t.mu.Unlock()
	c.Close()
}

func (t *TCP) observe(detail string, from, to graph.ProcessID) {
	if b := t.opts.Bus; b.Active() {
		b.Publish(obs.Event{
			Kind: obs.KindWire, Step: -1, Round: -1,
			Proc: t.opts.Local, From: from, To: to, Detail: detail,
		})
	}
}

// acceptLoop serves inbound connections; each gets a reader goroutine
// that demultiplexes frames by their From field.
func (t *TCP) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			select {
			case <-t.stop:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		t.track(conn)
		t.observe("tcp: accept "+conn.RemoteAddr().String(), t.opts.Local, t.opts.Local)
		t.wg.Add(1)
		go t.readLoop(conn)
	}
}

func (t *TCP) readLoop(conn net.Conn) {
	defer t.wg.Done()
	defer t.untrack(conn)
	br := bufio.NewReader(conn)
	for {
		f, n, err := ReadFrame(br)
		t.bytesRecvd.Add(uint64(n))
		if err != nil {
			// Socket errors end the connection (the peer redials); decode
			// errors mean a corrupt or misbehaving stream — also fatal for
			// the connection, since framing can no longer be trusted.
			return
		}
		if gate := t.opts.Inbound; gate != nil {
			if gerr := gate(conn, &f); gerr != nil {
				if errors.Is(gerr, ErrRejectFrame) {
					continue
				}
				return
			}
		}
		t.lmu.RLock()
		rl, ok := t.in[f.From]
		t.lmu.RUnlock()
		if !ok {
			t.recvUnknown.Add(1)
			continue
		}
		rl.bytes.Add(uint64(n))
		select {
		case rl.ch <- f:
			rl.recvd.Add(1)
		default:
			rl.dropped.Add(1)
		}
	}
}

// writer owns the outbound connection to one peer: it dials lazily on
// the first queued frame, writes length-prefixed frames with batched
// flushes, and on any error closes the connection and re-dials with
// exponential backoff + jitter while frames keep queueing (or dropping,
// once the queue fills). It exits when the transport stops or the link is
// dropped by an epoch transition.
func (t *TCP) writer(sl *tcpSendLink, rng *rand.Rand) {
	defer t.wg.Done()
	var conn net.Conn
	var bw *bufio.Writer
	everConnected := false
	disconnect := func() {
		if conn != nil {
			t.untrack(conn)
			conn, bw = nil, nil
		}
	}
	defer disconnect()

	backoff := t.opts.BackoffMin
	for {
		var f Frame
		select {
		case f = <-sl.outq:
		case <-sl.stop:
			return
		case <-t.stop:
			return
		}
		for conn == nil {
			t.dials.Add(1)
			if everConnected {
				t.redials.Add(1)
				t.observe("tcp: redial "+t.peerAddr(sl.peer), t.opts.Local, sl.peer)
			} else {
				t.observe("tcp: dial "+t.peerAddr(sl.peer), t.opts.Local, sl.peer)
			}
			c, err := t.dial(t.peerAddr(sl.peer))
			if err == nil {
				// 32 KiB of write buffer lets the drain loop coalesce a
				// whole burst of small control frames (acks and offers are
				// tens of bytes) into one syscall before the flush.
				conn, bw = c, bufio.NewWriterSize(c, 32<<10)
				t.track(c)
				everConnected = true
				backoff = t.opts.BackoffMin
				break
			}
			wait := backoff + time.Duration(rng.Int63n(int64(backoff)/2+1))
			if backoff *= 2; backoff > t.opts.BackoffMax {
				backoff = t.opts.BackoffMax
			}
			select {
			case <-time.After(wait):
			case <-sl.stop:
				return
			case <-t.stop:
				return
			}
		}
		n, err := WriteFrame(bw, &f)
		t.bytesSent.Add(uint64(n))
		sl.bytes.Add(uint64(n))
		if err == nil {
			sl.sent.Add(1)
			// Batch: drain whatever else is queued before flushing.
			for more := true; more && err == nil; {
				select {
				case f = <-sl.outq:
					n, err = WriteFrame(bw, &f)
					t.bytesSent.Add(uint64(n))
					sl.bytes.Add(uint64(n))
					if err == nil {
						sl.sent.Add(1)
					}
				default:
					more = false
				}
			}
			if err == nil {
				err = bw.Flush()
			}
		}
		if err != nil {
			sl.dropped.Add(1)
			disconnect()
		}
	}
}

// tcpSendLink is the send end of Local→peer.
type tcpSendLink struct {
	tr      *TCP
	peer    graph.ProcessID
	outq    chan Frame
	stop    chan struct{} // closed by DropLink; ends the writer
	sent    atomic.Uint64
	bytes   atomic.Uint64
	dropped atomic.Uint64
}

func (l *tcpSendLink) Send(f Frame) bool {
	select {
	case <-l.stop:
		l.dropped.Add(1)
		return false
	default:
	}
	select {
	case l.outq <- f:
		return true
	default:
		l.dropped.Add(1)
		return false
	}
}

func (l *tcpSendLink) Recv() <-chan Frame {
	panic(fmt.Sprintf("transport: Recv on the send end of a tcp link (node %d → %d)", l.tr.opts.Local, l.peer))
}

func (l *tcpSendLink) Stats() LinkStats {
	return LinkStats{
		Sent:        l.sent.Load(),
		DroppedFull: l.dropped.Load(),
		BytesSent:   l.bytes.Load(),
		Queued:      len(l.outq),
	}
}

func (l *tcpSendLink) Close() error { return nil }

// tcpRecvLink is the receive end of peer→Local.
type tcpRecvLink struct {
	ch      chan Frame
	recvd   atomic.Uint64
	bytes   atomic.Uint64
	dropped atomic.Uint64
}

func (l *tcpRecvLink) Send(Frame) bool {
	panic("transport: Send on the receive end of a tcp link")
}

func (l *tcpRecvLink) Recv() <-chan Frame { return l.ch }

func (l *tcpRecvLink) Stats() LinkStats {
	return LinkStats{
		Recvd:       l.recvd.Load(),
		DroppedFull: l.dropped.Load(),
		BytesRecvd:  l.bytes.Load(),
		Queued:      len(l.ch),
	}
}

func (l *tcpRecvLink) Close() error { return nil }
