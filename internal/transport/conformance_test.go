package transport_test

import (
	"fmt"
	"net"
	"testing"
	"time"

	"ssmfp/internal/graph"
	"ssmfp/internal/msgpass"
	"ssmfp/internal/transport"
)

// backendFactory builds a whole-graph transport for g. The returned
// cleanup runs after the protocol layer has stopped.
type backendFactory func(t *testing.T, g *graph.Graph) (transport.Transport, func())

// chanBackend is the extracted in-memory wiring.
func chanBackend(t *testing.T, g *graph.Graph) (transport.Transport, func()) {
	tr := transport.NewChan(g, 64)
	return tr, func() { tr.Close() }
}

// tcpBackend is a full loopback TCP cluster in one process: one
// node-scoped transport per processor, composed by Multi. Listeners are
// bound on port 0 first so every peer address is known before any node
// transport starts.
func tcpBackend(t *testing.T, g *graph.Graph) (transport.Transport, func()) {
	t.Helper()
	listeners := make(map[graph.ProcessID]net.Listener, g.N())
	peers := make(map[graph.ProcessID]string, g.N())
	for _, p := range g.Processors() {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("bind node %d: %v", p, err)
		}
		listeners[p] = ln
		peers[p] = ln.Addr().String()
	}
	per := make(map[graph.ProcessID]transport.Transport, g.N())
	for _, p := range g.Processors() {
		tr, err := transport.NewTCP(g, transport.TCPOptions{
			Local:    p,
			Peers:    peers,
			Listener: listeners[p],
			Seed:     int64(p),
		})
		if err != nil {
			t.Fatalf("tcp node %d: %v", p, err)
		}
		per[p] = tr
	}
	m := transport.NewMulti(per)
	return m, func() { m.Close() }
}

// chaosOver wraps a backend with the given impairment.
func chaosOver(inner backendFactory, opts transport.ChaosOptions) backendFactory {
	return func(t *testing.T, g *graph.Graph) (transport.Transport, func()) {
		tr, cleanup := inner(t, g)
		ch := transport.NewChaos(tr, opts)
		return ch, func() { ch.Close(); cleanup() }
	}
}

// --- link-level conformance -------------------------------------------

// drain collects frames from l.Recv until the link stays quiet for
// settle, returning the offers' sequence numbers in arrival order.
func drain(l transport.Link, settle time.Duration) []uint64 {
	var seqs []uint64
	for {
		select {
		case f := <-l.Recv():
			if f.Kind == transport.KindOffer {
				seqs = append(seqs, f.Offer.Seq)
			}
		case <-time.After(settle):
			return seqs
		}
	}
}

// offerFrame builds a payload-bearing frame with a recognizable sequence.
func offerFrame(from, to graph.ProcessID, seq uint64) transport.Frame {
	return transport.Frame{Kind: transport.KindOffer, From: from, Offer: transport.Offer{
		Dest: to, Seq: seq,
		Msg: transport.Message{Payload: fmt.Sprintf("f%d", seq), UID: seq, Src: from, Dest: to, Valid: true},
	}}
}

// testLosslessFIFO sends a burst smaller than the queue depth and
// expects every frame to arrive, in order — chan and tcp are FIFO per
// directed link.
func testLosslessFIFO(t *testing.T, mk backendFactory) {
	g := graph.Line(2)
	tr, cleanup := mk(t, g)
	defer cleanup()
	l := tr.Link(0, 1)
	const burst = 32
	sent := 0
	for seq := uint64(1); seq <= burst; seq++ {
		if l.Send(offerFrame(0, 1, seq)) {
			sent++
		}
	}
	if sent != burst {
		t.Fatalf("only %d/%d frames accepted below queue depth", sent, burst)
	}
	deadline := time.Now().Add(10 * time.Second)
	var got []uint64
	for len(got) < burst && time.Now().Before(deadline) {
		got = append(got, drain(l, 100*time.Millisecond)...)
	}
	if len(got) != burst {
		t.Fatalf("received %d/%d frames", len(got), burst)
	}
	for i, seq := range got {
		if seq != uint64(i+1) {
			t.Fatalf("frame %d out of order: got seq %d; full order %v", i, seq, got)
		}
	}
	st := tr.Stats()
	if st.FramesSent < burst || st.FramesRecvd < burst {
		t.Fatalf("stats missed traffic: %+v", st)
	}
}

func TestChanLosslessFIFO(t *testing.T) { testLosslessFIFO(t, chanBackend) }
func TestTCPLosslessFIFO(t *testing.T)  { testLosslessFIFO(t, tcpBackend) }

func TestChaosLossDropsFrames(t *testing.T) {
	mk := chaosOver(chanBackend, transport.ChaosOptions{Seed: 42, LossRate: 0.5})
	g := graph.Line(2)
	tr, cleanup := mk(t, g)
	defer cleanup()
	l := tr.Link(0, 1)
	const burst = 400
	var got []uint64
	for seq := uint64(1); seq <= burst; seq++ {
		l.Send(offerFrame(0, 1, seq))
		if seq%32 == 0 {
			// Drain as we go so the 64-deep channel never congests.
			got = append(got, drain(l, time.Millisecond)...)
		}
	}
	got = append(got, drain(l, 50*time.Millisecond)...)
	st := tr.Stats()
	if st.DroppedImpair == 0 {
		t.Fatalf("50%% loss dropped nothing: %+v", st)
	}
	if int(st.DroppedImpair)+len(got)+int(st.DroppedFull) < burst {
		t.Fatalf("frames unaccounted for: got %d, impair %d, congestion %d of %d",
			len(got), st.DroppedImpair, st.DroppedFull, burst)
	}
	if len(got) >= burst*3/4 {
		t.Fatalf("50%% loss let %d/%d frames through", len(got), burst)
	}
}

func TestChaosDuplicatesFrames(t *testing.T) {
	mk := chaosOver(chanBackend, transport.ChaosOptions{Seed: 7, DupRate: 0.5})
	g := graph.Line(2)
	tr, cleanup := mk(t, g)
	defer cleanup()
	l := tr.Link(0, 1)
	const burst = 40
	var got []uint64
	for seq := uint64(1); seq <= burst; seq++ {
		l.Send(offerFrame(0, 1, seq))
		got = append(got, drain(l, time.Millisecond)...)
	}
	got = append(got, drain(l, 50*time.Millisecond)...)
	if len(got) <= burst {
		t.Fatalf("50%% duplication delivered only %d copies of %d frames", len(got), burst)
	}
	if st := tr.Stats(); st.Duplicated == 0 {
		t.Fatalf("duplication not counted: %+v", st)
	}
}

func TestChaosReordersFrames(t *testing.T) {
	mk := chaosOver(chanBackend, transport.ChaosOptions{
		Seed: 3, ReorderRate: 0.3, ReorderSpan: 20 * time.Millisecond,
	})
	g := graph.Line(2)
	tr, cleanup := mk(t, g)
	defer cleanup()
	l := tr.Link(0, 1)
	const burst = 60
	for seq := uint64(1); seq <= burst; seq++ {
		l.Send(offerFrame(0, 1, seq))
		time.Sleep(time.Millisecond) // give held-back frames something to be overtaken by
	}
	got := drain(l, 100*time.Millisecond)
	if len(got) != burst {
		t.Fatalf("received %d/%d frames (reordering must not lose)", len(got), burst)
	}
	seen := make(map[uint64]bool)
	inOrder := true
	for i, seq := range got {
		if seen[seq] {
			t.Fatalf("frame %d duplicated", seq)
		}
		seen[seq] = true
		if i > 0 && seq < got[i-1] {
			inOrder = false
		}
	}
	if inOrder {
		t.Fatalf("30%% reorder rate left the stream fully ordered: %v", got)
	}
}

func TestChaosPartitionHeal(t *testing.T) {
	mk := chaosOver(chanBackend, transport.ChaosOptions{
		Seed: 1,
		Partitions: []transport.PartitionWindow{{
			Start: 0, Duration: 200 * time.Millisecond,
			Edges: [][2]graph.ProcessID{{0, 1}},
		}},
	})
	g := graph.Line(3) // edges 0-1 (cut) and 1-2 (untouched)
	tr, cleanup := mk(t, g)
	defer cleanup()
	cut, open := tr.Link(0, 1), tr.Link(1, 2)
	if cut.Send(offerFrame(0, 1, 1)) {
		t.Fatal("send on a cut edge claimed success")
	}
	if !open.Send(offerFrame(1, 2, 2)) {
		t.Fatal("partition of 0-1 leaked onto edge 1-2")
	}
	if got := drain(open, 20*time.Millisecond); len(got) != 1 || got[0] != 2 {
		t.Fatalf("open edge traffic = %v, want [2]", got)
	}
	if got := drain(cut, 20*time.Millisecond); len(got) != 0 {
		t.Fatalf("cut edge delivered %v during the partition", got)
	}
	time.Sleep(250 * time.Millisecond) // heal
	if !cut.Send(offerFrame(0, 1, 3)) {
		t.Fatal("send after heal still dropping")
	}
	if got := drain(cut, 50*time.Millisecond); len(got) != 1 || got[0] != 3 {
		t.Fatalf("post-heal traffic = %v, want [3]", got)
	}
	if st := tr.Stats(); st.DroppedImpair == 0 {
		t.Fatalf("partition drop not counted: %+v", st)
	}
}

// TestTCPLateStartAndReconnect exercises the dialer's backoff: the peer
// is down at first send, comes up later, and frames flow; then the peer
// restarts on the same address and frames flow again over a redial.
func TestTCPLateStartAndReconnect(t *testing.T) {
	g := graph.Line(2)
	// Reserve an address for node 1, then free it so the first dials fail.
	rsv, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr1 := rsv.Addr().String()
	rsv.Close()

	ln0, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	peers := map[graph.ProcessID]string{0: ln0.Addr().String(), 1: addr1}
	t0, err := transport.NewTCP(g, transport.TCPOptions{
		Local: 0, Peers: peers, Listener: ln0,
		BackoffMin: 5 * time.Millisecond, BackoffMax: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer t0.Close()

	send := t0.Link(0, 1)
	stopPump := make(chan struct{})
	defer close(stopPump)
	go func() { // keep offering frames while the peer is down, up, down, up
		seq := uint64(0)
		for {
			select {
			case <-stopPump:
				return
			case <-time.After(2 * time.Millisecond):
				seq++
				send.Send(offerFrame(0, 1, seq))
			}
		}
	}()

	startPeer := func() (transport.Transport, transport.Link) {
		ln1, err := net.Listen("tcp", addr1)
		if err != nil {
			t.Fatalf("rebind %s: %v", addr1, err)
		}
		t1, err := transport.NewTCP(g, transport.TCPOptions{Local: 1, Peers: peers, Listener: ln1})
		if err != nil {
			t.Fatal(err)
		}
		return t1, t1.Link(0, 1)
	}
	waitFrames := func(l transport.Link, what string) {
		select {
		case <-l.Recv():
		case <-time.After(10 * time.Second):
			t.Fatalf("no frames arrived %s", what)
		}
	}

	time.Sleep(30 * time.Millisecond) // let dials fail while the peer is down
	t1, recv := startPeer()
	waitFrames(recv, "after the peer came up late")
	t1.Close()

	time.Sleep(30 * time.Millisecond) // connection torn down; writer must redial
	t1b, recv2 := startPeer()
	defer t1b.Close()
	waitFrames(recv2, "after the peer restarted")

	if st := t0.Stats(); st.Dials < 2 {
		t.Fatalf("expected repeated dial attempts, got stats %+v", st)
	}
}

// --- protocol-level conformance: exactly-once over every backend -------

// runExactlyOnce drives a full SSMFP deployment over the given backend
// and checks the UID oracle: every sent message delivered exactly once,
// at its destination.
func runExactlyOnce(t *testing.T, mk backendFactory, opts msgpass.Options, timeout time.Duration) {
	t.Helper()
	g := graph.Ring(6)
	tr, cleanup := mk(t, g)
	defer cleanup()
	opts.Transport = tr
	if opts.Tick == 0 {
		opts.Tick = time.Millisecond
	}
	nw := msgpass.New(g, opts)
	nw.Start()
	defer nw.Stop()

	want := make(map[uint64]graph.ProcessID)
	for src := 0; src < g.N(); src++ {
		for off := 1; off <= 3; off++ {
			dst := graph.ProcessID((src + off) % g.N())
			uid, err := nw.Send(graph.ProcessID(src), fmt.Sprintf("m%d-%d", src, off), dst)
			if err != nil {
				t.Fatalf("Send(%d -> %d): %v", src, dst, err)
			}
			want[uid] = dst
		}
	}
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		valid := 0
		for _, d := range nw.Deliveries() {
			if d.Msg.Valid {
				valid++
			}
		}
		if valid >= len(want) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	counts := make(map[uint64]int)
	for _, d := range nw.Deliveries() {
		if !d.Msg.Valid {
			continue
		}
		counts[d.Msg.UID]++
		if at, ok := want[d.Msg.UID]; !ok {
			t.Errorf("delivery of unknown UID %d", d.Msg.UID)
		} else if d.At != at {
			t.Errorf("UID %d delivered at %d, want %d", d.Msg.UID, d.At, at)
		}
	}
	for uid := range want {
		if counts[uid] != 1 {
			t.Errorf("UID %d delivered %d times, want exactly once", uid, counts[uid])
		}
	}
}

func TestExactlyOnceOverChan(t *testing.T) {
	runExactlyOnce(t, chanBackend, msgpass.Options{Seed: 21}, 30*time.Second)
}

func TestExactlyOnceOverTCPLoopback(t *testing.T) {
	runExactlyOnce(t, tcpBackend, msgpass.Options{Seed: 22}, 60*time.Second)
}

func TestExactlyOnceOverChaosChan(t *testing.T) {
	mk := chaosOver(chanBackend, transport.ChaosOptions{
		Seed: 23, LossRate: 0.15, DupRate: 0.15,
		Latency: 100 * time.Microsecond, Jitter: 500 * time.Microsecond,
		ReorderRate: 0.1,
	})
	runExactlyOnce(t, mk, msgpass.Options{Seed: 23, CorruptInit: true}, 60*time.Second)
}

func TestExactlyOnceOverChaosTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos-over-tcp cluster is slow under -short")
	}
	mk := chaosOver(tcpBackend, transport.ChaosOptions{
		Seed: 24, LossRate: 0.1, DupRate: 0.1, Jitter: time.Millisecond,
	})
	runExactlyOnce(t, mk, msgpass.Options{Seed: 24}, 90*time.Second)
}

// TestExactlyOncePartitionHeal cuts a ring edge mid-run: during the
// window messages route the long way or wait out the cut on
// retransmission; after the heal everything must still be exactly-once.
func TestExactlyOncePartitionHeal(t *testing.T) {
	mk := chaosOver(chanBackend, transport.ChaosOptions{
		Seed: 25,
		Partitions: []transport.PartitionWindow{{
			Start: 0, Duration: 300 * time.Millisecond,
			Edges: [][2]graph.ProcessID{{0, 1}, {3, 4}},
		}},
	})
	runExactlyOnce(t, mk, msgpass.Options{Seed: 25}, 60*time.Second)
}

// TestChaosBandwidthCapSustained pushes a sustained burst through a
// bandwidth-capped link and checks the line-rate model: every frame
// arrives exactly once, in order, and the drain rate clamps to the cap
// (frames queue behind each other's serialization time instead of being
// dropped).
func TestChaosBandwidthCapSustained(t *testing.T) {
	g := graph.Line(2)
	sample := offerFrame(0, 1, 1)
	size := transport.EncodedSize(&sample)
	const frames = 300
	const lineRate = 250 // frames per second
	mk := chaosOver(chanBackend, transport.ChaosOptions{Seed: 5, BandwidthBps: size * lineRate})
	tr, cleanup := mk(t, g)
	defer cleanup()
	l := tr.Link(0, 1)

	start := time.Now()
	for seq := uint64(1); seq <= frames; seq++ {
		if !l.Send(offerFrame(0, 1, seq)) {
			t.Fatalf("frame %d rejected — the cap must delay, not drop", seq)
		}
	}
	var got []uint64
	deadline := time.After(30 * time.Second)
	for len(got) < frames {
		select {
		case f := <-l.Recv():
			if f.Kind == transport.KindOffer {
				got = append(got, f.Offer.Seq)
			}
		case <-deadline:
			t.Fatalf("only %d/%d frames drained before the deadline", len(got), frames)
		}
	}
	elapsed := time.Since(start)

	for i, seq := range got {
		if seq != uint64(i+1) {
			t.Fatalf("frame %d arrived as %d — cap reordered or duplicated the line", i+1, seq)
		}
	}
	ideal := frames * time.Second / lineRate
	if elapsed < ideal*7/10 {
		t.Fatalf("burst drained in %v, line rate allows no less than ~%v", elapsed, ideal)
	}
	if measured := float64(frames) / elapsed.Seconds(); measured > lineRate*13/10 {
		t.Fatalf("measured %.0f frames/s through a %d frames/s line", measured, lineRate)
	}
}
