package transport_test

import (
	"net"
	"testing"
	"time"

	"ssmfp/internal/graph"
	"ssmfp/internal/msgpass"
	"ssmfp/internal/secure"
	"ssmfp/internal/transport"
)

// secureBackend builds a loopback mutual-TLS cluster in one process: a
// fresh trust domain (one CA), one node credential and one secure.TLS
// transport per processor, composed by Multi — the TCP backend's shape
// with every connection authenticated. The whole conformance suite runs
// over it unchanged, which is the point: the secure transport is a
// drop-in backend, not a different protocol.
func secureBackend(t *testing.T, g *graph.Graph) (transport.Transport, func()) {
	t.Helper()
	ca, err := secure.GenCA("conformance-ca")
	if err != nil {
		t.Fatalf("gen CA: %v", err)
	}
	pool := ca.Pool()
	listeners := make(map[graph.ProcessID]net.Listener, g.N())
	peers := make(map[graph.ProcessID]string, g.N())
	for _, p := range g.Processors() {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("bind node %d: %v", p, err)
		}
		listeners[p] = ln
		peers[p] = ln.Addr().String()
	}
	per := make(map[graph.ProcessID]transport.Transport, g.N())
	for _, p := range g.Processors() {
		cred, err := ca.IssueNode(p)
		if err != nil {
			t.Fatalf("issue node %d: %v", p, err)
		}
		tr, err := secure.NewTLS(g, secure.TLSOptions{
			Local:    p,
			Peers:    peers,
			Listener: listeners[p],
			Cred:     cred,
			Pool:     pool,
			Seed:     int64(p),
		})
		if err != nil {
			t.Fatalf("secure node %d: %v", p, err)
		}
		per[p] = tr
	}
	m := transport.NewMulti(per)
	return m, func() { m.Close() }
}

func TestSecureTLSLosslessFIFO(t *testing.T) { testLosslessFIFO(t, secureBackend) }

func TestExactlyOnceOverSecureTLS(t *testing.T) {
	runExactlyOnce(t, secureBackend, msgpass.Options{Seed: 26}, 90*time.Second)
}

// Chaos composed over the secure transport: impairment is applied on the
// send side of authenticated links, so loss/dup/reorder recovery runs
// end to end over mutual TLS.
func TestExactlyOnceOverChaosSecureTLS(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos-over-tls cluster is slow under -short")
	}
	mk := chaosOver(secureBackend, transport.ChaosOptions{
		Seed: 27, LossRate: 0.1, DupRate: 0.1, Jitter: time.Millisecond,
	})
	runExactlyOnce(t, mk, msgpass.Options{Seed: 27}, 120*time.Second)
}

// A partition/heal cycle over the secure backend: cut edges drop on the
// chaos layer while the TLS links stay up underneath.
func TestSecureTLSPartitionHealExactlyOnce(t *testing.T) {
	if testing.Short() {
		t.Skip("partition-heal over tls cluster is slow under -short")
	}
	mk := chaosOver(secureBackend, transport.ChaosOptions{
		Seed: 28,
		Partitions: []transport.PartitionWindow{{
			Start: 0, Duration: 300 * time.Millisecond,
			Edges: [][2]graph.ProcessID{{0, 1}, {3, 4}},
		}},
	})
	runExactlyOnce(t, mk, msgpass.Options{Seed: 28}, 90*time.Second)
}

// TestSecureTLSLateStartAndReconnect is the TCP late-start/redial test
// over mutual TLS: the peer is down at first send (every dial's TLS
// handshake fails with the socket), comes up late, restarts, and frames
// flow again — the backoff machinery must be handshake-agnostic.
func TestSecureTLSLateStartAndReconnect(t *testing.T) {
	g := graph.Line(2)
	ca, err := secure.GenCA("latestart-ca")
	if err != nil {
		t.Fatal(err)
	}
	pool := ca.Pool()
	cred0, err := ca.IssueNode(0)
	if err != nil {
		t.Fatal(err)
	}
	cred1, err := ca.IssueNode(1)
	if err != nil {
		t.Fatal(err)
	}

	rsv, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr1 := rsv.Addr().String()
	rsv.Close()

	ln0, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	peers := map[graph.ProcessID]string{0: ln0.Addr().String(), 1: addr1}
	t0, err := secure.NewTLS(g, secure.TLSOptions{
		Local: 0, Peers: peers, Listener: ln0, Cred: cred0, Pool: pool,
		BackoffMin: 5 * time.Millisecond, BackoffMax: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer t0.Close()

	send := t0.Link(0, 1)
	stopPump := make(chan struct{})
	defer close(stopPump)
	go func() {
		seq := uint64(0)
		for {
			select {
			case <-stopPump:
				return
			case <-time.After(2 * time.Millisecond):
				seq++
				send.Send(offerFrame(0, 1, seq))
			}
		}
	}()

	startPeer := func() (transport.Transport, transport.Link) {
		ln1, err := net.Listen("tcp", addr1)
		if err != nil {
			t.Fatalf("rebind %s: %v", addr1, err)
		}
		t1, err := secure.NewTLS(g, secure.TLSOptions{
			Local: 1, Peers: peers, Listener: ln1, Cred: cred1, Pool: pool,
		})
		if err != nil {
			t.Fatal(err)
		}
		return t1, t1.Link(0, 1)
	}
	waitFrames := func(l transport.Link, what string) {
		select {
		case <-l.Recv():
		case <-time.After(15 * time.Second):
			t.Fatalf("no frames arrived %s", what)
		}
	}

	time.Sleep(30 * time.Millisecond)
	t1, recv := startPeer()
	waitFrames(recv, "after the peer came up late")
	t1.Close()

	time.Sleep(30 * time.Millisecond)
	t1b, recv2 := startPeer()
	defer t1b.Close()
	waitFrames(recv2, "after the peer restarted")

	if st := t0.Stats(); st.Dials < 2 {
		t.Fatalf("expected repeated dial attempts, got stats %+v", st)
	}
}
