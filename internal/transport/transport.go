// Package transport abstracts the directed links of the message-passing
// port (S13, internal/msgpass) behind a small interface, so the same
// protocol code runs over in-process Go channels, real TCP sockets, or a
// chaos-impaired wrapper of either — the wire half of carrying SSMFP into
// "a real network" (the paper's closing open problem).
//
// A Transport hands out one Link per directed edge (u→v); the protocol
// layer sends typed Frames on the link's send end and fans frames in from
// the link's receive channel. Every backend is best-effort by contract:
// Send may drop a frame (full queue, impairment, a TCP connection mid
// reconnect) and never blocks the caller — the SSMFP hop handshake's
// retransmission is what recovers losses, exactly as it recovers the
// simulated losses of the state model. Backends:
//
//   - Chan (chanport.go): buffered Go channels, one per directed edge —
//     the original msgpass wiring, extracted. Whole-graph scope: every
//     link's both ends live in this process.
//   - TCP (tcp.go): length-prefixed binary frames (codec.go) over real
//     sockets, one listener per node and lazily-dialed outbound
//     connections with exponential backoff + jitter. Node scope: the
//     transport serves one processor; each SSMFP node can be its own OS
//     process (cmd/ssmfp-node).
//   - Chaos (chaos.go): a deterministic-under-seed impairment wrapper
//     composable over either backend — latency/jitter, loss, duplication,
//     genuine reordering, bandwidth caps, and scheduled partition/heal
//     windows.
//
// The package sits below msgpass and may import only internal/graph and
// internal/obs (for wall-clock wire events, Step/Round = −1).
package transport

import (
	"ssmfp/internal/graph"
)

// Message is the wire image of one higher-layer message. It mirrors the
// simulator's bookkeeping (UID and validity) so the same exactly-once
// oracles apply across process boundaries.
type Message struct {
	Payload string
	Color   int
	UID     uint64
	Src     graph.ProcessID
	Dest    graph.ProcessID
	Valid   bool
}

// Offer proposes the transfer of the sender's bufE occupancy for Dest;
// Seq identifies the occupancy (monotone per sender).
type Offer struct {
	Dest graph.ProcessID
	Seq  uint64
	Msg  Message
}

// Ack is the shape shared by the three control frames of the hop
// handshake (accept, cancel, cancelAck): a destination stream and the
// sequence number being acknowledged, withdrawn, or killed.
type Ack struct {
	Dest graph.ProcessID
	Seq  uint64
}

// Frame is the unit a Link carries: one typed SSMFP protocol frame.
// Kind selects the payload field; the others hold their zero values. The
// payload fields are values, not pointers: a frame crosses goroutines and
// processes by copy, so the send→wire→deliver path never heap-allocates
// per frame (BenchmarkSendHotPathParallel and BenchmarkDeliveryHotPath
// hold that to 0 allocs/op).
type Frame struct {
	Kind  FrameKind
	From  graph.ProcessID
	DV    []int // KindDV: distance vector (dist per destination)
	Offer Offer // KindOffer
	Ack   Ack   // KindAccept / KindCancel / KindCancelAck
}

// FrameKind discriminates the payload field a Frame carries.
type FrameKind uint8

// The frame kinds of wire-format version 1 (codec.go). Values are part of
// the wire format; do not renumber.
const (
	KindInvalid FrameKind = iota
	KindDV
	KindOffer
	KindAccept
	KindCancel
	KindCancelAck
)

// String names the kind for stats and wire events.
func (k FrameKind) String() string {
	switch k {
	case KindDV:
		return "dv"
	case KindOffer:
		return "offer"
	case KindAccept:
		return "accept"
	case KindCancel:
		return "cancel"
	case KindCancelAck:
		return "cancelAck"
	}
	return "invalid"
}

// Link is one directed edge u→v. The sender side uses Send, the receiver
// side ranges over Recv; with a node-scoped backend (TCP) only the local
// end is operative — Send on a receive-only end (or vice versa) is a
// programming error and panics.
type Link interface {
	// Send puts f on the wire, best-effort: it never blocks, and reports
	// false when the frame was dropped (full queue, active impairment,
	// link down). Callers rely on retransmission, not on the return value,
	// which exists for stats and tests.
	Send(f Frame) bool
	// Recv is the channel the far end's frames arrive on. The channel is
	// never closed while the transport is open; receivers multiplex it
	// with their own stop signal.
	Recv() <-chan Frame
	// Stats snapshots this link's counters.
	Stats() LinkStats
	// Close releases the link's resources. Transport.Close closes every
	// link; per-link Close exists for tests.
	Close() error
}

// LinkStats counts one directed link's wire activity.
type LinkStats struct {
	// Sent counts frames handed to the wire (after any impairment).
	Sent uint64
	// Recvd counts frames that arrived on Recv.
	Recvd uint64
	// DroppedFull counts frames dropped because a queue was full
	// (congestion) or the connection was down.
	DroppedFull uint64
	// DroppedImpair counts frames dropped by injected impairment (chaos
	// loss or an active partition window).
	DroppedImpair uint64
	// Duplicated counts extra copies injected by impairment.
	Duplicated uint64
	// BytesSent / BytesRecvd count frame bytes through this link: socket
	// bytes on the TCP backend, encoded-equivalent bytes (EncodedSize) on
	// the in-memory backend — so per-link byte rates mean the same thing
	// whichever wire a deployment runs on.
	BytesSent  uint64
	BytesRecvd uint64
	// Queued is the point-in-time occupancy of the link's outbound queue.
	Queued int
}

// Stats aggregates wire activity over a whole transport.
type Stats struct {
	FramesSent    uint64 `json:"framesSent"`
	FramesRecvd   uint64 `json:"framesRecvd"`
	DroppedFull   uint64 `json:"droppedFull"`
	DroppedImpair uint64 `json:"droppedImpair"`
	Duplicated    uint64 `json:"duplicated"`
	// BytesSent / BytesRecvd count frame bytes: socket bytes on the TCP
	// backend, encoded-equivalent bytes on the in-memory backend.
	BytesSent  uint64 `json:"bytesSent"`
	BytesRecvd uint64 `json:"bytesRecvd"`
	// Dials counts outbound connection attempts, Redials the subset that
	// were reconnections after a working connection failed (TCP only).
	Dials   uint64 `json:"dials"`
	Redials uint64 `json:"redials"`
}

// Elastic is the optional interface of transports that support runtime
// topology change — the wire half of an elastic cluster. A backend that
// implements it can gain and lose directed links while traffic flows;
// msgpass.Network.ApplyEpoch requires it whenever an epoch transition
// adds or removes edges. All three backends (Chan, TCP, Chaos) implement
// it; Chaos forwards to its inner transport.
type Elastic interface {
	// EnsureLink makes the directed link from→to available. Idempotent:
	// an existing link is left untouched. For node-scoped backends (TCP)
	// only edges incident to the local processor are meaningful; the far
	// peer's dial address must already be known (TCP.AddPeer).
	EnsureLink(from, to graph.ProcessID) error
	// DropLink tears the directed link from→to down. Idempotent. Frames
	// in flight are lost (the handshake's retransmission machinery — or
	// the epoch protocol's graceful two-phase cut — is what keeps message
	// transfer safe); Sends on a stale handle drop and count as
	// congestion losses.
	DropLink(from, to graph.ProcessID)
}

// Transport hands out the directed links of a deployment.
type Transport interface {
	// Link returns the directed link from→to. Implementations cache
	// links: calling Link twice with the same edge returns the same Link.
	// Unknown edges panic — the topology is fixed at construction.
	Link(from, to graph.ProcessID) Link
	// Stats snapshots the transport-wide counters (for a wrapper, merged
	// with the wrapped backend's).
	Stats() Stats
	// Close shuts the transport down: goroutines stop, sockets close,
	// pending impairment timers are cancelled. Frames in flight are lost.
	Close() error
}
