package transport

import (
	"bytes"
	"io"
	"reflect"
	"strings"
	"testing"
	"testing/iotest"
)

// sampleFrames covers every frame kind and the value edge cases the
// varint encoding cares about (zero, negative, max, empty payload).
func sampleFrames() []Frame {
	return []Frame{
		{Kind: KindDV, From: 0, DV: []int{0}},
		{Kind: KindDV, From: 3, DV: []int{0, 1, 2, 3, 4, 5, 6, 7}},
		{Kind: KindDV, From: 7, DV: []int{12, -1, 1 << 30, 0, 3}},
		{Kind: KindOffer, From: 1, Offer: Offer{Dest: 4, Seq: 1, Msg: Message{
			Payload: "hello", Color: 2, UID: 42, Src: 1, Dest: 4, Valid: true}}},
		{Kind: KindOffer, From: 2, Offer: Offer{Dest: 0, Seq: 1 << 62, Msg: Message{
			Payload: "", Color: -3, UID: 1<<60 + 9, Src: 2, Dest: 0, Valid: false}}},
		{Kind: KindOffer, From: 9, Offer: Offer{Dest: 5, Seq: 77, Msg: Message{
			Payload: strings.Repeat("x", 4096), Color: 0, UID: 1, Src: 9, Dest: 5, Valid: true}}},
		{Kind: KindAccept, From: 5, Ack: Ack{Dest: 2, Seq: 9}},
		{Kind: KindCancel, From: 0, Ack: Ack{Dest: 0, Seq: 0}},
		{Kind: KindCancelAck, From: 6, Ack: Ack{Dest: 3, Seq: 1<<64 - 1}},
	}
}

func TestCodecRoundTrip(t *testing.T) {
	for i, f := range sampleFrames() {
		body := EncodeFrame(&f)
		got, err := DecodeFrame(body)
		if err != nil {
			t.Fatalf("frame %d: decode: %v", i, err)
		}
		if !reflect.DeepEqual(got, f) {
			t.Fatalf("frame %d: round trip mismatch:\n got %+v\nwant %+v", i, got, f)
		}
	}
}

func TestCodecStreamRoundTrip(t *testing.T) {
	frames := sampleFrames()
	var buf bytes.Buffer
	total := 0
	for i := range frames {
		n, err := WriteFrame(&buf, &frames[i])
		if err != nil {
			t.Fatalf("write frame %d: %v", i, err)
		}
		total += n
	}
	if buf.Len() != total {
		t.Fatalf("reported %d bytes written, buffer holds %d", total, buf.Len())
	}
	for i := range frames {
		got, _, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("read frame %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, frames[i]) {
			t.Fatalf("stream frame %d mismatch: got %+v", i, got)
		}
	}
	if buf.Len() != 0 {
		t.Fatalf("%d bytes left over after reading all frames", buf.Len())
	}
}

func TestCodecRejects(t *testing.T) {
	good := EncodeFrame(&Frame{Kind: KindAccept, From: 1, Ack: Ack{Dest: 2, Seq: 9}})
	cases := map[string][]byte{
		"empty":            {},
		"bad version":      append([]byte{99}, good[1:]...),
		"unknown kind":     {CodecVersion, 200, 1},
		"invalid kind":     {CodecVersion, byte(KindInvalid), 1},
		"truncated":        good[:len(good)-1],
		"trailing bytes":   append(append([]byte{}, good...), 0),
		"empty dv":         {CodecVersion, byte(KindDV), 1, 0},
		"dv count too big": {CodecVersion, byte(KindDV), 1, 0xFF, 0xFF, 0xFF, 0x7F},
		"huge payload len": {CodecVersion, byte(KindOffer), 1, 0, 1, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F},
	}
	for name, b := range cases {
		if _, err := DecodeFrame(b); err == nil {
			t.Errorf("%s: decode accepted %v", name, b)
		}
	}
}

func TestReadFrameRejectsOversizedPrefix(t *testing.T) {
	// A hostile length prefix must fail before allocating the body.
	var buf bytes.Buffer
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, _, err := ReadFrame(&buf); err == nil {
		t.Fatal("oversized length prefix accepted")
	}
}

func TestEncodedSizeMatchesEncoding(t *testing.T) {
	for i, f := range sampleFrames() {
		if got, want := EncodedSize(&f), len(EncodeFrame(&f)); got != want {
			t.Errorf("frame %d: EncodedSize = %d, encoding is %d bytes", i, got, want)
		}
	}
}

// shortWriter accepts at most limit bytes total, then reports a short
// write — the misbehaving-writer case WriteFrame's accounting must
// survive.
type shortWriter struct {
	buf   bytes.Buffer
	limit int
}

func (w *shortWriter) Write(p []byte) (int, error) {
	room := w.limit - w.buf.Len()
	if room >= len(p) {
		return w.buf.Write(p)
	}
	if room > 0 {
		w.buf.Write(p[:room])
	}
	return max(room, 0), io.ErrShortWrite
}

// TestWriteFrameShortWriter pins the byte-accounting contract: the count
// WriteFrame returns is exactly what the underlying writer accepted, even
// when the write is cut short mid-header (the old two-write implementation
// reported 4+n bytes regardless of how much of the header landed).
func TestWriteFrameShortWriter(t *testing.T) {
	f := Frame{Kind: KindOffer, From: 1, Offer: Offer{Dest: 4, Seq: 1, Msg: Message{
		Payload: "payload", UID: 9, Src: 1, Dest: 4, Valid: true}}}
	for _, limit := range []int{0, 2, 4, 7} {
		w := &shortWriter{limit: limit}
		n, err := WriteFrame(w, &f)
		if err != io.ErrShortWrite {
			t.Fatalf("limit %d: err = %v, want ErrShortWrite", limit, err)
		}
		if n != w.buf.Len() {
			t.Fatalf("limit %d: reported %d bytes written, writer accepted %d", limit, n, w.buf.Len())
		}
		if n > limit {
			t.Fatalf("limit %d: reported %d bytes past the writer's limit", limit, n)
		}
	}
	// An immediately-failing writer reports zero bytes, not a phantom header.
	if n, err := WriteFrame(errWriter{}, &f); err == nil || n != 0 {
		t.Fatalf("failing writer: n=%d err=%v, want 0 bytes and an error", n, err)
	}
}

type errWriter struct{}

func (errWriter) Write(p []byte) (int, error) { return 0, io.ErrClosedPipe }

// TestReadFrameFragmentedReader drives ReadFrame through iotest's
// one-byte-at-a-time reader: framing and byte counts must hold no matter
// how the stream fragments.
func TestReadFrameFragmentedReader(t *testing.T) {
	frames := sampleFrames()
	var buf bytes.Buffer
	want := 0
	for i := range frames {
		n, err := WriteFrame(&buf, &frames[i])
		if err != nil {
			t.Fatal(err)
		}
		want += n
	}
	r := iotest.OneByteReader(&buf)
	got := 0
	for i := range frames {
		f, n, err := ReadFrame(r)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		got += n
		if !reflect.DeepEqual(f, frames[i]) {
			t.Fatalf("frame %d mismatch over fragmented reads: %+v", i, f)
		}
	}
	if got != want {
		t.Fatalf("read %d bytes of %d written", got, want)
	}
}

// TestWriteReadFrameAllocFree holds the pooled codec path to zero
// steady-state allocations: after warmup, writing and reading a frame
// reuses the pooled staging buffers. (The decoded offer's payload string
// is the one unavoidable allocation on the read side, so the read bound
// is the payload copy alone.)
func TestWriteReadFrameAllocFree(t *testing.T) {
	f := Frame{Kind: KindAccept, From: 3, Ack: Ack{Dest: 1, Seq: 42}}
	var sink bytes.Buffer
	sink.Grow(1 << 16)
	writes := testing.AllocsPerRun(200, func() {
		if _, err := WriteFrame(&sink, &f); err != nil {
			t.Fatal(err)
		}
	})
	if writes > 0 {
		t.Fatalf("WriteFrame allocates %.1f times per frame, want 0", writes)
	}
	reads := testing.AllocsPerRun(200, func() {
		if _, _, err := ReadFrame(&sink); err != nil {
			t.Fatal(err)
		}
	})
	if reads > 0 {
		t.Fatalf("ReadFrame of an ack allocates %.1f times per frame, want 0", reads)
	}
}

// FuzzFrameCodec holds the codec to totality and round-trip identity:
// arbitrary bytes either fail to decode or decode to a frame that
// re-encodes and re-decodes to the same value.
func FuzzFrameCodec(f *testing.F) {
	for _, fr := range sampleFrames() {
		f.Add(EncodeFrame(&fr))
	}
	f.Add([]byte{})
	f.Add([]byte{CodecVersion, byte(KindDV), 1, 2, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := DecodeFrame(data)
		if err != nil {
			return
		}
		body := EncodeFrame(&fr)
		fr2, err := DecodeFrame(body)
		if err != nil {
			t.Fatalf("re-decode of re-encoded frame failed: %v\nframe %+v", err, fr)
		}
		if !reflect.DeepEqual(fr, fr2) {
			t.Fatalf("round trip not identical:\n first %+v\nsecond %+v", fr, fr2)
		}
	})
}
