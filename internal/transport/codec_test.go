package transport

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// sampleFrames covers every frame kind and the value edge cases the
// varint encoding cares about (zero, negative, max, empty payload).
func sampleFrames() []Frame {
	return []Frame{
		{From: 0, DV: []int{0}},
		{From: 3, DV: []int{0, 1, 2, 3, 4, 5, 6, 7}},
		{From: 7, DV: []int{12, -1, 1 << 30, 0, 3}},
		{From: 1, Offer: &Offer{Dest: 4, Seq: 1, Msg: Message{
			Payload: "hello", Color: 2, UID: 42, Src: 1, Dest: 4, Valid: true}}},
		{From: 2, Offer: &Offer{Dest: 0, Seq: 1 << 62, Msg: Message{
			Payload: "", Color: -3, UID: 1<<60 + 9, Src: 2, Dest: 0, Valid: false}}},
		{From: 9, Offer: &Offer{Dest: 5, Seq: 77, Msg: Message{
			Payload: strings.Repeat("x", 4096), Color: 0, UID: 1, Src: 9, Dest: 5, Valid: true}}},
		{From: 5, Accept: &Ack{Dest: 2, Seq: 9}},
		{From: 0, Cancel: &Ack{Dest: 0, Seq: 0}},
		{From: 6, CancelAck: &Ack{Dest: 3, Seq: 1<<64 - 1}},
	}
}

func TestCodecRoundTrip(t *testing.T) {
	for i, f := range sampleFrames() {
		body := EncodeFrame(&f)
		got, err := DecodeFrame(body)
		if err != nil {
			t.Fatalf("frame %d: decode: %v", i, err)
		}
		if !reflect.DeepEqual(got, f) {
			t.Fatalf("frame %d: round trip mismatch:\n got %+v\nwant %+v", i, got, f)
		}
	}
}

func TestCodecStreamRoundTrip(t *testing.T) {
	frames := sampleFrames()
	var buf bytes.Buffer
	total := 0
	for i := range frames {
		n, err := WriteFrame(&buf, &frames[i])
		if err != nil {
			t.Fatalf("write frame %d: %v", i, err)
		}
		total += n
	}
	if buf.Len() != total {
		t.Fatalf("reported %d bytes written, buffer holds %d", total, buf.Len())
	}
	for i := range frames {
		got, _, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("read frame %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, frames[i]) {
			t.Fatalf("stream frame %d mismatch: got %+v", i, got)
		}
	}
	if buf.Len() != 0 {
		t.Fatalf("%d bytes left over after reading all frames", buf.Len())
	}
}

func TestCodecRejects(t *testing.T) {
	good := EncodeFrame(&Frame{From: 1, Accept: &Ack{Dest: 2, Seq: 9}})
	cases := map[string][]byte{
		"empty":            {},
		"bad version":      append([]byte{99}, good[1:]...),
		"unknown kind":     {CodecVersion, 200, 1},
		"invalid kind":     {CodecVersion, byte(KindInvalid), 1},
		"truncated":        good[:len(good)-1],
		"trailing bytes":   append(append([]byte{}, good...), 0),
		"empty dv":         {CodecVersion, byte(KindDV), 1, 0},
		"dv count too big": {CodecVersion, byte(KindDV), 1, 0xFF, 0xFF, 0xFF, 0x7F},
		"huge payload len": {CodecVersion, byte(KindOffer), 1, 0, 1, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F},
	}
	for name, b := range cases {
		if _, err := DecodeFrame(b); err == nil {
			t.Errorf("%s: decode accepted %v", name, b)
		}
	}
}

func TestReadFrameRejectsOversizedPrefix(t *testing.T) {
	// A hostile length prefix must fail before allocating the body.
	var buf bytes.Buffer
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, _, err := ReadFrame(&buf); err == nil {
		t.Fatal("oversized length prefix accepted")
	}
}

// FuzzFrameCodec holds the codec to totality and round-trip identity:
// arbitrary bytes either fail to decode or decode to a frame that
// re-encodes and re-decodes to the same value.
func FuzzFrameCodec(f *testing.F) {
	for _, fr := range sampleFrames() {
		f.Add(EncodeFrame(&fr))
	}
	f.Add([]byte{})
	f.Add([]byte{CodecVersion, byte(KindDV), 1, 2, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := DecodeFrame(data)
		if err != nil {
			return
		}
		body := EncodeFrame(&fr)
		fr2, err := DecodeFrame(body)
		if err != nil {
			t.Fatalf("re-decode of re-encoded frame failed: %v\nframe %+v", err, fr)
		}
		if !reflect.DeepEqual(fr, fr2) {
			t.Fatalf("round trip not identical:\n first %+v\nsecond %+v", fr, fr2)
		}
	})
}
