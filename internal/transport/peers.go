package transport

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"ssmfp/internal/graph"
)

// Peer address files map processor IDs to TCP addresses, one entry per
// line ("<id> <host:port>"); blank lines and #-comments are ignored.
// cmd/ssmfp-node reads one to learn where its neighbors listen, and the
// -spawn launcher writes one for the cluster it forks.

// ParsePeers reads a peer address map from r.
func ParsePeers(r io.Reader) (map[graph.ProcessID]string, error) {
	peers := make(map[graph.ProcessID]string)
	sc := bufio.NewScanner(r)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("peers line %d: want \"<id> <host:port>\", got %q", lineno, line)
		}
		id, err := strconv.Atoi(fields[0])
		if err != nil || id < 0 {
			return nil, fmt.Errorf("peers line %d: bad processor id %q", lineno, fields[0])
		}
		if _, dup := peers[graph.ProcessID(id)]; dup {
			return nil, fmt.Errorf("peers line %d: duplicate entry for processor %d", lineno, id)
		}
		peers[graph.ProcessID(id)] = fields[1]
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(peers) == 0 {
		return nil, fmt.Errorf("peers file is empty")
	}
	return peers, nil
}

// FormatPeers renders a peer map in the file format, sorted by ID.
func FormatPeers(peers map[graph.ProcessID]string) string {
	ids := make([]graph.ProcessID, 0, len(peers))
	for id := range peers {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var b strings.Builder
	for _, id := range ids {
		fmt.Fprintf(&b, "%d %s\n", id, peers[id])
	}
	return b.String()
}
