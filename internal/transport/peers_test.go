package transport

import (
	"strings"
	"testing"

	"ssmfp/internal/graph"
)

func TestPeersRoundTrip(t *testing.T) {
	peers := map[graph.ProcessID]string{
		0: "127.0.0.1:7000",
		1: "127.0.0.1:7001",
		4: "10.0.0.4:9000",
	}
	got, err := ParsePeers(strings.NewReader(FormatPeers(peers)))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(peers) {
		t.Fatalf("got %v", got)
	}
	for id, addr := range peers {
		if got[id] != addr {
			t.Fatalf("peer %d = %q, want %q", id, got[id], addr)
		}
	}
}

func TestPeersCommentsAndErrors(t *testing.T) {
	good := "# cluster\n0 127.0.0.1:7000\n\n1 127.0.0.1:7001\n"
	if p, err := ParsePeers(strings.NewReader(good)); err != nil || len(p) != 2 {
		t.Fatalf("good file: %v, %v", p, err)
	}
	for name, src := range map[string]string{
		"empty":        "",
		"bad id":       "x 127.0.0.1:7000\n",
		"negative id":  "-1 127.0.0.1:7000\n",
		"missing addr": "0\n",
		"extra field":  "0 host:1 extra\n",
		"duplicate":    "0 a:1\n0 b:2\n",
	} {
		if p, err := ParsePeers(strings.NewReader(src)); err == nil {
			t.Errorf("%s: accepted as %v", name, p)
		}
	}
}
