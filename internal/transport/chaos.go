package transport

import (
	"math/rand"
	"sync"
	"time"

	"ssmfp/internal/graph"
	"ssmfp/internal/obs"
)

// PartitionWindow schedules a network partition: for the half-open
// interval [Start, Start+Duration) after the chaos transport is built,
// every frame on the listed undirected edges is dropped in both
// directions. Windows may overlap; an edge is cut while any window
// covering it is active. Healing is implicit at the window's end.
type PartitionWindow struct {
	Start    time.Duration
	Duration time.Duration
	Edges    [][2]graph.ProcessID
}

// covers reports whether w cuts the directed edge from→to.
func (w *PartitionWindow) covers(from, to graph.ProcessID) bool {
	for _, e := range w.Edges {
		if (e[0] == from && e[1] == to) || (e[0] == to && e[1] == from) {
			return true
		}
	}
	return false
}

// ChaosOptions tunes the impairment wrapper. All impairment decisions
// (loss, duplication, jitter draws, reorder bursts) come from per-link
// generators derived from Seed, so two runs with the same seed make the
// same decisions in the same per-link order — deterministic under seed,
// up to goroutine scheduling of the unimpaired parts.
type ChaosOptions struct {
	Seed int64
	// Latency delays every frame by this base one-way time.
	Latency time.Duration
	// Jitter adds a uniform extra delay in [0, Jitter) per frame. Unequal
	// delays on consecutive frames are what genuinely reorders a link.
	Jitter time.Duration
	// LossRate drops each frame with this probability (0..1).
	LossRate float64
	// DupRate injects a second copy of a frame with this probability.
	DupRate float64
	// ReorderRate holds a frame back an extra ReorderSpan with this
	// probability, letting later frames overtake it even when Jitter is 0.
	ReorderRate float64
	// ReorderSpan is the extra holdback for reordered frames; defaults to
	// 4×(Latency+Jitter), or 2ms when both are zero.
	ReorderSpan time.Duration
	// BandwidthBps caps each directed link at this many encoded frame
	// bytes per second (0 = unlimited): frames queue behind each other's
	// serialization time, like a real line rate.
	BandwidthBps int
	// Partitions schedules cut/heal windows.
	Partitions []PartitionWindow
	// Bus, when non-nil, receives KindWire events for partition cuts and
	// heals (wall-clock domain, Step/Round −1).
	Bus *obs.Bus
}

func (o ChaosOptions) withDefaults() ChaosOptions {
	if o.ReorderSpan <= 0 {
		o.ReorderSpan = 4 * (o.Latency + o.Jitter)
		if o.ReorderSpan <= 0 {
			o.ReorderSpan = 2 * time.Millisecond
		}
	}
	return o
}

// Chaos composes impairment over any inner transport. All impairment is
// applied on the send side of a link: a frame is dropped, duplicated,
// and/or delayed before it reaches the inner backend, so Recv is the
// inner channel untouched and the wrapper composes transparently over
// both whole-graph (Chan) and node-scoped (TCP) backends.
type Chaos struct {
	inner Transport
	opts  ChaosOptions
	start time.Time
	done  chan struct{}

	mu     sync.Mutex
	links  map[[2]graph.ProcessID]*chaosLink
	timers map[*time.Timer]struct{}
	closed bool
}

// NewChaos wraps inner with impairment.
func NewChaos(inner Transport, opts ChaosOptions) *Chaos {
	c := &Chaos{
		inner:  inner,
		opts:   opts.withDefaults(),
		start:  time.Now(),
		done:   make(chan struct{}),
		links:  make(map[[2]graph.ProcessID]*chaosLink),
		timers: make(map[*time.Timer]struct{}),
	}
	if c.opts.Bus != nil {
		for _, w := range c.opts.Partitions {
			c.announcePartition(w)
		}
	}
	return c
}

// announcePartition schedules the cut and heal wire events for one window.
func (c *Chaos) announcePartition(w PartitionWindow) {
	publish := func(detail string) func() {
		return func() {
			for _, e := range w.Edges {
				c.opts.Bus.Publish(obs.Event{
					Kind: obs.KindWire, Step: -1, Round: -1,
					From: e[0], To: e[1], Detail: detail,
				})
			}
		}
	}
	c.after(w.Start, publish("chaos: partition cut"))
	c.after(w.Start+w.Duration, publish("chaos: partition heal"))
}

// after schedules fn on the chaos clock; the timer is tracked so Close
// can cancel it.
func (c *Chaos) after(d time.Duration, fn func()) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	var t *time.Timer
	t = time.AfterFunc(d, func() {
		c.mu.Lock()
		delete(c.timers, t)
		dead := c.closed
		c.mu.Unlock()
		if !dead {
			fn()
		}
	})
	c.timers[t] = struct{}{}
}

// Link returns the impaired view of the inner directed link from→to.
func (c *Chaos) Link(from, to graph.ProcessID) Link {
	key := [2]graph.ProcessID{from, to}
	c.mu.Lock()
	if l, ok := c.links[key]; ok {
		c.mu.Unlock()
		return l
	}
	c.mu.Unlock()
	// Resolve the inner link outside the lock: Link may panic on a
	// non-edge, and inner implementations may take their own locks.
	inner := c.inner.Link(from, to)
	var windows []PartitionWindow
	for _, w := range c.opts.Partitions {
		if w.covers(from, to) {
			windows = append(windows, w)
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if l, ok := c.links[key]; ok {
		return l
	}
	l := &chaosLink{
		tr:      c,
		inner:   inner,
		windows: windows,
		rng:     rand.New(rand.NewSource(c.opts.Seed ^ (int64(from)*2654435761 + int64(to) + 1))),
		wake:    make(chan struct{}, 1),
	}
	c.links[key] = l
	return l
}

// EnsureLink forwards to the inner transport when it is elastic. The
// impaired view is created lazily on the next Link call, as usual.
func (c *Chaos) EnsureLink(from, to graph.ProcessID) error {
	if el, ok := c.inner.(Elastic); ok {
		return el.EnsureLink(from, to)
	}
	return nil
}

// DropLink forgets the cached impaired view (its dispatcher drains what
// it already holds into a dead inner link) and forwards to the inner
// transport when it is elastic.
func (c *Chaos) DropLink(from, to graph.ProcessID) {
	key := [2]graph.ProcessID{from, to}
	c.mu.Lock()
	delete(c.links, key)
	c.mu.Unlock()
	if el, ok := c.inner.(Elastic); ok {
		el.DropLink(from, to)
	}
}

// Stats merges the inner backend's counters with the impairment counters.
func (c *Chaos) Stats() Stats {
	s := c.inner.Stats()
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, l := range c.links {
		// The counters belong to the link's lock domain, not the
		// transport's (Send holds only l.mu).
		l.mu.Lock()
		s.DroppedImpair += l.dropImpair
		s.Duplicated += l.duplicated
		l.mu.Unlock()
	}
	return s
}

// Close stops the link dispatchers, cancels pending announcement timers
// and closes the inner transport.
func (c *Chaos) Close() error {
	c.mu.Lock()
	if !c.closed {
		c.closed = true
		close(c.done)
	}
	for t := range c.timers {
		t.Stop()
	}
	c.timers = map[*time.Timer]struct{}{}
	c.mu.Unlock()
	return c.inner.Close()
}

// chaosLink impairs the send side of one directed link. Delayed frames go
// through a per-link dispatcher that releases them in due-time order
// (FIFO among equal dues): reordering happens exactly when the delay
// model says it does (unequal jitter or a reorder holdback), never from
// the race of one-goroutine-per-frame timer callbacks — under a bandwidth
// cap the cumulative serialization delays are non-decreasing, so the line
// stays strictly FIFO the way a real line does.
type chaosLink struct {
	tr      *Chaos
	inner   Link
	windows []PartitionWindow

	mu         sync.Mutex
	rng        *rand.Rand
	nextFree   time.Duration // bandwidth cap: when the line is free again
	dropImpair uint64
	duplicated uint64

	heap    []timedFrame // min-heap on (due, seq)
	seq     uint64       // enqueue order, the tie-break for equal dues
	wake    chan struct{}
	started bool // dispatcher goroutine running
}

// timedFrame is one frame scheduled for release on the chaos clock.
type timedFrame struct {
	due time.Duration
	seq uint64
	f   Frame
}

func (l *chaosLink) Recv() <-chan Frame { return l.inner.Recv() }

func (l *chaosLink) Close() error { return l.inner.Close() }

func (l *chaosLink) Stats() LinkStats {
	s := l.inner.Stats()
	l.mu.Lock()
	s.DroppedImpair += l.dropImpair
	s.Duplicated += l.duplicated
	l.mu.Unlock()
	return s
}

// Send applies partition, loss, duplication, latency/jitter/reorder and
// the bandwidth cap, then forwards surviving (possibly delayed) copies to
// the inner link.
func (l *chaosLink) Send(f Frame) bool {
	o := &l.tr.opts
	elapsed := time.Since(l.tr.start)

	l.mu.Lock()
	for i := range l.windows {
		w := &l.windows[i]
		if elapsed >= w.Start && elapsed < w.Start+w.Duration {
			l.dropImpair++
			l.mu.Unlock()
			return false
		}
	}
	if o.LossRate > 0 && l.rng.Float64() < o.LossRate {
		l.dropImpair++
		l.mu.Unlock()
		return false
	}
	copies := 1
	if o.DupRate > 0 && l.rng.Float64() < o.DupRate {
		copies = 2
		l.duplicated++
	}
	var delayBuf [2]time.Duration // copies ≤ 2: no per-send allocation
	delays := delayBuf[:copies]
	for i := range delays {
		d := o.Latency
		if o.Jitter > 0 {
			d += time.Duration(l.rng.Int63n(int64(o.Jitter)))
		}
		if o.ReorderRate > 0 && l.rng.Float64() < o.ReorderRate {
			d += o.ReorderSpan
		}
		if o.BandwidthBps > 0 {
			tx := time.Duration(int64(EncodedSize(&f)) * int64(time.Second) / int64(o.BandwidthBps))
			if l.nextFree < elapsed {
				l.nextFree = elapsed
			}
			l.nextFree += tx
			d += l.nextFree - elapsed
		}
		delays[i] = d
	}
	// Release immediately only when nothing is queued ahead; otherwise the
	// frame joins the line behind its predecessors.
	inline := 0
	startWorker := false
	for _, d := range delays {
		if d <= 0 && len(l.heap) == 0 {
			inline++
			continue
		}
		l.seq++
		l.push(timedFrame{due: elapsed + d, seq: l.seq, f: f})
		if !l.started {
			l.started, startWorker = true, true
		}
	}
	l.mu.Unlock()

	if startWorker {
		go l.dispatch()
	} else if inline < len(delays) {
		select {
		case l.wake <- struct{}{}:
		default:
		}
	}
	for ; inline > 0; inline-- {
		l.inner.Send(f)
	}
	return true
}

// push adds tf to the due-ordered min-heap; caller holds l.mu.
func (l *chaosLink) push(tf timedFrame) {
	l.heap = append(l.heap, tf)
	i := len(l.heap) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !l.heapLess(i, p) {
			break
		}
		l.heap[i], l.heap[p] = l.heap[p], l.heap[i]
		i = p
	}
}

// popTop removes the earliest-due frame; caller holds l.mu.
func (l *chaosLink) popTop() {
	last := len(l.heap) - 1
	l.heap[0] = l.heap[last]
	l.heap[last] = timedFrame{} // release the payload reference
	l.heap = l.heap[:last]
	i := 0
	for {
		c := 2*i + 1
		if c >= last {
			break
		}
		if c+1 < last && l.heapLess(c+1, c) {
			c++
		}
		if !l.heapLess(c, i) {
			break
		}
		l.heap[i], l.heap[c] = l.heap[c], l.heap[i]
		i = c
	}
}

func (l *chaosLink) heapLess(i, j int) bool {
	if l.heap[i].due != l.heap[j].due {
		return l.heap[i].due < l.heap[j].due
	}
	return l.heap[i].seq < l.heap[j].seq
}

// dispatch is the link's release goroutine: it sleeps until the earliest
// due instant and forwards frames to the inner link in due order. It
// lives until the transport closes; undelivered frames at close are
// dropped, like the cancelled timers before it.
func (l *chaosLink) dispatch() {
	for {
		l.mu.Lock()
		for len(l.heap) > 0 && l.heap[0].due <= time.Since(l.tr.start) {
			top := l.heap[0]
			l.popTop()
			l.mu.Unlock()
			l.inner.Send(top.f)
			l.mu.Lock()
		}
		wait := time.Duration(-1)
		if len(l.heap) > 0 {
			wait = l.heap[0].due - time.Since(l.tr.start)
		}
		l.mu.Unlock()
		if wait < 0 {
			select {
			case <-l.wake:
			case <-l.tr.done:
				return
			}
			continue
		}
		t := time.NewTimer(wait)
		select {
		case <-t.C:
		case <-l.wake:
			t.Stop()
		case <-l.tr.done:
			t.Stop()
			return
		}
	}
}
