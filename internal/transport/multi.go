package transport

import (
	"sync"

	"ssmfp/internal/graph"
)

// Multi composes node-scoped transports (one TCP transport per
// processor, typically) into a whole-graph transport: the send end of
// u→v resolves into u's transport, the receive end into v's. It is how
// an in-process test or example runs a full loopback TCP cluster behind
// the same Transport interface msgpass consumes.
type Multi struct {
	per map[graph.ProcessID]Transport

	mu    sync.Mutex
	links map[[2]graph.ProcessID]*multiLink
}

// NewMulti builds the composite. Every processor of the deployment must
// be present in per.
func NewMulti(per map[graph.ProcessID]Transport) *Multi {
	return &Multi{per: per, links: make(map[[2]graph.ProcessID]*multiLink)}
}

// Link pairs u's send end with v's receive end.
func (m *Multi) Link(from, to graph.ProcessID) Link {
	key := [2]graph.ProcessID{from, to}
	m.mu.Lock()
	defer m.mu.Unlock()
	if l, ok := m.links[key]; ok {
		return l
	}
	l := &multiLink{
		send: m.per[from].Link(from, to),
		recv: m.per[to].Link(from, to),
	}
	m.links[key] = l
	return l
}

// EnsureLink forwards to the two node transports that own the edge's
// ends, when they are elastic.
func (m *Multi) EnsureLink(from, to graph.ProcessID) error {
	for _, p := range [2]graph.ProcessID{from, to} {
		if el, ok := m.per[p].(Elastic); ok {
			if err := el.EnsureLink(from, to); err != nil {
				return err
			}
		}
	}
	return nil
}

// DropLink forgets the cached composite link and forwards to the edge's
// owning node transports, when they are elastic.
func (m *Multi) DropLink(from, to graph.ProcessID) {
	key := [2]graph.ProcessID{from, to}
	m.mu.Lock()
	delete(m.links, key)
	m.mu.Unlock()
	for _, p := range [2]graph.ProcessID{from, to} {
		if el, ok := m.per[p].(Elastic); ok {
			el.DropLink(from, to)
		}
	}
}

// Stats sums every node transport's counters. Sends are counted at the
// sender's transport and receives at the receiver's, so the sum counts
// each frame once per direction.
func (m *Multi) Stats() Stats {
	var s Stats
	for _, t := range m.per {
		ts := t.Stats()
		s.FramesSent += ts.FramesSent
		s.FramesRecvd += ts.FramesRecvd
		s.DroppedFull += ts.DroppedFull
		s.DroppedImpair += ts.DroppedImpair
		s.Duplicated += ts.Duplicated
		s.BytesSent += ts.BytesSent
		s.BytesRecvd += ts.BytesRecvd
		s.Dials += ts.Dials
		s.Redials += ts.Redials
	}
	return s
}

// Close closes every node transport, returning the first error.
func (m *Multi) Close() error {
	var first error
	for _, t := range m.per {
		if err := t.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// multiLink splices a send end and a receive end of the same directed
// edge, owned by two different node transports.
type multiLink struct {
	send Link
	recv Link
}

func (l *multiLink) Send(f Frame) bool  { return l.send.Send(f) }
func (l *multiLink) Recv() <-chan Frame { return l.recv.Recv() }
func (l *multiLink) Close() error       { l.send.Close(); return l.recv.Close() }

func (l *multiLink) Stats() LinkStats {
	s := l.send.Stats()
	r := l.recv.Stats()
	s.Recvd += r.Recvd
	s.DroppedFull += r.DroppedFull
	s.DroppedImpair += r.DroppedImpair
	return s
}
