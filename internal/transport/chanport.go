package transport

import (
	"fmt"
	"sync/atomic"

	"ssmfp/internal/graph"
)

// Chan is the in-process backend: one buffered Go channel per directed
// edge, the wiring msgpass originally built inside Network.send. It is
// whole-graph scoped — both ends of every link live in this process —
// and lossless except for congestion: a Send into a full channel drops
// the frame (retransmission recovers it), exactly the original behavior.
type Chan struct {
	g      *graph.Graph
	links  map[[2]graph.ProcessID]*chanLink // immutable after NewChan
	closed atomic.Bool
}

// DefaultDepth is the per-link channel buffer when the caller passes a
// non-positive depth.
const DefaultDepth = 64

// NewChan builds the channel transport for every directed edge of g with
// the given per-link buffer depth (≤0 selects DefaultDepth).
func NewChan(g *graph.Graph, depth int) *Chan {
	if depth <= 0 {
		depth = DefaultDepth
	}
	c := &Chan{g: g, links: make(map[[2]graph.ProcessID]*chanLink, 2*g.M())}
	for _, e := range g.Edges() {
		c.links[[2]graph.ProcessID{e[0], e[1]}] = &chanLink{tr: c, ch: make(chan Frame, depth)}
		c.links[[2]graph.ProcessID{e[1], e[0]}] = &chanLink{tr: c, ch: make(chan Frame, depth)}
	}
	return c
}

// Link returns the directed link from→to; it panics on a non-edge, as
// the original msgpass wiring did.
func (c *Chan) Link(from, to graph.ProcessID) Link {
	l, ok := c.links[[2]graph.ProcessID{from, to}]
	if !ok {
		panic(fmt.Sprintf("transport: no link %d→%d", from, to))
	}
	return l
}

// Stats sums the per-link counters.
func (c *Chan) Stats() Stats {
	var s Stats
	for _, l := range c.links {
		ls := l.Stats()
		s.FramesSent += ls.Sent
		s.FramesRecvd += ls.Recvd
		s.DroppedFull += ls.DroppedFull
		s.BytesSent += ls.BytesSent
		s.BytesRecvd += ls.BytesRecvd
	}
	return s
}

// Close marks the transport closed; subsequent Sends drop. Channels are
// left open so receivers can drain in-flight frames.
func (c *Chan) Close() error {
	c.closed.Store(true)
	return nil
}

// chanLink is one directed edge of the Chan backend.
type chanLink struct {
	tr      *Chan
	ch      chan Frame
	sent    atomic.Uint64
	bytes   atomic.Uint64
	dropped atomic.Uint64
}

func (l *chanLink) Send(f Frame) bool {
	if l.tr.closed.Load() {
		l.dropped.Add(1)
		return false
	}
	select {
	case l.ch <- f:
		l.sent.Add(1)
		// Encoded-equivalent bytes: what this frame would cost on a real
		// wire, so byte-rate telemetry is comparable across backends.
		l.bytes.Add(uint64(EncodedSize(&f)))
		return true
	default:
		l.dropped.Add(1)
		return false
	}
}

func (l *chanLink) Recv() <-chan Frame { return l.ch }

func (l *chanLink) Stats() LinkStats {
	sent := l.sent.Load()
	bytes := l.bytes.Load()
	return LinkStats{
		// In-memory transfer is instantaneous: every frame that entered
		// the channel has "arrived".
		Sent:        sent,
		Recvd:       sent,
		DroppedFull: l.dropped.Load(),
		BytesSent:   bytes,
		BytesRecvd:  bytes,
		Queued:      len(l.ch),
	}
}

func (l *chanLink) Close() error { return nil }
