package transport

import (
	"fmt"
	"sync"
	"sync/atomic"

	"ssmfp/internal/graph"
)

// Chan is the in-process backend: one buffered Go channel per directed
// edge, the wiring msgpass originally built inside Network.send. It is
// whole-graph scoped — both ends of every link live in this process —
// and lossless except for congestion: a Send into a full channel drops
// the frame (retransmission recovers it), exactly the original behavior.
// Chan is elastic: links can be added and removed at runtime (EnsureLink
// / DropLink), which is how an in-process deployment rides an epoch
// transition.
type Chan struct {
	g      *graph.Graph
	depth  int
	closed atomic.Bool

	mu    sync.RWMutex
	links map[[2]graph.ProcessID]*chanLink
}

// DefaultDepth is the per-link channel buffer when the caller passes a
// non-positive depth.
const DefaultDepth = 64

// NewChan builds the channel transport for every directed edge of g with
// the given per-link buffer depth (≤0 selects DefaultDepth).
func NewChan(g *graph.Graph, depth int) *Chan {
	if depth <= 0 {
		depth = DefaultDepth
	}
	c := &Chan{g: g, depth: depth, links: make(map[[2]graph.ProcessID]*chanLink, 2*g.M())}
	for _, e := range g.Edges() {
		c.links[[2]graph.ProcessID{e[0], e[1]}] = &chanLink{tr: c, ch: make(chan Frame, depth)}
		c.links[[2]graph.ProcessID{e[1], e[0]}] = &chanLink{tr: c, ch: make(chan Frame, depth)}
	}
	return c
}

// Link returns the directed link from→to; it panics on a non-edge, as
// the original msgpass wiring did. Edges added after construction must
// have been announced with EnsureLink first.
func (c *Chan) Link(from, to graph.ProcessID) Link {
	c.mu.RLock()
	l, ok := c.links[[2]graph.ProcessID{from, to}]
	c.mu.RUnlock()
	if !ok {
		panic(fmt.Sprintf("transport: no link %d→%d", from, to))
	}
	return l
}

// EnsureLink creates the directed link from→to if it does not exist.
func (c *Chan) EnsureLink(from, to graph.ProcessID) error {
	key := [2]graph.ProcessID{from, to}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.links[key]; !ok {
		c.links[key] = &chanLink{tr: c, ch: make(chan Frame, c.depth)}
	}
	return nil
}

// DropLink removes the directed link from→to. A stale handle held by a
// node that has not yet reconfigured keeps draining its channel; its
// Sends drop and count as congestion losses.
func (c *Chan) DropLink(from, to graph.ProcessID) {
	key := [2]graph.ProcessID{from, to}
	c.mu.Lock()
	defer c.mu.Unlock()
	if l, ok := c.links[key]; ok {
		l.dead.Store(true)
		delete(c.links, key)
	}
}

// Stats sums the per-link counters.
func (c *Chan) Stats() Stats {
	var s Stats
	c.mu.RLock()
	defer c.mu.RUnlock()
	for _, l := range c.links {
		ls := l.Stats()
		s.FramesSent += ls.Sent
		s.FramesRecvd += ls.Recvd
		s.DroppedFull += ls.DroppedFull
		s.BytesSent += ls.BytesSent
		s.BytesRecvd += ls.BytesRecvd
	}
	return s
}

// Close marks the transport closed; subsequent Sends drop. Channels are
// left open so receivers can drain in-flight frames.
func (c *Chan) Close() error {
	c.closed.Store(true)
	return nil
}

// chanLink is one directed edge of the Chan backend.
type chanLink struct {
	tr      *Chan
	ch      chan Frame
	dead    atomic.Bool // set by DropLink; Sends drop
	sent    atomic.Uint64
	bytes   atomic.Uint64
	dropped atomic.Uint64
}

func (l *chanLink) Send(f Frame) bool {
	if l.tr.closed.Load() || l.dead.Load() {
		l.dropped.Add(1)
		return false
	}
	select {
	case l.ch <- f:
		l.sent.Add(1)
		// Encoded-equivalent bytes: what this frame would cost on a real
		// wire, so byte-rate telemetry is comparable across backends.
		l.bytes.Add(uint64(EncodedSize(&f)))
		return true
	default:
		l.dropped.Add(1)
		return false
	}
}

func (l *chanLink) Recv() <-chan Frame { return l.ch }

func (l *chanLink) Stats() LinkStats {
	sent := l.sent.Load()
	bytes := l.bytes.Load()
	return LinkStats{
		// In-memory transfer is instantaneous: every frame that entered
		// the channel has "arrived".
		Sent:        sent,
		Recvd:       sent,
		DroppedFull: l.dropped.Load(),
		BytesSent:   bytes,
		BytesRecvd:  bytes,
		Queued:      len(l.ch),
	}
}

func (l *chanLink) Close() error { return nil }
