// Package baseline implements the classical (non-stabilizing)
// destination-based forwarding controller that §3.1 of the paper starts
// from: one buffer b_p(d) per processor and destination, moves restricted
// to the destination-based buffer graph of Merlin–Schweitzer (Figure 1),
// message identity checked by payload only (no color flag). With correct
// routing tables this controller is deadlock-free and delivers every
// message; with corrupted initial tables it exhibits exactly the failures
// the paper's protocol is designed to rule out:
//
//   - livelock: a message circulates forever in a routing loop (when no
//     routing repair runs),
//   - loss: the erase rule matches a *different* message with the same
//     payload at the next hop and deletes the original,
//   - duplication: the routing table changes between the copy and the
//     erase, leaving two live copies of one message.
//
// Experiment E-X1 runs this package against SSMFP from identical corrupted
// configurations; experiment E-X2 uses it as the fault-free cost baseline.
package baseline

import (
	"fmt"

	"ssmfp/internal/core"
	"ssmfp/internal/graph"
	"ssmfp/internal/routing"
	sm "ssmfp/internal/statemodel"
)

// NodeState is the forwarding state of one processor: the single buffer per
// destination plus the same higher-layer interface SSMFP uses (request bit,
// pending FIFO, UID counter).
type NodeState struct {
	Request bool
	Pending []core.Outbound
	Buf     []*core.Message // one buffer per destination; nil = empty
	NextSeq uint64
}

// Clone deep-copies the forwarding state (messages are immutable).
func (s *NodeState) Clone() *NodeState {
	return &NodeState{
		Request: s.Request,
		Pending: append([]core.Outbound(nil), s.Pending...),
		Buf:     append([]*core.Message(nil), s.Buf...),
		NextSeq: s.NextSeq,
	}
}

// Enqueue mirrors core.NodeState.Enqueue.
func (s *NodeState) Enqueue(payload string, dest graph.ProcessID) {
	s.Pending = append(s.Pending, core.Outbound{Payload: payload, Dest: dest})
	if !s.Request {
		s.Request = true
	}
}

// nextDestination mirrors the paper's macro.
func (s *NodeState) nextDestination() (graph.ProcessID, bool) {
	if len(s.Pending) == 0 {
		return 0, false
	}
	return s.Pending[0].Dest, true
}

// Node is the composed per-processor state: routing table plus baseline
// forwarding state.
type Node struct {
	RT *routing.NodeState
	FW *NodeState
}

// Clone implements statemodel.State.
func (n *Node) Clone() sm.State { return &Node{RT: n.RT.Clone(), FW: n.FW.Clone()} }

// RoutingOf adapts Node for routing.NewProgram.
func RoutingOf(s sm.State) *routing.NodeState { return s.(*Node).RT }

func fw(s sm.State) *NodeState { return s.(*Node).FW }

// CleanNode returns the fault-free initial state for p.
func CleanNode(g *graph.Graph, p graph.ProcessID) *Node {
	return &Node{RT: routing.CorrectState(g, p), FW: &NodeState{Buf: make([]*core.Message, g.N())}}
}

// CleanConfig returns the fault-free initial configuration.
func CleanConfig(g *graph.Graph) []sm.State {
	cfg := make([]sm.State, g.N())
	for p := 0; p < g.N(); p++ {
		cfg[p] = CleanNode(g, graph.ProcessID(p))
	}
	return cfg
}

// PriorityForwarding keeps the same priority split as SSMFP when the
// baseline is composed with the routing algorithm.
const PriorityForwarding = routing.Priority + 1

// NaiveProgram returns the naive shared-memory port of the classical
// controller — "SSMFP without colors": per destination d a generation rule
// G, a copy rule F1 (receiver pulls the message of the lowest-ID neighbor
// routed to it), an erase rule F2 (sender erases once the next hop holds a
// same-payload message last-hopped from it), and a consumption rule C at
// the destination. The payload-only match of F2 is the flaw the color flag
// fixes: it loses messages on payload collisions and duplicates them when
// the copy disappears (consumed or rerouted) before the erase.
func NaiveProgram(g *graph.Graph) sm.Program {
	var rules []sm.Rule
	for dd := 0; dd < g.N(); dd++ {
		rules = append(rules, destRules(graph.ProcessID(dd))...)
	}
	return sm.NewProgram(rules...)
}

// NaiveFullProgram composes the routing algorithm with the naive controller
// (used to show duplication/loss under repair; without A the corrupted
// tables never change and the failure mode is livelock instead).
func NaiveFullProgram(g *graph.Graph) sm.Program {
	return sm.Compose(routing.NewProgram(g, RoutingOf), NaiveProgram(g))
}

// puller returns the lowest-ID neighbor of p holding a message for d that
// is routed to p, if any.
func puller(v *sm.View, d graph.ProcessID) (graph.ProcessID, bool) {
	for _, q := range v.Neighbors() {
		nq := v.Read(q).(*Node)
		if nq.FW.Buf[d] != nil && nq.RT.NextHop(d) == v.ID() {
			return q, true
		}
	}
	return 0, false
}

func destRules(d graph.ProcessID) []sm.Rule {
	name := func(base string) string { return fmt.Sprintf("%s@%d", base, d) }
	return []sm.Rule{
		// (G) Generation into the empty buffer.
		{
			Name:     name("G"),
			Priority: PriorityForwarding,
			Guard: func(v *sm.View) bool {
				self := fw(v.Self())
				if !self.Request || self.Buf[d] != nil {
					return false
				}
				nd, ok := self.nextDestination()
				return ok && nd == d
			},
			Action: func(v *sm.View) {
				self := fw(v.Self())
				out := self.Pending[0]
				self.Pending = self.Pending[1:]
				msg := &core.Message{
					Payload: out.Payload,
					LastHop: v.ID(),
					UID:     (uint64(v.ID())+1)<<32 | self.NextSeq,
					Src:     v.ID(),
					Dest:    d,
					Valid:   true,
					GenStep: v.Step(),
				}
				self.NextSeq++
				self.Buf[d] = msg
				self.Request = len(self.Pending) > 0
				v.Emit(core.KindGenerate, core.GenerateEvent{Msg: msg})
			},
		},
		// (F1) Copy: receiver pulls from the first neighbor routed to it.
		{
			Name:     name("F1"),
			Priority: PriorityForwarding,
			Guard: func(v *sm.View) bool {
				if fw(v.Self()).Buf[d] != nil {
					return false
				}
				_, ok := puller(v, d)
				return ok
			},
			Action: func(v *sm.View) {
				q, _ := puller(v, d)
				fw(v.Self()).Buf[d] = v.Read(q).(*Node).FW.Buf[d].WithHop(q)
			},
		},
		// (F2) Erase: the sender deletes its copy as soon as the next hop
		// holds a message with the same payload last-hopped from it — the
		// payload-only match (no color) is the controller's flaw.
		{
			Name:     name("F2"),
			Priority: PriorityForwarding,
			Guard: func(v *sm.View) bool {
				p := v.ID()
				if p == d {
					return false
				}
				self := fw(v.Self())
				if self.Buf[d] == nil {
					return false
				}
				hop := v.Self().(*Node).RT.NextHop(d)
				m := v.Read(hop).(*Node).FW.Buf[d]
				return m != nil && m.Payload == self.Buf[d].Payload && m.LastHop == p
			},
			Action: func(v *sm.View) { fw(v.Self()).Buf[d] = nil },
		},
		// (C) Consumption at the destination.
		{
			Name:     name("C"),
			Priority: PriorityForwarding,
			Guard: func(v *sm.View) bool {
				return v.ID() == d && fw(v.Self()).Buf[d] != nil
			},
			Action: func(v *sm.View) {
				self := fw(v.Self())
				v.Emit(core.KindDeliver, core.DeliverEvent{Msg: self.Buf[d]})
				self.Buf[d] = nil
			},
		},
	}
}

// Quiescent reports whether no buffer holds a message and nothing is
// pending.
func Quiescent(cfg []sm.State) bool {
	for _, s := range cfg {
		n := fw(s)
		if len(n.Pending) > 0 {
			return false
		}
		for _, m := range n.Buf {
			if m != nil {
				return false
			}
		}
	}
	return true
}
