package baseline_test

import (
	"fmt"
	"testing"

	"ssmfp/internal/baseline"
	"ssmfp/internal/checker"
	"ssmfp/internal/core"
	"ssmfp/internal/daemon"
	"ssmfp/internal/graph"
	sm "ssmfp/internal/statemodel"
)

func newTracked(g *graph.Graph, prog sm.Program, d sm.Daemon, cfg []sm.State) (*sm.Engine, *checker.Tracker) {
	e := sm.NewEngine(g, prog, d, cfg)
	tr := checker.New(g)
	tr.Attach(e)
	return e, tr
}

func TestNaiveFaultFreeDeliversExactlyOnce(t *testing.T) {
	g := graph.Line(3)
	cfg := baseline.CleanConfig(g)
	cfg[0].(*baseline.Node).FW.Enqueue("hello", 2)
	e, tr := newTracked(g, baseline.NaiveFullProgram(g), daemon.NewSynchronous(1), cfg)
	if _, terminal := e.Run(10_000, nil); !terminal {
		t.Fatal("did not terminate")
	}
	if !tr.AllValidDelivered() || len(tr.Violations()) != 0 {
		t.Fatalf("fault-free naive run failed: %v", tr.Violations())
	}
	if len(tr.Deliveries()) != 1 {
		t.Fatalf("deliveries = %d", len(tr.Deliveries()))
	}
}

func TestNaiveDuplicatesOnConsumeBeforeErase(t *testing.T) {
	// The re-pull anomaly: the destination consumes the copy before the
	// sender erases, the sender's original is pulled again, and the same
	// message (same UID) is delivered twice. SSMFP's R2 guard (wait until
	// the origin's bufE no longer matches) forbids exactly this.
	g := graph.Line(3)
	prog := baseline.NaiveFullProgram(g)
	cfg := baseline.CleanConfig(g)
	cfg[0].(*baseline.Node).FW.Enqueue("dup", 2)
	script := []daemon.ScriptStep{
		{daemon.Act(0, "G@2")},
		{daemon.Act(1, "F1@2")},
		{daemon.Act(0, "F2@2")},
		{daemon.Act(2, "F1@2")},
		{daemon.Act(2, "C@2")},  // consumed before F2 at 1 fires
		{daemon.Act(2, "F1@2")}, // re-pull of the same message
		{daemon.Act(2, "C@2")},  // second delivery: duplication
	}
	e, tr := newTracked(g, prog, daemon.NewScripted(prog, script, daemon.NewCentralRoundRobin()), cfg)
	for range script {
		e.Step()
	}
	if len(tr.Deliveries()) != 2 {
		t.Fatalf("deliveries = %d, want 2 (duplication)", len(tr.Deliveries()))
	}
	found := false
	for _, v := range tr.Violations() {
		if contains(v, "duplication") {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected a duplication violation, got %v", tr.Violations())
	}
}

func TestNaiveLosesOnPayloadCollision(t *testing.T) {
	// An invalid message with the same payload sits at the next hop
	// claiming to come from the sender; F2's payload-only match erases the
	// valid original before it was ever copied.
	g := graph.Line(3)
	cfg := baseline.CleanConfig(g)
	cfg[1].(*baseline.Node).FW.Buf[2] = &core.Message{
		Payload: "x", LastHop: 0, UID: 999_999, Src: 1, Dest: 2, Valid: false,
	}
	cfg[0].(*baseline.Node).FW.Enqueue("x", 2)
	e, tr := newTracked(g, baseline.NaiveFullProgram(g), daemon.NewSynchronous(3), cfg)
	if _, terminal := e.Run(100_000, nil); !terminal {
		t.Fatal("did not terminate")
	}
	if tr.AllValidDelivered() {
		t.Fatal("expected the valid message to be lost (merged with the invalid one)")
	}
	if tr.GeneratedCount() != 1 || tr.DeliveredValid() != 0 {
		t.Fatalf("generated=%d deliveredValid=%d", tr.GeneratedCount(), tr.DeliveredValid())
	}
}

func TestSSMFPSurvivesTheSameCollision(t *testing.T) {
	// The same adversarial setup against SSMFP: invalid same-payload
	// message planted on the path; the valid message must still arrive
	// exactly once (the color flag distinguishes the two).
	g := graph.Line(3)
	cfg := core.CleanConfig(g)
	cfg[1].(*core.Node).FW.Dests[2].BufE = &core.Message{
		Payload: "x", LastHop: 0, Color: 0, UID: 888_888, Src: 1, Dest: 2, Valid: false,
	}
	cfg[0].(*core.Node).FW.Enqueue("x", 2)
	e := sm.NewEngine(g, core.FullProgram(g), daemon.NewSynchronous(3), cfg)
	tr := checker.New(g)
	tr.RecordInitial(cfg)
	tr.Attach(e)
	if _, terminal := e.Run(100_000, nil); !terminal {
		t.Fatal("did not terminate")
	}
	if !tr.AllValidDelivered() || len(tr.Violations()) != 0 {
		t.Fatalf("SSMFP must survive the collision: delivered=%v violations=%v",
			tr.AllValidDelivered(), tr.Violations())
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestNaiveCloneDeep(t *testing.T) {
	g := graph.Line(3)
	n := baseline.CleanNode(g, 0)
	n.FW.Enqueue("a", 2)
	n.FW.Buf[1] = &core.Message{Payload: "b"}
	c := n.Clone().(*baseline.Node)
	c.FW.Pending[0].Payload = "z"
	c.FW.Buf[1] = nil
	c.RT.Dist[2] = 77
	if n.FW.Pending[0].Payload != "a" || n.FW.Buf[1] == nil || n.RT.Dist[2] == 77 {
		t.Fatal("Clone must deep-copy")
	}
}

func TestNaiveQuiescent(t *testing.T) {
	g := graph.Line(3)
	cfg := baseline.CleanConfig(g)
	if !baseline.Quiescent(cfg) {
		t.Fatal("clean config must be quiescent")
	}
	cfg[0].(*baseline.Node).FW.Buf[1] = &core.Message{Payload: "b"}
	if baseline.Quiescent(cfg) {
		t.Fatal("occupied config must not be quiescent")
	}
}

// --- atomic-move simulator ------------------------------------------

func TestAtomicFaultFreeExactMoveCount(t *testing.T) {
	// Under correct tables every forward strictly descends the routing
	// tree, so each message costs exactly dist(src,dst)+2 moves.
	g := graph.Grid(3, 3)
	a := baseline.NewAtomic(g, baseline.CorrectTables(g), 42)
	wantMoves := 0
	k := 0
	for src := 0; src < g.N(); src++ {
		dst := (src + 4) % g.N()
		if src == dst {
			continue
		}
		a.Enqueue(graph.ProcessID(src), fmt.Sprintf("m%d", src), graph.ProcessID(dst))
		wantMoves += g.Dist(graph.ProcessID(src), graph.ProcessID(dst)) + 2
		k++
	}
	_, stopped := a.Run(1_000_000)
	if !stopped || !a.Quiescent() {
		t.Fatal("fault-free atomic run must drain")
	}
	if a.Moves() != wantMoves {
		t.Fatalf("moves = %d, want %d", a.Moves(), wantMoves)
	}
	if len(a.Delivered()) != k {
		t.Fatalf("delivered = %d, want %d", len(a.Delivered()), k)
	}
	byKind := a.MovesByKind()
	if byKind[baseline.Generate] != k || byKind[baseline.Consume] != k {
		t.Fatalf("byKind = %v", byKind)
	}
}

func TestAtomicDeadlockOnFullCycle(t *testing.T) {
	// Two-cycle in the tables for destination 0 with both buffers full:
	// neither message can move, the component deadlocks.
	g := graph.Ring(4)
	ts := baseline.CorrectTables(g)
	ts[1].Parent[0] = 2
	ts[2].Parent[0] = 1
	a := baseline.NewAtomic(g, ts, 7)
	a.PlaceInvalid(1, 0, "stuck-a")
	a.PlaceInvalid(2, 0, "stuck-b")
	if !a.Deadlocked() {
		t.Fatalf("expected deadlock; legal moves: %v", a.LegalMoves())
	}
	if a.Step() {
		t.Fatal("Step must refuse to move in deadlock")
	}
}

func TestAtomicLivelockOnRoutingLoop(t *testing.T) {
	// One message inside a 2-cycle bounces forever: moves keep happening
	// but nothing is ever delivered.
	g := graph.Ring(4)
	ts := baseline.CorrectTables(g)
	ts[1].Parent[0] = 2
	ts[2].Parent[0] = 1
	a := baseline.NewAtomic(g, ts, 7)
	a.PlaceInvalid(1, 0, "wanderer")
	moves, stopped := a.Run(10_000)
	if stopped {
		t.Fatal("livelock must keep moving")
	}
	if moves != 10_000 || len(a.Delivered()) != 0 {
		t.Fatalf("moves=%d delivered=%d; expected endless circulation", moves, len(a.Delivered()))
	}
}

func TestAtomicRepairEndsLivelock(t *testing.T) {
	g := graph.Ring(4)
	ts := baseline.CorrectTables(g)
	ts[1].Parent[0] = 2
	ts[2].Parent[0] = 1
	a := baseline.NewAtomic(g, ts, 7)
	m := a.PlaceInvalid(1, 0, "wanderer")
	a.Run(1_000)
	a.RepairTables()
	if _, stopped := a.Run(1_000); !stopped {
		t.Fatal("must drain after repair")
	}
	if len(a.Delivered()) != 1 || a.Delivered()[0].UID != m.UID {
		t.Fatalf("delivered = %v", a.Delivered())
	}
}

func TestAtomicPlaceInvalidRejectsOccupied(t *testing.T) {
	g := graph.Line(3)
	a := baseline.NewAtomic(g, baseline.CorrectTables(g), 1)
	a.PlaceInvalid(0, 2, "x")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	a.PlaceInvalid(0, 2, "y")
}

func TestAtomicBufferAccessorAndMoveString(t *testing.T) {
	g := graph.Line(3)
	a := baseline.NewAtomic(g, baseline.CorrectTables(g), 1)
	if a.Buffer(0, 2) != nil {
		t.Fatal("fresh buffers must be empty")
	}
	m := a.PlaceInvalid(0, 2, "x")
	if a.Buffer(0, 2) != m {
		t.Fatal("Buffer must return the placed message")
	}
	if baseline.Generate.String() != "generate" || baseline.Forward.String() != "forward" ||
		baseline.Consume.String() != "consume" || baseline.MoveKind(9).String() != "move(9)" {
		t.Fatal("MoveKind strings wrong")
	}
}

func TestAtomicGenerationWaitsForFreeBuffer(t *testing.T) {
	g := graph.Line(2)
	a := baseline.NewAtomic(g, baseline.CorrectTables(g), 1)
	a.PlaceInvalid(0, 1, "blocker")
	a.Enqueue(0, "waiting", 1)
	for _, mv := range a.LegalMoves() {
		if mv.Kind == baseline.Generate {
			t.Fatal("generation must wait until the buffer frees")
		}
	}
	if _, stopped := a.Run(1_000); !stopped || !a.Quiescent() {
		t.Fatal("both messages should eventually drain")
	}
	if len(a.Delivered()) != 2 {
		t.Fatalf("delivered = %d, want 2", len(a.Delivered()))
	}
}
