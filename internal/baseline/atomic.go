package baseline

import (
	"fmt"
	"math/rand"

	"ssmfp/internal/core"
	"ssmfp/internal/graph"
	"ssmfp/internal/routing"
)

// MoveKind is one of the three atomic moves of the message-switched network
// model (§2.2 of the paper).
type MoveKind int

// The three moves: Generation creates a message in an empty buffer of its
// source, Forward copies a message to an empty buffer of the next hop and
// simultaneously frees the sender's buffer (atomic in this model — exactly
// the operation the shared-memory state model cannot express, which is why
// SSMFP needs its two-buffer color machinery), Consume removes a message at
// its destination and delivers it.
const (
	Generate MoveKind = iota
	Forward
	Consume
)

func (k MoveKind) String() string {
	switch k {
	case Generate:
		return "generate"
	case Forward:
		return "forward"
	case Consume:
		return "consume"
	default:
		return fmt.Sprintf("move(%d)", int(k))
	}
}

// Move is one applicable atomic move.
type Move struct {
	Kind MoveKind
	P    graph.ProcessID // acting processor (source, sender, or destination)
	Dest graph.ProcessID // destination whose buffer component is involved
}

// AtomicNetwork simulates the classical destination-based controller of
// Merlin–Schweitzer directly in the message-switched network model: one
// buffer b_p(d) per processor and destination, the three atomic moves, and
// routing by the supplied tables. With correct tables the buffer graph
// (Figure 1) is acyclic and the controller is deadlock-free; with corrupted
// tables it deadlocks or livelocks — experiment E-X1's reference failure
// modes. It is also the fault-free cost yardstick for E-X2.
type AtomicNetwork struct {
	G      *graph.Graph
	Tables []*routing.NodeState

	buf     [][]*core.Message // [p][d]
	pending [][]core.Outbound
	nextSeq []uint64

	rng         *rand.Rand
	moves       int
	movesByKind map[MoveKind]int
	delivered   []*core.Message
}

// NewAtomic builds an atomic-move network over g routing with tables
// (which may be corrupted; they are used as-is and never repaired unless
// RepairTables is called). The seed drives the uniform random choice among
// applicable moves.
func NewAtomic(g *graph.Graph, tables []*routing.NodeState, seed int64) *AtomicNetwork {
	n := g.N()
	buf := make([][]*core.Message, n)
	for p := range buf {
		buf[p] = make([]*core.Message, n)
	}
	return &AtomicNetwork{
		G:           g,
		Tables:      tables,
		buf:         buf,
		pending:     make([][]core.Outbound, n),
		nextSeq:     make([]uint64, n),
		rng:         rand.New(rand.NewSource(seed)),
		movesByKind: make(map[MoveKind]int),
	}
}

// CorrectTables is a convenience constructor for the canonical tables on g.
func CorrectTables(g *graph.Graph) []*routing.NodeState {
	ts := make([]*routing.NodeState, g.N())
	for p := 0; p < g.N(); p++ {
		ts[p] = routing.CorrectState(g, graph.ProcessID(p))
	}
	return ts
}

// Enqueue registers a higher-layer send request at p.
func (a *AtomicNetwork) Enqueue(p graph.ProcessID, payload string, dest graph.ProcessID) {
	a.pending[p] = append(a.pending[p], core.Outbound{Payload: payload, Dest: dest})
}

// PlaceInvalid puts an invalid message directly into b_p(d) (adversarial
// initial configuration). It panics if the buffer is occupied.
func (a *AtomicNetwork) PlaceInvalid(p, d graph.ProcessID, payload string) *core.Message {
	if a.buf[p][d] != nil {
		panic(fmt.Sprintf("baseline: buffer b_%d(%d) already occupied", p, d))
	}
	invalidUID++
	m := &core.Message{Payload: payload, LastHop: p, UID: invalidUID, Src: p, Dest: d, Valid: false}
	a.buf[p][d] = m
	return m
}

var invalidUID uint64 = 1<<62 + 1

// Buffer returns the message in b_p(d), or nil.
func (a *AtomicNetwork) Buffer(p, d graph.ProcessID) *core.Message { return a.buf[p][d] }

// LegalMoves enumerates every applicable move in the current state, in
// deterministic order.
func (a *AtomicNetwork) LegalMoves() []Move {
	var out []Move
	n := a.G.N()
	for pp := 0; pp < n; pp++ {
		p := graph.ProcessID(pp)
		if len(a.pending[p]) > 0 {
			d := a.pending[p][0].Dest
			if a.buf[p][d] == nil {
				out = append(out, Move{Kind: Generate, P: p, Dest: d})
			}
		}
		for dd := 0; dd < n; dd++ {
			d := graph.ProcessID(dd)
			if a.buf[p][d] == nil {
				continue
			}
			if p == d {
				out = append(out, Move{Kind: Consume, P: p, Dest: d})
				continue
			}
			hop := a.Tables[p].NextHop(d)
			if a.buf[hop][d] == nil {
				out = append(out, Move{Kind: Forward, P: p, Dest: d})
			}
		}
	}
	return out
}

// Step picks one applicable move uniformly at random and executes it.
// It returns false when no move is applicable (the network is either
// quiescent or deadlocked).
func (a *AtomicNetwork) Step() bool {
	moves := a.LegalMoves()
	if len(moves) == 0 {
		return false
	}
	a.apply(moves[a.rng.Intn(len(moves))])
	return true
}

func (a *AtomicNetwork) apply(m Move) {
	a.moves++
	a.movesByKind[m.Kind]++
	switch m.Kind {
	case Generate:
		out := a.pending[m.P][0]
		a.pending[m.P] = a.pending[m.P][1:]
		msg := &core.Message{
			Payload: out.Payload,
			LastHop: m.P,
			UID:     (uint64(m.P)+1)<<32 | a.nextSeq[m.P],
			Src:     m.P,
			Dest:    out.Dest,
			Valid:   true,
		}
		a.nextSeq[m.P]++
		a.buf[m.P][out.Dest] = msg
	case Forward:
		hop := a.Tables[m.P].NextHop(m.Dest)
		a.buf[hop][m.Dest] = a.buf[m.P][m.Dest].WithHop(m.P)
		a.buf[m.P][m.Dest] = nil
	case Consume:
		a.delivered = append(a.delivered, a.buf[m.P][m.Dest])
		a.buf[m.P][m.Dest] = nil
	}
}

// Run executes up to maxMoves moves, returning the number executed and
// whether the network stopped because no move was applicable.
func (a *AtomicNetwork) Run(maxMoves int) (moves int, stopped bool) {
	for moves < maxMoves {
		if !a.Step() {
			return moves, true
		}
		moves++
	}
	return moves, false
}

// Delivered returns the delivered messages in delivery order.
func (a *AtomicNetwork) Delivered() []*core.Message { return a.delivered }

// Moves returns the total move count; MovesByKind the per-kind breakdown.
func (a *AtomicNetwork) Moves() int                    { return a.moves }
func (a *AtomicNetwork) MovesByKind() map[MoveKind]int { return a.movesByKind }

// Quiescent reports whether all buffers are empty and nothing is pending.
func (a *AtomicNetwork) Quiescent() bool {
	for p := range a.buf {
		if len(a.pending[p]) > 0 {
			return false
		}
		for _, m := range a.buf[p] {
			if m != nil {
				return false
			}
		}
	}
	return true
}

// Deadlocked reports whether messages remain but no move is applicable —
// the failure corrupted routing tables can inflict on the classical
// controller (a cycle in the buffer graph with every buffer occupied).
func (a *AtomicNetwork) Deadlocked() bool {
	return !a.Quiescent() && len(a.LegalMoves()) == 0
}

// RepairTables replaces all routing tables with the canonical correct ones,
// modeling the completion of a self-stabilizing routing algorithm. The
// classical controller has no defense against what happened to messages
// before the repair.
func (a *AtomicNetwork) RepairTables() { a.Tables = CorrectTables(a.G) }
