// Package workload generates the traffic patterns the experiments drive
// SSMFP (and the baselines) with: who sends what to whom, and when. A
// workload is a list of Send requests with injection steps; the Injector
// feeds them into a running engine through the higher-layer interface of
// the paper (the request bit + pending queue of each processor).
package workload

import (
	"fmt"
	"math/rand"
	"sort"

	"ssmfp/internal/graph"
	sm "ssmfp/internal/statemodel"
)

// Send is one higher-layer send request: inject at Src, destined to Dest,
// no earlier than step AtStep (0 = before the run starts).
type Send struct {
	Src     graph.ProcessID
	Dest    graph.ProcessID
	Payload string
	AtStep  int
}

// Workload is a set of sends, kept sorted by injection step.
type Workload []Send

func (w Workload) Len() int { return len(w) }
func (w Workload) sort() {
	sort.SliceStable(w, func(i, j int) bool { return w[i].AtStep < w[j].AtStep })
}
func (w Workload) String() string {
	return fmt.Sprintf("workload(%d sends)", len(w))
}

// payload builds a unique human-readable payload. Experiments that want
// payload collisions (to stress the color flag) override payloads
// afterwards with SamePayload.
func payload(tag string, src, dst graph.ProcessID, k int) string {
	return fmt.Sprintf("%s-%d>%d#%d", tag, src, dst, k)
}

// SamePayload rewrites every payload to the same string, forcing maximal
// (m, q, c) collision pressure.
func (w Workload) SamePayload(p string) Workload {
	for i := range w {
		w[i].Payload = p
	}
	return w
}

// Staggered spaces the sends every interval steps in their current order.
func (w Workload) Staggered(interval int) Workload {
	for i := range w {
		w[i].AtStep = i * interval
	}
	w.sort()
	return w
}

// SinglePair emits k messages from src to dst.
func SinglePair(src, dst graph.ProcessID, k int) Workload {
	w := make(Workload, k)
	for i := 0; i < k; i++ {
		w[i] = Send{Src: src, Dest: dst, Payload: payload("sp", src, dst, i)}
	}
	return w
}

// AllToOne has every processor (except the sink) send k messages to sink.
func AllToOne(g *graph.Graph, sink graph.ProcessID, k int) Workload {
	var w Workload
	for p := 0; p < g.N(); p++ {
		if graph.ProcessID(p) == sink {
			continue
		}
		for i := 0; i < k; i++ {
			w = append(w, Send{Src: graph.ProcessID(p), Dest: sink, Payload: payload("a2o", graph.ProcessID(p), sink, i)})
		}
	}
	return w
}

// OneToAll has src send k messages to every other processor.
func OneToAll(g *graph.Graph, src graph.ProcessID, k int) Workload {
	var w Workload
	for d := 0; d < g.N(); d++ {
		if graph.ProcessID(d) == src {
			continue
		}
		for i := 0; i < k; i++ {
			w = append(w, Send{Src: src, Dest: graph.ProcessID(d), Payload: payload("o2a", src, graph.ProcessID(d), i)})
		}
	}
	return w
}

// AllToAll has every ordered pair (p, d), p ≠ d, exchange k messages.
func AllToAll(g *graph.Graph, k int) Workload {
	var w Workload
	for p := 0; p < g.N(); p++ {
		for d := 0; d < g.N(); d++ {
			if p == d {
				continue
			}
			for i := 0; i < k; i++ {
				w = append(w, Send{Src: graph.ProcessID(p), Dest: graph.ProcessID(d), Payload: payload("a2a", graph.ProcessID(p), graph.ProcessID(d), i)})
			}
		}
	}
	return w
}

// RandomPairs draws k (src, dst) pairs uniformly (src ≠ dst).
func RandomPairs(g *graph.Graph, k int, rng *rand.Rand) Workload {
	w := make(Workload, k)
	for i := 0; i < k; i++ {
		src := graph.ProcessID(rng.Intn(g.N()))
		dst := graph.ProcessID(rng.Intn(g.N()))
		for dst == src {
			dst = graph.ProcessID(rng.Intn(g.N()))
		}
		w[i] = Send{Src: src, Dest: dst, Payload: payload("rnd", src, dst, i)}
	}
	return w
}

// Permutation sends one message along a random permutation π with no fixed
// point (every processor sends to π(p) ≠ p) — the classic permutation
// traffic of interconnection-network evaluations.
func Permutation(g *graph.Graph, rng *rand.Rand) Workload {
	n := g.N()
	perm := rng.Perm(n)
	// Remove fixed points by rotating them into a cycle.
	for i := 0; i < n; i++ {
		if perm[i] == i {
			j := (i + 1) % n
			perm[i], perm[j] = perm[j], perm[i]
		}
	}
	w := make(Workload, 0, n)
	for p := 0; p < n; p++ {
		if perm[p] == p {
			continue // n == 1 degenerate
		}
		w = append(w, Send{Src: graph.ProcessID(p), Dest: graph.ProcessID(perm[p]),
			Payload: payload("perm", graph.ProcessID(p), graph.ProcessID(perm[p]), 0)})
	}
	return w
}

// HotSpot sends k messages from every processor to a single hot
// destination plus k/2 background messages between random other pairs.
func HotSpot(g *graph.Graph, hot graph.ProcessID, k int, rng *rand.Rand) Workload {
	w := AllToOne(g, hot, k)
	bg := RandomPairs(g, k/2*g.N(), rng)
	for i := range bg {
		bg[i].Payload = "bg" + bg[i].Payload
	}
	return append(w, bg...)
}

// Enqueuer is the higher-layer interface every forwarding state exposes.
type Enqueuer interface {
	Enqueue(payload string, dest graph.ProcessID)
}

// Injector drips a workload into a running engine: call Tick(engine)
// between steps; sends whose AtStep has passed are enqueued at their
// source. The adapt function maps a processor's engine state to its
// higher-layer interface (e.g. the FW field of core.Node).
type Injector struct {
	w      Workload
	adapt  func(sm.State) Enqueuer
	cursor int
}

// NewInjector builds an injector over a workload (sorted by AtStep).
func NewInjector(w Workload, adapt func(sm.State) Enqueuer) *Injector {
	ws := append(Workload(nil), w...)
	ws.sort()
	return &Injector{w: ws, adapt: adapt}
}

// Tick enqueues every due send. Returns how many sends were injected.
func (in *Injector) Tick(e *sm.Engine) int {
	n := 0
	for in.cursor < len(in.w) && in.w[in.cursor].AtStep <= e.Steps() {
		s := in.w[in.cursor]
		in.adapt(e.StateOf(s.Src)).Enqueue(s.Payload, s.Dest)
		in.cursor++
		n++
	}
	return n
}

// SkipWait injects the next pending send immediately, regardless of its
// AtStep. Scenario runners call it when the system has gone quiescent
// before the send's scheduled step: the engine's clock only advances on
// steps, so idle time is skipped. It returns false if nothing remained.
func (in *Injector) SkipWait(e *sm.Engine) bool {
	if in.cursor >= len(in.w) {
		return false
	}
	s := in.w[in.cursor]
	in.adapt(e.StateOf(s.Src)).Enqueue(s.Payload, s.Dest)
	in.cursor++
	return true
}

// Done reports whether every send has been injected.
func (in *Injector) Done() bool { return in.cursor >= len(in.w) }

// Remaining returns how many sends are still to inject.
func (in *Injector) Remaining() int { return len(in.w) - in.cursor }
