package workload

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"ssmfp/internal/graph"
)

// Parse reads a workload from a simple line format, one send per line:
//
//	<src> <dest> <payload> [atStep]
//
// Blank lines and lines starting with '#' are ignored; payloads must not
// contain whitespace; atStep defaults to 0. Endpoints are validated
// against g. This is the trace-driven input of cmd/ssmfp-sim
// (-workload-file): recorded or hand-written traffic can be replayed
// against any protocol configuration.
// maxLineBytes bounds a single workload line. bufio.Scanner's default cap
// is 64KB, which real payloads can exceed; lines past this bound are a
// hard error that names the offending line.
const maxLineBytes = 16 << 20

func Parse(r io.Reader, g *graph.Graph) (Workload, error) {
	var w Workload
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 0, 64*1024), maxLineBytes)
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 && len(fields) != 4 {
			return nil, fmt.Errorf("workload: line %d: want 'src dest payload [atStep]', got %q", lineNo, line)
		}
		src, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("workload: line %d: bad src %q: %v", lineNo, fields[0], err)
		}
		dst, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("workload: line %d: bad dest %q: %v", lineNo, fields[1], err)
		}
		if src < 0 || src >= g.N() || dst < 0 || dst >= g.N() {
			return nil, fmt.Errorf("workload: line %d: endpoint out of range [0,%d)", lineNo, g.N())
		}
		s := Send{Src: graph.ProcessID(src), Dest: graph.ProcessID(dst), Payload: fields[2]}
		if len(fields) == 4 {
			at, err := strconv.Atoi(fields[3])
			if err != nil || at < 0 {
				return nil, fmt.Errorf("workload: line %d: bad atStep %q", lineNo, fields[3])
			}
			s.AtStep = at
		}
		w = append(w, s)
	}
	if err := scanner.Err(); err != nil {
		// The scanner stops before delivering the failing line, so the
		// error sits on the line after the last one handed to us.
		return nil, fmt.Errorf("workload: line %d: %v", lineNo+1, err)
	}
	w.sort()
	return w, nil
}

// Format renders a workload in the Parse line format (round-trippable).
func Format(w Workload, out io.Writer) error {
	bw := bufio.NewWriter(out)
	fmt.Fprintln(bw, "# src dest payload atStep")
	for _, s := range w {
		if strings.ContainsAny(s.Payload, " \t\n") {
			return fmt.Errorf("workload: payload %q contains whitespace, not representable", s.Payload)
		}
		fmt.Fprintf(bw, "%d %d %s %d\n", s.Src, s.Dest, s.Payload, s.AtStep)
	}
	return bw.Flush()
}
