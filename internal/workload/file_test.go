package workload_test

import (
	"fmt"
	"strings"
	"testing"

	"ssmfp/internal/graph"
	"ssmfp/internal/workload"
)

func TestParseLongPayloadLine(t *testing.T) {
	// A ~100KB payload exceeds bufio.Scanner's 64KB default buffer; Parse
	// must grow its buffer rather than fail with a bare "token too long".
	g := graph.Line(3)
	payload := strings.Repeat("x", 100*1024)
	input := "# comment\n0 2 " + payload + " 5\n1 0 short\n"
	w, err := workload.Parse(strings.NewReader(input), g)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(w) != 2 {
		t.Fatalf("parsed %d sends, want 2", len(w))
	}
	if w[1].Payload != payload || w[1].AtStep != 5 {
		t.Fatalf("long send mangled: len(payload)=%d atStep=%d", len(w[1].Payload), w[1].AtStep)
	}
}

func TestParseOverlongLineReportsLineNumber(t *testing.T) {
	g := graph.Line(3)
	payload := strings.Repeat("x", 17<<20) // past the 16MB line cap
	input := "0 1 ok\n1 2 fine\n0 2 " + payload + "\n"
	_, err := workload.Parse(strings.NewReader(input), g)
	if err == nil {
		t.Fatal("expected error for over-long line")
	}
	if !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("error should name line 3, got: %v", err)
	}
	if !strings.Contains(err.Error(), "token too long") {
		t.Fatalf("error should carry the scanner cause, got: %v", err)
	}
}

func TestParseRoundTripWithLongPayload(t *testing.T) {
	g := graph.Ring(4)
	// Already in AtStep order so the Parse-side sort is the identity.
	orig := workload.Workload{
		{Src: 3, Dest: 1, Payload: "tiny", AtStep: 0},
		{Src: 0, Dest: 2, Payload: strings.Repeat("y", 200*1024), AtStep: 1},
	}
	var buf strings.Builder
	if err := workload.Format(orig, &buf); err != nil {
		t.Fatalf("Format: %v", err)
	}
	got, err := workload.Parse(strings.NewReader(buf.String()), g)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if fmt.Sprint(got) != fmt.Sprint(orig) {
		t.Fatalf("round trip mismatch:\n got %.80v\nwant %.80v", got, orig)
	}
}
