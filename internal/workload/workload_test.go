package workload_test

import (
	"math/rand"
	"strings"
	"testing"

	"ssmfp/internal/checker"
	"ssmfp/internal/core"
	"ssmfp/internal/daemon"
	"ssmfp/internal/graph"
	sm "ssmfp/internal/statemodel"
	"ssmfp/internal/workload"
)

func coreAdapter(s sm.State) workload.Enqueuer { return s.(*core.Node).FW }

func TestSinglePair(t *testing.T) {
	w := workload.SinglePair(1, 3, 5)
	if len(w) != 5 {
		t.Fatalf("len = %d", len(w))
	}
	seen := map[string]bool{}
	for _, s := range w {
		if s.Src != 1 || s.Dest != 3 {
			t.Fatalf("wrong endpoints: %+v", s)
		}
		if seen[s.Payload] {
			t.Fatal("payloads must be unique by default")
		}
		seen[s.Payload] = true
	}
}

func TestAllToOneExcludesSink(t *testing.T) {
	g := graph.Ring(5)
	w := workload.AllToOne(g, 2, 3)
	if len(w) != 4*3 {
		t.Fatalf("len = %d, want 12", len(w))
	}
	for _, s := range w {
		if s.Src == 2 || s.Dest != 2 {
			t.Fatalf("bad send: %+v", s)
		}
	}
}

func TestOneToAllExcludesSource(t *testing.T) {
	g := graph.Ring(5)
	w := workload.OneToAll(g, 0, 2)
	if len(w) != 4*2 {
		t.Fatalf("len = %d, want 8", len(w))
	}
	for _, s := range w {
		if s.Src != 0 || s.Dest == 0 {
			t.Fatalf("bad send: %+v", s)
		}
	}
}

func TestAllToAllCount(t *testing.T) {
	g := graph.Line(4)
	w := workload.AllToAll(g, 2)
	if len(w) != 4*3*2 {
		t.Fatalf("len = %d, want 24", len(w))
	}
}

func TestRandomPairsNoSelfSend(t *testing.T) {
	g := graph.Line(6)
	rng := rand.New(rand.NewSource(9))
	w := workload.RandomPairs(g, 100, rng)
	for _, s := range w {
		if s.Src == s.Dest {
			t.Fatal("RandomPairs must not produce self-sends")
		}
	}
}

func TestPermutationIsFixedPointFree(t *testing.T) {
	g := graph.Ring(7)
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 30; trial++ {
		w := workload.Permutation(g, rng)
		if len(w) != g.N() {
			t.Fatalf("len = %d, want n", len(w))
		}
		srcSeen := map[graph.ProcessID]bool{}
		dstSeen := map[graph.ProcessID]bool{}
		for _, s := range w {
			if s.Src == s.Dest {
				t.Fatal("fixed point in permutation")
			}
			if srcSeen[s.Src] || dstSeen[s.Dest] {
				t.Fatal("not a permutation")
			}
			srcSeen[s.Src] = true
			dstSeen[s.Dest] = true
		}
	}
}

func TestHotSpotMix(t *testing.T) {
	g := graph.Ring(5)
	rng := rand.New(rand.NewSource(11))
	w := workload.HotSpot(g, 0, 2, rng)
	hot, bg := 0, 0
	for _, s := range w {
		if s.Dest == 0 && s.Payload[:2] != "bg" {
			hot++
		} else {
			bg++
		}
	}
	if hot != 8 {
		t.Fatalf("hot sends = %d, want 8", hot)
	}
	if bg == 0 {
		t.Fatal("expected background traffic")
	}
}

func TestSamePayloadAndStaggered(t *testing.T) {
	w := workload.SinglePair(0, 1, 4).SamePayload("X").Staggered(10)
	for i, s := range w {
		if s.Payload != "X" {
			t.Fatal("SamePayload failed")
		}
		if s.AtStep != i*10 {
			t.Fatalf("Staggered: AtStep[%d] = %d", i, s.AtStep)
		}
	}
}

func TestInjectorDripsByStep(t *testing.T) {
	g := graph.Line(3)
	cfg := core.CleanConfig(g)
	e := sm.NewEngine(g, core.FullProgram(g), daemon.NewSynchronous(1), cfg)

	w := workload.SinglePair(0, 2, 3).Staggered(5) // steps 0, 5, 10
	in := workload.NewInjector(w, coreAdapter)

	if n := in.Tick(e); n != 1 {
		t.Fatalf("initial tick injected %d, want 1", n)
	}
	if in.Done() || in.Remaining() != 2 {
		t.Fatal("two sends must remain")
	}
	for e.Steps() < 5 {
		e.Step()
	}
	if n := in.Tick(e); n != 1 {
		t.Fatalf("tick at step 5 injected %d, want 1", n)
	}
	for e.Steps() < 10 {
		e.Step()
	}
	if n := in.Tick(e); n != 1 {
		t.Fatalf("tick at step 10 injected %d, want 1", n)
	}
	if !in.Done() {
		t.Fatal("injector must be done")
	}
}

func TestInjectorEndToEndAllDelivered(t *testing.T) {
	g := graph.Grid(2, 3)
	rng := rand.New(rand.NewSource(21))
	cfg := core.RandomConfig(g, rng, core.DefaultCorrupt)
	e := sm.NewEngine(g, core.FullProgram(g), daemon.NewSynchronous(2), cfg)
	tr := checker.New(g)
	tr.RecordInitial(cfg)
	tr.Attach(e)

	w := workload.RandomPairs(g, 12, rng).Staggered(7)
	in := workload.NewInjector(w, coreAdapter)
	for i := 0; i < 1_000_000; i++ {
		in.Tick(e)
		if !e.Step() && in.Done() {
			break
		}
	}
	if !e.Terminal() {
		t.Fatal("did not terminate")
	}
	if tr.GeneratedCount() != len(w) || !tr.AllValidDelivered() || len(tr.Violations()) != 0 {
		t.Fatalf("generated=%d delivered-ok=%v violations=%v",
			tr.GeneratedCount(), tr.AllValidDelivered(), tr.Violations())
	}
}

func TestSkipWaitInjectsImmediately(t *testing.T) {
	g := graph.Line(3)
	cfg := core.CleanConfig(g)
	e := sm.NewEngine(g, core.FullProgram(g), daemon.NewSynchronous(1), cfg)
	w := workload.SinglePair(0, 2, 2)
	w[0].AtStep = 1000
	w[1].AtStep = 2000
	in := workload.NewInjector(w, coreAdapter)
	if in.Tick(e) != 0 {
		t.Fatal("nothing is due yet")
	}
	if !in.SkipWait(e) {
		t.Fatal("SkipWait must inject the next send")
	}
	if in.Remaining() != 1 {
		t.Fatalf("remaining = %d", in.Remaining())
	}
	if !in.SkipWait(e) || in.SkipWait(e) {
		t.Fatal("SkipWait must drain then report empty")
	}
	if fw := e.StateOf(0).(*core.Node).FW; len(fw.Pending) != 2 {
		t.Fatalf("pending = %d, want 2", len(fw.Pending))
	}
}

func TestWorkloadStringAndLen(t *testing.T) {
	w := workload.SinglePair(0, 1, 3)
	if w.Len() != 3 || w.String() != "workload(3 sends)" {
		t.Fatalf("Len/String wrong: %d %q", w.Len(), w.String())
	}
}

func TestParseWorkloadFile(t *testing.T) {
	g := graph.Line(4)
	input := `
# comment line

0 3 hello 0
1 2 world 15
3 0 back
`
	w, err := workload.Parse(strings.NewReader(input), g)
	if err != nil {
		t.Fatal(err)
	}
	if len(w) != 3 {
		t.Fatalf("parsed %d sends", len(w))
	}
	if w[0].Payload != "hello" || w[1].Payload != "back" || w[2].AtStep != 15 {
		t.Fatalf("parse wrong (sorted by AtStep): %+v", w)
	}
}

func TestParseWorkloadErrors(t *testing.T) {
	g := graph.Line(3)
	for _, bad := range []string{
		"0 1",            // too few fields
		"0 1 p 5 6",      // too many
		"x 1 p",          // bad src
		"0 y p",          // bad dest
		"0 9 p",          // out of range
		"0 1 p -3",       // negative step
		"0 1 p notanint", // bad step
	} {
		if _, err := workload.Parse(strings.NewReader(bad), g); err == nil {
			t.Errorf("input %q should fail", bad)
		}
	}
}

func TestFormatRoundTrips(t *testing.T) {
	g := graph.Ring(5)
	orig := workload.RandomPairs(g, 10, rand.New(rand.NewSource(5))).Staggered(3)
	var buf strings.Builder
	if err := workload.Format(orig, &buf); err != nil {
		t.Fatal(err)
	}
	back, err := workload.Parse(strings.NewReader(buf.String()), g)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(orig) {
		t.Fatalf("round trip lost sends: %d vs %d", len(back), len(orig))
	}
	for i := range back {
		if back[i] != orig[i] {
			t.Fatalf("round trip mismatch at %d: %+v vs %+v", i, back[i], orig[i])
		}
	}
}

func TestFormatRejectsWhitespacePayload(t *testing.T) {
	var buf strings.Builder
	err := workload.Format(workload.Workload{{Payload: "two words"}}, &buf)
	if err == nil {
		t.Fatal("whitespace payload must be rejected")
	}
}
