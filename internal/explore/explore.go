// Package explore is a bounded model checker for state-model protocols: it
// enumerates EVERY configuration reachable from an initial one under EVERY
// central-daemon schedule (one enabled rule fires per step, all
// alternatives branched), checking safety invariants on each state and
// progress at the end. Where the simulation packages sample executions,
// explore exhausts them — on small instances it turns "no seed found a
// violation" into "no central schedule whatsoever violates the property".
//
// Scope: the default branching covers all central schedules; with
// Options.MaxSimultaneity = 2 it additionally enumerates every
// two-processor simultaneous step (the smallest slice of
// distributed-daemon behaviour, where composite atomicity — two actions
// reading the same snapshot — actually differs from interleaving). Larger
// simultaneous subsets are exponential per configuration and are covered
// by the randomized tests instead.
//
// Each explored state is the pair (configuration, history), where history
// is the multiset of generated and delivered message UIDs — exactly what
// Specification SP constrains. Properties:
//
//   - Invariant: checked on every reachable state (e.g. no valid message
//     delivered twice, no generated message lost, domains well-typed).
//   - TerminalCheck: checked on every terminal state (e.g. everything
//     generated was delivered exactly once and the buffers are empty).
//   - Progress: every reachable state must be able to reach a terminal
//     state (no deadlock and no inescapable livelock region) — verified
//     by reverse reachability from the terminal states.
package explore

import (
	"fmt"
	"sort"
	"strings"

	"ssmfp/internal/graph"
	sm "ssmfp/internal/statemodel"
)

// Options configures an exploration.
type Options struct {
	// MaxStates caps the search (default 1 << 20); hitting it sets
	// Result.Truncated and skips the progress check.
	MaxStates int

	// MaxSimultaneity bounds how many processors may fire in one explored
	// step: 1 (default) enumerates all central-daemon schedules; 2 also
	// enumerates every pair of distinct processors executing against the
	// same snapshot — the smallest slice of distributed-daemon behaviour,
	// where composite atomicity actually matters. Larger simultaneity is
	// not enumerated (subset counts explode).
	MaxSimultaneity int

	// Fingerprint renders a configuration canonically (required).
	Fingerprint func(cfg []sm.State) string

	// GeneratedUID / DeliveredUID extract message identities from action
	// events; return false for unrelated events.
	GeneratedUID func(ev sm.Event) (uint64, bool)
	DeliveredUID func(ev sm.Event) (uint64, bool)

	// Invariant is checked on every reachable state.
	Invariant func(cfg []sm.State, generated, delivered map[uint64]int) error

	// TerminalCheck is checked on every terminal state.
	TerminalCheck func(cfg []sm.State, generated, delivered map[uint64]int) error
}

// Result summarizes an exploration.
type Result struct {
	States    int
	Edges     int
	Terminals int
	Truncated bool

	// InvariantErr is the first invariant violation (nil if none);
	// Witness then holds the schedule that reaches the offending state.
	InvariantErr error
	// Witness is the counterexample schedule: one entry per step from the
	// initial configuration to the violating state, each listing the
	// activation(s) of that step as "p<process>:<rule>".
	Witness []string
	// TerminalErr is the first terminal-state violation.
	TerminalErr error
	// DeadEnds counts states from which no terminal is reachable; 0 means
	// progress holds everywhere (only meaningful when not Truncated).
	DeadEnds int
}

// OK reports a fully clean exploration.
func (r Result) OK() bool {
	return !r.Truncated && r.InvariantErr == nil && r.TerminalErr == nil && r.DeadEnds == 0
}

func (r Result) String() string {
	return fmt.Sprintf("explored %d states, %d edges, %d terminals (truncated=%v, deadEnds=%d)",
		r.States, r.Edges, r.Terminals, r.Truncated, r.DeadEnds)
}

// node is one explored state.
type node struct {
	cfg       []sm.State
	enabled   []sm.Choice // enabled choices of cfg, maintained incrementally
	generated map[uint64]int
	delivered map[uint64]int
	succs     []int32
	preds     []int32
	terminal  bool

	// counterexample bookkeeping: the (first) parent and the activations
	// that produced this state from it.
	parent int32
	via    string
}

// historyToken renders a UID multiset canonically.
func historyToken(m map[uint64]int) string {
	if len(m) == 0 {
		return ""
	}
	uids := make([]uint64, 0, len(m))
	for uid := range m {
		uids = append(uids, uid)
	}
	sort.Slice(uids, func(i, j int) bool { return uids[i] < uids[j] })
	var sb strings.Builder
	for _, uid := range uids {
		fmt.Fprintf(&sb, "%x*%d,", uid, m[uid])
	}
	return sb.String()
}

func copyCounts(m map[uint64]int) map[uint64]int {
	out := make(map[uint64]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// Explore runs the search from the initial configuration.
func Explore(g *graph.Graph, program sm.Program, initial []sm.State, opts Options) Result {
	if opts.Fingerprint == nil {
		panic("explore: Options.Fingerprint is required")
	}
	maxStates := opts.MaxStates
	if maxStates <= 0 {
		maxStates = 1 << 20
	}
	rules := program.Rules()

	var res Result
	nodes := make([]*node, 0, 1024)
	index := make(map[string]int32)

	key := func(n *node) string {
		return opts.Fingerprint(n.cfg) + "|" + historyToken(n.generated) + "|" + historyToken(n.delivered)
	}
	intern := func(n *node) (int32, bool) {
		k := key(n)
		if id, ok := index[k]; ok {
			return id, false
		}
		id := int32(len(nodes))
		nodes = append(nodes, n)
		index[k] = id
		return id, true
	}

	root := &node{
		cfg:       initial,
		enabled:   sm.EnabledOf(g, rules, initial),
		generated: map[uint64]int{},
		delivered: map[uint64]int{},
		parent:    -1,
	}
	rootID, _ := intern(root)
	queue := []int32{rootID}

	witness := func(n *node) []string {
		var steps []string
		for n.parent >= 0 {
			steps = append(steps, n.via)
			n = nodes[n.parent]
		}
		for i, j := 0, len(steps)-1; i < j; i, j = i+1, j-1 {
			steps[i], steps[j] = steps[j], steps[i]
		}
		return steps
	}
	checkState := func(n *node) bool {
		if opts.Invariant != nil && res.InvariantErr == nil {
			if err := opts.Invariant(n.cfg, n.generated, n.delivered); err != nil {
				res.InvariantErr = err
				res.Witness = witness(n)
				return false
			}
		}
		return true
	}
	if !checkState(root) {
		res.States = 1
		return res
	}

	for len(queue) > 0 && len(nodes) <= maxStates {
		id := queue[0]
		queue = queue[1:]
		n := nodes[id]

		// The enabled set was maintained incrementally when the node was
		// reached: only the closed neighborhoods of the processors that
		// fired on the incoming edge were re-evaluated (sm.EnabledDelta),
		// the same shared machinery the engine's incremental mode uses.
		enabled := n.enabled
		if len(enabled) == 0 {
			n.terminal = true
			res.Terminals++
			if opts.TerminalCheck != nil && res.TerminalErr == nil {
				if err := opts.TerminalCheck(n.cfg, n.generated, n.delivered); err != nil {
					res.TerminalErr = fmt.Errorf("terminal state: %w", err)
				}
			}
			continue
		}
		expand := func(sels []sm.Selection) bool {
			succCfg := append([]sm.State(nil), n.cfg...)
			succ := &node{cfg: succCfg, generated: n.generated, delivered: n.delivered, parent: id}
			var viaParts []string
			for _, sel := range sels {
				viaParts = append(viaParts, fmt.Sprintf("p%d:%s", sel.Process, rules[sel.Rule].Name))
			}
			succ.via = strings.Join(viaParts, "+")
			executed := make([]graph.ProcessID, 0, len(sels))
			for _, sel := range sels {
				newState, events := sm.ApplySelection(g, rules, n.cfg, sel, 0)
				succCfg[sel.Process] = newState
				executed = append(executed, sel.Process)
				for _, ev := range events {
					if opts.GeneratedUID != nil {
						if uid, ok := opts.GeneratedUID(ev); ok {
							succ.generated = copyCounts(succ.generated)
							succ.generated[uid]++
						}
					}
					if opts.DeliveredUID != nil {
						if uid, ok := opts.DeliveredUID(ev); ok {
							succ.delivered = copyCounts(succ.delivered)
							succ.delivered[uid]++
						}
					}
				}
			}
			succ.enabled = sm.EnabledDelta(g, rules, succCfg, n.enabled, executed)
			sid, fresh := intern(succ)
			n.succs = append(n.succs, sid)
			nodes[sid].preds = append(nodes[sid].preds, id)
			res.Edges++
			if fresh {
				if !checkState(succ) {
					return false
				}
				queue = append(queue, sid)
			}
			return true
		}
		for _, c := range enabled {
			for _, ri := range c.Rules {
				if !expand([]sm.Selection{{Process: c.Process, Rule: ri}}) {
					res.States = len(nodes)
					return res
				}
			}
		}
		if opts.MaxSimultaneity >= 2 {
			for i := 0; i < len(enabled); i++ {
				for j := i + 1; j < len(enabled); j++ {
					for _, ri := range enabled[i].Rules {
						for _, rj := range enabled[j].Rules {
							pair := []sm.Selection{
								{Process: enabled[i].Process, Rule: ri},
								{Process: enabled[j].Process, Rule: rj},
							}
							if !expand(pair) {
								res.States = len(nodes)
								return res
							}
						}
					}
				}
			}
		}
	}
	res.States = len(nodes)
	if len(queue) > 0 {
		res.Truncated = true
		return res
	}

	// Progress: reverse reachability from the terminal states.
	reach := make([]bool, len(nodes))
	var stack []int32
	for i, n := range nodes {
		if n.terminal {
			reach[i] = true
			stack = append(stack, int32(i))
		}
	}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, pred := range nodes[id].preds {
			if !reach[pred] {
				reach[pred] = true
				stack = append(stack, pred)
			}
		}
	}
	for _, ok := range reach {
		if !ok {
			res.DeadEnds++
		}
	}
	return res
}
