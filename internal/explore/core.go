package explore

import (
	"fmt"

	"ssmfp/internal/checker"
	"ssmfp/internal/core"
	"ssmfp/internal/graph"
	sm "ssmfp/internal/statemodel"
)

// CoreOptions returns Options prewired for the composed SSMFP system: the
// canonical fingerprint, the generate/deliver extractors, the safety
// invariant of Specification SP (no valid message delivered twice, no
// generated message lost, domains well-typed), and the terminal check
// (quiescent, everything generated delivered exactly once).
func CoreOptions(g *graph.Graph) Options {
	return Options{
		Fingerprint: core.Fingerprint,
		GeneratedUID: func(ev sm.Event) (uint64, bool) {
			if ev.Kind != core.KindGenerate {
				return 0, false
			}
			return ev.Payload.(core.GenerateEvent).Msg.UID, true
		},
		DeliveredUID: func(ev sm.Event) (uint64, bool) {
			if ev.Kind != core.KindDeliver {
				return 0, false
			}
			m := ev.Payload.(core.DeliverEvent).Msg
			if !m.Valid {
				return 0, false // invalid repeats are allowed (Prop. 4 territory)
			}
			return m.UID, true
		},
		Invariant: func(cfg []sm.State, generated, delivered map[uint64]int) error {
			if err := checker.WellTyped(g, cfg); err != nil {
				return err
			}
			for uid, c := range delivered {
				if c > 1 {
					return fmt.Errorf("valid message %x delivered %d times (duplication)", uid, c)
				}
			}
			// No-loss: every generated, undelivered message occupies a buffer.
			present := make(map[uint64]bool)
			for _, s := range cfg {
				for _, ds := range s.(*core.Node).FW.Dests {
					for _, m := range []*core.Message{ds.BufR, ds.BufE} {
						if m != nil {
							present[m.UID] = true
						}
					}
				}
			}
			for uid := range generated {
				if delivered[uid] == 0 && !present[uid] {
					return fmt.Errorf("valid message %x lost: generated, undelivered, in no buffer", uid)
				}
			}
			return nil
		},
		TerminalCheck: func(cfg []sm.State, generated, delivered map[uint64]int) error {
			if !core.Quiescent(cfg) {
				return fmt.Errorf("terminal but not quiescent")
			}
			for uid := range generated {
				if delivered[uid] != 1 {
					return fmt.Errorf("terminal with message %x delivered %d times, want exactly 1", uid, delivered[uid])
				}
			}
			return nil
		},
	}
}
