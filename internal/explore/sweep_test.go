package explore_test

import (
	"fmt"
	"math/rand"
	"testing"

	"ssmfp/internal/core"
	"ssmfp/internal/explore"
	"ssmfp/internal/graph"
	"ssmfp/internal/routing"
	sm "ssmfp/internal/statemodel"
)

// corruptionTemplate prepares an adversarial starting point on cfg and
// returns a short label.
type corruptionTemplate struct {
	name  string
	apply func(g *graph.Graph, cfg []sm.State, rng *rand.Rand)
}

var templates = []corruptionTemplate{
	{"clean", func(g *graph.Graph, cfg []sm.State, rng *rand.Rand) {}},
	{"random-tables", func(g *graph.Graph, cfg []sm.State, rng *rand.Rand) {
		// Corrupt the tables for the message's destination (the last
		// processor). Destination instances are mutually independent (the
		// paper's own observation in §3.2), so corrupting the other
		// destinations only multiplies the state space with interleavings
		// of unrelated repairs.
		d := graph.ProcessID(g.N() - 1)
		for p := 0; p < g.N(); p++ {
			if graph.ProcessID(p) == d {
				continue
			}
			nbrs := g.Neighbors(graph.ProcessID(p))
			cfg[p].(*core.Node).RT.Parent[d] = nbrs[rng.Intn(len(nbrs))]
			cfg[p].(*core.Node).RT.Dist[d] = rng.Intn(g.N() + 1)
		}
	}},
	{"invalid-squatter", func(g *graph.Graph, cfg []sm.State, rng *rand.Rand) {
		// One invalid message with a colliding payload and color 0 in a
		// random reception buffer of the message's destination, plus a
		// scrambled queue.
		p := graph.ProcessID(rng.Intn(g.N()))
		d := graph.ProcessID(g.N() - 1)
		hops := append(append([]graph.ProcessID(nil), g.Neighbors(p)...), p)
		cfg[p].(*core.Node).FW.Dests[d].BufR = &core.Message{
			Payload: "m", LastHop: hops[rng.Intn(len(hops))], Color: 0,
			UID: 1 << 52, Src: p, Dest: d, Valid: false,
		}
		cfg[p].(*core.Node).FW.Dests[d].Queue = hops
	}},
}

// TestSweepAllSmallTopologies model-checks one colliding-payload message
// over EVERY labeled connected topology on 3 and 4 processors × every
// corruption template × every central schedule. This is the systematic
// version of the paper's "starting from any configuration": ~126
// topology/corruption combinations, each explored exhaustively.
func TestSweepAllSmallTopologies(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep skipped in -short mode")
	}
	combos, totalStates := 0, 0
	for _, n := range []int{3, 4} {
		for gi, g := range graph.AllConnected(n) {
			for _, tmpl := range templates {
				rng := rand.New(rand.NewSource(int64(n*1000 + gi)))
				cfg := core.CleanConfig(g)
				tmpl.apply(g, cfg, rng)
				// One message with the colliding payload "m" across the
				// diameter of the graph.
				src, dst := graph.ProcessID(0), graph.ProcessID(g.N()-1)
				cfg[src].(*core.Node).FW.Enqueue("m", dst)

				opts := explore.CoreOptions(g)
				opts.MaxStates = 300_000
				r := explore.Explore(g, core.FullProgram(g), cfg, opts)
				combos++
				totalStates += r.States
				if r.Truncated {
					t.Fatalf("n=%d g=%d tmpl=%s: truncated at %d states", n, gi, tmpl.name, r.States)
				}
				if !r.OK() {
					t.Fatalf("n=%d g=%d tmpl=%s: %s inv=%v term=%v",
						n, gi, tmpl.name, r, r.InvariantErr, r.TerminalErr)
				}
			}
		}
	}
	t.Logf("swept %d topology×corruption combinations, %d states total", combos, totalStates)
	if combos != (4+38)*len(templates) {
		t.Fatalf("combos = %d, want %d", combos, (4+38)*len(templates))
	}
}

// TestSweepRoutingFixpointUniqueness model-checks that the routing
// algorithm has exactly one terminal (the canonical silent fixpoint) on
// every 3-node topology from every random corruption.
func TestSweepRoutingFixpointUniqueness(t *testing.T) {
	for gi, g := range graph.AllConnected(3) {
		for trial := 0; trial < 3; trial++ {
			rng := rand.New(rand.NewSource(int64(gi*10 + trial)))
			cfg := core.CleanConfig(g)
			for p := 0; p < g.N(); p++ {
				cfg[p].(*core.Node).RT = routing.RandomState(g, graph.ProcessID(p), rng)
			}
			opts := explore.CoreOptions(g)
			opts.TerminalCheck = func(cfg []sm.State, _, _ map[uint64]int) error {
				for p := 0; p < g.N(); p++ {
					if !routing.Correct(g, graph.ProcessID(p), cfg[p].(*core.Node).RT) {
						return fmt.Errorf("non-canonical terminal at %d", p)
					}
				}
				return nil
			}
			r := explore.Explore(g, core.FullProgram(g), cfg, opts)
			if !r.OK() || r.Terminals != 1 {
				t.Fatalf("g=%d trial=%d: %s term=%v", gi, trial, r, r.TerminalErr)
			}
		}
	}
}
