package explore_test

import (
	"testing"

	"ssmfp/internal/core"
	"ssmfp/internal/explore"
	"ssmfp/internal/graph"
	"ssmfp/internal/routing"
	sm "ssmfp/internal/statemodel"
)

func enqueue(cfg []sm.State, src graph.ProcessID, payload string, dst graph.ProcessID) {
	cfg[src].(*core.Node).FW.Enqueue(payload, dst)
}

// TestExhaustiveSingleMessageCleanLine model-checks one message over a
// clean 3-processor line: every central schedule satisfies SP, every
// terminal is quiescent with the message delivered exactly once, and a
// terminal is reachable from every state.
func TestExhaustiveSingleMessageCleanLine(t *testing.T) {
	g := graph.Line(3)
	cfg := core.CleanConfig(g)
	enqueue(cfg, 0, "m", 2)
	r := explore.Explore(g, core.FullProgram(g), cfg, explore.CoreOptions(g))
	if !r.OK() {
		t.Fatalf("exploration failed: %s; inv=%v term=%v", r, r.InvariantErr, r.TerminalErr)
	}
	if r.Terminals == 0 || r.States < 5 {
		t.Fatalf("suspicious exploration: %s", r)
	}
	t.Log(r)
}

// TestExhaustiveTwoMessagesSamePayload model-checks the color machinery:
// two same-payload messages from the same source over all central
// schedules — no schedule may merge or duplicate them.
func TestExhaustiveTwoMessagesSamePayload(t *testing.T) {
	g := graph.Line(3)
	cfg := core.CleanConfig(g)
	enqueue(cfg, 0, "same", 2)
	enqueue(cfg, 0, "same", 2)
	r := explore.Explore(g, core.FullProgram(g), cfg, explore.CoreOptions(g))
	if !r.OK() {
		t.Fatalf("exploration failed: %s; inv=%v term=%v", r, r.InvariantErr, r.TerminalErr)
	}
	t.Log(r)
}

// TestExhaustiveCorruptedTables model-checks snap-stabilization itself on
// a small instance: the routing tables start with a loop and an invalid
// message squats in a buffer; across every central schedule the valid
// message is delivered exactly once and the system drains.
func TestExhaustiveCorruptedTables(t *testing.T) {
	g := graph.Figure3Network()
	cfg := core.CleanConfig(g)
	// The Figure 3 corruption: a↔c cycle for destination b plus the
	// color-0 invalid message in bufR_b(b).
	cfg[0].(*core.Node).RT.Parent[1] = 2
	cfg[0].(*core.Node).RT.Dist[1] = 2
	cfg[2].(*core.Node).RT.Parent[1] = 0
	cfg[2].(*core.Node).RT.Dist[1] = 2
	cfg[1].(*core.Node).FW.Dests[1].BufR = &core.Message{
		Payload: "data", LastHop: 2, Color: 0, UID: 1 << 50, Src: 1, Dest: 1, Valid: false,
	}
	enqueue(cfg, 2, "data", 1) // valid message colliding with the invalid's payload
	r := explore.Explore(g, core.FullProgram(g), cfg, explore.CoreOptions(g))
	if !r.OK() {
		t.Fatalf("exploration failed: %s; inv=%v term=%v deadEnds=%d",
			r, r.InvariantErr, r.TerminalErr, r.DeadEnds)
	}
	t.Log(r)
}

// TestExhaustiveR5RegressionScenario model-checks the R5 reproduction
// finding across every central schedule: generating a message whose
// payload and color collide with an invalid message in the generator's
// own emission buffer must never lose it. (With the paper's literal R5 —
// no q ≠ p restriction — this exploration finds the loss immediately.)
func TestExhaustiveR5RegressionScenario(t *testing.T) {
	g := graph.Line(3)
	cfg := core.CleanConfig(g)
	cfg[0].(*core.Node).FW.Dests[2].BufE = &core.Message{
		Payload: "x", LastHop: 0, Color: 0, UID: 1 << 51, Src: 0, Dest: 2, Valid: false,
	}
	enqueue(cfg, 0, "x", 2)
	r := explore.Explore(g, core.FullProgram(g), cfg, explore.CoreOptions(g))
	if !r.OK() {
		t.Fatalf("exploration failed: %s; inv=%v term=%v", r, r.InvariantErr, r.TerminalErr)
	}
	t.Log(r)
}

// TestExploreDetectsInjectedViolation plants an unreachable-terminal
// protocol (a livelock loop) and a broken invariant to prove the checker
// actually detects failures.
func TestExploreDetectsInjectedViolation(t *testing.T) {
	g := graph.Line(2)
	// A two-rule toy that ping-pongs forever: p0 sets its bit, p1 clears
	// it — no terminal state exists, so every state is a dead end.
	prog := sm.NewProgram(
		sm.Rule{Name: "set",
			Guard:  func(v *sm.View) bool { return v.ID() == 0 && !v.Self().(*bitState).b },
			Action: func(v *sm.View) { v.Self().(*bitState).b = true }},
		sm.Rule{Name: "clear",
			Guard:  func(v *sm.View) bool { return v.ID() == 0 && v.Self().(*bitState).b },
			Action: func(v *sm.View) { v.Self().(*bitState).b = false }},
	)
	cfg := []sm.State{&bitState{}, &bitState{}}
	r := explore.Explore(g, prog, cfg, explore.Options{
		Fingerprint: func(cfg []sm.State) string {
			s := ""
			for _, st := range cfg {
				if st.(*bitState).b {
					s += "1"
				} else {
					s += "0"
				}
			}
			return s
		},
	})
	if r.Terminals != 0 || r.DeadEnds != r.States {
		t.Fatalf("livelock loop not detected: %s", r)
	}

	// Broken invariant: reject everything.
	r = explore.Explore(g, prog, cfg, explore.Options{
		Fingerprint: func([]sm.State) string { return "x" },
		Invariant: func([]sm.State, map[uint64]int, map[uint64]int) error {
			return errBroken
		},
	})
	if r.InvariantErr == nil {
		t.Fatal("invariant violation not reported")
	}
}

var errBroken = errFixed("broken")

type errFixed string

func (e errFixed) Error() string { return string(e) }

type bitState struct{ b bool }

func (s *bitState) Clone() sm.State { c := *s; return &c }

// TestExploreTruncation caps the search and reports truncation.
func TestExploreTruncation(t *testing.T) {
	g := graph.Figure1Network()
	cfg := core.CleanConfig(g)
	for p := 0; p < g.N(); p++ {
		enqueue(cfg, graph.ProcessID(p), "t", graph.ProcessID((p+2)%g.N()))
	}
	opts := explore.CoreOptions(g)
	opts.MaxStates = 50
	r := explore.Explore(g, core.FullProgram(g), cfg, opts)
	if !r.Truncated {
		t.Fatalf("expected truncation: %s", r)
	}
}

// TestExhaustiveRoutingOnly model-checks the routing algorithm alone: from
// a corrupted 3-node line, every central schedule reaches the canonical
// silent fixpoint.
func TestExhaustiveRoutingOnly(t *testing.T) {
	g := graph.Line(3)
	cfg := core.CleanConfig(g)
	// Corrupt two entries.
	cfg[0].(*core.Node).RT.Dist[2] = 0
	cfg[2].(*core.Node).RT.Dist[0] = 3
	opts := explore.CoreOptions(g)
	opts.TerminalCheck = func(cfg []sm.State, _, _ map[uint64]int) error {
		for p := 0; p < g.N(); p++ {
			if !routing.Correct(g, graph.ProcessID(p), cfg[p].(*core.Node).RT) {
				return errFixed("terminal with incorrect routing table")
			}
		}
		return nil
	}
	r := explore.Explore(g, core.FullProgram(g), cfg, opts)
	if !r.OK() {
		t.Fatalf("routing exploration failed: %s; term=%v", r, r.TerminalErr)
	}
	if r.Terminals != 1 {
		t.Fatalf("routing has one silent fixpoint, found %d terminals", r.Terminals)
	}
}

// TestExhaustiveSimultaneityTwo re-checks the corrupted Figure 3 scenario
// with every two-processor simultaneous step also enumerated — composite
// atomicity (two actions reading the same snapshot) is where simultaneous
// execution differs from interleaving, and SP must survive it.
func TestExhaustiveSimultaneityTwo(t *testing.T) {
	g := graph.Figure3Network()
	cfg := core.CleanConfig(g)
	cfg[0].(*core.Node).RT.Parent[1] = 2
	cfg[0].(*core.Node).RT.Dist[1] = 2
	cfg[2].(*core.Node).RT.Parent[1] = 0
	cfg[2].(*core.Node).RT.Dist[1] = 2
	cfg[1].(*core.Node).FW.Dests[1].BufR = &core.Message{
		Payload: "data", LastHop: 2, Color: 0, UID: 1 << 50, Src: 1, Dest: 1, Valid: false,
	}
	enqueue(cfg, 2, "data", 1)
	opts := explore.CoreOptions(g)
	opts.MaxSimultaneity = 2
	r := explore.Explore(g, core.FullProgram(g), cfg, opts)
	if !r.OK() {
		t.Fatalf("simultaneity-2 exploration failed: %s; inv=%v term=%v",
			r, r.InvariantErr, r.TerminalErr)
	}
	t.Log(r)
}

// TestExhaustiveSimultaneityTwoSamePayload re-checks the color machinery
// with simultaneous pairs.
func TestExhaustiveSimultaneityTwoSamePayload(t *testing.T) {
	g := graph.Line(3)
	cfg := core.CleanConfig(g)
	enqueue(cfg, 0, "same", 2)
	enqueue(cfg, 0, "same", 2)
	enqueue(cfg, 2, "same", 0)
	opts := explore.CoreOptions(g)
	opts.MaxSimultaneity = 2
	r := explore.Explore(g, core.FullProgram(g), cfg, opts)
	if !r.OK() {
		t.Fatalf("simultaneity-2 exploration failed: %s; inv=%v term=%v",
			r, r.InvariantErr, r.TerminalErr)
	}
	t.Log(r)
}
