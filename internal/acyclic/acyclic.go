// Package acyclic implements the second buffer-graph family the paper's
// conclusion discusses (§4): Merlin–Schweitzer's scheme based on an
// acyclic orientation cover of the network. A cover is a sequence
// ω_1..ω_k of acyclic orientations such that every routing path decomposes
// into consecutive segments, segment j descending in ω_{i_j} with
// i_1 ≤ i_2 ≤ ... Each processor then needs only k buffers — one per
// level — instead of one (or two) per destination: a message at level ℓ
// follows ω_ℓ edges and climbs to the smallest usable level when its next
// edge runs against ω_ℓ. Levels never decrease and each ω is acyclic, so
// the buffer graph is a DAG and the controller is deadlock-free.
//
// The paper's examples: a tree has a cover of size 2 (toward the root,
// away from the root), a ring one of size 3 (ascending, descending,
// ascending again for arcs that wrap the origin) — and computing the
// minimal cover size ("rank") of a general graph is NP-hard
// (Kralovic–Ruzicka), which is why this scheme "cannot be easily applied
// to any network" and the paper keeps the destination-based graph.
// Whether snap-stabilization is achievable on k ≪ 2n buffers is the
// paper's open problem; this package provides the fault-free controller
// and the buffer-economy comparison (experiment E-X4), not a stabilizing
// variant.
package acyclic

import (
	"fmt"

	"ssmfp/internal/graph"
	"ssmfp/internal/routing"
)

// Orientation assigns a direction to every edge of a graph: Dir[u][v] is
// true iff the edge (u, v) is oriented u → v. Exactly one of Dir[u][v],
// Dir[v][u] holds per edge.
type Orientation struct {
	g   *graph.Graph
	dir map[[2]graph.ProcessID]bool
}

// NewOrientation builds an orientation from a comparison: edge (u, v) is
// oriented u → v iff less(u, v). less must be a strict total order on
// processors, which makes the orientation acyclic by construction.
func NewOrientation(g *graph.Graph, less func(u, v graph.ProcessID) bool) *Orientation {
	o := &Orientation{g: g, dir: make(map[[2]graph.ProcessID]bool)}
	for _, e := range g.Edges() {
		u, v := e[0], e[1]
		if less(u, v) {
			o.dir[[2]graph.ProcessID{u, v}] = true
		} else {
			o.dir[[2]graph.ProcessID{v, u}] = true
		}
	}
	return o
}

// Has reports whether the edge u → v exists in the orientation.
func (o *Orientation) Has(u, v graph.ProcessID) bool {
	return o.dir[[2]graph.ProcessID{u, v}]
}

// Acyclic verifies the orientation is a DAG (always true for orientations
// built by NewOrientation from a total order; exported for covers built
// by hand).
func (o *Orientation) Acyclic() bool {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]int, o.g.N())
	var dfs func(u graph.ProcessID) bool
	dfs = func(u graph.ProcessID) bool {
		color[u] = gray
		for _, v := range o.g.Neighbors(u) {
			if !o.Has(u, v) {
				continue
			}
			switch color[v] {
			case gray:
				return false
			case white:
				if !dfs(v) {
					return false
				}
			}
		}
		color[u] = black
		return true
	}
	for u := 0; u < o.g.N(); u++ {
		if color[u] == white && !dfs(graph.ProcessID(u)) {
			return false
		}
	}
	return true
}

// Cover is an ordered sequence of acyclic orientations.
type Cover struct {
	g            *graph.Graph
	orientations []*Orientation
}

// Size returns k, the number of orientations (= buffers per processor).
func (c *Cover) Size() int { return len(c.orientations) }

// Graph returns the covered network.
func (c *Cover) Graph() *graph.Graph { return c.g }

// Orientation returns ω_level (1-based).
func (c *Cover) Orientation(level int) *Orientation {
	return c.orientations[level-1]
}

// LevelFor returns the smallest level j ≥ from whose orientation contains
// the edge u → v, or 0 if the cover cannot carry that hop from that level.
func (c *Cover) LevelFor(from int, u, v graph.ProcessID) int {
	for j := from; j <= len(c.orientations); j++ {
		if c.orientations[j-1].Has(u, v) {
			return j
		}
	}
	return 0
}

// Levels assigns monotone levels to the hops of a path, or an error if the
// cover does not carry the path.
func (c *Cover) Levels(path []graph.ProcessID) ([]int, error) {
	if len(path) < 2 {
		return nil, nil
	}
	levels := make([]int, len(path)-1)
	level := 1
	for i := 0; i+1 < len(path); i++ {
		j := c.LevelFor(level, path[i], path[i+1])
		if j == 0 {
			return nil, fmt.Errorf("acyclic: cover of size %d cannot carry hop %d→%d of path %v",
				c.Size(), path[i], path[i+1], path)
		}
		levels[i] = j
		level = j
	}
	return levels, nil
}

// Covers reports whether every routing path of the tables is carried by
// the cover, i.e. admits a monotone level assignment.
func (c *Cover) Covers(tables []*routing.NodeState) bool {
	for p := 0; p < c.g.N(); p++ {
		for d := 0; d < c.g.N(); d++ {
			if p == d {
				continue
			}
			path := routePath(c.g, tables, graph.ProcessID(p), graph.ProcessID(d))
			if path == nil {
				return false // routing loop: no scheme covers it
			}
			if _, err := c.Levels(path); err != nil {
				return false
			}
		}
	}
	return true
}

// routePath follows the tables from p to d, returning nil on a loop.
func routePath(g *graph.Graph, tables []*routing.NodeState, p, d graph.ProcessID) []graph.ProcessID {
	path := []graph.ProcessID{p}
	for p != d {
		if len(path) > g.N() {
			return nil
		}
		p = tables[p].NextHop(d)
		path = append(path, p)
	}
	return path
}

// TreeCover returns the size-2 cover of a tree: ω_1 orients every edge
// toward the root, ω_2 away from it (any tree path climbs to the LCA and
// then descends). It panics if g is not a tree.
func TreeCover(g *graph.Graph, root graph.ProcessID) *Cover {
	if g.M() != g.N()-1 {
		panic(fmt.Sprintf("acyclic: TreeCover needs a tree, got m=%d n=%d", g.M(), g.N()))
	}
	depth := make([]int, g.N())
	for p := 0; p < g.N(); p++ {
		depth[p] = g.Dist(graph.ProcessID(p), root)
	}
	toRoot := func(u, v graph.ProcessID) bool { return depth[u] > depth[v] }
	fromRoot := func(u, v graph.ProcessID) bool { return depth[u] < depth[v] }
	return &Cover{g: g, orientations: []*Orientation{
		NewOrientation(g, toRoot),
		NewOrientation(g, fromRoot),
	}}
}

// RingCover returns the size-3 cover of a ring with identity ordering:
// ascending, descending, ascending — the paper's "3 buffers for a ring".
// The cover pairs with *clockwise* routing (ClockwiseRingTables): a
// clockwise arc is an ascending run, at most one descending wrap edge
// (n-1 → 0), and an ascending run again. This is the scheme's
// characteristic trade: k = 3 buffers per node instead of n (or 2n), paid
// for with non-minimal paths — counterclockwise shortest arcs that cross
// the cut are not carried, so all traffic goes clockwise.
func RingCover(g *graph.Graph) *Cover {
	asc := func(u, v graph.ProcessID) bool { return u < v }
	desc := func(u, v graph.ProcessID) bool { return u > v }
	return &Cover{g: g, orientations: []*Orientation{
		NewOrientation(g, asc),
		NewOrientation(g, desc),
		NewOrientation(g, asc),
	}}
}

// ClockwiseRingTables returns routing tables that send every message
// clockwise (p → p+1 mod n) on a ring — the non-minimal routing the
// 3-buffer ring cover carries. Dist entries record the clockwise arc
// length.
func ClockwiseRingTables(g *graph.Graph) []*routing.NodeState {
	n := g.N()
	tables := make([]*routing.NodeState, n)
	for p := 0; p < n; p++ {
		s := &routing.NodeState{Dist: make([]int, n), Parent: make([]graph.ProcessID, n)}
		for d := 0; d < n; d++ {
			if p == d {
				s.Dist[d] = 0
				s.Parent[d] = graph.ProcessID(p)
				continue
			}
			s.Dist[d] = (d - p + n) % n
			s.Parent[d] = graph.ProcessID((p + 1) % n)
		}
		tables[p] = s
	}
	return tables
}

// AlternatingCover builds a cover for any graph and any loop-free routing
// tables by alternating the ascending and descending orientations of the
// identity order until every routing path is carried. The resulting size
// is (number of monotone runs in the worst path), a computable upper
// bound on the NP-hard minimal rank.
func AlternatingCover(g *graph.Graph, tables []*routing.NodeState) (*Cover, error) {
	asc := NewOrientation(g, func(u, v graph.ProcessID) bool { return u < v })
	desc := NewOrientation(g, func(u, v graph.ProcessID) bool { return u > v })
	need := 1
	for p := 0; p < g.N(); p++ {
		for d := 0; d < g.N(); d++ {
			if p == d {
				continue
			}
			path := routePath(g, tables, graph.ProcessID(p), graph.ProcessID(d))
			if path == nil {
				return nil, fmt.Errorf("acyclic: routing loop on path %d→%d", p, d)
			}
			if runs := monotoneRuns(path); runs > need {
				need = runs
			}
		}
	}
	// The first run may be descending, in which case it is carried by ω_2;
	// one extra alternation covers either phase.
	k := need + 1
	orientations := make([]*Orientation, k)
	for i := range orientations {
		if i%2 == 0 {
			orientations[i] = asc
		} else {
			orientations[i] = desc
		}
	}
	return &Cover{g: g, orientations: orientations}, nil
}

// monotoneRuns counts maximal monotone (in processor ID) segments of a
// path.
func monotoneRuns(path []graph.ProcessID) int {
	if len(path) < 2 {
		return 0
	}
	runs := 1
	ascending := path[1] > path[0]
	for i := 2; i < len(path); i++ {
		a := path[i] > path[i-1]
		if a != ascending {
			runs++
			ascending = a
		}
	}
	return runs
}

// LevelBufferDAG materializes the buffer graph of the level-buffer
// controller: one node per (processor, level), an edge fb_ℓ(u) → fb_j(v)
// whenever the move rule can carry a message that way (v is some
// destination's next hop from u and j = LevelFor(ℓ, u, v)). The scheme's
// deadlock-freedom argument is that this graph is acyclic; Acyclic()
// checks it mechanically for the given tables.
type LevelBufferDAG struct {
	cover *Cover
	succ  map[[2]int][][2]int // (processor, level) -> successors
}

// NewLevelBufferDAG builds the graph for a cover and loop-free tables.
func NewLevelBufferDAG(cover *Cover, tables []*routing.NodeState) *LevelBufferDAG {
	g := cover.Graph()
	dag := &LevelBufferDAG{cover: cover, succ: make(map[[2]int][][2]int)}
	for u := 0; u < g.N(); u++ {
		for d := 0; d < g.N(); d++ {
			if u == d {
				continue
			}
			hop := tables[u].NextHop(graph.ProcessID(d))
			for l := 1; l <= cover.Size(); l++ {
				j := cover.LevelFor(l, graph.ProcessID(u), hop)
				if j == 0 {
					continue
				}
				from := [2]int{u, l}
				to := [2]int{int(hop), j}
				dag.succ[from] = append(dag.succ[from], to)
			}
		}
	}
	return dag
}

// Edges returns the number of directed edges.
func (d *LevelBufferDAG) Edges() int {
	n := 0
	for _, ss := range d.succ {
		n += len(ss)
	}
	return n
}

// Acyclic verifies the deadlock-freedom precondition: no directed cycle
// among the level buffers.
func (d *LevelBufferDAG) Acyclic() bool {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[[2]int]int)
	var dfs func(u [2]int) bool
	dfs = func(u [2]int) bool {
		color[u] = gray
		for _, v := range d.succ[u] {
			switch color[v] {
			case gray:
				return false
			case white:
				if !dfs(v) {
					return false
				}
			}
		}
		color[u] = black
		return true
	}
	g := d.cover.Graph()
	for u := 0; u < g.N(); u++ {
		for l := 1; l <= d.cover.Size(); l++ {
			node := [2]int{u, l}
			if color[node] == white && !dfs(node) {
				return false
			}
		}
	}
	return true
}
