package acyclic

import (
	"fmt"
	"math/rand"

	"ssmfp/internal/graph"
	"ssmfp/internal/routing"
)

// Packet is a message traveling through the level-buffer controller.
type Packet struct {
	Payload string
	UID     uint64
	Src     graph.ProcessID
	Dest    graph.ProcessID
}

// Controller is the fault-free store-and-forward controller over the
// level buffers of an acyclic orientation cover: every processor owns k
// buffers fb_1..fb_k (k = cover size, independent of n); a message in
// fb_ℓ(u) with next routing hop v moves into fb_j(v) where j ≥ ℓ is the
// smallest level whose orientation carries u → v. Levels never decrease
// and every ω is acyclic, so the buffer graph is a DAG: the controller is
// deadlock-free whenever the cover carries all routing paths.
//
// Moves are atomic (the §2.2 message-switched semantics), like
// baseline.AtomicNetwork; the point of this controller is the buffer
// economy comparison of experiment E-X4, not stabilization.
type Controller struct {
	cover  *Cover
	tables []*routing.NodeState

	buf     [][]*levelSlot // [processor][level-1]
	pending [][]Packet
	nextSeq []uint64

	rng       *rand.Rand
	moves     int
	delivered []Packet
}

// levelSlot holds a packet plus its current level (the level is implied
// by the slot index; kept for clarity of the move rule).
type levelSlot struct {
	pkt   Packet
	level int
}

// NewController builds a controller over the cover and loop-free routing
// tables. It panics if the cover does not carry the tables' paths —
// callers should construct covers with AlternatingCover (or the
// specialized TreeCover/RingCover) from the same tables.
func NewController(cover *Cover, tables []*routing.NodeState, seed int64) *Controller {
	if !cover.Covers(tables) {
		panic("acyclic: cover does not carry the routing paths")
	}
	n := cover.Graph().N()
	buf := make([][]*levelSlot, n)
	for p := range buf {
		buf[p] = make([]*levelSlot, cover.Size())
	}
	return &Controller{
		cover:   cover,
		tables:  tables,
		buf:     buf,
		pending: make([][]Packet, n),
		nextSeq: make([]uint64, n),
		rng:     rand.New(rand.NewSource(seed)),
	}
}

// BuffersPerNode returns k, the per-processor buffer count of the scheme.
func (c *Controller) BuffersPerNode() int { return c.cover.Size() }

// Enqueue registers a send request (src ≠ dst).
func (c *Controller) Enqueue(src graph.ProcessID, payload string, dst graph.ProcessID) {
	if src == dst {
		panic("acyclic: self-sends bypass the network")
	}
	c.pending[src] = append(c.pending[src], Packet{Payload: payload, Src: src, Dest: dst})
}

// move is one applicable atomic move.
type move struct {
	kind    int // 0 generate, 1 forward, 2 consume
	p       graph.ProcessID
	level   int // source level for forward/consume; entry level for generate
	toLevel int
}

const (
	generate = iota
	forward
	consume
)

// legalMoves enumerates applicable moves in deterministic order.
func (c *Controller) legalMoves() []move {
	var out []move
	g := c.cover.Graph()
	for pp := 0; pp < g.N(); pp++ {
		p := graph.ProcessID(pp)
		if len(c.pending[p]) > 0 {
			pkt := c.pending[p][0]
			hop := c.tables[p].NextHop(pkt.Dest)
			entry := c.cover.LevelFor(1, p, hop)
			if entry > 0 && c.buf[p][entry-1] == nil {
				out = append(out, move{kind: generate, p: p, level: entry})
			}
		}
		for ℓ := 1; ℓ <= c.cover.Size(); ℓ++ {
			slot := c.buf[p][ℓ-1]
			if slot == nil {
				continue
			}
			if slot.pkt.Dest == p {
				out = append(out, move{kind: consume, p: p, level: ℓ})
				continue
			}
			hop := c.tables[p].NextHop(slot.pkt.Dest)
			j := c.cover.LevelFor(ℓ, p, hop)
			if j > 0 && c.buf[hop][j-1] == nil {
				out = append(out, move{kind: forward, p: p, level: ℓ, toLevel: j})
			}
		}
	}
	return out
}

// Step executes one uniformly random applicable move; false when none is.
func (c *Controller) Step() bool {
	moves := c.legalMoves()
	if len(moves) == 0 {
		return false
	}
	m := moves[c.rng.Intn(len(moves))]
	c.moves++
	switch m.kind {
	case generate:
		pkt := c.pending[m.p][0]
		c.pending[m.p] = c.pending[m.p][1:]
		pkt.UID = uint64(m.p)<<32 | c.nextSeq[m.p]
		c.nextSeq[m.p]++
		c.buf[m.p][m.level-1] = &levelSlot{pkt: pkt, level: m.level}
	case forward:
		slot := c.buf[m.p][m.level-1]
		hop := c.tables[m.p].NextHop(slot.pkt.Dest)
		c.buf[hop][m.toLevel-1] = &levelSlot{pkt: slot.pkt, level: m.toLevel}
		c.buf[m.p][m.level-1] = nil
	case consume:
		c.delivered = append(c.delivered, c.buf[m.p][m.level-1].pkt)
		c.buf[m.p][m.level-1] = nil
	}
	return true
}

// Run executes up to maxMoves moves; stopped reports whether the network
// drained (no applicable move) rather than hitting the cap.
func (c *Controller) Run(maxMoves int) (moves int, stopped bool) {
	for moves < maxMoves {
		if !c.Step() {
			return moves, true
		}
		moves++
	}
	return moves, false
}

// Delivered returns delivered packets in order; Moves the total move
// count.
func (c *Controller) Delivered() []Packet { return c.delivered }
func (c *Controller) Moves() int          { return c.moves }

// Quiescent reports whether all buffers are empty and nothing is pending.
func (c *Controller) Quiescent() bool {
	for p := range c.buf {
		if len(c.pending[p]) > 0 {
			return false
		}
		for _, s := range c.buf[p] {
			if s != nil {
				return false
			}
		}
	}
	return true
}

// Deadlocked reports occupied buffers with no applicable move — which the
// DAG property rules out for covered tables; exposed so tests can assert
// it never happens.
func (c *Controller) Deadlocked() bool {
	return !c.Quiescent() && len(c.legalMoves()) == 0
}

// String describes the controller.
func (c *Controller) String() string {
	return fmt.Sprintf("acyclic-controller(k=%d, n=%d)", c.cover.Size(), c.cover.Graph().N())
}
