package acyclic

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"ssmfp/internal/graph"
	"ssmfp/internal/routing"
)

func correctTables(g *graph.Graph) []*routing.NodeState {
	ts := make([]*routing.NodeState, g.N())
	for p := 0; p < g.N(); p++ {
		ts[p] = routing.CorrectState(g, graph.ProcessID(p))
	}
	return ts
}

func TestOrientationFromTotalOrderIsAcyclic(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		g := graph.RandomConnected(4+rng.Intn(10), 30, rng)
		perm := rng.Perm(g.N())
		o := NewOrientation(g, func(u, v graph.ProcessID) bool { return perm[u] < perm[v] })
		if !o.Acyclic() {
			t.Fatal("orientation from a total order must be acyclic")
		}
		for _, e := range g.Edges() {
			if o.Has(e[0], e[1]) == o.Has(e[1], e[0]) {
				t.Fatal("exactly one direction per edge")
			}
		}
	}
}

func TestAcyclicDetectsCycle(t *testing.T) {
	g := graph.Ring(3)
	o := &Orientation{g: g, dir: map[[2]graph.ProcessID]bool{
		{0, 1}: true, {1, 2}: true, {2, 0}: true, // directed triangle
	}}
	if o.Acyclic() {
		t.Fatal("directed triangle must be reported cyclic")
	}
}

func TestTreeCoverSize2CoversTree(t *testing.T) {
	g := graph.BinaryTree(15)
	c := TreeCover(g, 0)
	if c.Size() != 2 {
		t.Fatalf("tree cover size = %d, want 2 (the paper's '2 for a tree')", c.Size())
	}
	if !c.Covers(correctTables(g)) {
		t.Fatal("tree cover must carry all shortest paths of a tree")
	}
	for _, o := range []*Orientation{c.Orientation(1), c.Orientation(2)} {
		if !o.Acyclic() {
			t.Fatal("tree orientations must be acyclic")
		}
	}
}

func TestTreeCoverRejectsNonTree(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on a non-tree")
		}
	}()
	TreeCover(graph.Ring(4), 0)
}

func TestRingCoverSize3CoversClockwiseRouting(t *testing.T) {
	for _, n := range []int{4, 5, 8, 11} {
		g := graph.Ring(n)
		c := RingCover(g)
		if c.Size() != 3 {
			t.Fatalf("ring cover size = %d, want 3 (the paper's '3 for a ring')", c.Size())
		}
		if !c.Covers(ClockwiseRingTables(g)) {
			t.Fatalf("ring cover must carry clockwise routing (n=%d)", n)
		}
	}
}

func TestRingCoverCannotCarryShortestPaths(t *testing.T) {
	// The buffer economy is paid for with non-minimal paths: shortest-path
	// (BFS) routing has counterclockwise arcs crossing the cut, which the
	// 3-cover does not carry.
	g := graph.Ring(8)
	if RingCover(g).Covers(correctTables(g)) {
		t.Fatal("3-cover should not carry minimal ring routing")
	}
}

func TestClockwiseRingTablesShape(t *testing.T) {
	g := graph.Ring(6)
	ts := ClockwiseRingTables(g)
	for p := 0; p < 6; p++ {
		for d := 0; d < 6; d++ {
			if p == d {
				continue
			}
			if ts[p].NextHop(graph.ProcessID(d)) != graph.ProcessID((p+1)%6) {
				t.Fatal("clockwise tables must always point to p+1")
			}
			if ts[p].Dist[d] != (d-p+6)%6 {
				t.Fatal("clockwise distance wrong")
			}
		}
	}
}

func TestRingNeedsMoreThanTwo(t *testing.T) {
	// A size-2 asc/desc cover cannot carry the wrapping arcs of a ring —
	// the reason the paper quotes 3 buffers, not 2.
	g := graph.Ring(6)
	asc := NewOrientation(g, func(u, v graph.ProcessID) bool { return u < v })
	desc := NewOrientation(g, func(u, v graph.ProcessID) bool { return u > v })
	c2 := &Cover{g: g, orientations: []*Orientation{asc, desc}}
	if c2.Covers(correctTables(g)) {
		t.Fatal("a 2-cover should NOT carry wrapping ring arcs")
	}
}

func TestLevelsMonotoneAndCarried(t *testing.T) {
	g := graph.Ring(8)
	c := RingCover(g)
	// Path 5→6→7→0→1 wraps the origin: ascending, then the 7→0 descent,
	// then ascending again — levels 1,1,2,3.
	path := []graph.ProcessID{5, 6, 7, 0, 1}
	levels, err := c.Levels(path)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 1, 2, 3}
	for i := range want {
		if levels[i] != want[i] {
			t.Fatalf("levels = %v, want %v", levels, want)
		}
	}
	if lv, err := c.Levels([]graph.ProcessID{3}); lv != nil || err != nil {
		t.Fatal("trivial path must have no levels and no error")
	}
}

func TestAlternatingCoverCarriesArbitraryGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 15; trial++ {
		g := graph.RandomConnected(4+rng.Intn(12), 3*4, rng)
		tables := correctTables(g)
		c, err := AlternatingCover(g, tables)
		if err != nil {
			t.Fatal(err)
		}
		if !c.Covers(tables) {
			t.Fatalf("alternating cover of size %d fails on %v", c.Size(), g)
		}
		if c.Size() > g.N() {
			t.Fatalf("cover size %d exceeds n=%d (monotone runs are bounded by path length)", c.Size(), g.N())
		}
	}
}

func TestAlternatingCoverRejectsRoutingLoop(t *testing.T) {
	g := graph.Ring(5)
	tables := correctTables(g)
	routing.CycleCorrupt(g, 0, 1, 2, tables)
	if _, err := AlternatingCover(g, tables); err == nil {
		t.Fatal("expected an error for looping tables")
	}
}

func TestControllerDeliversEverything(t *testing.T) {
	g := graph.Ring(8)
	tables := ClockwiseRingTables(g)
	ctrl := NewController(RingCover(g), tables, 3)
	if ctrl.BuffersPerNode() != 3 {
		t.Fatalf("buffers per node = %d", ctrl.BuffersPerNode())
	}
	want := 0
	for src := 0; src < g.N(); src++ {
		for off := 1; off <= 3; off++ {
			ctrl.Enqueue(graph.ProcessID(src), fmt.Sprintf("p%d-%d", src, off), graph.ProcessID((src+off)%g.N()))
			want++
		}
	}
	_, stopped := ctrl.Run(1_000_000)
	if !stopped || !ctrl.Quiescent() {
		t.Fatalf("controller did not drain; deadlocked=%v", ctrl.Deadlocked())
	}
	if len(ctrl.Delivered()) != want {
		t.Fatalf("delivered %d, want %d", len(ctrl.Delivered()), want)
	}
	seen := map[uint64]bool{}
	for _, p := range ctrl.Delivered() {
		if seen[p.UID] {
			t.Fatal("duplicate delivery")
		}
		seen[p.UID] = true
	}
}

func TestControllerNeverDeadlocksUnderSaturation(t *testing.T) {
	// Saturate a tree so that buffers contend heavily; the DAG property
	// must still drain everything.
	g := graph.BinaryTree(15)
	tables := correctTables(g)
	ctrl := NewController(TreeCover(g, 0), tables, 9)
	want := 0
	for src := 0; src < g.N(); src++ {
		for dst := 0; dst < g.N(); dst++ {
			if src != dst {
				ctrl.Enqueue(graph.ProcessID(src), "s", graph.ProcessID(dst))
				want++
			}
		}
	}
	for i := 0; i < 10_000_000; i++ {
		if !ctrl.Step() {
			break
		}
		if i%1000 == 0 && ctrl.Deadlocked() {
			t.Fatal("deadlock under saturation — DAG property violated")
		}
	}
	if !ctrl.Quiescent() || len(ctrl.Delivered()) != want {
		t.Fatalf("drained=%v delivered=%d want=%d", ctrl.Quiescent(), len(ctrl.Delivered()), want)
	}
}

func TestControllerRejectsSelfSend(t *testing.T) {
	g := graph.Ring(4)
	ctrl := NewController(RingCover(g), ClockwiseRingTables(g), 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ctrl.Enqueue(1, "self", 1)
}

func TestControllerRejectsUncoveredTables(t *testing.T) {
	g := graph.Ring(6)
	asc := NewOrientation(g, func(u, v graph.ProcessID) bool { return u < v })
	badCover := &Cover{g: g, orientations: []*Orientation{asc}}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for an insufficient cover")
		}
	}()
	NewController(badCover, correctTables(g), 1)
}

func TestMonotoneRuns(t *testing.T) {
	cases := []struct {
		path []graph.ProcessID
		want int
	}{
		{[]graph.ProcessID{0, 1, 2}, 1},
		{[]graph.ProcessID{2, 1, 0}, 1},
		{[]graph.ProcessID{0, 2, 1, 3}, 3},
		{[]graph.ProcessID{5, 6, 7, 0, 1}, 3},
		{[]graph.ProcessID{4}, 0},
	}
	for i, c := range cases {
		if got := monotoneRuns(c.path); got != c.want {
			t.Errorf("case %d: runs(%v) = %d, want %d", i, c.path, got, c.want)
		}
	}
}

// Property: on random graphs with canonical tables, the alternating-cover
// controller delivers random batches exactly once and never deadlocks.
func TestQuickControllerExactlyOnce(t *testing.T) {
	f := func(seed int64, nRaw, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + int(nRaw)%8
		g := graph.RandomConnected(n, 2*n, rng)
		tables := correctTables(g)
		cover, err := AlternatingCover(g, tables)
		if err != nil {
			return false
		}
		ctrl := NewController(cover, tables, seed)
		want := 1 + int(kRaw)%8
		for i := 0; i < want; i++ {
			src := graph.ProcessID(rng.Intn(n))
			dst := graph.ProcessID(rng.Intn(n))
			for dst == src {
				dst = graph.ProcessID(rng.Intn(n))
			}
			ctrl.Enqueue(src, "q", dst)
		}
		_, stopped := ctrl.Run(2_000_000)
		return stopped && ctrl.Quiescent() && len(ctrl.Delivered()) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestLevelBufferDAGIsAcyclic(t *testing.T) {
	// The deadlock-freedom argument of the scheme, checked mechanically on
	// every cover/table pairing the experiments use.
	cases := []struct {
		name   string
		cover  *Cover
		tables []*routing.NodeState
	}{
		{"ring-8 clockwise", RingCover(graph.Ring(8)), ClockwiseRingTables(graph.Ring(8))},
		{"tree-15 minimal", TreeCover(graph.BinaryTree(15), 0), correctTables(graph.BinaryTree(15))},
	}
	g := graph.Grid(3, 3)
	ts := correctTables(g)
	c, err := AlternatingCover(g, ts)
	if err != nil {
		t.Fatal(err)
	}
	cases = append(cases, struct {
		name   string
		cover  *Cover
		tables []*routing.NodeState
	}{"grid-3x3 alternating", c, ts})

	for _, tc := range cases {
		dag := NewLevelBufferDAG(tc.cover, tc.tables)
		if dag.Edges() == 0 {
			t.Fatalf("%s: empty level-buffer graph", tc.name)
		}
		if !dag.Acyclic() {
			t.Fatalf("%s: level-buffer graph has a cycle — deadlock possible", tc.name)
		}
	}
}

func TestLevelBufferDAGQuickAcyclic(t *testing.T) {
	// Property: for random graphs with canonical tables and alternating
	// covers, the level-buffer graph is always a DAG.
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + int(nRaw)%8
		g := graph.RandomConnected(n, 2*n, rng)
		ts := correctTables(g)
		c, err := AlternatingCover(g, ts)
		if err != nil {
			return false
		}
		return NewLevelBufferDAG(c, ts).Acyclic()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
