package secure_test

import (
	"path/filepath"
	"testing"
	"time"

	"ssmfp/internal/secure"
)

func TestRoleExtensionRoundTrip(t *testing.T) {
	for _, role := range []secure.Role{secure.RoleNode, secure.RoleOperator, secure.RoleObserver} {
		ext, err := secure.EncodeRoleExtension(role)
		if err != nil {
			t.Fatalf("encode %s: %v", role, err)
		}
		got, err := secure.ParseRoleExtension(ext.Value)
		if err != nil {
			t.Fatalf("parse %s: %v", role, err)
		}
		if got != role {
			t.Fatalf("round trip %s -> %s", role, got)
		}
	}
	if _, err := secure.EncodeRoleExtension(secure.RoleInvalid); err == nil {
		t.Fatal("encoding the invalid role must fail")
	}
	for name, der := range map[string][]byte{
		"empty":        {},
		"junk":         {0xff, 0x00, 0x01},
		"unknown role": {0x13, 0x04, 'r', 'o', 'o', 't'},
		"trailing":     {0x13, 0x04, 'n', 'o', 'd', 'e', 0x00},
	} {
		if _, err := secure.ParseRoleExtension(der); err == nil {
			t.Errorf("%s: parse accepted %x", name, der)
		}
	}
}

func TestIdentityAndVerifyRole(t *testing.T) {
	ca, err := secure.GenCA("test-ca")
	if err != nil {
		t.Fatal(err)
	}
	pool := ca.Pool()

	node, err := ca.IssueNode(7)
	if err != nil {
		t.Fatal(err)
	}
	id, err := secure.VerifyRole(node.Leaf, pool)
	if err != nil {
		t.Fatalf("verify node cert: %v", err)
	}
	if id.Role != secure.RoleNode || id.Proc != 7 || id.Name != "node-7" {
		t.Fatalf("node identity = %+v", id)
	}

	op, err := ca.Issue("ops-console", secure.RoleOperator)
	if err != nil {
		t.Fatal(err)
	}
	id, err = secure.VerifyRole(op.Leaf, pool)
	if err != nil {
		t.Fatalf("verify operator cert: %v", err)
	}
	if id.Role != secure.RoleOperator || id.Proc != -1 {
		t.Fatalf("operator identity = %+v", id)
	}

	// A node-role cert whose CN breaks the node-<id> scheme is unusable;
	// issuance itself refuses to mint one.
	if _, err := ca.Issue("definitely-not-a-node", secure.RoleNode); err == nil {
		t.Fatal("issuing a node cert with a non-node CN must fail")
	}

	// No role extension: identity extraction fails.
	if norole, err := ca.IssueWith("node-3", secure.RoleNode, secure.IssueOptions{OmitRole: true}); err != nil {
		t.Fatal(err)
	} else if _, err := secure.IdentityOf(norole.Leaf); err == nil {
		t.Fatal("cert without the role extension must not yield an identity")
	}

	// A foreign trust domain never verifies.
	otherCA, err := secure.GenCA("other-ca")
	if err != nil {
		t.Fatal(err)
	}
	foreign, err := otherCA.IssueNode(7)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := secure.VerifyRole(foreign.Leaf, pool); err == nil {
		t.Fatal("foreign-CA cert must not verify")
	}

	// An expired cert fails chain verification.
	expired, err := ca.IssueWith("node-1", secure.RoleNode, secure.IssueOptions{
		NotBefore: time.Now().Add(-2 * time.Hour),
		NotAfter:  time.Now().Add(-time.Hour),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := secure.VerifyRole(expired.Leaf, pool); err == nil {
		t.Fatal("expired cert must not verify")
	}
}

func TestCredentialFilesRoundTrip(t *testing.T) {
	dir := t.TempDir()
	ca, err := secure.GenCA("file-ca")
	if err != nil {
		t.Fatal(err)
	}
	caCert, caKey := filepath.Join(dir, "ca.pem"), filepath.Join(dir, "ca.key")
	if err := ca.WriteFiles(caCert, caKey); err != nil {
		t.Fatal(err)
	}

	cred, err := ca.IssueNode(2)
	if err != nil {
		t.Fatal(err)
	}
	certPath, keyPath := filepath.Join(dir, "node-2.pem"), filepath.Join(dir, "node-2.key")
	if err := cred.WriteFiles(certPath, keyPath); err != nil {
		t.Fatal(err)
	}

	loaded, err := secure.LoadCredential(certPath, keyPath)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.ID != cred.ID {
		t.Fatalf("reloaded identity %+v != issued %+v", loaded.ID, cred.ID)
	}
	pool, err := secure.LoadPool(caCert)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := secure.VerifyRole(loaded.Leaf, pool); err != nil {
		t.Fatalf("reloaded credential fails verification: %v", err)
	}

	// The reloaded CA must still be able to issue verifiable credentials.
	ca2, err := secure.LoadCA(caCert, caKey)
	if err != nil {
		t.Fatal(err)
	}
	more, err := ca2.Issue("late-observer", secure.RoleObserver)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := secure.VerifyRole(more.Leaf, pool); err != nil {
		t.Fatalf("cert from reloaded CA fails verification: %v", err)
	}
}
