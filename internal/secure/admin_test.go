package secure_test

import (
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"ssmfp/internal/obs"
	"ssmfp/internal/secure"
	"ssmfp/internal/telemetry"
)

// TestAdminGuardRoles serves a stub /admin/ surface behind mutual TLS
// plus the role guard and exercises it with every role: observers read
// but never mutate, operators do both, nodes do neither.
func TestAdminGuardRoles(t *testing.T) {
	ca, err := secure.GenCA("admin-ca")
	if err != nil {
		t.Fatal(err)
	}
	pool := ca.Pool()
	server, err := ca.IssueNode(0)
	if err != nil {
		t.Fatal(err)
	}

	admin := http.NewServeMux()
	admin.HandleFunc("/admin/status", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"proc":0}`)
	})
	admin.HandleFunc("/admin/epoch", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"applied":true}`)
	})
	reg := telemetry.New()
	srv, err := obs.ServeTLSWith("127.0.0.1:0", secure.ServerConfig(server, pool), nil, nil,
		obs.Route{Pattern: "/admin/", Handler: secure.AdminGuard(admin, reg)})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "https://" + srv.Addr()

	client := func(role secure.Role, name string) *http.Client {
		t.Helper()
		cred, err := ca.Issue(name, role)
		if err != nil {
			t.Fatal(err)
		}
		return &http.Client{
			Timeout: 10 * time.Second,
			Transport: &http.Transport{
				TLSClientConfig: secure.ClientConfig(cred, pool),
			},
		}
	}
	observer := client(secure.RoleObserver, "watcher")
	operator := client(secure.RoleOperator, "ops")
	node := client(secure.RoleNode, "node-5")

	check := func(c *http.Client, method, path string, want int) {
		t.Helper()
		req, err := http.NewRequest(method, base+path, strings.NewReader("{}"))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := c.Do(req)
		if err != nil {
			t.Fatalf("%s %s: %v", method, path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Fatalf("%s %s = %d, want %d", method, path, resp.StatusCode, want)
		}
	}

	// The satellite contract: observers read status, never mutate epochs.
	check(observer, http.MethodGet, "/admin/status", http.StatusOK)
	check(observer, http.MethodPost, "/admin/epoch", http.StatusForbidden)

	check(operator, http.MethodGet, "/admin/status", http.StatusOK)
	check(operator, http.MethodPost, "/admin/epoch", http.StatusOK)

	check(node, http.MethodGet, "/admin/status", http.StatusForbidden)
	check(node, http.MethodPost, "/admin/epoch", http.StatusForbidden)

	if v, ok := reg.Value(telemetry.SeriesSecureRejected, telemetry.L("reason", secure.ReasonAdmin)); !ok || v != 3 {
		t.Fatalf("admin rejections = %d (ok=%v), want 3", v, ok)
	}

	// Plaintext to a TLS-only admin plane must fail outright.
	plain := &http.Client{Timeout: 5 * time.Second}
	if resp, err := plain.Get("http://" + srv.Addr() + "/admin/status"); err == nil {
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			t.Fatal("plaintext request reached a TLS-only admin plane")
		}
	}
}
