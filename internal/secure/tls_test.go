package secure_test

import (
	"crypto/tls"
	"net"
	"testing"
	"time"

	"ssmfp/internal/graph"
	"ssmfp/internal/secure"
	"ssmfp/internal/transport"
)

// domain is a two-node loopback trust domain for rejection tests.
type domain struct {
	ca    *secure.CA
	g     *graph.Graph
	nodes map[graph.ProcessID]*secure.TLS
	addrs map[graph.ProcessID]string
}

func newDomain(t *testing.T) *domain {
	t.Helper()
	ca, err := secure.GenCA("tls-test-ca")
	if err != nil {
		t.Fatal(err)
	}
	g := graph.Line(2)
	pool := ca.Pool()
	listeners := make(map[graph.ProcessID]net.Listener, 2)
	addrs := make(map[graph.ProcessID]string, 2)
	for _, p := range g.Processors() {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[p] = ln
		addrs[p] = ln.Addr().String()
	}
	nodes := make(map[graph.ProcessID]*secure.TLS, 2)
	for _, p := range g.Processors() {
		cred, err := ca.IssueNode(p)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := secure.NewTLS(g, secure.TLSOptions{
			Local: p, Peers: addrs, Listener: listeners[p], Cred: cred, Pool: pool, Seed: int64(p),
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[p] = tr
	}
	t.Cleanup(func() {
		for _, n := range nodes {
			n.Close()
		}
	})
	return &domain{ca: ca, g: g, nodes: nodes, addrs: addrs}
}

// waitRejection polls until node's rejection counter for reason reaches
// want (server-side counting is asynchronous to the client's writes).
func waitRejection(t *testing.T, node *secure.TLS, reason string, want uint64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if node.Rejections()[reason] >= want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("rejection %q stuck at %d, want >= %d (all: %v)",
		reason, node.Rejections()[reason], want, node.Rejections())
}

func TestSecureTLSAdmitsLegitimateTraffic(t *testing.T) {
	d := newDomain(t)
	recv := d.nodes[0].Link(1, 0)
	send := d.nodes[1].Link(1, 0)
	f := transport.Frame{Kind: transport.KindCancel, From: 1, Ack: transport.Ack{Dest: 0, Seq: 4}}
	deadline := time.Now().Add(10 * time.Second)
	for {
		send.Send(f)
		select {
		case got := <-recv.Recv():
			if got.Kind != transport.KindCancel || got.From != 1 {
				t.Fatalf("delivered frame = %+v", got)
			}
			for reason, n := range d.nodes[0].Rejections() {
				if n != 0 {
					t.Fatalf("clean traffic counted a %q rejection", reason)
				}
			}
			return
		case <-time.After(50 * time.Millisecond):
			if time.Now().After(deadline) {
				t.Fatal("legitimate frame never delivered over mutual TLS")
			}
		}
	}
}

// TestHandshakeRejectionTable drives each bad-credential shape at a live
// node and asserts the rejection it must earn.
func TestHandshakeRejectionTable(t *testing.T) {
	d := newDomain(t)
	victim := d.nodes[0]
	otherCA, err := secure.GenCA("wrong-ca")
	if err != nil {
		t.Fatal(err)
	}

	issue := func(ca *secure.CA, name string, role secure.Role, o secure.IssueOptions) *secure.Credential {
		t.Helper()
		cred, err := ca.IssueWith(name, role, o)
		if err != nil {
			t.Fatal(err)
		}
		return cred
	}

	cases := []struct {
		name   string
		cred   *secure.Credential
		frame  *transport.Frame // nil: the handshake itself must fail
		reason string
	}{
		{
			name: "expired cert",
			cred: issue(d.ca, secure.NodeName(1), secure.RoleNode, secure.IssueOptions{
				NotBefore: time.Now().Add(-2 * time.Hour),
				NotAfter:  time.Now().Add(-time.Hour),
			}),
			reason: secure.ReasonHandshake,
		},
		{
			name:   "wrong CA",
			cred:   issue(otherCA, secure.NodeName(1), secure.RoleNode, secure.IssueOptions{}),
			reason: secure.ReasonHandshake,
		},
		{
			name:   "missing role",
			cred:   issue(d.ca, secure.NodeName(1), secure.RoleNode, secure.IssueOptions{OmitRole: true}),
			reason: secure.ReasonHandshake,
		},
		{
			name: "CN/sender mismatch",
			cred: issue(d.ca, secure.NodeName(1), secure.RoleNode, secure.IssueOptions{}),
			frame: &transport.Frame{
				Kind: transport.KindAccept, From: 0, // cert says node-1
				Ack: transport.Ack{Dest: 0, Seq: 1},
			},
			reason: secure.ReasonSender,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			before := victim.Rejections()[tc.reason]
			raw, err := net.DialTimeout("tcp", d.addrs[0], 5*time.Second)
			if err != nil {
				t.Fatal(err)
			}
			conn := tls.Client(raw, &tls.Config{
				MinVersion:         tls.VersionTLS13,
				Certificates:       []tls.Certificate{tc.cred.TLS},
				InsecureSkipVerify: true,
			})
			defer conn.Close()
			conn.SetDeadline(time.Now().Add(5 * time.Second))
			err = conn.Handshake()
			if tc.frame == nil {
				// TLS 1.3 may surface the server's rejection on the first
				// read rather than in Handshake; either way no byte of
				// application data may flow.
				if err == nil {
					one := make([]byte, 1)
					if _, rerr := conn.Read(one); rerr == nil {
						t.Fatal("bad credential completed a handshake and read data")
					}
				}
			} else {
				if err != nil {
					t.Fatalf("handshake with valid cert failed: %v", err)
				}
				if _, err := transport.WriteFrame(conn, tc.frame); err != nil {
					t.Fatalf("frame write: %v", err)
				}
				// The victim must kill this connection: our next read ends
				// with EOF/reset, never data.
				one := make([]byte, 1)
				if _, rerr := conn.Read(one); rerr == nil {
					t.Fatal("victim kept talking to a sender-mismatched stream")
				}
			}
			waitRejection(t, victim, tc.reason, before+1)
		})
	}
}

// TestRogueAccountingInProcess is the byzantine scenario in miniature:
// a rogue strikes a live two-node domain while a legitimate link works,
// and every injected frame must land in exactly the right counter.
func TestRogueAccountingInProcess(t *testing.T) {
	d := newDomain(t)
	victim := d.nodes[0]

	rogue, err := secure.NewRogue(d.ca, 1, 9, []string{d.addrs[0]})
	if err != nil {
		t.Fatal(err)
	}
	const burst = 3
	counts, err := rogue.Strike(burst)
	if err != nil {
		t.Fatalf("strike: %v", err)
	}
	if counts.Handshake != 1 || counts.Role != burst || counts.Sender != burst || counts.Membership != burst {
		t.Fatalf("rogue ledger = %+v", counts)
	}
	waitRejection(t, victim, secure.ReasonHandshake, uint64(counts.Handshake))
	waitRejection(t, victim, secure.ReasonRole, uint64(counts.Role))
	waitRejection(t, victim, secure.ReasonSender, uint64(counts.Sender))
	waitRejection(t, victim, secure.ReasonMembership, uint64(counts.Membership))

	// The attack must not have wedged legitimate service.
	recv := d.nodes[0].Link(1, 0)
	send := d.nodes[1].Link(1, 0)
	f := transport.Frame{Kind: transport.KindCancel, From: 1, Ack: transport.Ack{Dest: 0, Seq: 9}}
	deadline := time.Now().Add(10 * time.Second)
	for {
		send.Send(f)
		select {
		case <-recv.Recv():
			return
		case <-time.After(50 * time.Millisecond):
			if time.Now().After(deadline) {
				t.Fatal("legitimate traffic wedged after the rogue strike")
			}
		}
	}
}

func TestNewTLSRejectsMiscastCredentials(t *testing.T) {
	ca, err := secure.GenCA("miscast-ca")
	if err != nil {
		t.Fatal(err)
	}
	g := graph.Line(2)
	peers := map[graph.ProcessID]string{0: "127.0.0.1:0", 1: "127.0.0.1:1"}

	op, err := ca.Issue("ops", secure.RoleOperator)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := secure.NewTLS(g, secure.TLSOptions{Local: 0, Peers: peers, Cred: op, Pool: ca.Pool()}); err == nil {
		t.Fatal("operator credential accepted as a transport identity")
	}

	wrongNode, err := ca.IssueNode(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := secure.NewTLS(g, secure.TLSOptions{Local: 0, Peers: peers, Cred: wrongNode, Pool: ca.Pool()}); err == nil {
		t.Fatal("node-1 credential accepted as node 0's transport identity")
	}
}
