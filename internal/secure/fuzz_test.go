package secure_test

import (
	"testing"

	"ssmfp/internal/secure"
)

// FuzzCertRoleParse locks the role-extension decoder: adversarial
// certificates reach it, so it must be total (no panics, no hangs) and
// closed under re-encoding — any accepted value names a role whose
// canonical encoding parses back to itself.
func FuzzCertRoleParse(f *testing.F) {
	for _, role := range []secure.Role{secure.RoleNode, secure.RoleOperator, secure.RoleObserver} {
		ext, err := secure.EncodeRoleExtension(role)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(ext.Value)
	}
	f.Add([]byte{})
	f.Add([]byte{0x13, 0x04, 'n', 'o', 'd', 'e', 0xff}) // trailing byte
	f.Add([]byte{0x13, 0x04, 'r', 'o', 'o', 't'})       // unknown role
	f.Add([]byte{0x30, 0x03, 0x02, 0x01, 0x01})         // wrong DER type
	f.Add([]byte{0x13, 0x7f, 'n'})                      // length overrun
	f.Fuzz(func(t *testing.T, data []byte) {
		role, err := secure.ParseRoleExtension(data)
		if err != nil {
			return
		}
		if role != secure.RoleNode && role != secure.RoleOperator && role != secure.RoleObserver {
			t.Fatalf("parser accepted unknown role %d from %x", role, data)
		}
		ext, err := secure.EncodeRoleExtension(role)
		if err != nil {
			t.Fatalf("accepted role %s does not re-encode: %v", role, err)
		}
		again, err := secure.ParseRoleExtension(ext.Value)
		if err != nil || again != role {
			t.Fatalf("canonical encoding of %s does not round-trip: %v", role, err)
		}
	})
}
