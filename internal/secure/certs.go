// Package secure is the trust domain of an SSMFP cluster: an in-memory
// certificate authority, per-node credentials whose signed certificates
// carry a cluster *role* in an X.509 extension (SSNTP-style), a mutual-TLS
// Transport wrapping the TCP backend, a composable role-based frame
// admission layer, an operator-plane authorization guard, and a rogue
// injector that attacks all of it.
//
// The paper's snap-stabilization guarantee covers arbitrary *initial*
// configurations; a cluster spanning untrusted networks also faces
// arbitrary *adversarial* frames. This package turns those into countable,
// testable rejections: every refused handshake, frame, or admin call lands
// in telemetry as ssmfp_secure_rejected_frames_total{reason=...}, and the
// byzantine judge (cmd/ssmfp-node -byzantine) asserts the protocol's
// exactly-once verdict holds while the counters account for every injected
// frame.
//
// Roles, following SSNTP's certificate-declared role scheme:
//
//	node     — a protocol participant; may send DV/offer/accept/cancel/
//	           cancelAck frames and is the only role the wire admits.
//	operator — a human or console; may read AND mutate the /admin/ plane.
//	observer — read-only; may scrape and read /admin/status, never mutate.
//
// Identity is the certificate Common Name: protocol participants are
// "node-<id>", so a peer's authenticated identity can be cross-checked
// against every frame's self-identified sender.
package secure

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"encoding/asn1"
	"encoding/pem"
	"errors"
	"fmt"
	"math/big"
	"os"
	"strconv"
	"strings"
	"time"

	"ssmfp/internal/graph"
)

// Role is a cluster role carried in a certificate extension.
type Role uint8

const (
	RoleInvalid Role = iota
	RoleNode
	RoleOperator
	RoleObserver
)

// String names the role as encoded on the wire (and in cert extensions).
func (r Role) String() string {
	switch r {
	case RoleNode:
		return "node"
	case RoleOperator:
		return "operator"
	case RoleObserver:
		return "observer"
	}
	return "invalid"
}

// ParseRole maps a role name back to its value.
func ParseRole(s string) (Role, error) {
	switch s {
	case "node":
		return RoleNode, nil
	case "operator":
		return RoleOperator, nil
	case "observer":
		return RoleObserver, nil
	}
	return RoleInvalid, fmt.Errorf("secure: unknown role %q", s)
}

// roleOID is the private-arc object identifier of the SSMFP role
// extension. The extension value is a DER PrintableString of the role
// name — deliberately a real encoding with a real parser
// (ParseRoleExtension), fuzz-locked by FuzzCertRoleParse.
var roleOID = asn1.ObjectIdentifier{1, 3, 6, 1, 4, 1, 58530, 1, 1}

// EncodeRoleExtension renders role as the X.509 extension Issue embeds.
func EncodeRoleExtension(role Role) (pkix.Extension, error) {
	if role == RoleInvalid {
		return pkix.Extension{}, errors.New("secure: cannot encode the invalid role")
	}
	der, err := asn1.Marshal(role.String())
	if err != nil {
		return pkix.Extension{}, err
	}
	return pkix.Extension{Id: roleOID, Critical: false, Value: der}, nil
}

// ParseRoleExtension decodes a role-extension value. It is total and
// strict: any trailing bytes, non-string DER, or unknown role name is an
// error, never a panic — adversarial certificates reach this parser.
func ParseRoleExtension(der []byte) (Role, error) {
	var name string
	rest, err := asn1.Unmarshal(der, &name)
	if err != nil {
		return RoleInvalid, fmt.Errorf("secure: role extension: %v", err)
	}
	if len(rest) != 0 {
		return RoleInvalid, fmt.Errorf("secure: role extension: %d trailing bytes", len(rest))
	}
	return ParseRole(name)
}

// NodeName is the Common Name scheme of protocol participants; the TLS
// transport cross-checks it against every frame's From field.
func NodeName(p graph.ProcessID) string { return "node-" + strconv.Itoa(int(p)) }

// Identity is what a verified certificate says about its holder.
type Identity struct {
	// Name is the certificate Common Name.
	Name string `json:"name"`
	// Role is the cluster role from the role extension.
	Role Role `json:"-"`
	// Proc is the processor a node-role identity maps to (-1 for
	// operator/observer identities, which are not protocol participants).
	Proc graph.ProcessID `json:"proc"`
}

// IdentityOf extracts the holder's identity from a certificate: the role
// extension plus the CN. Node-role certificates must follow the
// "node-<id>" CN scheme — a node identity that cannot be cross-checked
// against frame senders is unusable and therefore an error.
func IdentityOf(cert *x509.Certificate) (Identity, error) {
	var ext []byte
	found := false
	for _, e := range cert.Extensions {
		if e.Id.Equal(roleOID) {
			ext, found = e.Value, true
			break
		}
	}
	if !found {
		return Identity{}, fmt.Errorf("secure: certificate %q carries no role extension", cert.Subject.CommonName)
	}
	role, err := ParseRoleExtension(ext)
	if err != nil {
		return Identity{}, err
	}
	id := Identity{Name: cert.Subject.CommonName, Role: role, Proc: -1}
	if role == RoleNode {
		num, ok := strings.CutPrefix(id.Name, "node-")
		if !ok {
			return Identity{}, fmt.Errorf("secure: node certificate CN %q does not follow node-<id>", id.Name)
		}
		n, err := strconv.Atoi(num)
		if err != nil || n < 0 {
			return Identity{}, fmt.Errorf("secure: node certificate CN %q has no valid id", id.Name)
		}
		id.Proc = graph.ProcessID(n)
	}
	return id, nil
}

// VerifyRole chain-verifies cert against the trust domain's CA pool and
// returns the identity it attests. This is the one-call form used outside
// handshakes (tests, tooling); the TLS configs run the same checks inside
// VerifyPeerCertificate.
func VerifyRole(cert *x509.Certificate, pool *x509.CertPool) (Identity, error) {
	if _, err := cert.Verify(x509.VerifyOptions{
		Roots:     pool,
		KeyUsages: []x509.ExtKeyUsage{x509.ExtKeyUsageAny},
	}); err != nil {
		return Identity{}, fmt.Errorf("secure: %v", err)
	}
	return IdentityOf(cert)
}

// CA is an in-memory certificate authority — the root of one cluster's
// trust domain.
type CA struct {
	Cert    *x509.Certificate
	Key     *ecdsa.PrivateKey
	CertPEM []byte
}

// GenCA creates a new trust domain root. Keys come from crypto/rand:
// trust domains are bootstrapped once (ssmfp-node -gen-certs), not
// re-derived.
func GenCA(name string) (*CA, error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, err
	}
	serial, err := randSerial()
	if err != nil {
		return nil, err
	}
	tmpl := &x509.Certificate{
		SerialNumber:          serial,
		Subject:               pkix.Name{CommonName: name, Organization: []string{"ssmfp"}},
		NotBefore:             time.Now().Add(-time.Minute),
		NotAfter:              time.Now().Add(10 * 365 * 24 * time.Hour),
		KeyUsage:              x509.KeyUsageCertSign | x509.KeyUsageDigitalSignature,
		BasicConstraintsValid: true,
		IsCA:                  true,
		MaxPathLen:            0,
		MaxPathLenZero:        true,
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, tmpl, &key.PublicKey, key)
	if err != nil {
		return nil, err
	}
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, err
	}
	return &CA{
		Cert:    cert,
		Key:     key,
		CertPEM: pem.EncodeToMemory(&pem.Block{Type: "CERTIFICATE", Bytes: der}),
	}, nil
}

// Pool returns a cert pool holding exactly this CA.
func (ca *CA) Pool() *x509.CertPool {
	pool := x509.NewCertPool()
	pool.AddCert(ca.Cert)
	return pool
}

// Credential is one issued certificate plus its private key, ready for
// TLS use on either side of a connection.
type Credential struct {
	TLS     tls.Certificate
	Leaf    *x509.Certificate
	CertPEM []byte
	KeyPEM  []byte
	ID      Identity
}

// IssueOptions tune certificate issuance; the zero value issues a
// currently-valid one-year certificate with the role extension present.
type IssueOptions struct {
	// NotBefore/NotAfter override the validity window (both or neither).
	NotBefore, NotAfter time.Time
	// OmitRole issues a certificate *without* the role extension — a
	// rejection-path test hook; such a peer fails the handshake.
	OmitRole bool
}

// Issue signs a credential for name with the given role.
func (ca *CA) Issue(name string, role Role) (*Credential, error) {
	return ca.IssueWith(name, role, IssueOptions{})
}

// IssueNode signs the protocol credential of processor p.
func (ca *CA) IssueNode(p graph.ProcessID) (*Credential, error) {
	return ca.Issue(NodeName(p), RoleNode)
}

// IssueWith is Issue with explicit options.
func (ca *CA) IssueWith(name string, role Role, o IssueOptions) (*Credential, error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, err
	}
	serial, err := randSerial()
	if err != nil {
		return nil, err
	}
	notBefore, notAfter := o.NotBefore, o.NotAfter
	if notBefore.IsZero() && notAfter.IsZero() {
		notBefore = time.Now().Add(-time.Minute)
		notAfter = time.Now().Add(365 * 24 * time.Hour)
	}
	tmpl := &x509.Certificate{
		SerialNumber: serial,
		Subject:      pkix.Name{CommonName: name, Organization: []string{"ssmfp"}},
		NotBefore:    notBefore,
		NotAfter:     notAfter,
		KeyUsage:     x509.KeyUsageDigitalSignature,
		// Every credential may initiate and accept: protocol links are
		// symmetric (each node both dials and listens), and operator
		// tooling only ever initiates.
		ExtKeyUsage:           []x509.ExtKeyUsage{x509.ExtKeyUsageClientAuth, x509.ExtKeyUsageServerAuth},
		BasicConstraintsValid: true,
	}
	if !o.OmitRole {
		ext, err := EncodeRoleExtension(role)
		if err != nil {
			return nil, err
		}
		tmpl.ExtraExtensions = append(tmpl.ExtraExtensions, ext)
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, ca.Cert, &key.PublicKey, ca.Key)
	if err != nil {
		return nil, err
	}
	leaf, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, err
	}
	keyDER, err := x509.MarshalECPrivateKey(key)
	if err != nil {
		return nil, err
	}
	cred := &Credential{
		Leaf:    leaf,
		CertPEM: pem.EncodeToMemory(&pem.Block{Type: "CERTIFICATE", Bytes: der}),
		KeyPEM:  pem.EncodeToMemory(&pem.Block{Type: "EC PRIVATE KEY", Bytes: keyDER}),
		ID:      Identity{Name: name, Role: role, Proc: -1},
	}
	cred.TLS = tls.Certificate{Certificate: [][]byte{der}, PrivateKey: key, Leaf: leaf}
	if !o.OmitRole {
		id, err := IdentityOf(leaf)
		if err != nil {
			return nil, err
		}
		cred.ID = id
	}
	return cred, nil
}

func randSerial() (*big.Int, error) {
	limit := new(big.Int).Lsh(big.NewInt(1), 128)
	return rand.Int(rand.Reader, limit)
}

// WriteFiles persists the CA certificate and key as PEM.
func (ca *CA) WriteFiles(certPath, keyPath string) error {
	keyDER, err := x509.MarshalECPrivateKey(ca.Key)
	if err != nil {
		return err
	}
	keyPEM := pem.EncodeToMemory(&pem.Block{Type: "EC PRIVATE KEY", Bytes: keyDER})
	if err := os.WriteFile(certPath, ca.CertPEM, 0o644); err != nil {
		return err
	}
	return os.WriteFile(keyPath, keyPEM, 0o600)
}

// WriteFiles persists the credential as a PEM cert/key pair.
func (c *Credential) WriteFiles(certPath, keyPath string) error {
	if err := os.WriteFile(certPath, c.CertPEM, 0o644); err != nil {
		return err
	}
	return os.WriteFile(keyPath, c.KeyPEM, 0o600)
}

// LoadPool reads a CA certificate PEM into a verification pool.
func LoadPool(caPath string) (*x509.CertPool, error) {
	pemBytes, err := os.ReadFile(caPath)
	if err != nil {
		return nil, err
	}
	pool := x509.NewCertPool()
	if !pool.AppendCertsFromPEM(pemBytes) {
		return nil, fmt.Errorf("secure: no CA certificates in %s", caPath)
	}
	return pool, nil
}

// LoadCA reads a CA cert/key pair back for further issuance.
func LoadCA(certPath, keyPath string) (*CA, error) {
	certPEM, err := os.ReadFile(certPath)
	if err != nil {
		return nil, err
	}
	block, _ := pem.Decode(certPEM)
	if block == nil || block.Type != "CERTIFICATE" {
		return nil, fmt.Errorf("secure: %s is not a certificate PEM", certPath)
	}
	cert, err := x509.ParseCertificate(block.Bytes)
	if err != nil {
		return nil, err
	}
	keyPEM, err := os.ReadFile(keyPath)
	if err != nil {
		return nil, err
	}
	kb, _ := pem.Decode(keyPEM)
	if kb == nil {
		return nil, fmt.Errorf("secure: %s is not a key PEM", keyPath)
	}
	key, err := x509.ParseECPrivateKey(kb.Bytes)
	if err != nil {
		return nil, err
	}
	return &CA{Cert: cert, Key: key, CertPEM: certPEM}, nil
}

// LoadCredential reads a PEM cert/key pair and re-derives its identity.
func LoadCredential(certPath, keyPath string) (*Credential, error) {
	pair, err := tls.LoadX509KeyPair(certPath, keyPath)
	if err != nil {
		return nil, err
	}
	leaf, err := x509.ParseCertificate(pair.Certificate[0])
	if err != nil {
		return nil, err
	}
	pair.Leaf = leaf
	id, err := IdentityOf(leaf)
	if err != nil {
		return nil, err
	}
	certPEM, _ := os.ReadFile(certPath)
	keyPEM, _ := os.ReadFile(keyPath)
	return &Credential{TLS: pair, Leaf: leaf, CertPEM: certPEM, KeyPEM: keyPEM, ID: id}, nil
}

// ServerConfig is the mutual-TLS server side of the trust domain: it
// presents cred, demands a client certificate, chain-verifies it against
// pool, and rejects certificates without a parseable role at the
// handshake — before any frame is read.
func ServerConfig(cred *Credential, pool *x509.CertPool) *tls.Config {
	return &tls.Config{
		MinVersion:            tls.VersionTLS13,
		Certificates:          []tls.Certificate{cred.TLS},
		ClientAuth:            tls.RequireAndVerifyClientCert,
		ClientCAs:             pool,
		VerifyPeerCertificate: requireIdentity(nil),
	}
}

// ClientConfig is the mutual-TLS client side: it presents cred and
// verifies the server against pool manually (SSMFP identity lives in the
// CN, not in SANs, so hostname verification is disabled in favor of
// chain + role verification).
func ClientConfig(cred *Credential, pool *x509.CertPool) *tls.Config {
	return &tls.Config{
		MinVersion:            tls.VersionTLS13,
		Certificates:          []tls.Certificate{cred.TLS},
		InsecureSkipVerify:    true, // replaced by requireIdentity(pool), not skipped
		VerifyPeerCertificate: requireIdentity(pool),
	}
}

// requireIdentity builds a VerifyPeerCertificate callback: when pool is
// non-nil it chain-verifies the presented leaf first (client side, where
// the stack's own verification is disabled); either way the leaf must
// yield a well-formed Identity.
func requireIdentity(pool *x509.CertPool) func([][]byte, [][]*x509.Certificate) error {
	return func(rawCerts [][]byte, _ [][]*x509.Certificate) error {
		if len(rawCerts) == 0 {
			return errors.New("secure: peer presented no certificate")
		}
		leaf, err := x509.ParseCertificate(rawCerts[0])
		if err != nil {
			return err
		}
		if pool != nil {
			inter := x509.NewCertPool()
			for _, raw := range rawCerts[1:] {
				c, err := x509.ParseCertificate(raw)
				if err != nil {
					return err
				}
				inter.AddCert(c)
			}
			if _, err := leaf.Verify(x509.VerifyOptions{
				Roots:         pool,
				Intermediates: inter,
				KeyUsages:     []x509.ExtKeyUsage{x509.ExtKeyUsageAny},
			}); err != nil {
				return err
			}
		}
		_, err = IdentityOf(leaf)
		return err
	}
}
