package secure

import (
	"crypto/tls"
	"crypto/x509"
	"errors"
	"fmt"
	"net"
	"time"

	"ssmfp/internal/graph"
	"ssmfp/internal/obs"
	"ssmfp/internal/telemetry"
	"ssmfp/internal/transport"
)

// TLSOptions configure a mutual-TLS node transport.
type TLSOptions struct {
	// Local is the processor this transport serves.
	Local graph.ProcessID
	// Peers maps neighbors (and optionally Local) to dial addresses,
	// exactly as transport.TCPOptions.Peers.
	Peers map[graph.ProcessID]string
	// Listen is the address to listen on; empty selects Peers[Local].
	Listen string
	// Listener, when non-nil, is a pre-bound *raw* listener (it is
	// wrapped with TLS here) — in-process clusters bind port-0 listeners
	// first so every address is known before any node starts.
	Listener net.Listener
	// Cred is this node's credential; it must be a node-role certificate
	// whose CN identity matches Local.
	Cred *Credential
	// Pool holds the cluster CA.
	Pool *x509.CertPool
	// Policy filters inbound (role, kind); nil selects DefaultPolicy.
	Policy Policy
	// Telemetry receives the rejection counters; nil builds a private
	// registry.
	Telemetry *telemetry.Registry

	// Plumbed through to the TCP layer.
	Depth                  int
	BackoffMin, BackoffMax time.Duration
	DialTimeout            time.Duration
	Seed                   int64
	Bus                    *obs.Bus
}

// TLS is the secure production transport: the TCP backend's sockets,
// reconnect logic and per-link queues, with every connection upgraded to
// mutual TLS against the cluster CA and every inbound frame gated on the
// peer's certificate-attested identity before demultiplexing:
//
//  1. handshake — the peer must present a CA-signed, in-validity
//     certificate carrying a parseable role, or the connection dies
//     before a single frame is read (reason "handshake");
//  2. role — the frame kind must be admitted for the peer's role
//     (reason "role"; the frame is discarded, the connection lives —
//     SSNTP-style per-frame filtering);
//  3. sender — the frame's self-identified From must equal the
//     certificate's node identity; a contradiction means the stream
//     itself lies, so the connection dies (reason "sender");
//  4. membership — the authenticated sender must be a configured
//     neighbor (reason "membership"; discarded, connection lives).
//
// Order matters: the sender cross-check is only meaningful per
// connection, *before* frames demux into per-peer channels — after the
// demux, a forged From is indistinguishable from the peer it names.
// Every rejection is counted in telemetry
// (ssmfp_secure_rejected_frames_total{reason=...}) and folded into
// telemetry.CheckHealth.
type TLS struct {
	tcp    *transport.TCP
	opts   TLSOptions
	policy Policy
	rej    *rejectCounters
	client *tls.Config
}

// NewTLS builds and starts the secure transport for opts.Local on g.
func NewTLS(g *graph.Graph, opts TLSOptions) (*TLS, error) {
	if opts.Cred == nil || opts.Pool == nil {
		return nil, errors.New("secure: TLS transport requires a credential and a CA pool")
	}
	if opts.Cred.ID.Role != RoleNode {
		return nil, fmt.Errorf("secure: transport credential %q has role %s, want node", opts.Cred.ID.Name, opts.Cred.ID.Role)
	}
	if opts.Cred.ID.Proc != opts.Local {
		return nil, fmt.Errorf("secure: credential %q does not identify processor %d", opts.Cred.ID.Name, opts.Local)
	}
	s := &TLS{
		opts:   opts,
		policy: opts.Policy,
		rej:    newRejectCounters(opts.Telemetry),
		client: ClientConfig(opts.Cred, opts.Pool),
	}
	if s.policy == nil {
		s.policy = DefaultPolicy
	}
	raw := opts.Listener
	if raw == nil {
		addr := opts.Listen
		if addr == "" {
			addr = opts.Peers[opts.Local]
		}
		if addr == "" {
			return nil, fmt.Errorf("secure: node %d has no listen address", opts.Local)
		}
		var err error
		raw, err = net.Listen("tcp", addr)
		if err != nil {
			return nil, fmt.Errorf("secure: node %d listen: %w", opts.Local, err)
		}
	}
	server := ServerConfig(opts.Cred, opts.Pool)
	tcp, err := transport.NewTCP(g, transport.TCPOptions{
		Local:       opts.Local,
		Peers:       opts.Peers,
		Listener:    &tlsListener{Listener: raw, owner: s, conf: server},
		Depth:       opts.Depth,
		BackoffMin:  opts.BackoffMin,
		BackoffMax:  opts.BackoffMax,
		DialTimeout: opts.DialTimeout,
		Seed:        opts.Seed,
		Bus:         opts.Bus,
		Dial:        s.dial,
		Inbound:     s.gate,
	})
	if err != nil {
		raw.Close()
		return nil, err
	}
	s.tcp = tcp
	return s, nil
}

// Addr is the listener's address.
func (s *TLS) Addr() string { return s.tcp.Addr() }

// AddPeer records a peer's dial address (cluster.PeerBook).
func (s *TLS) AddPeer(q graph.ProcessID, addr string) { s.tcp.AddPeer(q, addr) }

// Link returns the operative end of the directed edge.
func (s *TLS) Link(from, to graph.ProcessID) transport.Link { return s.tcp.Link(from, to) }

// Stats sums the wire counters of the underlying sockets.
func (s *TLS) Stats() transport.Stats { return s.tcp.Stats() }

// Close stops the transport.
func (s *TLS) Close() error { return s.tcp.Close() }

// EnsureLink grows the link set at runtime.
func (s *TLS) EnsureLink(from, to graph.ProcessID) error { return s.tcp.EnsureLink(from, to) }

// DropLink shrinks the link set.
func (s *TLS) DropLink(from, to graph.ProcessID) { s.tcp.DropLink(from, to) }

// Rejections reads the per-reason rejection totals.
func (s *TLS) Rejections() map[string]uint64 { return s.rej.snapshot() }

// reject counts one rejection.
func (s *TLS) reject(reason string) { s.rej.inc(reason) }

// dial opens one outbound mutual-TLS connection; the handshake runs
// eagerly so a peer failing verification is indistinguishable from an
// unreachable one — the TCP writer's backoff handles both.
func (s *TLS) dial(addr string, timeout time.Duration) (net.Conn, error) {
	d := &net.Dialer{Timeout: timeout}
	conn, err := tls.DialWithDialer(d, "tcp", addr, s.client)
	if err != nil {
		return nil, err
	}
	// The server proved chain + role; a protocol peer must specifically
	// be a node. (Operators never listen, so this only trips on a
	// misdeployed certificate.)
	id, err := IdentityOf(conn.ConnectionState().PeerCertificates[0])
	if err != nil || id.Role != RoleNode {
		s.reject(ReasonHandshake)
		conn.Close()
		if err == nil {
			err = fmt.Errorf("secure: peer at %s holds role %s, want node", addr, id.Role)
		}
		return nil, err
	}
	return conn, nil
}

// errUntrusted kills a connection whose stream can no longer be trusted.
var errUntrusted = errors.New("secure: connection identity contradicts frame sender")

// gate is the transport.TCPOptions.Inbound hook — the four checks in the
// type comment, in order.
func (s *TLS) gate(conn net.Conn, f *transport.Frame) error {
	sc, ok := conn.(*serverConn)
	if !ok || sc.id == nil {
		s.reject(ReasonHandshake)
		return errUntrusted
	}
	if !s.policy(sc.id.Role, f.Kind) {
		s.reject(ReasonRole)
		return transport.ErrRejectFrame
	}
	if sc.id.Proc != f.From {
		s.reject(ReasonSender)
		return errUntrusted
	}
	if !s.tcp.KnownSender(f.From) {
		s.reject(ReasonMembership)
		return transport.ErrRejectFrame
	}
	return nil
}

// tlsListener upgrades every accepted connection to the server side of
// the trust domain. The TLS handshake is NOT run here — Accept must stay
// prompt — but lazily, on the reader's first Read (serverConn).
type tlsListener struct {
	net.Listener
	owner *TLS
	conf  *tls.Config
}

func (ln *tlsListener) Accept() (net.Conn, error) {
	c, err := ln.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return &serverConn{Conn: tls.Server(c, ln.conf), owner: ln.owner}, nil
}

// serverConn is one inbound connection. The handshake runs on the first
// Read — i.e. on the connection's dedicated readLoop goroutine, never on
// the accept loop — and its outcome is counted exactly once. id is only
// touched by that same goroutine (the gate runs inside readLoop), so it
// needs no lock.
type serverConn struct {
	*tls.Conn
	owner   *TLS
	id      *Identity
	counted bool
}

func (c *serverConn) Read(p []byte) (int, error) {
	if c.id == nil {
		if err := c.handshake(); err != nil {
			return 0, err
		}
	}
	return c.Conn.Read(p)
}

func (c *serverConn) handshake() error {
	if err := c.Conn.Handshake(); err != nil {
		if !c.counted {
			c.counted = true
			c.owner.reject(ReasonHandshake)
		}
		return err
	}
	certs := c.Conn.ConnectionState().PeerCertificates
	if len(certs) == 0 {
		// RequireAndVerifyClientCert makes this unreachable; belt and
		// suspenders for a future config change.
		if !c.counted {
			c.counted = true
			c.owner.reject(ReasonHandshake)
		}
		return errors.New("secure: peer presented no certificate")
	}
	id, err := IdentityOf(certs[0])
	if err != nil {
		if !c.counted {
			c.counted = true
			c.owner.reject(ReasonHandshake)
		}
		return err
	}
	c.counted = true
	c.id = &id
	return nil
}

var (
	_ transport.Transport = (*TLS)(nil)
	_ transport.Elastic   = (*TLS)(nil)
)
