package secure_test

import (
	"testing"
	"time"

	"ssmfp/internal/graph"
	"ssmfp/internal/secure"
	"ssmfp/internal/transport"
)

// TestAdmissionFiltersByRoleAndSender runs the composable admission
// wrapper over the Chan backend — no certificates anywhere, roles are
// deployment configuration — and checks the same policy the TLS gate
// enforces: protocol frames pass from node-role peers only, and a frame
// whose From contradicts its link is discarded.
func TestAdmissionFiltersByRoleAndSender(t *testing.T) {
	g := graph.Line(3)
	roles := map[graph.ProcessID]secure.Role{
		0: secure.RoleNode,
		1: secure.RoleNode,
		2: secure.RoleObserver, // an observer wired into the graph anyway
	}
	inner := transport.NewChan(g, 64)
	adm := secure.NewAdmission(inner, secure.AdmissionOptions{
		RoleOf: func(p graph.ProcessID) secure.Role { return roles[p] },
	})
	defer adm.Close()

	frame := func(from graph.ProcessID, seq uint64) transport.Frame {
		return transport.Frame{Kind: transport.KindCancel, From: from, Ack: transport.Ack{Dest: 1, Seq: seq}}
	}

	recv01 := adm.Link(0, 1)
	recv21 := adm.Link(2, 1)

	// Legitimate node frame passes.
	if !recv01.Send(frame(0, 1)) {
		t.Fatal("send refused")
	}
	select {
	case f := <-recv01.Recv():
		if f.From != 0 || f.Ack.Seq != 1 {
			t.Fatalf("delivered %+v", f)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("node frame never admitted")
	}

	// Observer frames are dropped by role, even on a real graph edge.
	recv21.Send(frame(2, 2))
	// Forged sender: a frame on link 0→1 claiming From=2.
	recv01.Send(frame(2, 3))
	// Follow with a legitimate frame; it must be the only arrival.
	recv01.Send(frame(0, 4))

	select {
	case f := <-recv01.Recv():
		if f.From != 0 || f.Ack.Seq != 4 {
			t.Fatalf("admitted contraband frame %+v", f)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("follow-up frame never admitted")
	}
	select {
	case f := <-recv21.Recv():
		t.Fatalf("observer frame admitted: %+v", f)
	case <-time.After(100 * time.Millisecond):
	}

	rej := adm.Rejections()
	if rej[secure.ReasonRole] != 1 {
		t.Fatalf("role rejections = %d, want 1 (all %v)", rej[secure.ReasonRole], rej)
	}
	if rej[secure.ReasonSender] != 1 {
		t.Fatalf("sender rejections = %d, want 1 (all %v)", rej[secure.ReasonSender], rej)
	}
}

func TestDefaultPolicy(t *testing.T) {
	kinds := []transport.FrameKind{
		transport.KindDV, transport.KindOffer, transport.KindAccept,
		transport.KindCancel, transport.KindCancelAck,
	}
	for _, k := range kinds {
		if !secure.DefaultPolicy(secure.RoleNode, k) {
			t.Errorf("node refused kind %s", k)
		}
		if secure.DefaultPolicy(secure.RoleOperator, k) {
			t.Errorf("operator admitted kind %s", k)
		}
		if secure.DefaultPolicy(secure.RoleObserver, k) {
			t.Errorf("observer admitted kind %s", k)
		}
	}
	if secure.DefaultPolicy(secure.RoleNode, transport.KindInvalid) {
		t.Error("invalid kind admitted")
	}
}
