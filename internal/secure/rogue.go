package secure

import (
	"crypto/tls"
	"fmt"
	"net"
	"time"

	"ssmfp/internal/graph"
	"ssmfp/internal/transport"
)

// RogueCounts is the rogue's own ledger of injected traffic, by the
// rejection reason each category must earn. The byzantine judge compares
// it against the cluster's merged secure_rejected_frames scrape: every
// count here must reappear there.
type RogueCounts struct {
	// Handshake is connection attempts with an untrusted (self-signed)
	// certificate — refused before any frame is read.
	Handshake int `json:"handshake"`
	// Role is protocol frames sent under an authenticated observer
	// certificate — discarded frame-by-frame, connection kept.
	Role int `json:"role"`
	// Sender is frames whose From contradicts the certificate identity
	// (forged/replayed on behalf of a real member) — each kills its
	// connection, so the rogue spends one connection per frame.
	Sender int `json:"sender"`
	// Membership is frames from a validly-certified node identity that is
	// not part of the cluster graph — discarded, connection kept.
	Membership int `json:"membership"`
}

// Total sums all categories.
func (c RogueCounts) Total() int { return c.Handshake + c.Role + c.Sender + c.Membership }

// Add accumulates o into c.
func (c *RogueCounts) Add(o RogueCounts) {
	c.Handshake += o.Handshake
	c.Role += o.Role
	c.Sender += o.Sender
	c.Membership += o.Membership
}

// Rogue is a byzantine injector: a process-shaped adversary holding (a)
// a self-signed certificate from outside the trust domain, (b) a
// CA-signed observer certificate (right CA, wrong role), and (c) a
// CA-signed node certificate for a processor that is not a cluster
// member. Strike drives all three at live node transports while the
// cluster serves real load; every injected frame must surface as exactly
// one secure rejection, and none may reach the protocol layer.
type Rogue struct {
	targets     []string
	impersonate graph.ProcessID
	alienID     graph.ProcessID

	selfSigned *tls.Config // untrusted root → handshake rejection
	observer   *tls.Config // trusted, wrong role → role rejection
	alien      *tls.Config // trusted node, non-member → sender/membership

	// Timeout bounds each connection's dial + writes.
	Timeout time.Duration
}

// NewRogue arms an injector against targets (node transport addresses).
// impersonate must be a real member (its identity is forged in the
// sender-mismatch category); alienID must NOT be a member.
func NewRogue(ca *CA, impersonate, alienID graph.ProcessID, targets []string) (*Rogue, error) {
	ownCA, err := GenCA("rogue-ca")
	if err != nil {
		return nil, err
	}
	selfSigned, err := ownCA.IssueNode(impersonate)
	if err != nil {
		return nil, err
	}
	observer, err := ca.Issue("observer-rogue", RoleObserver)
	if err != nil {
		return nil, err
	}
	alien, err := ca.IssueNode(alienID)
	if err != nil {
		return nil, err
	}
	return &Rogue{
		targets:     targets,
		impersonate: impersonate,
		alienID:     alienID,
		selfSigned:  rogueClientConfig(selfSigned),
		observer:    rogueClientConfig(observer),
		alien:       rogueClientConfig(alien),
		Timeout:     5 * time.Second,
	}, nil
}

// rogueClientConfig presents cred and skips server verification — an
// adversary has no interest in authenticating its victim.
func rogueClientConfig(cred *Credential) *tls.Config {
	return &tls.Config{
		MinVersion:         tls.VersionTLS13,
		Certificates:       []tls.Certificate{cred.TLS},
		InsecureSkipVerify: true,
	}
}

// Strike runs one full injection pass: against every target, one
// handshake probe, burst role-violating frames, burst forged-sender
// frames (one connection each), and burst non-member frames. It returns
// what was actually delivered to a victim's socket — categories that
// could not even connect are not counted, so the returned ledger is an
// exact lower bound the rejection counters must meet.
func (r *Rogue) Strike(burst int) (RogueCounts, error) {
	var c RogueCounts
	for _, addr := range r.targets {
		// (1) Untrusted certificate: the TLS handshake itself must fail.
		// In TLS 1.3 the client finishes first, so the server's rejection
		// surfaces on our first read — drive the handshake and read to
		// force the alert through.
		if conn, err := net.DialTimeout("tcp", addr, r.Timeout); err == nil {
			tc := tls.Client(conn, r.selfSigned)
			tc.SetDeadline(time.Now().Add(r.Timeout))
			if err := tc.Handshake(); err == nil {
				one := make([]byte, 1)
				if _, err := tc.Read(one); err == nil {
					tc.Close()
					return c, fmt.Errorf("secure: rogue self-signed handshake to %s was accepted", addr)
				}
			}
			tc.Close()
			c.Handshake++
		}

		// (2) Wrong role: authenticate as an observer, then speak the
		// data plane. Every frame must be discarded (connection survives).
		n, err := r.inject(addr, r.observer, burst, func(i int) transport.Frame {
			return transport.Frame{
				Kind: transport.KindOffer,
				From: r.impersonate,
				Offer: transport.Offer{
					Dest: r.impersonate,
					Seq:  uint64(i),
					Msg: transport.Message{
						Payload: "byzantine-role",
						Src:     r.impersonate,
						Dest:    r.impersonate,
						UID:     ^uint64(0) - uint64(i),
						Valid:   true,
					},
				},
			}
		})
		c.Role += n
		if err != nil {
			return c, err
		}

		// (3) Forged sender: a valid node certificate claiming another
		// member's identity in Frame.From (a replayed accept — the
		// handshake frame most able to corrupt hop state). The victim
		// kills the connection on the first contradiction, so each frame
		// rides its own connection.
		for i := 0; i < burst; i++ {
			n, err := r.inject(addr, r.alien, 1, func(int) transport.Frame {
				return transport.Frame{
					Kind: transport.KindAccept,
					From: r.impersonate,
					Ack:  transport.Ack{Dest: r.impersonate, Seq: uint64(i)},
				}
			})
			c.Sender += n
			if err != nil {
				return c, err
			}
		}

		// (4) Non-member: certificate and From agree, but the identity is
		// outside the cluster graph. Replays the same cancel repeatedly.
		n, err = r.inject(addr, r.alien, burst, func(int) transport.Frame {
			return transport.Frame{
				Kind: transport.KindCancel,
				From: r.alienID,
				Ack:  transport.Ack{Dest: r.impersonate, Seq: 7},
			}
		})
		c.Membership += n
		if err != nil {
			return c, err
		}
	}
	return c, nil
}

// inject opens one TLS connection to addr and writes count frames built
// by mk, returning how many were fully written. Write errors after the
// handshake are expected mid-burst (the victim may kill the connection);
// they end the burst without failing the strike.
func (r *Rogue) inject(addr string, conf *tls.Config, count int, mk func(i int) transport.Frame) (int, error) {
	conn, err := net.DialTimeout("tcp", addr, r.Timeout)
	if err != nil {
		return 0, nil // victim gone; nothing delivered, nothing counted
	}
	tc := tls.Client(conn, conf)
	defer tc.Close()
	tc.SetDeadline(time.Now().Add(r.Timeout))
	if err := tc.Handshake(); err != nil {
		return 0, fmt.Errorf("secure: rogue handshake to %s: %w", addr, err)
	}
	wrote := 0
	for i := 0; i < count; i++ {
		f := mk(i)
		if _, err := transport.WriteFrame(tc, &f); err != nil {
			break
		}
		wrote++
	}
	// Half-close politely: give the kernel a moment to flush before the
	// deferred Close tears the socket down. CloseWrite signals EOF so the
	// victim's read loop drains everything we wrote.
	tc.CloseWrite()
	return wrote, nil
}
