package secure

import (
	"fmt"
	"net/http"

	"ssmfp/internal/telemetry"
)

// AdminGuard authorizes the /admin/ operator plane by certificate role.
// It assumes the server already *authenticated* the caller (mutual TLS
// via ServerConfig — obs.ServeTLSWith); this layer decides what the
// authenticated role may do:
//
//   - GET/HEAD (status, quiesce probes, delivery ledgers): operator or
//     observer;
//   - anything else (epoch mutations, injection): operator only.
//
// Node-role peers are data-plane participants with no admin business and
// are refused outright. Every refusal is counted under
// ssmfp_secure_rejected_frames_total{reason="admin"} in reg (nil builds a
// private registry) and answered with the admin plane's JSON error
// envelope, so cluster.HTTPClient surfaces the server's reason verbatim.
func AdminGuard(next http.Handler, reg *telemetry.Registry) http.Handler {
	rej := newRejectCounters(reg)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.TLS == nil || len(r.TLS.PeerCertificates) == 0 {
			rej.inc(ReasonAdmin)
			writeAdminErr(w, http.StatusUnauthorized, "admin plane requires a client certificate")
			return
		}
		id, err := IdentityOf(r.TLS.PeerCertificates[0])
		if err != nil {
			rej.inc(ReasonAdmin)
			writeAdminErr(w, http.StatusForbidden, err.Error())
			return
		}
		allowed := false
		switch r.Method {
		case http.MethodGet, http.MethodHead:
			allowed = id.Role == RoleOperator || id.Role == RoleObserver
		default:
			allowed = id.Role == RoleOperator
		}
		if !allowed {
			rej.inc(ReasonAdmin)
			writeAdminErr(w, http.StatusForbidden,
				fmt.Sprintf("role %s may not %s %s", id.Role, r.Method, r.URL.Path))
			return
		}
		next.ServeHTTP(w, r)
	})
}

func writeAdminErr(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	fmt.Fprintf(w, "{\"error\":%q}\n", msg)
}
