package secure

import (
	"sync"

	"ssmfp/internal/graph"
	"ssmfp/internal/telemetry"
	"ssmfp/internal/transport"
)

// Policy decides whether a peer holding role may deliver a frame of the
// given kind. The TLS transport evaluates it per inbound frame at the
// connection gate; the Admission wrapper evaluates it per received frame
// on any backend.
type Policy func(role Role, kind transport.FrameKind) bool

// DefaultPolicy is SSNTP's rule specialized to SSMFP: every protocol
// frame kind — DV routing gossip and the offer/accept/cancel/cancelAck
// hop handshake — is admitted from node-role peers only. Operators and
// observers authenticate fine but have no business on the data plane.
func DefaultPolicy(role Role, kind transport.FrameKind) bool {
	switch kind {
	case transport.KindDV, transport.KindOffer, transport.KindAccept,
		transport.KindCancel, transport.KindCancelAck:
		return role == RoleNode
	}
	return false
}

// The rejection reasons of the secure plane, the label values of
// telemetry.SeriesSecureRejected.
const (
	ReasonHandshake  = "handshake"  // TLS handshake refused (wrong CA, expired, no role)
	ReasonRole       = "role"       // authenticated role does not admit the frame kind
	ReasonSender     = "sender"     // certificate identity contradicts Frame.From
	ReasonMembership = "membership" // valid node certificate, but not a configured peer
	ReasonAdmin      = "admin"      // authenticated role does not admit the admin verb
)

// Reasons lists every rejection reason, in the order reports render them.
var Reasons = []string{ReasonHandshake, ReasonRole, ReasonSender, ReasonMembership, ReasonAdmin}

// rejectCounters resolves the per-reason telemetry counters once.
type rejectCounters struct {
	reg *telemetry.Registry
	by  map[string]*telemetry.Counter
}

func newRejectCounters(reg *telemetry.Registry) *rejectCounters {
	if reg == nil {
		reg = telemetry.New()
	}
	rc := &rejectCounters{reg: reg, by: make(map[string]*telemetry.Counter, len(Reasons))}
	for _, reason := range Reasons {
		rc.by[reason] = reg.Counter(telemetry.SeriesSecureRejected,
			"Frames, handshakes or admin calls rejected by the trust domain.",
			telemetry.L("reason", reason))
	}
	return rc
}

func (rc *rejectCounters) inc(reason string) {
	if c, ok := rc.by[reason]; ok {
		c.Inc()
	}
}

// snapshot reads the per-reason totals back (tests and reports).
func (rc *rejectCounters) snapshot() map[string]uint64 {
	out := make(map[string]uint64, len(rc.by))
	for reason, c := range rc.by {
		out[reason] = uint64(c.Load())
	}
	return out
}

// AdmissionOptions configure a role-based admission wrapper.
type AdmissionOptions struct {
	// RoleOf maps a processor to its role — on backends without
	// certificates (Chan), the static role assignment of the deployment.
	// Unknown processors should return RoleInvalid. Required.
	RoleOf func(p graph.ProcessID) Role
	// Policy decides admission; nil selects DefaultPolicy.
	Policy Policy
	// Depth is the filtered receive buffer per link (≤0 = transport
	// DefaultDepth).
	Depth int
	// Telemetry receives the rejection counters; nil builds a private
	// registry.
	Telemetry *telemetry.Registry
}

// Admission filters the receive side of an inner transport by (peer role,
// frame kind) policy, plus the self-identification check that a link
// from u only yields frames claiming From == u. It composes like Chaos:
// over Chan, over TCP, over secure.TLS, in any order. (Over secure.TLS it
// is belt-and-suspenders — the TLS gate already enforced the same policy
// against certificate-attested roles; over Chan it is the only
// enforcement, with roles assigned by configuration.)
type Admission struct {
	inner transport.Transport
	opts  AdmissionOptions
	rej   *rejectCounters

	mu    sync.Mutex
	links map[[2]graph.ProcessID]*admitLink
	stop  chan struct{}
	wg    sync.WaitGroup
}

// NewAdmission wraps inner.
func NewAdmission(inner transport.Transport, opts AdmissionOptions) *Admission {
	if opts.Policy == nil {
		opts.Policy = DefaultPolicy
	}
	if opts.Depth <= 0 {
		opts.Depth = transport.DefaultDepth
	}
	return &Admission{
		inner: inner,
		opts:  opts,
		rej:   newRejectCounters(opts.Telemetry),
		links: make(map[[2]graph.ProcessID]*admitLink),
		stop:  make(chan struct{}),
	}
}

// Link wraps the inner link's receive side with the admission pump; the
// send side passes through untouched.
func (a *Admission) Link(from, to graph.ProcessID) transport.Link {
	a.mu.Lock()
	defer a.mu.Unlock()
	key := [2]graph.ProcessID{from, to}
	if l, ok := a.links[key]; ok {
		return l
	}
	l := &admitLink{a: a, from: from, inner: a.inner.Link(from, to)}
	a.links[key] = l
	return l
}

// Stats delegates to the inner transport.
func (a *Admission) Stats() transport.Stats { return a.inner.Stats() }

// Rejections reads the per-reason rejection totals.
func (a *Admission) Rejections() map[string]uint64 { return a.rej.snapshot() }

// Close stops every pump and closes the inner transport.
func (a *Admission) Close() error {
	a.mu.Lock()
	select {
	case <-a.stop:
	default:
		close(a.stop)
	}
	a.mu.Unlock()
	err := a.inner.Close()
	a.wg.Wait()
	return err
}

// EnsureLink forwards elastic growth to the inner transport.
func (a *Admission) EnsureLink(from, to graph.ProcessID) error {
	if e, ok := a.inner.(transport.Elastic); ok {
		return e.EnsureLink(from, to)
	}
	return nil
}

// DropLink forwards elastic shrinkage to the inner transport.
func (a *Admission) DropLink(from, to graph.ProcessID) {
	if e, ok := a.inner.(transport.Elastic); ok {
		e.DropLink(from, to)
	}
}

// admitLink is one wrapped directed edge.
type admitLink struct {
	a     *Admission
	from  graph.ProcessID
	inner transport.Link

	once sync.Once
	out  chan transport.Frame
}

func (l *admitLink) Send(f transport.Frame) bool { return l.inner.Send(f) }

// Recv starts the filtering pump on first use and returns its output.
func (l *admitLink) Recv() <-chan transport.Frame {
	l.once.Do(func() {
		l.out = make(chan transport.Frame, l.a.opts.Depth)
		l.a.wg.Add(1)
		go l.pump()
	})
	return l.out
}

func (l *admitLink) pump() {
	defer l.a.wg.Done()
	in := l.inner.Recv()
	for {
		select {
		case f := <-in:
			if f.From != l.from {
				l.a.rej.inc(ReasonSender)
				continue
			}
			if !l.a.opts.Policy(l.a.opts.RoleOf(f.From), f.Kind) {
				l.a.rej.inc(ReasonRole)
				continue
			}
			select {
			case l.out <- f:
			case <-l.a.stop:
				return
			}
		case <-l.a.stop:
			return
		}
	}
}

func (l *admitLink) Stats() transport.LinkStats { return l.inner.Stats() }
func (l *admitLink) Close() error               { return l.inner.Close() }

var (
	_ transport.Transport = (*Admission)(nil)
	_ transport.Elastic   = (*Admission)(nil)
)
