// Package trace renders executions of SSMFP in the style of the paper's
// Figure 3: per destination, the contents of every processor's reception
// and emission buffers, the routing next hops, and the higher-layer state,
// frame by frame. It also records engine executions as sequences of frames
// for golden tests and for the cmd/ssmfp-trace tool.
package trace

import (
	"fmt"
	"strings"

	"ssmfp/internal/core"
	"ssmfp/internal/graph"
	"ssmfp/internal/obs"
	sm "ssmfp/internal/statemodel"
)

// names optionally maps processor IDs to display names (a, b, c, ... in the
// paper's figures). Missing entries fall back to the numeric ID.
type names map[graph.ProcessID]string

func (n names) of(p graph.ProcessID) string {
	if s, ok := n[p]; ok {
		return s
	}
	return fmt.Sprintf("%d", p)
}

// Renderer renders configurations of the composed SSMFP system.
type Renderer struct {
	g     *graph.Graph
	names names
}

// NewRenderer builds a renderer for g. displayNames may be nil.
func NewRenderer(g *graph.Graph, displayNames map[graph.ProcessID]string) *Renderer {
	return &Renderer{g: g, names: displayNames}
}

// Name returns the display name of a processor (numeric fallback).
func (r *Renderer) Name(p graph.ProcessID) string { return r.names.of(p) }

// msg renders a message triple compactly, e.g. "m'(q=a,c=2)". It delegates
// to the obs.MsgRecord rendering so live configurations and JSONL replays
// share the exact same bytes.
func (r *Renderer) msg(m *core.Message) string { return r.msgRec(m.Record()) }

// msgRec renders the observability image of a message; nil is an empty
// buffer.
func (r *Renderer) msgRec(m *obs.MsgRecord) string {
	if m == nil {
		return "·"
	}
	return fmt.Sprintf("%s(q=%s,c=%d)", m.Payload, r.names.of(m.LastHop), m.Color)
}

// Destination renders destination d's buffer component of the
// configuration: one line per processor with reception buffer, emission
// buffer, and next hop. It converts the configuration to its observability
// image and delegates to DestinationRecords, the rendering JSONL replays
// use too.
func (r *Renderer) Destination(cfg []sm.State, d graph.ProcessID) string {
	n := r.g.N()
	bufR := make([]*obs.MsgRecord, n)
	bufE := make([]*obs.MsgRecord, n)
	hop := make([]graph.ProcessID, n)
	for pp := 0; pp < n; pp++ {
		node := cfg[pp].(*core.Node)
		ds := node.FW.Dests[d]
		bufR[pp], bufE[pp] = ds.BufR.Record(), ds.BufE.Record()
		hop[pp] = node.RT.NextHop(d)
	}
	return r.DestinationRecords(bufR, bufE, hop, d)
}

// HigherLayer renders the request bits and pending queues.
func (r *Renderer) HigherLayer(cfg []sm.State) string {
	var sb strings.Builder
	for pp := 0; pp < r.g.N(); pp++ {
		p := graph.ProcessID(pp)
		fw := cfg[p].(*core.Node).FW
		if !fw.Request && len(fw.Pending) == 0 {
			continue
		}
		fmt.Fprintf(&sb, "  %s: request=%v pending=%d\n", r.names.of(p), fw.Request, len(fw.Pending))
	}
	if sb.Len() == 0 {
		return "  (no pending requests)\n"
	}
	return sb.String()
}

// Frame is one recorded execution frame: the step index, the rule
// activations that produced it, and the rendered configuration.
type Frame struct {
	Step     int
	Fired    []string // "rule@process" labels of the step's activations
	Rendered string
}

// Recorder captures frames of an execution for one destination: one frame
// per executed step (engine events are published after the step's writes
// commit, so every frame shows the post-step configuration). Attach it
// before running the engine.
type Recorder struct {
	r      *Renderer
	e      *sm.Engine
	dest   graph.ProcessID
	frames []Frame
	limit  int
}

// NewRecorder records destination dest's component; limit bounds the number
// of frames kept (≤ 0 means unlimited). Frame 0 is the initial
// configuration, matching the "(0)" diagram of the paper's Figure 3.
func NewRecorder(e *sm.Engine, renderer *Renderer, dest graph.ProcessID, limit int) *Recorder {
	rec := &Recorder{r: renderer, e: e, dest: dest, limit: limit}
	rec.frames = append(rec.frames, Frame{Step: -1, Rendered: rec.render()})
	e.Subscribe(rec.onEvent)
	return rec
}

func (rec *Recorder) onEvent(ev sm.Event) {
	if ev.Kind != "fire" {
		return
	}
	label := fmt.Sprintf("%s@%s", ev.Rule, rec.r.names.of(ev.Process))
	last := len(rec.frames) - 1
	if rec.frames[last].Step == ev.Step {
		rec.frames[last].Fired = append(rec.frames[last].Fired, label)
		rec.frames[last].Rendered = rec.render()
		return
	}
	if rec.limit > 0 && len(rec.frames) >= rec.limit {
		return
	}
	rec.frames = append(rec.frames, Frame{Step: ev.Step, Fired: []string{label}, Rendered: rec.render()})
}

func (rec *Recorder) render() string {
	return rec.r.Destination(rec.config(), rec.dest)
}

func (rec *Recorder) config() []sm.State {
	cfg := make([]sm.State, rec.e.Graph().N())
	for p := 0; p < rec.e.Graph().N(); p++ {
		cfg[p] = rec.e.PeekStateOf(graph.ProcessID(p))
	}
	return cfg
}

// Frames returns the recorded frames (frame 0 is the initial
// configuration).
func (rec *Recorder) Frames() []Frame { return rec.frames }

// String renders the whole recording, Figure-3 style: "(k) fired: ..."
// headers followed by the buffer table.
func (rec *Recorder) String() string { return RenderFrames(rec.frames) }

// RenderFrames renders a frame sequence in the Figure-3 style shared by
// live recordings and JSONL replays. Frame numbers come from the frames'
// Step fields (step s prints as "(s+1)", the initial configuration as
// "(0)"), not from slice positions — a recorder attached mid-run or
// truncated by a frame limit keeps the engine's numbering.
func RenderFrames(frames []Frame) string {
	var sb strings.Builder
	for _, f := range frames {
		if f.Step < 0 {
			fmt.Fprintf(&sb, "(0) initial configuration\n%s\n", f.Rendered)
			continue
		}
		fmt.Fprintf(&sb, "(%d) fired: %s\n%s\n", f.Step+1, strings.Join(f.Fired, ", "), f.Rendered)
	}
	return sb.String()
}
