package trace

import (
	"fmt"
	"strings"

	"ssmfp/internal/core"
	"ssmfp/internal/graph"
	"ssmfp/internal/obs"
	sm "ssmfp/internal/statemodel"
)

// This file reconstructs Figure-3 frames from a recorded obs event stream
// instead of a live engine. Message-bearing events carry the full message
// value (obs.MsgRecord), so folding them over the header's initial
// configuration rebuilds every intermediate buffer table exactly; the
// renderer then produces byte-identical output to a live Recorder.

// DestinationRecords renders the same per-destination buffer table as
// Destination, but from the observability image of a configuration:
// per-processor buffer records and next hops for destination d. Both
// rendering paths share this code, which is what makes replays
// byte-identical to live recordings.
func (r *Renderer) DestinationRecords(bufR, bufE []*obs.MsgRecord, nextHop []graph.ProcessID, d graph.ProcessID) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "destination %s:\n", r.names.of(d))
	for pp := 0; pp < r.g.N(); pp++ {
		p := graph.ProcessID(pp)
		hop := "—"
		if p != d {
			hop = r.names.of(nextHop[p])
		}
		fmt.Fprintf(&sb, "  %s: R[%-14s] E[%-14s] nextHop=%s\n",
			r.names.of(p), r.msgRec(bufR[p]), r.msgRec(bufE[p]), hop)
	}
	return sb.String()
}

// HeaderFor builds the JSONL trace header for an execution about to start
// from cfg on g: topology, display names, the traced destination, and the
// full initial configuration (next hops and buffer contents for every
// destination). Build it before stepping the engine — it snapshots cfg.
func HeaderFor(g *graph.Graph, displayNames map[graph.ProcessID]string, cfg []sm.State, scenario string, dest graph.ProcessID) obs.Header {
	nm := names(displayNames)
	n := g.N()
	h := obs.Header{
		Schema:   obs.SchemaVersion,
		Scenario: scenario,
		N:        n,
		Edges:    g.Edges(),
		Names:    make([]string, n),
		Dest:     int(dest),
		Init:     &obs.InitConfig{Procs: make([]obs.InitProc, n)},
	}
	for pp := 0; pp < n; pp++ {
		p := graph.ProcessID(pp)
		h.Names[pp] = nm.of(p)
		node := cfg[p].(*core.Node)
		ip := obs.InitProc{
			NextHop: make([]graph.ProcessID, n),
			BufR:    make([]*obs.MsgRecord, n),
			BufE:    make([]*obs.MsgRecord, n),
		}
		for d := 0; d < n; d++ {
			ip.NextHop[d] = node.RT.NextHop(graph.ProcessID(d))
			ip.BufR[d] = node.FW.Dests[d].BufR.Record()
			ip.BufE[d] = node.FW.Dests[d].BufE.Record()
		}
		h.Init.Procs[p] = ip
	}
	return h
}

// GraphFromHeader rebuilds the topology a trace was recorded on. Loader
// validation guarantees edge endpoints are in range; self-loops, duplicate
// edges and disconnected topologies are reported as errors rather than the
// panics the graph package reserves for programmer mistakes.
func GraphFromHeader(h obs.Header) (g *graph.Graph, err error) {
	defer func() {
		if r := recover(); r != nil {
			g, err = nil, fmt.Errorf("trace: bad header topology: %v", r)
		}
	}()
	if h.N <= 0 {
		return nil, fmt.Errorf("trace: header has n = %d", h.N)
	}
	g = graph.New(h.N)
	for _, e := range h.Edges {
		g.AddEdge(e[0], e[1])
	}
	return g.Freeze(), nil
}

// NamesFromHeader rebuilds the renderer's display-name map from the header.
func NamesFromHeader(h obs.Header) map[graph.ProcessID]string {
	m := make(map[graph.ProcessID]string, len(h.Names))
	for p, s := range h.Names {
		m[graph.ProcessID(p)] = s
	}
	return m
}

// ReplayFrames folds a recorded event stream over the header's initial
// configuration and returns destination dest's frames, exactly as a live
// Recorder attached before the run would have captured them (frame 0 is
// the initial configuration). Streams containing fault injections are
// rejected: a fault corrupts state arbitrarily and is recorded by
// reference only, so the configurations after it cannot be reconstructed.
// Engine-domain streams only — wall-clock (msgpass) events carry no step
// structure to frame. Trailing events of a step the stream truncates
// before its step marker are dropped, matching a live recording stopped
// mid-run.
func ReplayFrames(r *Renderer, h obs.Header, events []obs.Event, dest graph.ProcessID) ([]Frame, error) {
	n := h.N
	if h.Init == nil || len(h.Init.Procs) != n {
		return nil, fmt.Errorf("trace: header carries no initial configuration for %d processors", n)
	}
	if int(dest) < 0 || int(dest) >= n {
		return nil, fmt.Errorf("trace: destination %d out of range [0,%d)", dest, n)
	}
	bufR := make([]*obs.MsgRecord, n)
	bufE := make([]*obs.MsgRecord, n)
	hop := make([]graph.ProcessID, n)
	for p, ip := range h.Init.Procs {
		if len(ip.NextHop) != n || len(ip.BufR) != n || len(ip.BufE) != n {
			return nil, fmt.Errorf("trace: initial configuration of processor %d is not over %d destinations", p, n)
		}
		bufR[p], bufE[p], hop[p] = ip.BufR[dest], ip.BufE[dest], ip.NextHop[dest]
	}
	render := func() string { return r.DestinationRecords(bufR, bufE, hop, dest) }
	frames := []Frame{{Step: -1, Rendered: render()}}
	var fired []string
	for _, ev := range events {
		if int(ev.Proc) < 0 || int(ev.Proc) >= n {
			return nil, fmt.Errorf("trace: event %d names processor %d out of range", ev.Seq, ev.Proc)
		}
		switch ev.Kind {
		case obs.KindFault:
			return nil, fmt.Errorf("trace: event %d is a fault injection; fault-bearing traces cannot be replayed faithfully", ev.Seq)
		case obs.KindFire:
			fired = append(fired, fmt.Sprintf("%s@%s", ev.Rule, r.names.of(ev.Proc)))
			continue
		case obs.KindStep:
			frames = append(frames, Frame{Step: ev.Step, Fired: fired, Rendered: render()})
			fired = nil
			continue
		}
		if ev.Dest != dest {
			continue
		}
		switch ev.Kind {
		case obs.KindGenerate, obs.KindForward:
			bufR[ev.Proc] = ev.Msg
		case obs.KindInternal:
			bufE[ev.Proc], bufR[ev.Proc] = ev.Msg, nil
		case obs.KindErase:
			if ev.Buf == obs.BufEmission {
				bufE[ev.Proc] = nil
			} else {
				bufR[ev.Proc] = nil
			}
		case obs.KindDeliver:
			bufE[ev.Proc] = nil
		case obs.KindRoute:
			if int(ev.To) < 0 || int(ev.To) >= n {
				return nil, fmt.Errorf("trace: event %d routes to processor %d out of range", ev.Seq, ev.To)
			}
			hop[ev.Proc] = ev.To
		}
	}
	return frames, nil
}
