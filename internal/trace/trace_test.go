package trace_test

import (
	"strings"
	"testing"

	"ssmfp/internal/core"
	"ssmfp/internal/daemon"
	"ssmfp/internal/graph"
	"ssmfp/internal/obs"
	sm "ssmfp/internal/statemodel"
	"ssmfp/internal/trace"
)

var abNames = map[graph.ProcessID]string{0: "a", 1: "b", 2: "c"}

func TestDestinationRendering(t *testing.T) {
	g := graph.Line(3)
	cfg := core.CleanConfig(g)
	cfg[0].(*core.Node).FW.Dests[2].BufE = &core.Message{Payload: "m", LastHop: 0, Color: 1}
	r := trace.NewRenderer(g, abNames)
	out := r.Destination(cfg, 2)
	for _, want := range []string{"destination c:", "a: R[·", "E[m(q=a,c=1)", "nextHop=b", "c: R[·"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q:\n%s", want, out)
		}
	}
}

func TestRenderingFallsBackToNumericIDs(t *testing.T) {
	g := graph.Line(3)
	cfg := core.CleanConfig(g)
	r := trace.NewRenderer(g, nil)
	out := r.Destination(cfg, 1)
	if !strings.Contains(out, "destination 1:") || !strings.Contains(out, "0: R[") {
		t.Fatalf("numeric fallback broken:\n%s", out)
	}
}

func TestHigherLayerRendering(t *testing.T) {
	g := graph.Line(3)
	cfg := core.CleanConfig(g)
	r := trace.NewRenderer(g, abNames)
	if out := r.HigherLayer(cfg); !strings.Contains(out, "no pending requests") {
		t.Fatalf("clean higher layer: %s", out)
	}
	cfg[1].(*core.Node).FW.Enqueue("x", 0)
	out := r.HigherLayer(cfg)
	if !strings.Contains(out, "b: request=true pending=1") {
		t.Fatalf("higher layer rendering: %s", out)
	}
}

func TestRecorderCapturesFrames(t *testing.T) {
	g := graph.Line(3)
	cfg := core.CleanConfig(g)
	cfg[0].(*core.Node).FW.Enqueue("hello", 2)
	e := sm.NewEngine(g, core.FullProgram(g), daemon.NewSynchronous(1), cfg)
	r := trace.NewRenderer(g, abNames)
	rec := trace.NewRecorder(e, r, 2, 0)
	e.Run(100, nil)

	frames := rec.Frames()
	if len(frames) < 5 {
		t.Fatalf("frames = %d, want several", len(frames))
	}
	if frames[0].Step != -1 || frames[0].Fired != nil {
		t.Fatal("frame 0 must be the initial configuration")
	}
	if len(frames[1].Fired) != 1 || frames[1].Fired[0] != "R1@2@a" {
		t.Fatalf("frame 1 fired = %v, want [R1@2@a]", frames[1].Fired)
	}
	// The final frame must show empty buffers (message delivered).
	last := frames[len(frames)-1].Rendered
	if strings.Contains(last, "hello") {
		t.Fatalf("final frame still shows the message:\n%s", last)
	}
	out := rec.String()
	if !strings.Contains(out, "(0) initial configuration") || !strings.Contains(out, "(1) fired: R1@2@a") {
		t.Fatalf("recording header wrong:\n%s", out[:200])
	}
}

func TestRecorderLimit(t *testing.T) {
	g := graph.Line(3)
	cfg := core.CleanConfig(g)
	cfg[0].(*core.Node).FW.Enqueue("hello", 2)
	e := sm.NewEngine(g, core.FullProgram(g), daemon.NewSynchronous(1), cfg)
	rec := trace.NewRecorder(e, trace.NewRenderer(g, nil), 2, 3)
	e.Run(100, nil)
	if len(rec.Frames()) != 3 {
		t.Fatalf("frames = %d, want limit 3", len(rec.Frames()))
	}
}

func TestRecorderMidRunAttachKeepsEngineNumbering(t *testing.T) {
	// A recorder attached after some steps must number frames by the
	// engine's step counter, not by its own slice indices.
	g := graph.Line(3)
	cfg := core.CleanConfig(g)
	cfg[0].(*core.Node).FW.Enqueue("hello", 2)
	e := sm.NewEngine(g, core.FullProgram(g), daemon.NewSynchronous(1), cfg)
	e.Step()
	e.Step()
	rec := trace.NewRecorder(e, trace.NewRenderer(g, nil), 2, 0)
	if !e.Step() {
		t.Fatal("engine terminal too early")
	}
	frames := rec.Frames()
	if len(frames) != 2 {
		t.Fatalf("frames = %d, want initial + one step", len(frames))
	}
	if frames[1].Step != 2 {
		t.Fatalf("frame 1 step = %d, want 2", frames[1].Step)
	}
	out := rec.String()
	if !strings.Contains(out, "(3) fired:") {
		t.Fatalf("mid-run frame must print the engine step number (3), got:\n%s", out)
	}
	if strings.Contains(out, "(1) fired:") {
		t.Fatalf("mid-run frame numbered by slice index:\n%s", out)
	}
}

func TestReplayMatchesLiveRecordingByteForByte(t *testing.T) {
	g := graph.Line(3)
	cfg := core.CleanConfig(g)
	cfg[0].(*core.Node).FW.Enqueue("hello", 2)
	cfg[2].(*core.Node).FW.Enqueue("back", 0)
	e := sm.NewEngine(g, core.FullProgram(g), daemon.NewSynchronous(1), cfg)
	h := trace.HeaderFor(g, abNames, cfg, "test", 2)
	var events []obs.Event
	e.Obs().Subscribe(func(ev obs.Event) { events = append(events, ev) })
	r := trace.NewRenderer(g, abNames)
	rec := trace.NewRecorder(e, r, 2, 0)
	e.Run(100, nil)

	frames, err := trace.ReplayFrames(r, h, events, 2)
	if err != nil {
		t.Fatalf("ReplayFrames: %v", err)
	}
	live, replayed := rec.String(), trace.RenderFrames(frames)
	if live != replayed {
		t.Fatalf("replay diverged from live recording:\n--- live ---\n%s\n--- replay ---\n%s", live, replayed)
	}
	// The other destination replays from the same stream too.
	rec0frames, err := trace.ReplayFrames(r, h, events, 0)
	if err != nil {
		t.Fatalf("ReplayFrames(dest 0): %v", err)
	}
	if got := trace.RenderFrames(rec0frames); !strings.Contains(got, "back(") {
		t.Fatalf("destination-0 replay never shows the second message:\n%s", got)
	}
}

func TestReplayRejectsFaultEvents(t *testing.T) {
	g := graph.Line(3)
	cfg := core.CleanConfig(g)
	h := trace.HeaderFor(g, nil, cfg, "test", 1)
	r := trace.NewRenderer(g, nil)
	_, err := trace.ReplayFrames(r, h, []obs.Event{{Seq: 1, Kind: obs.KindFault, Proc: 1}}, 1)
	if err == nil || !strings.Contains(err.Error(), "fault") {
		t.Fatalf("fault-bearing stream must be rejected, got err = %v", err)
	}
}

func TestGraphFromHeaderRejectsBadTopology(t *testing.T) {
	for _, h := range []obs.Header{
		{N: 0},
		{N: 3, Edges: [][2]graph.ProcessID{{0, 0}}},
		{N: 3, Edges: [][2]graph.ProcessID{{0, 1}, {0, 1}}},
		{N: 3, Edges: [][2]graph.ProcessID{{0, 1}}}, // disconnected
	} {
		if _, err := trace.GraphFromHeader(h); err == nil {
			t.Errorf("header %+v accepted", h)
		}
	}
	g, err := trace.GraphFromHeader(obs.Header{N: 3, Edges: [][2]graph.ProcessID{{0, 1}, {1, 2}}})
	if err != nil || g.N() != 3 {
		t.Fatalf("valid header rejected: %v", err)
	}
}

func TestRecorderGroupsSynchronousActivations(t *testing.T) {
	// Two processors generating in the same synchronous step must share one
	// frame with two fired labels.
	g := graph.Line(3)
	cfg := core.CleanConfig(g)
	cfg[0].(*core.Node).FW.Enqueue("x", 1)
	cfg[2].(*core.Node).FW.Enqueue("y", 1)
	e := sm.NewEngine(g, core.FullProgram(g), daemon.NewSynchronous(1), cfg)
	rec := trace.NewRecorder(e, trace.NewRenderer(g, nil), 1, 0)
	e.Step()
	frames := rec.Frames()
	if len(frames) != 2 {
		t.Fatalf("frames = %d, want 2 (initial + one step)", len(frames))
	}
	if len(frames[1].Fired) != 2 {
		t.Fatalf("fired = %v, want both R1 activations in one frame", frames[1].Fired)
	}
}
