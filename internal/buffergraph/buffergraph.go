// Package buffergraph implements the deadlock-avoidance tool of Merlin and
// Schweitzer that §3.1 of the paper builds on: a directed graph BG over the
// buffers of the network such that restricting message moves to the edges
// of BG prevents deadlock whenever BG is acyclic. Two schemes are provided:
//
//   - DestinationBased: the paper's Figure 1 — one buffer b_p(d) per
//     processor and destination; edges follow the routing tree T_d, so the
//     graph has n connected components, the one for destination d
//     isomorphic to T_d.
//   - SSMFP: the paper's Figure 2 — the two-buffer scheme SSMFP actually
//     uses: bufR_p(d) → bufE_p(d) inside every processor and
//     bufE_p(d) → bufR_q(d) along the routing edge q = nextHop_p(d).
//
// Both schemes are acyclic exactly when the routing tables are loop-free;
// the corruption experiments use FindCycle to exhibit the deadlock hazard
// that motivates snap-stabilizing forwarding.
package buffergraph

import (
	"fmt"
	"sort"
	"strings"

	"ssmfp/internal/graph"
	"ssmfp/internal/routing"
)

// Kind distinguishes the buffer roles.
type Kind int

// Buffer kinds: Single for the destination-based scheme, Reception and
// Emission for SSMFP's bufR/bufE pairs.
const (
	Single Kind = iota
	Reception
	Emission
)

func (k Kind) String() string {
	switch k {
	case Single:
		return "b"
	case Reception:
		return "bufR"
	case Emission:
		return "bufE"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Buffer identifies one buffer of the network: the processor owning it, the
// destination it serves, and its role.
type Buffer struct {
	Process graph.ProcessID
	Dest    graph.ProcessID
	Kind    Kind
}

func (b Buffer) String() string {
	return fmt.Sprintf("%s_%d(%d)", b.Kind, b.Process, b.Dest)
}

// BufferGraph is a directed graph over buffers.
type BufferGraph struct {
	nodes []Buffer
	index map[Buffer]int
	succ  [][]int
}

// newBufferGraph allocates a graph over the given node set.
func newBufferGraph(nodes []Buffer) *BufferGraph {
	bg := &BufferGraph{
		nodes: nodes,
		index: make(map[Buffer]int, len(nodes)),
		succ:  make([][]int, len(nodes)),
	}
	for i, b := range nodes {
		bg.index[b] = i
	}
	return bg
}

func (bg *BufferGraph) addEdge(from, to Buffer) {
	fi, ok := bg.index[from]
	if !ok {
		panic(fmt.Sprintf("buffergraph: unknown buffer %v", from))
	}
	ti, ok := bg.index[to]
	if !ok {
		panic(fmt.Sprintf("buffergraph: unknown buffer %v", to))
	}
	bg.succ[fi] = append(bg.succ[fi], ti)
}

// Size returns the number of buffers.
func (bg *BufferGraph) Size() int { return len(bg.nodes) }

// EdgeCount returns the number of directed edges.
func (bg *BufferGraph) EdgeCount() int {
	n := 0
	for _, s := range bg.succ {
		n += len(s)
	}
	return n
}

// Buffers returns all buffers (do not modify).
func (bg *BufferGraph) Buffers() []Buffer { return bg.nodes }

// Successors returns the buffers directly reachable from b.
func (bg *BufferGraph) Successors(b Buffer) []Buffer {
	i, ok := bg.index[b]
	if !ok {
		return nil
	}
	out := make([]Buffer, len(bg.succ[i]))
	for j, t := range bg.succ[i] {
		out[j] = bg.nodes[t]
	}
	return out
}

// DestinationBased builds the Figure 1 buffer graph from the routing
// tables: for every destination d and every p ≠ d, the edge
// b_p(d) → b_nextHop_p(d)(d).
func DestinationBased(g *graph.Graph, tables []*routing.NodeState) *BufferGraph {
	n := g.N()
	nodes := make([]Buffer, 0, n*n)
	for d := 0; d < n; d++ {
		for p := 0; p < n; p++ {
			nodes = append(nodes, Buffer{Process: graph.ProcessID(p), Dest: graph.ProcessID(d), Kind: Single})
		}
	}
	bg := newBufferGraph(nodes)
	for d := 0; d < n; d++ {
		for p := 0; p < n; p++ {
			if p == d {
				continue
			}
			hop := tables[p].NextHop(graph.ProcessID(d))
			bg.addEdge(
				Buffer{Process: graph.ProcessID(p), Dest: graph.ProcessID(d), Kind: Single},
				Buffer{Process: hop, Dest: graph.ProcessID(d), Kind: Single},
			)
		}
	}
	return bg
}

// SSMFP builds the Figure 2 buffer graph from the routing tables: per
// destination d, bufR_p(d) → bufE_p(d) for every p, and
// bufE_p(d) → bufR_nextHop_p(d)(d) for every p ≠ d.
func SSMFP(g *graph.Graph, tables []*routing.NodeState) *BufferGraph {
	n := g.N()
	nodes := make([]Buffer, 0, 2*n*n)
	for d := 0; d < n; d++ {
		for p := 0; p < n; p++ {
			nodes = append(nodes,
				Buffer{Process: graph.ProcessID(p), Dest: graph.ProcessID(d), Kind: Reception},
				Buffer{Process: graph.ProcessID(p), Dest: graph.ProcessID(d), Kind: Emission})
		}
	}
	bg := newBufferGraph(nodes)
	for d := 0; d < n; d++ {
		for p := 0; p < n; p++ {
			bg.addEdge(
				Buffer{Process: graph.ProcessID(p), Dest: graph.ProcessID(d), Kind: Reception},
				Buffer{Process: graph.ProcessID(p), Dest: graph.ProcessID(d), Kind: Emission})
			if p == d {
				continue
			}
			hop := tables[p].NextHop(graph.ProcessID(d))
			bg.addEdge(
				Buffer{Process: graph.ProcessID(p), Dest: graph.ProcessID(d), Kind: Emission},
				Buffer{Process: hop, Dest: graph.ProcessID(d), Kind: Reception})
		}
	}
	return bg
}

// FindCycle returns a directed cycle as a buffer sequence (first == last),
// or nil if the graph is acyclic. Deadlock freedom of the controller
// requires acyclicity (Merlin–Schweitzer).
func (bg *BufferGraph) FindCycle() []Buffer {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]int, len(bg.nodes))
	parent := make([]int, len(bg.nodes))
	for i := range parent {
		parent[i] = -1
	}
	var cycleStart, cycleEnd = -1, -1
	var dfs func(u int) bool
	dfs = func(u int) bool {
		color[u] = gray
		for _, v := range bg.succ[u] {
			switch color[v] {
			case white:
				parent[v] = u
				if dfs(v) {
					return true
				}
			case gray:
				cycleStart, cycleEnd = v, u
				return true
			}
		}
		color[u] = black
		return false
	}
	for u := range bg.nodes {
		if color[u] == white && dfs(u) {
			break
		}
	}
	if cycleStart < 0 {
		return nil
	}
	var idxs []int
	for v := cycleEnd; v != cycleStart; v = parent[v] {
		idxs = append(idxs, v)
	}
	idxs = append(idxs, cycleStart)
	// Reverse into forward order and close the loop.
	out := make([]Buffer, 0, len(idxs)+1)
	out = append(out, bg.nodes[cycleStart])
	for i := len(idxs) - 2; i >= 0; i-- {
		out = append(out, bg.nodes[idxs[i]])
	}
	out = append(out, bg.nodes[cycleStart])
	return out
}

// Acyclic reports whether the buffer graph has no directed cycle.
func (bg *BufferGraph) Acyclic() bool { return bg.FindCycle() == nil }

// Components returns the weakly connected components as sorted buffer
// slices, largest destination first for stable output. With correct tables
// the graph has exactly n components, one per destination.
func (bg *BufferGraph) Components() [][]Buffer {
	n := len(bg.nodes)
	adj := make([][]int, n)
	for u, ss := range bg.succ {
		for _, v := range ss {
			adj[u] = append(adj[u], v)
			adj[v] = append(adj[v], u)
		}
	}
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	c := 0
	for i := 0; i < n; i++ {
		if comp[i] >= 0 {
			continue
		}
		stack := []int{i}
		comp[i] = c
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, v := range adj[u] {
				if comp[v] < 0 {
					comp[v] = c
					stack = append(stack, v)
				}
			}
		}
		c++
	}
	out := make([][]Buffer, c)
	for i, b := range bg.nodes {
		out[comp[i]] = append(out[comp[i]], b)
	}
	for _, cs := range out {
		sort.Slice(cs, func(i, j int) bool {
			if cs[i].Dest != cs[j].Dest {
				return cs[i].Dest < cs[j].Dest
			}
			if cs[i].Process != cs[j].Process {
				return cs[i].Process < cs[j].Process
			}
			return cs[i].Kind < cs[j].Kind
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0].Dest < out[j][0].Dest })
	return out
}

// ComponentIsTree reports whether the component of destination d (with
// correct tables: all buffers of destination d) forms a tree rooted at the
// destination, i.e. every non-destination buffer chain reaches d and edge
// count equals node count minus one per the tree T_d. Used by experiment
// E-F1 to verify the Figure 1 claim "isomorphic to T_d".
func (bg *BufferGraph) ComponentIsTree(d graph.ProcessID) bool {
	var nodes []int
	for i, b := range bg.nodes {
		if b.Dest == d {
			nodes = append(nodes, i)
		}
	}
	edges := 0
	for _, u := range nodes {
		edges += len(bg.succ[u])
	}
	// A tree on k nodes directed toward the root has k-1 edges and no cycle.
	if edges != len(nodes)-1 {
		return false
	}
	sub := bg.restrictTo(d)
	return sub.Acyclic()
}

// restrictTo returns the sub-buffer-graph of destination d.
func (bg *BufferGraph) restrictTo(d graph.ProcessID) *BufferGraph {
	var nodes []Buffer
	for _, b := range bg.nodes {
		if b.Dest == d {
			nodes = append(nodes, b)
		}
	}
	sub := newBufferGraph(nodes)
	for ui, b := range bg.nodes {
		if b.Dest != d {
			continue
		}
		for _, vi := range bg.succ[ui] {
			sub.addEdge(b, bg.nodes[vi])
		}
	}
	return sub
}

// Restrict returns the sub-buffer-graph containing only destination d's
// buffers and edges — the "one connected component" view of the paper's
// figures.
func (bg *BufferGraph) Restrict(d graph.ProcessID) *BufferGraph { return bg.restrictTo(d) }

// DOT renders the buffer graph in Graphviz syntax.
func (bg *BufferGraph) DOT(name string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %s {\n", name)
	for _, b := range bg.nodes {
		fmt.Fprintf(&sb, "  %q;\n", b.String())
	}
	for ui, b := range bg.nodes {
		for _, vi := range bg.succ[ui] {
			fmt.Fprintf(&sb, "  %q -> %q;\n", b.String(), bg.nodes[vi].String())
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}
