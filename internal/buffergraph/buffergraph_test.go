package buffergraph

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"ssmfp/internal/graph"
	"ssmfp/internal/routing"
)

func correctTables(g *graph.Graph) []*routing.NodeState {
	ts := make([]*routing.NodeState, g.N())
	for p := 0; p < g.N(); p++ {
		ts[p] = routing.CorrectState(g, graph.ProcessID(p))
	}
	return ts
}

func TestDestinationBasedShape(t *testing.T) {
	g := graph.Figure1Network()
	bg := DestinationBased(g, correctTables(g))
	n := g.N()
	if bg.Size() != n*n {
		t.Fatalf("size = %d, want %d", bg.Size(), n*n)
	}
	if bg.EdgeCount() != n*(n-1) {
		t.Fatalf("edges = %d, want %d", bg.EdgeCount(), n*(n-1))
	}
	if !bg.Acyclic() {
		t.Fatal("destination-based graph with correct tables must be acyclic")
	}
	comps := bg.Components()
	if len(comps) != n {
		t.Fatalf("components = %d, want n = %d (one per destination)", len(comps), n)
	}
	for i, c := range comps {
		if len(c) != n {
			t.Fatalf("component %d has %d buffers, want n", i, len(c))
		}
		d := c[0].Dest
		for _, b := range c {
			if b.Dest != d {
				t.Fatal("component mixes destinations")
			}
		}
		if !bg.ComponentIsTree(d) {
			t.Fatalf("component of destination %d is not isomorphic to T_d", d)
		}
	}
}

func TestSSMFPShape(t *testing.T) {
	g := graph.Figure1Network()
	bg := SSMFP(g, correctTables(g))
	n := g.N()
	if bg.Size() != 2*n*n {
		t.Fatalf("size = %d, want %d", bg.Size(), 2*n*n)
	}
	// n internal edges plus n-1 forwarding edges per destination.
	if bg.EdgeCount() != n*(2*n-1) {
		t.Fatalf("edges = %d, want %d", bg.EdgeCount(), n*(2*n-1))
	}
	if !bg.Acyclic() {
		t.Fatal("SSMFP buffer graph with correct tables must be acyclic")
	}
	if comps := bg.Components(); len(comps) != n {
		t.Fatalf("components = %d, want %d", len(comps), n)
	}
}

func TestSSMFPInternalEdges(t *testing.T) {
	g := graph.Line(3)
	bg := SSMFP(g, correctTables(g))
	// bufR_1(2) must point to bufE_1(2), which must point to bufR_2(2).
	succ := bg.Successors(Buffer{Process: 1, Dest: 2, Kind: Reception})
	if len(succ) != 1 || succ[0] != (Buffer{Process: 1, Dest: 2, Kind: Emission}) {
		t.Fatalf("bufR successors = %v", succ)
	}
	succ = bg.Successors(Buffer{Process: 1, Dest: 2, Kind: Emission})
	if len(succ) != 1 || succ[0] != (Buffer{Process: 2, Dest: 2, Kind: Reception}) {
		t.Fatalf("bufE successors = %v", succ)
	}
	// The destination's emission buffer is a sink (R6 consumes from it).
	if succ := bg.Successors(Buffer{Process: 2, Dest: 2, Kind: Emission}); len(succ) != 0 {
		t.Fatalf("destination bufE must be a sink, got %v", succ)
	}
}

func TestCorruptTablesCreateCycle(t *testing.T) {
	g := graph.Ring(5)
	ts := correctTables(g)
	routing.CycleCorrupt(g, 0, 2, 3, ts)
	for _, bg := range []*BufferGraph{DestinationBased(g, ts), SSMFP(g, ts)} {
		cycle := bg.FindCycle()
		if cycle == nil {
			t.Fatal("corrupted tables must create a buffer-graph cycle")
		}
		if cycle[0] != cycle[len(cycle)-1] {
			t.Fatalf("cycle not closed: %v", cycle)
		}
		for _, b := range cycle {
			if b.Dest != 0 {
				t.Fatalf("cycle escaped destination 0's component: %v", cycle)
			}
		}
		// Every consecutive pair must be a real edge.
		for i := 0; i+1 < len(cycle); i++ {
			found := false
			for _, s := range bg.Successors(cycle[i]) {
				if s == cycle[i+1] {
					found = true
				}
			}
			if !found {
				t.Fatalf("cycle step %v -> %v is not an edge", cycle[i], cycle[i+1])
			}
		}
	}
}

func TestRestrictIsolatesDestination(t *testing.T) {
	g := graph.Figure1Network()
	bg := SSMFP(g, correctTables(g))
	sub := bg.Restrict(1)
	if sub.Size() != 2*g.N() {
		t.Fatalf("restricted size = %d, want %d", sub.Size(), 2*g.N())
	}
	for _, b := range sub.Buffers() {
		if b.Dest != 1 {
			t.Fatal("restriction leaked other destinations")
		}
	}
	if !sub.Acyclic() {
		t.Fatal("restricted component must be acyclic")
	}
}

func TestComponentIsTreeDetectsNonTree(t *testing.T) {
	g := graph.Ring(4)
	ts := correctTables(g)
	routing.CycleCorrupt(g, 0, 1, 2, ts)
	bg := DestinationBased(g, ts)
	if bg.ComponentIsTree(0) {
		t.Fatal("cyclic component must not be reported as tree")
	}
}

func TestKindAndBufferString(t *testing.T) {
	b := Buffer{Process: 3, Dest: 1, Kind: Reception}
	if b.String() != "bufR_3(1)" {
		t.Fatalf("String = %q", b.String())
	}
	if Single.String() != "b" || Emission.String() != "bufE" {
		t.Fatal("kind strings wrong")
	}
	if Kind(9).String() != "kind(9)" {
		t.Fatal("unknown kind string wrong")
	}
}

func TestDOTRendering(t *testing.T) {
	g := graph.Line(2)
	bg := SSMFP(g, correctTables(g))
	dot := bg.DOT("bg")
	for _, want := range []string{`digraph bg {`, `"bufR_0(1)" -> "bufE_0(1)"`, `"bufE_0(1)" -> "bufR_1(1)"`} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q", want)
		}
	}
}

// Property: for random connected graphs with canonical routing tables, both
// buffer-graph schemes are acyclic and have exactly n weakly connected
// components (the Merlin–Schweitzer deadlock-freedom precondition).
func TestQuickAcyclicWithCorrectTables(t *testing.T) {
	f := func(seed int64, nRaw, mRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + int(nRaw)%10
		g := graph.RandomConnected(n, int(mRaw), rng)
		ts := correctTables(g)
		d := DestinationBased(g, ts)
		s := SSMFP(g, ts)
		return d.Acyclic() && s.Acyclic() && len(d.Components()) == n && len(s.Components()) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: random (possibly looping) tables — FindCycle is consistent
// with Acyclic, and any reported cycle is a real closed walk.
func TestQuickCycleReportingConsistent(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + int(nRaw)%8
		g := graph.RandomConnected(n, 3*n, rng)
		ts := make([]*routing.NodeState, n)
		for p := 0; p < n; p++ {
			ts[p] = routing.RandomState(g, graph.ProcessID(p), rng)
		}
		bg := SSMFP(g, ts)
		cycle := bg.FindCycle()
		if (cycle == nil) != bg.Acyclic() {
			return false
		}
		if cycle == nil {
			return true
		}
		if cycle[0] != cycle[len(cycle)-1] || len(cycle) < 3 {
			return false
		}
		for i := 0; i+1 < len(cycle); i++ {
			ok := false
			for _, s := range bg.Successors(cycle[i]) {
				if s == cycle[i+1] {
					ok = true
				}
			}
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
