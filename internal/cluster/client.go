package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"ssmfp/internal/graph"
	"ssmfp/internal/msgpass"
)

// Client is the Manager's pipe to one node. *Agent implements it directly
// (in-process deployments); HTTPClient implements it over the admin
// endpoints (multi-process deployments). Apply must surface a stale
// sequence as msgpass.ErrStaleEpoch (wrapped is fine) — the Manager
// treats staleness as convergence, not failure, when re-broadcasting.
type Client interface {
	Apply(e Epoch) error
	Status() (NodeStatus, error)
	Quiesce(target graph.ProcessID) (QuiesceReport, error)
	Inject(src, dst graph.ProcessID, count int, payload string) (InjectReport, error)
}

var _ Client = (*Agent)(nil)

// HTTPClient speaks the admin surface of one remote node.
type HTTPClient struct {
	// Base is the node's debug endpoint, e.g. "http://127.0.0.1:8080".
	Base string
	// HTTP is the underlying client; nil selects a private one with a
	// 10-second timeout (admin calls are small; only epoch application
	// does real work, and that is bounded by the pause barrier).
	HTTP *http.Client
}

// NewHTTPClient builds a client for the node at base.
func NewHTTPClient(base string) *HTTPClient {
	return &HTTPClient{Base: base}
}

// NewHTTPClientWith builds a client carrying an explicit *http.Client —
// how an operator console reaches nodes behind mutual TLS (hc carries the
// client certificate and the cluster CA pool). A nil hc falls back to the
// private plaintext default.
func NewHTTPClientWith(base string, hc *http.Client) *HTTPClient {
	return &HTTPClient{Base: base, HTTP: hc}
}

func (c *HTTPClient) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return &http.Client{Timeout: 10 * time.Second}
}

// errBody is the JSON error envelope every admin handler writes.
type errBody struct {
	Error string `json:"error"`
}

// do performs one request and decodes the JSON response into out (when
// non-nil). Non-2xx responses become errors carrying the server's error
// string; 409 wraps msgpass.ErrStaleEpoch so errors.Is sees through it.
func (c *HTTPClient) do(method, path string, body io.Reader, out any) error {
	req, err := http.NewRequest(method, c.Base+path, body)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var eb errBody
		_ = json.NewDecoder(resp.Body).Decode(&eb)
		if resp.StatusCode == http.StatusConflict {
			return fmt.Errorf("%w: %s", msgpass.ErrStaleEpoch, eb.Error)
		}
		if eb.Error == "" {
			eb.Error = resp.Status
		}
		return fmt.Errorf("cluster: %s %s: %s", method, path, eb.Error)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Apply POSTs the epoch at the node.
func (c *HTTPClient) Apply(e Epoch) error {
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(e); err != nil {
		return err
	}
	return c.do(http.MethodPost, "/admin/epoch", &buf, nil)
}

// Status fetches the node's cluster view.
func (c *HTTPClient) Status() (NodeStatus, error) {
	var st NodeStatus
	err := c.do(http.MethodGet, "/admin/status", nil, &st)
	return st, err
}

// Quiesce probes the node's remaining work for target.
func (c *HTTPClient) Quiesce(target graph.ProcessID) (QuiesceReport, error) {
	var rep QuiesceReport
	err := c.do(http.MethodGet, "/admin/quiesce?target="+strconv.Itoa(int(target)), nil, &rep)
	return rep, err
}

// Deliveries fetches the node's delivery ledger. Not part of the Client
// interface — the Manager never needs it; external judges do.
func (c *HTTPClient) Deliveries() ([]DeliveryRec, error) {
	var ds []DeliveryRec
	err := c.do(http.MethodGet, "/admin/deliveries", nil, &ds)
	return ds, err
}

// Inject asks the node to send count messages src→dst.
func (c *HTTPClient) Inject(src, dst graph.ProcessID, count int, payload string) (InjectReport, error) {
	q := url.Values{}
	q.Set("src", strconv.Itoa(int(src)))
	q.Set("dst", strconv.Itoa(int(dst)))
	q.Set("count", strconv.Itoa(count))
	q.Set("payload", payload)
	var rep InjectReport
	err := c.do(http.MethodPost, "/admin/inject?"+q.Encode(), nil, &rep)
	return rep, err
}
