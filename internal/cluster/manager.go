package cluster

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"ssmfp/internal/graph"
	"ssmfp/internal/msgpass"
)

// Manager is the operator side of the elastic cluster: the single writer
// of the desired topology. It owns a graph.Topology plus the transient
// epoch state (draining members, routing-disabled edges), stamps strictly
// increasing sequence numbers, and broadcasts every epoch to all attached
// node clients. Multi-step operations — join, graceful link cut, drain,
// rolling restart — are sequenced here, with quiescence polling between
// the epochs they emit.
//
// The Manager is not a consensus system and does not pretend to be one:
// it is one operator's console. Broadcast is at-least-once per node
// (re-Push on failure); a node that misses an epoch and later receives a
// newer one converges directly — epochs carry full topology, not diffs —
// and snap-stabilization absorbs whatever transient disagreement the gap
// produced, exactly as it absorbs any other arbitrary configuration.
type Manager struct {
	// PollInterval paces quiescence polling during drains and graceful
	// cuts (default 5ms; raise it for HTTP clients on real networks).
	PollInterval time.Duration
	// DrainTimeout bounds how long Drain waits for the cluster to hand
	// off everything addressed to the leaving node (default 30s).
	DrainTimeout time.Duration
	// CutSettle is the pause between the two phases of a graceful link
	// cut: after routing abandons the disabled edge, in-flight handshakes
	// get this long to finish on the still-up wire before it is removed
	// (default 100ms — hundreds of retransmission intervals at the
	// default tick).
	CutSettle time.Duration

	opMu sync.Mutex // serializes multi-epoch operations

	mu       sync.Mutex // guards everything below
	topo     *graph.Topology
	seq      uint64
	draining map[graph.ProcessID]bool
	disabled map[[2]graph.ProcessID]bool
	addrs    map[graph.ProcessID]string
	clients  map[graph.ProcessID]Client
}

// NewManager starts a Manager over an initial topology (the boot graph
// the nodes were launched with), which it takes ownership of. The first
// broadcast epoch has sequence 1; the boot state is epoch 0.
func NewManager(topo *graph.Topology) *Manager {
	return &Manager{
		PollInterval: 5 * time.Millisecond,
		DrainTimeout: 30 * time.Second,
		CutSettle:    100 * time.Millisecond,
		topo:         topo,
		draining:     make(map[graph.ProcessID]bool),
		disabled:     make(map[[2]graph.ProcessID]bool),
		addrs:        make(map[graph.ProcessID]string),
		clients:      make(map[graph.ProcessID]Client),
	}
}

// ResumeAt sets the epoch sequence the next broadcast will follow — how
// an operator console reconstructed from a running cluster's status
// (topology and epoch from NodeStatus) continues the sequence instead of
// restarting it, which every node would reject as stale.
func (m *Manager) ResumeAt(seq uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.seq = seq
}

// Attach registers the client for node id (and its listen address, for
// TCP deployments; "" for in-process ones). Attaching before the first
// operation that involves id is the caller's responsibility.
func (m *Manager) Attach(id graph.ProcessID, c Client, addr string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.clients[id] = c
	if addr != "" {
		m.addrs[id] = addr
	}
}

// Detach forgets the client for id without any topology change.
func (m *Manager) Detach(id graph.ProcessID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.clients, id)
	delete(m.addrs, id)
}

// Topology returns a copy of the desired topology.
func (m *Manager) Topology() *graph.Topology {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.topo.Clone()
}

// epochLocked snapshots the desired state into a wire epoch at the
// current sequence. Caller holds m.mu.
func (m *Manager) epochLocked() Epoch {
	e := Epoch{Seq: m.seq, Slots: m.topo.Cap(), Edges: m.topo.Edges()}
	for p := range m.draining {
		e.Draining = append(e.Draining, p)
	}
	sort.Slice(e.Draining, func(i, j int) bool { return e.Draining[i] < e.Draining[j] })
	for k := range m.disabled {
		e.Disabled = append(e.Disabled, k)
	}
	sort.Slice(e.Disabled, func(i, j int) bool {
		if e.Disabled[i][0] != e.Disabled[j][0] {
			return e.Disabled[i][0] < e.Disabled[j][0]
		}
		return e.Disabled[i][1] < e.Disabled[j][1]
	})
	if len(m.addrs) > 0 {
		e.Addrs = make(map[graph.ProcessID]string, len(m.addrs))
		for p, a := range m.addrs {
			e.Addrs[p] = a
		}
	}
	return e
}

// Epoch returns the current desired epoch (the last one broadcast, or
// the sequence-0 boot state before any operation).
func (m *Manager) Epoch() Epoch {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.epochLocked()
}

// clientsLocked snapshots the attached clients in ascending node order.
func (m *Manager) clientsLocked() ([]graph.ProcessID, []Client) {
	ids := make([]graph.ProcessID, 0, len(m.clients))
	for id := range m.clients {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	cs := make([]Client, len(ids))
	for i, id := range ids {
		cs[i] = m.clients[id]
	}
	return ids, cs
}

// bump advances the sequence and snapshots the epoch plus the client set
// to broadcast it to.
func (m *Manager) bump() (Epoch, []graph.ProcessID, []Client) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.seq++
	e := m.epochLocked()
	ids, cs := m.clientsLocked()
	return e, ids, cs
}

// broadcast pushes one epoch at every client. A stale rejection counts as
// success — the node already converged past this sequence (a re-Push, or
// a node that saw the epoch through another path). Other failures are
// collected; the epoch stays the desired state either way, so Push
// retries convergence.
func (m *Manager) broadcast(e Epoch, ids []graph.ProcessID, cs []Client) error {
	var errs []error
	for i, c := range cs {
		if err := c.Apply(e); err != nil && !errors.Is(err, msgpass.ErrStaleEpoch) {
			errs = append(errs, fmt.Errorf("node %d: %w", ids[i], err))
		}
	}
	return errors.Join(errs...)
}

// push bumps the sequence and broadcasts the resulting epoch.
func (m *Manager) push() error {
	return m.broadcast(m.bump())
}

// Push re-broadcasts the current desired epoch at the next sequence —
// the anti-entropy knob after a partially failed operation.
func (m *Manager) Push() error {
	m.opMu.Lock()
	defer m.opMu.Unlock()
	return m.push()
}

// JoinNode admits id with links to peers, records its address book entry
// and client, and broadcasts the admitting epoch. The node itself must
// already be running on the post-join topology (it boots knowing its own
// links); the epoch is what tells everyone else. id may be a fresh slot
// or a previously removed one rejoining under its old identity.
func (m *Manager) JoinNode(id graph.ProcessID, addr string, c Client, peers ...graph.ProcessID) error {
	m.opMu.Lock()
	defer m.opMu.Unlock()
	if len(peers) == 0 {
		return fmt.Errorf("cluster: join %d: no peers", id)
	}
	m.mu.Lock()
	if err := m.topo.AddNodeID(id); err != nil {
		m.mu.Unlock()
		return err
	}
	for _, q := range peers {
		if err := m.topo.AddEdge(id, q); err != nil {
			// Roll the half-admitted node back out.
			_ = m.topo.RemoveNode(id)
			m.mu.Unlock()
			return err
		}
	}
	if addr != "" {
		m.addrs[id] = addr
	}
	if c != nil {
		m.clients[id] = c
	}
	m.mu.Unlock()
	return m.push()
}

// AddLink inserts the edge (u, v) and broadcasts.
func (m *Manager) AddLink(u, v graph.ProcessID) error {
	m.opMu.Lock()
	defer m.opMu.Unlock()
	m.mu.Lock()
	if err := m.topo.AddEdge(u, v); err != nil {
		m.mu.Unlock()
		return err
	}
	m.mu.Unlock()
	return m.push()
}

// CutLink removes the edge (u, v) gracefully, in two epochs: first the
// edge is disabled — routing abandons it while the wire stays up, so
// in-flight handshakes across it complete — then, after CutSettle, a
// second epoch removes it. The graceful path is what preserves the
// exactly-once guarantee: tearing a wire mid-handshake can force a
// sender to re-offer a message its old next hop already owns (see
// CutLinkForced). Refused if the cut would disconnect the member set.
func (m *Manager) CutLink(u, v graph.ProcessID) error {
	m.opMu.Lock()
	defer m.opMu.Unlock()
	m.mu.Lock()
	if !m.topo.HasEdge(u, v) {
		m.mu.Unlock()
		return fmt.Errorf("cluster: no edge (%d,%d)", u, v)
	}
	probe := m.topo.Clone()
	_ = probe.RemoveEdge(u, v)
	if _, err := probe.Build(); err != nil {
		m.mu.Unlock()
		return fmt.Errorf("cluster: cutting (%d,%d) would break the cluster: %w", u, v, err)
	}
	m.disabled[edgeKey(u, v)] = true
	m.mu.Unlock()
	if err := m.push(); err != nil {
		return err
	}
	time.Sleep(m.CutSettle)
	m.mu.Lock()
	delete(m.disabled, edgeKey(u, v))
	err := m.topo.RemoveEdge(u, v)
	m.mu.Unlock()
	if err != nil {
		return err
	}
	return m.push()
}

// CutLinkForced removes the edge in one epoch, wire and all. In-flight
// handshakes on the edge are abandoned: a message whose accept was lost
// with the wire is re-offered along the new route and may be delivered
// twice. Use CutLink unless modeling link failure is the point.
func (m *Manager) CutLinkForced(u, v graph.ProcessID) error {
	m.opMu.Lock()
	defer m.opMu.Unlock()
	m.mu.Lock()
	delete(m.disabled, edgeKey(u, v))
	err := m.topo.RemoveEdge(u, v)
	m.mu.Unlock()
	if err != nil {
		return err
	}
	return m.push()
}

// Drain quiesces node id and detaches it, in two stages. Stage one marks
// id draining: it refuses new injections, hands its buffered messages to
// live neighbors, and leaves routing as a candidate only for its own
// traffic. The Manager then polls every node until nothing anywhere is
// still addressed to id. Stage two removes id, adds the heal edges, and
// broadcasts — the leaving node's own client receives that epoch too,
// which is what detaches it.
//
// heal lists edges to add alongside the removal so the survivors stay
// connected; with none given, a chain between id's neighbors is added
// where needed. The heal edges actually applied are returned (rolling
// restarts remove them again after the rejoin). On timeout the node is
// left draining and attached; the caller can re-Drain (it polls again)
// or Push a corrective epoch.
func (m *Manager) Drain(id graph.ProcessID, heal ...[2]graph.ProcessID) ([][2]graph.ProcessID, error) {
	m.opMu.Lock()
	defer m.opMu.Unlock()

	// Plan the detachment first so an impossible removal is refused
	// before the cluster is disturbed.
	m.mu.Lock()
	if !m.topo.HasNode(id) {
		m.mu.Unlock()
		return nil, fmt.Errorf("cluster: drain %d: not a member", id)
	}
	if len(m.topo.Members()) == 1 {
		m.mu.Unlock()
		return nil, fmt.Errorf("cluster: drain %d: last member", id)
	}
	plan, err := detachPlan(m.topo, id, heal)
	if err != nil {
		m.mu.Unlock()
		return nil, err
	}
	m.draining[id] = true
	m.mu.Unlock()

	if err := m.push(); err != nil {
		return nil, err
	}

	// Poll the whole cluster down to zero in-flight work for id.
	deadline := time.Now().Add(m.DrainTimeout)
	for {
		m.mu.Lock()
		ids, cs := m.clientsLocked()
		m.mu.Unlock()
		done := true
		for i, c := range cs {
			rep, err := c.Quiesce(id)
			if err != nil {
				return nil, fmt.Errorf("cluster: drain %d: probing node %d: %w", id, ids[i], err)
			}
			if !rep.Drained() {
				done = false
				break
			}
		}
		if done {
			break
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("cluster: drain %d: not quiesced after %v", id, m.DrainTimeout)
		}
		time.Sleep(m.PollInterval)
	}

	// Detach: remove the node, heal around it, broadcast (including to
	// the leaving node — that epoch is its signal to let go), then
	// forget its client.
	m.mu.Lock()
	if err := m.topo.RemoveNode(id); err != nil {
		m.mu.Unlock()
		return nil, err
	}
	for _, e := range plan {
		if err := m.topo.AddEdge(e[0], e[1]); err != nil {
			m.mu.Unlock()
			return nil, err
		}
	}
	delete(m.draining, id)
	m.mu.Unlock()
	if err := m.push(); err != nil {
		return nil, err
	}
	m.Detach(id)
	return plan, nil
}

// detachPlan validates that removing id (plus the given or computed heal
// edges) leaves a buildable topology, and returns the heal edges to add.
// Caller holds m.mu.
func detachPlan(topo *graph.Topology, id graph.ProcessID, heal [][2]graph.ProcessID) ([][2]graph.ProcessID, error) {
	probe := topo.Clone()
	var nbrs []graph.ProcessID
	for _, e := range probe.Edges() {
		switch id {
		case e[0]:
			nbrs = append(nbrs, e[1])
		case e[1]:
			nbrs = append(nbrs, e[0])
		}
	}
	if err := probe.RemoveNode(id); err != nil {
		return nil, err
	}
	plan := heal
	if len(plan) == 0 {
		// Auto-heal: chain the orphaned neighborhood. Edges already
		// present are skipped; the Build check below decides sufficiency.
		sort.Slice(nbrs, func(i, j int) bool { return nbrs[i] < nbrs[j] })
		for i := 0; i+1 < len(nbrs); i++ {
			if !probe.HasEdge(nbrs[i], nbrs[i+1]) {
				plan = append(plan, [2]graph.ProcessID{nbrs[i], nbrs[i+1]})
			}
		}
	}
	for _, e := range plan {
		if err := probe.AddEdge(e[0], e[1]); err != nil {
			return nil, fmt.Errorf("cluster: heal edge (%d,%d): %w", e[0], e[1], err)
		}
	}
	if _, err := probe.Build(); err != nil {
		return nil, fmt.Errorf("cluster: removing %d would break the cluster: %w", id, err)
	}
	// Trim the auto-heal chain edges that Build did not actually need?
	// No — minimality is not worth a second connectivity solver; the
	// chain is small (degree of id) and the caller removes it on rejoin.
	return plan, nil
}

// RollingRestart drains, detaches, and readmits every member in turn.
// restart is the deployment's "boot this node again" hook: called after
// the topology has been edited to readmit id, with the epoch the node
// must come back on; it returns the fresh node's client. In-process
// deployments build a new Network; multi-process ones restart the OS
// process and dial it.
func (m *Manager) RollingRestart(restart func(id graph.ProcessID, e Epoch) (Client, error)) error {
	for _, id := range m.Topology().Members() {
		m.mu.Lock()
		var edges [][2]graph.ProcessID
		for _, e := range m.topo.Edges() {
			if e[0] == id || e[1] == id {
				edges = append(edges, e)
			}
		}
		addr := m.addrs[id]
		m.mu.Unlock()

		healed, err := m.Drain(id)
		if err != nil {
			return fmt.Errorf("cluster: rolling restart: %w", err)
		}

		// Readmit on the original edges, then undo the temporary heal.
		m.opMu.Lock()
		m.mu.Lock()
		if err := m.topo.AddNodeID(id); err != nil {
			m.mu.Unlock()
			m.opMu.Unlock()
			return err
		}
		for _, e := range edges {
			if err := m.topo.AddEdge(e[0], e[1]); err != nil {
				m.mu.Unlock()
				m.opMu.Unlock()
				return err
			}
		}
		for _, e := range healed {
			if err := m.topo.RemoveEdge(e[0], e[1]); err != nil {
				m.mu.Unlock()
				m.opMu.Unlock()
				return err
			}
		}
		if addr != "" {
			m.addrs[id] = addr
		}
		rejoin := m.epochLocked()
		rejoin.Seq++ // the sequence push() will stamp
		m.mu.Unlock()

		c, err := restart(id, rejoin)
		if err != nil {
			m.opMu.Unlock()
			return fmt.Errorf("cluster: rolling restart: reboot %d: %w", id, err)
		}
		m.mu.Lock()
		m.clients[id] = c
		m.mu.Unlock()
		err = m.push()
		m.opMu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// Inject routes a live load injection to the node hosting src: the
// client attached as src, or failing that, whichever attached client
// reports src among its local processors.
func (m *Manager) Inject(src, dst graph.ProcessID, count int, payload string) (InjectReport, error) {
	m.mu.Lock()
	c := m.clients[src]
	_, cs := m.clientsLocked()
	m.mu.Unlock()
	for _, cand := range cs {
		if c != nil {
			break
		}
		st, err := cand.Status()
		if err != nil {
			continue
		}
		for _, p := range st.Local {
			if p == src {
				c = cand
				break
			}
		}
	}
	if c == nil {
		return InjectReport{}, fmt.Errorf("cluster: no client hosts %d", src)
	}
	return c.Inject(src, dst, count, payload)
}

// ClusterStatus is the Manager's merged view: the desired epoch and, per
// attached node, either its status or the error probing it.
type ClusterStatus struct {
	Epoch    Epoch                          `json:"epoch"`
	Members  []graph.ProcessID              `json:"members"`
	Draining []graph.ProcessID              `json:"draining,omitempty"`
	Nodes    map[graph.ProcessID]NodeStatus `json:"nodes"`
	Errors   map[graph.ProcessID]string     `json:"errors,omitempty"`
}

// Status probes every attached client and merges.
func (m *Manager) Status() ClusterStatus {
	m.mu.Lock()
	cs := ClusterStatus{
		Epoch:   m.epochLocked(),
		Members: m.topo.Members(),
		Nodes:   make(map[graph.ProcessID]NodeStatus),
	}
	for p := range m.draining {
		cs.Draining = append(cs.Draining, p)
	}
	sort.Slice(cs.Draining, func(i, j int) bool { return cs.Draining[i] < cs.Draining[j] })
	ids, clients := m.clientsLocked()
	m.mu.Unlock()
	for i, c := range clients {
		st, err := c.Status()
		if err != nil {
			if cs.Errors == nil {
				cs.Errors = make(map[graph.ProcessID]string)
			}
			cs.Errors[ids[i]] = err.Error()
			continue
		}
		cs.Nodes[ids[i]] = st
	}
	return cs
}

func edgeKey(u, v graph.ProcessID) [2]graph.ProcessID {
	if u > v {
		u, v = v, u
	}
	return [2]graph.ProcessID{u, v}
}
