package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"ssmfp/internal/graph"
	"ssmfp/internal/msgpass"
)

// PeerBook is the node-side address book a TCP deployment updates when an
// epoch admits a new peer: *transport.TCP implements it. The in-process
// backends need no addresses, so the Agent takes it as an optional
// dependency rather than a transport.
type PeerBook interface {
	AddPeer(p graph.ProcessID, addr string)
}

// NodeStatus is one node's (one process's) view of the cluster — its
// applied epoch, the topology under that epoch (slot count and edge set,
// enough for an operator console to reconstruct a Manager from a running
// cluster), which of its local processors run and drain, and their queue
// occupancy. The Manager merges these across nodes into a cluster status.
type NodeStatus struct {
	Epoch     uint64               `json:"epoch"`
	Slots     int                  `json:"slots"`
	Edges     [][2]graph.ProcessID `json:"edges"`
	Members   []graph.ProcessID    `json:"members"`
	Local     []graph.ProcessID    `json:"local"`
	Draining  []graph.ProcessID    `json:"draining,omitempty"`
	Delivered int                  `json:"delivered"`
	Queues    []msgpass.QueueDepth `json:"queues"`
}

// QuiesceReport answers "does this node still hold work for target?" —
// the probe the Manager polls while draining target. InFlight counts
// everything addressed to target that this node's processors still hold
// (buffers, parked offers, pending queues); Quiesced is target's own
// emptiness and is meaningful only where target is local.
type QuiesceReport struct {
	Target   graph.ProcessID `json:"target"`
	Local    bool            `json:"local"`
	Quiesced bool            `json:"quiesced"`
	InFlight int             `json:"inFlight"`
}

// Drained folds the report into one verdict: this node holds nothing for
// target, and — if target lives here — target itself holds nothing.
func (q QuiesceReport) Drained() bool {
	return q.InFlight == 0 && (!q.Local || q.Quiesced)
}

// InjectReport is the outcome of a live load injection: how many sends
// were requested, how many the network accepted, and their UIDs (the
// handles an exactly-once oracle tracks).
type InjectReport struct {
	Requested int      `json:"requested"`
	Sent      int      `json:"sent"`
	UIDs      []uint64 `json:"uids,omitempty"`
	Err       string   `json:"err,omitempty"`
}

// injectCap bounds one admin injection request; sustained load belongs to
// the load subsystem, not the operator plane.
const injectCap = 100_000

// Agent is the node side of the operator plane: it owns nothing, it
// mediates — epochs in, status out — between the admin surface and the
// local msgpass.Network. An *Agent is itself a Client, which is how an
// in-process deployment (one OS process, many Networks or one) wires the
// Manager directly to its nodes.
type Agent struct {
	net   *msgpass.Network
	peers PeerBook
}

// NewAgent wraps the local network. peers may be nil (non-TCP backends);
// when set, every applied epoch's address book is replayed into it before
// the epoch reaches the network, so links to a joiner can be established.
func NewAgent(nw *msgpass.Network, peers PeerBook) *Agent {
	return &Agent{net: nw, peers: peers}
}

// Network returns the wrapped network (the spawn judge reaches through
// for its delivery oracle).
func (a *Agent) Network() *msgpass.Network { return a.net }

// Apply compiles and applies one epoch to the local network. A stale
// sequence returns msgpass.ErrStaleEpoch — the caller decides whether
// that is an error (operator typo) or convergence (a re-broadcast the
// node already has).
func (a *Agent) Apply(e Epoch) error {
	if a.peers != nil {
		for p, addr := range e.Addrs {
			a.peers.AddPeer(p, addr)
		}
	}
	me, err := e.Build()
	if err != nil {
		return err
	}
	return a.net.ApplyEpoch(me)
}

// Status reports this node's view of the cluster.
func (a *Agent) Status() (NodeStatus, error) {
	queues := a.net.QueueDepths()
	g := a.net.Graph()
	st := NodeStatus{
		Epoch:     a.net.CurrentEpoch(),
		Slots:     g.N(),
		Edges:     g.Edges(),
		Members:   a.net.Members(),
		Local:     make([]graph.ProcessID, 0, len(queues)),
		Delivered: a.net.Delivered(),
		Queues:    queues,
	}
	for _, q := range queues {
		st.Local = append(st.Local, q.Proc)
		if a.net.Draining(q.Proc) {
			st.Draining = append(st.Draining, q.Proc)
		}
	}
	return st, nil
}

// Quiesce probes how much work addressed to target this node still holds.
func (a *Agent) Quiesce(target graph.ProcessID) (QuiesceReport, error) {
	r := QuiesceReport{Target: target, InFlight: a.net.InFlightFor(target)}
	for _, q := range a.net.QueueDepths() {
		if q.Proc == target {
			r.Local = true
		}
	}
	if r.Local {
		r.Quiesced = a.net.Quiesced(target)
	}
	return r, nil
}

// DeliveryRec is one consumed message in the node's delivery ledger —
// the record an external exactly-once judge joins across nodes. Payload
// rides along because UID streams restart with a node's incarnation
// (exactly like the handshake sequence watermarks), so a churn judge
// disambiguates by (payload, uid).
type DeliveryRec struct {
	UID     uint64          `json:"uid"`
	Src     graph.ProcessID `json:"src"`
	Dest    graph.ProcessID `json:"dest"`
	At      graph.ProcessID `json:"at"`
	Payload string          `json:"payload"`
	Valid   bool            `json:"valid"`
}

// Deliveries returns the local delivery ledger. Empty when the network
// runs with DiscardDeliveries (sustained-load deployments keep their
// ledger in the OnDeliver hook instead).
func (a *Agent) Deliveries() []DeliveryRec {
	ds := a.net.Deliveries()
	out := make([]DeliveryRec, len(ds))
	for i, d := range ds {
		out[i] = DeliveryRec{
			UID:     d.Msg.UID,
			Src:     d.Msg.Src,
			Dest:    d.Msg.Dest,
			At:      d.At,
			Payload: d.Msg.Payload,
			Valid:   d.Msg.Valid,
		}
	}
	return out
}

// Inject performs count sends src→dst with the given payload — live load
// an operator (or the spawn judge) pushes through a running cluster. It
// stops at the first refused send and reports how far it got; partial
// injection is not an error at this layer (the report carries the cause).
func (a *Agent) Inject(src, dst graph.ProcessID, count int, payload string) (InjectReport, error) {
	if count <= 0 || count > injectCap {
		return InjectReport{}, fmt.Errorf("cluster: inject count %d outside (0,%d]", count, injectCap)
	}
	rep := InjectReport{Requested: count, UIDs: make([]uint64, 0, count)}
	for i := 0; i < count; i++ {
		uid, err := a.net.Send(src, payload, dst)
		if err != nil {
			rep.Err = err.Error()
			break
		}
		rep.Sent++
		rep.UIDs = append(rep.UIDs, uid)
	}
	return rep, nil
}

// Admin HTTP surface. The handlers mount on the node's debug mux (see
// internal/obs.ServeWith) under /admin/:
//
//	POST /admin/epoch            body: Epoch JSON      → {"epoch": seq}
//	GET  /admin/status                                 → NodeStatus
//	GET  /admin/quiesce?target=N                       → QuiesceReport
//	POST /admin/inject?src=&dst=&count=&payload=       → InjectReport
//	GET  /admin/deliveries                             → []DeliveryRec
//
// A stale epoch answers 409 Conflict; malformed requests 400; everything
// else that fails 500. All bodies are JSON.

// Handler returns the admin mux, routable standalone or mounted under
// "/admin/" on a larger mux (patterns are absolute, so prefix-mounting
// the whole handler works).
func (a *Agent) Handler() http.Handler {
	mux := http.NewServeMux()
	a.Mount(mux)
	return mux
}

// Mount registers the admin routes on an existing mux.
func (a *Agent) Mount(mux *http.ServeMux) {
	mux.HandleFunc("/admin/epoch", a.handleEpoch)
	mux.HandleFunc("/admin/status", a.handleStatus)
	mux.HandleFunc("/admin/quiesce", a.handleQuiesce)
	mux.HandleFunc("/admin/inject", a.handleInject)
	mux.HandleFunc("/admin/deliveries", a.handleDeliveries)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func (a *Agent) handleEpoch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("POST an Epoch"))
		return
	}
	var e Epoch
	if err := json.NewDecoder(r.Body).Decode(&e); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	switch err := a.Apply(e); {
	case errors.Is(err, msgpass.ErrStaleEpoch):
		writeJSON(w, http.StatusConflict, map[string]any{
			"error": err.Error(),
			"epoch": a.net.CurrentEpoch(),
		})
	case err != nil:
		writeErr(w, http.StatusInternalServerError, err)
	default:
		writeJSON(w, http.StatusOK, map[string]uint64{"epoch": a.net.CurrentEpoch()})
	}
}

func (a *Agent) handleDeliveries(w http.ResponseWriter, r *http.Request) {
	ds := a.Deliveries()
	if ds == nil {
		ds = []DeliveryRec{}
	}
	writeJSON(w, http.StatusOK, ds)
}

func (a *Agent) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, err := a.Status()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func procParam(r *http.Request, name string) (graph.ProcessID, error) {
	v, err := strconv.Atoi(r.URL.Query().Get(name))
	if err != nil {
		return 0, fmt.Errorf("bad %s: %w", name, err)
	}
	return graph.ProcessID(v), nil
}

func (a *Agent) handleQuiesce(w http.ResponseWriter, r *http.Request) {
	target, err := procParam(r, "target")
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	rep, err := a.Quiesce(target)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

func (a *Agent) handleInject(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("POST to inject"))
		return
	}
	src, err := procParam(r, "src")
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	dst, err := procParam(r, "dst")
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	count := 1
	if c := r.URL.Query().Get("count"); c != "" {
		if count, err = strconv.Atoi(c); err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad count: %w", err))
			return
		}
	}
	payload := r.URL.Query().Get("payload")
	if payload == "" {
		payload = "inject"
	}
	rep, err := a.Inject(src, dst, count, payload)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}
