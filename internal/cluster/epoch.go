// Package cluster is the operator plane of an elastic SSMFP deployment:
// the machinery that turns a set of running msgpass networks into one
// administrable cluster whose membership changes at runtime.
//
// The protocol layer (internal/msgpass) already knows how to apply a
// membership epoch — a versioned (graph, draining, disabled) snapshot —
// to a running network with zero message loss; snap-stabilization is what
// makes that safe, because "the topology changed underneath a running
// network" is just one more arbitrary configuration to stabilize from.
// This package adds the distribution and orchestration around it:
//
//   - Epoch: the wire form of a membership epoch — JSON-serializable, so
//     it can be POSTed at a node's admin endpoint — plus its compilation
//     into the msgpass form (frozen graph, validated member connectivity).
//   - Agent: the node side. It applies epochs to the local network,
//     answers status/quiesce probes, injects test load, and mounts all of
//     it on the node's debug HTTP mux.
//   - Manager: the operator side. It owns the desired topology (a
//     graph.Topology), stamps strictly increasing epoch sequence numbers,
//     broadcasts each epoch to every attached node, and sequences the
//     multi-step operations — join, graceful link cut, drain-and-detach,
//     rolling restart — that need quiescence polling between epochs.
//   - Client: the pipe between them. An *Agent is itself a Client (the
//     in-process deployment), and HTTPClient speaks the admin endpoints
//     (the multi-process deployment).
package cluster

import (
	"fmt"

	"ssmfp/internal/graph"
	"ssmfp/internal/msgpass"
)

// Epoch is the wire form of one membership epoch: everything a node needs
// to reconfigure itself, in a shape that serializes to JSON and says
// nothing about in-process types. Slots is the allocated slot-space size
// (grow-only across a cluster's lifetime); membership is implied by the
// edge set — a slot on no edge is absent (an isolated slot the protocol
// refuses traffic for) — matching the protocol layer's member definition.
//
// Draining lists members that must quiesce: they refuse new injections,
// hand off buffered work, and advertise themselves as a route candidate
// for nothing but their own traffic. Disabled lists edges that remain up
// on the wire but are excluded from routing — phase one of a graceful
// link cut. Addrs carries the peer address book for TCP deployments; a
// node learns a joiner's listen address from the epoch that admits it.
type Epoch struct {
	Seq      uint64                     `json:"seq"`
	Slots    int                        `json:"slots"`
	Edges    [][2]graph.ProcessID       `json:"edges"`
	Draining []graph.ProcessID          `json:"draining,omitempty"`
	Disabled [][2]graph.ProcessID       `json:"disabled,omitempty"`
	Addrs    map[graph.ProcessID]string `json:"addrs,omitempty"`
}

// Build compiles the wire epoch into the protocol layer's form, running
// the same validation an operator-side Topology would: edge endpoints in
// range, no self-loops or duplicate edges, and the member set (slots with
// at least one incident edge) mutually connected. The result carries a
// frozen graph ready for Network.ApplyEpoch.
func (e Epoch) Build() (msgpass.Epoch, error) {
	if e.Slots <= 0 {
		return msgpass.Epoch{}, fmt.Errorf("cluster: epoch %d: slots = %d, want > 0", e.Seq, e.Slots)
	}
	onEdge := make([]bool, e.Slots)
	for _, ed := range e.Edges {
		for _, p := range ed {
			if int(p) < 0 || int(p) >= e.Slots {
				return msgpass.Epoch{}, fmt.Errorf("cluster: epoch %d: edge (%d,%d) endpoint outside %d slots", e.Seq, ed[0], ed[1], e.Slots)
			}
			onEdge[p] = true
		}
	}
	topo := graph.NewTopology(graph.New(e.Slots))
	if e.Slots > 1 {
		for p, on := range onEdge {
			if !on {
				if err := topo.RemoveNode(graph.ProcessID(p)); err != nil {
					return msgpass.Epoch{}, err
				}
			}
		}
	}
	for _, ed := range e.Edges {
		if err := topo.AddEdge(ed[0], ed[1]); err != nil {
			return msgpass.Epoch{}, fmt.Errorf("cluster: epoch %d: %w", e.Seq, err)
		}
	}
	for _, d := range e.Draining {
		if !topo.HasNode(d) {
			return msgpass.Epoch{}, fmt.Errorf("cluster: epoch %d: draining %d is not a member", e.Seq, d)
		}
	}
	for _, ed := range e.Disabled {
		if !topo.HasEdge(ed[0], ed[1]) {
			return msgpass.Epoch{}, fmt.Errorf("cluster: epoch %d: disabled edge (%d,%d) not in the edge set", e.Seq, ed[0], ed[1])
		}
	}
	g, err := topo.Build()
	if err != nil {
		return msgpass.Epoch{}, fmt.Errorf("cluster: epoch %d: %w", e.Seq, err)
	}
	return msgpass.Epoch{Seq: e.Seq, Graph: g, Draining: e.Draining, Disabled: e.Disabled}, nil
}
