package cluster_test

import (
	"encoding/json"
	"errors"
	"net/http/httptest"
	"reflect"
	"strconv"
	"sync"
	"testing"
	"time"

	"ssmfp/internal/cluster"
	"ssmfp/internal/graph"
	"ssmfp/internal/msgpass"
	"ssmfp/internal/telemetry"
	"ssmfp/internal/transport"
)

// oracle is the exactly-once ledger shared by every network of an
// in-process cluster: senders record accepted UIDs, every network's
// OnDeliver hook records consumptions, and check asserts the bijection.
type oracle struct {
	mu   sync.Mutex
	sent map[string]bool
	seen map[string]int
}

func newOracle() *oracle {
	return &oracle{sent: make(map[string]bool), seen: make(map[string]int)}
}

// ledgerKey identifies one message across node incarnations: a restarted
// node is a fresh incarnation whose UID stream restarts (exactly like its
// handshake sequences), so the ledger disambiguates by what was sent.
func ledgerKey(payload string, uid uint64) string {
	return payload + "#" + strconv.FormatUint(uid, 10)
}

func (o *oracle) hook(d msgpass.Delivery) {
	o.mu.Lock()
	o.seen[ledgerKey(d.Msg.Payload, d.Msg.UID)]++
	o.mu.Unlock()
}

func (o *oracle) addSent(payload string, uid uint64) {
	o.mu.Lock()
	o.sent[ledgerKey(payload, uid)] = true
	o.mu.Unlock()
}

func (o *oracle) addAll(payload string, uids []uint64) {
	o.mu.Lock()
	for _, uid := range uids {
		o.sent[ledgerKey(payload, uid)] = true
	}
	o.mu.Unlock()
}

// outstanding counts sent UIDs not yet delivered at least once.
func (o *oracle) outstanding() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	n := 0
	for k := range o.sent {
		if o.seen[k] == 0 {
			n++
		}
	}
	return n
}

func (o *oracle) waitAll(t *testing.T, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for o.outstanding() > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("%d sent messages never delivered", o.outstanding())
		}
		time.Sleep(time.Millisecond)
	}
}

func (o *oracle) check(t *testing.T) {
	t.Helper()
	o.mu.Lock()
	defer o.mu.Unlock()
	for k := range o.sent {
		switch c := o.seen[k]; {
		case c == 0:
			t.Errorf("message %s lost", k)
		case c > 1:
			t.Errorf("message %s delivered %d times", k, c)
		}
	}
}

// elastic is an in-process multi-network cluster: one shared channel
// transport, one single-processor Network per member (the in-process
// image of one OS process per node), agents wired to a Manager as direct
// clients.
type elastic struct {
	t      *testing.T
	tr     *transport.Chan
	mgr    *cluster.Manager
	oracle *oracle

	mu   sync.Mutex
	nets map[graph.ProcessID]*msgpass.Network
	all  []*msgpass.Network // every network ever spawned, for cleanup
}

func newElastic(t *testing.T, g *graph.Graph) *elastic {
	t.Helper()
	ec := &elastic{
		t:      t,
		tr:     transport.NewChan(g, 256),
		mgr:    cluster.NewManager(graph.NewTopology(g)),
		oracle: newOracle(),
		nets:   make(map[graph.ProcessID]*msgpass.Network),
	}
	for _, p := range g.Processors() {
		ec.mgr.Attach(p, ec.spawn(p, g), "")
	}
	t.Cleanup(func() {
		ec.mu.Lock()
		nets := append([]*msgpass.Network(nil), ec.all...)
		ec.mu.Unlock()
		for _, nw := range nets {
			nw.Stop()
		}
		ec.tr.Close()
	})
	return ec
}

// spawn boots one node: a fresh single-processor Network on g over the
// shared transport. The caller must have announced any new links with
// EnsureLink first — that is the joining process bringing up its wire.
func (ec *elastic) spawn(id graph.ProcessID, g *graph.Graph) *cluster.Agent {
	nw := msgpass.New(g, msgpass.Options{
		Seed:      100 + int64(id),
		Transport: ec.tr,
		Procs:     []graph.ProcessID{id},
		OnDeliver: ec.oracle.hook,
		Telemetry: telemetry.New(),
	})
	nw.Start()
	ec.mu.Lock()
	ec.nets[id] = nw
	ec.all = append(ec.all, nw)
	ec.mu.Unlock()
	return cluster.NewAgent(nw, nil)
}

func (ec *elastic) net(id graph.ProcessID) *msgpass.Network {
	ec.mu.Lock()
	defer ec.mu.Unlock()
	return ec.nets[id]
}

// ensureWire brings up both directions of every edge incident to id in g
// on the shared transport — what a joining process's listener and dials
// do in a TCP deployment.
func (ec *elastic) ensureWire(id graph.ProcessID, g *graph.Graph) {
	for _, q := range g.Neighbors(id) {
		if err := ec.tr.EnsureLink(id, q); err != nil {
			ec.t.Fatal(err)
		}
		if err := ec.tr.EnsureLink(q, id); err != nil {
			ec.t.Fatal(err)
		}
	}
}

// TestClusterChurnUnderLoad is the in-process image of the spawn judge's
// scenario: against sustained load, a node joins, a chord is added, a
// link is cut gracefully, and a node drains out — with exactly-once
// asserted over everything sent.
func TestClusterChurnUnderLoad(t *testing.T) {
	ec := newElastic(t, graph.Ring(5))
	mgr := ec.mgr

	// Sustained load between members that stay put throughout.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for _, sd := range [][2]graph.ProcessID{{0, 2}, {2, 0}, {4, 2}} {
		wg.Add(1)
		go func(src, dst graph.ProcessID) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if uid, err := ec.net(src).Send(src, "churn", dst); err == nil {
					ec.oracle.addSent("churn", uid)
				}
				time.Sleep(200 * time.Microsecond)
			}
		}(sd[0], sd[1])
	}

	// Node 5 joins with links to 0 and 2. The joining process boots on
	// the post-join topology and brings up its wire; the Manager's epoch
	// then tells the rest of the cluster.
	jt := mgr.Topology()
	if err := jt.AddNodeID(5); err != nil {
		t.Fatal(err)
	}
	for _, q := range []graph.ProcessID{0, 2} {
		if err := jt.AddEdge(5, q); err != nil {
			t.Fatal(err)
		}
	}
	jg, err := jt.Build()
	if err != nil {
		t.Fatal(err)
	}
	ec.ensureWire(5, jg)
	joiner := ec.spawn(5, jg)
	if err := mgr.JoinNode(5, "", joiner, 0, 2); err != nil {
		t.Fatalf("JoinNode: %v", err)
	}

	// Live injection through the operator plane, to and from the joiner.
	rep, err := mgr.Inject(5, 1, 20, "from-joiner")
	if err != nil || rep.Sent != 20 {
		t.Fatalf("Inject from joiner: rep=%+v err=%v", rep, err)
	}
	ec.oracle.addAll("from-joiner", rep.UIDs)
	rep, err = mgr.Inject(1, 5, 20, "to-joiner")
	if err != nil || rep.Sent != 20 {
		t.Fatalf("Inject to joiner: rep=%+v err=%v", rep, err)
	}
	ec.oracle.addAll("to-joiner", rep.UIDs)

	// Add a chord, then cut a ring edge gracefully (two-phase).
	if err := mgr.AddLink(1, 3); err != nil {
		t.Fatalf("AddLink: %v", err)
	}
	if err := mgr.CutLink(2, 3); err != nil {
		t.Fatalf("CutLink: %v", err)
	}

	// Drain node 3 out under load. Nothing targets 3, so the cluster
	// quiesces its remaining work for 3 and detaches it.
	if _, err := mgr.Drain(3); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if _, err := ec.net(3).Send(3, "late", 0); !errors.Is(err, msgpass.ErrNotLocal) {
		t.Fatalf("Send at drained node: err = %v, want ErrNotLocal", err)
	}

	close(stop)
	wg.Wait()
	ec.oracle.waitAll(t, 30*time.Second)
	ec.oracle.check(t)

	// Every surviving node converged to the Manager's epoch.
	st := mgr.Status()
	if len(st.Errors) != 0 {
		t.Fatalf("status errors: %v", st.Errors)
	}
	if got := len(st.Members); got != 5 {
		t.Fatalf("members = %d, want 5", got)
	}
	for id, ns := range st.Nodes {
		if ns.Epoch != st.Epoch.Seq {
			t.Errorf("node %d at epoch %d, manager at %d", id, ns.Epoch, st.Epoch.Seq)
		}
	}
}

// TestManagerRollingRestart cycles every member of a ring through
// drain → detach → readmit, with the restart hook booting a fresh
// network each time — the in-process image of restarting each OS
// process in turn.
func TestManagerRollingRestart(t *testing.T) {
	ec := newElastic(t, graph.Ring(4))
	mgr := ec.mgr

	rep, err := mgr.Inject(0, 2, 10, "pre")
	if err != nil || rep.Sent != 10 {
		t.Fatalf("pre-restart inject: rep=%+v err=%v", rep, err)
	}
	ec.oracle.addAll("pre", rep.UIDs)
	ec.oracle.waitAll(t, 10*time.Second)

	restarted := 0
	err = mgr.RollingRestart(func(id graph.ProcessID, e cluster.Epoch) (cluster.Client, error) {
		me, err := e.Build()
		if err != nil {
			return nil, err
		}
		ec.net(id).Stop() // the old process exits...
		ec.ensureWire(id, me.Graph)
		restarted++
		return ec.spawn(id, me.Graph), nil // ...and a fresh one boots
	})
	if err != nil {
		t.Fatalf("RollingRestart: %v", err)
	}
	if restarted != 4 {
		t.Fatalf("restarted %d nodes, want 4", restarted)
	}

	// The restarted cluster is whole: ring edges restored, heal chords
	// removed, and traffic flows between every pair.
	topo := mgr.Topology()
	want := graph.NewTopology(graph.Ring(4))
	if !reflect.DeepEqual(topo.Edges(), want.Edges()) {
		t.Fatalf("edges after restart = %v, want %v", topo.Edges(), want.Edges())
	}
	for _, sd := range [][2]graph.ProcessID{{0, 2}, {1, 3}, {3, 0}} {
		rep, err := mgr.Inject(sd[0], sd[1], 5, "post")
		if err != nil || rep.Sent != 5 {
			t.Fatalf("post-restart inject %v: rep=%+v err=%v", sd, rep, err)
		}
		ec.oracle.addAll("post", rep.UIDs)
	}
	ec.oracle.waitAll(t, 15*time.Second)
	ec.oracle.check(t)
}

// TestHTTPAdmin drives the whole admin surface over real HTTP against a
// single-process deployment (one Network running every processor).
func TestHTTPAdmin(t *testing.T) {
	orc := newOracle()
	nw := msgpass.New(graph.Ring(3), msgpass.Options{Seed: 23, OnDeliver: orc.hook})
	nw.Start()
	defer nw.Stop()
	agent := cluster.NewAgent(nw, nil)
	srv := httptest.NewServer(agent.Handler())
	defer srv.Close()
	hc := cluster.NewHTTPClient(srv.URL)

	st, err := hc.Status()
	if err != nil {
		t.Fatalf("Status: %v", err)
	}
	if st.Epoch != 0 || len(st.Members) != 3 || len(st.Local) != 3 {
		t.Fatalf("boot status = %+v", st)
	}

	rep, err := hc.Inject(0, 2, 5, "via-http")
	if err != nil || rep.Sent != 5 || len(rep.UIDs) != 5 {
		t.Fatalf("Inject: rep=%+v err=%v", rep, err)
	}
	orc.addAll("via-http", rep.UIDs)
	orc.waitAll(t, 10*time.Second)

	if _, err := hc.Inject(0, 2, 0, ""); err == nil {
		t.Fatal("Inject count=0 accepted")
	}

	// Grow the cluster over the wire: slot 3 joins with two links. The
	// all-processor network adopts the new member itself.
	ring := graph.NewTopology(graph.Ring(3))
	if err := ring.AddNodeID(3); err != nil {
		t.Fatal(err)
	}
	for _, q := range []graph.ProcessID{0, 1} {
		if err := ring.AddEdge(3, q); err != nil {
			t.Fatal(err)
		}
	}
	e := cluster.Epoch{Seq: 1, Slots: ring.Cap(), Edges: ring.Edges()}
	if err := hc.Apply(e); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if got := nw.CurrentEpoch(); got != 1 {
		t.Fatalf("epoch after Apply = %d", got)
	}
	if got := len(nw.Members()); got != 4 {
		t.Fatalf("members after Apply = %d", got)
	}

	// Stale sequence → 409 → ErrStaleEpoch through the client.
	if err := hc.Apply(e); !errors.Is(err, msgpass.ErrStaleEpoch) {
		t.Fatalf("stale Apply err = %v, want ErrStaleEpoch", err)
	}

	// The joiner carries traffic and answers quiesce probes.
	rep, err = hc.Inject(3, 2, 5, "joiner")
	if err != nil || rep.Sent != 5 {
		t.Fatalf("joiner Inject: rep=%+v err=%v", rep, err)
	}
	orc.addAll("joiner", rep.UIDs)
	orc.waitAll(t, 10*time.Second)
	orc.check(t)

	deadline := time.Now().Add(5 * time.Second)
	for {
		q, err := hc.Quiesce(3)
		if err != nil {
			t.Fatalf("Quiesce: %v", err)
		}
		if !q.Local {
			t.Fatalf("Quiesce(3).Local = false: %+v", q)
		}
		if q.Drained() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("node 3 never quiesced: %+v", q)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestEpochWire pins the wire format: an Epoch survives a JSON round
// trip, and Build rejects the malformed shapes an operator could POST.
func TestEpochWire(t *testing.T) {
	e := cluster.Epoch{
		Seq:      7,
		Slots:    5,
		Edges:    [][2]graph.ProcessID{{0, 1}, {1, 2}, {2, 3}},
		Draining: []graph.ProcessID{3},
		Disabled: [][2]graph.ProcessID{{1, 2}},
		Addrs:    map[graph.ProcessID]string{4: "127.0.0.1:9999"},
	}
	blob, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	var back cluster.Epoch
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(e, back) {
		t.Fatalf("round trip: %+v != %+v", back, e)
	}

	me, err := e.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if me.Seq != 7 || me.Graph.N() != 5 || me.Graph.Degree(4) != 0 {
		t.Fatalf("built epoch: seq=%d n=%d deg4=%d", me.Seq, me.Graph.N(), me.Graph.Degree(4))
	}

	bad := []cluster.Epoch{
		{Seq: 1, Slots: 0},
		{Seq: 1, Slots: 2, Edges: [][2]graph.ProcessID{{0, 2}}},
		{Seq: 1, Slots: 2, Edges: [][2]graph.ProcessID{{0, 0}}},
		{Seq: 1, Slots: 4, Edges: [][2]graph.ProcessID{{0, 1}, {2, 3}}},
		{Seq: 1, Slots: 3, Edges: [][2]graph.ProcessID{{0, 1}}, Draining: []graph.ProcessID{2}},
		{Seq: 1, Slots: 3, Edges: [][2]graph.ProcessID{{0, 1}}, Disabled: [][2]graph.ProcessID{{1, 2}}},
	}
	for i, b := range bad {
		if _, err := b.Build(); err == nil {
			t.Errorf("bad[%d] built: %+v", i, b)
		}
	}
}
