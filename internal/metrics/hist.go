package metrics

import (
	"encoding/json"
	"fmt"
	"math"
	"math/bits"
)

// Log-linear bucket layout of LatencyHist: values below histSub land in
// exact unit buckets; above that, every power-of-two octave is split into
// histSub equal sub-buckets, so the relative bucket width — and therefore
// the worst-case quantile error — is bounded by 1/histSub (12.5%).
const (
	histSubBits = 3
	histSub     = 1 << histSubBits
	histBuckets = (64 - histSubBits) * histSub
)

// HistBuckets is the number of buckets in the shared log-linear layout.
// The telemetry registry's lock-free histograms accumulate into the same
// bucket space (via HistBucketIndex) and reconstruct a LatencyHist with
// HistFromCounts, so node-side and collector-side histograms merge and
// quantile identically.
const HistBuckets = histBuckets

// HistBucketIndex maps a value to its bucket index in the shared layout;
// negative values clamp to bucket 0.
func HistBucketIndex(v int64) int { return histBucketOf(v) }

// HistBucketRange returns the half-open value range [lo, hi) of bucket i.
func HistBucketRange(i int) (lo, hi int64) { return histBucketBounds(i) }

// HistFromCounts reconstructs a LatencyHist from externally accumulated
// state: per-bucket counts in the shared layout plus the scalar summary.
// counts longer than HistBuckets panics; shorter is zero-padded. min/max
// are ignored when count is 0.
func HistFromCounts(counts []int64, count, sum, min, max int64) LatencyHist {
	if len(counts) > histBuckets {
		panic("metrics: HistFromCounts: too many buckets")
	}
	var h LatencyHist
	copy(h.counts[:], counts)
	h.count, h.sum = count, sum
	if count > 0 {
		h.min, h.max = min, max
	}
	return h
}

// LatencyHist is a mergeable log-bucketed histogram of non-negative int64
// observations (the load subsystem feeds it latencies in nanoseconds).
// Like Agg it never holds the sample: independent shards fold their own
// observations and combine associatively with Merge, and — unlike Agg's
// floating-point moments — every field is an integer, so merge order
// cannot perturb the result. Quantiles are read from bucket bounds and are
// exact up to the bucket width.
//
// The zero value is an empty, usable histogram.
type LatencyHist struct {
	counts [histBuckets]int64
	count  int64
	sum    int64
	min    int64
	max    int64
}

// histBucketOf maps a value to its bucket index. Negative values clamp to
// bucket 0 (the collector clamps clock skew the same way; counting it at
// zero beats dropping the sample).
func histBucketOf(v int64) int {
	if v < histSub {
		if v < 0 {
			return 0
		}
		return int(v)
	}
	exp := bits.Len64(uint64(v)) - 1
	frac := (v >> (uint(exp) - histSubBits)) & (histSub - 1)
	return (exp-histSubBits+1)*histSub + int(frac)
}

// histBucketBounds returns the half-open value range [lo, hi) of bucket i.
func histBucketBounds(i int) (lo, hi int64) {
	if i < histSub {
		return int64(i), int64(i) + 1
	}
	exp := i/histSub + histSubBits - 1
	width := int64(1) << (uint(exp) - histSubBits)
	lo = (histSub + int64(i%histSub)) << (uint(exp) - histSubBits)
	return lo, lo + width
}

// Add folds one observation into the histogram.
func (h *LatencyHist) Add(v int64) {
	if v < 0 {
		v = 0
	}
	if h.count == 0 {
		h.min, h.max = v, v
	} else {
		if v < h.min {
			h.min = v
		}
		if v > h.max {
			h.max = v
		}
	}
	h.counts[histBucketOf(v)]++
	h.count++
	h.sum += v
}

// Merge folds another histogram into h. Merging an empty histogram is a
// no-op; merge order never changes the result (all fields are integers).
func (h *LatencyHist) Merge(o *LatencyHist) {
	if o == nil || o.count == 0 {
		return
	}
	if h.count == 0 {
		*h = *o
		return
	}
	if o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.count += o.count
	h.sum += o.sum
}

// Count returns the number of folded observations.
func (h *LatencyHist) Count() int64 { return h.count }

// Sum returns the total of all folded observations.
func (h *LatencyHist) Sum() int64 { return h.sum }

// Min returns the smallest observation (0 when empty).
func (h *LatencyHist) Min() int64 {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest observation (0 when empty).
func (h *LatencyHist) Max() int64 {
	if h.count == 0 {
		return 0
	}
	return h.max
}

// Mean returns the arithmetic mean (0 when empty).
func (h *LatencyHist) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Quantile returns the q-quantile (q in [0,1]) as the inclusive upper
// bound of the bucket holding the rank, clamped to the observed [min,
// max]. An empty histogram returns 0. Quantile(0.5) of one observation is
// that observation.
func (h *LatencyHist) Quantile(q float64) int64 {
	if h.count == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	if rank > h.count {
		rank = h.count
	}
	var cum int64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			_, hi := histBucketBounds(i)
			v := hi - 1
			if v > h.max {
				v = h.max
			}
			if v < h.min {
				v = h.min
			}
			return v
		}
	}
	return h.max // unreachable: cum reaches count
}

// HistBucket is one non-empty bucket of a LatencyHist: the half-open
// value range [Lo, Hi) and its count.
type HistBucket struct {
	Lo    int64 `json:"lo"`
	Hi    int64 `json:"hi"`
	Count int64 `json:"count"`
}

// Buckets lists the non-empty buckets in increasing value order.
func (h *LatencyHist) Buckets() []HistBucket {
	var out []HistBucket
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		lo, hi := histBucketBounds(i)
		out = append(out, HistBucket{Lo: lo, Hi: hi, Count: c})
	}
	return out
}

// histJSON is the wire image of a LatencyHist: scalar summary plus the
// sparse [index, count] pairs of the non-empty buckets.
type histJSON struct {
	Count   int64      `json:"count"`
	Sum     int64      `json:"sum"`
	Min     int64      `json:"min"`
	Max     int64      `json:"max"`
	Buckets [][2]int64 `json:"buckets,omitempty"`
}

// MarshalJSON encodes the histogram sparsely (only non-empty buckets).
func (h *LatencyHist) MarshalJSON() ([]byte, error) {
	out := histJSON{Count: h.count, Sum: h.sum, Min: h.Min(), Max: h.Max()}
	for i, c := range h.counts {
		if c != 0 {
			out.Buckets = append(out.Buckets, [2]int64{int64(i), c})
		}
	}
	return json.Marshal(out)
}

// UnmarshalJSON decodes the sparse form written by MarshalJSON.
func (h *LatencyHist) UnmarshalJSON(b []byte) error {
	var in histJSON
	if err := json.Unmarshal(b, &in); err != nil {
		return err
	}
	*h = LatencyHist{count: in.Count, sum: in.Sum, min: in.Min, max: in.Max}
	for _, p := range in.Buckets {
		if p[0] < 0 || p[0] >= histBuckets {
			return fmt.Errorf("metrics: histogram bucket index %d out of range", p[0])
		}
		h.counts[p[0]] = p[1]
	}
	return nil
}
