// Package metrics provides the small statistics toolkit the experiment
// harness reports with: summary statistics, histograms, linear regression
// for scaling checks (e.g. "amortized rounds per delivery grow linearly in
// D", Proposition 7), and aligned ASCII tables for the paper-style output
// of cmd/ssmfp-bench.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary holds the usual descriptive statistics of a sample.
type Summary struct {
	N             int
	Min, Max      float64
	Mean, Stddev  float64
	P50, P90, P99 float64
}

// Summarize computes a Summary; it returns a zero Summary for an empty
// sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	varsum := 0.0
	for _, x := range xs {
		d := x - s.Mean
		varsum += d * d
	}
	if len(xs) > 1 {
		s.Stddev = math.Sqrt(varsum / float64(len(xs)-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.P50 = Percentile(sorted, 50)
	s.P90 = Percentile(sorted, 90)
	s.P99 = Percentile(sorted, 99)
	return s
}

// Percentile returns the p-th percentile (nearest-rank) of a sorted
// sample. It trusts the caller: the input is never verified and an
// unsorted sample silently yields the wrong order statistic, not a panic.
// An empty sample returns 0.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return sorted[rank]
}

// IntsToFloats converts a sample of ints.
func IntsToFloats(xs []int) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}

// Fit is a least-squares line y = Slope*x + Intercept with goodness R2.
type Fit struct {
	Slope, Intercept, R2 float64
}

// LinearFit fits a least-squares line through (x, y). It panics on
// mismatched lengths and returns a zero fit for fewer than two points.
func LinearFit(xs, ys []float64) Fit {
	if len(xs) != len(ys) {
		panic(fmt.Sprintf("metrics: LinearFit length mismatch %d vs %d", len(xs), len(ys)))
	}
	n := float64(len(xs))
	if len(xs) < 2 {
		return Fit{}
	}
	var sx, sy, sxx, sxy, syy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
		syy += ys[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return Fit{Intercept: sy / n}
	}
	f := Fit{}
	f.Slope = (n*sxy - sx*sy) / den
	f.Intercept = (sy - f.Slope*sx) / n
	ssTot := syy - sy*sy/n
	if ssTot == 0 {
		f.R2 = 1
	} else {
		ssRes := 0.0
		for i := range xs {
			r := ys[i] - (f.Slope*xs[i] + f.Intercept)
			ssRes += r * r
		}
		f.R2 = 1 - ssRes/ssTot
	}
	return f
}

// Histogram counts samples into equal-width bins over [min, max].
type Histogram struct {
	Min, Max float64
	Counts   []int
	Total    int
}

// NewHistogram builds a histogram with the given bin count over the sample
// range (a single degenerate bin if all values are equal).
func NewHistogram(xs []float64, bins int) *Histogram {
	if bins < 1 {
		bins = 1
	}
	h := &Histogram{Counts: make([]int, bins)}
	if len(xs) == 0 {
		return h
	}
	h.Min, h.Max = xs[0], xs[0]
	for _, x := range xs {
		if x < h.Min {
			h.Min = x
		}
		if x > h.Max {
			h.Max = x
		}
	}
	span := h.Max - h.Min
	for _, x := range xs {
		i := 0
		if span > 0 {
			i = int((x - h.Min) / span * float64(bins))
			if i >= bins {
				i = bins - 1
			}
		}
		h.Counts[i]++
		h.Total++
	}
	return h
}

// Render draws the histogram as ASCII bars of at most width characters.
func (h *Histogram) Render(width int) string {
	if width < 1 {
		width = 40
	}
	max := 0
	for _, c := range h.Counts {
		if c > max {
			max = c
		}
	}
	var sb strings.Builder
	span := h.Max - h.Min
	for i, c := range h.Counts {
		lo := h.Min + span*float64(i)/float64(len(h.Counts))
		hi := h.Min + span*float64(i+1)/float64(len(h.Counts))
		bar := 0
		if max > 0 {
			bar = c * width / max
		}
		fmt.Fprintf(&sb, "[%8.1f, %8.1f) %6d %s\n", lo, hi, c, strings.Repeat("#", bar))
	}
	return sb.String()
}

// Table renders aligned ASCII tables, the output format of the experiment
// harness.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with a title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// Title returns the table's title.
func (t *Table) Title() string { return t.title }

// AppendFrom appends o's rows to t when the two tables have the same
// title and headers, reporting whether the merge happened. The campaign
// runner uses it to reassemble the legacy one-table-per-experiment
// output from per-cell single-row tables, in cell order.
func (t *Table) AppendFrom(o *Table) bool {
	if o == nil || t.title != o.title || len(t.headers) != len(o.headers) {
		return false
	}
	for i := range t.headers {
		if t.headers[i] != o.headers[i] {
			return false
		}
	}
	t.rows = append(t.rows, o.rows...)
	return true
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	if t.title != "" {
		fmt.Fprintf(&sb, "== %s ==\n", t.title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteString("\n")
	}
	writeRow(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	return sb.String()
}
