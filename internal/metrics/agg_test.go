package metrics

import (
	"math"
	"testing"
)

// TestAggMerge: merging shards must reproduce the single-stream
// aggregate (exactly for count/min/max/sum, to rounding for variance).
func TestAggMerge(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7}
	var whole Agg
	for _, x := range xs {
		whole.Add(x)
	}
	var a, b Agg
	for i, x := range xs {
		if i < 5 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(b)
	if a.Count != whole.Count || a.Min != whole.Min || a.Max != whole.Max {
		t.Errorf("merged = %+v, whole = %+v", a, whole)
	}
	if math.Abs(a.Sum()-whole.Sum()) > 1e-9 {
		t.Errorf("sum: merged %v, whole %v", a.Sum(), whole.Sum())
	}
	if math.Abs(a.Stddev()-whole.Stddev()) > 1e-9 {
		t.Errorf("stddev: merged %v, whole %v", a.Stddev(), whole.Stddev())
	}
}

func TestAggEmpty(t *testing.T) {
	var a, b Agg
	a.Merge(b)
	if a.Count != 0 || a.Sum() != 0 || a.Stddev() != 0 {
		t.Errorf("empty merge not empty: %+v", a)
	}
	b.Add(2)
	a.Merge(b)
	if a.Count != 1 || a.Mean != 2 || a.Min != 2 || a.Max != 2 {
		t.Errorf("merge into empty: %+v", a)
	}
}

// TestAppendFrom: same title and headers merge; anything else refuses.
func TestAppendFrom(t *testing.T) {
	a := NewTable("T", "x", "y")
	a.AddRow(1, 2)
	b := NewTable("T", "x", "y")
	b.AddRow(3, 4)
	if !a.AppendFrom(b) || a.Rows() != 2 {
		t.Errorf("merge failed: rows=%d", a.Rows())
	}
	c := NewTable("other", "x", "y")
	if a.AppendFrom(c) {
		t.Error("merged across titles")
	}
	d := NewTable("T", "x", "z")
	if a.AppendFrom(d) {
		t.Error("merged across headers")
	}
	if a.AppendFrom(nil) {
		t.Error("merged nil")
	}
}
