package metrics

import "testing"

// TestLatencyHistAddAllocFree pins the per-delivery accounting cost: the
// collector calls Add once per measured delivery on the hot path, so it
// must never allocate (the buckets are a fixed array, not a map).
func TestLatencyHistAddAllocFree(t *testing.T) {
	var h LatencyHist
	v := int64(1)
	if allocs := testing.AllocsPerRun(500, func() {
		h.Add(v)
		v = v*31 + 7
	}); allocs > 0 {
		t.Fatalf("LatencyHist.Add allocates %.1f times per call, want 0", allocs)
	}
}
