package metrics

import (
	"encoding/json"
	"math/rand"
	"sort"
	"testing"
)

func TestHistBucketLayout(t *testing.T) {
	// Every bucket's bounds must round-trip through bucketOf, and
	// consecutive buckets must tile the value range without gaps.
	prevHi := int64(0)
	for i := 0; i < histBuckets; i++ {
		lo, hi := histBucketBounds(i)
		if lo != prevHi {
			t.Fatalf("bucket %d starts at %d, previous ended at %d", i, lo, prevHi)
		}
		if hi <= lo && i != histBuckets-1 {
			t.Fatalf("bucket %d empty range [%d,%d)", i, lo, hi)
		}
		if got := histBucketOf(lo); got != i {
			t.Fatalf("bucketOf(%d) = %d, want %d", lo, got, i)
		}
		if hi-1 > lo {
			if got := histBucketOf(hi - 1); got != i {
				t.Fatalf("bucketOf(%d) = %d, want %d", hi-1, got, i)
			}
		}
		prevHi = hi
	}
}

func TestHistQuantileBoundedError(t *testing.T) {
	// Against a sorted sample, every quantile must land within one bucket
	// width (≤ 12.5% relative) of the exact order statistic.
	rng := rand.New(rand.NewSource(42))
	var h LatencyHist
	xs := make([]int64, 0, 5000)
	for i := 0; i < 5000; i++ {
		v := int64(rng.ExpFloat64() * 1e6) // exponential latencies around 1ms
		xs = append(xs, v)
		h.Add(v)
	}
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		rank := int(q*float64(len(xs))+0.5) - 1
		if rank < 0 {
			rank = 0
		}
		exact := xs[rank]
		got := h.Quantile(q)
		if got < exact/2 || got > exact*2 {
			t.Fatalf("q%.3f = %d, exact %d: outside sanity band", q, got, exact)
		}
		lo := float64(exact) * (1 - 2.0/histSub)
		hi := float64(exact)*(1+2.0/histSub) + 2
		if float64(got) < lo || float64(got) > hi {
			t.Errorf("q%.3f = %d, exact %d: outside bucket-width band [%.0f, %.0f]", q, got, exact, lo, hi)
		}
	}
}

func TestHistMergeEqualsWhole(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var whole, a, b LatencyHist
	for i := 0; i < 2000; i++ {
		v := int64(rng.Intn(1 << 20))
		whole.Add(v)
		if i%2 == 0 {
			a.Add(v)
		} else {
			b.Add(v)
		}
	}
	a.Merge(&b)
	if a.Count() != whole.Count() || a.Sum() != whole.Sum() ||
		a.Min() != whole.Min() || a.Max() != whole.Max() {
		t.Fatalf("merged summary differs: %d/%d sum %d/%d", a.Count(), whole.Count(), a.Sum(), whole.Sum())
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		if a.Quantile(q) != whole.Quantile(q) {
			t.Fatalf("q%.3f: merged %d != whole %d", q, a.Quantile(q), whole.Quantile(q))
		}
	}
	// Merge into empty adopts; merging empty is a no-op.
	var empty LatencyHist
	empty.Merge(&whole)
	if empty.Count() != whole.Count() {
		t.Fatal("merge into empty lost observations")
	}
	before := whole.Count()
	whole.Merge(&LatencyHist{})
	if whole.Count() != before {
		t.Fatal("merging an empty histogram changed the count")
	}
}

func TestHistJSONRoundTrip(t *testing.T) {
	var h LatencyHist
	for _, v := range []int64{0, 1, 7, 8, 1000, 123456789, -5} {
		h.Add(v)
	}
	b, err := json.Marshal(&h)
	if err != nil {
		t.Fatal(err)
	}
	var back LatencyHist
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Count() != h.Count() || back.Sum() != h.Sum() ||
		back.Min() != h.Min() || back.Max() != h.Max() {
		t.Fatalf("round trip summary mismatch: %+v vs %+v", back, h)
	}
	for _, q := range []float64{0.25, 0.5, 0.99} {
		if back.Quantile(q) != h.Quantile(q) {
			t.Fatalf("round trip quantile %.2f mismatch", q)
		}
	}
	if len(back.Buckets()) != len(h.Buckets()) {
		t.Fatalf("bucket lists differ: %v vs %v", back.Buckets(), h.Buckets())
	}
}

func TestHistEmptyAndSingle(t *testing.T) {
	var h LatencyHist
	if h.Quantile(0.5) != 0 || h.Count() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram must read as all zeros")
	}
	h.Add(41)
	for _, q := range []float64{0, 0.5, 1} {
		if got := h.Quantile(q); got != 41 {
			t.Fatalf("single-observation quantile %.1f = %d, want 41", q, got)
		}
	}
}
