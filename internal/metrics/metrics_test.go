package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2})
	if s.N != 4 || s.Min != 1 || s.Max != 4 {
		t.Fatalf("summary = %+v", s)
	}
	if !almost(s.Mean, 2.5) {
		t.Fatalf("mean = %v", s.Mean)
	}
	// Sample stddev of 1..4 is sqrt(5/3).
	if !almost(s.Stddev, math.Sqrt(5.0/3.0)) {
		t.Fatalf("stddev = %v", s.Stddev)
	}
	if s.P50 != 2 || s.P90 != 4 || s.P99 != 4 {
		t.Fatalf("percentiles = %v %v %v", s.P50, s.P90, s.P99)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{7})
	if s.Min != 7 || s.Max != 7 || s.Mean != 7 || s.Stddev != 0 || s.P50 != 7 {
		t.Fatalf("single summary = %+v", s)
	}
}

func TestPercentileEdges(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if Percentile(xs, 0) != 1 || Percentile(xs, 100) != 5 {
		t.Fatal("percentile edges wrong")
	}
	if Percentile(xs, 50) != 3 {
		t.Fatalf("p50 = %v", Percentile(xs, 50))
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty percentile must be 0")
	}
}

func TestIntsToFloats(t *testing.T) {
	fs := IntsToFloats([]int{1, 2, 3})
	if len(fs) != 3 || fs[2] != 3.0 {
		t.Fatalf("converted = %v", fs)
	}
}

func TestLinearFitExactLine(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{5, 7, 9, 11} // y = 2x + 3
	f := LinearFit(xs, ys)
	if !almost(f.Slope, 2) || !almost(f.Intercept, 3) || !almost(f.R2, 1) {
		t.Fatalf("fit = %+v", f)
	}
}

func TestLinearFitDegenerate(t *testing.T) {
	if f := LinearFit([]float64{1}, []float64{2}); f.Slope != 0 {
		t.Fatal("single point must give zero fit")
	}
	// Vertical data (all x equal): slope undefined, fall back to mean.
	f := LinearFit([]float64{2, 2, 2}, []float64{1, 2, 3})
	if !almost(f.Intercept, 2) {
		t.Fatalf("degenerate fit = %+v", f)
	}
	// Horizontal data: perfect fit with slope 0.
	f = LinearFit([]float64{1, 2, 3}, []float64{5, 5, 5})
	if !almost(f.Slope, 0) || !almost(f.R2, 1) {
		t.Fatalf("horizontal fit = %+v", f)
	}
}

func TestLinearFitMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	LinearFit([]float64{1}, []float64{1, 2})
}

func TestHistogramBinning(t *testing.T) {
	h := NewHistogram([]float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, 5)
	if h.Total != 10 {
		t.Fatalf("total = %d", h.Total)
	}
	for i, c := range h.Counts {
		if c != 2 {
			t.Fatalf("bin %d = %d, want 2", i, c)
		}
	}
}

func TestHistogramDegenerate(t *testing.T) {
	h := NewHistogram([]float64{3, 3, 3}, 4)
	if h.Counts[0] != 3 || h.Total != 3 {
		t.Fatalf("degenerate histogram = %+v", h)
	}
	empty := NewHistogram(nil, 0)
	if empty.Total != 0 || len(empty.Counts) != 1 {
		t.Fatalf("empty histogram = %+v", empty)
	}
}

func TestHistogramRender(t *testing.T) {
	h := NewHistogram([]float64{1, 1, 1, 5}, 2)
	out := h.Render(10)
	if !strings.Contains(out, "##########") {
		t.Fatalf("render missing full bar:\n%s", out)
	}
	lines := strings.Count(out, "\n")
	if lines != 2 {
		t.Fatalf("render lines = %d", lines)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("demo", "name", "value")
	tb.AddRow("alpha", 1)
	tb.AddRow("b", 2.5)
	out := tb.String()
	for _, want := range []string{"== demo ==", "name", "value", "alpha", "2.50", "-----"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
	if tb.Rows() != 2 {
		t.Fatalf("rows = %d", tb.Rows())
	}
}

// Property: Summarize respects Min ≤ P50 ≤ P90 ≤ P99 ≤ Max and
// Min ≤ Mean ≤ Max for any sample.
func TestQuickSummaryOrdering(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		s := Summarize(xs)
		return s.Min <= s.P50 && s.P50 <= s.P90 && s.P90 <= s.P99 && s.P99 <= s.Max &&
			s.Min <= s.Mean && s.Mean <= s.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: LinearFit recovers slope/intercept of noiseless lines.
func TestQuickLinearFitRecovers(t *testing.T) {
	f := func(slope, intercept int8, n uint8) bool {
		k := 2 + int(n)%20
		xs := make([]float64, k)
		ys := make([]float64, k)
		for i := 0; i < k; i++ {
			xs[i] = float64(i)
			ys[i] = float64(slope)*xs[i] + float64(intercept)
		}
		fit := LinearFit(xs, ys)
		return almost(fit.Slope, float64(slope)) && almost(fit.Intercept, float64(intercept))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
