package metrics

import "math"

// Agg is a mergeable running aggregate: count, min, max, mean and the
// centered second moment (Welford's M2). Unlike Summarize it never holds
// the sample, so independent workers can each fold their own cells and the
// partial aggregates combine associatively with Merge — the shape the
// campaign runner needs to aggregate incrementally without a barrier.
//
// Floating-point addition is not associative, so merging the same
// partials in a different order can change the low bits of Mean and M2.
// Callers that need bit-stable output (the campaign report) must either
// merge in a canonical order or keep Agg-derived numbers out of the
// deterministic sections; integer sums (Count, and Sum when the inputs
// are integers small enough to be exact in a float64) are exact and
// order-independent.
type Agg struct {
	Count int64   `json:"count"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Mean  float64 `json:"mean"`
	M2    float64 `json:"-"` // sum of squared deviations from the mean
}

// Add folds one observation into the aggregate.
func (a *Agg) Add(x float64) {
	a.Count++
	if a.Count == 1 {
		a.Min, a.Max = x, x
	} else {
		if x < a.Min {
			a.Min = x
		}
		if x > a.Max {
			a.Max = x
		}
	}
	d := x - a.Mean
	a.Mean += d / float64(a.Count)
	a.M2 += d * (x - a.Mean)
}

// Merge folds another aggregate into a (Chan et al.'s parallel variance
// update). Merging a zero Agg is a no-op.
func (a *Agg) Merge(b Agg) {
	if b.Count == 0 {
		return
	}
	if a.Count == 0 {
		*a = b
		return
	}
	if b.Min < a.Min {
		a.Min = b.Min
	}
	if b.Max > a.Max {
		a.Max = b.Max
	}
	n := float64(a.Count + b.Count)
	d := b.Mean - a.Mean
	a.M2 += b.M2 + d*d*float64(a.Count)*float64(b.Count)/n
	a.Mean += d * float64(b.Count) / n
	a.Count += b.Count
}

// Sum returns the total of all folded observations.
func (a Agg) Sum() float64 { return a.Mean * float64(a.Count) }

// Stddev returns the sample standard deviation (0 for fewer than two
// observations).
func (a Agg) Stddev() float64 {
	if a.Count < 2 {
		return 0
	}
	return math.Sqrt(a.M2 / float64(a.Count-1))
}
