package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewPanicsOnNonPositive(t *testing.T) {
	for _, n := range []int{0, -1, -100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d): expected panic", n)
				}
			}()
			New(n)
		}()
	}
}

func TestAddEdgeRejectsSelfLoop(t *testing.T) {
	g := New(3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on self-loop")
		}
	}()
	g.AddEdge(1, 1)
}

func TestAddEdgeRejectsDuplicate(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate edge")
		}
	}()
	g.AddEdge(1, 0)
}

func TestAddEdgeRejectsOutOfRange(t *testing.T) {
	g := New(3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range endpoint")
		}
	}()
	g.AddEdge(0, 3)
}

func TestFreezeRejectsDisconnected(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on disconnected graph")
		}
	}()
	g.Freeze()
}

func TestFreezeRejectsMutation(t *testing.T) {
	g := Line(3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on AddEdge after Freeze")
		}
	}()
	g.AddEdge(0, 2)
}

func TestLineProperties(t *testing.T) {
	g := Line(6)
	if g.N() != 6 || g.M() != 5 {
		t.Fatalf("got n=%d m=%d, want 6,5", g.N(), g.M())
	}
	if g.Diameter() != 5 {
		t.Errorf("diameter = %d, want 5", g.Diameter())
	}
	if g.MaxDegree() != 2 {
		t.Errorf("Δ = %d, want 2", g.MaxDegree())
	}
	if d := g.Dist(0, 5); d != 5 {
		t.Errorf("Dist(0,5) = %d, want 5", d)
	}
	if d := g.Dist(2, 2); d != 0 {
		t.Errorf("Dist(2,2) = %d, want 0", d)
	}
}

func TestRingProperties(t *testing.T) {
	g := Ring(8)
	if g.M() != 8 {
		t.Errorf("m = %d, want 8", g.M())
	}
	if g.Diameter() != 4 {
		t.Errorf("diameter = %d, want 4", g.Diameter())
	}
	if g.MaxDegree() != 2 {
		t.Errorf("Δ = %d, want 2", g.MaxDegree())
	}
	if d := g.Dist(0, 5); d != 3 {
		t.Errorf("Dist(0,5) = %d, want 3 (wraparound)", d)
	}
}

func TestRingRejectsTooSmall(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Ring(2)")
		}
	}()
	Ring(2)
}

func TestStarProperties(t *testing.T) {
	g := Star(7)
	if g.MaxDegree() != 6 {
		t.Errorf("Δ = %d, want 6", g.MaxDegree())
	}
	if g.Diameter() != 2 {
		t.Errorf("diameter = %d, want 2", g.Diameter())
	}
	if g.Degree(0) != 6 {
		t.Errorf("center degree = %d, want 6", g.Degree(0))
	}
	for p := ProcessID(1); p < 7; p++ {
		if g.Degree(p) != 1 {
			t.Errorf("leaf %d degree = %d, want 1", p, g.Degree(p))
		}
	}
}

func TestCompleteProperties(t *testing.T) {
	g := Complete(5)
	if g.M() != 10 {
		t.Errorf("m = %d, want 10", g.M())
	}
	if g.Diameter() != 1 {
		t.Errorf("diameter = %d, want 1", g.Diameter())
	}
	if g.MaxDegree() != 4 {
		t.Errorf("Δ = %d, want 4", g.MaxDegree())
	}
}

func TestBinaryTreeProperties(t *testing.T) {
	g := BinaryTree(7)
	if g.M() != 6 {
		t.Errorf("m = %d, want 6 (tree)", g.M())
	}
	if g.Diameter() != 4 {
		t.Errorf("diameter = %d, want 4", g.Diameter())
	}
	if g.Degree(0) != 2 || g.Degree(1) != 3 {
		t.Errorf("unexpected degrees: root=%d node1=%d", g.Degree(0), g.Degree(1))
	}
}

func TestGridProperties(t *testing.T) {
	g := Grid(3, 4)
	if g.N() != 12 {
		t.Fatalf("n = %d, want 12", g.N())
	}
	if g.M() != 3*3+2*4 { // horizontal + vertical
		t.Errorf("m = %d, want 17", g.M())
	}
	if g.Diameter() != 5 { // (3-1)+(4-1)
		t.Errorf("diameter = %d, want 5", g.Diameter())
	}
	if g.MaxDegree() != 4 {
		t.Errorf("Δ = %d, want 4", g.MaxDegree())
	}
}

func TestTorusProperties(t *testing.T) {
	g := Torus(4, 4)
	if g.M() != 32 {
		t.Errorf("m = %d, want 32", g.M())
	}
	for p := ProcessID(0); p < 16; p++ {
		if g.Degree(p) != 4 {
			t.Errorf("node %d degree = %d, want 4", p, g.Degree(p))
		}
	}
	if g.Diameter() != 4 {
		t.Errorf("diameter = %d, want 4", g.Diameter())
	}
}

func TestHypercubeProperties(t *testing.T) {
	g := Hypercube(4)
	if g.N() != 16 {
		t.Fatalf("n = %d, want 16", g.N())
	}
	if g.M() != 32 { // n*dim/2
		t.Errorf("m = %d, want 32", g.M())
	}
	if g.Diameter() != 4 {
		t.Errorf("diameter = %d, want 4", g.Diameter())
	}
	if g.MaxDegree() != 4 {
		t.Errorf("Δ = %d, want 4", g.MaxDegree())
	}
	// Distance on a hypercube is the Hamming distance.
	if d := g.Dist(0b0000, 0b1011); d != 3 {
		t.Errorf("Dist(0000,1011) = %d, want 3", d)
	}
}

func TestRandomTreeIsTree(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(30)
		g := RandomTree(n, rng)
		if g.M() != n-1 {
			t.Fatalf("n=%d: m = %d, want %d", n, g.M(), n-1)
		}
	}
}

func TestRandomConnectedRespectsEdgeBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 3 + rng.Intn(20)
		m := rng.Intn(n * n) // intentionally out of range sometimes
		g := RandomConnected(n, m, rng)
		maxM := n * (n - 1) / 2
		want := m
		if want < n-1 {
			want = n - 1
		}
		if want > maxM {
			want = maxM
		}
		if g.M() != want {
			t.Fatalf("n=%d m=%d: got %d edges, want %d", n, m, g.M(), want)
		}
	}
}

func TestNeighborsSortedAndSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := RandomConnected(15, 30, rng)
	for p := ProcessID(0); int(p) < g.N(); p++ {
		ns := g.Neighbors(p)
		for i := 1; i < len(ns); i++ {
			if ns[i-1] >= ns[i] {
				t.Fatalf("neighbors of %d not strictly sorted: %v", p, ns)
			}
		}
		for _, q := range ns {
			if !g.HasEdge(q, p) {
				t.Fatalf("asymmetric edge (%d,%d)", p, q)
			}
		}
	}
}

func TestDistanceIsAMetric(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := RandomConnected(12, 20, rng)
	n := g.N()
	for u := ProcessID(0); int(u) < n; u++ {
		for v := ProcessID(0); int(v) < n; v++ {
			duv := g.Dist(u, v)
			if (duv == 0) != (u == v) {
				t.Fatalf("identity violated: Dist(%d,%d)=%d", u, v, duv)
			}
			if duv != g.Dist(v, u) {
				t.Fatalf("symmetry violated at (%d,%d)", u, v)
			}
			for w := ProcessID(0); int(w) < n; w++ {
				if duv > g.Dist(u, w)+g.Dist(w, v) {
					t.Fatalf("triangle inequality violated at (%d,%d,%d)", u, v, w)
				}
			}
		}
	}
}

func TestDistNeighborsExactlyOne(t *testing.T) {
	g := Figure1Network()
	for _, e := range g.Edges() {
		if g.Dist(e[0], e[1]) != 1 {
			t.Errorf("edge (%d,%d) has distance %d", e[0], e[1], g.Dist(e[0], e[1]))
		}
	}
}

func TestShortestPathNext(t *testing.T) {
	g := Line(5)
	next := g.ShortestPathNext(0, 4)
	if len(next) != 1 || next[0] != 1 {
		t.Fatalf("ShortestPathNext(0,4) = %v, want [1]", next)
	}
	if g.ShortestPathNext(4, 4) != nil {
		t.Fatal("ShortestPathNext(d,d) should be nil")
	}
	// On a ring of even length the antipode has two shortest next hops.
	r := Ring(6)
	next = r.ShortestPathNext(0, 3)
	if len(next) != 2 {
		t.Fatalf("ring antipode should have 2 next hops, got %v", next)
	}
}

func TestShortestPathNextDecreasesDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := RandomConnected(14, 25, rng)
	for p := ProcessID(0); int(p) < g.N(); p++ {
		for d := ProcessID(0); int(d) < g.N(); d++ {
			if p == d {
				continue
			}
			next := g.ShortestPathNext(p, d)
			if len(next) == 0 {
				t.Fatalf("no shortest next hop from %d to %d", p, d)
			}
			for _, q := range next {
				if g.Dist(q, d) != g.Dist(p, d)-1 {
					t.Fatalf("next hop %d of %d->%d does not decrease distance", q, p, d)
				}
			}
		}
	}
}

func TestIsNeighborOrSelf(t *testing.T) {
	g := Line(4)
	cases := []struct {
		p, q ProcessID
		want bool
	}{
		{0, 0, true}, {0, 1, true}, {1, 0, true}, {0, 2, false}, {0, 3, false},
	}
	for _, c := range cases {
		if got := g.IsNeighborOrSelf(c.p, c.q); got != c.want {
			t.Errorf("IsNeighborOrSelf(%d,%d) = %v, want %v", c.p, c.q, got, c.want)
		}
	}
}

func TestProcessorsAndEdges(t *testing.T) {
	g := Figure3Network()
	ps := g.Processors()
	if len(ps) != 4 || ps[0] != 0 || ps[3] != 3 {
		t.Fatalf("Processors() = %v", ps)
	}
	es := g.Edges()
	want := [][2]ProcessID{{0, 1}, {0, 2}, {0, 3}, {1, 2}}
	if len(es) != len(want) {
		t.Fatalf("Edges() = %v, want %v", es, want)
	}
	for i := range es {
		if es[i] != want[i] {
			t.Fatalf("Edges()[%d] = %v, want %v", i, es[i], want[i])
		}
	}
}

func TestFigure3NetworkShape(t *testing.T) {
	g := Figure3Network()
	if g.MaxDegree() != 3 {
		t.Errorf("Δ = %d, want 3 (paper's example uses 4 colors)", g.MaxDegree())
	}
	if g.Diameter() != 2 {
		t.Errorf("diameter = %d, want 2", g.Diameter())
	}
}

func TestDOTOutput(t *testing.T) {
	g := Line(3)
	dot := g.DOT("line3")
	for _, want := range []string{"graph line3 {", "0 -- 1;", "1 -- 2;", "}"} {
		if !contains(dot, want) {
			t.Errorf("DOT output missing %q:\n%s", want, dot)
		}
	}
}

func TestAdjacencyMatrixMatchesHasEdge(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := RandomConnected(10, 18, rng)
	m := g.AdjacencyMatrix()
	for u := ProcessID(0); int(u) < g.N(); u++ {
		for v := ProcessID(0); int(v) < g.N(); v++ {
			if m[u][v] != (u != v && g.HasEdge(u, v)) {
				t.Fatalf("matrix mismatch at (%d,%d)", u, v)
			}
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (func() bool {
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				return true
			}
		}
		return false
	})()
}

// Property: on any random connected graph, BFS distances computed at Freeze
// agree with a recomputation from scratch, and the diameter is attained.
func TestQuickDistancesConsistent(t *testing.T) {
	f := func(seed int64, nRaw, mRaw uint8) bool {
		n := 2 + int(nRaw)%18
		m := int(mRaw)
		rng := rand.New(rand.NewSource(seed))
		g := RandomConnected(n, m, rng)
		attained := false
		for u := ProcessID(0); int(u) < n; u++ {
			d := g.bfs(u)
			for v := 0; v < n; v++ {
				if d[v] != g.Dist(u, ProcessID(v)) {
					return false
				}
				if d[v] == g.Diameter() {
					attained = true
				}
			}
		}
		return attained
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkFreezeRandomConnected(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		RandomConnected(64, 160, rng)
	}
}

func TestAllConnectedCounts(t *testing.T) {
	// Known counts of labeled connected graphs: n=2 → 1, n=3 → 4, n=4 → 38.
	for n, want := range map[int]int{2: 1, 3: 4, 4: 38} {
		if got := len(AllConnected(n)); got != want {
			t.Errorf("AllConnected(%d) = %d graphs, want %d", n, got, want)
		}
	}
	for _, g := range AllConnected(3) {
		if !g.Frozen() {
			t.Fatal("enumerated graphs must be frozen")
		}
	}
}

func TestAllConnectedRejectsOutOfRange(t *testing.T) {
	for _, n := range []int{1, 6} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("AllConnected(%d): expected panic", n)
				}
			}()
			AllConnected(n)
		}()
	}
}
