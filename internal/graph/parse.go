package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Topology files describe a network as text: a first directive line
// "n <count>" followed by one undirected edge per line ("<u> <v>").
// Blank lines and #-comments are ignored. The multi-process deployment
// (cmd/ssmfp-node) ships one file to every node so all processes agree
// on the graph.
//
//	# 4-node line
//	n 4
//	0 1
//	1 2
//	2 3

// Parse reads a topology file and returns the frozen graph. Errors carry
// line numbers; the connectivity requirement of Freeze applies (a
// disconnected file is rejected with a clear error rather than a panic).
func Parse(r io.Reader) (g *Graph, err error) {
	sc := bufio.NewScanner(r)
	lineno := 0
	next := func() (string, bool) {
		for sc.Scan() {
			lineno++
			line := strings.TrimSpace(sc.Text())
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			return line, true
		}
		return "", false
	}

	head, ok := next()
	if !ok {
		return nil, fmt.Errorf("topology: empty file")
	}
	fields := strings.Fields(head)
	if len(fields) != 2 || fields[0] != "n" {
		return nil, fmt.Errorf("topology line %d: want \"n <count>\", got %q", lineno, head)
	}
	n, aerr := strconv.Atoi(fields[1])
	if aerr != nil || n < 1 {
		return nil, fmt.Errorf("topology line %d: bad processor count %q", lineno, fields[1])
	}
	g = New(n)

	// AddEdge and Freeze report misuse by panicking (the in-code builders
	// want that); a file parser must turn those into errors.
	defer func() {
		if p := recover(); p != nil {
			if lineno > 0 {
				g, err = nil, fmt.Errorf("topology line %d: %v", lineno, p)
			} else {
				g, err = nil, fmt.Errorf("topology: %v", p)
			}
		}
	}()
	for {
		line, ok := next()
		if !ok {
			break
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("topology line %d: want \"<u> <v>\", got %q", lineno, line)
		}
		u, uerr := strconv.Atoi(fields[0])
		v, verr := strconv.Atoi(fields[1])
		if uerr != nil || verr != nil {
			return nil, fmt.Errorf("topology line %d: bad edge %q", lineno, line)
		}
		g.AddEdge(ProcessID(u), ProcessID(v))
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	lineno = 0 // Freeze panics (disconnection) are not about a line
	return g.Freeze(), nil
}

// Format renders g in the topology file format Parse reads.
func Format(g *Graph) string {
	var b strings.Builder
	fmt.Fprintf(&b, "n %d\n", g.N())
	for _, e := range g.Edges() {
		fmt.Fprintf(&b, "%d %d\n", e[0], e[1])
	}
	return b.String()
}
