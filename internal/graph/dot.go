package graph

import (
	"fmt"
	"strings"
)

// DOT renders the graph in Graphviz dot syntax, one edge per line, nodes
// labeled by their ProcessID. Useful for debugging topologies and for the
// trace tooling.
func (g *Graph) DOT(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "graph %s {\n", name)
	for p := 0; p < g.n; p++ {
		fmt.Fprintf(&b, "  %d;\n", p)
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(&b, "  %d -- %d;\n", e[0], e[1])
	}
	b.WriteString("}\n")
	return b.String()
}

// AdjacencyMatrix returns the boolean adjacency matrix, mostly for tests
// and for exporting topologies to external tools.
func (g *Graph) AdjacencyMatrix() [][]bool {
	m := make([][]bool, g.n)
	for u := 0; u < g.n; u++ {
		m[u] = make([]bool, g.n)
		for _, v := range g.adj[u] {
			m[u][v] = true
		}
	}
	return m
}
