package graph

import (
	"strings"
	"testing"
)

func TestParseRoundTrip(t *testing.T) {
	for _, g := range []*Graph{Line(4), Ring(6), Grid(3, 3), Star(5)} {
		got, err := Parse(strings.NewReader(Format(g)))
		if err != nil {
			t.Fatalf("%v: %v", g, err)
		}
		if got.N() != g.N() || got.M() != g.M() {
			t.Fatalf("round trip of %v gave %v", g, got)
		}
		for _, e := range g.Edges() {
			if !got.HasEdge(e[0], e[1]) {
				t.Fatalf("round trip of %v lost edge %v", g, e)
			}
		}
		if !got.Frozen() {
			t.Fatalf("Parse must return a frozen graph")
		}
	}
}

func TestParseCommentsAndBlanks(t *testing.T) {
	src := "# a line\n\nn 3\n# edges\n0 1\n\n1 2\n"
	g, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 2 {
		t.Fatalf("got %v", g)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"empty":          "",
		"no header":      "0 1\n",
		"bad count":      "n zero\n",
		"zero count":     "n 0\n",
		"bad edge":       "n 2\n0 x\n",
		"three fields":   "n 2\n0 1 2\n",
		"out of range":   "n 2\n0 5\n",
		"self loop":      "n 2\n1 1\n",
		"duplicate edge": "n 3\n0 1\n0 1\n0 2\n1 2\n",
		"disconnected":   "n 3\n0 1\n",
	}
	for name, src := range cases {
		if g, err := Parse(strings.NewReader(src)); err == nil {
			t.Errorf("%s: accepted as %v", name, g)
		}
	}
}
