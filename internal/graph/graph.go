// Package graph provides the undirected network model used throughout the
// SSMFP reproduction: a connected graph of identified processors with
// bidirectional links, plus the graph algorithms the protocol stack and the
// experiment harness rely on (BFS layers, all-pairs distances, diameter,
// maximal degree, connectivity, component analysis).
//
// The model follows §2 of the paper: the network is an undirected connected
// graph G = (V, E); every processor has a unique identity, knows the set of
// all identities, and can distinguish its incident links. Processor
// identities are dense integers 0..n-1 so they can double as slice indices.
package graph

import (
	"fmt"
	"sort"
)

// ProcessID identifies a processor. Identities are unique and dense in
// [0, n), matching the paper's set I = {0, ..., n-1}.
type ProcessID int

// Graph is an immutable undirected graph over processors 0..n-1.
// Construct one with New and AddEdge, then call Freeze (or use a builder
// from builders.go); mutating methods panic after Freeze.
type Graph struct {
	n      int
	adj    [][]ProcessID // sorted neighbor lists
	edges  int
	frozen bool

	// lazily computed caches (filled by Freeze)
	dist     [][]int // all-pairs shortest path lengths
	diameter int
	maxDeg   int
}

// New returns an empty mutable graph over n processors and no edges.
// n must be at least 1.
func New(n int) *Graph {
	if n < 1 {
		panic(fmt.Sprintf("graph: New(%d): need at least one processor", n))
	}
	return &Graph{n: n, adj: make([][]ProcessID, n)}
}

// N returns the number of processors.
func (g *Graph) N() int { return g.n }

// M returns the number of (undirected) edges.
func (g *Graph) M() int { return g.edges }

// AddEdge inserts the undirected edge (u, v). It panics on self-loops,
// out-of-range endpoints, duplicate edges, or if the graph is frozen.
func (g *Graph) AddEdge(u, v ProcessID) {
	if g.frozen {
		panic("graph: AddEdge on frozen graph")
	}
	if u == v {
		panic(fmt.Sprintf("graph: self-loop at %d", u))
	}
	g.checkID(u)
	g.checkID(v)
	if g.HasEdge(u, v) {
		panic(fmt.Sprintf("graph: duplicate edge (%d,%d)", u, v))
	}
	g.adj[u] = append(g.adj[u], v)
	g.adj[v] = append(g.adj[v], u)
	g.edges++
}

func (g *Graph) checkID(p ProcessID) {
	if p < 0 || int(p) >= g.n {
		panic(fmt.Sprintf("graph: processor %d out of range [0,%d)", p, g.n))
	}
}

// HasEdge reports whether the undirected edge (u, v) exists.
func (g *Graph) HasEdge(u, v ProcessID) bool {
	g.checkID(u)
	g.checkID(v)
	for _, w := range g.adj[u] {
		if w == v {
			return true
		}
	}
	return false
}

// Neighbors returns the sorted neighbor list N_p of processor p.
// The returned slice must not be modified.
func (g *Graph) Neighbors(p ProcessID) []ProcessID {
	g.checkID(p)
	return g.adj[p]
}

// Degree returns |N_p|.
func (g *Graph) Degree(p ProcessID) int { return len(g.Neighbors(p)) }

// Freeze sorts adjacency lists, verifies the graph is connected, and
// precomputes all-pairs distances, the diameter, and the maximal degree.
// It returns the graph to allow chaining. Freeze panics if the graph is
// disconnected: the paper assumes a connected network.
func (g *Graph) Freeze() *Graph { return g.freeze(false) }

// FreezeIsolated is Freeze for elastic deployments: isolated processors
// are permitted (a slot whose node has left the cluster keeps its identity
// but has no links), and Dist returns -1 for unreachable pairs. The
// diameter covers reachable pairs only. Non-isolated processors must
// still form one connected component — Topology.Build checks that before
// constructing the graph, and this freeze enforces it too.
func (g *Graph) FreezeIsolated() *Graph { return g.freeze(true) }

func (g *Graph) freeze(allowIsolated bool) *Graph {
	if g.frozen {
		return g
	}
	for p := range g.adj {
		ns := g.adj[p]
		sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
	}
	g.dist = make([][]int, g.n)
	for p := 0; p < g.n; p++ {
		g.dist[p] = g.bfs(ProcessID(p))
	}
	g.diameter = 0
	for p := 0; p < g.n; p++ {
		for q := 0; q < g.n; q++ {
			d := g.dist[p][q]
			if d < 0 {
				if allowIsolated && (len(g.adj[p]) == 0 || len(g.adj[q]) == 0) {
					continue // a detached slot; Dist stays -1
				}
				panic(fmt.Sprintf("graph: disconnected: no path %d -> %d", p, q))
			}
			if d > g.diameter {
				g.diameter = d
			}
		}
	}
	g.maxDeg = 0
	for p := 0; p < g.n; p++ {
		if d := len(g.adj[p]); d > g.maxDeg {
			g.maxDeg = d
		}
	}
	g.frozen = true
	return g
}

// Frozen reports whether Freeze has been called.
func (g *Graph) Frozen() bool { return g.frozen }

// bfs returns distances from src; -1 marks unreachable processors.
func (g *Graph) bfs(src ProcessID) []int {
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []ProcessID{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.adj[u] {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// Dist returns dist(p, q), the length of a shortest path between p and q.
// The graph must be frozen.
func (g *Graph) Dist(p, q ProcessID) int {
	g.mustBeFrozen()
	g.checkID(p)
	g.checkID(q)
	return g.dist[p][q]
}

// Diameter returns D, the eccentricity maximum over all processor pairs.
func (g *Graph) Diameter() int {
	g.mustBeFrozen()
	return g.diameter
}

// MaxDegree returns Δ, the maximal degree of the network.
func (g *Graph) MaxDegree() int {
	g.mustBeFrozen()
	return g.maxDeg
}

func (g *Graph) mustBeFrozen() {
	if !g.frozen {
		panic("graph: operation requires a frozen graph (call Freeze)")
	}
}

// IsNeighborOrSelf reports whether q ∈ N_p ∪ {p}. Message flags (m, q, c)
// are only well-typed when this holds for the stored last hop q.
func (g *Graph) IsNeighborOrSelf(p, q ProcessID) bool {
	return p == q || g.HasEdge(p, q)
}

// ShortestPathNext returns the set of neighbors of p that lie on a shortest
// path from p to d (the legal values of nextHop_p(d) once routing tables are
// correct and minimal). For p == d it returns nil.
func (g *Graph) ShortestPathNext(p, d ProcessID) []ProcessID {
	g.mustBeFrozen()
	if p == d {
		return nil
	}
	var next []ProcessID
	for _, q := range g.adj[p] {
		if g.dist[q][d] == g.dist[p][d]-1 {
			next = append(next, q)
		}
	}
	return next
}

// Processors returns the identity set I = {0..n-1} as a slice.
func (g *Graph) Processors() []ProcessID {
	ps := make([]ProcessID, g.n)
	for i := range ps {
		ps[i] = ProcessID(i)
	}
	return ps
}

// Edges returns every undirected edge exactly once, as ordered pairs with
// the smaller endpoint first, sorted lexicographically.
func (g *Graph) Edges() [][2]ProcessID {
	var es [][2]ProcessID
	for u := 0; u < g.n; u++ {
		for _, v := range g.adj[u] {
			if ProcessID(u) < v {
				es = append(es, [2]ProcessID{ProcessID(u), v})
			}
		}
	}
	sort.Slice(es, func(i, j int) bool {
		if es[i][0] != es[j][0] {
			return es[i][0] < es[j][0]
		}
		return es[i][1] < es[j][1]
	})
	return es
}

// String renders a compact description, e.g. "graph(n=5, m=6, Δ=3, D=2)".
func (g *Graph) String() string {
	if !g.frozen {
		return fmt.Sprintf("graph(n=%d, m=%d, unfrozen)", g.n, g.edges)
	}
	return fmt.Sprintf("graph(n=%d, m=%d, Δ=%d, D=%d)", g.n, g.edges, g.maxDeg, g.diameter)
}
