package graph

import (
	"math/rand"
	"strings"
	"testing"
)

func TestTopologyBasicEdits(t *testing.T) {
	topo := NewTopology(Ring(4))
	if got := len(topo.Members()); got != 4 {
		t.Fatalf("members = %d, want 4", got)
	}
	p := topo.AddNode()
	if p != 4 {
		t.Fatalf("AddNode = %d, want 4", p)
	}
	if err := topo.AddEdge(p, 0); err != nil {
		t.Fatalf("AddEdge(4,0): %v", err)
	}
	g, err := topo.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if g.N() != 5 || !g.HasEdge(4, 0) {
		t.Fatalf("built graph %v missing joined node", g)
	}

	// Remove a node: incident edges go with it; the remaining members must
	// stay connected for Build to succeed.
	if err := topo.RemoveNode(4); err != nil {
		t.Fatalf("RemoveNode(4): %v", err)
	}
	if topo.HasEdge(4, 0) {
		t.Fatal("edge (4,0) survived RemoveNode(4)")
	}
	g, err = topo.Build()
	if err != nil {
		t.Fatalf("Build after remove: %v", err)
	}
	if g.N() != 5 || g.Degree(4) != 0 {
		t.Fatalf("removed slot not isolated: %v", g)
	}
	if g.Dist(4, 0) != -1 {
		t.Fatalf("Dist(detached, member) = %d, want -1", g.Dist(4, 0))
	}
}

func TestTopologyRejectsDisconnectedMembers(t *testing.T) {
	topo := NewTopology(Line(4))
	if err := topo.RemoveEdge(1, 2); err != nil {
		t.Fatalf("RemoveEdge: %v", err)
	}
	if _, err := topo.Build(); err == nil {
		t.Fatal("Build accepted a split member set")
	}
}

func TestTopologyReadmitsSlot(t *testing.T) {
	topo := NewTopology(Line(5))
	if err := topo.RemoveNode(2); err != nil {
		t.Fatal(err)
	}
	if _, err := topo.Build(); err == nil {
		t.Fatal("Build accepted line with an interior node removed (members split)")
	}
	// Heal around the hole, then re-admit the slot under its old identity.
	if err := topo.AddEdge(1, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := topo.Build(); err != nil {
		t.Fatalf("Build after heal: %v", err)
	}
	if err := topo.AddNodeID(2); err != nil {
		t.Fatalf("AddNodeID(2): %v", err)
	}
	if err := topo.AddEdge(2, 1); err != nil {
		t.Fatal(err)
	}
	g, err := topo.Build()
	if err != nil {
		t.Fatalf("Build after rejoin: %v", err)
	}
	if g.Degree(2) != 1 {
		t.Fatalf("rejoined node degree = %d, want 1", g.Degree(2))
	}
}

func TestTopologyDiff(t *testing.T) {
	old := NewTopology(Ring(4))
	cur := old.Clone()
	joined := cur.AddNode()
	if err := cur.AddEdge(joined, 0); err != nil {
		t.Fatal(err)
	}
	if err := cur.RemoveEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := cur.AddEdge(0, 2); err != nil {
		t.Fatal(err)
	}
	d := old.Diff(cur)
	if len(d.AddedNodes) != 1 || d.AddedNodes[0] != joined {
		t.Fatalf("AddedNodes = %v", d.AddedNodes)
	}
	if len(d.RemovedNodes) != 0 {
		t.Fatalf("RemovedNodes = %v", d.RemovedNodes)
	}
	if len(d.AddedEdges) != 2 || len(d.RemovedEdges) != 1 {
		t.Fatalf("edge diff = +%v -%v", d.AddedEdges, d.RemovedEdges)
	}
	if !cur.Diff(cur).Empty() {
		t.Fatal("self-diff not empty")
	}
	back := cur.Diff(old)
	if len(back.RemovedNodes) != 1 || back.RemovedNodes[0] != joined {
		t.Fatalf("reverse diff RemovedNodes = %v", back.RemovedNodes)
	}
}

// TestParseFormatRoundTripUnderEdits is the epoch-diffing groundwork
// property test: random add/remove-edge sequences applied through a
// Topology, snapshotted with Build, rendered with Format, re-parsed with
// Parse — the round trip must be the identity at every step (same text,
// same edge set, same distances).
func TestParseFormatRoundTripUnderEdits(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		n := 4 + rng.Intn(8)
		topo := NewTopology(Ring(n))
		for step := 0; step < 40; step++ {
			u := ProcessID(rng.Intn(n))
			v := ProcessID(rng.Intn(n))
			if u == v {
				continue
			}
			if topo.HasEdge(u, v) {
				// Tentative removal; revert if it would split the members.
				if err := topo.RemoveEdge(u, v); err != nil {
					t.Fatalf("RemoveEdge(%d,%d): %v", u, v, err)
				}
				if _, err := topo.Build(); err != nil {
					if err := topo.AddEdge(u, v); err != nil {
						t.Fatalf("revert AddEdge(%d,%d): %v", u, v, err)
					}
				}
			} else if err := topo.AddEdge(u, v); err != nil {
				t.Fatalf("AddEdge(%d,%d): %v", u, v, err)
			}

			g, err := topo.Build()
			if err != nil {
				t.Fatalf("trial %d step %d: Build: %v", trial, step, err)
			}
			text := Format(g)
			g2, err := Parse(strings.NewReader(text))
			if err != nil {
				t.Fatalf("trial %d step %d: Parse(Format): %v\n%s", trial, step, err, text)
			}
			if got := Format(g2); got != text {
				t.Fatalf("trial %d step %d: round trip changed the file:\nfirst:\n%s\nsecond:\n%s",
					trial, step, text, got)
			}
			if g2.N() != g.N() || g2.M() != g.M() || g2.Diameter() != g.Diameter() {
				t.Fatalf("trial %d step %d: round trip changed the graph: %v vs %v",
					trial, step, g, g2)
			}
		}
	}
}
