package graph

import (
	"fmt"
	"math/rand"
)

// Line returns the path graph 0-1-...-(n-1); diameter n-1, Δ = 2.
func Line(n int) *Graph {
	g := New(n)
	for i := 0; i < n-1; i++ {
		g.AddEdge(ProcessID(i), ProcessID(i+1))
	}
	return g.Freeze()
}

// Ring returns the cycle 0-1-...-(n-1)-0. n must be at least 3.
func Ring(n int) *Graph {
	if n < 3 {
		panic(fmt.Sprintf("graph: Ring(%d): need n >= 3", n))
	}
	g := New(n)
	for i := 0; i < n; i++ {
		g.AddEdge(ProcessID(i), ProcessID((i+1)%n))
	}
	return g.Freeze()
}

// Star returns the star with center 0 and leaves 1..n-1; Δ = n-1, D = 2.
func Star(n int) *Graph {
	if n < 2 {
		panic(fmt.Sprintf("graph: Star(%d): need n >= 2", n))
	}
	g := New(n)
	for i := 1; i < n; i++ {
		g.AddEdge(0, ProcessID(i))
	}
	return g.Freeze()
}

// Complete returns K_n.
func Complete(n int) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddEdge(ProcessID(i), ProcessID(j))
		}
	}
	return g.Freeze()
}

// BinaryTree returns the complete binary tree on n nodes in heap order
// (node i has children 2i+1 and 2i+2 when they exist).
func BinaryTree(n int) *Graph {
	g := New(n)
	for i := 1; i < n; i++ {
		g.AddEdge(ProcessID((i-1)/2), ProcessID(i))
	}
	return g.Freeze()
}

// Grid returns the rows×cols 2-D mesh; node (r, c) has id r*cols + c.
func Grid(rows, cols int) *Graph {
	if rows < 1 || cols < 1 {
		panic(fmt.Sprintf("graph: Grid(%d,%d): need positive dimensions", rows, cols))
	}
	g := New(rows * cols)
	id := func(r, c int) ProcessID { return ProcessID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				g.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				g.AddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	return g.Freeze()
}

// Torus returns the rows×cols 2-D torus (mesh with wraparound links).
// Both dimensions must be at least 3 so no duplicate edges arise.
func Torus(rows, cols int) *Graph {
	if rows < 3 || cols < 3 {
		panic(fmt.Sprintf("graph: Torus(%d,%d): need both dimensions >= 3", rows, cols))
	}
	g := New(rows * cols)
	id := func(r, c int) ProcessID { return ProcessID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			g.AddEdge(id(r, c), id(r, (c+1)%cols))
			g.AddEdge(id(r, c), id((r+1)%rows, c))
		}
	}
	return g.Freeze()
}

// Hypercube returns the dim-dimensional hypercube on 2^dim processors.
func Hypercube(dim int) *Graph {
	if dim < 1 || dim > 20 {
		panic(fmt.Sprintf("graph: Hypercube(%d): dimension out of range [1,20]", dim))
	}
	n := 1 << dim
	g := New(n)
	for u := 0; u < n; u++ {
		for b := 0; b < dim; b++ {
			v := u ^ (1 << b)
			if u < v {
				g.AddEdge(ProcessID(u), ProcessID(v))
			}
		}
	}
	return g.Freeze()
}

// RandomTree returns a random recursive tree (uniform attachment) on n
// nodes: node i (i >= 1) attaches to a uniformly chosen earlier node. Note
// this is NOT uniform over all n^(n-2) labeled trees — uniform attachment
// biases toward low-depth, high-degree early nodes (e.g. paths are
// underrepresented relative to a Prüfer-sequence construction).
// Deterministic for a given rng state.
func RandomTree(n int, rng *rand.Rand) *Graph {
	g := New(n)
	for i := 1; i < n; i++ {
		g.AddEdge(ProcessID(rng.Intn(i)), ProcessID(i))
	}
	return g.Freeze()
}

// RandomConnected returns a connected graph on n nodes: a random spanning
// tree plus extra random edges until the graph has m edges (m is clamped to
// [n-1, n(n-1)/2]).
func RandomConnected(n, m int, rng *rand.Rand) *Graph {
	maxM := n * (n - 1) / 2
	if m < n-1 {
		m = n - 1
	}
	if m > maxM {
		m = maxM
	}
	g := New(n)
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		g.AddEdge(ProcessID(perm[rng.Intn(i)]), ProcessID(perm[i]))
	}
	for g.M() < m {
		u := ProcessID(rng.Intn(n))
		v := ProcessID(rng.Intn(n))
		if u != v && !g.HasEdge(u, v) {
			g.AddEdge(u, v)
		}
	}
	return g.Freeze()
}

// Figure1Network returns the 5-processor example network that the paper's
// Figure 1 builds its "destination-based" buffer graph on. The drawing in
// the paper is not machine readable; we use a representative 5-node network
// with a designated destination whose shortest-path tree spans all nodes:
//
//	0 - 1 - 2
//	|   |   |
//	3 --+-- 4
//
// Edges: (0,1) (1,2) (0,3) (1,3) (1,4) (2,4).
func Figure1Network() *Graph {
	g := New(5)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 3)
	g.AddEdge(1, 3)
	g.AddEdge(1, 4)
	g.AddEdge(2, 4)
	return g.Freeze()
}

// Figure3Network returns the 4-processor network used by our reenactment of
// the paper's Figure 3 execution example. Processors are a=0, b=1, c=2,
// e=3; edges a-b, a-c, a-e, b-c, so Δ = 3 (at a) as in the paper's example
// (which needs Δ+1 = 4 colors).
func Figure3Network() *Graph {
	g := New(4)
	g.AddEdge(0, 1) // a - b
	g.AddEdge(0, 2) // a - c
	g.AddEdge(0, 3) // a - e
	g.AddEdge(1, 2) // b - c
	return g.Freeze()
}

// AllConnected enumerates every labeled connected graph on n processors
// (n ≤ 5; the count grows as 2^(n(n-1)/2)). It is the scenario generator
// of the exhaustive model-check sweep: combined with corruption templates,
// it lets the explorer cover every small topology systematically rather
// than sampling.
func AllConnected(n int) []*Graph {
	if n < 2 || n > 5 {
		panic(fmt.Sprintf("graph: AllConnected(%d): supported range is [2,5]", n))
	}
	type edge struct{ u, v ProcessID }
	var edges []edge
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			edges = append(edges, edge{ProcessID(u), ProcessID(v)})
		}
	}
	var out []*Graph
	for mask := 0; mask < 1<<len(edges); mask++ {
		g := New(n)
		for i, e := range edges {
			if mask&(1<<i) != 0 {
				g.AddEdge(e.u, e.v)
			}
		}
		if !g.connected() {
			continue
		}
		out = append(out, g.Freeze())
	}
	return out
}

// connected reports whether the (possibly unfrozen) graph is connected.
func (g *Graph) connected() bool {
	d := g.bfs(0)
	for _, x := range d {
		if x < 0 {
			return false
		}
	}
	return true
}
