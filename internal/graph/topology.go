package graph

import (
	"fmt"
	"sort"
)

// Topology is the mutable, elastic view of a network: the thing an
// operator edits while a cluster runs. Where Graph is an immutable
// snapshot (frozen, with precomputed distances), a Topology is a set of
// stable processor slots plus an edge set that nodes and links can be
// added to and removed from at runtime. Slot identities are stable and
// grow-only: removing processor 3 never renumbers processor 4, because
// every layer above (buffers, routing tables, telemetry labels, peer
// address files) indexes processors by ID. A removed slot stays allocated
// and may later be re-admitted (a node leaving and rejoining keeps its
// identity).
//
// Build snapshots the Topology into a frozen Graph for the protocol
// layer: present members must be mutually connected (the paper's
// connectivity assumption, now applied per epoch to the member set);
// absent slots appear in the Graph as isolated processors that no node
// runs. Diff computes the membership/edge delta between two snapshots —
// the content of an epoch transition.
type Topology struct {
	present []bool
	edges   map[[2]ProcessID]bool
}

// NewTopology starts a Topology from an existing graph, with every
// processor present.
func NewTopology(g *Graph) *Topology {
	t := &Topology{
		present: make([]bool, g.N()),
		edges:   make(map[[2]ProcessID]bool, g.M()),
	}
	for i := range t.present {
		t.present[i] = true
	}
	for _, e := range g.Edges() {
		t.edges[e] = true
	}
	return t
}

// Clone returns an independent copy.
func (t *Topology) Clone() *Topology {
	c := &Topology{
		present: append([]bool(nil), t.present...),
		edges:   make(map[[2]ProcessID]bool, len(t.edges)),
	}
	for e := range t.edges {
		c.edges[e] = true
	}
	return c
}

// Cap returns the number of allocated slots (present or not). Slot IDs
// are 0..Cap()-1.
func (t *Topology) Cap() int { return len(t.present) }

// HasNode reports whether slot p is a present member.
func (t *Topology) HasNode(p ProcessID) bool {
	return p >= 0 && int(p) < len(t.present) && t.present[p]
}

// Members returns the present slots in ascending order.
func (t *Topology) Members() []ProcessID {
	var out []ProcessID
	for i, on := range t.present {
		if on {
			out = append(out, ProcessID(i))
		}
	}
	return out
}

// AddNode allocates a fresh slot (or re-admits the lowest absent one is
// NOT done — joining nodes get new identities unless AddNodeID is used)
// and returns its ID.
func (t *Topology) AddNode() ProcessID {
	t.present = append(t.present, true)
	return ProcessID(len(t.present) - 1)
}

// AddNodeID admits slot p, growing the slot space as needed. Re-admitting
// a previously removed slot is allowed (a node rejoining under its old
// identity); admitting an already present slot is an error.
func (t *Topology) AddNodeID(p ProcessID) error {
	if p < 0 {
		return fmt.Errorf("topology: bad node id %d", p)
	}
	for int(p) >= len(t.present) {
		t.present = append(t.present, false)
	}
	if t.present[p] {
		return fmt.Errorf("topology: node %d already present", p)
	}
	t.present[p] = true
	return nil
}

// RemoveNode withdraws slot p and drops its incident edges. The slot
// stays allocated so no other processor is renumbered.
func (t *Topology) RemoveNode(p ProcessID) error {
	if !t.HasNode(p) {
		return fmt.Errorf("topology: node %d not present", p)
	}
	t.present[p] = false
	for e := range t.edges {
		if e[0] == p || e[1] == p {
			delete(t.edges, e)
		}
	}
	return nil
}

func edgeKey(u, v ProcessID) [2]ProcessID {
	if u > v {
		u, v = v, u
	}
	return [2]ProcessID{u, v}
}

// AddEdge inserts the undirected edge (u, v) between two present members.
func (t *Topology) AddEdge(u, v ProcessID) error {
	if u == v {
		return fmt.Errorf("topology: self-loop at %d", u)
	}
	if !t.HasNode(u) {
		return fmt.Errorf("topology: node %d not present", u)
	}
	if !t.HasNode(v) {
		return fmt.Errorf("topology: node %d not present", v)
	}
	k := edgeKey(u, v)
	if t.edges[k] {
		return fmt.Errorf("topology: duplicate edge (%d,%d)", u, v)
	}
	t.edges[k] = true
	return nil
}

// RemoveEdge deletes the undirected edge (u, v).
func (t *Topology) RemoveEdge(u, v ProcessID) error {
	k := edgeKey(u, v)
	if !t.edges[k] {
		return fmt.Errorf("topology: no edge (%d,%d)", u, v)
	}
	delete(t.edges, k)
	return nil
}

// HasEdge reports whether the undirected edge (u, v) exists.
func (t *Topology) HasEdge(u, v ProcessID) bool { return t.edges[edgeKey(u, v)] }

// Edges returns every undirected edge once, smaller endpoint first,
// sorted lexicographically — the same canonical order Graph.Edges uses.
func (t *Topology) Edges() [][2]ProcessID {
	es := make([][2]ProcessID, 0, len(t.edges))
	for e := range t.edges {
		es = append(es, e)
	}
	sort.Slice(es, func(i, j int) bool {
		if es[i][0] != es[j][0] {
			return es[i][0] < es[j][0]
		}
		return es[i][1] < es[j][1]
	})
	return es
}

// Degree returns the number of edges incident to p.
func (t *Topology) Degree(p ProcessID) int {
	d := 0
	for e := range t.edges {
		if e[0] == p || e[1] == p {
			d++
		}
	}
	return d
}

// Build snapshots the Topology into a frozen Graph over all allocated
// slots. Present members must form one connected component (the paper's
// connectivity assumption, checked per epoch); a member with no edges is
// rejected unless it is the only member. Absent slots become isolated
// processors in the Graph — slots no node runs.
func (t *Topology) Build() (*Graph, error) {
	members := t.Members()
	if len(members) == 0 {
		return nil, fmt.Errorf("topology: no members")
	}
	// Connectivity over the member set, before paying for the Graph.
	if len(members) > 1 {
		adj := make(map[ProcessID][]ProcessID, len(members))
		for e := range t.edges {
			adj[e[0]] = append(adj[e[0]], e[1])
			adj[e[1]] = append(adj[e[1]], e[0])
		}
		seen := map[ProcessID]bool{members[0]: true}
		queue := []ProcessID{members[0]}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range adj[u] {
				if !seen[v] {
					seen[v] = true
					queue = append(queue, v)
				}
			}
		}
		for _, m := range members {
			if !seen[m] {
				return nil, fmt.Errorf("topology: member %d disconnected from member %d", m, members[0])
			}
		}
	}
	g := New(len(t.present))
	for _, e := range t.Edges() {
		g.AddEdge(e[0], e[1])
	}
	return g.FreezeIsolated(), nil
}

// TopoDiff is the delta of one epoch transition: what joined, what left,
// which links appeared and disappeared. Slices are in canonical order
// (ascending IDs, Graph.Edges edge order).
type TopoDiff struct {
	AddedNodes   []ProcessID
	RemovedNodes []ProcessID
	AddedEdges   [][2]ProcessID
	RemovedEdges [][2]ProcessID
}

// Empty reports whether the diff carries no change.
func (d TopoDiff) Empty() bool {
	return len(d.AddedNodes) == 0 && len(d.RemovedNodes) == 0 &&
		len(d.AddedEdges) == 0 && len(d.RemovedEdges) == 0
}

// Diff computes the transition old → new.
func (t *Topology) Diff(newer *Topology) TopoDiff {
	var d TopoDiff
	n := len(t.present)
	if len(newer.present) > n {
		n = len(newer.present)
	}
	for i := 0; i < n; i++ {
		oldOn := i < len(t.present) && t.present[i]
		newOn := i < len(newer.present) && newer.present[i]
		switch {
		case newOn && !oldOn:
			d.AddedNodes = append(d.AddedNodes, ProcessID(i))
		case oldOn && !newOn:
			d.RemovedNodes = append(d.RemovedNodes, ProcessID(i))
		}
	}
	for _, e := range newer.Edges() {
		if !t.edges[e] {
			d.AddedEdges = append(d.AddedEdges, e)
		}
	}
	for _, e := range t.Edges() {
		if !newer.edges[e] {
			d.RemovedEdges = append(d.RemovedEdges, e)
		}
	}
	return d
}
