package graph

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestPartitionCoversEveryProcessor: every processor lands in exactly
// one shard, every shard is non-empty, and member lists are ascending.
func TestPartitionCoversEveryProcessor(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := RandomConnected(10+rng.Intn(40), 80, rng)
		k := 1 + rng.Intn(6)
		pt := g.Partition(k, seed)
		if pt.K() != k {
			t.Fatalf("K() = %d, want %d", pt.K(), k)
		}
		total := 0
		for s := 0; s < k; s++ {
			ms := pt.Members(s)
			if len(ms) == 0 {
				t.Fatalf("seed %d: shard %d of %d is empty on %v", seed, s, k, g)
			}
			total += len(ms)
			for i, p := range ms {
				if pt.Of(p) != s {
					t.Fatalf("seed %d: member %d of shard %d has Of=%d", seed, p, s, pt.Of(p))
				}
				if i > 0 && ms[i-1] >= p {
					t.Fatalf("seed %d: shard %d members not ascending: %v", seed, s, ms)
				}
			}
		}
		if total != g.N() {
			t.Fatalf("seed %d: %d members across shards, want %d", seed, total, g.N())
		}
	}
}

// TestPartitionDeterministic: the same (graph, k, seed) always yields
// the same assignment; a different seed generally yields a different one.
func TestPartitionDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := RandomConnected(40, 80, rng)
	a := g.Partition(4, 11)
	b := g.Partition(4, 11)
	if !reflect.DeepEqual(a.of, b.of) {
		t.Fatal("same seed produced different partitions")
	}
	differs := false
	for seed := int64(0); seed < 8 && !differs; seed++ {
		if !reflect.DeepEqual(a.of, g.Partition(4, 100+seed).of) {
			differs = true
		}
	}
	if !differs {
		t.Fatal("eight different seeds all reproduced the same partition (seed unused?)")
	}
}

// TestPartitionBoundary: Boundary(p) holds exactly when p has a neighbor
// in another shard, and CutEdges counts each crossing edge once.
func TestPartitionBoundary(t *testing.T) {
	g := Grid(5, 5)
	pt := g.Partition(3, 7)
	cut := 0
	for p := 0; p < g.N(); p++ {
		want := false
		for _, q := range g.Neighbors(ProcessID(p)) {
			if pt.Of(q) != pt.Of(ProcessID(p)) {
				want = true
				if ProcessID(p) < q {
					cut++
				}
			}
		}
		if pt.Boundary(ProcessID(p)) != want {
			t.Fatalf("Boundary(%d) = %v, want %v", p, pt.Boundary(ProcessID(p)), want)
		}
	}
	if pt.CutEdges() != cut {
		t.Fatalf("CutEdges() = %d, want %d", pt.CutEdges(), cut)
	}
	if pt.CutEdges() >= g.M() {
		t.Fatalf("BFS growth should keep some edges interior: cut %d of %d", pt.CutEdges(), g.M())
	}
}

// TestPartitionClamps: k below 1 and above n are clamped; k = n gives
// singleton shards; a single shard has no boundary.
func TestPartitionClamps(t *testing.T) {
	g := Ring(6)
	if got := g.Partition(0, 1).K(); got != 1 {
		t.Fatalf("K() = %d, want 1", got)
	}
	if got := g.Partition(99, 1).K(); got != 6 {
		t.Fatalf("K() = %d, want 6", got)
	}
	one := g.Partition(1, 1)
	for p := 0; p < 6; p++ {
		if one.Boundary(ProcessID(p)) {
			t.Fatalf("single shard has boundary at %d", p)
		}
	}
	if one.CutEdges() != 0 {
		t.Fatalf("single shard cut = %d", one.CutEdges())
	}
}

// TestPartitionBalanced: round-robin BFS growth keeps shard sizes within
// a reasonable envelope of the even split on well-connected graphs.
func TestPartitionBalanced(t *testing.T) {
	g := Grid(10, 10)
	pt := g.Partition(4, 5)
	for s := 0; s < 4; s++ {
		n := len(pt.Members(s))
		if n < 13 || n > 37 {
			t.Fatalf("shard %d has %d of 100 processors (want near 25)", s, n)
		}
	}
}

// TestPartitionIsolated: partitioning an elastic graph with isolated
// slots assigns every slot without panicking.
func TestPartitionIsolated(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 2)
	// slots 3 and 4 are detached
	g.FreezeIsolated()
	pt := g.Partition(2, 1)
	total := 0
	for s := 0; s < pt.K(); s++ {
		total += len(pt.Members(s))
	}
	if total != 5 {
		t.Fatalf("assigned %d of 5 processors", total)
	}
}
