package graph

import (
	"fmt"
	"math/rand"
)

// Partition is a deterministic, seeded decomposition of a frozen graph
// into k shards: connected-ish regions of near-equal size grown by
// round-robin multi-source BFS from farthest-point-sampled seeds. The
// sharded step engine (internal/statemodel) uses it to assign guard
// evaluation and action execution to workers; a processor is a boundary
// processor when it has a neighbor in another shard, and only boundary
// processors can ever conflict with a move owned by a different shard.
//
// The decomposition is a pure function of (graph, k, seed): the same
// inputs always yield the same shard assignment, which is what lets a
// sharded execution stay bit-identical to a serial one regardless of how
// the scheduler interleaves the workers.
type Partition struct {
	g        *Graph
	k        int
	seed     int64
	of       []int         // processor -> shard
	boundary []bool        // processor has a neighbor in another shard
	members  [][]ProcessID // per shard, ascending processor IDs
	cut      int           // edges whose endpoints land in different shards
}

// Partition decomposes the frozen graph into k shards under the given
// seed. k is clamped to [1, n]. The assignment is deterministic: shard
// seeds are farthest-point sampled (seed picks the first), regions grow
// by round-robin BFS claiming one processor per shard per turn, and any
// processor left unreachable (isolated slots of elastic graphs) falls
// back to ID-order round-robin.
func (g *Graph) Partition(k int, seed int64) *Partition {
	g.mustBeFrozen()
	if k < 1 {
		k = 1
	}
	if k > g.n {
		k = g.n
	}
	pt := &Partition{g: g, k: k, seed: seed, of: make([]int, g.n), boundary: make([]bool, g.n)}
	for i := range pt.of {
		pt.of[i] = -1
	}
	starts := pt.sampleStarts()
	frontiers := make([][]ProcessID, k)
	remaining := g.n
	for s, v := range starts {
		frontiers[s] = append(frontiers[s], v)
	}
	for remaining > 0 {
		progress := false
		for s := 0; s < k; s++ {
			for len(frontiers[s]) > 0 {
				v := frontiers[s][0]
				frontiers[s] = frontiers[s][1:]
				if pt.of[v] >= 0 {
					continue
				}
				pt.of[v] = s
				remaining--
				for _, w := range g.adj[v] {
					if pt.of[w] < 0 {
						frontiers[s] = append(frontiers[s], w)
					}
				}
				progress = true
				break
			}
		}
		if !progress {
			// Unreachable leftovers (isolated slots): deterministic fallback.
			next := 0
			for v := range pt.of {
				if pt.of[v] < 0 {
					pt.of[v] = next % k
					next++
					remaining--
				}
			}
		}
	}
	pt.members = make([][]ProcessID, k)
	for v := 0; v < g.n; v++ {
		pt.members[pt.of[v]] = append(pt.members[pt.of[v]], ProcessID(v))
	}
	for v := 0; v < g.n; v++ {
		for _, w := range g.adj[v] {
			if pt.of[w] != pt.of[v] {
				pt.boundary[v] = true
				if ProcessID(v) < w {
					pt.cut++
				}
			}
		}
	}
	return pt
}

// sampleStarts picks k distinct start processors: the first uniformly
// under the seed, each next maximizing the minimal BFS distance to the
// already chosen set (ties broken by lowest ID, unreachable processors
// treated as maximally far so every component gets a seed eventually).
func (pt *Partition) sampleStarts() []ProcessID {
	g, k := pt.g, pt.k
	rng := rand.New(rand.NewSource(pt.seed))
	starts := []ProcessID{ProcessID(rng.Intn(g.n))}
	chosen := make([]bool, g.n)
	chosen[starts[0]] = true
	for len(starts) < k {
		best, bestDist := ProcessID(-1), -1
		for v := 0; v < g.n; v++ {
			if chosen[v] {
				continue
			}
			min := int(^uint(0) >> 1)
			for _, s := range starts {
				d := g.dist[v][s]
				if d < 0 {
					d = g.n // unreachable: farther than any real path
				}
				if d < min {
					min = d
				}
			}
			if min > bestDist {
				best, bestDist = ProcessID(v), min
			}
		}
		starts = append(starts, best)
		chosen[best] = true
	}
	return starts
}

// K returns the shard count.
func (pt *Partition) K() int { return pt.k }

// Of returns the shard owning processor p.
func (pt *Partition) Of(p ProcessID) int { return pt.of[p] }

// Boundary reports whether p has a neighbor in another shard. Interior
// processors of distinct shards are never adjacent, so their moves can
// always execute in the same parallel batch.
func (pt *Partition) Boundary(p ProcessID) bool { return pt.boundary[p] }

// Members returns the processors of shard s in ascending ID order. The
// returned slice must not be modified.
func (pt *Partition) Members(s int) []ProcessID { return pt.members[s] }

// CutEdges returns the number of edges crossing shard boundaries — the
// quantity the BFS growth heuristic tries to keep small, since only
// boundary processors serialize against other shards.
func (pt *Partition) CutEdges() int { return pt.cut }

// String renders a compact summary, e.g. "partition(k=4, cut=12/40)".
func (pt *Partition) String() string {
	return fmt.Sprintf("partition(k=%d, cut=%d/%d)", pt.k, pt.cut, pt.g.M())
}
