package obs

import (
	"sync"
	"testing"
)

func TestNilBusIsInactive(t *testing.T) {
	var b *Bus
	if b.Active() {
		t.Fatal("nil bus reports active")
	}
	b.Publish(Event{Kind: KindStep}) // must not panic
}

func TestBusInactiveUntilSubscribed(t *testing.T) {
	b := NewBus()
	if b.Active() {
		t.Fatal("fresh bus reports active")
	}
	b.Publish(Event{Kind: KindStep}) // dropped, no seq consumed
	var got []Event
	b.Subscribe(func(ev Event) { got = append(got, ev) })
	if !b.Active() {
		t.Fatal("subscribed bus reports inactive")
	}
	b.Publish(Event{Kind: KindFire, Rule: "R1@0"})
	b.Publish(Event{Kind: KindStep, Count: 1})
	if len(got) != 2 {
		t.Fatalf("got %d events, want 2", len(got))
	}
	if got[0].Seq != 1 || got[1].Seq != 2 {
		t.Fatalf("sequence numbers = %d, %d; want 1, 2 (pre-subscription publishes must not consume numbers)",
			got[0].Seq, got[1].Seq)
	}
}

func TestBusFanOutOrder(t *testing.T) {
	b := NewBus()
	var a, c []uint64
	b.Subscribe(func(ev Event) { a = append(a, ev.Seq) })
	b.Subscribe(func(ev Event) { c = append(c, ev.Seq) })
	for i := 0; i < 5; i++ {
		b.Publish(Event{Kind: KindRound})
	}
	if len(a) != 5 || len(c) != 5 {
		t.Fatalf("fan-out lost events: %d, %d", len(a), len(c))
	}
	for i := range a {
		if a[i] != uint64(i+1) || c[i] != uint64(i+1) {
			t.Fatalf("subscriber saw out-of-order seq at %d: %d / %d", i, a[i], c[i])
		}
	}
}

// TestBusConcurrentPublish exercises the copy-on-write subscriber list and
// the atomic sequence counter under -race: many goroutines publish while a
// mutex-guarded subscriber collects.
func TestBusConcurrentPublish(t *testing.T) {
	b := NewBus()
	var mu sync.Mutex
	seen := make(map[uint64]bool)
	b.Subscribe(func(ev Event) {
		mu.Lock()
		if seen[ev.Seq] {
			mu.Unlock()
			t.Errorf("duplicate seq %d", ev.Seq)
			return
		}
		seen[ev.Seq] = true
		mu.Unlock()
	})
	const workers, per = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				b.Publish(Event{Kind: KindDeliver, Msg: &MsgRecord{UID: 1}})
			}
		}()
	}
	wg.Wait()
	if len(seen) != workers*per {
		t.Fatalf("saw %d events, want %d", len(seen), workers*per)
	}
}
