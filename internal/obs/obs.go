// Package obs is the structured observability layer of the reproduction:
// a typed event bus that the engine, the protocol rules, the fault
// injector, and the message-passing port publish to, plus the consumers
// that turn the stream into artifacts — a versioned JSONL sink/loader
// (jsonl.go), a per-message lifecycle tracker feeding metrics summaries
// (lifecycle.go), and an opt-in HTTP introspection endpoint (http.go).
//
// The bus is zero-cost when unsubscribed: publishers guard event
// construction behind Bus.Active (a single atomic pointer load), so a run
// with no sink attached pays no allocations and no formatting. This is the
// contract every consumer relies on and every perf experiment (E-EP) is
// measured under.
//
// The package sits below the protocol layers: it may import only
// internal/graph and internal/metrics, so that statemodel, core, routing,
// faults, trace, sim and msgpass can all publish to it without import
// cycles.
package obs

import (
	"sync"
	"sync/atomic"

	"ssmfp/internal/graph"
)

// Kind identifies a typed event class. The set is closed and versioned
// with the JSONL schema: loaders reject kinds they do not know.
type Kind string

// The event kinds of schema version 1.
const (
	// KindStep marks the completion of one engine step; Count carries the
	// number of activations the daemon selected.
	KindStep Kind = "step"
	// KindFire marks one rule activation (Rule is the instance name, e.g.
	// "R3@1"); emitted once per selection, after the action's own events.
	KindFire Kind = "fire"
	// KindGenerate marks R1 accepting a message from the higher layer into
	// bufR_p(d); Msg carries the new reception-buffer value.
	KindGenerate Kind = "generate"
	// KindInternal marks R2's internal move bufR→bufE; Msg carries the new
	// emission-buffer value (fresh hop and color), bufR empties.
	KindInternal Kind = "internal"
	// KindForward marks R3 copying bufE_s(d) into bufR_p(d); From is the
	// served neighbor s, Msg the copied value.
	KindForward Kind = "forward"
	// KindErase marks R4/R5 emptying a buffer; Buf selects which one and
	// Msg records the erased value.
	KindErase Kind = "erase"
	// KindDeliver marks R6 handing bufE_d(d) to the higher layer.
	KindDeliver Kind = "deliver"
	// KindRound marks the completion of a round (BDPV accounting); Round
	// is the new completed-round count.
	KindRound Kind = "round"
	// KindFault marks a transient fault injected at Proc; Detail names the
	// fault class.
	KindFault Kind = "fault"
	// KindRoute marks the routing algorithm re-pointing nextHop_p(d); To
	// is the new parent.
	KindRoute Kind = "route"
	// KindStabilized marks the first observation that every routing table
	// is canonical (the R_A instant of Propositions 5-7).
	KindStabilized Kind = "stabilized"
	// KindWire marks a transport-layer link event (dial, redial, accept,
	// partition cut/heal); Detail names it. Wire events exist only in the
	// wall-clock domain (Step and Round are -1): they come from the real
	// transports under internal/transport, never from an engine run, so
	// no replayable trace contains them.
	KindWire Kind = "wire"
	// KindCellStart marks a campaign worker picking up one experiment
	// cell; Detail carries the cell key ("p5/line-5#0"), Count the cell's
	// canonical grid index. Like wire events, campaign events live in the
	// wall-clock domain (Step and Round are -1) and never appear in a
	// replayable engine trace.
	KindCellStart Kind = "cell-start"
	// KindCellDone marks a cell's completion; Detail carries the cell
	// key, Count the number of cells completed so far, and Rule reuses
	// its string slot for the verdict ("ok" or "fail").
	KindCellDone Kind = "cell-done"
	// KindLoadTick is the load generator's periodic progress beat: Count
	// carries the tagged deliveries so far and Detail a compact
	// "step=<i> sent=<s> delivered=<d>" summary. Load events live in the
	// wall-clock domain (Step and Round are -1) and never appear in a
	// replayable engine trace.
	KindLoadTick Kind = "load-tick"
	// KindLoadDone marks the completion of one load step (a single run is
	// one step; a sweep emits one per rate step). Count carries the step
	// index, Detail the step summary, and Rule reuses its string slot for
	// the exactly-once verdict ("ok" or "fail").
	KindLoadDone Kind = "load-done"
	// KindTelemetry carries one telemetry-plane snapshot: Detail is a
	// complete ssmfp-telemetry/v1 JSONL line and Count the number of
	// samples in it. Telemetry events live in the wall-clock domain (Step
	// and Round are -1) and never appear in a replayable engine trace.
	KindTelemetry Kind = "telemetry"
)

// Valid reports whether k is a kind of the current schema.
func (k Kind) Valid() bool {
	switch k {
	case KindStep, KindFire, KindGenerate, KindInternal, KindForward,
		KindErase, KindDeliver, KindRound, KindFault, KindRoute, KindStabilized,
		KindWire, KindCellStart, KindCellDone, KindLoadTick, KindLoadDone,
		KindTelemetry:
		return true
	}
	return false
}

// Buffer selectors for KindErase events.
const (
	BufReception = "R"
	BufEmission  = "E"
)

// MsgRecord is the observability image of a protocol message: the triple
// (payload, last hop, color) the rules compare, plus the simulation-side
// UID and validity bit the lifecycle tracker keys on. Records are values —
// an event carries the buffer's content at emission time, never a live
// pointer into protocol state.
type MsgRecord struct {
	Payload string          `json:"payload"`
	LastHop graph.ProcessID `json:"lasthop"`
	Color   int             `json:"color"`
	UID     uint64          `json:"uid"`
	Valid   bool            `json:"valid"`
}

// Event is one typed observation. Which fields are meaningful depends on
// Kind (see the kind constants); Seq is stamped by the bus and totally
// orders the stream, Step/Round locate the event in the execution (Step is
// -1 for wall-clock domains such as the message-passing port, where steps
// do not exist).
type Event struct {
	Seq    uint64          `json:"seq"`
	Kind   Kind            `json:"kind"`
	Step   int             `json:"step"`
	Round  int             `json:"round"`
	Proc   graph.ProcessID `json:"proc"`
	Dest   graph.ProcessID `json:"dest"`
	From   graph.ProcessID `json:"from"`
	To     graph.ProcessID `json:"to"`
	Rule   string          `json:"rule,omitempty"`
	Buf    string          `json:"buf,omitempty"`
	Msg    *MsgRecord      `json:"msg,omitempty"`
	Count  int             `json:"count,omitempty"`
	Detail string          `json:"detail,omitempty"`
}

// Bus fans typed events out to its subscribers. Publish assigns each event
// a monotone sequence number and invokes every subscriber synchronously,
// in subscription order. Active is a single atomic load, making the
// no-subscriber case free; Subscribe is copy-on-write, so publishing is
// safe from concurrent goroutines (the message-passing port) as long as
// each subscriber tolerates concurrent calls itself. A nil *Bus is a valid
// inactive bus: Active reports false and Publish is a no-op.
type Bus struct {
	seq    atomic.Uint64
	mu     sync.Mutex
	nextID uint64
	subs   atomic.Pointer[[]subEntry]
}

// subEntry pairs a subscriber with the identity its unsubscribe closure
// removes (function values are not comparable, so removal keys on an id).
type subEntry struct {
	id uint64
	fn func(Event)
}

// NewBus returns an empty bus.
func NewBus() *Bus { return &Bus{} }

// Active reports whether any subscriber is attached. Publishers use it to
// skip event construction entirely on the zero-subscriber fast path.
func (b *Bus) Active() bool {
	if b == nil {
		return false
	}
	return b.subs.Load() != nil
}

// Subscribe attaches fn; it will be called for every subsequent Publish.
// The returned closure detaches it again (idempotent). Subscription is
// copy-on-write: a Publish or PublishBatch that loaded the subscriber
// list before an unsubscribe may still invoke fn for events already in
// flight — subscribers must tolerate a trailing call after unsubscribing,
// exactly as they must tolerate concurrent calls.
func (b *Bus) Subscribe(fn func(Event)) (unsubscribe func()) {
	b.mu.Lock()
	b.nextID++
	id := b.nextID
	var cur []subEntry
	if p := b.subs.Load(); p != nil {
		cur = *p
	}
	next := make([]subEntry, len(cur)+1)
	copy(next, cur)
	next[len(cur)] = subEntry{id: id, fn: fn}
	b.subs.Store(&next)
	b.mu.Unlock()
	return func() { b.unsubscribe(id) }
}

// unsubscribe removes the entry with the given id; the empty list stores
// as nil so Active returns to the zero-cost fast path.
func (b *Bus) unsubscribe(id uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	p := b.subs.Load()
	if p == nil {
		return
	}
	cur := *p
	next := make([]subEntry, 0, len(cur))
	for _, e := range cur {
		if e.id != id {
			next = append(next, e)
		}
	}
	if len(next) == len(cur) {
		return
	}
	if len(next) == 0 {
		b.subs.Store(nil)
		return
	}
	b.subs.Store(&next)
}

// Publish stamps ev with the next sequence number and delivers it to every
// subscriber. With no subscribers it is a no-op (and does not consume a
// sequence number, so recorded streams are gapless).
func (b *Bus) Publish(ev Event) {
	if b == nil {
		return
	}
	p := b.subs.Load()
	if p == nil {
		return
	}
	ev.Seq = b.seq.Add(1)
	for _, e := range *p {
		e.fn(ev)
	}
}

// PublishBatch stamps and delivers a burst of events with one sequence
// reservation: the batch occupies a contiguous, gapless seq range in
// publication order, and concurrent batches interleave without tearing a
// batch's internal order. Publishers that emit several events per action
// (the message-passing port's rule firings) use it to amortize the
// per-event atomic to one per burst. evs is modified in place (Seq is
// stamped); events are handed to subscribers by value, so the caller may
// reuse the backing slice as soon as PublishBatch returns.
func (b *Bus) PublishBatch(evs []Event) {
	if b == nil || len(evs) == 0 {
		return
	}
	p := b.subs.Load()
	if p == nil {
		return
	}
	base := b.seq.Add(uint64(len(evs))) - uint64(len(evs))
	for i := range evs {
		evs[i].Seq = base + uint64(i) + 1
		for _, e := range *p {
			e.fn(evs[i])
		}
	}
}
