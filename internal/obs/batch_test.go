package obs

import (
	"sync"
	"testing"
)

// TestPublishBatchContiguousSeq pins the batch contract: one sequence
// reservation, events stamped in order with no gaps, interleaved cleanly
// with single Publish calls.
func TestPublishBatchContiguousSeq(t *testing.T) {
	b := NewBus()
	var got []uint64
	b.Subscribe(func(ev Event) { got = append(got, ev.Seq) })

	b.Publish(Event{Kind: KindStep})
	batch := []Event{{Kind: KindDeliver}, {Kind: KindErase}, {Kind: KindFire}}
	b.PublishBatch(batch)
	b.Publish(Event{Kind: KindStep})

	want := []uint64{1, 2, 3, 4, 5}
	if len(got) != len(want) {
		t.Fatalf("subscriber saw %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("seq stream %v, want %v", got, want)
		}
	}
	// The caller's slice is stamped in place and reusable afterwards.
	if batch[0].Seq != 2 || batch[2].Seq != 4 {
		t.Fatalf("batch not stamped in place: %+v", batch)
	}
}

// TestPublishBatchInactive pins the zero-subscriber fast path: no
// sequence numbers are consumed, so recorded streams stay gapless.
func TestPublishBatchInactive(t *testing.T) {
	b := NewBus()
	b.PublishBatch([]Event{{Kind: KindStep}, {Kind: KindFire}})
	var nilBus *Bus
	nilBus.PublishBatch([]Event{{Kind: KindStep}}) // nil bus: no-op, no panic
	b.PublishBatch(nil)

	var first uint64
	b.Subscribe(func(ev Event) { first = ev.Seq })
	b.Publish(Event{Kind: KindStep})
	if first != 1 {
		t.Fatalf("inactive batches consumed sequence numbers: first live seq %d", first)
	}
}

// TestPublishBatchConcurrent holds batches atomic under concurrency: each
// batch occupies a contiguous seq range even when many goroutines publish
// at once.
func TestPublishBatchConcurrent(t *testing.T) {
	b := NewBus()
	var mu sync.Mutex
	seen := make(map[uint64]int) // seq -> publisher id
	b.Subscribe(func(ev Event) {
		mu.Lock()
		seen[ev.Seq] = ev.Count
		mu.Unlock()
	})
	const publishers, batchLen = 8, 5
	var wg sync.WaitGroup
	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			evs := make([]Event, batchLen)
			for i := range evs {
				evs[i] = Event{Kind: KindStep, Count: p}
			}
			b.PublishBatch(evs)
		}(p)
	}
	wg.Wait()
	if len(seen) != publishers*batchLen {
		t.Fatalf("%d distinct seqs, want %d", len(seen), publishers*batchLen)
	}
	// Contiguity: each publisher's batch occupies seqs [base, base+len).
	byPublisher := make(map[int][]uint64)
	for seq, p := range seen {
		byPublisher[p] = append(byPublisher[p], seq)
	}
	for p, seqs := range byPublisher {
		lo, hi := seqs[0], seqs[0]
		for _, s := range seqs {
			if s < lo {
				lo = s
			}
			if s > hi {
				hi = s
			}
		}
		if hi-lo != batchLen-1 {
			t.Fatalf("publisher %d batch spans [%d,%d], not contiguous", p, lo, hi)
		}
	}
}
