package obs

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestPublishBatchContiguousSeq pins the batch contract: one sequence
// reservation, events stamped in order with no gaps, interleaved cleanly
// with single Publish calls.
func TestPublishBatchContiguousSeq(t *testing.T) {
	b := NewBus()
	var got []uint64
	b.Subscribe(func(ev Event) { got = append(got, ev.Seq) })

	b.Publish(Event{Kind: KindStep})
	batch := []Event{{Kind: KindDeliver}, {Kind: KindErase}, {Kind: KindFire}}
	b.PublishBatch(batch)
	b.Publish(Event{Kind: KindStep})

	want := []uint64{1, 2, 3, 4, 5}
	if len(got) != len(want) {
		t.Fatalf("subscriber saw %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("seq stream %v, want %v", got, want)
		}
	}
	// The caller's slice is stamped in place and reusable afterwards.
	if batch[0].Seq != 2 || batch[2].Seq != 4 {
		t.Fatalf("batch not stamped in place: %+v", batch)
	}
}

// TestPublishBatchInactive pins the zero-subscriber fast path: no
// sequence numbers are consumed, so recorded streams stay gapless.
func TestPublishBatchInactive(t *testing.T) {
	b := NewBus()
	b.PublishBatch([]Event{{Kind: KindStep}, {Kind: KindFire}})
	var nilBus *Bus
	nilBus.PublishBatch([]Event{{Kind: KindStep}}) // nil bus: no-op, no panic
	b.PublishBatch(nil)

	var first uint64
	b.Subscribe(func(ev Event) { first = ev.Seq })
	b.Publish(Event{Kind: KindStep})
	if first != 1 {
		t.Fatalf("inactive batches consumed sequence numbers: first live seq %d", first)
	}
}

// TestPublishBatchConcurrent holds batches atomic under concurrency: each
// batch occupies a contiguous seq range even when many goroutines publish
// at once.
func TestPublishBatchConcurrent(t *testing.T) {
	b := NewBus()
	var mu sync.Mutex
	seen := make(map[uint64]int) // seq -> publisher id
	b.Subscribe(func(ev Event) {
		mu.Lock()
		seen[ev.Seq] = ev.Count
		mu.Unlock()
	})
	const publishers, batchLen = 8, 5
	var wg sync.WaitGroup
	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			evs := make([]Event, batchLen)
			for i := range evs {
				evs[i] = Event{Kind: KindStep, Count: p}
			}
			b.PublishBatch(evs)
		}(p)
	}
	wg.Wait()
	if len(seen) != publishers*batchLen {
		t.Fatalf("%d distinct seqs, want %d", len(seen), publishers*batchLen)
	}
	// Contiguity: each publisher's batch occupies seqs [base, base+len).
	byPublisher := make(map[int][]uint64)
	for seq, p := range seen {
		byPublisher[p] = append(byPublisher[p], seq)
	}
	for p, seqs := range byPublisher {
		lo, hi := seqs[0], seqs[0]
		for _, s := range seqs {
			if s < lo {
				lo = s
			}
			if s > hi {
				hi = s
			}
		}
		if hi-lo != batchLen-1 {
			t.Fatalf("publisher %d batch spans [%d,%d], not contiguous", p, lo, hi)
		}
	}
}

// TestPublishBatchConcurrentSubscribeUnsubscribe churns the subscriber
// set while batches are in flight: PublishBatch loads the subscriber list
// once per call, so a subscriber sees a batch either whole (if it was
// attached at the load) or not at all — never a torn fragment from the
// copy-on-write swap. Run under -race, this also exercises the
// Subscribe/unsubscribe store against concurrent publishes.
func TestPublishBatchConcurrentSubscribeUnsubscribe(t *testing.T) {
	b := NewBus()
	const publishers, batches, batchLen, churners = 4, 50, 7, 4

	// One permanent subscriber keeps the bus active throughout, counting
	// what a stable observer sees.
	var permanent atomic.Int64
	b.Subscribe(func(Event) { permanent.Add(1) })

	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Churners subscribe and unsubscribe continuously. Each transient
	// subscriber tracks its own event count; since PublishBatch snapshots
	// the subscriber list per call, every count must be a multiple of the
	// batch length (plus single publishes, of which there are none here).
	for c := 0; c < churners; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				var n atomic.Int64
				unsub := b.Subscribe(func(Event) { n.Add(1) })
				unsub()
				unsub() // idempotent
				if got := n.Load(); got%batchLen != 0 {
					t.Errorf("transient subscriber saw %d events, not a multiple of batch length %d (torn batch)", got, batchLen)
					return
				}
			}
		}()
	}
	var pubWG sync.WaitGroup
	for p := 0; p < publishers; p++ {
		pubWG.Add(1)
		go func() {
			defer pubWG.Done()
			evs := make([]Event, batchLen)
			for i := 0; i < batches; i++ {
				for j := range evs {
					evs[j] = Event{Kind: KindStep}
				}
				b.PublishBatch(evs)
			}
		}()
	}
	pubWG.Wait()
	close(stop)
	wg.Wait()
	if got := permanent.Load(); got != publishers*batches*batchLen {
		t.Fatalf("permanent subscriber saw %d events, want %d", got, publishers*batches*batchLen)
	}
	// After every transient unsubscribed, the bus must still deliver.
	before := permanent.Load()
	b.Publish(Event{Kind: KindStep})
	if permanent.Load() != before+1 {
		t.Fatal("permanent subscriber lost after unsubscribe churn")
	}
}

// TestUnsubscribeRestoresFastPath pins that removing the last subscriber
// returns the bus to the zero-cost inactive state.
func TestUnsubscribeRestoresFastPath(t *testing.T) {
	b := NewBus()
	unsub := b.Subscribe(func(Event) {})
	if !b.Active() {
		t.Fatal("bus inactive with a subscriber")
	}
	unsub()
	if b.Active() {
		t.Fatal("bus active after the last unsubscribe")
	}
	// Inactive publishes must not consume sequence numbers (gapless).
	b.Publish(Event{Kind: KindStep})
	var first uint64
	b.Subscribe(func(ev Event) { first = ev.Seq })
	b.Publish(Event{Kind: KindStep})
	if first != 1 {
		t.Fatalf("first live seq %d after inactive publish, want 1", first)
	}
}
