package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"ssmfp/internal/graph"
)

// SchemaVersion is the JSONL trace schema this build writes and reads.
// A trace is one header line followed by one line per event; bumping the
// version is required for any change that alters how a loader must
// interpret either.
const SchemaVersion = 1

// InitProc is one processor's slice of the initial configuration: its
// next-hop vector and the per-destination buffer occupancies. Together
// with the value-carrying events this is exactly enough to fold the
// stream back into every intermediate buffer configuration (trace.Replay).
type InitProc struct {
	NextHop []graph.ProcessID `json:"nexthop"`
	BufR    []*MsgRecord      `json:"bufR"`
	BufE    []*MsgRecord      `json:"bufE"`
}

// InitConfig is the initial configuration of a recorded run, indexed by
// processor ID.
type InitConfig struct {
	Procs []InitProc `json:"procs"`
}

// Header is the first line of a JSONL trace: schema version, topology,
// display names, the focus destination (-1 = none) and the initial
// configuration the event stream folds over.
type Header struct {
	Schema   int                  `json:"schema"`
	Scenario string               `json:"scenario,omitempty"`
	N        int                  `json:"n"`
	Edges    [][2]graph.ProcessID `json:"edges"`
	Names    []string             `json:"names,omitempty"`
	Dest     int                  `json:"dest"`
	Init     *InitConfig          `json:"init,omitempty"`
}

// Sink streams events to w as JSONL, one line per event, after an initial
// header line. Observe is safe for concurrent use; errors are sticky and
// reported by Err and Flush rather than per call (a telemetry sink must
// never panic the run it observes).
type Sink struct {
	mu     sync.Mutex
	w      *bufio.Writer
	err    error
	events int
}

// NewSink writes the header line (stamping the schema version) and returns
// a sink ready to subscribe to a Bus.
func NewSink(w io.Writer, h Header) (*Sink, error) {
	h.Schema = SchemaVersion
	bw := bufio.NewWriter(w)
	line, err := json.Marshal(h)
	if err != nil {
		return nil, fmt.Errorf("obs: marshal header: %w", err)
	}
	if _, err := bw.Write(append(line, '\n')); err != nil {
		return nil, fmt.Errorf("obs: write header: %w", err)
	}
	return &Sink{w: bw}, nil
}

// Observe appends one event line; pass it to Bus.Subscribe.
func (s *Sink) Observe(ev Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	line, err := json.Marshal(ev)
	if err != nil {
		s.err = err
		return
	}
	if _, err := s.w.Write(append(line, '\n')); err != nil {
		s.err = err
		return
	}
	s.events++
}

// Events returns how many events were written so far.
func (s *Sink) Events() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.events
}

// Err returns the first write or marshal error, if any.
func (s *Sink) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Flush drains the buffer and returns the sink's sticky error, if any.
func (s *Sink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	s.err = s.w.Flush()
	return s.err
}

// Load parses and validates a JSONL trace: the header line first (schema
// version must match, topology must be coherent), then every event line
// (kinds must be known, processor fields in range, sequence numbers
// strictly increasing). It is the schema's reference validator.
func Load(r io.Reader) (Header, []Event, error) {
	var h Header
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return h, nil, fmt.Errorf("obs: read header: %w", err)
		}
		return h, nil, fmt.Errorf("obs: empty trace")
	}
	if err := json.Unmarshal(sc.Bytes(), &h); err != nil {
		return h, nil, fmt.Errorf("obs: parse header: %w", err)
	}
	if h.Schema != SchemaVersion {
		return h, nil, fmt.Errorf("obs: trace schema %d, this build reads %d", h.Schema, SchemaVersion)
	}
	if h.N <= 0 {
		return h, nil, fmt.Errorf("obs: header has n=%d", h.N)
	}
	inRange := func(p graph.ProcessID) bool { return p >= 0 && int(p) < h.N }
	for _, e := range h.Edges {
		if !inRange(e[0]) || !inRange(e[1]) {
			return h, nil, fmt.Errorf("obs: header edge %v out of range", e)
		}
	}
	var events []Event
	var lastSeq uint64
	line := 1
	for sc.Scan() {
		line++
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return h, nil, fmt.Errorf("obs: line %d: %w", line, err)
		}
		if !ev.Kind.Valid() {
			return h, nil, fmt.Errorf("obs: line %d: unknown event kind %q", line, ev.Kind)
		}
		if ev.Seq <= lastSeq {
			return h, nil, fmt.Errorf("obs: line %d: sequence %d not increasing (prev %d)", line, ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
		if !inRange(ev.Proc) || !inRange(ev.Dest) {
			return h, nil, fmt.Errorf("obs: line %d: processor field out of range (proc=%d dest=%d)", line, ev.Proc, ev.Dest)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		return h, nil, fmt.Errorf("obs: line %d: %w", line, err)
	}
	return h, events, nil
}

// WriteJSONL encodes a complete trace in one call — a convenience wrapper
// over Sink for already-collected event slices.
func WriteJSONL(w io.Writer, h Header, events []Event) error {
	s, err := NewSink(w, h)
	if err != nil {
		return err
	}
	for _, ev := range events {
		s.Observe(ev)
	}
	return s.Flush()
}
