package obs

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"ssmfp/internal/graph"
)

func sampleHeader() Header {
	return Header{
		Scenario: "test",
		N:        3,
		Edges:    [][2]graph.ProcessID{{0, 1}, {1, 2}},
		Names:    []string{"a", "b", "c"},
		Dest:     1,
		Init: &InitConfig{Procs: []InitProc{
			{NextHop: []graph.ProcessID{0, 1, 1}, BufR: make([]*MsgRecord, 3), BufE: make([]*MsgRecord, 3)},
			{NextHop: []graph.ProcessID{0, 1, 2}, BufR: make([]*MsgRecord, 3), BufE: make([]*MsgRecord, 3)},
			{NextHop: []graph.ProcessID{1, 1, 2}, BufR: []*MsgRecord{nil, {Payload: "x", LastHop: 2, Color: 0, UID: 7}, nil}, BufE: make([]*MsgRecord, 3)},
		}},
	}
}

func sampleEvents() []Event {
	return []Event{
		{Seq: 1, Kind: KindGenerate, Step: 0, Round: 0, Proc: 2, Dest: 1, Rule: "R1@1",
			Msg: &MsgRecord{Payload: "hello", LastHop: 2, Color: 0, UID: 42, Valid: true}},
		{Seq: 2, Kind: KindFire, Step: 0, Proc: 2, Rule: "R1@1"},
		{Seq: 3, Kind: KindStep, Step: 0, Count: 1},
		{Seq: 4, Kind: KindRound, Step: 1, Round: 1},
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, sampleHeader(), sampleEvents()); err != nil {
		t.Fatal(err)
	}
	h, evs, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := sampleHeader()
	want.Schema = SchemaVersion
	if !reflect.DeepEqual(h, want) {
		t.Fatalf("header round-trip mismatch:\n got %+v\nwant %+v", h, want)
	}
	if !reflect.DeepEqual(evs, sampleEvents()) {
		t.Fatalf("events round-trip mismatch:\n got %+v\nwant %+v", evs, sampleEvents())
	}
}

func TestSinkStampsSchemaAndCounts(t *testing.T) {
	var buf bytes.Buffer
	s, err := NewSink(&buf, Header{N: 2, Dest: -1})
	if err != nil {
		t.Fatal(err)
	}
	s.Observe(Event{Seq: 1, Kind: KindStep})
	s.Observe(Event{Seq: 2, Kind: KindStep, Step: 1})
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if s.Events() != 2 {
		t.Fatalf("Events() = %d, want 2", s.Events())
	}
	h, evs, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h.Schema != SchemaVersion {
		t.Fatalf("schema = %d, want %d", h.Schema, SchemaVersion)
	}
	if len(evs) != 2 {
		t.Fatalf("loaded %d events, want 2", len(evs))
	}
}

func TestLoadRejectsBadTraces(t *testing.T) {
	cases := map[string]string{
		"empty":          "",
		"wrong schema":   `{"schema":99,"n":2,"dest":-1}`,
		"zero n":         `{"schema":1,"n":0,"dest":-1}`,
		"edge range":     `{"schema":1,"n":2,"edges":[[0,5]],"dest":-1}`,
		"unknown kind":   `{"schema":1,"n":2,"dest":-1}` + "\n" + `{"seq":1,"kind":"warp","step":0,"round":0,"proc":0,"dest":0,"from":0,"to":0}`,
		"seq regression": `{"schema":1,"n":2,"dest":-1}` + "\n" + `{"seq":2,"kind":"step","step":0,"round":0,"proc":0,"dest":0,"from":0,"to":0}` + "\n" + `{"seq":2,"kind":"step","step":1,"round":0,"proc":0,"dest":0,"from":0,"to":0}`,
		"proc range":     `{"schema":1,"n":2,"dest":-1}` + "\n" + `{"seq":1,"kind":"fire","step":0,"round":0,"proc":9,"dest":0,"from":0,"to":0}`,
	}
	for name, in := range cases {
		if _, _, err := Load(strings.NewReader(in)); err == nil {
			t.Errorf("%s: Load accepted an invalid trace", name)
		}
	}
}
