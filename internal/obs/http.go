package obs

import (
	"crypto/tls"
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Handler returns the introspection mux: expvar under /debug/vars, the
// pprof suite under /debug/pprof/, and a JSON snapshot of whatever
// snapshot() returns under /debug/ssmfp (engine Stats, per-rule move
// counts, msgpass queue depths — whatever the host wires in). snapshot may
// return nil, rendering as JSON null; it is called per request and must be
// safe for concurrent use.
func Handler(snapshot func() any) http.Handler {
	return HandlerWith(snapshot, nil)
}

// Route is one extra endpoint a host mounts on the introspection mux —
// the cluster admin surface, for example. Pattern follows ServeMux rules
// (a trailing slash mounts a subtree), and the handler may itself be a
// mux with absolute patterns.
type Route struct {
	Pattern string
	Handler http.Handler
}

// HandlerWith is Handler plus an optional metrics handler mounted at
// /metrics — the telemetry plane's Prometheus text endpoint — and any
// number of extra routes. It takes http.Handlers rather than concrete
// types so obs stays below the telemetry and cluster packages (they
// publish into obs; obs cannot import them back).
func HandlerWith(snapshot func() any, metrics http.Handler, extra ...Route) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/debug/ssmfp", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		var v any
		if snapshot != nil {
			v = snapshot()
		}
		if err := enc.Encode(v); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	index := "ssmfp introspection\n\n/debug/ssmfp\n/debug/vars\n/debug/pprof/\n"
	if metrics != nil {
		mux.Handle("/metrics", metrics)
		index += "/metrics\n"
	}
	for _, r := range extra {
		mux.Handle(r.Pattern, r.Handler)
		index += r.Pattern + "\n"
	}
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, index)
	})
	return mux
}

// Server is a running introspection endpoint.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts the introspection endpoint on addr (e.g. ":8080" or
// "127.0.0.1:0") and returns immediately; Close shuts it down.
func Serve(addr string, snapshot func() any) (*Server, error) {
	return ServeWith(addr, snapshot, nil)
}

// ServeWith is Serve with a /metrics handler and extra routes mounted
// (see HandlerWith).
func ServeWith(addr string, snapshot func() any, metrics http.Handler, extra ...Route) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{ln: ln, srv: &http.Server{Handler: HandlerWith(snapshot, metrics, extra...), ReadHeaderTimeout: 5 * time.Second}}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// ServeTLSWith is ServeWith behind mutual TLS: the listener is wrapped
// with conf (which should demand and verify client certificates), so the
// debug/metrics/admin surface is only reachable inside the cluster's
// trust domain. conf is used as given; role-based authorization on top of
// authentication is the host's business (an extra Route wrapping the
// admin mux).
func ServeTLSWith(addr string, conf *tls.Config, snapshot func() any, metrics http.Handler, extra ...Route) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{ln: ln, srv: &http.Server{Handler: HandlerWith(snapshot, metrics, extra...), ReadHeaderTimeout: 5 * time.Second}}
	go func() { _ = s.srv.Serve(tls.NewListener(ln, conf)) }()
	return s, nil
}

// Addr returns the bound address (useful with port 0).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops accepting connections and closes the listener.
func (s *Server) Close() error { return s.srv.Close() }
