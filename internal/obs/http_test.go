package obs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

func TestHandlerSnapshot(t *testing.T) {
	type snap struct {
		Steps int            `json:"steps"`
		Moves map[string]int `json:"moves"`
	}
	h := Handler(func() any { return snap{Steps: 7, Moves: map[string]int{"R1": 3}} })
	srv := httptest.NewServer(h)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/debug/ssmfp")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var got snap
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.Steps != 7 || got.Moves["R1"] != 3 {
		t.Fatalf("snapshot = %+v", got)
	}

	for _, path := range []string{"/debug/vars", "/", "/debug/pprof/"} {
		r, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", path, r.StatusCode)
		}
	}
}

func TestServeAndClose(t *testing.T) {
	s, err := Serve("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + s.Addr() + "/debug/ssmfp")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}
