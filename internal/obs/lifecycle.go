package obs

import (
	"sort"
	"sync"

	"ssmfp/internal/graph"
	"ssmfp/internal/metrics"
)

// Hop is one buffer-to-buffer advance of a message: a KindForward event
// copied it from From's emission buffer into To's reception buffer.
type Hop struct {
	From  graph.ProcessID `json:"from"`
	To    graph.ProcessID `json:"to"`
	Step  int             `json:"step"`
	Round int             `json:"round"`
}

// Timeline is the reconstructed lifecycle of one message, keyed by the
// checker UID: where and when it was generated, every hop it took, and
// when it was delivered.
type Timeline struct {
	UID          uint64          `json:"uid"`
	Src          graph.ProcessID `json:"src"`
	Dest         graph.ProcessID `json:"dest"`
	Payload      string          `json:"payload"`
	GenStep      int             `json:"genStep"`
	GenRound     int             `json:"genRound"`
	Hops         []Hop           `json:"hops,omitempty"`
	Delivered    bool            `json:"delivered"`
	DeliverStep  int             `json:"deliverStep,omitempty"`
	DeliverRound int             `json:"deliverRound,omitempty"`
	Deliveries   int             `json:"deliveries"`
}

// Report aggregates the timelines into the per-message quantities the
// paper's Propositions 5-7 bound, all in rounds:
//
//   - delivery time (Prop. 5): generation round → delivery round, per
//     delivered message;
//   - delay (Prop. 6): rounds until a source's first R1 execution;
//   - waiting time (Prop. 6): rounds between a source's consecutive R1
//     executions;
//   - amortized rounds per delivery (Prop. 7): rounds elapsed at the last
//     delivery divided by the number of deliveries;
//   - hop transit: rounds a message spends per forwarding hop.
type Report struct {
	Messages  int `json:"messages"`
	Delivered int `json:"delivered"`

	DeliveryRounds metrics.Summary `json:"deliveryRounds"`
	DelayRounds    metrics.Summary `json:"delayRounds"`
	WaitingRounds  metrics.Summary `json:"waitingRounds"`
	HopRounds      metrics.Summary `json:"hopRounds"`

	AmortizedRoundsPerDelivery float64 `json:"amortizedRoundsPerDelivery"`

	Timelines []*Timeline `json:"timelines,omitempty"`
}

// Tracker folds UID-keyed bus events into per-message Timelines. It only
// tracks messages it saw generated (initial garbage and fault-injected
// messages have no lifecycle start, so no timeline). Observe is safe for
// concurrent use; pass it to Bus.Subscribe.
type Tracker struct {
	mu        sync.Mutex
	timelines map[uint64]*Timeline
	order     []uint64
	genRounds map[graph.ProcessID][]int // per source, rounds of its R1 executions in order
}

// NewTracker returns an empty tracker.
func NewTracker() *Tracker {
	return &Tracker{
		timelines: make(map[uint64]*Timeline),
		genRounds: make(map[graph.ProcessID][]int),
	}
}

// Observe consumes one bus event.
func (t *Tracker) Observe(ev Event) {
	switch ev.Kind {
	case KindGenerate, KindForward, KindDeliver:
	default:
		return
	}
	if ev.Msg == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	tl := t.timelines[ev.Msg.UID]
	switch ev.Kind {
	case KindGenerate:
		if tl != nil {
			return // UID reuse would be a checker bug; keep the first
		}
		tl = &Timeline{
			UID: ev.Msg.UID, Src: ev.Proc, Dest: ev.Dest, Payload: ev.Msg.Payload,
			GenStep: ev.Step, GenRound: ev.Round,
		}
		t.timelines[ev.Msg.UID] = tl
		t.order = append(t.order, ev.Msg.UID)
		t.genRounds[ev.Proc] = append(t.genRounds[ev.Proc], ev.Round)
	case KindForward:
		if tl == nil {
			return
		}
		tl.Hops = append(tl.Hops, Hop{From: ev.From, To: ev.Proc, Step: ev.Step, Round: ev.Round})
	case KindDeliver:
		if tl == nil {
			return
		}
		tl.Deliveries++
		if !tl.Delivered {
			tl.Delivered = true
			tl.DeliverStep = ev.Step
			tl.DeliverRound = ev.Round
		}
	}
}

// Generated returns how many message generations were observed.
func (t *Tracker) Generated() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.order)
}

// Delivered returns how many tracked messages were delivered at least once.
func (t *Tracker) Delivered() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, tl := range t.timelines {
		if tl.Delivered {
			n++
		}
	}
	return n
}

// Timelines returns the tracked timelines in generation order. The
// returned pointers share the tracker's state; call after the run.
func (t *Tracker) Timelines() []*Timeline {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Timeline, len(t.order))
	for i, uid := range t.order {
		out[i] = t.timelines[uid]
	}
	return out
}

// Report aggregates the current timelines.
func (t *Tracker) Report() Report {
	t.mu.Lock()
	defer t.mu.Unlock()
	r := Report{Messages: len(t.order)}
	var delivery, hops []float64
	lastDeliveryRound := 0
	for _, uid := range t.order {
		tl := t.timelines[uid]
		r.Timelines = append(r.Timelines, tl)
		prev := tl.GenRound
		for _, h := range tl.Hops {
			hops = append(hops, float64(h.Round-prev))
			prev = h.Round
		}
		if tl.Delivered {
			r.Delivered++
			delivery = append(delivery, float64(tl.DeliverRound-tl.GenRound))
			if tl.DeliverRound > lastDeliveryRound {
				lastDeliveryRound = tl.DeliverRound
			}
		}
	}
	var delays, waits []float64
	srcs := make([]graph.ProcessID, 0, len(t.genRounds))
	for src := range t.genRounds {
		srcs = append(srcs, src)
	}
	sort.Slice(srcs, func(i, j int) bool { return srcs[i] < srcs[j] })
	for _, src := range srcs {
		rounds := t.genRounds[src]
		delays = append(delays, float64(rounds[0]))
		for i := 1; i < len(rounds); i++ {
			waits = append(waits, float64(rounds[i]-rounds[i-1]))
		}
	}
	r.DeliveryRounds = metrics.Summarize(delivery)
	r.DelayRounds = metrics.Summarize(delays)
	r.WaitingRounds = metrics.Summarize(waits)
	r.HopRounds = metrics.Summarize(hops)
	if r.Delivered > 0 {
		r.AmortizedRoundsPerDelivery = float64(lastDeliveryRound) / float64(r.Delivered)
	}
	return r
}
