package msgpass

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"ssmfp/internal/graph"
	"ssmfp/internal/obs"
)

// destState is the per-destination forwarding state of a node: the bufR /
// bufE pair of the protocol plus the handshake bookkeeping that replaces
// the shared-memory R3/R4 reasoning.
type destState struct {
	bufR *Message
	bufE *Message

	// Sender side: the occupancy's outstanding offer. offerSeq == 0 means
	// no offer issued yet; offerTarget is the single neighbor the sequence
	// was offered to (retargeting requires the cancel round trip).
	offerSeq    uint64
	offerTarget graph.ProcessID

	// Receiver side, per neighbor sender: the highest sequence accepted
	// here and the highest sequence killed by a cancel. Sequences per
	// (sender, destination) stream are monotone, so these two high-water
	// marks resolve every duplicate deterministically: a duplicate offer at
	// or below the accepted mark is re-acknowledged (the sender, if still
	// on that sequence, may erase — the message is stored here); one at or
	// below the killed mark is re-refused; anything newer is fresh.
	accepted map[graph.ProcessID]uint64
	killed   map[graph.ProcessID]uint64
}

// node is one processor goroutine.
type node struct {
	nw  *Network
	id  graph.ProcessID
	rng *rand.Rand

	// routing: self-stabilizing distance vector.
	dist   []int
	parent []graph.ProcessID
	nbrDV  map[graph.ProcessID][]int

	// forwarding.
	dests   []destState
	nextSeq uint64

	// inbox fans in frames from every incoming link; created up front so
	// Network.QueueDepths can read its occupancy (len on a channel is safe
	// concurrently).
	inbox chan frame

	// buffer-occupancy gauges, refreshed once per tick for QueueDepths.
	gaugeBufR atomic.Int32
	gaugeBufE atomic.Int32

	// higher layer; written by Network.Send concurrently.
	mu      sync.Mutex
	pending []Message
}

func newNode(nw *Network, id graph.ProcessID, rng *rand.Rand) *node {
	g := nw.g
	n := &node{
		nw:      nw,
		id:      id,
		rng:     rand.New(rand.NewSource(rng.Int63())),
		dist:    make([]int, g.N()),
		parent:  make([]graph.ProcessID, g.N()),
		nbrDV:   make(map[graph.ProcessID][]int),
		dests:   make([]destState, g.N()),
		nextSeq: 1,
		inbox:   make(chan frame, nw.opts.ChannelDepth*len(g.Neighbors(id))),
	}
	nbrs := g.Neighbors(id)
	for d := 0; d < g.N(); d++ {
		n.dests[d].accepted = make(map[graph.ProcessID]uint64)
		n.dests[d].killed = make(map[graph.ProcessID]uint64)
		if nw.opts.CorruptInit {
			n.dist[d] = n.rng.Intn(g.N() + 1)
			n.parent[d] = nbrs[n.rng.Intn(len(nbrs))]
		} else {
			n.dist[d] = g.N() // pessimistic start; the DV converges downward
			n.parent[d] = nbrs[0]
		}
		if graph.ProcessID(d) == id {
			n.dist[d] = 0
			n.parent[d] = id
		}
	}
	if nw.opts.CorruptInit {
		// Plant an invalid message in a random buffer of a random
		// destination, as the state-model experiments do.
		d := graph.ProcessID(n.rng.Intn(g.N()))
		inv := &Message{Payload: "junk", UID: 1<<60 + uint64(id), Src: id, Dest: d, Valid: false}
		if n.rng.Intn(2) == 0 {
			n.dests[d].bufR = inv
		} else {
			n.dests[d].bufE = inv
		}
	}
	n.updateGauges()
	return n
}

// updateGauges refreshes the buffer-occupancy gauges QueueDepths reads.
func (n *node) updateGauges() {
	var r, e int32
	for i := range n.dests {
		if n.dests[i].bufR != nil {
			r++
		}
		if n.dests[i].bufE != nil {
			e++
		}
	}
	n.gaugeBufR.Store(r)
	n.gaugeBufE.Store(e)
}

// run is the node main loop: one goroutine per incoming link fans frames
// into the node's inbox; the loop reacts to frames and ticks.
func (n *node) run() {
	defer n.nw.wg.Done()
	g := n.nw.g
	ticker := time.NewTicker(n.nw.opts.Tick)
	defer ticker.Stop()

	for _, q := range g.Neighbors(n.id) {
		ch := n.nw.links[[2]graph.ProcessID{q, n.id}]
		n.nw.wg.Add(1)
		go func(ch chan frame) {
			defer n.nw.wg.Done()
			for {
				select {
				case f := <-ch:
					select {
					case n.inbox <- f:
					case <-n.nw.stop:
						return
					}
				case <-n.nw.stop:
					return
				}
			}
		}(ch)
	}

	for {
		select {
		case <-n.nw.stop:
			return
		case f := <-n.inbox:
			n.handle(f)
		case <-ticker.C:
			n.tick()
		}
		n.localMoves()
	}
}

// handle processes one incoming frame.
func (n *node) handle(f frame) {
	switch {
	case f.dv != nil:
		n.nbrDV[f.from] = f.dv
		n.recomputeRoutes()
	case f.offer != nil:
		n.handleOffer(f.from, *f.offer)
	case f.accept != nil:
		n.handleAccept(f.from, *f.accept)
	case f.cancel != nil:
		n.handleCancel(f.from, *f.cancel)
	case f.cancelAck != nil:
		n.handleCancelAck(f.from, *f.cancelAck)
	}
}

// recomputeRoutes is the distance-vector correction — the message-passing
// analogue of routing algorithm A's rule.
func (n *node) recomputeRoutes() {
	g := n.nw.g
	for d := 0; d < g.N(); d++ {
		if graph.ProcessID(d) == n.id {
			n.dist[d] = 0
			n.parent[d] = n.id
			continue
		}
		best := g.N()
		bestQ := g.Neighbors(n.id)[0]
		for _, q := range g.Neighbors(n.id) {
			dv, ok := n.nbrDV[q]
			if !ok {
				continue
			}
			if cand := dv[d] + 1; cand < best {
				best = cand
				bestQ = q
			}
		}
		n.dist[d] = best
		n.parent[d] = bestQ
	}
}

// handleOffer is the receiver half of the hop transfer: store into an
// empty bufR exactly once per sequence, acknowledge idempotently at or
// below the watermark, stay silent while busy (the sender retransmits).
func (n *node) handleOffer(from graph.ProcessID, o offer) {
	ds := &n.dests[o.dest]
	switch {
	case o.seq <= ds.accepted[from]:
		n.ack(from, o.dest, o.seq)
	case o.seq <= ds.killed[from]:
		n.nw.send(n.id, from, frame{from: n.id, cancelAck: &cancel{dest: o.dest, seq: o.seq}}, n.rng)
	case ds.bufR == nil:
		m := o.msg
		ds.bufR = &m
		ds.accepted[from] = o.seq
		n.nw.observe(obs.Event{Kind: obs.KindForward, Proc: n.id, Dest: o.dest, From: from, Msg: record(&m, from)})
		n.ack(from, o.dest, o.seq)
	}
}

func (n *node) ack(to graph.ProcessID, dest graph.ProcessID, seq uint64) {
	n.nw.send(n.id, to, frame{from: n.id, accept: &accept{dest: dest, seq: seq}}, n.rng)
}

// handleAccept is the sender half: the offered copy is stored at its
// single target, so the emission buffer empties — the R4 erase. Sequence
// matching makes stale accepts (from cancelled sequences or earlier
// occupancies) harmless.
func (n *node) handleAccept(from graph.ProcessID, a accept) {
	ds := &n.dests[a.dest]
	if ds.bufE != nil && ds.offerSeq == a.seq {
		n.nw.observe(obs.Event{Kind: obs.KindErase, Proc: n.id, Dest: a.dest, Buf: obs.BufEmission, Msg: record(ds.bufE, n.id)})
		ds.bufE = nil
		ds.offerSeq = 0
	}
}

// handleCancel resolves a withdrawn offer at the receiver: if the sequence
// was never accepted it is killed (watermark raised, cancelAck); if it was
// already accepted the receiver owns the message and says so (accept).
func (n *node) handleCancel(from graph.ProcessID, c cancel) {
	ds := &n.dests[c.dest]
	if c.seq <= ds.accepted[from] {
		// Already stored here: the receiver owns the message; telling the
		// sender lets it erase (the transfer completed after all).
		n.ack(from, c.dest, c.seq)
		return
	}
	if c.seq > ds.killed[from] {
		ds.killed[from] = c.seq
	}
	n.nw.send(n.id, from, frame{from: n.id, cancelAck: &cancel{dest: c.dest, seq: c.seq}}, n.rng)
}

// handleCancelAck lets the sender retarget: the old sequence is dead at
// the old target, so a fresh sequence may be offered to the current parent.
func (n *node) handleCancelAck(from graph.ProcessID, c cancel) {
	ds := &n.dests[c.dest]
	if ds.bufE != nil && ds.offerSeq == c.seq && ds.offerTarget == from {
		ds.offerSeq = 0 // re-offered to the current parent on the next tick
	}
}

// tick gossips the distance vector and drives outstanding transfers.
func (n *node) tick() {
	n.updateGauges()
	dv := append([]int(nil), n.dist...)
	for _, q := range n.nw.g.Neighbors(n.id) {
		n.nw.send(n.id, q, frame{from: n.id, dv: dv}, n.rng)
	}
	for d := range n.dests {
		n.driveTransfer(graph.ProcessID(d))
	}
}

// driveTransfer (re)transmits the offer for an occupied emission buffer,
// or cancels it when routing has moved away from the offered target.
func (n *node) driveTransfer(d graph.ProcessID) {
	ds := &n.dests[d]
	if ds.bufE == nil || d == n.id {
		return
	}
	if ds.offerSeq == 0 {
		ds.offerSeq = n.nextSeq
		n.nextSeq++
		ds.offerTarget = n.parent[d]
	}
	if ds.offerTarget == n.parent[d] {
		n.nw.send(n.id, ds.offerTarget,
			frame{from: n.id, offer: &offer{dest: d, seq: ds.offerSeq, msg: *ds.bufE}}, n.rng)
		return
	}
	// Routing changed under the outstanding offer: withdraw it before
	// offering elsewhere, so the sequence has exactly one possible owner.
	n.nw.send(n.id, ds.offerTarget,
		frame{from: n.id, cancel: &cancel{dest: d, seq: ds.offerSeq}}, n.rng)
}

// localMoves performs the purely local rules: generation (R1), the
// internal bufR→bufE move (R2), and consumption (R6).
func (n *node) localMoves() {
	// R6: consume at the destination.
	self := &n.dests[n.id]
	if self.bufE != nil {
		n.nw.observe(obs.Event{Kind: obs.KindDeliver, Proc: n.id, Dest: n.id, Msg: record(self.bufE, n.id)})
		n.nw.deliver(Delivery{Msg: self.bufE, At: n.id})
		self.bufE = nil
	}
	// R2: internal move wherever possible. Hop-level exactly-once is
	// carried by the handshake sequences in this port; the color field is
	// kept populated for observability only.
	for d := range n.dests {
		ds := &n.dests[d]
		if ds.bufR != nil && ds.bufE == nil {
			m := *ds.bufR
			m.Color = n.rng.Intn(n.nw.g.MaxDegree() + 1)
			ds.bufE = &m
			ds.bufR = nil
			ds.offerSeq = 0 // fresh occupancy, fresh handshake
			n.nw.observe(obs.Event{Kind: obs.KindInternal, Proc: n.id, Dest: graph.ProcessID(d), Msg: record(&m, n.id)})
			if graph.ProcessID(d) != n.id {
				n.driveTransfer(graph.ProcessID(d))
			}
		}
	}
	// R1: accept one pending higher-layer message if its bufR is free.
	var generated *Message
	n.mu.Lock()
	if len(n.pending) > 0 {
		m := n.pending[0]
		if ds := &n.dests[m.Dest]; ds.bufR == nil {
			n.pending = n.pending[1:]
			mm := m
			ds.bufR = &mm
			generated = &mm
		}
	}
	n.mu.Unlock()
	if generated != nil {
		n.nw.observe(obs.Event{Kind: obs.KindGenerate, Proc: n.id, Dest: generated.Dest, Msg: record(generated, n.id)})
	}
}
