package msgpass

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"ssmfp/internal/graph"
	"ssmfp/internal/obs"
	"ssmfp/internal/transport"
)

// destState is the per-destination forwarding state of a node: the bufR /
// bufE pair of the protocol plus the handshake bookkeeping that replaces
// the shared-memory R3/R4 reasoning.
type destState struct {
	bufR *Message
	bufE *Message

	// Sender side: the occupancy's outstanding offer. offerSeq == 0 means
	// no offer issued yet; offerTarget is the single neighbor the sequence
	// was offered to (retargeting requires the cancel round trip).
	offerSeq    uint64
	offerTarget graph.ProcessID

	// Receiver side, per neighbor sender: the highest sequence accepted
	// here and the highest sequence killed by a cancel. Sequences per
	// (sender, destination) stream are monotone, so these two high-water
	// marks resolve every duplicate deterministically: a duplicate offer at
	// or below the accepted mark is re-acknowledged (the sender, if still
	// on that sequence, may erase — the message is stored here); one at or
	// below the killed mark is re-refused; anything newer is fresh.
	accepted map[graph.ProcessID]uint64
	killed   map[graph.ProcessID]uint64
}

// node is one processor goroutine.
type node struct {
	nw  *Network
	id  graph.ProcessID
	rng *rand.Rand

	// routing: self-stabilizing distance vector.
	dist   []int
	parent []graph.ProcessID
	nbrDV  map[graph.ProcessID][]int

	// forwarding.
	dests   []destState
	nextSeq uint64

	// out caches this node's outgoing wire links, one per neighbor; the
	// send hot path is a map read plus the link's own handoff.
	out map[graph.ProcessID]transport.Link

	// inbox fans in frames from every incoming link; created up front so
	// Network.QueueDepths can read its occupancy (len on a channel is safe
	// concurrently).
	inbox chan transport.Frame

	// buffer-occupancy gauges, refreshed once per tick for QueueDepths.
	gaugeBufR atomic.Int32
	gaugeBufE atomic.Int32

	// higher layer; written by Network.Send concurrently.
	mu      sync.Mutex
	pending []Message
}

func newNode(nw *Network, id graph.ProcessID, rng *rand.Rand) *node {
	g := nw.g
	n := &node{
		nw:      nw,
		id:      id,
		rng:     rng,
		dist:    make([]int, g.N()),
		parent:  make([]graph.ProcessID, g.N()),
		nbrDV:   make(map[graph.ProcessID][]int),
		dests:   make([]destState, g.N()),
		nextSeq: 1,
		out:     make(map[graph.ProcessID]transport.Link),
		inbox:   make(chan transport.Frame, nw.opts.ChannelDepth*len(g.Neighbors(id))),
	}
	nbrs := g.Neighbors(id)
	for _, q := range nbrs {
		n.out[q] = nw.tr.Link(id, q)
	}
	for d := 0; d < g.N(); d++ {
		n.dests[d].accepted = make(map[graph.ProcessID]uint64)
		n.dests[d].killed = make(map[graph.ProcessID]uint64)
		if nw.opts.CorruptInit {
			n.dist[d] = n.rng.Intn(g.N() + 1)
			n.parent[d] = nbrs[n.rng.Intn(len(nbrs))]
		} else {
			n.dist[d] = g.N() // pessimistic start; the DV converges downward
			n.parent[d] = nbrs[0]
		}
		if graph.ProcessID(d) == id {
			n.dist[d] = 0
			n.parent[d] = id
		}
	}
	if nw.opts.CorruptInit {
		// Plant an invalid message in a random buffer of a random
		// destination, as the state-model experiments do.
		d := graph.ProcessID(n.rng.Intn(g.N()))
		inv := &Message{Payload: "junk", UID: 1<<60 + uint64(id), Src: id, Dest: d, Valid: false}
		if n.rng.Intn(2) == 0 {
			n.dests[d].bufR = inv
		} else {
			n.dests[d].bufE = inv
		}
	}
	n.updateGauges()
	return n
}

// send counts and ships one frame on the cached link to q.
func (n *node) send(q graph.ProcessID, f transport.Frame) {
	n.nw.countFrame(f.Kind())
	n.out[q].Send(f)
}

// updateGauges refreshes the buffer-occupancy gauges QueueDepths reads.
func (n *node) updateGauges() {
	var r, e int32
	for i := range n.dests {
		if n.dests[i].bufR != nil {
			r++
		}
		if n.dests[i].bufE != nil {
			e++
		}
	}
	n.gaugeBufR.Store(r)
	n.gaugeBufE.Store(e)
}

// run is the node main loop: one goroutine per incoming link fans frames
// into the node's inbox; the loop reacts to frames and ticks.
func (n *node) run() {
	defer n.nw.wg.Done()
	g := n.nw.g
	ticker := time.NewTicker(n.nw.opts.Tick)
	defer ticker.Stop()

	for _, q := range g.Neighbors(n.id) {
		ch := n.nw.tr.Link(q, n.id).Recv()
		n.nw.wg.Add(1)
		go func(ch <-chan transport.Frame) {
			defer n.nw.wg.Done()
			for {
				select {
				case f := <-ch:
					select {
					case n.inbox <- f:
					case <-n.nw.stop:
						return
					}
				case <-n.nw.stop:
					return
				}
			}
		}(ch)
	}

	for {
		select {
		case <-n.nw.stop:
			return
		case f := <-n.inbox:
			n.handle(f)
		case <-ticker.C:
			n.tick()
		}
		n.localMoves()
	}
}

// handle processes one incoming frame.
func (n *node) handle(f transport.Frame) {
	switch {
	case len(f.DV) > 0:
		n.nbrDV[f.From] = f.DV
		n.recomputeRoutes()
	case f.Offer != nil:
		n.handleOffer(f.From, *f.Offer)
	case f.Accept != nil:
		n.handleAccept(f.From, *f.Accept)
	case f.Cancel != nil:
		n.handleCancel(f.From, *f.Cancel)
	case f.CancelAck != nil:
		n.handleCancelAck(f.From, *f.CancelAck)
	}
}

// recomputeRoutes is the distance-vector correction — the message-passing
// analogue of routing algorithm A's rule.
func (n *node) recomputeRoutes() {
	g := n.nw.g
	for d := 0; d < g.N(); d++ {
		if graph.ProcessID(d) == n.id {
			n.dist[d] = 0
			n.parent[d] = n.id
			continue
		}
		best := g.N()
		bestQ := g.Neighbors(n.id)[0]
		for _, q := range g.Neighbors(n.id) {
			dv, ok := n.nbrDV[q]
			if !ok || len(dv) <= d {
				continue
			}
			if cand := dv[d] + 1; cand < best {
				best = cand
				bestQ = q
			}
		}
		n.dist[d] = best
		n.parent[d] = bestQ
	}
}

// handleOffer is the receiver half of the hop transfer: store into an
// empty bufR exactly once per sequence, acknowledge idempotently at or
// below the watermark, stay silent while busy (the sender retransmits).
func (n *node) handleOffer(from graph.ProcessID, o transport.Offer) {
	if int(o.Dest) >= len(n.dests) {
		return // corrupt frame from an untrusted wire
	}
	ds := &n.dests[o.Dest]
	switch {
	case o.Seq <= ds.accepted[from]:
		n.ack(from, o.Dest, o.Seq)
	case o.Seq <= ds.killed[from]:
		n.send(from, transport.Frame{From: n.id, CancelAck: &transport.Ack{Dest: o.Dest, Seq: o.Seq}})
	case ds.bufR == nil:
		m := o.Msg
		ds.bufR = &m
		ds.accepted[from] = o.Seq
		n.nw.observe(obs.Event{Kind: obs.KindForward, Proc: n.id, Dest: o.Dest, From: from, Msg: record(&m, from)})
		n.ack(from, o.Dest, o.Seq)
	}
}

func (n *node) ack(to graph.ProcessID, dest graph.ProcessID, seq uint64) {
	n.send(to, transport.Frame{From: n.id, Accept: &transport.Ack{Dest: dest, Seq: seq}})
}

// handleAccept is the sender half: the offered copy is stored at its
// single target, so the emission buffer empties — the R4 erase. Sequence
// matching makes stale accepts (from cancelled sequences or earlier
// occupancies) harmless.
func (n *node) handleAccept(from graph.ProcessID, a transport.Ack) {
	if int(a.Dest) >= len(n.dests) {
		return
	}
	ds := &n.dests[a.Dest]
	if ds.bufE != nil && ds.offerSeq == a.Seq {
		n.nw.observe(obs.Event{Kind: obs.KindErase, Proc: n.id, Dest: a.Dest, Buf: obs.BufEmission, Msg: record(ds.bufE, n.id)})
		ds.bufE = nil
		ds.offerSeq = 0
	}
}

// handleCancel resolves a withdrawn offer at the receiver: if the sequence
// was never accepted it is killed (watermark raised, cancelAck); if it was
// already accepted the receiver owns the message and says so (accept).
func (n *node) handleCancel(from graph.ProcessID, c transport.Ack) {
	if int(c.Dest) >= len(n.dests) {
		return
	}
	ds := &n.dests[c.Dest]
	if c.Seq <= ds.accepted[from] {
		// Already stored here: the receiver owns the message; telling the
		// sender lets it erase (the transfer completed after all).
		n.ack(from, c.Dest, c.Seq)
		return
	}
	if c.Seq > ds.killed[from] {
		ds.killed[from] = c.Seq
	}
	n.send(from, transport.Frame{From: n.id, CancelAck: &transport.Ack{Dest: c.Dest, Seq: c.Seq}})
}

// handleCancelAck lets the sender retarget: the old sequence is dead at
// the old target, so a fresh sequence may be offered to the current parent.
func (n *node) handleCancelAck(from graph.ProcessID, c transport.Ack) {
	if int(c.Dest) >= len(n.dests) {
		return
	}
	ds := &n.dests[c.Dest]
	if ds.bufE != nil && ds.offerSeq == c.Seq && ds.offerTarget == from {
		ds.offerSeq = 0 // re-offered to the current parent on the next tick
	}
}

// tick gossips the distance vector and drives outstanding transfers.
func (n *node) tick() {
	n.updateGauges()
	dv := append([]int(nil), n.dist...)
	for _, q := range n.nw.g.Neighbors(n.id) {
		n.send(q, transport.Frame{From: n.id, DV: dv})
	}
	for d := range n.dests {
		n.driveTransfer(graph.ProcessID(d))
	}
}

// driveTransfer (re)transmits the offer for an occupied emission buffer,
// or cancels it when routing has moved away from the offered target.
func (n *node) driveTransfer(d graph.ProcessID) {
	ds := &n.dests[d]
	if ds.bufE == nil || d == n.id {
		return
	}
	if ds.offerSeq == 0 {
		ds.offerSeq = n.nextSeq
		n.nextSeq++
		ds.offerTarget = n.parent[d]
	}
	if ds.offerTarget == n.parent[d] {
		n.send(ds.offerTarget,
			transport.Frame{From: n.id, Offer: &transport.Offer{Dest: d, Seq: ds.offerSeq, Msg: *ds.bufE}})
		return
	}
	// Routing changed under the outstanding offer: withdraw it before
	// offering elsewhere, so the sequence has exactly one possible owner.
	n.send(ds.offerTarget,
		transport.Frame{From: n.id, Cancel: &transport.Ack{Dest: d, Seq: ds.offerSeq}})
}

// localMoves performs the purely local rules: generation (R1), the
// internal bufR→bufE move (R2), and consumption (R6).
func (n *node) localMoves() {
	// R6: consume at the destination.
	self := &n.dests[n.id]
	if self.bufE != nil {
		n.nw.observe(obs.Event{Kind: obs.KindDeliver, Proc: n.id, Dest: n.id, Msg: record(self.bufE, n.id)})
		n.nw.deliver(Delivery{Msg: self.bufE, At: n.id})
		self.bufE = nil
	}
	// R2: internal move wherever possible. Hop-level exactly-once is
	// carried by the handshake sequences in this port; the color field is
	// kept populated for observability only.
	for d := range n.dests {
		ds := &n.dests[d]
		if ds.bufR != nil && ds.bufE == nil {
			m := *ds.bufR
			m.Color = n.rng.Intn(n.nw.g.MaxDegree() + 1)
			ds.bufE = &m
			ds.bufR = nil
			ds.offerSeq = 0 // fresh occupancy, fresh handshake
			n.nw.observe(obs.Event{Kind: obs.KindInternal, Proc: n.id, Dest: graph.ProcessID(d), Msg: record(&m, n.id)})
			if graph.ProcessID(d) != n.id {
				n.driveTransfer(graph.ProcessID(d))
			}
		}
	}
	// R1: accept one pending higher-layer message if its bufR is free.
	var generated *Message
	n.mu.Lock()
	if len(n.pending) > 0 {
		m := n.pending[0]
		if ds := &n.dests[m.Dest]; ds.bufR == nil {
			n.pending = n.pending[1:]
			mm := m
			ds.bufR = &mm
			generated = &mm
		}
	}
	n.mu.Unlock()
	if generated != nil {
		n.nw.observe(obs.Event{Kind: obs.KindGenerate, Proc: n.id, Dest: generated.Dest, Msg: record(generated, n.id)})
	}
}
