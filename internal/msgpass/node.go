package msgpass

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"ssmfp/internal/graph"
	"ssmfp/internal/obs"
	"ssmfp/internal/transport"
)

// Cadence constants, in ticks. The distance vector is gossiped whenever it
// changed and at least every dvHeartbeatTicks regardless (the heartbeat is
// what lets a node with arbitrarily corrupted routing state recover — the
// snap-stabilization requirement); an outstanding offer or cancel is
// retransmitted after offerRetransmitTicks of silence instead of every
// tick, so a healthy handshake in flight is not amplified into an offer
// storm under load.
const (
	dvHeartbeatTicks     = 8
	offerRetransmitTicks = 2
)

// destState is the per-destination forwarding state of a node: the bufR /
// bufE pair of the protocol plus the handshake bookkeeping that replaces
// the shared-memory R3/R4 reasoning. Buffers are values guarded by
// occupancy flags — the steady-state hop path never heap-allocates.
type destState struct {
	bufR, bufE Message
	hasR, hasE bool

	// Sender side: the occupancy's outstanding offer. offerSeq == 0 means
	// no offer issued yet; offerTarget is the single neighbor the sequence
	// was offered to (retargeting requires the cancel round trip).
	// lastDrive is the tick the offer/cancel was last put on the wire.
	offerSeq    uint64
	offerTarget graph.ProcessID
	lastDrive   uint64

	// Receiver side: an offer that arrived while bufR was occupied is
	// parked here and accepted the instant R2 frees the buffer — the
	// congested-hop handoff is event-driven, not retransmit-paced.
	// Accepting a parked offer is indistinguishable from accepting a
	// retransmitted copy of the same frame, so the handshake's safety
	// argument is untouched; a cancel for the parked sequence evicts it.
	// parkedAtNS is the instant of the first park of the current slot
	// occupancy (a retransmit refresh keeps it), so the park wait the
	// telemetry attributes spans the whole congestion episode.
	parked     transport.Offer
	parkedFrom graph.ProcessID
	hasParked  bool
	parkedAtNS int64

	// rAtNS is the arrival instant at the final destination: set when a
	// message for this node lands in bufR, consumed by R6 to attribute
	// the destination-side wait (the "deliver" latency component). Only
	// the self destState ever carries it.
	rAtNS int64

	// Receiver side, per neighbor sender: the highest sequence accepted
	// here and the highest sequence killed by a cancel. Sequences per
	// (sender, destination) stream are monotone, so these two high-water
	// marks resolve every duplicate deterministically: a duplicate offer at
	// or below the accepted mark is re-acknowledged (the sender, if still
	// on that sequence, may erase — the message is stored here); one at or
	// below the killed mark is re-refused; anything newer is fresh.
	accepted map[graph.ProcessID]uint64
	killed   map[graph.ProcessID]uint64
}

// pendEntry is one queued higher-layer send with its enqueue instant —
// what the R1 acceptance observes as the "queued" latency component.
type pendEntry struct {
	m     Message
	enqNS int64
}

// pendQueue is one destination's FIFO of higher-layer sends not yet
// accepted by R1. head indexes the next message; when the queue drains the
// backing array is reused, so sustained load reaches a steady state with
// no append growth.
type pendQueue struct {
	q    []pendEntry
	head int
}

// node is one processor goroutine.
type node struct {
	nw  *Network
	id  graph.ProcessID
	rng *rand.Rand

	// routing: self-stabilizing distance vector. nbrDV is indexed like
	// nbrs; an entry is nil until the first DV from that neighbor arrives,
	// then a fixed N-length slice updated in place. nbrDisabled marks
	// neighbors across an epoch-disabled edge (never a route candidate);
	// nbrDraining marks draining neighbors (a candidate only for traffic
	// destined to themselves). Both are rebuilt at every epoch.
	nbrs        []graph.ProcessID
	dist        []int
	parent      []graph.ProcessID
	nbrDV       [][]int
	dvDirty     bool
	nbrDisabled []bool
	nbrDraining []bool

	// draining: this node refuses new injections and advertises infinite
	// distance for every destination but itself, so in-flight deliveries
	// to it complete while its buffers hand off to live neighbors.
	// detached: set at the epoch barrier when the node leaves the member
	// set; the goroutine exits on release. Both are written only while
	// the goroutine is parked (or before it starts).
	draining bool
	detached bool

	// forwarding.
	dests     []destState
	nextSeq   uint64
	tickCount uint64

	// outp caches this node's outgoing wire links, one per neighbor; the
	// send hot path is an atomic pointer load plus a map read. The map is
	// replaced wholesale at an epoch transition — telemetry closures and
	// QueueDepths resolve links through the pointer, never a stale map.
	outp atomic.Pointer[map[graph.ProcessID]transport.Link]

	// inbox fans in frames from every incoming link; created up front so
	// Network.QueueDepths can read its occupancy (len on a channel is safe
	// concurrently).
	inbox chan transport.Frame

	// tg holds this processor's occupancy gauges (bufR/bufE/pending/
	// parked), updated at the exact transition points so peaks are
	// event-driven high-water marks. QueueDepths reads the same gauges.
	tg nodeGauges

	// evs batches this node's observability events; the main loop flushes
	// it once per iteration (obs.Bus.PublishBatch), so a burst of rule
	// firings costs one sequence reservation instead of one per event.
	// Touched only from the node goroutine.
	evs []obs.Event

	// higher layer; written by Network.Send concurrently. pendingTotal is
	// read lock-free on the hot path so an idle R1 costs one atomic load.
	mu            sync.Mutex
	pendingByDest []pendQueue
	pendingTotal  atomic.Int64
}

func newNode(nw *Network, id graph.ProcessID, rng *rand.Rand, g *graph.Graph) *node {
	nbrs := g.Neighbors(id)
	inboxDepth := nw.opts.ChannelDepth * len(nbrs)
	if inboxDepth < nw.opts.ChannelDepth {
		inboxDepth = nw.opts.ChannelDepth
	}
	n := &node{
		nw:            nw,
		id:            id,
		rng:           rng,
		nbrs:          nbrs,
		dist:          make([]int, g.N()),
		parent:        make([]graph.ProcessID, g.N()),
		nbrDV:         make([][]int, len(nbrs)),
		nbrDisabled:   make([]bool, len(nbrs)),
		nbrDraining:   make([]bool, len(nbrs)),
		dests:         make([]destState, g.N()),
		nextSeq:       1,
		inbox:         make(chan transport.Frame, inboxDepth),
		pendingByDest: make([]pendQueue, g.N()),
		dvDirty:       true, // gossip the initial vector on the first tick
	}
	n.tg = newNodeGauges(nw.tel.reg, id)
	out := make(map[graph.ProcessID]transport.Link, len(nbrs))
	for _, q := range nbrs {
		out[q] = nw.tr.Link(id, q)
	}
	n.outp.Store(&out)
	for d := 0; d < g.N(); d++ {
		n.dests[d].accepted = make(map[graph.ProcessID]uint64)
		n.dests[d].killed = make(map[graph.ProcessID]uint64)
		if nw.opts.CorruptInit && len(nbrs) > 0 {
			n.dist[d] = n.rng.Intn(g.N() + 1)
			n.parent[d] = nbrs[n.rng.Intn(len(nbrs))]
		} else {
			n.dist[d] = g.N() // pessimistic start; the DV converges downward
			if len(nbrs) > 0 {
				n.parent[d] = nbrs[0]
			} else {
				n.parent[d] = id
			}
		}
		if graph.ProcessID(d) == id {
			n.dist[d] = 0
			n.parent[d] = id
		}
	}
	if nw.opts.CorruptInit {
		// Plant an invalid message in a random buffer of a random
		// destination, as the state-model experiments do.
		d := graph.ProcessID(n.rng.Intn(g.N()))
		inv := Message{Payload: "junk", UID: 1<<60 + uint64(id), Src: id, Dest: d, Valid: false}
		if n.rng.Intn(2) == 0 {
			n.dests[d].bufR, n.dests[d].hasR = inv, true
			n.tg.bufR.Add(1)
		} else {
			n.dests[d].bufE, n.dests[d].hasE = inv, true
			n.tg.bufE.Add(1)
		}
	}
	return n
}

// send counts and ships one frame on the cached link to q. A nil link
// (a neighbor that vanished between the decision and the send — only
// possible transiently around an epoch) drops the frame like congestion.
func (n *node) send(q graph.ProcessID, f transport.Frame) {
	n.nw.countFrame(f.Kind)
	if l := (*n.outp.Load())[q]; l != nil {
		l.Send(f)
	}
}

// observe queues one event on the node's batch; callers must guard with
// nw.busActive() so the inactive path constructs nothing.
func (n *node) observe(ev obs.Event) {
	ev.Step, ev.Round = -1, -1
	n.evs = append(n.evs, ev)
}

// flushObs publishes the batched events of one loop iteration.
func (n *node) flushObs() {
	if len(n.evs) == 0 {
		return
	}
	n.nw.opts.Bus.PublishBatch(n.evs)
	n.evs = n.evs[:0]
}

// run is the node main loop: the network's fan-in pumps (one per incoming
// link, owned by the current fan generation) feed the node's inbox; the
// loop reacts to frames, ticks, and epoch barriers.
func (n *node) run() {
	defer n.nw.wg.Done()
	ticker := time.NewTicker(n.nw.opts.Tick)
	defer ticker.Stop()

	for {
		select {
		case <-n.nw.stop:
			return
		case req := <-n.nw.pause:
			// Epoch barrier: park while the network re-shapes this node's
			// state, resume on release — or exit, when the epoch detached
			// this processor or the network stopped mid-barrier.
			req.arrived.Done()
			select {
			case <-req.release:
			case <-n.nw.stop:
				return
			}
			if n.detached {
				return
			}
		case f := <-n.inbox:
			n.handle(f)
		case <-ticker.C:
			n.tick()
		}
		n.localMoves()
		n.flushObs()
	}
}

// handle processes one incoming frame.
func (n *node) handle(f transport.Frame) {
	switch f.Kind {
	case transport.KindDV:
		n.handleDV(f.From, f.DV)
	case transport.KindOffer:
		n.handleOffer(f.From, f.Offer)
	case transport.KindAccept:
		n.handleAccept(f.From, f.Ack)
	case transport.KindCancel:
		n.handleCancel(f.From, f.Ack)
	case transport.KindCancelAck:
		n.handleCancelAck(f.From, f.Ack)
	}
}

// handleDV folds a neighbor's gossiped vector into the fixed per-neighbor
// store and recomputes routes only when something actually changed — in
// steady state every gossip heartbeat is a no-op comparison, not a full
// Bellman-Ford pass.
func (n *node) handleDV(from graph.ProcessID, dv []int) {
	idx := -1
	for i, q := range n.nbrs {
		if q == from {
			idx = i
			break
		}
	}
	if idx < 0 || len(dv) != n.nw.g.N() {
		return // not a neighbor, or a corrupt frame from an untrusted wire
	}
	stored := n.nbrDV[idx]
	if stored == nil {
		n.nbrDV[idx] = append([]int(nil), dv...)
		n.recomputeRoutes()
		return
	}
	changed := false
	for i, v := range dv {
		if stored[i] != v {
			stored[i] = v
			changed = true
		}
	}
	if changed {
		n.recomputeRoutes()
	}
}

// recomputeRoutes is the distance-vector correction — the message-passing
// analogue of routing algorithm A's rule. Neighbors across a disabled
// edge are never candidates; draining neighbors are candidates only for
// traffic destined to themselves, so a drain stops attracting transit the
// instant the epoch lands instead of waiting for the gossip to say so.
func (n *node) recomputeRoutes() {
	g := n.nw.g
	for d := 0; d < g.N(); d++ {
		if graph.ProcessID(d) == n.id {
			n.dist[d] = 0
			n.parent[d] = n.id
			continue
		}
		if len(n.nbrs) == 0 {
			n.dist[d] = g.N()
			n.parent[d] = n.id
			continue
		}
		best := g.N()
		bestQ := n.nbrs[0]
		for i, q := range n.nbrs {
			if n.nbrDisabled[i] {
				continue
			}
			if n.nbrDraining[i] && graph.ProcessID(d) != q {
				continue
			}
			dv := n.nbrDV[i]
			if dv == nil {
				continue
			}
			if cand := dv[d] + 1; cand < best {
				best = cand
				bestQ = q
			}
		}
		if n.dist[d] != best {
			n.dist[d] = best
			n.dvDirty = true
		}
		n.parent[d] = bestQ
	}
}

// handleOffer is the receiver half of the hop transfer: store into an
// empty bufR exactly once per sequence, acknowledge idempotently at or
// below the watermark, and park the offer while busy so the handoff
// completes the moment R2 frees the buffer instead of waiting out the
// sender's retransmit interval.
func (n *node) handleOffer(from graph.ProcessID, o transport.Offer) {
	if int(o.Dest) >= len(n.dests) {
		return // corrupt frame from an untrusted wire
	}
	ds := &n.dests[o.Dest]
	switch {
	case o.Seq <= ds.accepted[from]:
		n.ack(from, o.Dest, o.Seq)
	case o.Seq <= ds.killed[from]:
		n.send(from, transport.Frame{Kind: transport.KindCancelAck, From: n.id, Ack: transport.Ack{Dest: o.Dest, Seq: o.Seq}})
	case !ds.hasR:
		ds.bufR = o.Msg
		ds.hasR = true
		ds.accepted[from] = o.Seq
		n.tg.bufR.Add(1)
		if o.Dest == n.id {
			// Final hop: start the destination-side wait clock R6 reads.
			ds.rAtNS = time.Now().UnixNano()
		}
		if n.nw.busActive() {
			n.observe(obs.Event{Kind: obs.KindForward, Proc: n.id, Dest: o.Dest, From: from, Msg: record(&ds.bufR, from)})
		}
		n.ack(from, o.Dest, o.Seq)
	case !ds.hasParked || ds.parkedFrom == from:
		// Buffer occupied: park the offer (a retransmit from the same
		// sender just refreshes the slot). A second sender keeps
		// retransmitting; one parked offer per destination is enough to
		// make the common single-chain pipeline event-driven.
		if !ds.hasParked {
			ds.parkedAtNS = time.Now().UnixNano()
			n.tg.parked.Add(1)
			n.nw.tel.parkEvents.Inc()
		}
		ds.parked = o
		ds.parkedFrom = from
		ds.hasParked = true
	}
}

func (n *node) ack(to graph.ProcessID, dest graph.ProcessID, seq uint64) {
	n.send(to, transport.Frame{Kind: transport.KindAccept, From: n.id, Ack: transport.Ack{Dest: dest, Seq: seq}})
}

// handleAccept is the sender half: the offered copy is stored at its
// single target, so the emission buffer empties — the R4 erase. Sequence
// matching makes stale accepts (from cancelled sequences or earlier
// occupancies) harmless.
func (n *node) handleAccept(from graph.ProcessID, a transport.Ack) {
	if int(a.Dest) >= len(n.dests) {
		return
	}
	if a.Seq >= n.nextSeq {
		// Acknowledging a sequence this node never issued: the peer holds
		// handshake state from another incarnation (or a corrupt frame).
		// Harmless to the protocol — the seq match below fails — but a
		// stabilization-health signal worth counting.
		n.nw.tel.watermarkViolations.Inc()
	}
	ds := &n.dests[a.Dest]
	if ds.hasE && ds.offerSeq == a.Seq {
		if n.nw.busActive() {
			n.observe(obs.Event{Kind: obs.KindErase, Proc: n.id, Dest: a.Dest, Buf: obs.BufEmission, Msg: record(&ds.bufE, n.id)})
		}
		ds.bufE = Message{}
		ds.hasE = false
		ds.offerSeq = 0
		n.tg.bufE.Add(-1)
		if n.draining {
			// One buffered message handed off to a live neighbor on the
			// way out — the drain-progress series operators watch.
			n.nw.tel.drainHandoffs.Inc()
		}
	}
}

// handleCancel resolves a withdrawn offer at the receiver: if the sequence
// was never accepted it is killed (watermark raised, cancelAck); if it was
// already accepted the receiver owns the message and says so (accept).
func (n *node) handleCancel(from graph.ProcessID, c transport.Ack) {
	if int(c.Dest) >= len(n.dests) {
		return
	}
	ds := &n.dests[c.Dest]
	if c.Seq <= ds.accepted[from] {
		// Already stored here: the receiver owns the message; telling the
		// sender lets it erase (the transfer completed after all).
		n.ack(from, c.Dest, c.Seq)
		return
	}
	if ds.hasParked && ds.parkedFrom == from && ds.parked.Seq <= c.Seq {
		// The parked offer is withdrawn; evicting it here keeps the
		// invariant that a cancelAck'd sequence can never be accepted
		// later from the parking slot.
		ds.parked = transport.Offer{}
		ds.hasParked = false
		n.tg.parked.Add(-1)
		n.nw.tel.parkEvictions.Inc()
	}
	if c.Seq > ds.killed[from] {
		ds.killed[from] = c.Seq
	}
	n.send(from, transport.Frame{Kind: transport.KindCancelAck, From: n.id, Ack: transport.Ack{Dest: c.Dest, Seq: c.Seq}})
}

// handleCancelAck lets the sender retarget: the old sequence is dead at
// the old target, so a fresh sequence may be offered to the current parent.
func (n *node) handleCancelAck(from graph.ProcessID, c transport.Ack) {
	if int(c.Dest) >= len(n.dests) {
		return
	}
	if c.Seq >= n.nextSeq {
		n.nw.tel.watermarkViolations.Inc()
	}
	ds := &n.dests[c.Dest]
	if ds.hasE && ds.offerSeq == c.Seq && ds.offerTarget == from {
		ds.offerSeq = 0
		n.driveTransfer(c.Dest) // re-offer to the current parent immediately
	}
}

// tick gossips the distance vector (when changed, or on the heartbeat)
// and drives outstanding transfers.
func (n *node) tick() {
	n.tickCount++
	if n.dvDirty || n.tickCount%dvHeartbeatTicks == 1 {
		// One copy shared by all neighbor sends: receivers only read a DV
		// slice (handleDV copies it into the per-neighbor store), and the
		// sender never mutates a vector after gossiping it.
		var dv []int
		if n.draining {
			// A draining node advertises infinity everywhere but itself:
			// in-flight deliveries to it complete, nothing new routes
			// through it.
			dv = make([]int, len(n.dist))
			for d := range dv {
				dv[d] = n.nw.g.N()
			}
			dv[n.id] = 0
		} else {
			dv = append([]int(nil), n.dist...)
		}
		for _, q := range n.nbrs {
			n.send(q, transport.Frame{Kind: transport.KindDV, From: n.id, DV: dv})
		}
		n.dvDirty = false
	}
	for d := range n.dests {
		n.driveTransfer(graph.ProcessID(d))
	}
}

// driveTransfer (re)transmits the offer for an occupied emission buffer,
// or cancels it when routing has moved away from the offered target. A
// fresh occupancy (offerSeq == 0) goes on the wire immediately; an
// outstanding one is retransmitted only after offerRetransmitTicks of
// silence, giving the accept a chance to arrive first.
func (n *node) driveTransfer(d graph.ProcessID) {
	ds := &n.dests[d]
	if !ds.hasE || d == n.id {
		return
	}
	if ds.offerSeq == 0 {
		ds.offerSeq = n.nextSeq
		n.nextSeq++
		ds.offerTarget = n.parent[d]
	} else if n.tickCount-ds.lastDrive < offerRetransmitTicks {
		return
	} else {
		// Re-driving an outstanding offer (or its cancel) after the
		// silence interval: the retransmission machinery at work.
		n.nw.tel.retransmits.Inc()
	}
	ds.lastDrive = n.tickCount
	if ds.offerTarget == n.parent[d] {
		n.send(ds.offerTarget,
			transport.Frame{Kind: transport.KindOffer, From: n.id, Offer: transport.Offer{Dest: d, Seq: ds.offerSeq, Msg: ds.bufE}})
		return
	}
	// Routing changed under the outstanding offer: withdraw it before
	// offering elsewhere, so the sequence has exactly one possible owner.
	n.send(ds.offerTarget,
		transport.Frame{Kind: transport.KindCancel, From: n.id, Ack: transport.Ack{Dest: d, Seq: ds.offerSeq}})
}

// localMoves performs the purely local rules: generation (R1), the
// internal bufR→bufE move (R2), and consumption (R6).
func (n *node) localMoves() {
	// R6: consume at the destination. The wait since the message landed in
	// this node's bufR is the "deliver" attribution component; it rides the
	// Delivery struct (the destination never rewrites the payload tag).
	self := &n.dests[n.id]
	if self.hasE {
		var wait int64
		if self.rAtNS != 0 {
			wait = time.Now().UnixNano() - self.rAtNS
			self.rAtNS = 0
		}
		if n.nw.busActive() {
			n.observe(obs.Event{Kind: obs.KindDeliver, Proc: n.id, Dest: n.id, Msg: record(&self.bufE, n.id)})
		}
		n.nw.deliver(Delivery{Msg: self.bufE, At: n.id, DeliverWaitNS: wait})
		self.bufE = Message{}
		self.hasE = false
		n.tg.bufE.Add(-1)
	}
	// R2: internal move wherever possible. Hop-level exactly-once is
	// carried by the handshake sequences in this port; the color field is
	// kept populated for observability only.
	for d := range n.dests {
		ds := &n.dests[d]
		if ds.hasR && !ds.hasE {
			m := ds.bufR
			m.Color = n.rng.Intn(n.nw.g.MaxDegree() + 1)
			ds.bufE = m
			ds.hasE = true
			ds.bufR = Message{}
			ds.hasR = false
			ds.offerSeq = 0 // fresh occupancy, fresh handshake
			n.tg.bufR.Add(-1)
			n.tg.bufE.Add(1)
			if n.nw.busActive() {
				n.observe(obs.Event{Kind: obs.KindInternal, Proc: n.id, Dest: graph.ProcessID(d), Msg: record(&ds.bufE, n.id)})
			}
			if graph.ProcessID(d) != n.id {
				n.driveTransfer(graph.ProcessID(d))
			}
			if ds.hasParked {
				// bufR just freed: accept the parked offer now. Re-running
				// handleOffer keeps every watermark check in one place (a
				// cancel may have raised killed since the offer parked).
				o, from, parkedAt := ds.parked, ds.parkedFrom, ds.parkedAtNS
				ds.parked, ds.hasParked = transport.Offer{}, false
				n.tg.parked.Add(-1)
				n.handleOffer(from, o)
				if ds.hasR && ds.bufR.UID == o.Msg.UID {
					// The parked offer was accepted (not refused by a raised
					// watermark): the slot wait is park time the message
					// spent at this congested hop.
					wait := time.Now().UnixNano() - parkedAt
					n.nw.tel.compPark.Observe(wait)
					if hs := n.nw.opts.HoldStamp; hs != nil {
						if p, ok := hs(ds.bufR.Payload, wait); ok {
							ds.bufR.Payload = p
						}
					}
				}
			}
		}
	}
	// R1: accept pending higher-layer messages wherever the destination's
	// bufR is free. The lock-free occupancy check keeps an idle R1 at one
	// atomic load per loop iteration.
	if n.pendingTotal.Load() == 0 {
		return
	}
	active := n.nw.busActive()
	hs := n.nw.opts.HoldStamp
	now := time.Now().UnixNano()
	n.mu.Lock()
	for d := range n.pendingByDest {
		pq := &n.pendingByDest[d]
		if pq.head >= len(pq.q) {
			continue
		}
		ds := &n.dests[d]
		if ds.hasR {
			continue
		}
		ent := pq.q[pq.head]
		wait := now - ent.enqNS
		n.nw.tel.compQueued.Observe(wait)
		if hs != nil {
			if p, ok := hs(ent.m.Payload, wait); ok {
				ent.m.Payload = p
			}
		}
		ds.bufR = ent.m
		ds.hasR = true
		n.tg.bufR.Add(1)
		if graph.ProcessID(d) == n.id {
			ds.rAtNS = now // self-send: the source is the final hop
		}
		pq.q[pq.head] = pendEntry{} // release the payload reference
		pq.head++
		if pq.head == len(pq.q) {
			pq.q = pq.q[:0] // drained: reuse the backing array
			pq.head = 0
		}
		n.pendingTotal.Add(-1)
		n.tg.pending.Add(-1)
		if active {
			n.observe(obs.Event{Kind: obs.KindGenerate, Proc: n.id, Dest: ds.bufR.Dest, Msg: record(&ds.bufR, n.id)})
		}
	}
	n.mu.Unlock()
}
