package msgpass

import (
	"sync/atomic"
	"testing"

	"ssmfp/internal/graph"
	"ssmfp/internal/transport"
)

// TestDeliveryPathAllocFree holds the whole receiver-side delivery path —
// offer into bufR, R2 internal move, R6 delivery through the OnDeliver
// hook, accept back on the wire — to zero steady-state allocations under
// the load generator's configuration (DiscardDeliveries, no bus). This is
// the unit-test twin of BenchmarkDeliveryHotPath; `make bench-allocs`
// gates the benchmark, this gates every plain `go test` run.
func TestDeliveryPathAllocFree(t *testing.T) {
	g := graph.Line(2)
	var got atomic.Int64
	nw := New(g, Options{
		Seed:              1,
		DiscardDeliveries: true,
		OnDeliver:         func(d Delivery) { got.Add(1) },
	})
	defer nw.tr.Close()
	n := nw.nodes[1]
	msg := transport.Message{Payload: "alloc-test-payload", UID: 7, Src: 0, Dest: 1, Valid: true}
	seq := uint64(0)
	// Warm the path once so lazily-created state (accepted/killed map
	// entries for the neighbor) exists before counting.
	seq++
	n.handleOffer(0, transport.Offer{Dest: 1, Seq: seq, Msg: msg})
	n.localMoves()
	if allocs := testing.AllocsPerRun(500, func() {
		seq++
		n.handleOffer(0, transport.Offer{Dest: 1, Seq: seq, Msg: msg})
		n.localMoves()
	}); allocs > 0 {
		t.Fatalf("delivery path allocates %.1f times per message, want 0", allocs)
	}
	if got.Load() == 0 {
		t.Fatal("delivery callback never fired")
	}
}

// TestSendHotPathAllocFree pins the sender-side wire handoff (frame-kind
// accounting + link send) to zero allocations per frame.
func TestSendHotPathAllocFree(t *testing.T) {
	g := graph.Complete(4)
	nw := New(g, Options{Seed: 1})
	defer nw.tr.Close()
	n := nw.nodes[0]
	dv := make([]int, g.N())
	if allocs := testing.AllocsPerRun(500, func() {
		n.send(1, transport.Frame{Kind: transport.KindDV, From: 0, DV: dv})
	}); allocs > 0 {
		t.Fatalf("send hot path allocates %.1f times per frame, want 0", allocs)
	}
}
