package msgpass_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"ssmfp/internal/graph"
	"ssmfp/internal/msgpass"
	"ssmfp/internal/obs"
)

// mustSend injects a message on a network the test knows is running.
func mustSend(t *testing.T, nw *msgpass.Network, src graph.ProcessID, payload string, dst graph.ProcessID) uint64 {
	t.Helper()
	uid, err := nw.Send(src, payload, dst)
	if err != nil {
		t.Fatalf("Send(%d, %q, %d): %v", src, payload, dst, err)
	}
	return uid
}

// checkExactlyOnce fails the test if any UID in want is missing or any
// valid UID was delivered more than once.
func checkExactlyOnce(t *testing.T, nw *msgpass.Network, want map[uint64]graph.ProcessID) {
	t.Helper()
	counts := make(map[uint64]int)
	for _, d := range nw.Deliveries() {
		if d.Msg.Valid {
			counts[d.Msg.UID]++
			if wantAt, ok := want[d.Msg.UID]; !ok {
				t.Errorf("delivery of unknown UID %d", d.Msg.UID)
			} else if d.At != wantAt {
				t.Errorf("UID %d delivered at %d, want %d", d.Msg.UID, d.At, wantAt)
			}
		}
	}
	for uid := range want {
		switch counts[uid] {
		case 0:
			t.Errorf("UID %d never delivered", uid)
		case 1: // exactly once: good
		default:
			t.Errorf("UID %d delivered %d times", uid, counts[uid])
		}
	}
}

func TestSingleMessageDelivered(t *testing.T) {
	g := graph.Line(4)
	nw := msgpass.New(g, msgpass.Options{Seed: 1})
	nw.Start()
	defer nw.Stop()
	uid := mustSend(t, nw, 0, "hello", 3)
	if !nw.WaitDelivered(1, 10*time.Second) {
		t.Fatal("message not delivered in time")
	}
	checkExactlyOnce(t, nw, map[uint64]graph.ProcessID{uid: 3})
}

func TestSelfSend(t *testing.T) {
	g := graph.Line(3)
	nw := msgpass.New(g, msgpass.Options{Seed: 2})
	nw.Start()
	defer nw.Stop()
	uid := mustSend(t, nw, 1, "me", 1)
	if !nw.WaitDelivered(1, 10*time.Second) {
		t.Fatal("self-send not delivered")
	}
	checkExactlyOnce(t, nw, map[uint64]graph.ProcessID{uid: 1})
}

func TestManyMessagesExactlyOnce(t *testing.T) {
	g := graph.Grid(3, 3)
	nw := msgpass.New(g, msgpass.Options{Seed: 3})
	nw.Start()
	defer nw.Stop()
	want := make(map[uint64]graph.ProcessID)
	k := 0
	for src := 0; src < g.N(); src++ {
		for off := 1; off <= 3; off++ {
			dst := graph.ProcessID((src + off) % g.N())
			uid := mustSend(t, nw, graph.ProcessID(src), fmt.Sprintf("m%d", k), dst)
			want[uid] = dst
			k++
		}
	}
	if !nw.WaitDelivered(k, 30*time.Second) {
		t.Fatalf("only %d/%d delivered", len(nw.Deliveries()), k)
	}
	checkExactlyOnce(t, nw, want)
}

func TestLossyLinksStillExactlyOnce(t *testing.T) {
	g := graph.Ring(6)
	nw := msgpass.New(g, msgpass.Options{Seed: 4, LossRate: 0.3})
	nw.Start()
	defer nw.Stop()
	want := make(map[uint64]graph.ProcessID)
	for src := 0; src < g.N(); src++ {
		dst := graph.ProcessID((src + 3) % g.N())
		uid := mustSend(t, nw, graph.ProcessID(src), fmt.Sprintf("lossy%d", src), dst)
		want[uid] = dst
	}
	if !nw.WaitDelivered(len(want), 60*time.Second) {
		t.Fatalf("only %d/%d delivered under loss", len(nw.Deliveries()), len(want))
	}
	checkExactlyOnce(t, nw, want)
}

func TestCorruptInitialStateStillDelivers(t *testing.T) {
	g := graph.Grid(2, 3)
	nw := msgpass.New(g, msgpass.Options{Seed: 5, CorruptInit: true})
	nw.Start()
	defer nw.Stop()
	want := make(map[uint64]graph.ProcessID)
	for src := 0; src < g.N(); src++ {
		dst := graph.ProcessID((src + 2) % g.N())
		uid := mustSend(t, nw, graph.ProcessID(src), fmt.Sprintf("c%d", src), dst)
		want[uid] = dst
	}
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		valid := 0
		for _, d := range nw.Deliveries() {
			if d.Msg.Valid {
				valid++
			}
		}
		if valid >= len(want) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	checkExactlyOnce(t, nw, want)
	// Invalid planted messages must never be delivered more than once each.
	invCount := make(map[uint64]int)
	for _, d := range nw.Deliveries() {
		if !d.Msg.Valid {
			invCount[d.Msg.UID]++
			if invCount[d.Msg.UID] > 1 {
				t.Fatalf("invalid UID %d delivered %d times", d.Msg.UID, invCount[d.Msg.UID])
			}
		}
	}
}

func TestStopTerminates(t *testing.T) {
	g := graph.Ring(5)
	nw := msgpass.New(g, msgpass.Options{Seed: 6})
	nw.Start()
	nw.Send(0, "x", 2)
	done := make(chan struct{})
	go func() {
		nw.Stop()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Stop did not terminate the goroutines")
	}
}

func TestStoppedNetworkGuards(t *testing.T) {
	// Long-running load drivers race Send/WaitDelivered against shutdown;
	// the stopped network must answer with errors, not panics or stalls.
	g := graph.Line(3)
	nw := msgpass.New(g, msgpass.Options{Seed: 8})
	nw.Start()
	mustSend(t, nw, 0, "before-stop", 2)
	if !nw.WaitDelivered(1, 10*time.Second) {
		t.Fatal("pre-stop message not delivered")
	}
	nw.Stop()
	nw.Stop() // idempotent: a second Stop must not panic
	if _, err := nw.Send(0, "after-stop", 2); err != msgpass.ErrStopped {
		t.Fatalf("Send after Stop: err = %v, want ErrStopped", err)
	}
	start := time.Now()
	if nw.WaitDelivered(2, 30*time.Second) {
		t.Fatal("WaitDelivered reported an impossible second delivery")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("WaitDelivered blocked %v on a stopped network", elapsed)
	}
	// Thresholds already met keep reporting true after Stop.
	if !nw.WaitDelivered(1, time.Millisecond) {
		t.Fatal("WaitDelivered lost the recorded delivery after Stop")
	}
}

func TestOnDeliverHookObservesDeliveries(t *testing.T) {
	g := graph.Line(4)
	var mu sync.Mutex
	var got []msgpass.Delivery
	nw := msgpass.New(g, msgpass.Options{Seed: 9, OnDeliver: func(d msgpass.Delivery) {
		mu.Lock()
		got = append(got, d)
		mu.Unlock()
	}})
	nw.Start()
	defer nw.Stop()
	before := time.Now()
	uid := mustSend(t, nw, 0, "hooked", 3)
	if !nw.WaitDelivered(1, 10*time.Second) {
		t.Fatal("message not delivered in time")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 1 || got[0].Msg.UID != uid || got[0].At != 3 {
		t.Fatalf("hook observed %+v, want one delivery of uid %d at 3", got, uid)
	}
	if got[0].Time.Before(before) || got[0].Time.After(time.Now()) {
		t.Fatalf("delivery timestamp %v outside the test window", got[0].Time)
	}
}

func TestWaitDeliveredTimesOut(t *testing.T) {
	g := graph.Line(2)
	nw := msgpass.New(g, msgpass.Options{Seed: 7})
	nw.Start()
	defer nw.Stop()
	if nw.WaitDelivered(1, 20*time.Millisecond) {
		t.Fatal("nothing was sent; WaitDelivered should time out")
	}
}

func TestStatsCountRetransmissionsUnderLoss(t *testing.T) {
	g := graph.Line(5)
	nw := msgpass.New(g, msgpass.Options{Seed: 12, LossRate: 0.4})
	nw.Start()
	defer nw.Stop()
	uid := mustSend(t, nw, 0, "lossy-road", 4)
	if !nw.WaitDelivered(1, 60*time.Second) {
		t.Fatal("not delivered despite retransmission")
	}
	checkExactlyOnce(t, nw, map[uint64]graph.ProcessID{uid: 4})
	st := nw.Stats()
	if st.LostInjected == 0 {
		t.Fatal("40% loss must have dropped frames")
	}
	// 4 hops needed; with 40% loss the offer count must exceed the hop
	// count (retransmissions happened).
	if st.OffersSent <= 4 {
		t.Fatalf("offers = %d; expected retransmissions beyond the 4 hops", st.OffersSent)
	}
	if st.AcceptsSent == 0 || st.DVSent == 0 {
		t.Fatalf("stats incomplete: %+v", st)
	}
}

func TestCancelsHappenUnderCorruptRouting(t *testing.T) {
	// With corrupted initial routing, the distance vector retargets
	// in-flight offers; the cancel machinery must actually engage in at
	// least some seeds (this exercises the retarget path end to end).
	sawCancel := false
	for seed := int64(0); seed < 12 && !sawCancel; seed++ {
		g := graph.Ring(6)
		nw := msgpass.New(g, msgpass.Options{Seed: seed, CorruptInit: true})
		nw.Start()
		for p := 0; p < g.N(); p++ {
			nw.Send(graph.ProcessID(p), "c", graph.ProcessID((p+3)%g.N()))
		}
		nw.WaitDelivered(g.N(), 30*time.Second)
		if nw.Stats().CancelsSent > 0 {
			sawCancel = true
		}
		nw.Stop()
	}
	if !sawCancel {
		t.Fatal("no seed exercised the cancel path — retargeting never happened?")
	}
}

// BenchmarkLiveThroughput measures end-to-end messages/second of the
// message-passing port on a clean 3×3 grid (antipodal permutation).
func BenchmarkLiveThroughput(b *testing.B) {
	g := graph.Grid(3, 3)
	nw := msgpass.New(g, msgpass.Options{Seed: 1})
	nw.Start()
	defer nw.Stop()
	sent := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := graph.ProcessID(i % g.N())
		nw.Send(src, "bench", graph.ProcessID((i+4)%g.N()))
		sent++
	}
	if !nw.WaitDelivered(sent, 120*time.Second) {
		b.Fatalf("only %d/%d delivered", len(nw.Deliveries()), sent)
	}
}

func TestDuplicatingLinksStillExactlyOnce(t *testing.T) {
	// Links that both lose AND duplicate frames: the per-hop sequence
	// numbers must absorb duplicates while retransmission absorbs losses.
	g := graph.Ring(6)
	nw := msgpass.New(g, msgpass.Options{Seed: 13, LossRate: 0.15, DupRate: 0.3})
	nw.Start()
	defer nw.Stop()
	want := make(map[uint64]graph.ProcessID)
	for src := 0; src < g.N(); src++ {
		dst := graph.ProcessID((src + 2) % g.N())
		uid := mustSend(t, nw, graph.ProcessID(src), fmt.Sprintf("dup%d", src), dst)
		want[uid] = dst
	}
	if !nw.WaitDelivered(len(want), 60*time.Second) {
		t.Fatalf("only %d/%d delivered under dup+loss", len(nw.Deliveries()), len(want))
	}
	checkExactlyOnce(t, nw, want)
}

func TestBusObservesMessageLifecycle(t *testing.T) {
	g := graph.Line(4)
	bus := obs.NewBus()
	var mu sync.Mutex
	kinds := make(map[obs.Kind]int)
	var uid2kinds []obs.Kind
	bus.Subscribe(func(ev obs.Event) {
		mu.Lock()
		defer mu.Unlock()
		kinds[ev.Kind]++
		if ev.Step != -1 || ev.Round != -1 {
			t.Errorf("wall-clock event carries engine time: %+v", ev)
		}
		if ev.Msg != nil && ev.Msg.UID == 1 {
			uid2kinds = append(uid2kinds, ev.Kind)
		}
	})
	nw := msgpass.New(g, msgpass.Options{Seed: 5, Bus: bus})
	nw.Start()
	defer nw.Stop()
	uid := mustSend(t, nw, 0, "watched", 3)
	if uid != 1 {
		t.Fatalf("uid = %d, want 1", uid)
	}
	if !nw.WaitDelivered(1, 10*time.Second) {
		t.Fatal("message not delivered in time")
	}
	mu.Lock()
	defer mu.Unlock()
	for _, k := range []obs.Kind{obs.KindGenerate, obs.KindInternal, obs.KindForward, obs.KindDeliver, obs.KindErase} {
		if kinds[k] == 0 {
			t.Errorf("no %s event observed; kinds = %v", k, kinds)
		}
	}
	// The watched message's own stream starts with its generation and
	// delivers exactly once. The delivery races the previous hop's bufE
	// erase (they happen on different node goroutines: the destination
	// consumes while the upstream node waits for the accept), so erase
	// events may trail the delivery — but nothing else may.
	if len(uid2kinds) == 0 || uid2kinds[0] != obs.KindGenerate {
		t.Fatalf("uid 1 lifecycle = %v, want it to open with %s", uid2kinds, obs.KindGenerate)
	}
	delivers := 0
	for i, k := range uid2kinds {
		switch k {
		case obs.KindDeliver:
			delivers++
		case obs.KindErase:
		default:
			if delivers > 0 {
				t.Fatalf("uid 1 lifecycle continues with %s after its delivery: %v", uid2kinds[i], uid2kinds)
			}
		}
	}
	if delivers != 1 {
		t.Fatalf("uid 1 delivered %d times in lifecycle %v", delivers, uid2kinds)
	}
}

func TestQueueDepthsSnapshot(t *testing.T) {
	g := graph.Line(3)
	nw := msgpass.New(g, msgpass.Options{Seed: 6})
	// Before Start the pending queue is visible immediately.
	nw.Send(0, "queued", 2)
	qd := nw.QueueDepths()
	if len(qd) != 3 {
		t.Fatalf("depths for %d nodes, want 3", len(qd))
	}
	if qd[0].Proc != 0 || qd[0].Pending != 1 {
		t.Fatalf("node 0 depth = %+v, want pending 1", qd[0])
	}
	nw.Start()
	defer nw.Stop()
	if !nw.WaitDelivered(1, 10*time.Second) {
		t.Fatal("message not delivered in time")
	}
	// Drained: no pending sends remain anywhere.
	deadline := time.Now().Add(5 * time.Second)
	for {
		total := 0
		for _, q := range nw.QueueDepths() {
			total += q.Pending
		}
		if total == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("pending queues never drained: %+v", nw.QueueDepths())
		}
		time.Sleep(time.Millisecond)
	}
}
