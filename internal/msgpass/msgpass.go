// Package msgpass carries SSMFP to the message-passing model — the open
// problem the paper's conclusion poses ("it will be interesting to carry
// our protocol in the message passing model ... in order to enable
// snap-stabilizing message forwarding in a real network"). Every processor
// is a goroutine, every link a transport.Link (in-process channels, real
// TCP sockets, or a chaos-impaired wrapper of either — see
// internal/transport), and the shared-memory reads of the state model
// become explicit frames:
//
//   - routing: a self-stabilizing distance-vector — nodes gossip their
//     per-destination distances on every tick and correct (dist, parent)
//     exactly like internal/routing does in shared memory;
//   - forwarding: the bufR/bufE pairs survive, but the R3/R4 pair (copy at
//     the next hop, then erase at the origin) becomes an offer/accept
//     handshake with per-(sender, destination) sequence numbers,
//     retransmission on a timer, and idempotent acknowledgement — the
//     standard alternating-bit-style realization of the state model's
//     "copy visible ⇒ erase" reasoning;
//   - consumption stays local.
//
// The handshake assumes nothing about the wire beyond best effort: frames
// may be dropped, duplicated, and — depending on the transport — arrive
// out of order. One directed channel or TCP link is FIFO per se, so with
// those backends out-of-order arrival happens only through retransmission
// interleaving (a retransmitted offer overtaking the original's late
// accept); the chaos transport's per-frame jitter is what introduces
// genuine wire reordering. Under all of it the handshake keeps every hop
// exactly-once, so valid messages are delivered once and only once while
// the distance vector repairs arbitrary initial routing state — the
// behaviour experiment E-X3 measures and the transport conformance suite
// re-checks against every backend. The port is an engineering
// demonstration, not a proof-carrying artifact: the paper leaves the
// formal transformation open, and DESIGN.md records the differences
// (timers and sequence numbers instead of colors for hop-level identity;
// colors are still carried for observability).
package msgpass

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"ssmfp/internal/graph"
	"ssmfp/internal/obs"
	"ssmfp/internal/telemetry"
	"ssmfp/internal/transport"
)

// Message is the unit the port forwards. UID/Valid mirror the simulator's
// bookkeeping so the same exactly-once oracles apply. It is the
// transport's wire message type: what a node hands to a link is what the
// peer decodes.
type Message = transport.Message

// Delivery records a consumption at a destination. Time is the wall-clock
// instant the destination handed the message up — the load subsystem's
// latency measurements end here. DeliverWaitNS is the time the message
// spent at the destination between arrival (stored into bufR) and the R6
// consumption — the "deliver" component of the latency attribution,
// carried on the struct so observing it allocates nothing (it cannot ride
// the payload tag: the destination never rewrites the payload). Msg is a
// value: a delivery crosses the OnDeliver hook by copy.
type Delivery struct {
	Msg           Message
	At            graph.ProcessID
	Time          time.Time
	DeliverWaitNS int64
}

// ErrStopped is returned by Send after Stop: the node goroutines are gone,
// so an accepted message could never move again.
var ErrStopped = errors.New("msgpass: network stopped")

// Options tunes the port.
type Options struct {
	// Tick is the node timer period (distance-vector gossip and offer
	// retransmission). Default 200µs.
	Tick time.Duration
	// ChannelDepth sizes the per-link buffers of the default channel
	// transport and each node's fan-in inbox; overflowing frames are
	// dropped (retransmission recovers them). Default 64.
	ChannelDepth int
	// LossRate drops each frame with this probability (0..1). With no
	// explicit Transport, a non-zero rate wraps the channel backend in a
	// chaos transport carrying the loss.
	LossRate float64
	// DupRate delivers each frame twice with this probability (0..1) —
	// real links also duplicate; the handshake's idempotent acknowledgement
	// must absorb it.
	DupRate float64
	// Latency and Jitter delay frames (base + uniform extra) through the
	// same implicit chaos wrapper. Zero means no delay injection.
	Latency time.Duration
	Jitter  time.Duration
	// BandwidthBps caps each directed link at this many encoded frame
	// bytes per second through the same implicit chaos wrapper (0 =
	// unlimited). Load experiments use it to study saturation under a
	// line-rate bound.
	BandwidthBps int
	// Seed drives loss and corruption randomness.
	Seed int64
	// CorruptInit randomizes initial routing state and plants invalid
	// messages in buffers when true.
	CorruptInit bool
	// Transport supplies the wire. Nil selects the in-process channel
	// backend (chaos-wrapped when LossRate/DupRate/Latency/Jitter ask for
	// impairment), which Network.Stop then owns and closes. A non-nil
	// transport is the caller's: it must cover every edge this Network's
	// processors touch, and the caller closes it after Stop.
	Transport transport.Transport
	// Procs restricts which processors this Network instance runs (nil =
	// all of them). With a node-scoped transport, every OS process runs
	// its own subset — typically a single processor (cmd/ssmfp-node) —
	// and the union of all processes forms the deployment. Send panics
	// for sources outside the subset; Deliveries reports local
	// consumptions only.
	Procs []graph.ProcessID
	// Bus, when non-nil, receives typed lifecycle events from the nodes
	// (generate, internal move, hop transfer, erase, deliver). The port
	// runs on wall-clock time, not engine steps, so events carry Step and
	// Round -1; they are meant for live monitoring, not frame replay. With
	// no bus (or no subscriber) the nodes pay one atomic load per event
	// site.
	Bus *obs.Bus
	// OnDeliver, when non-nil, is invoked once per local delivery, from
	// the destination's node goroutine, after the delivery is recorded.
	// It is the push-based delivery stream the load subsystem's latency
	// collector hooks into (polling Deliveries is O(n) per snapshot). The
	// callback must be fast and must not call back into the Network.
	// Invocation order across destinations may differ from the order of
	// the Deliveries slice.
	OnDeliver func(Delivery)
	// DiscardDeliveries disables the in-memory delivery log: Deliveries
	// returns nil and each delivery costs an atomic increment instead of
	// an append under the network lock. Sustained load runs set it — their
	// accounting lives in the OnDeliver hook — so a long run's memory and
	// hot path stay flat. WaitDelivered keeps working off the counter.
	DiscardDeliveries bool
	// Telemetry is the metrics registry the deployment reports into; nil
	// builds a private one. Telemetry is always on — hot-path updates are
	// a handful of atomics (see internal/telemetry) — so passing a shared
	// registry only changes who gets to scrape it, not what it costs.
	Telemetry *telemetry.Registry
	// HoldStamp, when non-nil, is invoked at the two points a message's
	// accumulated hold time grows — R1 acceptance (queued wait) and
	// parked-offer acceptance (park wait) — with the message payload and
	// the wait in nanoseconds. It returns the rewritten payload and
	// whether a rewrite happened (load.AddHold folds the wait into the
	// payload tag's attribution slot; foreign payloads pass through). The
	// callback runs on node goroutines and must not call into the Network.
	HoldStamp func(payload string, waitNanos int64) (string, bool)
}

func (o Options) withDefaults() Options {
	if o.Tick <= 0 {
		o.Tick = 200 * time.Microsecond
	}
	if o.ChannelDepth <= 0 {
		o.ChannelDepth = 64
	}
	return o
}

// Network is a running message-passing deployment of the protocol — or,
// with Options.Procs set, one process's share of a deployment that spans
// several OS processes over a node-scoped transport.
type Network struct {
	g    *graph.Graph
	opts Options

	tr    transport.Transport
	ownTr bool

	nodes []*node // indexed by ProcessID; nil for non-local processors
	local []graph.ProcessID

	// Elastic-membership machinery (epoch.go). view is the atomic read
	// surface for goroutines outside the epoch barrier; epochMu serializes
	// ApplyEpoch and barrier inspections; pause carries the stop-the-world
	// requests; fan is the current fan-in generation; running lists the
	// processors with a live goroutine; procsWant pins a node-scoped
	// instance to its configured processor set (nil = adopt every member).
	view      atomic.Pointer[netView]
	epochMu   sync.Mutex
	pause     chan *pauseReq
	fan       *fanGen
	running   []graph.ProcessID
	procsWant []graph.ProcessID
	started   bool

	// tel holds the pre-resolved telemetry handles (frame-kind counters,
	// delivery counters, attribution histograms). Every handle is atomics
	// under the hood, so the hot paths never take a network-wide lock
	// (see BenchmarkSendHotPathParallel).
	tel *netTelemetry

	nextUID atomic.Uint64

	deliveredCount atomic.Int64
	waiters        atomic.Int32 // WaitDelivered callers; deliver only signals when > 0

	mu         sync.Mutex
	deliveries []Delivery
	delivered  chan struct{} // closed and replaced on a delivery while waiters > 0

	stop     chan struct{}
	stopOnce sync.Once
	stopped  atomic.Bool
	wg       sync.WaitGroup
}

// Stats counts wire-level activity: how many frames of each kind were
// sent and how many were lost (by injected impairment or by congestion).
// Offers exceeding deliveries indicate retransmissions at work. Wire
// carries the transport's own counters (bytes and dials are non-zero
// only on the TCP backend).
type Stats struct {
	DVSent         int
	OffersSent     int
	AcceptsSent    int
	CancelsSent    int
	CancelAcksSent int
	LostInjected   int
	LostCongestion int
	Wire           transport.Stats
}

// New builds (but does not start) a deployment on g.
func New(g *graph.Graph, opts Options) *Network {
	opts = opts.withDefaults()
	reg := opts.Telemetry
	if reg == nil {
		reg = telemetry.New()
	}
	nw := &Network{
		g:         g,
		opts:      opts,
		tr:        opts.Transport,
		tel:       newNetTelemetry(reg),
		nodes:     make([]*node, g.N()),
		delivered: make(chan struct{}),
		stop:      make(chan struct{}),
	}
	if nw.tr == nil {
		nw.ownTr = true
		var tr transport.Transport = transport.NewChan(g, opts.ChannelDepth)
		if opts.LossRate > 0 || opts.DupRate > 0 || opts.Latency > 0 || opts.Jitter > 0 || opts.BandwidthBps > 0 {
			tr = transport.NewChaos(tr, transport.ChaosOptions{
				Seed:         opts.Seed,
				LossRate:     opts.LossRate,
				DupRate:      opts.DupRate,
				Latency:      opts.Latency,
				Jitter:       opts.Jitter,
				BandwidthBps: opts.BandwidthBps,
				Bus:          opts.Bus,
			})
		}
		nw.tr = tr
	}
	nw.local = opts.Procs
	nw.procsWant = opts.Procs
	if nw.local == nil {
		nw.local = g.Processors()
	}
	nw.pause = make(chan *pauseReq)
	nw.running = nw.local
	rng := rand.New(rand.NewSource(opts.Seed))
	seeds := make([]int64, g.N())
	for p := range seeds {
		// One draw per processor regardless of locality, so a node's
		// private stream depends only on (Seed, id) — every process of a
		// multi-process deployment derives the same per-node streams.
		seeds[p] = rng.Int63()
	}
	for _, p := range nw.local {
		nw.nodes[p] = newNode(nw, p, rand.New(rand.NewSource(seeds[p])), g)
	}
	nw.view.Store(&netView{
		g:          g,
		nodes:      nw.nodes,
		local:      nw.local,
		draining:   make([]bool, g.N()),
		namespaced: len(nw.local) != g.N(),
	})
	nw.tel.members.Set(int64(len(membersOf(g))))
	nw.registerWire()
	return nw
}

// Telemetry returns the deployment's metrics registry — the one passed in
// Options.Telemetry, or the private one the Network built. Consumers hang
// scrape endpoints and snapshot emitters off it.
func (nw *Network) Telemetry() *telemetry.Registry { return nw.tel.reg }

// Start launches one goroutine per local processor, plus the fan-in pumps
// feeding each node's inbox from its incoming links.
func (nw *Network) Start() {
	nw.epochMu.Lock()
	defer nw.epochMu.Unlock()
	nw.started = true
	for _, p := range nw.running {
		nw.wg.Add(1)
		go nw.nodes[p].run()
	}
	nw.fan = newFanGen()
	nw.startFanIns(nw.fan)
}

// startFanIns spawns the current generation's fan-in pumps: one per
// incoming link of every running node. Caller holds epochMu.
func (nw *Network) startFanIns(gen *fanGen) {
	for _, p := range nw.running {
		n := nw.nodes[p]
		for _, q := range n.nbrs {
			l := nw.tr.Link(q, n.id)
			nw.wg.Add(1)
			gen.wg.Add(1)
			go nw.fanIn(gen, l.Recv(), n.inbox)
		}
	}
}

// fanIn pumps one incoming link into a node inbox until the generation
// retires or the network stops. Frames dropped at a full inbox — or in
// flight when the generation gate closes — are recovered by the
// handshake's retransmission, like any other congestion loss.
func (nw *Network) fanIn(gen *fanGen, ch <-chan transport.Frame, inbox chan transport.Frame) {
	defer nw.wg.Done()
	defer gen.wg.Done()
	for {
		select {
		case f := <-ch:
			select {
			case inbox <- f:
			case <-gen.gate:
				return
			case <-nw.stop:
				return
			}
		case <-gen.gate:
			return
		case <-nw.stop:
			return
		}
	}
}

// Stop terminates all node goroutines and waits for them; a transport the
// Network built for itself is closed, a caller-supplied one is left open.
// Stop is idempotent: long-running load drivers race their shutdown paths
// against the network's, and a second Stop must be a harmless no-op, not a
// close-of-closed-channel panic.
func (nw *Network) Stop() {
	nw.stopOnce.Do(func() {
		nw.stopped.Store(true)
		close(nw.stop)
		nw.wg.Wait()
		if nw.ownTr {
			nw.tr.Close()
		}
	})
}

// Send injects a higher-layer send request at src and returns the UID the
// oracles can track. src must be a running local processor (ErrNotLocal
// otherwise — it never was local, or it left the cluster) and must not be
// draining (ErrDraining); dst must be a current cluster member
// (ErrNotMember). After Stop it returns ErrStopped: the message could
// never be forwarded, and sustained load drivers need the shutdown race
// surfaced as an error, not a message silently parked on a dead queue.
func (nw *Network) Send(src graph.ProcessID, payload string, dst graph.ProcessID) (uint64, error) {
	if nw.stopped.Load() {
		return 0, ErrStopped
	}
	v := nw.view.Load()
	if int(src) < 0 || int(src) >= len(v.nodes) || v.nodes[src] == nil {
		return 0, ErrNotLocal
	}
	if v.draining[src] {
		return 0, ErrDraining
	}
	if int(dst) < 0 || int(dst) >= v.g.N() || (v.g.Degree(dst) == 0 && v.g.N() > 1) {
		return 0, ErrNotMember
	}
	n := v.nodes[src]
	uid := nw.nextUID.Add(1)
	if v.namespaced {
		// Partial deployment: namespace UIDs by source so the union of
		// all processes' UIDs stays collision-free for the oracle.
		uid |= (uint64(src) + 1) << 40
	}
	m := Message{Payload: payload, UID: uid, Src: src, Dest: dst, Valid: true}
	enq := time.Now().UnixNano()
	n.mu.Lock()
	pq := &n.pendingByDest[dst]
	pq.q = append(pq.q, pendEntry{m: m, enqNS: enq})
	n.mu.Unlock()
	n.pendingTotal.Add(1)
	n.tg.pending.Add(1)
	nw.tel.sends.Inc()
	return uid, nil
}

// Deliveries returns a snapshot of all (local) deliveries so far. With
// Options.DiscardDeliveries it returns nil — use the OnDeliver hook.
func (nw *Network) Deliveries() []Delivery {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	return append([]Delivery(nil), nw.deliveries...)
}

// Delivered returns the count of local deliveries so far; unlike
// Deliveries it works under DiscardDeliveries and takes no lock.
func (nw *Network) Delivered() int { return int(nw.deliveredCount.Load()) }

// WaitDelivered blocks until at least k deliveries happened or the timeout
// elapsed; it reports whether the threshold was reached. It is signalled
// by deliver, not polled. On a stopped network it returns immediately with
// the verdict on the deliveries recorded so far — no new delivery can
// arrive, so blocking out the timeout would only stall the caller.
func (nw *Network) WaitDelivered(k int, timeout time.Duration) bool {
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	nw.waiters.Add(1)
	defer nw.waiters.Add(-1)
	for {
		// Grab the signal channel before checking the count: a delivery
		// that lands in between will have closed this channel (it sees our
		// registered waiter), so the select below cannot sleep through it.
		nw.mu.Lock()
		sig := nw.delivered
		nw.mu.Unlock()
		if int(nw.deliveredCount.Load()) >= k {
			return true
		}
		if nw.stopped.Load() {
			return false
		}
		select {
		case <-sig:
		case <-nw.stop:
		case <-timer.C:
			return int(nw.deliveredCount.Load()) >= k
		}
	}
}

func (nw *Network) deliver(d Delivery) {
	d.Time = time.Now()
	nw.tel.deliveries.Inc()
	if !d.Msg.Valid {
		nw.tel.invalidDeliveries.Inc()
	}
	if d.Msg.Dest != d.At {
		// A message consumed at a processor it was never destined for:
		// corrupt initial state flushing out, or a real forwarding bug.
		// The health detector flags any nonzero count after stabilization.
		nw.tel.phantomDeliveries.Inc()
	}
	if d.DeliverWaitNS > 0 {
		nw.tel.compDeliver.Observe(d.DeliverWaitNS)
	}
	if !nw.opts.DiscardDeliveries {
		nw.mu.Lock()
		nw.deliveries = append(nw.deliveries, d)
		nw.mu.Unlock()
	}
	nw.deliveredCount.Add(1)
	if nw.waiters.Load() > 0 {
		// Wake every WaitDelivered. Skipped entirely when nobody waits, so
		// the steady-state delivery path churns no channels.
		nw.mu.Lock()
		close(nw.delivered)
		nw.delivered = make(chan struct{})
		nw.mu.Unlock()
	}
	// Outside the lock: the hook may take its own locks (the latency
	// collector does) and must not be able to deadlock against Deliveries.
	if fn := nw.opts.OnDeliver; fn != nil {
		fn(d)
	}
}

// Stats returns a snapshot of the wire-level counters.
func (nw *Network) Stats() Stats {
	wire := nw.tr.Stats()
	return Stats{
		DVSent:         int(nw.tel.frames[transport.KindDV].Load()),
		OffersSent:     int(nw.tel.frames[transport.KindOffer].Load()),
		AcceptsSent:    int(nw.tel.frames[transport.KindAccept].Load()),
		CancelsSent:    int(nw.tel.frames[transport.KindCancel].Load()),
		CancelAcksSent: int(nw.tel.frames[transport.KindCancelAck].Load()),
		LostInjected:   int(wire.DroppedImpair),
		LostCongestion: int(wire.DroppedFull),
		Wire:           wire,
	}
}

// QueueDepth is a point-in-time occupancy snapshot of one node: frames
// fanned in but not yet handled, higher-layer sends not yet accepted by
// R1, occupied buffers, parked offers, and frames sitting in the node's
// outbound wire queues. All fields are exact: the buffer and park gauges
// are updated at every occupancy transition, not sampled on a tick.
// PendingByDest breaks Pending down per destination ring (only non-empty
// rings appear).
type QueueDepth struct {
	Proc          graph.ProcessID         `json:"proc"`
	Inbox         int                     `json:"inbox"`
	Pending       int                     `json:"pending"`
	BufR          int                     `json:"bufR"`
	BufE          int                     `json:"bufE"`
	Parked        int                     `json:"parked"`
	WireOut       int                     `json:"wireOut"`
	PendingByDest map[graph.ProcessID]int `json:"pendingByDest,omitempty"`
}

// QueueDepths snapshots every local node's queue occupancy. Safe to call
// from any goroutine while the network runs. It is a cold-path observer:
// the per-destination breakdown takes each node's pending lock briefly.
func (nw *Network) QueueDepths() []QueueDepth {
	v := nw.view.Load()
	out := make([]QueueDepth, 0, len(v.local))
	for _, p := range v.local {
		n := v.nodes[p]
		if n == nil {
			continue
		}
		pending := int(n.pendingTotal.Load())
		wireOut := 0
		for _, l := range *n.outp.Load() {
			wireOut += l.Stats().Queued
		}
		var byDest map[graph.ProcessID]int
		n.mu.Lock()
		for d := range n.pendingByDest {
			if c := len(n.pendingByDest[d].q) - n.pendingByDest[d].head; c > 0 {
				if byDest == nil {
					byDest = make(map[graph.ProcessID]int)
				}
				byDest[graph.ProcessID(d)] = c
			}
		}
		n.mu.Unlock()
		out = append(out, QueueDepth{
			Proc:          n.id,
			Inbox:         len(n.inbox),
			Pending:       pending,
			BufR:          int(n.tg.bufR.Load()),
			BufE:          int(n.tg.bufE.Load()),
			Parked:        int(n.tg.parked.Load()),
			WireOut:       wireOut,
			PendingByDest: byDest,
		})
	}
	return out
}

// busActive reports whether observability events should be constructed at
// all — nodes guard every event site with it, so a run without a
// subscriber builds no Event and no MsgRecord (one atomic load per site).
func (nw *Network) busActive() bool { return nw.opts.Bus.Active() }

// record converts a port message into its observability image; lastHop is
// the hop identity the state model would have stored alongside it.
func record(m *Message, lastHop graph.ProcessID) *obs.MsgRecord {
	if m == nil {
		return nil
	}
	return &obs.MsgRecord{Payload: m.Payload, LastHop: lastHop, Color: m.Color, UID: m.UID, Valid: m.Valid}
}

// countFrame attributes one sent frame to its kind counter. The counters
// are telemetry atomics: this is the wire hot path, crossed once or twice
// per frame by every node goroutine concurrently, and must not serialize
// on a network-wide lock.
func (nw *Network) countFrame(k transport.FrameKind) {
	if int(k) < len(nw.tel.frames) {
		if c := nw.tel.frames[k]; c != nil {
			c.Inc()
		}
	}
}
