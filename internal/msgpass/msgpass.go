// Package msgpass carries SSMFP to the message-passing model — the open
// problem the paper's conclusion poses ("it will be interesting to carry
// our protocol in the message passing model ... in order to enable
// snap-stabilizing message forwarding in a real network"). Every processor
// is a goroutine, every link a pair of Go channels, and the shared-memory
// reads of the state model become explicit frames:
//
//   - routing: a self-stabilizing distance-vector — nodes gossip their
//     per-destination distances on every tick and correct (dist, parent)
//     exactly like internal/routing does in shared memory;
//   - forwarding: the bufR/bufE pairs survive, but the R3/R4 pair (copy at
//     the next hop, then erase at the origin) becomes an offer/accept
//     handshake with per-(sender, destination) sequence numbers,
//     retransmission on a timer, and idempotent acknowledgement — the
//     standard alternating-bit-style realization of the state model's
//     "copy visible ⇒ erase" reasoning;
//   - consumption stays local.
//
// Frames may be dropped (lossy links are injectable) and reordered across
// destinations; the handshake keeps every hop exactly-once, so valid
// messages are delivered once and only once while the distance vector
// repairs arbitrary initial routing state — the behaviour experiment E-X3
// measures. The port is an engineering demonstration, not a proof-carrying
// artifact: the paper leaves the formal transformation open, and DESIGN.md
// records the differences (timers and sequence numbers instead of colors
// for hop-level identity; colors are still carried for observability).
package msgpass

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"ssmfp/internal/graph"
	"ssmfp/internal/obs"
)

// Message is the unit the port forwards. UID/Valid mirror the simulator's
// bookkeeping so the same exactly-once oracles apply.
type Message struct {
	Payload string
	Color   int
	UID     uint64
	Src     graph.ProcessID
	Dest    graph.ProcessID
	Valid   bool
}

// Delivery records a consumption at a destination.
type Delivery struct {
	Msg *Message
	At  graph.ProcessID
}

// frame is what travels on a link. Exactly one of the payload fields is
// set per frame.
type frame struct {
	from      graph.ProcessID
	dv        []int // distance vector (dist per destination)
	offer     *offer
	accept    *accept
	cancel    *cancel
	cancelAck *cancel
}

// offer proposes the transfer of the sender's bufE occupancy; seq
// identifies the occupancy (monotone per sender) and is offered to exactly
// one neighbor at a time — retargeting requires a cancel round trip.
type offer struct {
	dest graph.ProcessID
	seq  uint64
	msg  Message
}

// accept acknowledges that the receiver stored (or had stored) the offer.
type accept struct {
	dest graph.ProcessID
	seq  uint64
}

// cancel withdraws an outstanding offer after a routing change; the
// receiver either kills the sequence (cancelAck) or reports it already
// accepted (accept), so every sequence resolves to exactly one owner.
type cancel struct {
	dest graph.ProcessID
	seq  uint64
}

// Options tunes the port.
type Options struct {
	// Tick is the node timer period (distance-vector gossip and offer
	// retransmission). Default 200µs.
	Tick time.Duration
	// ChannelDepth is the per-link buffer; overflowing frames are dropped
	// (retransmission recovers them). Default 64.
	ChannelDepth int
	// LossRate drops each frame with this probability (0..1).
	LossRate float64
	// DupRate delivers each frame twice with this probability (0..1) —
	// real links also duplicate; the handshake's idempotent acknowledgement
	// must absorb it.
	DupRate float64
	// Seed drives loss and corruption randomness.
	Seed int64
	// CorruptInit randomizes initial routing state and plants invalid
	// messages in buffers when true.
	CorruptInit bool
	// Bus, when non-nil, receives typed lifecycle events from the nodes
	// (generate, internal move, hop transfer, erase, deliver). The port
	// runs on wall-clock time, not engine steps, so events carry Step and
	// Round -1; they are meant for live monitoring, not frame replay. With
	// no bus (or no subscriber) the nodes pay one atomic load per event
	// site.
	Bus *obs.Bus
}

func (o Options) withDefaults() Options {
	if o.Tick <= 0 {
		o.Tick = 200 * time.Microsecond
	}
	if o.ChannelDepth <= 0 {
		o.ChannelDepth = 64
	}
	return o
}

// Network is a running message-passing deployment of the protocol.
type Network struct {
	g    *graph.Graph
	opts Options

	nodes []*node
	links map[[2]graph.ProcessID]chan frame

	mu         sync.Mutex
	deliveries []Delivery
	nextUID    uint64
	stats      Stats

	stop chan struct{}
	wg   sync.WaitGroup
}

// Stats counts wire-level activity: how many frames of each kind were
// sent and how many were lost (by the loss injector or by congestion).
// Offers exceeding deliveries indicate retransmissions at work.
type Stats struct {
	DVSent         int
	OffersSent     int
	AcceptsSent    int
	CancelsSent    int
	CancelAcksSent int
	LostInjected   int
	LostCongestion int
}

// New builds (but does not start) a deployment on g.
func New(g *graph.Graph, opts Options) *Network {
	opts = opts.withDefaults()
	nw := &Network{
		g:     g,
		opts:  opts,
		links: make(map[[2]graph.ProcessID]chan frame),
		stop:  make(chan struct{}),
	}
	for _, e := range g.Edges() {
		nw.links[[2]graph.ProcessID{e[0], e[1]}] = make(chan frame, opts.ChannelDepth)
		nw.links[[2]graph.ProcessID{e[1], e[0]}] = make(chan frame, opts.ChannelDepth)
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	nw.nodes = make([]*node, g.N())
	for p := 0; p < g.N(); p++ {
		nw.nodes[p] = newNode(nw, graph.ProcessID(p), rng)
	}
	return nw
}

// Start launches one goroutine per processor.
func (nw *Network) Start() {
	for _, n := range nw.nodes {
		nw.wg.Add(1)
		go n.run()
	}
}

// Stop terminates all node goroutines and waits for them.
func (nw *Network) Stop() {
	close(nw.stop)
	nw.wg.Wait()
}

// Send injects a higher-layer send request at src and returns the UID the
// oracles can track.
func (nw *Network) Send(src graph.ProcessID, payload string, dst graph.ProcessID) uint64 {
	nw.mu.Lock()
	nw.nextUID++
	uid := nw.nextUID
	nw.mu.Unlock()
	m := Message{Payload: payload, UID: uid, Src: src, Dest: dst, Valid: true}
	n := nw.nodes[src]
	n.mu.Lock()
	n.pending = append(n.pending, m)
	n.mu.Unlock()
	return uid
}

// Deliveries returns a snapshot of all deliveries so far.
func (nw *Network) Deliveries() []Delivery {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	return append([]Delivery(nil), nw.deliveries...)
}

// WaitDelivered blocks until at least k deliveries happened or the timeout
// elapsed; it reports whether the threshold was reached.
func (nw *Network) WaitDelivered(k int, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		nw.mu.Lock()
		got := len(nw.deliveries)
		nw.mu.Unlock()
		if got >= k {
			return true
		}
		time.Sleep(nw.opts.Tick)
	}
	return false
}

func (nw *Network) deliver(d Delivery) {
	nw.mu.Lock()
	nw.deliveries = append(nw.deliveries, d)
	nw.mu.Unlock()
}

// Stats returns a snapshot of the wire-level counters.
func (nw *Network) Stats() Stats {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	return nw.stats
}

// QueueDepth is a point-in-time occupancy snapshot of one node: frames
// fanned in but not yet handled, higher-layer sends not yet accepted by
// R1, and occupied buffers. Inbox and Pending are exact; the buffer gauges
// are refreshed by the node on every tick, so they lag by at most one tick
// period.
type QueueDepth struct {
	Proc    graph.ProcessID `json:"proc"`
	Inbox   int             `json:"inbox"`
	Pending int             `json:"pending"`
	BufR    int             `json:"bufR"`
	BufE    int             `json:"bufE"`
}

// QueueDepths snapshots every node's queue occupancy. Safe to call from
// any goroutine while the network runs.
func (nw *Network) QueueDepths() []QueueDepth {
	out := make([]QueueDepth, len(nw.nodes))
	for i, n := range nw.nodes {
		n.mu.Lock()
		pending := len(n.pending)
		n.mu.Unlock()
		out[i] = QueueDepth{
			Proc:    n.id,
			Inbox:   len(n.inbox),
			Pending: pending,
			BufR:    int(n.gaugeBufR.Load()),
			BufE:    int(n.gaugeBufE.Load()),
		}
	}
	return out
}

// observe publishes a wall-clock-domain event when a bus with subscribers
// is attached; Step and Round are forced to -1 (there is no engine clock
// in this model).
func (nw *Network) observe(ev obs.Event) {
	if b := nw.opts.Bus; b.Active() {
		ev.Step, ev.Round = -1, -1
		b.Publish(ev)
	}
}

// record converts a port message into its observability image; lastHop is
// the hop identity the state model would have stored alongside it.
func record(m *Message, lastHop graph.ProcessID) *obs.MsgRecord {
	if m == nil {
		return nil
	}
	return &obs.MsgRecord{Payload: m.Payload, LastHop: lastHop, Color: m.Color, UID: m.UID, Valid: m.Valid}
}

// send pushes a frame onto the directed link, dropping it when the link is
// full or the loss injector fires — retransmission recovers both cases.
func (nw *Network) send(from, to graph.ProcessID, f frame, rng *rand.Rand) {
	nw.mu.Lock()
	switch {
	case f.dv != nil:
		nw.stats.DVSent++
	case f.offer != nil:
		nw.stats.OffersSent++
	case f.accept != nil:
		nw.stats.AcceptsSent++
	case f.cancel != nil:
		nw.stats.CancelsSent++
	case f.cancelAck != nil:
		nw.stats.CancelAcksSent++
	}
	nw.mu.Unlock()
	if nw.opts.LossRate > 0 && rng.Float64() < nw.opts.LossRate {
		nw.mu.Lock()
		nw.stats.LostInjected++
		nw.mu.Unlock()
		return
	}
	ch, ok := nw.links[[2]graph.ProcessID{from, to}]
	if !ok {
		panic(fmt.Sprintf("msgpass: no link %d→%d", from, to))
	}
	copies := 1
	if nw.opts.DupRate > 0 && rng.Float64() < nw.opts.DupRate {
		copies = 2
	}
	for i := 0; i < copies; i++ {
		select {
		case ch <- f:
		default:
			nw.mu.Lock()
			nw.stats.LostCongestion++
			nw.mu.Unlock()
		}
	}
}
