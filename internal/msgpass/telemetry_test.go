package msgpass

import (
	"strconv"
	"sync"
	"testing"
	"time"

	"ssmfp/internal/graph"
	"ssmfp/internal/telemetry"
	"ssmfp/internal/transport"
)

// TestTelemetryEndToEnd runs a live 4-ring under a shared registry and
// checks the protocol series a scrape would see: sends and deliveries
// count exactly, frame counters agree with Stats(), buffer gauges carry
// event-driven peaks, and every attribution component histogram saw the
// traffic.
func TestTelemetryEndToEnd(t *testing.T) {
	reg := telemetry.New()
	g := graph.Ring(4)
	nw := New(g, Options{Seed: 7, Tick: 100 * time.Microsecond, Telemetry: reg})
	nw.Start()
	defer nw.Stop()

	const msgs = 20
	for i := 0; i < msgs; i++ {
		src := graph.ProcessID(i % 4)
		dst := graph.ProcessID((i + 2) % 4)
		if _, err := nw.Send(src, "m"+strconv.Itoa(i), dst); err != nil {
			t.Fatal(err)
		}
	}
	if !nw.WaitDelivered(msgs, 10*time.Second) {
		t.Fatalf("only %d/%d delivered", nw.Delivered(), msgs)
	}

	if v, _ := reg.Value(telemetry.SeriesSends); v != msgs {
		t.Fatalf("sends series = %d, want %d", v, msgs)
	}
	if v, _ := reg.Value(telemetry.SeriesDeliveries); int(v) != nw.Delivered() {
		t.Fatalf("deliveries series = %d, Delivered() = %d", v, nw.Delivered())
	}
	if v := reg.SumValues(telemetry.SeriesInvalidDeliveries); v != 0 {
		t.Fatalf("invalid deliveries on a clean run: %d", v)
	}
	if v := reg.SumValues(telemetry.SeriesPhantomDeliveries); v != 0 {
		t.Fatalf("phantom deliveries on a clean run: %d", v)
	}

	// Frame counters: the registry and Stats() read the same atomics.
	st := nw.Stats()
	checks := []struct {
		kind string
		want int
	}{{"dv", st.DVSent}, {"offer", st.OffersSent}, {"accept", st.AcceptsSent}}
	for _, c := range checks {
		v, ok := reg.Value(telemetry.SeriesFramesSent, telemetry.L("kind", c.kind))
		if !ok || int(v) != c.want {
			t.Fatalf("frames{kind=%q} = %d (ok=%v), Stats says %d", c.kind, v, ok, c.want)
		}
	}
	if st.OffersSent == 0 || st.DVSent == 0 {
		t.Fatal("no offers or no DV gossip on a delivering network")
	}

	// Every message occupied some bufR and bufE along the way: the
	// event-driven peaks must have registered even though the network is
	// idle again by now.
	if p := reg.MaxPeak(telemetry.SeriesBufOccupancy); p < 1 {
		t.Fatalf("bufR/bufE peak = %d after %d deliveries", p, msgs)
	}
	if p := reg.MaxPeak(telemetry.SeriesPending); p < 1 {
		t.Fatalf("pending peak = %d after %d sends", p, msgs)
	}

	// Attribution: every delivery crossed R1 (queued) and R6 (deliver).
	for _, comp := range []string{"queued", "deliver"} {
		h, ok := reg.HistSnapshot(telemetry.SeriesLatencyComponent, telemetry.L("component", comp))
		if !ok || h.Count() == 0 {
			t.Fatalf("latency component %q empty (ok=%v)", comp, ok)
		}
	}

	// Wire series mirror the transport counters.
	if v, _ := reg.Value(telemetry.SeriesWireFramesSent); uint64(v) != nw.Stats().Wire.FramesSent {
		t.Fatalf("wire frames series %d != transport %d", v, nw.Stats().Wire.FramesSent)
	}
	if v, _ := reg.Value(telemetry.SeriesWireBytesSent); v == 0 {
		t.Fatal("wire bytes series zero — chan backend not counting encoded bytes")
	}
	// Per-link series exist for every directed local link.
	if v := reg.SumValues(telemetry.SeriesLinkFramesSent); uint64(v) != nw.Stats().Wire.FramesSent {
		t.Fatalf("per-link frames sum %d != transport total %d", v, nw.Stats().Wire.FramesSent)
	}
}

// TestHoldStampAtR1 pins the HoldStamp contract: the hook fires at R1
// acceptance with the enqueue wait, and its rewritten payload is what the
// protocol forwards and finally delivers.
func TestHoldStampAtR1(t *testing.T) {
	var mu sync.Mutex
	var waits []int64
	nw := New(graph.Line(2), Options{
		Seed: 1,
		Tick: 100 * time.Microsecond,
		HoldStamp: func(payload string, waitNanos int64) (string, bool) {
			mu.Lock()
			waits = append(waits, waitNanos)
			mu.Unlock()
			return payload + "+stamped", true
		},
	})
	nw.Start()
	defer nw.Stop()
	if _, err := nw.Send(0, "p", 1); err != nil {
		t.Fatal(err)
	}
	if !nw.WaitDelivered(1, 5*time.Second) {
		t.Fatal("not delivered")
	}
	ds := nw.Deliveries()
	if len(ds) != 1 || ds[0].Msg.Payload != "p+stamped" {
		t.Fatalf("delivered payload %q, want the HoldStamp rewrite", ds[0].Msg.Payload)
	}
	if ds[0].DeliverWaitNS < 0 {
		t.Fatalf("DeliverWaitNS = %d", ds[0].DeliverWaitNS)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(waits) != 1 || waits[0] < 0 {
		t.Fatalf("HoldStamp calls %v, want exactly one non-negative wait", waits)
	}
}

// TestParkTelemetry drives the deterministic congested-hop scenario from
// park_test.go and checks its telemetry shadow: a park event, a park-wait
// observation on acceptance, an eviction counter on cancel, and the
// parked gauge returning to zero.
func TestParkTelemetry(t *testing.T) {
	reg := telemetry.New()
	nw := New(graph.Line(3), Options{Seed: 1, DiscardDeliveries: true, Telemetry: reg})
	defer nw.tr.Close()
	n := nw.nodes[1]

	n.handleOffer(0, offer(1, "first"))
	n.handleOffer(0, offer(2, "second")) // bufR occupied: parks
	if v, _ := reg.Value(telemetry.SeriesParkEvents); v != 1 {
		t.Fatalf("park events = %d, want 1", v)
	}
	if v := reg.SumValues(telemetry.SeriesParked); v != 1 {
		t.Fatalf("parked gauge sum = %d, want 1", v)
	}
	n.handleOffer(0, offer(2, "second")) // retransmit refresh: no new event
	if v, _ := reg.Value(telemetry.SeriesParkEvents); v != 1 {
		t.Fatalf("park events after refresh = %d, want 1", v)
	}
	n.localMoves() // frees bufR, accepts the parked offer
	if v := reg.SumValues(telemetry.SeriesParked); v != 0 {
		t.Fatalf("parked gauge after unpark = %d, want 0", v)
	}
	h, ok := reg.HistSnapshot(telemetry.SeriesLatencyComponent, telemetry.L("component", "park"))
	if !ok || h.Count() != 1 {
		t.Fatalf("park component count = %d (ok=%v), want 1", h.Count(), ok)
	}

	// A third offer parks; a cancel evicts it.
	n.handleOffer(0, offer(3, "third"))
	n.handleOffer(0, offer(4, "fourth"))
	n.handleCancel(0, transport.Ack{Dest: 2, Seq: 4})
	if v, _ := reg.Value(telemetry.SeriesParkEvictions); v != 1 {
		t.Fatalf("park evictions = %d, want 1", v)
	}
	if v := reg.SumValues(telemetry.SeriesParked); v != 0 {
		t.Fatalf("parked gauge after eviction = %d, want 0", v)
	}
}

// TestWatermarkViolationTelemetry: an ack for a sequence this node never
// issued is counted as a stabilization-health signal (and otherwise
// ignored, as before).
func TestWatermarkViolationTelemetry(t *testing.T) {
	reg := telemetry.New()
	nw := New(graph.Line(2), Options{Seed: 1, Telemetry: reg})
	defer nw.tr.Close()
	n := nw.nodes[0]
	n.handleAccept(1, transport.Ack{Dest: 1, Seq: 999})
	n.handleCancelAck(1, transport.Ack{Dest: 1, Seq: 999})
	if v, _ := reg.Value(telemetry.SeriesWatermarkViolations); v != 2 {
		t.Fatalf("watermark violations = %d, want 2", v)
	}
}

// TestQueueDepthsParkedAndPendingByDest: the cold-path occupancy snapshot
// carries the new parked count and the per-destination pending breakdown.
func TestQueueDepthsParkedAndPendingByDest(t *testing.T) {
	// Huge tick: nothing moves until localMoves is driven by hand, so the
	// pending rings stay populated for the snapshot.
	nw := New(graph.Line(3), Options{Seed: 1, Tick: time.Hour})
	defer nw.tr.Close()
	for i := 0; i < 3; i++ {
		if _, err := nw.Send(0, "a", 1); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := nw.Send(0, "b", 2); err != nil {
		t.Fatal(err)
	}
	n1 := nw.nodes[1]
	n1.handleOffer(0, offer(1, "x"))
	n1.handleOffer(0, offer(2, "y")) // parks

	var q0, q1 *QueueDepth
	for i, q := range nw.QueueDepths() {
		switch q.Proc {
		case 0:
			q0 = &nw.QueueDepths()[i]
		case 1:
			q1 = &nw.QueueDepths()[i]
		}
	}
	if q0 == nil || q1 == nil {
		t.Fatal("missing queue depth rows")
	}
	if q0.Pending != 4 || q0.PendingByDest[1] != 3 || q0.PendingByDest[2] != 1 {
		t.Fatalf("node 0 pending breakdown wrong: %+v", q0)
	}
	if q1.Parked != 1 || q1.BufR != 1 {
		t.Fatalf("node 1 parked/bufR wrong: %+v", q1)
	}
	if q0.PendingByDest == nil || q1.PendingByDest != nil {
		t.Fatalf("PendingByDest presence wrong: q0=%v q1=%v", q0.PendingByDest, q1.PendingByDest)
	}
}
