package msgpass

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"ssmfp/internal/graph"
	"ssmfp/internal/transport"
)

// This file is the elastic half of the port: a running Network can move
// between topology epochs — nodes join, nodes leave, links appear and
// disappear — without restarting and without touching the hot paths.
//
// The protocol side needs no new mechanism: snap-stabilization is exactly
// the property that the protocol behaves to spec from an arbitrary
// configuration, so "the topology changed under a running network" is just
// another arbitrary configuration to stabilize from. What this file adds
// is the engineering around that fact: a stop-the-world barrier that
// applies the new epoch atomically per process (every node goroutine
// parks, the per-node state is re-shaped for the new graph, the wire gains
// and loses links, the goroutines resume), plus drain semantics that let a
// node leave without losing a message.
//
// Message safety across an epoch:
//
//   - Buffer contents (bufR/bufE) and pending higher-layer sends are never
//     touched: whatever a node held before the epoch it still holds after.
//   - Routing state is reset pessimistically (dist = n, the DV infinity)
//     and re-converges by gossip, exactly like recovery from corrupted
//     initial state.
//   - An outstanding offer whose target is no longer a neighbor restarts
//     its handshake (offerSeq = 0) and re-offers to the new parent. On a
//     forced cut this can duplicate a message (the old target may have
//     accepted moments before the cut took the accept down with it); the
//     operator plane's graceful two-phase cut — disable the edge for
//     routing in one epoch, remove it only after the edge quiesces —
//     avoids the race entirely, which experiment E-X7's churn scenario
//     verifies end to end.
//   - A parked offer whose sender is no longer a neighbor is evicted: the
//     sender still owns the message (no accept was sent) and re-offers on
//     its own side of the cut.
//   - Acceptance watermarks for a newly added neighbor are cleared: a
//     re-admitted slot is a new incarnation whose sequence numbers restart.
type Epoch struct {
	// Seq is the epoch number; a Network applies strictly increasing
	// sequences and rejects the rest with ErrStaleEpoch.
	Seq uint64
	// Graph is the new topology, frozen (FreezeIsolated for graphs with
	// detached slots). Slots are grow-only: Graph.N() must not shrink —
	// a node that left keeps its slot, isolated, ready for re-admission.
	Graph *graph.Graph
	// Draining lists processors that are leaving: they refuse new Send
	// injections (ErrDraining), advertise infinite distance for every
	// destination but themselves (in-flight deliveries to them complete),
	// and hand their buffered messages off to live neighbors. Neighbors
	// additionally stop routing through them the instant the epoch lands,
	// without waiting for the gossip.
	Draining []graph.ProcessID
	// Disabled lists edges that remain on the wire but must not carry new
	// routes — phase one of the graceful two-phase link cut. Outstanding
	// handshakes on a disabled edge complete normally; once the edge
	// quiesces, the next epoch removes it from Graph for real.
	Disabled [][2]graph.ProcessID
}

// ErrDraining is returned by Send when the source processor is draining:
// it is handing off its buffered messages and accepts no new work.
var ErrDraining = errors.New("msgpass: processor is draining")

// ErrStaleEpoch is returned by ApplyEpoch for an epoch sequence at or
// below the one already applied — the operator's push arrived late or
// twice; the network's state is already at least as new.
var ErrStaleEpoch = errors.New("msgpass: stale epoch")

// ErrNotLocal is returned by Send when the source processor is not a
// running member of this Network instance (never was, or left the
// cluster in an earlier epoch).
var ErrNotLocal = errors.New("msgpass: source processor not local to this deployment")

// ErrNotMember is returned by Send when the destination is outside the
// current topology or is a detached slot — the message could never be
// delivered, however long routing stabilizes.
var ErrNotMember = errors.New("msgpass: destination is not a cluster member")

// netView is the atomically-swapped read surface for goroutines outside
// the barrier (Send, QueueDepths, status snapshots). Node goroutines are
// parked across every swap, so they read the Network's fields directly;
// everyone else loads the view pointer — one atomic load, no locks, no
// allocations on the send hot path.
type netView struct {
	epoch      uint64
	g          *graph.Graph
	nodes      []*node
	local      []graph.ProcessID
	draining   []bool
	namespaced bool
}

// pauseReq is one stop-the-world request: every running node goroutine
// receives it, signals arrival, and parks until release closes.
type pauseReq struct {
	arrived sync.WaitGroup
	release chan struct{}
}

// fanGen is one generation of fan-in goroutines (the per-incoming-link
// pumps feeding node inboxes). An epoch transition retires the whole
// generation — gate closes, pumps exit, wg drains — mutates the link set,
// and starts a fresh generation over the new links.
type fanGen struct {
	gate chan struct{}
	wg   sync.WaitGroup
}

func newFanGen() *fanGen { return &fanGen{gate: make(chan struct{})} }

// CurrentEpoch returns the sequence number of the last applied epoch
// (zero for a network still on its construction topology).
func (nw *Network) CurrentEpoch() uint64 { return nw.view.Load().epoch }

// Graph returns the current topology. The pointer is immutable; a later
// epoch replaces it rather than mutating it.
func (nw *Network) Graph() *graph.Graph { return nw.view.Load().g }

// Members returns the processors that are cluster members under the
// current topology: every slot with at least one incident link (plus the
// degenerate single-processor deployment).
func (nw *Network) Members() []graph.ProcessID {
	return membersOf(nw.view.Load().g)
}

func membersOf(g *graph.Graph) []graph.ProcessID {
	if g.N() == 1 {
		return []graph.ProcessID{0}
	}
	ms := make([]graph.ProcessID, 0, g.N())
	for p := 0; p < g.N(); p++ {
		if g.Degree(graph.ProcessID(p)) > 0 {
			ms = append(ms, graph.ProcessID(p))
		}
	}
	return ms
}

// Draining reports whether p is currently draining.
func (nw *Network) Draining(p graph.ProcessID) bool {
	v := nw.view.Load()
	return int(p) < len(v.draining) && v.draining[p]
}

// Quiesced reports whether local processor p holds no work: no pending
// higher-layer sends, no occupied buffers, no parked offers, and an empty
// inbox. It reads only atomic gauges and a channel length, so it is safe
// from any goroutine at any time. A processor that is not local (or has
// detached) is vacuously quiesced. Note that quiescence of p alone does
// not mean nothing is in flight toward p — use InFlightFor for the
// cluster-side half of the drain check.
func (nw *Network) Quiesced(p graph.ProcessID) bool {
	v := nw.view.Load()
	if int(p) >= len(v.nodes) || v.nodes[p] == nil {
		return true
	}
	n := v.nodes[p]
	return n.pendingTotal.Load() == 0 &&
		n.tg.bufR.Load() == 0 &&
		n.tg.bufE.Load() == 0 &&
		n.tg.parked.Load() == 0 &&
		len(n.inbox) == 0
}

// InFlightFor counts, across this instance's local processors, everything
// still addressed to destination d: pending sends, occupied buffers, and
// parked offers. It runs under the pause barrier (the node goroutines
// park for the inspection), so the count is a consistent snapshot — the
// drain orchestrator polls it to zero before detaching d.
func (nw *Network) InFlightFor(d graph.ProcessID) int {
	total := 0
	nw.inspect(func() {
		for _, p := range nw.running {
			n := nw.nodes[p]
			if n == nil || int(d) >= len(n.dests) {
				continue
			}
			ds := &n.dests[d]
			if ds.hasR {
				total++
			}
			if ds.hasE {
				total++
			}
			if ds.hasParked {
				total++
			}
			n.mu.Lock()
			if int(d) < len(n.pendingByDest) {
				pq := &n.pendingByDest[d]
				total += len(pq.q) - pq.head
			}
			n.mu.Unlock()
		}
	})
	return total
}

// inspect parks every running node goroutine, runs fn (which may read
// node-goroutine-owned state), and releases. Fan-in pumps keep running —
// they only touch inbox channels.
func (nw *Network) inspect(fn func()) {
	nw.epochMu.Lock()
	defer nw.epochMu.Unlock()
	if nw.stopped.Load() {
		fn() // goroutines are gone; direct reads are already safe
		return
	}
	req := nw.pauseAll()
	fn()
	if req != nil {
		close(req.release)
	}
}

// pauseAll sends one pause request to every running node goroutine and
// waits until all have parked. Caller holds epochMu and must close the
// returned release channel. Returns nil when nothing is running (network
// not started, all nodes detached, or the network stopped mid-pause —
// nodes park-or-exit on stop, so arrival still completes).
func (nw *Network) pauseAll() *pauseReq {
	if !nw.started || len(nw.running) == 0 {
		return nil
	}
	req := &pauseReq{release: make(chan struct{})}
	req.arrived.Add(len(nw.running))
	for range nw.running {
		select {
		case nw.pause <- req:
		case <-nw.stop:
			// Some nodes may have parked already; release them and give up.
			// The remaining arrivals never happen, so adjust them away.
			req.arrived.Add(-1)
		}
	}
	req.arrived.Wait()
	return req
}

// ApplyEpoch moves the network to epoch e: the wire gains the new links,
// every node goroutine parks at the barrier, per-node state is re-shaped
// for the new graph (buffers and pending work preserved, routing reset
// pessimistically, handshakes retargeted, drain flags set), newly local
// processors start, detached ones exit, and the world resumes. Epochs are
// serialized; concurrent Send/Deliveries/QueueDepths callers keep working
// against the previous view until the atomic swap.
//
// Whole-graph instances (Options.Procs nil) adopt every member of the new
// graph as local; node-scoped instances stay pinned to their configured
// processor set and simply follow its membership.
func (nw *Network) ApplyEpoch(e Epoch) error {
	if e.Graph == nil || !e.Graph.Frozen() {
		return errors.New("msgpass: ApplyEpoch needs a frozen graph")
	}
	nw.epochMu.Lock()
	defer nw.epochMu.Unlock()
	if nw.stopped.Load() {
		return ErrStopped
	}
	v := nw.view.Load()
	if e.Seq <= v.epoch {
		return fmt.Errorf("%w: have %d, got %d", ErrStaleEpoch, v.epoch, e.Seq)
	}
	oldG, newG := nw.g, e.Graph
	if newG.N() < oldG.N() {
		return fmt.Errorf("msgpass: epoch %d shrinks the slot space %d -> %d (slots are grow-only)", e.Seq, oldG.N(), newG.N())
	}
	draining := make([]bool, newG.N())
	for _, p := range e.Draining {
		if int(p) >= newG.N() {
			return fmt.Errorf("msgpass: epoch %d drains unknown processor %d", e.Seq, p)
		}
		draining[p] = true
	}
	disabled := make(map[[2]graph.ProcessID]bool, len(e.Disabled))
	for _, ed := range e.Disabled {
		disabled[edgeKeyOf(ed[0], ed[1])] = true
	}
	added, removed := edgeDiff(oldG, newG)
	var el transport.Elastic
	if len(added)+len(removed) > 0 {
		var ok bool
		if el, ok = nw.tr.(transport.Elastic); !ok {
			return fmt.Errorf("msgpass: epoch %d changes edges but transport %T is not elastic", e.Seq, nw.tr)
		}
	}
	// Grow the wire first: additive and idempotent, and it can fail (a TCP
	// transport without the new peer's address), in which case nothing has
	// been disturbed yet.
	for _, ed := range added {
		if err := el.EnsureLink(ed[0], ed[1]); err != nil {
			return fmt.Errorf("msgpass: epoch %d: %w", e.Seq, err)
		}
		if err := el.EnsureLink(ed[1], ed[0]); err != nil {
			return fmt.Errorf("msgpass: epoch %d: %w", e.Seq, err)
		}
	}

	// Retire the fan-in generation, then park every node goroutine.
	var req *pauseReq
	if nw.started {
		close(nw.fan.gate)
		nw.fan.wg.Wait()
		req = nw.pauseAll()
	}

	// --- stop-the-world section ---
	member := make([]bool, newG.N())
	for _, p := range membersOf(newG) {
		member[p] = true
	}
	nodes := make([]*node, newG.N())
	copy(nodes, nw.nodes)

	want := nw.procsWant
	if want == nil {
		want = newG.Processors()
	}
	running := make([]graph.ProcessID, 0, len(want))
	var fresh []*node
	for _, p := range want {
		if !member[p] {
			if n := nodes[p]; n != nil {
				// Detach: the goroutine exits on release. Buffers of a
				// gracefully drained node are empty by now; a forced
				// removal abandons whatever is left (the operator asked
				// for it).
				n.detached = true
				if n.draining {
					nw.tel.drainsCompleted.Inc()
				}
				nodes[p] = nil
			}
			continue
		}
		n := nodes[p]
		if n == nil {
			// Joining (or re-admitted) processor: a fresh node with a
			// deterministic private stream derived from (Seed, id).
			n = newNode(nw, p, rand.New(rand.NewSource(nw.opts.Seed^(int64(p)+1)*0x9E3779B9)), newG)
			nodes[p] = n
			fresh = append(fresh, n)
		} else {
			n.applyEpoch(newG, draining, disabled)
		}
		wasDraining := n.draining
		n.draining = draining[p]
		if n.draining && !wasDraining {
			nw.tel.drainsStarted.Inc()
		}
		running = append(running, p)
	}

	nw.g = newG
	nw.nodes = nodes
	nw.running = running
	nw.local = running
	nw.view.Store(&netView{
		epoch:      e.Seq,
		g:          newG,
		nodes:      nodes,
		local:      running,
		draining:   draining,
		namespaced: len(running) != newG.N(),
	})
	nw.tel.epoch.Set(int64(e.Seq))
	nw.tel.members.Set(int64(len(membersOf(newG))))
	// --- end stop-the-world section ---

	if req != nil {
		close(req.release)
	}
	if nw.started {
		for _, n := range fresh {
			nw.wg.Add(1)
			go n.run()
		}
		nw.fan = newFanGen()
		nw.startFanIns(nw.fan)
		for _, n := range fresh {
			nw.registerNodeWire(n)
		}
		for _, p := range running {
			if nodes[p] != nil && len(added) > 0 {
				nw.registerNodeWire(nodes[p])
			}
		}
	}
	// Tear removed links down last: every fan-in of the new generation
	// references only current links, so the dead ones are unobserved here
	// (other processes sharing the transport drop their frames until their
	// own epoch lands — congestion losses, recovered by retransmission).
	for _, ed := range removed {
		el.DropLink(ed[0], ed[1])
		el.DropLink(ed[1], ed[0])
	}
	return nil
}

// edgeKeyOf canonicalizes an undirected edge.
func edgeKeyOf(u, v graph.ProcessID) [2]graph.ProcessID {
	if u > v {
		u, v = v, u
	}
	return [2]graph.ProcessID{u, v}
}

// edgeDiff returns newG's edges missing from oldG and vice versa.
func edgeDiff(oldG, newG *graph.Graph) (added, removed [][2]graph.ProcessID) {
	oldE := make(map[[2]graph.ProcessID]bool, oldG.M())
	for _, e := range oldG.Edges() {
		oldE[e] = true
	}
	newE := make(map[[2]graph.ProcessID]bool, newG.M())
	for _, e := range newG.Edges() {
		newE[e] = true
		if !oldE[e] {
			added = append(added, e)
		}
	}
	for _, e := range oldG.Edges() {
		if !newE[e] {
			removed = append(removed, e)
		}
	}
	return added, removed
}

// applyEpoch re-shapes one surviving node for the new graph. The node's
// goroutine is parked at the barrier; only buffer contents and pending
// sends survive untouched — routing restarts pessimistically and
// handshakes whose counterpart is gone restart too.
func (n *node) applyEpoch(newG *graph.Graph, draining []bool, disabled map[[2]graph.ProcessID]bool) {
	oldNbr := make(map[graph.ProcessID]bool, len(n.nbrs))
	for _, q := range n.nbrs {
		oldNbr[q] = true
	}
	n.nbrs = newG.Neighbors(n.id)
	newN := newG.N()

	// Routing: pessimistic restart, exactly like recovery from corrupted
	// initial state — the DV heartbeat re-converges in O(D) rounds.
	n.dist = make([]int, newN)
	n.parent = make([]graph.ProcessID, newN)
	n.nbrDV = make([][]int, len(n.nbrs))
	n.nbrDisabled = make([]bool, len(n.nbrs))
	n.nbrDraining = make([]bool, len(n.nbrs))
	for i, q := range n.nbrs {
		n.nbrDisabled[i] = disabled[edgeKeyOf(n.id, q)]
		n.nbrDraining[i] = draining[q]
	}
	for d := 0; d < newN; d++ {
		n.dist[d] = newN
		if len(n.nbrs) > 0 {
			n.parent[d] = n.nbrs[0]
		} else {
			n.parent[d] = n.id
		}
	}
	n.dist[n.id] = 0
	n.parent[n.id] = n.id
	n.dvDirty = true

	// Grow the per-destination state. Slots never shrink, so surviving
	// indices keep their buffers and watermarks.
	if newN > len(n.dests) {
		dests := make([]destState, newN)
		copy(dests, n.dests)
		for d := len(n.dests); d < newN; d++ {
			dests[d].accepted = make(map[graph.ProcessID]uint64)
			dests[d].killed = make(map[graph.ProcessID]uint64)
		}
		n.dests = dests
		n.mu.Lock()
		pbd := make([]pendQueue, newN)
		copy(pbd, n.pendingByDest)
		n.pendingByDest = pbd
		n.mu.Unlock()
	}

	for d := range n.dests {
		ds := &n.dests[d]
		// An outstanding offer to a vanished neighbor restarts; see the
		// file comment for the forced-cut duplication caveat.
		if ds.offerSeq != 0 && !newG.HasEdge(n.id, ds.offerTarget) {
			ds.offerSeq = 0
		}
		// A parked offer from a vanished neighbor is evicted — the sender
		// still owns the message.
		if ds.hasParked && !newG.HasEdge(n.id, ds.parkedFrom) {
			ds.parked = transport.Offer{}
			ds.hasParked = false
			n.tg.parked.Add(-1)
			n.nw.tel.parkEvictions.Inc()
		}
		// A newly added neighbor is a new incarnation: its sequence
		// numbers restart, so stale watermarks must not refuse them.
		for _, q := range n.nbrs {
			if !oldNbr[q] {
				delete(ds.accepted, q)
				delete(ds.killed, q)
			}
		}
	}

	// Rebuild the outgoing link cache against the (already ensured) wire.
	out := make(map[graph.ProcessID]transport.Link, len(n.nbrs))
	for _, q := range n.nbrs {
		out[q] = n.nw.tr.Link(n.id, q)
	}
	n.outp.Store(&out)
}
