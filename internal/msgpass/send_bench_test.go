package msgpass

import (
	"sync/atomic"
	"testing"

	"ssmfp/internal/graph"
	"ssmfp/internal/transport"
)

// BenchmarkSendHotPathParallel hammers the wire hot path (frame-kind
// accounting + link handoff) from many goroutines at once — the pattern
// a running deployment produces, where every node goroutine crosses this
// path once or twice per frame. Before the kind counters became atomics
// this path took the network-wide mutex once or twice per frame; on this
// benchmark the lock's removal cut the contended cost from ~64 ns/op to
// ~29 ns/op (8 hardware threads; numbers in DESIGN.md §3).
func BenchmarkSendHotPathParallel(b *testing.B) {
	g := graph.Complete(8)
	nw := New(g, Options{Seed: 1})
	defer nw.tr.Close()
	n := nw.nodes[0]
	dv := make([]int, g.N())
	b.ReportAllocs()
	b.ResetTimer() // construction-time registry setup is not the hot path
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			n.send(1, transport.Frame{Kind: transport.KindDV, From: 0, DV: dv})
		}
	})
}

// BenchmarkDeliveryHotPath drives the full receiver-side delivery path —
// offer handling into bufR, the R2 internal move, the R6 delivery with
// its OnDeliver callback, and the accept going back on the wire — on an
// unstarted two-node network, the way the node goroutine runs it. With
// DiscardDeliveries set (the load generator's configuration) the path
// must be allocation-free in steady state: `make bench-allocs` gates on
// this benchmark reporting 0 allocs/op.
func BenchmarkDeliveryHotPath(b *testing.B) {
	g := graph.Line(2)
	var got atomic.Int64
	nw := New(g, Options{
		Seed:              1,
		DiscardDeliveries: true,
		OnDeliver:         func(d Delivery) { got.Add(1) },
	})
	defer nw.tr.Close()
	n := nw.nodes[1]
	msg := transport.Message{Payload: "bench-payload", UID: 7, Src: 0, Dest: 1, Valid: true}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.handleOffer(0, transport.Offer{Dest: 1, Seq: uint64(i + 1), Msg: msg})
		n.localMoves()
	}
	b.StopTimer()
	// The pipeline runs one iteration behind (R2 stages what the next
	// loop's R6 delivers); flush the last message before checking.
	n.localMoves()
	if got.Load() != int64(b.N) {
		b.Fatalf("%d deliveries for %d offers", got.Load(), b.N)
	}
}
