package msgpass

import (
	"testing"

	"ssmfp/internal/graph"
	"ssmfp/internal/transport"
)

// BenchmarkSendHotPathParallel hammers the wire hot path (frame-kind
// accounting + link handoff) from many goroutines at once — the pattern
// a running deployment produces, where every node goroutine crosses this
// path once or twice per frame. Before the kind counters became atomics
// this path took the network-wide mutex once or twice per frame; on this
// benchmark the lock's removal cut the contended cost from ~64 ns/op to
// ~29 ns/op (8 hardware threads; numbers in DESIGN.md §3).
func BenchmarkSendHotPathParallel(b *testing.B) {
	g := graph.Complete(8)
	nw := New(g, Options{Seed: 1})
	defer nw.tr.Close()
	n := nw.nodes[0]
	dv := make([]int, g.N())
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			n.send(1, transport.Frame{From: 0, DV: dv})
		}
	})
}
