package msgpass

import (
	"errors"
	"sync"
	"testing"
	"time"

	"ssmfp/internal/graph"
)

// uidLog collects delivered UIDs and flags duplicates — the exactly-once
// oracle for the elastic tests.
type uidLog struct {
	mu   sync.Mutex
	seen map[uint64]int
}

func newUIDLog() *uidLog { return &uidLog{seen: make(map[uint64]int)} }

func (l *uidLog) hook(d Delivery) {
	l.mu.Lock()
	l.seen[d.Msg.UID]++
	l.mu.Unlock()
}

func (l *uidLog) check(t *testing.T, sent map[uint64]bool) {
	t.Helper()
	l.mu.Lock()
	defer l.mu.Unlock()
	for uid := range sent {
		switch c := l.seen[uid]; {
		case c == 0:
			t.Errorf("uid %d lost (never delivered)", uid)
		case c > 1:
			t.Errorf("uid %d delivered %d times", uid, c)
		}
	}
}

func mustBuild(t *testing.T, topo *graph.Topology) *graph.Graph {
	t.Helper()
	g, err := topo.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return g
}

func TestEpochJoinNode(t *testing.T) {
	log := newUIDLog()
	nw := New(graph.Line(3), Options{Seed: 7, OnDeliver: log.hook})
	nw.Start()
	defer nw.Stop()

	sent := make(map[uint64]bool)
	uid, err := nw.Send(0, "pre-join", 2)
	if err != nil {
		t.Fatal(err)
	}
	sent[uid] = true
	if !nw.WaitDelivered(1, 5*time.Second) {
		t.Fatal("pre-join message not delivered")
	}

	// Slot 3 joins with links to both ends of the line.
	topo := graph.NewTopology(graph.Line(3))
	if p := topo.AddNode(); p != 3 {
		t.Fatalf("AddNode = %d", p)
	}
	for _, q := range []graph.ProcessID{0, 2} {
		if err := topo.AddEdge(3, q); err != nil {
			t.Fatal(err)
		}
	}
	if err := nw.ApplyEpoch(Epoch{Seq: 1, Graph: mustBuild(t, topo)}); err != nil {
		t.Fatalf("ApplyEpoch: %v", err)
	}
	if got := nw.CurrentEpoch(); got != 1 {
		t.Fatalf("CurrentEpoch = %d, want 1", got)
	}

	// Traffic to and from the joiner must flow once routing converges.
	for _, sd := range [][2]graph.ProcessID{{0, 3}, {3, 1}, {2, 3}, {3, 0}} {
		uid, err := nw.Send(sd[0], "post-join", sd[1])
		if err != nil {
			t.Fatalf("Send %d->%d: %v", sd[0], sd[1], err)
		}
		sent[uid] = true
	}
	if !nw.WaitDelivered(len(sent), 10*time.Second) {
		t.Fatalf("joiner traffic stalled: %d/%d delivered", nw.Delivered(), len(sent))
	}
	log.check(t, sent)

	// A stale or duplicate epoch push must be refused.
	if err := nw.ApplyEpoch(Epoch{Seq: 1, Graph: nw.Graph()}); !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("stale epoch err = %v, want ErrStaleEpoch", err)
	}
}

func TestEpochGracefulLinkCut(t *testing.T) {
	log := newUIDLog()
	nw := New(graph.Ring(4), Options{Seed: 11, OnDeliver: log.hook})
	nw.Start()
	defer nw.Stop()

	sent := make(map[uint64]bool)
	send := func(src, dst graph.ProcessID) {
		t.Helper()
		uid, err := nw.Send(src, "x", dst)
		if err != nil {
			t.Fatalf("Send %d->%d: %v", src, dst, err)
		}
		sent[uid] = true
	}
	for i := 0; i < 8; i++ {
		send(1, 2)
		send(2, 1)
	}

	// Phase one: disable the edge for routing; the wire stays up so the
	// outstanding handshakes complete.
	if err := nw.ApplyEpoch(Epoch{Seq: 1, Graph: graph.Ring(4), Disabled: [][2]graph.ProcessID{{1, 2}}}); err != nil {
		t.Fatalf("disable epoch: %v", err)
	}
	for i := 0; i < 8; i++ {
		send(1, 2) // must route the long way now
	}
	if !nw.WaitDelivered(len(sent), 10*time.Second) {
		t.Fatalf("traffic stalled under disabled edge: %d/%d", nw.Delivered(), len(sent))
	}

	// Phase two: the edge quiesced (everything delivered), remove it.
	topo := graph.NewTopology(graph.Ring(4))
	if err := topo.RemoveEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := nw.ApplyEpoch(Epoch{Seq: 2, Graph: mustBuild(t, topo)}); err != nil {
		t.Fatalf("cut epoch: %v", err)
	}
	for i := 0; i < 8; i++ {
		send(2, 1)
	}
	if !nw.WaitDelivered(len(sent), 10*time.Second) {
		t.Fatalf("traffic stalled after cut: %d/%d", nw.Delivered(), len(sent))
	}
	log.check(t, sent)
}

func TestEpochDrainAndDetach(t *testing.T) {
	log := newUIDLog()
	nw := New(graph.Ring(4), Options{Seed: 13, OnDeliver: log.hook})
	nw.Start()
	defer nw.Stop()

	sent := make(map[uint64]bool)
	for i := 0; i < 6; i++ {
		uid, err := nw.Send(0, "to-drainer", 3)
		if err != nil {
			t.Fatal(err)
		}
		sent[uid] = true
		uid, err = nw.Send(3, "from-drainer", 1)
		if err != nil {
			t.Fatal(err)
		}
		sent[uid] = true
	}

	// Drain 3: no new injections there, in-flight work completes.
	if err := nw.ApplyEpoch(Epoch{Seq: 1, Graph: graph.Ring(4), Draining: []graph.ProcessID{3}}); err != nil {
		t.Fatalf("drain epoch: %v", err)
	}
	if !nw.Draining(3) {
		t.Fatal("Draining(3) = false after drain epoch")
	}
	if _, err := nw.Send(3, "rejected", 0); !errors.Is(err, ErrDraining) {
		t.Fatalf("Send at draining node: err = %v, want ErrDraining", err)
	}
	if !nw.WaitDelivered(len(sent), 10*time.Second) {
		t.Fatalf("drain traffic stalled: %d/%d", nw.Delivered(), len(sent))
	}
	// Quiescence: the drainer holds nothing, and nothing anywhere is still
	// addressed to it.
	deadline := time.Now().Add(5 * time.Second)
	for !nw.Quiesced(3) || nw.InFlightFor(3) != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("node 3 never quiesced: quiesced=%v inflight=%d", nw.Quiesced(3), nw.InFlightFor(3))
		}
		time.Sleep(time.Millisecond)
	}

	// Detach: remove 3, heal the ring around it.
	topo := graph.NewTopology(graph.Ring(4))
	if err := topo.RemoveNode(3); err != nil {
		t.Fatal(err)
	}
	if err := topo.AddEdge(2, 0); err != nil {
		t.Fatal(err)
	}
	if err := nw.ApplyEpoch(Epoch{Seq: 2, Graph: mustBuild(t, topo)}); err != nil {
		t.Fatalf("detach epoch: %v", err)
	}
	if _, err := nw.Send(3, "gone", 0); !errors.Is(err, ErrNotLocal) {
		t.Fatalf("Send at detached node: err = %v, want ErrNotLocal", err)
	}
	if _, err := nw.Send(0, "unroutable", 3); !errors.Is(err, ErrNotMember) {
		t.Fatalf("Send to detached node: err = %v, want ErrNotMember", err)
	}
	if got := len(nw.Members()); got != 3 {
		t.Fatalf("members after detach = %d, want 3", got)
	}

	// The survivors still deliver.
	uid, err := nw.Send(0, "post-detach", 2)
	if err != nil {
		t.Fatal(err)
	}
	sent[uid] = true
	if !nw.WaitDelivered(len(sent), 10*time.Second) {
		t.Fatalf("post-detach traffic stalled: %d/%d", nw.Delivered(), len(sent))
	}
	log.check(t, sent)

	// Re-admission: slot 3 comes back as a fresh incarnation.
	if err := topo.AddNodeID(3); err != nil {
		t.Fatal(err)
	}
	for _, q := range []graph.ProcessID{0, 2} {
		if err := topo.AddEdge(3, q); err != nil {
			t.Fatal(err)
		}
	}
	if err := nw.ApplyEpoch(Epoch{Seq: 3, Graph: mustBuild(t, topo)}); err != nil {
		t.Fatalf("rejoin epoch: %v", err)
	}
	uid, err = nw.Send(1, "to-rejoined", 3)
	if err != nil {
		t.Fatal(err)
	}
	sent[uid] = true
	uid, err = nw.Send(3, "from-rejoined", 0)
	if err != nil {
		t.Fatal(err)
	}
	sent[uid] = true
	if !nw.WaitDelivered(len(sent), 10*time.Second) {
		t.Fatalf("rejoin traffic stalled: %d/%d", nw.Delivered(), len(sent))
	}
	log.check(t, sent)
}

// TestEpochUnderLoad churns the topology while a sender hammers the
// network, asserting exactly-once across every transition — the in-process
// miniature of the spawn judge's churn scenario.
func TestEpochUnderLoad(t *testing.T) {
	log := newUIDLog()
	nw := New(graph.Ring(5), Options{Seed: 17, OnDeliver: log.hook})
	nw.Start()
	defer nw.Stop()

	var mu sync.Mutex
	sent := make(map[uint64]bool)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for src := 0; src < 3; src++ {
		wg.Add(1)
		go func(src graph.ProcessID) {
			defer wg.Done()
			dst := graph.ProcessID((int(src) + 2) % 5)
			for {
				select {
				case <-stop:
					return
				default:
				}
				uid, err := nw.Send(src, "churn", dst)
				if err == nil {
					mu.Lock()
					sent[uid] = true
					mu.Unlock()
				}
				time.Sleep(200 * time.Microsecond)
			}
		}(graph.ProcessID(src))
	}

	topo := graph.NewTopology(graph.Ring(5))
	seq := uint64(0)
	apply := func() {
		t.Helper()
		seq++
		if err := nw.ApplyEpoch(Epoch{Seq: seq, Graph: mustBuild(t, topo)}); err != nil {
			t.Fatalf("epoch %d: %v", seq, err)
		}
	}
	// Join a node, add a chord, cut an edge, all under load.
	p := topo.AddNode()
	if err := topo.AddEdge(p, 0); err != nil {
		t.Fatal(err)
	}
	if err := topo.AddEdge(p, 2); err != nil {
		t.Fatal(err)
	}
	apply()
	time.Sleep(20 * time.Millisecond)
	if err := topo.AddEdge(1, 3); err != nil {
		t.Fatal(err)
	}
	apply()
	time.Sleep(20 * time.Millisecond)
	if err := topo.RemoveEdge(2, 3); err != nil {
		t.Fatal(err)
	}
	apply()
	time.Sleep(20 * time.Millisecond)

	close(stop)
	wg.Wait()
	mu.Lock()
	total := len(sent)
	mu.Unlock()
	if !nw.WaitDelivered(total, 20*time.Second) {
		t.Fatalf("churn traffic stalled: %d/%d", nw.Delivered(), total)
	}
	log.check(t, sent)
}
