package msgpass

import (
	"strconv"

	"ssmfp/internal/graph"
	"ssmfp/internal/telemetry"
	"ssmfp/internal/transport"
)

// netTelemetry is the Network's set of pre-resolved handles into its
// telemetry registry. All registration happens here, at construction —
// the hot paths (frame sends, buffer transitions, deliveries) touch only
// the atomic handles, never the registry, keeping the bench-allocs gate
// at 0 allocs/op with telemetry always on.
type netTelemetry struct {
	reg *telemetry.Registry

	// frames is indexed by transport.FrameKind; KindInvalid stays nil.
	frames [transport.KindCancelAck + 1]*telemetry.Counter

	sends             *telemetry.Counter
	deliveries        *telemetry.Counter
	invalidDeliveries *telemetry.Counter
	phantomDeliveries *telemetry.Counter

	parkEvents    *telemetry.Counter
	parkEvictions *telemetry.Counter
	retransmits   *telemetry.Counter

	watermarkViolations *telemetry.Counter

	// Cluster membership: the current epoch sequence, the member count,
	// and drain progress. Registered unconditionally so every deployment
	// — elastic or fixed — exports the same core series.
	epoch           *telemetry.Gauge
	members         *telemetry.Gauge
	drainsStarted   *telemetry.Counter
	drainsCompleted *telemetry.Counter
	drainHandoffs   *telemetry.Counter

	// End-to-end latency attribution, node side: time a message waited in
	// the higher-layer pending queue before R1 (queued), time a parked
	// offer waited at a congested hop (park), and time between arrival at
	// the destination and the R6 consumption (deliver). The residual of
	// the collector's end-to-end measurement is wire transfer.
	compQueued  *telemetry.Hist
	compPark    *telemetry.Hist
	compDeliver *telemetry.Hist
}

func newNetTelemetry(reg *telemetry.Registry) *netTelemetry {
	t := &netTelemetry{reg: reg}
	for k := transport.KindDV; k <= transport.KindCancelAck; k++ {
		t.frames[k] = reg.Counter(telemetry.SeriesFramesSent,
			"Protocol frames put on the wire, by frame kind.",
			telemetry.L("kind", k.String()))
	}
	t.sends = reg.Counter(telemetry.SeriesSends,
		"Higher-layer send requests accepted by Network.Send.")
	t.deliveries = reg.Counter(telemetry.SeriesDeliveries,
		"Messages consumed at their destination (R6).")
	t.invalidDeliveries = reg.Counter(telemetry.SeriesInvalidDeliveries,
		"Deliveries of invalid messages (corrupt initial state flushing out).")
	t.phantomDeliveries = reg.Counter(telemetry.SeriesPhantomDeliveries,
		"Deliveries whose message was destined elsewhere — stabilization residue.")
	t.parkEvents = reg.Counter(telemetry.SeriesParkEvents,
		"Offers parked at a congested hop (bufR occupied on arrival).")
	t.parkEvictions = reg.Counter(telemetry.SeriesParkEvictions,
		"Parked offers evicted by a cancel before acceptance.")
	t.retransmits = reg.Counter(telemetry.SeriesRetransmits,
		"Offer/cancel retransmissions after the silence interval.")
	t.watermarkViolations = reg.Counter(telemetry.SeriesWatermarkViolations,
		"Acknowledgements for sequences this node never issued — foreign or corrupt handshake state.")
	t.epoch = reg.Gauge(telemetry.SeriesClusterEpoch,
		"Sequence number of the last applied membership epoch.")
	t.members = reg.Gauge(telemetry.SeriesClusterMembers,
		"Cluster members (slots with at least one incident link) under the current topology.")
	t.drainsStarted = reg.Counter(telemetry.SeriesDrainsStarted,
		"Local processors that entered draining state.")
	t.drainsCompleted = reg.Counter(telemetry.SeriesDrainsCompleted,
		"Local drains that completed (the processor detached from the member set).")
	t.drainHandoffs = reg.Counter(telemetry.SeriesDrainHandoffs,
		"Buffered messages a draining processor handed off to live neighbors.")
	comp := func(c string) *telemetry.Hist {
		return reg.Hist(telemetry.SeriesLatencyComponent,
			"Per-hop latency attribution components, nanoseconds.",
			telemetry.L("component", c))
	}
	t.compQueued = comp("queued")
	t.compPark = comp("park")
	t.compDeliver = comp("deliver")
	return t
}

// nodeGauges is one processor's occupancy levels, updated at the exact
// transition points so the peaks are event-driven high-water marks, not
// tick samples — a buffer occupied for a microsecond still registers.
type nodeGauges struct {
	bufR, bufE, pending, parked *telemetry.Gauge
}

func newNodeGauges(reg *telemetry.Registry, id graph.ProcessID) nodeGauges {
	proc := telemetry.L("proc", strconv.Itoa(int(id)))
	return nodeGauges{
		bufR: reg.Gauge(telemetry.SeriesBufOccupancy,
			"Occupied protocol buffers, by processor and buffer.",
			proc, telemetry.L("buf", "R")),
		bufE: reg.Gauge(telemetry.SeriesBufOccupancy,
			"Occupied protocol buffers, by processor and buffer.",
			proc, telemetry.L("buf", "E")),
		pending: reg.Gauge(telemetry.SeriesPending,
			"Higher-layer sends not yet accepted by R1, by processor.", proc),
		parked: reg.Gauge(telemetry.SeriesParked,
			"Offers parked while bufR is occupied, by processor.", proc),
	}
}

// registerWire exposes the transport's counters through the registry as
// read-at-snapshot funcs: the transport keeps its own atomics, and the
// scrape path (cold) walks them. Per-link series are registered for every
// outgoing link of every local node.
func (nw *Network) registerWire() {
	reg := nw.tel.reg
	reg.CounterFunc(telemetry.SeriesWireFramesSent,
		"Frames handed to the wire across the whole transport.",
		func() int64 { return int64(nw.tr.Stats().FramesSent) })
	reg.CounterFunc(telemetry.SeriesWireFramesRecvd,
		"Frames received from the wire across the whole transport.",
		func() int64 { return int64(nw.tr.Stats().FramesRecvd) })
	reg.CounterFunc(telemetry.SeriesWireBytesSent,
		"Frame bytes sent (socket bytes on TCP, encoded-equivalent in memory).",
		func() int64 { return int64(nw.tr.Stats().BytesSent) })
	reg.CounterFunc(telemetry.SeriesWireBytesRecvd,
		"Frame bytes received.",
		func() int64 { return int64(nw.tr.Stats().BytesRecvd) })
	reg.CounterFunc(telemetry.SeriesWireDropped,
		"Frames dropped by congestion (full queue, link down).",
		func() int64 { return int64(nw.tr.Stats().DroppedFull) },
		telemetry.L("cause", "full"))
	reg.CounterFunc(telemetry.SeriesWireDropped,
		"Frames dropped by injected impairment.",
		func() int64 { return int64(nw.tr.Stats().DroppedImpair) },
		telemetry.L("cause", "impair"))
	reg.CounterFunc(telemetry.SeriesWireDuplicated,
		"Extra frame copies injected by impairment.",
		func() int64 { return int64(nw.tr.Stats().Duplicated) })
	reg.CounterFunc(telemetry.SeriesWireDials,
		"Outbound connection attempts (TCP only).",
		func() int64 { return int64(nw.tr.Stats().Dials) })
	reg.CounterFunc(telemetry.SeriesWireRedials,
		"Reconnections after a working connection failed (TCP only).",
		func() int64 { return int64(nw.tr.Stats().Redials) })

	for _, p := range nw.local {
		nw.registerNodeWire(nw.nodes[p])
	}
}

// registerNodeWire registers the per-link series of one node's outgoing
// links. Registration is idempotent and keeps the first closure, so the
// closures resolve the link through the node's atomic link map at scrape
// time — after an epoch replaces the map, the same series reads the
// current link (or zero, while the edge is gone). Called at construction
// and again for nodes that join or gain links at an epoch.
func (nw *Network) registerNodeWire(n *node) {
	reg := nw.tel.reg
	p := n.id
	for _, q := range n.nbrs {
		q := q
		linkStats := func() transport.LinkStats {
			if l := (*n.outp.Load())[q]; l != nil {
				return l.Stats()
			}
			return transport.LinkStats{}
		}
		link := telemetry.L("link", strconv.Itoa(int(p))+"->"+strconv.Itoa(int(q)))
		reg.CounterFunc(telemetry.SeriesLinkFramesSent,
			"Frames sent on one directed link.",
			func() int64 { return int64(linkStats().Sent) }, link)
		reg.CounterFunc(telemetry.SeriesLinkBytesSent,
			"Frame bytes sent on one directed link.",
			func() int64 { return int64(linkStats().BytesSent) }, link)
		reg.CounterFunc(telemetry.SeriesLinkDropped,
			"Frames dropped on one directed link (congestion + impairment).",
			func() int64 { s := linkStats(); return int64(s.DroppedFull + s.DroppedImpair) }, link)
		reg.GaugeFunc(telemetry.SeriesLinkQueued,
			"Point-in-time outbound queue depth of one directed link.",
			func() int64 { return int64(linkStats().Queued) }, link)
	}
}
