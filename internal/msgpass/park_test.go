package msgpass

import (
	"testing"

	"ssmfp/internal/graph"
	"ssmfp/internal/transport"
)

// relayNode builds an unstarted 3-node line and returns the middle node,
// the unit under test for the receiver-side offer parking: offers from
// node 0 addressed to node 2 relay through it.
func relayNode(t *testing.T) *node {
	t.Helper()
	nw := New(graph.Line(3), Options{Seed: 1, DiscardDeliveries: true})
	t.Cleanup(func() { nw.tr.Close() })
	return nw.nodes[1]
}

func offer(seq uint64, payload string) transport.Offer {
	return transport.Offer{
		Dest: 2,
		Seq:  seq,
		Msg:  transport.Message{Payload: payload, UID: seq, Src: 0, Dest: 2, Valid: true},
	}
}

// TestBlockedOfferAcceptedOnBufferFree is the congested-hop regression
// test: an offer arriving while bufR is occupied must be parked and
// accepted the moment R2 frees the buffer — not dropped on the floor to
// wait out the sender's retransmit interval. (Dropping it halves a
// saturated pipeline's hop rate; the line-8 knee measures the difference.)
func TestBlockedOfferAcceptedOnBufferFree(t *testing.T) {
	n := relayNode(t)
	ds := &n.dests[2]

	n.handleOffer(0, offer(1, "first"))
	if !ds.hasR || ds.accepted[0] != 1 {
		t.Fatalf("first offer not accepted: hasR=%v accepted=%d", ds.hasR, ds.accepted[0])
	}
	n.handleOffer(0, offer(2, "second")) // bufR occupied: must park
	if !ds.hasParked || ds.parked.Seq != 2 {
		t.Fatalf("blocked offer not parked: hasParked=%v seq=%d", ds.hasParked, ds.parked.Seq)
	}
	if ds.accepted[0] != 1 {
		t.Fatalf("blocked offer accepted while bufR occupied (accepted=%d)", ds.accepted[0])
	}

	// R2 moves first into bufE and frees bufR; the parked offer must be
	// accepted in the same pass.
	n.localMoves()
	if ds.hasParked {
		t.Fatal("parked offer still parked after bufR freed")
	}
	if !ds.hasR || ds.bufR.Payload != "second" || ds.accepted[0] != 2 {
		t.Fatalf("parked offer not accepted on free: hasR=%v payload=%q accepted=%d",
			ds.hasR, ds.bufR.Payload, ds.accepted[0])
	}
}

// TestCancelEvictsParkedOffer: a cancel for the parked sequence must evict
// it, so a sequence the receiver cancelAck'd can never be accepted later
// from the parking slot (the sender may have re-offered it elsewhere).
func TestCancelEvictsParkedOffer(t *testing.T) {
	n := relayNode(t)
	ds := &n.dests[2]

	n.handleOffer(0, offer(1, "first"))
	n.handleOffer(0, offer(2, "second"))
	if !ds.hasParked {
		t.Fatal("blocked offer not parked")
	}
	n.handleCancel(0, transport.Ack{Dest: 2, Seq: 2})
	if ds.hasParked {
		t.Fatal("cancel did not evict the parked offer")
	}
	if ds.killed[0] != 2 {
		t.Fatalf("cancel did not raise the kill watermark: killed=%d", ds.killed[0])
	}
	n.localMoves() // frees bufR; nothing may be accepted
	if ds.accepted[0] != 1 {
		t.Fatalf("killed sequence accepted from the parking slot: accepted=%d", ds.accepted[0])
	}
}

// TestParkedOfferRespectsKillWatermark: even if the eviction were missed,
// unparking re-runs handleOffer, whose watermark checks refuse a killed
// sequence. Simulate a corrupt parking slot (arbitrary initial state) and
// check the unpark path cancelAcks instead of accepting.
func TestParkedOfferRespectsKillWatermark(t *testing.T) {
	n := relayNode(t)
	ds := &n.dests[2]

	n.handleOffer(0, offer(1, "first"))
	ds.killed[0] = 5
	ds.parked, ds.parkedFrom, ds.hasParked = offer(3, "stale"), 0, true
	n.localMoves()
	if ds.hasParked {
		t.Fatal("stale parked offer still parked")
	}
	if ds.accepted[0] != 1 {
		t.Fatalf("killed sequence accepted: accepted=%d", ds.accepted[0])
	}
	if ds.hasR {
		t.Fatal("bufR refilled from a killed sequence")
	}
}
