package statemodel

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"ssmfp/internal/graph"
)

// randomTopology draws one topology from the menu under the given rng.
func randomTopology(rng *rand.Rand) *graph.Graph {
	switch rng.Intn(5) {
	case 0:
		return graph.Ring(3 + rng.Intn(10))
	case 1:
		return graph.Line(2 + rng.Intn(12))
	case 2:
		return graph.Grid(2+rng.Intn(4), 2+rng.Intn(4))
	case 3:
		return graph.Star(3 + rng.Intn(10))
	default:
		n := 5 + rng.Intn(12)
		return graph.RandomConnected(n, 2*n, rng)
	}
}

// randomProgram draws one toy protocol.
func randomProgram(rng *rand.Rand) Program {
	switch rng.Intn(3) {
	case 0:
		return maxProgram()
	case 1:
		return incProgram(3 + rng.Intn(8))
	default:
		return maxProgram()
	}
}

// TestShardedMatchesSerialEveryStep is the property test of the sharded
// engine's determinism contract: for random seeds, random topologies and
// random shard counts, the sharded execution must equal the serial one
// state-for-state after EVERY step — not just at the terminal
// configuration — along with steps, rounds, move counts, and the
// emitted event stream.
func TestShardedMatchesSerialEveryStep(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := randomTopology(rng)
		prog := randomProgram(rng)
		shards := 2 + rng.Intn(7)
		mkDaemon := rng.Intn(3)
		daemon := func() Daemon {
			switch mkDaemon {
			case 1:
				return NewTestRoundRobin()
			default:
				return allDaemon{}
			}
		}
		cfg := make([]State, g.N())
		for i := range cfg {
			cfg[i] = &intState{v: rng.Intn(8)}
		}
		clone := func() []State {
			out := make([]State, len(cfg))
			for i, s := range cfg {
				out[i] = s.Clone()
			}
			return out
		}
		serial := NewEngine(g, prog, daemon(), clone(), WithSelfCheck(false))
		sharded := NewEngine(g, prog, daemon(), clone(),
			WithShards(shards, seed), WithSelfCheck(false), WithBoundaryCheck(true))
		var serialEvents, shardedEvents []string
		serial.Subscribe(func(ev Event) {
			serialEvents = append(serialEvents, fmt.Sprintf("%d/%d/%s/%s", ev.Step, ev.Process, ev.Rule, ev.Kind))
		})
		sharded.Subscribe(func(ev Event) {
			shardedEvents = append(shardedEvents, fmt.Sprintf("%d/%d/%s/%s", ev.Step, ev.Process, ev.Rule, ev.Kind))
		})
		for step := 0; step < 200; step++ {
			a := serial.Step()
			b := sharded.Step()
			if a != b {
				t.Fatalf("seed %d (%v, shards=%d): step %d: serial stepped=%v, sharded stepped=%v",
					seed, g, shards, step, a, b)
			}
			for p := 0; p < g.N(); p++ {
				sv := serial.PeekStateOf(graph.ProcessID(p)).(*intState).v
				pv := sharded.PeekStateOf(graph.ProcessID(p)).(*intState).v
				if sv != pv {
					t.Fatalf("seed %d (%v, shards=%d): step %d: state of p%d diverged: serial=%d sharded=%d",
						seed, g, shards, step, p, sv, pv)
				}
			}
			if serial.Rounds() != sharded.Rounds() {
				t.Fatalf("seed %d: step %d: rounds diverged: serial=%d sharded=%d",
					seed, step, serial.Rounds(), sharded.Rounds())
			}
			if !a {
				break
			}
		}
		if serial.Steps() != sharded.Steps() || serial.TotalMoves() != sharded.TotalMoves() {
			t.Fatalf("seed %d: steps/moves diverged: serial %d/%d, sharded %d/%d",
				seed, serial.Steps(), serial.TotalMoves(), sharded.Steps(), sharded.TotalMoves())
		}
		if !reflect.DeepEqual(serial.MoveCounts(), sharded.MoveCounts()) {
			t.Fatalf("seed %d: move counts diverged:\nserial  %v\nsharded %v",
				seed, serial.MoveCounts(), sharded.MoveCounts())
		}
		if !reflect.DeepEqual(serialEvents, shardedEvents) {
			t.Fatalf("seed %d: event streams diverged:\nserial  %v\nsharded %v",
				seed, serialEvents, shardedEvents)
		}
		if ss, ps := serial.Stats(), sharded.Stats(); ss.GuardEvals != ps.GuardEvals {
			t.Fatalf("seed %d: guard evals diverged: serial=%d sharded=%d", seed, ss.GuardEvals, ps.GuardEvals)
		}
	}
}

// TestShardedExercisesParallelPath guards the property test against
// silently degrading into serial-vs-serial: under a synchronous daemon
// on a grid, the sharded engine must actually run parallel batches and
// the boundary-conflict oracle must actually fire.
func TestShardedExercisesParallelPath(t *testing.T) {
	g := graph.Grid(6, 6)
	cfg := make([]State, g.N())
	for i := range cfg {
		cfg[i] = &intState{v: i % 5}
	}
	e := NewEngine(g, maxProgram(), allDaemon{}, cfg,
		WithShards(4, 1), WithSelfCheck(false), WithBoundaryCheck(true))
	e.Run(100, nil)
	st := e.Stats()
	if st.ParallelBatches == 0 || st.ParallelMoves == 0 {
		t.Fatalf("sharded engine never took the parallel path: %+v", st)
	}
	if st.BoundaryChecks != st.ParallelBatches {
		t.Fatalf("oracle checked %d of %d batches", st.BoundaryChecks, st.ParallelBatches)
	}
	if e.Shards() != 4 {
		t.Fatalf("Shards() = %d, want 4", e.Shards())
	}
}

// TestPlanBatchesNonAdjacent drives the batch planner directly over
// random selection sets and requires every batch to be an independent
// set, every selection to land in exactly one batch, and the batch
// layout to be deterministic.
func TestPlanBatchesNonAdjacent(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := randomTopology(rng)
		e := NewEngine(g, incProgram(1), allDaemon{}, intConfig(make([]int, g.N())...),
			WithShards(2+rng.Intn(4), seed), WithSelfCheck(false))
		// A random subset of processors pretends to be selected.
		var sels []Selection
		for p := 0; p < g.N(); p++ {
			if rng.Intn(2) == 0 {
				sels = append(sels, Selection{Process: graph.ProcessID(p), Rule: 0})
			}
		}
		if len(sels) == 0 {
			continue
		}
		batches := e.planBatches(sels)
		again := e.planBatches(sels)
		if !reflect.DeepEqual(batches, again) {
			t.Fatalf("seed %d: planBatches is not deterministic", seed)
		}
		seen := make(map[int]bool)
		for _, batch := range batches {
			members := make(map[graph.ProcessID]bool)
			for _, i := range batch {
				if seen[i] {
					t.Fatalf("seed %d: selection %d appears in two batches", seed, i)
				}
				seen[i] = true
				members[sels[i].Process] = true
			}
			for _, i := range batch {
				for _, q := range g.Neighbors(sels[i].Process) {
					if members[q] {
						t.Fatalf("seed %d: adjacent processors %d and %d share a batch",
							seed, sels[i].Process, q)
					}
				}
			}
		}
		if len(seen) != len(sels) {
			t.Fatalf("seed %d: %d of %d selections batched", seed, len(seen), len(sels))
		}
	}
}

// TestBoundaryOraclePanicsOnConflict plants an adversarial batch and
// requires the oracle to reject it, naming the edge.
func TestBoundaryOraclePanicsOnConflict(t *testing.T) {
	g := graph.Line(3)
	e := NewEngine(g, incProgram(1), allDaemon{}, intConfig(0, 0, 0),
		WithShards(2, 0), WithSelfCheck(false))
	sels := []Selection{{Process: 0, Rule: 0}, {Process: 1, Rule: 0}}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected boundary-conflict panic")
		}
		if msg := fmt.Sprint(r); !strings.Contains(msg, "boundary-conflict") {
			t.Fatalf("panic should name the oracle, got: %s", msg)
		}
	}()
	e.assertBatchNonAdjacent(sels, []int{0, 1}) // 0 and 1 are adjacent on the line
}

// TestWithShardsOneIsSerial pins that -shards 1 (and 0) configure a
// plain serial engine: no partition, no parallel counters.
func TestWithShardsOneIsSerial(t *testing.T) {
	g := graph.Ring(5)
	for _, k := range []int{0, 1} {
		e := NewEngine(g, incProgram(2), allDaemon{}, intConfig(0, 0, 0, 0, 0), WithShards(k, 9))
		e.Run(50, nil)
		if e.Shards() != 1 {
			t.Fatalf("WithShards(%d): Shards() = %d, want 1", k, e.Shards())
		}
		if st := e.Stats(); st.ParallelBatches != 0 || st.ParallelMoves != 0 {
			t.Fatalf("WithShards(%d): parallel counters on a serial engine: %+v", k, st)
		}
	}
}

// TestShardedWithSelfCheck runs the sharded engine with the differential
// self-check on: the naive rescan oracle must accept every incremental,
// sharded enabled set.
func TestShardedWithSelfCheck(t *testing.T) {
	g := graph.Grid(4, 4)
	cfg := make([]State, g.N())
	for i := range cfg {
		cfg[i] = &intState{v: (i * 7) % 4}
	}
	e := NewEngine(g, maxProgram(), allDaemon{}, cfg,
		WithShards(3, 5), WithSelfCheck(true), WithBoundaryCheck(true))
	_, terminal := e.Run(200, nil)
	if !terminal {
		t.Fatal("max protocol should reach a terminal configuration")
	}
	if st := e.Stats(); st.SelfChecks == 0 {
		t.Fatalf("self-check never ran: %+v", st)
	}
}

// TestParScanMatchesSerialScan compares the sharded full scan against
// the serial one on graphs above the fan-out threshold.
func TestParScanMatchesSerialScan(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := parScanMinProcs + rng.Intn(80)
		g := graph.RandomConnected(n, 2*n, rng)
		cfg := make([]State, n)
		for i := range cfg {
			cfg[i] = &intState{v: rng.Intn(6)}
		}
		e := NewEngine(g, maxProgram(), allDaemon{}, cfg, WithShards(4, seed), WithSelfCheck(false))
		var evals int64
		got := e.parScanEnabled(&evals)
		var wantEvals int64
		want := scanEnabled(g, e.rules, e.states, 0, &wantEvals)
		if d := diffEnabled(e.rules, want, got); d != "" {
			t.Fatalf("seed %d: sharded scan diverged:\n%s", seed, d)
		}
		if evals != wantEvals {
			t.Fatalf("seed %d: guard evals %d, want %d", seed, evals, wantEvals)
		}
	}
}
