package statemodel

import (
	"fmt"
	"sync"
	"sync/atomic"

	"ssmfp/internal/graph"
	"ssmfp/internal/obs"
)

// Sharded parallel step engine.
//
// WithShards(k, seed) partitions the graph into k seeded, deterministic
// shards (graph.Partition) and makes the engine execute its two hot
// loops concurrently across a per-operation worker fan-out:
//
//   - guard evaluation: full scans and incremental flushes evaluate each
//     processor's choice into a canonical-index slot from multiple
//     workers, then merge the slots in ascending processor order — the
//     same order the serial scan produces;
//   - action execution: the daemon's selections are planned into batches
//     such that no two processors in one batch are adjacent (the
//     concurrency discipline of the paper's distributed daemon, where
//     only non-neighboring processors move simultaneously), each batch
//     is split across workers along shard ownership, every action runs
//     against the immutable pre-step snapshot into a per-selection
//     result slot, and the slots are committed in canonical selection
//     order.
//
// Because every worker writes only to slots indexed canonically and all
// merges walk the slots in canonical order, a run with any shard count
// is bit-identical to the serial run: same states after every step, same
// event stream, same move counts, same guard-evaluation totals. The
// boundary-conflict oracle (WithBoundaryCheck, on by default under `go
// test` like the differential self-check) independently re-verifies the
// non-adjacency of every executed batch and panics on a violation.

// parScanMinProcs is the smallest evaluation set worth fanning out;
// below it the goroutine overhead exceeds the guard work.
const parScanMinProcs = 64

// WithShards runs the engine's guard evaluation and action execution on
// a sharded worker fan-out: the graph is partitioned into k seeded,
// deterministic shards and each parallel operation splits along shard
// ownership. k <= 1 keeps the serial engine. Executions are bit-identical
// for every k — sharding only changes wall-clock time.
func WithShards(k int, seed int64) EngineOption {
	return func(e *Engine) {
		if k <= 1 {
			e.part = nil
			return
		}
		e.part = e.g.Partition(k, seed)
	}
}

// WithBoundaryCheck toggles the boundary-conflict oracle: after every
// parallel batch executes, the oracle independently asserts that no two
// processors that moved in that batch are adjacent, and panics naming
// the conflicting edge otherwise. The default follows the differential
// self-check (on under `go test` and SSMFP_PARANOID, off otherwise).
func WithBoundaryCheck(on bool) EngineOption {
	return func(e *Engine) { e.boundaryCheck = &on }
}

// Shards returns the configured shard count (1 = serial engine).
func (e *Engine) Shards() int {
	if e.part == nil {
		return 1
	}
	return e.part.K()
}

// boundaryCheckOn resolves the oracle default lazily so option order
// does not matter: explicit WithBoundaryCheck wins, otherwise the oracle
// follows the self-check mode.
func (e *Engine) boundaryCheckOn() bool {
	if e.boundaryCheck != nil {
		return *e.boundaryCheck
	}
	return e.selfCheck
}

// fanOut runs tasks 0..n-1 on up to K workers (never more than tasks).
// Assignment is dynamic (atomic counter): callers must write results
// into canonically indexed slots, never append from workers.
func (e *Engine) fanOut(n int, task func(i int)) {
	workers := e.part.K()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			task(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				task(i)
			}
		}()
	}
	wg.Wait()
}

// parScanEnabled is the sharded full scan: workers evaluate whole shards
// (each shard's members in ascending ID order) into per-shard slots, and
// the slots are merged in ascending processor order — byte-identical to
// scanEnabled's output. Guard evaluations accumulate per shard and are
// summed canonically.
func (e *Engine) parScanEnabled(guardEvals *int64) []Choice {
	k := e.part.K()
	perShard := make([][]Choice, k)
	evals := make([]int64, k)
	e.fanOut(k, func(s int) {
		var cnt *int64
		if guardEvals != nil {
			cnt = &evals[s]
		}
		for _, p := range e.part.Members(s) {
			if c := enabledAtConfig(e.g, e.rules, e.states, p, e.step, cnt); len(c.Rules) > 0 {
				perShard[s] = append(perShard[s], c)
			}
		}
	})
	if guardEvals != nil {
		for _, v := range evals {
			*guardEvals += v
		}
	}
	return mergeChoices(perShard)
}

// parFlushEnabled is the sharded incremental flush: the re-evaluation
// set N[changed] is computed exactly as in enabledDelta, its members are
// evaluated into canonical-index slots from the worker fan-out, and the
// merge with the previous enabled list runs serially over the slots.
// Output and guard-evaluation totals match enabledDelta exactly.
func (e *Engine) parFlushEnabled(prev []Choice, changed []graph.ProcessID, guardEvals *int64) (out []Choice, evaluated int) {
	reeval := closedNeighborhood(e.g, changed)
	if len(reeval) < parScanMinProcs {
		return enabledDeltaOver(e.g, e.rules, e.states, prev, reeval, e.step, guardEvals)
	}
	slots := make([]Choice, len(reeval))
	evals := make([]int64, len(reeval))
	e.fanOut(len(reeval), func(i int) {
		var cnt *int64
		if guardEvals != nil {
			cnt = &evals[i]
		}
		slots[i] = enabledAtConfig(e.g, e.rules, e.states, reeval[i], e.step, cnt)
	})
	if guardEvals != nil {
		for _, v := range evals {
			*guardEvals += v
		}
	}
	out = make([]Choice, 0, len(prev)+len(reeval))
	pi := 0
	for i, p := range reeval {
		for pi < len(prev) && prev[pi].Process < p {
			out = append(out, prev[pi])
			pi++
		}
		if pi < len(prev) && prev[pi].Process == p {
			pi++
		}
		if len(slots[i].Rules) > 0 {
			out = append(out, slots[i])
		}
	}
	out = append(out, prev[pi:]...)
	return out, len(reeval)
}

// mergeChoices k-way-merges per-shard choice lists (each sorted by
// processor ID) into one ascending list. Shard member sets are disjoint,
// so no tie-breaking is needed.
func mergeChoices(perShard [][]Choice) []Choice {
	total := 0
	for _, l := range perShard {
		total += len(l)
	}
	if total == 0 {
		return nil
	}
	out := make([]Choice, 0, total)
	idx := make([]int, len(perShard))
	for len(out) < total {
		best, bestP := -1, graph.ProcessID(0)
		for s, l := range perShard {
			if idx[s] < len(l) {
				if p := l[idx[s]].Process; best < 0 || p < bestP {
					best, bestP = s, p
				}
			}
		}
		out = append(out, perShard[best][idx[best]])
		idx[best]++
	}
	return out
}

// --- parallel action execution ----------------------------------------

// execResult is one selection's outcome, produced by a worker against
// the pre-step snapshot and committed later in canonical order.
type execResult struct {
	state  State
	events []Event
	typed  []obs.Event
}

// planBatches greedily colors the selections into batches such that no
// two processors in one batch are adjacent: each selection (in canonical
// order) joins the first batch that contains none of its neighbors.
// Interior processors of distinct shards can never collide, so the
// neighbor probe only ever rejects same-shard or boundary pairs. The
// returned batches hold indices into sels, each batch ascending.
func (e *Engine) planBatches(sels []Selection) [][]int {
	var batches [][]int
	inBatch := make([]map[graph.ProcessID]bool, 0, 4)
	for i, sel := range sels {
		placed := false
		for b := range batches {
			conflict := false
			for _, q := range e.g.Neighbors(sel.Process) {
				if inBatch[b][q] {
					conflict = true
					break
				}
			}
			if !conflict {
				batches[b] = append(batches[b], i)
				inBatch[b][sel.Process] = true
				placed = true
				break
			}
		}
		if !placed {
			batches = append(batches, []int{i})
			inBatch = append(inBatch, map[graph.ProcessID]bool{sel.Process: true})
		}
	}
	return batches
}

// assertBatchNonAdjacent is the boundary-conflict oracle: an independent
// re-verification (it shares no state with planBatches) that no two
// processors that moved in the same parallel batch are adjacent.
func (e *Engine) assertBatchNonAdjacent(sels []Selection, batch []int) {
	members := make(map[graph.ProcessID]bool, len(batch))
	for _, i := range batch {
		members[sels[i].Process] = true
	}
	for _, i := range batch {
		p := sels[i].Process
		for _, q := range e.g.Neighbors(p) {
			if members[q] {
				panic(fmt.Sprintf(
					"statemodel: boundary-conflict oracle: adjacent processors %d and %d moved in the same parallel batch at step %d",
					p, q, e.step))
			}
		}
	}
	e.stats.BoundaryChecks++
}

// executeParallel runs the step's selections on the worker fan-out:
// batches of provably non-adjacent moves execute concurrently (split
// across workers along shard ownership), every action reads the
// immutable pre-step snapshot and writes a per-selection result slot,
// and nothing commits until the caller merges the slots in canonical
// selection order. observing gates the construction of typed events,
// exactly as on the serial path.
func (e *Engine) executeParallel(sels []Selection, snapshot []State, observing bool) []execResult {
	results := make([]execResult, len(sels))
	check := e.boundaryCheckOn()
	for _, batch := range e.planBatches(sels) {
		// Split the batch along shard ownership so each worker stays in
		// its own region of the graph.
		groups := make([][]int, e.part.K())
		for _, i := range batch {
			s := e.part.Of(sels[i].Process)
			groups[s] = append(groups[s], i)
		}
		active := groups[:0]
		for _, grp := range groups {
			if len(grp) > 0 {
				active = append(active, grp)
			}
		}
		e.fanOut(len(active), func(gi int) {
			for _, i := range active[gi] {
				results[i] = e.execOne(sels[i], snapshot, observing)
			}
		})
		if check {
			e.assertBatchNonAdjacent(sels, batch)
		}
		e.stats.ParallelBatches++
	}
	e.stats.ParallelMoves += int64(len(sels))
	return results
}

// execOne executes one selection against the pre-step snapshot into a
// private result. The emitted event order inside the result matches the
// serial engine: the action's own events first, then the fire marker.
func (e *Engine) execOne(sel Selection, snapshot []State, observing bool) execResult {
	r := e.rules[sel.Rule]
	var res execResult
	v := &View{
		id:       sel.Process,
		g:        e.g,
		snapshot: snapshot,
		self:     snapshot[sel.Process].Clone(),
		step:     e.step,
		events:   &res.events,
	}
	if observing {
		v.obsBuf = &res.typed
	}
	r.Action(v)
	res.state = v.self
	for i := range res.events {
		if res.events[i].Rule == "" {
			res.events[i].Rule = r.Name
		}
	}
	res.events = append(res.events, Event{Step: e.step, Process: sel.Process, Rule: r.Name, Kind: "fire"})
	if observing {
		for i := range res.typed {
			res.typed[i].Step = e.step
			res.typed[i].Round = e.rounds
			res.typed[i].Proc = sel.Process
			res.typed[i].Rule = r.Name
		}
		res.typed = append(res.typed, obs.Event{
			Kind: obs.KindFire, Step: e.step, Round: e.rounds, Proc: sel.Process, Rule: r.Name,
		})
	}
	return res
}

// closedNeighborhood returns N[changed] — every changed processor plus
// its neighbors, deduplicated and sorted ascending. This is exactly the
// re-evaluation set enabledDelta derives.
func closedNeighborhood(g *graph.Graph, changed []graph.ProcessID) []graph.ProcessID {
	dirty := make(map[graph.ProcessID]bool, 4*len(changed))
	for _, p := range changed {
		dirty[p] = true
		for _, q := range g.Neighbors(p) {
			dirty[q] = true
		}
	}
	out := make([]graph.ProcessID, 0, len(dirty))
	for p := range dirty {
		out = append(out, p)
	}
	sortProcessIDs(out)
	return out
}

func sortProcessIDs(ps []graph.ProcessID) {
	// insertion sort: re-evaluation sets are small and nearly sorted
	for i := 1; i < len(ps); i++ {
		for j := i; j > 0 && ps[j] < ps[j-1]; j-- {
			ps[j], ps[j-1] = ps[j-1], ps[j]
		}
	}
}

// enabledDeltaOver is enabledDelta with the re-evaluation set already
// computed — the serial fallback of the sharded flush for small sets.
func enabledDeltaOver(g *graph.Graph, rules []Rule, cfg []State, prev []Choice, reeval []graph.ProcessID, step int, guardEvals *int64) (out []Choice, evaluated int) {
	out = make([]Choice, 0, len(prev)+len(reeval))
	pi := 0
	for _, p := range reeval {
		for pi < len(prev) && prev[pi].Process < p {
			out = append(out, prev[pi])
			pi++
		}
		if pi < len(prev) && prev[pi].Process == p {
			pi++
		}
		if c := enabledAtConfig(g, rules, cfg, p, step, guardEvals); len(c.Rules) > 0 {
			out = append(out, c)
		}
	}
	out = append(out, prev[pi:]...)
	return out, len(reeval)
}
