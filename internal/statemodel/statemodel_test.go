package statemodel

import (
	"testing"

	"ssmfp/internal/graph"
)

// intState is a one-variable state for toy protocols.
type intState struct{ v int }

func (s *intState) Clone() State { c := *s; return &c }

func intConfig(vals ...int) []State {
	cfg := make([]State, len(vals))
	for i, v := range vals {
		cfg[i] = &intState{v: v}
	}
	return cfg
}

func val(e *Engine, p graph.ProcessID) int { return e.StateOf(p).(*intState).v }

// incProgram: every processor increments its value while below limit.
func incProgram(limit int) Program {
	return NewProgram(Rule{
		Name: "inc",
		Guard: func(v *View) bool {
			return v.Self().(*intState).v < limit
		},
		Action: func(v *View) {
			v.Self().(*intState).v++
		},
	})
}

// maxProgram: self-stabilizing max propagation — adopt the maximum of the
// neighborhood when it exceeds the own value.
func maxProgram() Program {
	nbrMax := func(v *View) int {
		m := v.Self().(*intState).v
		for _, q := range v.Neighbors() {
			if x := v.Read(q).(*intState).v; x > m {
				m = x
			}
		}
		return m
	}
	return NewProgram(Rule{
		Name:   "adopt-max",
		Guard:  func(v *View) bool { return nbrMax(v) > v.Self().(*intState).v },
		Action: func(v *View) { v.Self().(*intState).v = nbrMax(v) },
	})
}

// copyLeftProgram: every processor p > 0 copies the value of p-1 on a line.
// Used to verify snapshot atomicity under the synchronous daemon.
func copyLeftProgram() Program {
	return NewProgram(Rule{
		Name: "copy-left",
		Guard: func(v *View) bool {
			if v.ID() == 0 {
				return false
			}
			return v.Read(v.ID()-1).(*intState).v != v.Self().(*intState).v
		},
		Action: func(v *View) {
			v.Self().(*intState).v = v.Read(v.ID() - 1).(*intState).v
		},
	})
}

// allDaemon activates every enabled processor with its first offered rule.
type allDaemon struct{}

func (allDaemon) Name() string { return "all" }
func (allDaemon) Select(step int, enabled []Choice) []Selection {
	out := make([]Selection, len(enabled))
	for i, c := range enabled {
		out[i] = Selection{Process: c.Process, Rule: c.Rules[0]}
	}
	return out
}

// oneDaemon activates the single lowest-ID enabled processor.
type oneDaemon struct{}

func (oneDaemon) Name() string { return "one" }
func (oneDaemon) Select(step int, enabled []Choice) []Selection {
	return []Selection{{Process: enabled[0].Process, Rule: enabled[0].Rules[0]}}
}

func TestNewEngineValidation(t *testing.T) {
	g := graph.Line(3)
	prog := incProgram(1)
	cases := []struct {
		name string
		fn   func()
	}{
		{"wrong length", func() { NewEngine(g, prog, allDaemon{}, intConfig(0, 0)) }},
		{"nil state", func() { NewEngine(g, prog, allDaemon{}, []State{&intState{}, nil, &intState{}}) }},
		{"empty program", func() { NewEngine(g, NewProgram(), allDaemon{}, intConfig(0, 0, 0)) }},
		{"unfrozen graph", func() { NewEngine(graph.New(3), prog, allDaemon{}, intConfig(0, 0, 0)) }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", c.name)
				}
			}()
			c.fn()
		})
	}
}

func TestTerminalConfiguration(t *testing.T) {
	g := graph.Line(2)
	e := NewEngine(g, incProgram(0), allDaemon{}, intConfig(0, 0))
	if !e.Terminal() {
		t.Fatal("expected terminal configuration")
	}
	if e.Step() {
		t.Fatal("Step on terminal configuration should return false")
	}
}

func TestIncRunsToLimit(t *testing.T) {
	g := graph.Line(3)
	e := NewEngine(g, incProgram(5), allDaemon{}, intConfig(0, 2, 5))
	steps, terminal := e.Run(1000, nil)
	if !terminal {
		t.Fatal("expected terminal configuration")
	}
	if steps != 5 { // synchronous: bounded by the max deficit
		t.Errorf("steps = %d, want 5", steps)
	}
	for p := graph.ProcessID(0); p < 3; p++ {
		if val(e, p) != 5 {
			t.Errorf("processor %d value = %d, want 5", p, val(e, p))
		}
	}
	if e.Moves("inc") != 5+3 { // p0 five times, p1 three times, p2 zero
		t.Errorf("inc moves = %d, want 8", e.Moves("inc"))
	}
	if e.TotalMoves() != 8 {
		t.Errorf("total moves = %d, want 8", e.TotalMoves())
	}
}

func TestSynchronousSnapshotAtomicity(t *testing.T) {
	// On a line 0-1-2 with values 7,0,0 and the copy-left protocol, a
	// synchronous step must give 7,7,0 (p2 reads p1's PRE-step value), not
	// 7,7,7.
	g := graph.Line(3)
	e := NewEngine(g, copyLeftProgram(), allDaemon{}, intConfig(7, 0, 0))
	e.Step()
	if got := []int{val(e, 0), val(e, 1), val(e, 2)}; got[0] != 7 || got[1] != 7 || got[2] != 0 {
		t.Fatalf("after one synchronous step: %v, want [7 7 0]", got)
	}
	e.Step()
	if v := val(e, 2); v != 7 {
		t.Fatalf("after two steps p2 = %d, want 7", v)
	}
	if !e.Terminal() {
		t.Fatal("expected terminal configuration after propagation")
	}
}

func TestMaxPropagationFromArbitraryConfig(t *testing.T) {
	g := graph.Ring(6)
	e := NewEngine(g, maxProgram(), allDaemon{}, intConfig(3, 9, 1, 4, 1, 5))
	_, terminal := e.Run(100, nil)
	if !terminal {
		t.Fatal("max propagation did not stabilize")
	}
	for p := graph.ProcessID(0); p < 6; p++ {
		if val(e, p) != 9 {
			t.Errorf("processor %d = %d, want 9", p, val(e, p))
		}
	}
}

func TestLocalityViolationPanics(t *testing.T) {
	g := graph.Line(3) // 0 and 2 are not neighbors
	bad := NewProgram(Rule{
		Name:   "peek",
		Guard:  func(v *View) bool { return v.ID() == 0 && v.Read(2).(*intState).v >= 0 },
		Action: func(v *View) {},
	})
	e := NewEngine(g, bad, allDaemon{}, intConfig(0, 0, 0))
	defer func() {
		if recover() == nil {
			t.Fatal("expected locality-violation panic")
		}
	}()
	e.Step()
}

func TestPriorityFiltering(t *testing.T) {
	// Two always-enabled rules; only the priority-0 one may ever fire.
	prog := NewProgram(
		Rule{Name: "high", Priority: 0,
			Guard:  func(v *View) bool { return v.Self().(*intState).v < 10 },
			Action: func(v *View) { v.Self().(*intState).v++ }},
		Rule{Name: "low", Priority: 1,
			Guard:  func(v *View) bool { return true },
			Action: func(v *View) { v.Self().(*intState).v = -100 }},
	)
	g := graph.Line(2)
	e := NewEngine(g, prog, allDaemon{}, intConfig(0, 0))
	for i := 0; i < 10; i++ {
		e.Step()
	}
	if e.Moves("high") != 20 || val(e, 0) != 10 || val(e, 1) != 10 {
		t.Fatalf("priority-0 rule should fire exclusively while enabled: high=%d v0=%d", e.Moves("high"), val(e, 0))
	}
	// Once "high" is disabled, "low" becomes eligible.
	e.Step()
	if e.Moves("low") != 2 {
		t.Fatalf("low moves = %d, want 2", e.Moves("low"))
	}
}

func TestPriorityOrderingIndependentOfRuleOrder(t *testing.T) {
	// Same as above but with the low-priority rule listed first.
	prog := NewProgram(
		Rule{Name: "low", Priority: 5,
			Guard:  func(v *View) bool { return true },
			Action: func(v *View) { v.Self().(*intState).v = -100 }},
		Rule{Name: "high", Priority: 2,
			Guard:  func(v *View) bool { return v.Self().(*intState).v < 3 },
			Action: func(v *View) { v.Self().(*intState).v++ }},
	)
	g := graph.Line(2)
	e := NewEngine(g, prog, oneDaemon{}, intConfig(0, 5))
	e.Step() // p0 must execute "high" despite "low" being listed first
	if val(e, 0) != 1 {
		t.Fatalf("p0 = %d, want 1 (high-priority rule)", val(e, 0))
	}
}

func TestEventsAndSubscribe(t *testing.T) {
	prog := NewProgram(Rule{
		Name:  "emit",
		Guard: func(v *View) bool { return v.Self().(*intState).v == 0 },
		Action: func(v *View) {
			v.Emit("ping", v.ID())
			v.Self().(*intState).v = 1
		},
	})
	g := graph.Line(3)
	e := NewEngine(g, prog, allDaemon{}, intConfig(0, 0, 0))
	var pings, fires int
	e.Subscribe(func(ev Event) {
		switch ev.Kind {
		case "ping":
			pings++
			if ev.Rule != "emit" {
				t.Errorf("ping event rule = %q, want emit", ev.Rule)
			}
			if ev.Payload.(graph.ProcessID) != ev.Process {
				t.Errorf("payload mismatch: %v vs %v", ev.Payload, ev.Process)
			}
		case "fire":
			fires++
		}
	})
	e.Run(10, nil)
	if pings != 3 || fires != 3 {
		t.Fatalf("pings=%d fires=%d, want 3 and 3", pings, fires)
	}
}

func TestEmitOutsideActionPanics(t *testing.T) {
	v := &View{}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	v.Emit("x", nil)
}

func TestRoundCountingCentralDaemon(t *testing.T) {
	// All 4 processors continuously enabled until each hits the limit; a
	// central daemon serves one per step, so each round is 4 steps while
	// everyone stays enabled.
	g := graph.Ring(4)
	e := NewEngine(g, incProgram(3), NewTestRoundRobin(), intConfig(0, 0, 0, 0))
	_, terminal := e.Run(100, nil)
	if !terminal {
		t.Fatal("did not terminate")
	}
	if e.Steps() != 12 {
		t.Fatalf("steps = %d, want 12", e.Steps())
	}
	if e.Rounds() != 3 {
		t.Fatalf("rounds = %d, want 3", e.Rounds())
	}
}

func TestRoundCountingSynchronous(t *testing.T) {
	g := graph.Ring(4)
	e := NewEngine(g, incProgram(3), allDaemon{}, intConfig(0, 0, 0, 0))
	e.Run(100, nil)
	if e.Rounds() != 3 {
		t.Fatalf("rounds = %d, want 3 (every synchronous step is a round)", e.Rounds())
	}
}

func TestNeutralizationCountsTowardRound(t *testing.T) {
	// Line 0-1; p0 has "set p0=1" enabled; p1's rule is enabled only while
	// p0's value is 0. Serving p0 neutralizes p1: the round must complete
	// without p1 ever executing.
	prog := NewProgram(
		Rule{Name: "a",
			Guard:  func(v *View) bool { return v.ID() == 0 && v.Self().(*intState).v == 0 },
			Action: func(v *View) { v.Self().(*intState).v = 1 }},
		Rule{Name: "b",
			Guard:  func(v *View) bool { return v.ID() == 1 && v.Read(0).(*intState).v == 0 },
			Action: func(v *View) { v.Self().(*intState).v = 99 }},
	)
	g := graph.Line(2)
	e := NewEngine(g, prog, oneDaemon{}, intConfig(0, 0))
	_, terminal := e.Run(10, nil)
	if !terminal {
		t.Fatal("expected termination")
	}
	if e.Moves("b") != 0 {
		t.Fatal("rule b should never fire")
	}
	if e.Rounds() != 1 {
		t.Fatalf("rounds = %d, want 1 (p1 neutralized in the same round)", e.Rounds())
	}
}

func TestRunStopPredicate(t *testing.T) {
	g := graph.Line(2)
	e := NewEngine(g, incProgram(100), allDaemon{}, intConfig(0, 0))
	steps, terminal := e.Run(1000, func(e *Engine) bool { return val(e, 0) >= 10 })
	if terminal {
		t.Fatal("should have stopped on predicate, not terminality")
	}
	if steps != 10 {
		t.Fatalf("steps = %d, want 10", steps)
	}
}

func TestRunMaxSteps(t *testing.T) {
	g := graph.Line(2)
	e := NewEngine(g, incProgram(1000), allDaemon{}, intConfig(0, 0))
	steps, terminal := e.Run(7, nil)
	if terminal || steps != 7 {
		t.Fatalf("steps=%d terminal=%v, want 7,false", steps, terminal)
	}
}

func TestDaemonValidation(t *testing.T) {
	g := graph.Line(2)
	cases := []struct {
		name string
		d    Daemon
	}{
		{"empty selection", badDaemon{mode: "empty"}},
		{"disabled process", badDaemon{mode: "disabled"}},
		{"bad rule", badDaemon{mode: "badrule"}},
		{"duplicate process", badDaemon{mode: "dup"}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			e := NewEngine(g, incProgram(5), c.d, intConfig(0, 5))
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", c.name)
				}
			}()
			e.Step()
		})
	}
}

type badDaemon struct{ mode string }

func (d badDaemon) Name() string { return "bad-" + d.mode }
func (d badDaemon) Select(step int, enabled []Choice) []Selection {
	switch d.mode {
	case "empty":
		return nil
	case "disabled":
		return []Selection{{Process: 1, Rule: 0}} // p1 is at the limit, disabled
	case "badrule":
		return []Selection{{Process: enabled[0].Process, Rule: 999}}
	case "dup":
		c := enabled[0]
		return []Selection{{Process: c.Process, Rule: c.Rules[0]}, {Process: c.Process, Rule: c.Rules[0]}}
	}
	return nil
}

func TestComposePreservesRules(t *testing.T) {
	p1 := NewProgram(Rule{Name: "x", Guard: func(*View) bool { return false }, Action: func(*View) {}})
	p2 := NewProgram(
		Rule{Name: "y", Guard: func(*View) bool { return false }, Action: func(*View) {}},
		Rule{Name: "z", Guard: func(*View) bool { return false }, Action: func(*View) {}},
	)
	c := Compose(p1, p2)
	rules := c.Rules()
	if len(rules) != 3 || rules[0].Name != "x" || rules[1].Name != "y" || rules[2].Name != "z" {
		t.Fatalf("composed rules wrong: %+v", rules)
	}
}

func TestEnabledRuleNames(t *testing.T) {
	g := graph.Line(2)
	e := NewEngine(g, incProgram(5), allDaemon{}, intConfig(0, 5))
	if names := e.EnabledRuleNames(0); len(names) != 1 || names[0] != "inc" {
		t.Fatalf("EnabledRuleNames(0) = %v", names)
	}
	if names := e.EnabledRuleNames(1); len(names) != 0 {
		t.Fatalf("EnabledRuleNames(1) = %v, want empty", names)
	}
}

func TestSetStateOf(t *testing.T) {
	g := graph.Line(2)
	e := NewEngine(g, incProgram(5), allDaemon{}, intConfig(5, 5))
	if !e.Terminal() {
		t.Fatal("expected terminal")
	}
	e.SetStateOf(0, &intState{v: 0}) // fault injection
	if e.Terminal() {
		t.Fatal("expected enabled after fault injection")
	}
}

// NewTestRoundRobin is a minimal central round-robin daemon local to the
// package tests (the real one lives in internal/daemon, which depends on
// this package).
func NewTestRoundRobin() Daemon { return &testRR{} }

type testRR struct{ next graph.ProcessID }

func (d *testRR) Name() string { return "test-rr" }
func (d *testRR) Select(step int, enabled []Choice) []Selection {
	best := enabled[0]
	found := false
	for _, c := range enabled {
		if c.Process >= d.next {
			best = c
			found = true
			break
		}
	}
	if !found {
		best = enabled[0]
	}
	d.next = best.Process + 1
	return []Selection{{Process: best.Process, Rule: best.Rules[0]}}
}

func TestThreePriorityClasses(t *testing.T) {
	// Priorities 0 < 1 < 2: each class runs only when all higher classes
	// are disabled at that processor.
	prog := NewProgram(
		Rule{Name: "p0", Priority: 0,
			Guard:  func(v *View) bool { return v.Self().(*intState).v < 2 },
			Action: func(v *View) { v.Self().(*intState).v++ }},
		Rule{Name: "p1", Priority: 1,
			Guard:  func(v *View) bool { return v.Self().(*intState).v < 4 },
			Action: func(v *View) { v.Self().(*intState).v++ }},
		Rule{Name: "p2", Priority: 2,
			Guard:  func(v *View) bool { return v.Self().(*intState).v < 6 },
			Action: func(v *View) { v.Self().(*intState).v++ }},
	)
	g := graph.Line(2)
	e := NewEngine(g, prog, oneDaemon{}, intConfig(0, 6))
	order := []string{}
	e.Subscribe(func(ev Event) {
		if ev.Kind == "fire" {
			order = append(order, ev.Rule)
		}
	})
	e.Run(100, nil)
	want := []string{"p0", "p0", "p1", "p1", "p2", "p2"}
	if len(order) != len(want) {
		t.Fatalf("fired %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("fired %v, want %v", order, want)
		}
	}
}

func TestRoundsNeverExceedSteps(t *testing.T) {
	g := graph.Ring(5)
	e := NewEngine(g, maxProgram(), NewTestRoundRobin(), intConfig(5, 1, 4, 2, 3))
	for e.Step() {
		if e.Rounds() > e.Steps() {
			t.Fatalf("rounds %d > steps %d", e.Rounds(), e.Steps())
		}
	}
}

func TestSynchronousRoundEqualsStep(t *testing.T) {
	// Under a daemon that fires every enabled processor, every step
	// completes a round.
	g := graph.Ring(4)
	e := NewEngine(g, incProgram(7), allDaemon{}, intConfig(0, 3, 5, 1))
	e.Run(1000, nil)
	if e.Rounds() != e.Steps() {
		t.Fatalf("rounds %d != steps %d under the synchronous daemon", e.Rounds(), e.Steps())
	}
}

func TestMoveCountsSnapshot(t *testing.T) {
	g := graph.Line(2)
	e := NewEngine(g, incProgram(2), allDaemon{}, intConfig(0, 1))
	e.Run(100, nil)
	mc := e.MoveCounts()
	if mc["inc"] != 3 {
		t.Fatalf("MoveCounts = %v", mc)
	}
	mc["inc"] = 999 // must be a copy
	if e.Moves("inc") != 3 {
		t.Fatal("MoveCounts must return a copy")
	}
	if e.Graph() != g {
		t.Fatal("Graph accessor wrong")
	}
}

func TestViewStepAndGraphAccessors(t *testing.T) {
	g := graph.Line(2)
	var sawStep, sawN int
	prog := NewProgram(Rule{
		Name:  "probe",
		Guard: func(v *View) bool { return v.Self().(*intState).v == 0 },
		Action: func(v *View) {
			sawStep = v.Step()
			sawN = v.Graph().N()
			v.Self().(*intState).v = 1
		},
	})
	e := NewEngine(g, prog, oneDaemon{}, intConfig(0, 1))
	e.Step()
	if sawStep != 0 || sawN != 2 {
		t.Fatalf("view accessors: step=%d n=%d", sawStep, sawN)
	}
}
