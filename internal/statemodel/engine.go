package statemodel

import (
	"fmt"
	"os"
	"sort"
	"strings"
	"testing"

	"ssmfp/internal/graph"
	"ssmfp/internal/obs"
)

// Stats counts the enabled-set work an engine has performed. GuardEvals is
// the headline number: the naive engine pays N·R guard invocations per
// step, the incremental engine only re-evaluates the closed neighborhoods
// of the processors that executed or were mutated. Self-check sweeps are
// excluded from every counter so checked and unchecked runs report the
// same work.
type Stats struct {
	Steps      int   // engine steps executed
	FullScans  int   // complete enabled-set rebuilds (all N processors)
	Flushes    int   // incremental cache flushes (dirty neighborhoods only)
	GuardEvals int64 // guard invocations, full scans and flushes combined

	ProcsEvaluated int64 // processors whose choice was (re-)computed
	ProcsSkipped   int64 // processors served from the cache during flushes
	DirtyMarks     int64 // cumulative dirty-set sizes at flush time

	SelfChecks int // naive recomputations performed by the self-check mode

	// Sharded-engine counters (zero on a serial engine).
	ParallelBatches int   // non-adjacent execution batches run concurrently
	ParallelMoves   int64 // selections executed through the parallel path
	BoundaryChecks  int   // batches re-verified by the boundary-conflict oracle
}

// Engine executes a Program on a Graph under a Daemon, starting from an
// arbitrary initial configuration (the essence of stabilization: the
// initial states are inputs, not something the engine sanitizes).
//
// By default the engine maintains the enabled-Choice set incrementally:
// after a step only the closed neighborhoods of the processors that
// executed (or whose state was replaced or handed out for mutation) are
// re-evaluated, since a guard at p reads only N[p] — the locality that
// View.Read enforces on protocol code. WithIncremental(false) restores
// the naive full scan per step; WithSelfCheck(true) — the default under
// `go test` and when SSMFP_PARANOID is set — recomputes the enabled set
// naively every step and panics with a minimal diff on any divergence.
//
// WithShards(k, seed) turns on the sharded parallel step engine (see
// parallel.go): guard scans and non-adjacent action batches execute
// concurrently across workers, with results merged in canonical order so
// the execution stays bit-identical to the serial engine at any k.
type Engine struct {
	g       *graph.Graph
	program Program
	rules   []Rule
	daemon  Daemon
	states  []State

	step      int
	rounds    int
	moves     map[string]int // rule name -> executions
	listeners []func(Event)
	bus       *obs.Bus

	// round accounting: the set of processors enabled at the start of the
	// current round that have neither executed nor been neutralized yet.
	roundPending map[graph.ProcessID]bool
	roundOpen    bool
	lastEnabled  []Choice
	inStep       bool // Rounds() settles lazily only between steps

	// incremental enabled-set cache
	incremental  bool
	selfCheck    bool
	enabledValid bool
	enabledList  []Choice // memoized enabled set; valid iff enabledValid
	dirty        []bool
	dirtyList    []graph.ProcessID
	stats        Stats

	// sharded parallel execution (parallel.go); nil = serial engine
	part          *graph.Partition
	boundaryCheck *bool // nil = follow selfCheck
}

// EngineOption configures an Engine at construction time.
type EngineOption func(*Engine)

// WithIncremental toggles the incremental enabled-set cache (default on;
// the environment variable SSMFP_INCREMENTAL=0 flips the default off).
func WithIncremental(on bool) EngineOption {
	return func(e *Engine) { e.incremental = on }
}

// WithSelfCheck toggles the differential self-check: every Step recomputes
// the enabled set with the naive full scan and panics with a minimal diff
// if the incremental cache diverged. The default is on under `go test`
// (testing.Testing()) and when SSMFP_PARANOID is set, off otherwise.
func WithSelfCheck(on bool) EngineOption {
	return func(e *Engine) { e.selfCheck = on }
}

// NewEngine builds an engine over g running program under daemon, with the
// given initial configuration (one State per processor, indexed by ID).
func NewEngine(g *graph.Graph, program Program, daemon Daemon, initial []State, opts ...EngineOption) *Engine {
	if !g.Frozen() {
		panic("statemodel: NewEngine requires a frozen graph")
	}
	if len(initial) != g.N() {
		panic(fmt.Sprintf("statemodel: initial configuration has %d states, graph has %d processors", len(initial), g.N()))
	}
	for p, s := range initial {
		if s == nil {
			panic(fmt.Sprintf("statemodel: nil initial state for processor %d", p))
		}
	}
	rules := program.Rules()
	if len(rules) == 0 {
		panic("statemodel: program has no rules")
	}
	e := &Engine{
		g:            g,
		program:      program,
		rules:        rules,
		daemon:       daemon,
		states:       append([]State(nil), initial...),
		moves:        make(map[string]int),
		roundPending: make(map[graph.ProcessID]bool),
		incremental:  os.Getenv("SSMFP_INCREMENTAL") != "0",
		selfCheck:    testing.Testing() || os.Getenv("SSMFP_PARANOID") != "",
		dirty:        make([]bool, g.N()),
		bus:          obs.NewBus(),
	}
	for _, opt := range opts {
		opt(e)
	}
	return e
}

// Graph returns the topology the engine runs on.
func (e *Engine) Graph() *graph.Graph { return e.g }

// StateOf returns the current state of processor p. Because many callers
// (workload injection, fault injection, tests) mutate the returned state
// in place, the engine conservatively marks p dirty so the incremental
// cache re-evaluates N[p] at the next flush. Use PeekStateOf on hot
// read-only paths.
func (e *Engine) StateOf(p graph.ProcessID) State {
	e.markDirty(p)
	return e.states[p]
}

// PeekStateOf returns the current state of processor p without
// invalidating the incremental cache. The caller must not mutate it.
func (e *Engine) PeekStateOf(p graph.ProcessID) State { return e.states[p] }

// SetStateOf replaces the state of processor p. Intended for scenario
// setup (fault injection between runs); not for use by protocol code.
// Besides invalidating the incremental cache it resets the round
// bookkeeping: the pending set and neutralization baseline describe a
// configuration that no longer exists, so the current partial round is
// abandoned (a round already complete under the old configuration is
// still counted first).
func (e *Engine) SetStateOf(p graph.ProcessID, s State) {
	e.settleRounds()
	e.states[p] = s
	e.Invalidate(p)
}

// Invalidate tells the engine that the states of the given processors were
// (or may have been) mutated behind its back: their closed neighborhoods
// are re-evaluated at the next flush and the round bookkeeping is reset,
// exactly as for SetStateOf. With no arguments the whole enabled-set cache
// is dropped.
func (e *Engine) Invalidate(ps ...graph.ProcessID) {
	if len(ps) == 0 {
		e.enabledValid = false
		e.clearDirty()
	} else {
		for _, p := range ps {
			e.markDirty(p)
		}
	}
	e.resetRoundBookkeeping()
}

func (e *Engine) resetRoundBookkeeping() {
	for p := range e.roundPending {
		delete(e.roundPending, p)
	}
	e.roundOpen = false
	e.lastEnabled = nil
}

// Steps returns the number of executed steps.
func (e *Engine) Steps() int { return e.step }

// Rounds returns the number of completed rounds (see package comment).
// Between steps the count is settled first: a round whose pending
// processors have all executed or been neutralized is closed immediately
// rather than at the start of the next step, so the count is exact even at
// a terminal configuration that no further Step call will visit. During a
// step (i.e. inside event listeners) the raw count is returned.
func (e *Engine) Rounds() int {
	if !e.inStep {
		e.settleRounds()
	}
	return e.rounds
}

// settleRounds closes the current round if it is already complete under
// the current configuration.
func (e *Engine) settleRounds() {
	if !e.roundOpen {
		return
	}
	e.closeRoundBookkeeping(e.enabledCurrent())
}

// Moves returns how many times the named rule has executed.
func (e *Engine) Moves(rule string) int { return e.moves[rule] }

// TotalMoves returns the total number of executed actions.
func (e *Engine) TotalMoves() int {
	t := 0
	for _, c := range e.moves {
		t += c
	}
	return t
}

// MoveCounts returns a copy of the per-rule execution counters.
func (e *Engine) MoveCounts() map[string]int {
	out := make(map[string]int, len(e.moves))
	for k, v := range e.moves {
		out[k] = v
	}
	return out
}

// Stats returns a copy of the instrumentation counters.
func (e *Engine) Stats() Stats { return e.stats }

// Subscribe registers a listener invoked for every event emitted by actions
// (in emission order) and for every rule execution (kind "fire"). This is
// the legacy stringly-typed channel, kept as a compatibility shim; new
// consumers should subscribe to the typed bus via Obs.
func (e *Engine) Subscribe(fn func(Event)) { e.listeners = append(e.listeners, fn) }

// Obs returns the engine's typed event bus. With no subscribers the bus
// costs one atomic load per step (the zero-subscriber fast path); with
// subscribers the engine publishes, in commit order: the actions' own
// typed events (stamped with step, round, processor and rule), one
// obs.KindFire per selection, one obs.KindStep per step, and one
// obs.KindRound at every round boundary.
func (e *Engine) Obs() *obs.Bus { return e.bus }

func (e *Engine) publish(ev Event) {
	for _, fn := range e.listeners {
		fn(ev)
	}
}

// --- incremental enabled-set cache ------------------------------------

func (e *Engine) markDirty(p graph.ProcessID) {
	if !e.incremental || !e.enabledValid || e.dirty[p] {
		return
	}
	e.dirty[p] = true
	e.dirtyList = append(e.dirtyList, p)
}

func (e *Engine) clearDirty() {
	for _, p := range e.dirtyList {
		e.dirty[p] = false
	}
	e.dirtyList = e.dirtyList[:0]
}

// enabledCurrent returns the enabled choices of the current configuration.
// In incremental mode the memoized list is returned, flushing any dirty
// closed neighborhoods first; callers inside the engine must not mutate
// it. Every rebuild allocates a fresh slice, so a list handed out before a
// flush (e.g. the pre-step set a Step holds) stays intact.
func (e *Engine) enabledCurrent() []Choice {
	if !e.incremental {
		e.stats.FullScans++
		e.stats.ProcsEvaluated += int64(e.g.N())
		return e.fullScan()
	}
	if !e.enabledValid {
		e.stats.FullScans++
		e.stats.ProcsEvaluated += int64(e.g.N())
		e.enabledList = e.fullScan()
		e.enabledValid = true
		e.clearDirty()
		return e.enabledList
	}
	if len(e.dirtyList) > 0 {
		e.stats.Flushes++
		e.stats.DirtyMarks += int64(len(e.dirtyList))
		var out []Choice
		var evaluated int
		if e.part != nil {
			out, evaluated = e.parFlushEnabled(e.enabledList, e.dirtyList, &e.stats.GuardEvals)
		} else {
			out, evaluated = enabledDelta(e.g, e.rules, e.states, e.enabledList, e.dirtyList, e.step, &e.stats.GuardEvals)
		}
		e.stats.ProcsEvaluated += int64(evaluated)
		e.stats.ProcsSkipped += int64(e.g.N() - evaluated)
		e.enabledList = out
		e.clearDirty()
	}
	return e.enabledList
}

// fullScan computes the complete enabled set, sharded across workers
// when the engine is parallel and the graph is large enough to pay for
// the fan-out. Both paths yield the same list and guard-evaluation
// count.
func (e *Engine) fullScan() []Choice {
	if e.part != nil && e.g.N() >= parScanMinProcs {
		return e.parScanEnabled(&e.stats.GuardEvals)
	}
	return scanEnabled(e.g, e.rules, e.states, e.step, &e.stats.GuardEvals)
}

// selfCheckEnabled recomputes the enabled set with the naive full scan and
// panics with a minimal diff if the incremental cache diverged. The sweep
// bypasses the instrumentation counters.
func (e *Engine) selfCheckEnabled(got []Choice) {
	e.stats.SelfChecks++
	want := scanEnabled(e.g, e.rules, e.states, e.step, nil)
	if diff := diffEnabled(e.rules, want, got); diff != "" {
		panic(fmt.Sprintf("statemodel: incremental enabled-set divergence at step %d (self-check):\n%s", e.step, diff))
	}
}

// diffEnabled renders the per-processor differences between two enabled
// sets (both sorted by processor ID); empty means identical.
func diffEnabled(rules []Rule, want, got []Choice) string {
	names := func(c Choice) string {
		parts := make([]string, len(c.Rules))
		for i, r := range c.Rules {
			parts[i] = rules[r].Name
		}
		return "[" + strings.Join(parts, " ") + "]"
	}
	var sb strings.Builder
	wi, gi := 0, 0
	for wi < len(want) || gi < len(got) {
		switch {
		case gi >= len(got) || (wi < len(want) && want[wi].Process < got[gi].Process):
			fmt.Fprintf(&sb, "  p%d: naive=%s incremental=[]\n", want[wi].Process, names(want[wi]))
			wi++
		case wi >= len(want) || got[gi].Process < want[wi].Process:
			fmt.Fprintf(&sb, "  p%d: naive=[] incremental=%s\n", got[gi].Process, names(got[gi]))
			gi++
		default:
			if !equalInts(want[wi].Rules, got[gi].Rules) {
				fmt.Fprintf(&sb, "  p%d: naive=%s incremental=%s\n", want[wi].Process, names(want[wi]), names(got[gi]))
			}
			wi++
			gi++
		}
	}
	return sb.String()
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Enabled computes the Choice list of the current configuration: every
// processor with at least one enabled rule, offering only its minimal
// enabled priority class. Processors appear in ascending ID order and rule
// indices in program order, so the result is deterministic. The returned
// slice is the caller's to keep.
func (e *Engine) Enabled() []Choice {
	cur := e.enabledCurrent()
	out := make([]Choice, len(cur))
	for i, c := range cur {
		out[i] = Choice{Process: c.Process, Rules: append([]int(nil), c.Rules...)}
	}
	return out
}

// Terminal reports whether no action is enabled in the current
// configuration.
func (e *Engine) Terminal() bool { return len(e.enabledCurrent()) == 0 }

// Step executes one atomic step: compute the enabled set, let the daemon
// select, execute the selected actions against the pre-step snapshot, and
// commit. It returns false (and does nothing) if the configuration is
// terminal.
func (e *Engine) Step() bool {
	e.inStep = true
	defer func() { e.inStep = false }()

	enabled := e.enabledCurrent()
	if e.incremental && e.selfCheck {
		e.selfCheckEnabled(enabled)
	}
	e.closeRoundBookkeeping(enabled)
	if len(enabled) == 0 {
		return false
	}
	if !e.roundOpen {
		e.openRound(enabled)
	}

	sels := e.daemon.Select(e.step, enabled)
	e.validateSelections(enabled, sels)

	// Execute all selected actions against the same pre-step snapshot.
	snapshot := e.states
	newStates := make(map[graph.ProcessID]State, len(sels))
	var events []Event
	observing := e.bus.Active()
	var typed []obs.Event
	if e.part != nil && len(sels) > 1 {
		// Sharded path: execute non-adjacent batches concurrently into
		// per-selection slots, then merge in canonical selection order so
		// the commit, the event stream, and the move counts are identical
		// to the serial loop below.
		results := e.executeParallel(sels, snapshot, observing)
		for i, sel := range sels {
			newStates[sel.Process] = results[i].state
			events = append(events, results[i].events...)
			e.moves[e.rules[sel.Rule].Name]++
			if observing {
				typed = append(typed, results[i].typed...)
			}
		}
	} else {
		e.executeSerial(sels, snapshot, observing, newStates, &events, &typed)
	}
	for p, s := range newStates {
		e.states[p] = s
		e.markDirty(p)
	}
	for _, sel := range sels {
		delete(e.roundPending, sel.Process)
	}
	e.rememberEnabled(enabled)
	for i := range events {
		if events[i].Rule == "" {
			// Events emitted via View.Emit carry the rule of the emitting
			// selection; fill it from the matching fire event if absent.
			events[i].Rule = ruleOf(events, i)
		}
		e.publish(events[i])
	}
	if observing {
		for _, ev := range typed {
			e.bus.Publish(ev)
		}
		e.bus.Publish(obs.Event{Kind: obs.KindStep, Step: e.step, Round: e.rounds, Count: len(sels)})
	}
	e.step++
	e.stats.Steps++
	return true
}

// executeSerial is the original single-goroutine execution loop.
func (e *Engine) executeSerial(sels []Selection, snapshot []State, observing bool, newStates map[graph.ProcessID]State, eventsOut *[]Event, typedOut *[]obs.Event) {
	events := *eventsOut
	typed := *typedOut
	for _, sel := range sels {
		r := e.rules[sel.Rule]
		v := &View{
			id:       sel.Process,
			g:        e.g,
			snapshot: snapshot,
			self:     snapshot[sel.Process].Clone(),
			step:     e.step,
			events:   &events,
		}
		typedStart := 0
		if observing {
			typedStart = len(typed)
			v.obsBuf = &typed
		}
		// Guards were evaluated on this same snapshot when computing the
		// enabled set, so the action's precondition still holds.
		r.Action(v)
		newStates[sel.Process] = v.self
		events = append(events, Event{Step: e.step, Process: sel.Process, Rule: r.Name, Kind: "fire"})
		e.moves[r.Name]++
		if observing {
			for i := typedStart; i < len(typed); i++ {
				typed[i].Step = e.step
				typed[i].Round = e.rounds
				typed[i].Proc = sel.Process
				typed[i].Rule = r.Name
			}
			typed = append(typed, obs.Event{
				Kind: obs.KindFire, Step: e.step, Round: e.rounds, Proc: sel.Process, Rule: r.Name,
			})
		}
	}
	*eventsOut = events
	*typedOut = typed
}

// ruleOf backfills the rule name for an Emit event from the next "fire"
// event of the same processor in the same step (actions emit before the
// engine appends the fire marker).
func ruleOf(events []Event, i int) string {
	for j := i + 1; j < len(events); j++ {
		if events[j].Kind == "fire" && events[j].Process == events[i].Process {
			return events[j].Rule
		}
	}
	return ""
}

func (e *Engine) validateSelections(enabled []Choice, sels []Selection) {
	if len(sels) == 0 {
		panic(fmt.Sprintf("statemodel: daemon %q selected nothing from a non-empty enabled set", e.daemon.Name()))
	}
	offered := make(map[graph.ProcessID]map[int]bool, len(enabled))
	for _, c := range enabled {
		m := make(map[int]bool, len(c.Rules))
		for _, r := range c.Rules {
			m[r] = true
		}
		offered[c.Process] = m
	}
	seen := make(map[graph.ProcessID]bool, len(sels))
	for _, s := range sels {
		if seen[s.Process] {
			panic(fmt.Sprintf("statemodel: daemon %q selected processor %d twice", e.daemon.Name(), s.Process))
		}
		seen[s.Process] = true
		m, ok := offered[s.Process]
		if !ok {
			panic(fmt.Sprintf("statemodel: daemon %q selected disabled processor %d", e.daemon.Name(), s.Process))
		}
		if !m[s.Rule] {
			panic(fmt.Sprintf("statemodel: daemon %q selected rule %d not enabled at processor %d", e.daemon.Name(), s.Rule, s.Process))
		}
	}
}

// --- round accounting -------------------------------------------------

// rememberEnabled stores the pre-step enabled set so the next step can
// detect neutralizations (enabled before, not enabled after, not executed).
func (e *Engine) rememberEnabled(enabled []Choice) {
	e.lastEnabled = enabled
}

// closeRoundBookkeeping runs when a fresh enabled set is known: any
// processor still pending in the current round that was enabled at the
// previous step and is no longer enabled now was neutralized and leaves
// the round. If the round's pending set empties, the round completes.
func (e *Engine) closeRoundBookkeeping(enabledNow []Choice) {
	if !e.roundOpen {
		return
	}
	if len(e.lastEnabled) > 0 {
		wasEnabled := make(map[graph.ProcessID]bool, len(e.lastEnabled))
		for _, c := range e.lastEnabled {
			wasEnabled[c.Process] = true
		}
		isEnabled := make(map[graph.ProcessID]bool, len(enabledNow))
		for _, c := range enabledNow {
			isEnabled[c.Process] = true
		}
		for p := range e.roundPending {
			if wasEnabled[p] && !isEnabled[p] {
				delete(e.roundPending, p) // neutralized
			}
		}
	}
	if len(e.roundPending) == 0 {
		e.rounds++
		e.roundOpen = false
		if e.bus.Active() {
			e.bus.Publish(obs.Event{Kind: obs.KindRound, Step: e.step, Round: e.rounds})
		}
	}
}

func (e *Engine) openRound(enabled []Choice) {
	for _, c := range enabled {
		e.roundPending[c.Process] = true
	}
	e.roundOpen = true
}

// Run executes steps until the configuration is terminal, the optional stop
// predicate returns true (checked between steps), or maxSteps steps have
// executed. It returns the number of steps executed by this call and
// whether the run ended on a terminal configuration.
func (e *Engine) Run(maxSteps int, stop func(*Engine) bool) (steps int, terminal bool) {
	for steps < maxSteps {
		if stop != nil && stop(e) {
			return steps, false
		}
		if !e.Step() {
			return steps, true
		}
		steps++
	}
	return steps, false
}

// EnabledRuleNames returns the names of the rules currently enabled at p,
// sorted; a debugging and test helper.
func (e *Engine) EnabledRuleNames(p graph.ProcessID) []string {
	c := enabledAtConfig(e.g, e.rules, e.states, p, e.step, nil)
	names := make([]string, 0, len(c.Rules))
	for _, i := range c.Rules {
		names = append(names, e.rules[i].Name)
	}
	sort.Strings(names)
	return names
}
