package statemodel

import (
	"fmt"
	"sort"

	"ssmfp/internal/graph"
)

// Engine executes a Program on a Graph under a Daemon, starting from an
// arbitrary initial configuration (the essence of stabilization: the
// initial states are inputs, not something the engine sanitizes).
type Engine struct {
	g       *graph.Graph
	program Program
	rules   []Rule
	daemon  Daemon
	states  []State

	step      int
	rounds    int
	moves     map[string]int // rule name -> executions
	listeners []func(Event)

	// round accounting: the set of processors enabled at the start of the
	// current round that have neither executed nor been neutralized yet.
	roundPending map[graph.ProcessID]bool
	roundOpen    bool

	// scratch reused across steps
	lastEnabled []Choice
}

// NewEngine builds an engine over g running program under daemon, with the
// given initial configuration (one State per processor, indexed by ID).
func NewEngine(g *graph.Graph, program Program, daemon Daemon, initial []State) *Engine {
	if !g.Frozen() {
		panic("statemodel: NewEngine requires a frozen graph")
	}
	if len(initial) != g.N() {
		panic(fmt.Sprintf("statemodel: initial configuration has %d states, graph has %d processors", len(initial), g.N()))
	}
	for p, s := range initial {
		if s == nil {
			panic(fmt.Sprintf("statemodel: nil initial state for processor %d", p))
		}
	}
	rules := program.Rules()
	if len(rules) == 0 {
		panic("statemodel: program has no rules")
	}
	return &Engine{
		g:            g,
		program:      program,
		rules:        rules,
		daemon:       daemon,
		states:       append([]State(nil), initial...),
		moves:        make(map[string]int),
		roundPending: make(map[graph.ProcessID]bool),
	}
}

// Graph returns the topology the engine runs on.
func (e *Engine) Graph() *graph.Graph { return e.g }

// StateOf returns the current state of processor p. Callers must treat it
// as read-only.
func (e *Engine) StateOf(p graph.ProcessID) State { return e.states[p] }

// SetStateOf replaces the state of processor p. Intended for scenario
// setup (fault injection between runs); not for use by protocol code.
func (e *Engine) SetStateOf(p graph.ProcessID, s State) { e.states[p] = s }

// Steps returns the number of executed steps.
func (e *Engine) Steps() int { return e.step }

// Rounds returns the number of completed rounds (see package comment).
func (e *Engine) Rounds() int { return e.rounds }

// Moves returns how many times the named rule has executed.
func (e *Engine) Moves(rule string) int { return e.moves[rule] }

// TotalMoves returns the total number of executed actions.
func (e *Engine) TotalMoves() int {
	t := 0
	for _, c := range e.moves {
		t += c
	}
	return t
}

// MoveCounts returns a copy of the per-rule execution counters.
func (e *Engine) MoveCounts() map[string]int {
	out := make(map[string]int, len(e.moves))
	for k, v := range e.moves {
		out[k] = v
	}
	return out
}

// Subscribe registers a listener invoked for every event emitted by actions
// (in emission order) and for every rule execution (kind "fire").
func (e *Engine) Subscribe(fn func(Event)) { e.listeners = append(e.listeners, fn) }

func (e *Engine) publish(ev Event) {
	for _, fn := range e.listeners {
		fn(ev)
	}
}

// Enabled computes the Choice list of the current configuration: every
// processor with at least one enabled rule, offering only its minimal
// enabled priority class. Processors appear in ascending ID order and rule
// indices in program order, so the result is deterministic.
func (e *Engine) Enabled() []Choice {
	var enabled []Choice
	for p := 0; p < e.g.N(); p++ {
		c := e.enabledAt(graph.ProcessID(p))
		if len(c.Rules) > 0 {
			enabled = append(enabled, c)
		}
	}
	return enabled
}

func (e *Engine) enabledAt(p graph.ProcessID) Choice {
	return enabledAtConfig(e.g, e.rules, e.states, p, e.step)
}

// Terminal reports whether no action is enabled in the current
// configuration.
func (e *Engine) Terminal() bool { return len(e.Enabled()) == 0 }

// Step executes one atomic step: compute the enabled set, let the daemon
// select, execute the selected actions against the pre-step snapshot, and
// commit. It returns false (and does nothing) if the configuration is
// terminal.
func (e *Engine) Step() bool {
	enabled := e.Enabled()
	e.closeRoundBookkeeping(enabled)
	if len(enabled) == 0 {
		return false
	}
	if !e.roundOpen {
		e.openRound(enabled)
	}

	sels := e.daemon.Select(e.step, enabled)
	e.validateSelections(enabled, sels)

	// Execute all selected actions against the same pre-step snapshot.
	snapshot := e.states
	newStates := make(map[graph.ProcessID]State, len(sels))
	var events []Event
	for _, sel := range sels {
		r := e.rules[sel.Rule]
		v := &View{
			id:       sel.Process,
			g:        e.g,
			snapshot: snapshot,
			self:     snapshot[sel.Process].Clone(),
			step:     e.step,
			events:   &events,
		}
		// Guards were evaluated on this same snapshot when computing the
		// enabled set, so the action's precondition still holds.
		r.Action(v)
		newStates[sel.Process] = v.self
		events = append(events, Event{Step: e.step, Process: sel.Process, Rule: r.Name, Kind: "fire"})
		e.moves[r.Name]++
	}
	for p, s := range newStates {
		e.states[p] = s
	}
	for _, sel := range sels {
		delete(e.roundPending, sel.Process)
	}
	e.rememberEnabled(enabled)
	for i := range events {
		if events[i].Rule == "" {
			// Events emitted via View.Emit carry the rule of the emitting
			// selection; fill it from the matching fire event if absent.
			events[i].Rule = ruleOf(events, i)
		}
		e.publish(events[i])
	}
	e.step++
	return true
}

// ruleOf backfills the rule name for an Emit event from the next "fire"
// event of the same processor in the same step (actions emit before the
// engine appends the fire marker).
func ruleOf(events []Event, i int) string {
	for j := i + 1; j < len(events); j++ {
		if events[j].Kind == "fire" && events[j].Process == events[i].Process {
			return events[j].Rule
		}
	}
	return ""
}

func (e *Engine) validateSelections(enabled []Choice, sels []Selection) {
	if len(sels) == 0 {
		panic(fmt.Sprintf("statemodel: daemon %q selected nothing from a non-empty enabled set", e.daemon.Name()))
	}
	offered := make(map[graph.ProcessID]map[int]bool, len(enabled))
	for _, c := range enabled {
		m := make(map[int]bool, len(c.Rules))
		for _, r := range c.Rules {
			m[r] = true
		}
		offered[c.Process] = m
	}
	seen := make(map[graph.ProcessID]bool, len(sels))
	for _, s := range sels {
		if seen[s.Process] {
			panic(fmt.Sprintf("statemodel: daemon %q selected processor %d twice", e.daemon.Name(), s.Process))
		}
		seen[s.Process] = true
		m, ok := offered[s.Process]
		if !ok {
			panic(fmt.Sprintf("statemodel: daemon %q selected disabled processor %d", e.daemon.Name(), s.Process))
		}
		if !m[s.Rule] {
			panic(fmt.Sprintf("statemodel: daemon %q selected rule %d not enabled at processor %d", e.daemon.Name(), s.Rule, s.Process))
		}
	}
}

// --- round accounting -------------------------------------------------

// rememberEnabled stores the pre-step enabled set so the next step can
// detect neutralizations (enabled before, not enabled after, not executed).
func (e *Engine) rememberEnabled(enabled []Choice) {
	e.lastEnabled = enabled
}

// closeRoundBookkeeping runs at the start of a step, when the new enabled
// set is known: any processor still pending in the current round that was
// enabled at the previous step and is no longer enabled now was neutralized
// and leaves the round. If the round's pending set empties, the round
// completes.
func (e *Engine) closeRoundBookkeeping(enabledNow []Choice) {
	if !e.roundOpen {
		return
	}
	if len(e.lastEnabled) > 0 {
		wasEnabled := make(map[graph.ProcessID]bool, len(e.lastEnabled))
		for _, c := range e.lastEnabled {
			wasEnabled[c.Process] = true
		}
		isEnabled := make(map[graph.ProcessID]bool, len(enabledNow))
		for _, c := range enabledNow {
			isEnabled[c.Process] = true
		}
		for p := range e.roundPending {
			if wasEnabled[p] && !isEnabled[p] {
				delete(e.roundPending, p) // neutralized
			}
		}
	}
	if len(e.roundPending) == 0 {
		e.rounds++
		e.roundOpen = false
	}
}

func (e *Engine) openRound(enabled []Choice) {
	for _, c := range enabled {
		e.roundPending[c.Process] = true
	}
	e.roundOpen = true
}

// Run executes steps until the configuration is terminal, the optional stop
// predicate returns true (checked between steps), or maxSteps steps have
// executed. It returns the number of steps executed by this call and
// whether the run ended on a terminal configuration.
func (e *Engine) Run(maxSteps int, stop func(*Engine) bool) (steps int, terminal bool) {
	for steps < maxSteps {
		if stop != nil && stop(e) {
			return steps, false
		}
		if !e.Step() {
			return steps, true
		}
		steps++
	}
	return steps, false
}

// EnabledRuleNames returns the names of the rules currently enabled at p,
// sorted; a debugging and test helper.
func (e *Engine) EnabledRuleNames(p graph.ProcessID) []string {
	c := e.enabledAt(p)
	names := make([]string, 0, len(c.Rules))
	for _, i := range c.Rules {
		names = append(names, e.rules[i].Name)
	}
	sort.Strings(names)
	return names
}
