package statemodel

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"ssmfp/internal/graph"
)

// TestIncrementalDefaults pins the engine's default configuration under
// `go test`: the incremental cache on, and the differential self-check on
// (testing.Testing() is true here), actually running every step.
func TestIncrementalDefaults(t *testing.T) {
	g := graph.Ring(4)
	e := NewEngine(g, incProgram(2), allDaemon{}, intConfig(0, 0, 0, 0))
	e.Run(100, nil)
	st := e.Stats()
	if st.SelfChecks == 0 {
		t.Fatal("self-check mode should be on by default under go test")
	}
	if st.Flushes == 0 {
		t.Fatal("incremental mode should be on by default (no flushes recorded)")
	}
	if st.Steps != e.Steps() {
		t.Fatalf("stats steps %d != engine steps %d", st.Steps, e.Steps())
	}
}

// TestIncrementalMatchesNaive runs the same scenarios under the
// incremental and the naive engine and requires identical trajectories:
// same steps, rounds, move counts and final states.
func TestIncrementalMatchesNaive(t *testing.T) {
	type scenario struct {
		name string
		g    *graph.Graph
		prog Program
		cfg  func(rng *rand.Rand, n int) []State
		d    func() Daemon
	}
	randCfg := func(rng *rand.Rand, n int) []State {
		cfg := make([]State, n)
		for i := range cfg {
			cfg[i] = &intState{v: rng.Intn(10)}
		}
		return cfg
	}
	scenarios := []scenario{
		{"max-ring-all", graph.Ring(7), maxProgram(), randCfg, func() Daemon { return allDaemon{} }},
		{"max-grid-rr", graph.Grid(3, 4), maxProgram(), randCfg, func() Daemon { return NewTestRoundRobin() }},
		{"max-star-one", graph.Star(9), maxProgram(), randCfg, func() Daemon { return oneDaemon{} }},
		{"inc-line-rr", graph.Line(6), incProgram(12), randCfg, func() Daemon { return NewTestRoundRobin() }},
		{"copyleft-line-all", graph.Line(8), copyLeftProgram(), randCfg, func() Daemon { return allDaemon{} }},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			for seed := int64(0); seed < 5; seed++ {
				rng := rand.New(rand.NewSource(seed))
				cfg := sc.cfg(rng, sc.g.N())
				run := func(incremental bool) (*Engine, int, bool) {
					init := make([]State, len(cfg))
					for i, s := range cfg {
						init[i] = s.Clone()
					}
					e := NewEngine(sc.g, sc.prog, sc.d(), init,
						WithIncremental(incremental), WithSelfCheck(incremental))
					steps, terminal := e.Run(500, nil)
					return e, steps, terminal
				}
				ei, si, ti := run(true)
				en, sn, tn := run(false)
				if si != sn || ti != tn || ei.Rounds() != en.Rounds() || ei.TotalMoves() != en.TotalMoves() {
					t.Fatalf("seed %d: incremental (steps=%d terminal=%v rounds=%d moves=%d) != naive (steps=%d terminal=%v rounds=%d moves=%d)",
						seed, si, ti, ei.Rounds(), ei.TotalMoves(), sn, tn, en.Rounds(), en.TotalMoves())
				}
				for p := 0; p < sc.g.N(); p++ {
					if vi, vn := val(ei, graph.ProcessID(p)), val(en, graph.ProcessID(p)); vi != vn {
						t.Fatalf("seed %d: final state of p%d differs: incremental %d, naive %d", seed, p, vi, vn)
					}
				}
				if st := ei.Stats(); sc.g.N() > 2 && si > 0 && st.ProcsSkipped == 0 {
					t.Fatalf("seed %d: incremental run skipped no processors (stats %+v)", seed, st)
				}
			}
		})
	}
}

// TestSelfCheckPanicsOnDivergence forces a cache divergence with a guard
// that depends on state outside the engine's view (a locality violation by
// construction, which the incremental cache cannot track) and requires the
// self-check to panic with a diff naming the stale processor.
func TestSelfCheckPanicsOnDivergence(t *testing.T) {
	hidden := true
	prog := NewProgram(Rule{
		Name:   "impure",
		Guard:  func(v *View) bool { return hidden },
		Action: func(v *View) {},
	})
	// Line(3) with the daemon serving p0: after the step only N[0]={0,1} is
	// re-evaluated, so p2's cached enabledness goes stale when hidden flips.
	g := graph.Line(3)
	e := NewEngine(g, prog, oneDaemon{}, intConfig(0, 0, 0), WithIncremental(true), WithSelfCheck(true))
	if !e.Step() {
		t.Fatal("first step should execute")
	}
	hidden = false // guards change behind the engine's back
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected self-check divergence panic")
		}
		msg := fmt.Sprint(r)
		if !strings.Contains(msg, "divergence") || !strings.Contains(msg, "impure") {
			t.Fatalf("panic message should name the divergence and the stale rule, got: %s", msg)
		}
	}()
	e.Step()
}

// TestStateOfMarksDirty pins the conservative contract of StateOf: callers
// routinely mutate the returned state in place (workload injection, fault
// injection), so the incremental cache must re-evaluate the processor's
// neighborhood afterwards.
func TestStateOfMarksDirty(t *testing.T) {
	g := graph.Line(2)
	e := NewEngine(g, incProgram(5), allDaemon{}, intConfig(5, 5), WithIncremental(true), WithSelfCheck(false))
	if !e.Terminal() {
		t.Fatal("expected terminal start")
	}
	e.StateOf(0).(*intState).v = 0 // in-place mutation, engine not told explicitly
	if e.Terminal() {
		t.Fatal("StateOf must invalidate the cache for the mutated processor")
	}
	if names := e.EnabledRuleNames(0); len(names) != 1 || names[0] != "inc" {
		t.Fatalf("EnabledRuleNames(0) = %v", names)
	}
}

// TestPeekStateOfDoesNotInvalidate pins the companion contract: PeekStateOf
// is the read-only accessor and leaves the cache untouched.
func TestPeekStateOfDoesNotInvalidate(t *testing.T) {
	g := graph.Line(2)
	e := NewEngine(g, incProgram(5), allDaemon{}, intConfig(0, 5), WithIncremental(true), WithSelfCheck(false))
	if e.Terminal() {
		t.Fatal("p0 should be enabled")
	}
	before := e.Stats()
	if got := e.PeekStateOf(0).(*intState).v; got != 0 {
		t.Fatalf("PeekStateOf(0) = %d, want 0", got)
	}
	if e.Terminal() {
		t.Fatal("still enabled")
	}
	after := e.Stats()
	if after.GuardEvals != before.GuardEvals {
		t.Fatalf("PeekStateOf triggered %d guard evaluations", after.GuardEvals-before.GuardEvals)
	}
}

// TestEnabledReturnsCopy: mutating the slice Enabled hands out must not
// corrupt the memoized enabled set.
func TestEnabledReturnsCopy(t *testing.T) {
	g := graph.Line(3)
	e := NewEngine(g, incProgram(1), allDaemon{}, intConfig(0, 0, 0), WithIncremental(true), WithSelfCheck(true))
	en := e.Enabled()
	if len(en) != 3 {
		t.Fatalf("enabled = %v", en)
	}
	en[0].Rules[0] = 999
	en[1] = Choice{Process: 99}
	if !e.Step() { // self-check panics here if the cache was corrupted
		t.Fatal("step should execute")
	}
}

// TestInvalidateRecovers: Invalidate() is the escape hatch after an
// untracked mutation (e.g. through a retained state pointer).
func TestInvalidateRecovers(t *testing.T) {
	g := graph.Line(2)
	e := NewEngine(g, incProgram(5), allDaemon{}, intConfig(5, 5), WithIncremental(true), WithSelfCheck(false))
	if !e.Terminal() {
		t.Fatal("expected terminal start")
	}
	e.PeekStateOf(1).(*intState).v = 0 // illegal: mutation through the read-only accessor
	e.Invalidate(1)
	if e.Terminal() {
		t.Fatal("Invalidate(1) should have re-evaluated p1's neighborhood")
	}
	e.PeekStateOf(1).(*intState).v = 5
	e.Invalidate() // no args: drop the whole cache
	if !e.Terminal() {
		t.Fatal("Invalidate() should have rebuilt the full enabled set")
	}
}

// TestSetStateOfResetsRoundAccounting is the regression test for the
// round-accounting corruption after Engine.SetStateOf: replacing a state
// mid-round used to leave lastEnabled/roundPending stale, so the pending
// processor was mistaken for neutralized and the half-finished round was
// counted.
//
// Line 0-1-2, incProgram(1), initial (0,0,1): p0 and p1 are enabled. The
// one-daemon serves p0, leaving p1 pending in the open round. Replacing
// p1's state with the terminal value must abandon that round, not count
// it: p1 neither executed nor was neutralized by protocol activity.
func TestSetStateOfResetsRoundAccounting(t *testing.T) {
	g := graph.Line(3)
	e := NewEngine(g, incProgram(1), oneDaemon{}, intConfig(0, 0, 1))
	if !e.Step() {
		t.Fatal("first step should execute (p0)")
	}
	if e.Moves("inc") != 1 {
		t.Fatalf("moves = %d, want 1", e.Moves("inc"))
	}
	e.SetStateOf(1, &intState{v: 1}) // fault injection mid-round
	if e.Step() {
		t.Fatal("configuration should be terminal after the replacement")
	}
	if r := e.Rounds(); r != 0 {
		t.Fatalf("rounds = %d, want 0: the interrupted round must be abandoned, not counted", r)
	}
	// A fresh round after the replacement still counts normally.
	e.SetStateOf(2, &intState{v: 0})
	if !e.Step() {
		t.Fatal("p2 should be enabled again")
	}
	if r := e.Rounds(); r != 1 {
		t.Fatalf("rounds = %d, want 1 after the post-fault round completes", r)
	}
}

// TestSetStateOfCountsCompletedRoundFirst: a round that was already
// complete under the old configuration (every pending processor executed)
// is settled before the replacement abandons the bookkeeping.
func TestSetStateOfCountsCompletedRoundFirst(t *testing.T) {
	g := graph.Line(2)
	e := NewEngine(g, incProgram(1), allDaemon{}, intConfig(0, 0))
	if !e.Step() { // both execute: round 1 complete
		t.Fatal("step should execute")
	}
	e.SetStateOf(0, &intState{v: 0})
	if r := e.Rounds(); r != 1 {
		t.Fatalf("rounds = %d, want 1: the round completed before the fault", r)
	}
}

// TestRoundsSettledAtTerminal is the regression test for the Rounds()
// undercount at terminal configurations. Hand-computed execution on the
// line 0-1-2 with incProgram(1), initial (0,0,0), central one-daemon:
//
//	step 0: enabled {0,1,2}, round opens with pending {0,1,2}; p0 fires.
//	step 1: pending {1,2}; p1 fires.
//	step 2: pending {2}; p2 fires — pending empties, the round is over.
//
// The execution is terminal after step 2 and exactly one round elapsed,
// but the engine used to close the round only at the start of the NEXT
// Step call: reading Rounds() right after the final step reported 0.
func TestRoundsSettledAtTerminal(t *testing.T) {
	g := graph.Line(3)
	e := NewEngine(g, incProgram(1), oneDaemon{}, intConfig(0, 0, 0))
	for i := 0; i < 3; i++ {
		if !e.Step() {
			t.Fatalf("step %d should execute", i)
		}
	}
	if e.Steps() != 3 {
		t.Fatalf("steps = %d, want 3", e.Steps())
	}
	if r := e.Rounds(); r != 1 {
		t.Fatalf("rounds = %d, want 1 immediately after the final step", r)
	}
	if !e.Terminal() {
		t.Fatal("expected terminal configuration")
	}
	// A trailing failed Step must not double-count the settled round.
	if e.Step() {
		t.Fatal("expected no further step")
	}
	if r := e.Rounds(); r != 1 {
		t.Fatalf("rounds = %d after trailing failed Step, want 1", r)
	}
}

// TestRoundsSettledAfterNeutralizationAtTerminal covers the second
// terminal shape: the last pending processor leaves the round by
// neutralization, not execution. Line 0-1: serving p0 disables p1's only
// rule; the round is complete at the now-terminal configuration.
func TestRoundsSettledAfterNeutralizationAtTerminal(t *testing.T) {
	prog := NewProgram(
		Rule{Name: "a",
			Guard:  func(v *View) bool { return v.ID() == 0 && v.Self().(*intState).v == 0 },
			Action: func(v *View) { v.Self().(*intState).v = 1 }},
		Rule{Name: "b",
			Guard:  func(v *View) bool { return v.ID() == 1 && v.Read(0).(*intState).v == 0 },
			Action: func(v *View) { v.Self().(*intState).v = 99 }},
	)
	g := graph.Line(2)
	e := NewEngine(g, prog, oneDaemon{}, intConfig(0, 0))
	if !e.Step() {
		t.Fatal("step should execute")
	}
	if r := e.Rounds(); r != 1 {
		t.Fatalf("rounds = %d, want 1: p1 was neutralized, closing the round", r)
	}
	if e.Moves("b") != 0 {
		t.Fatal("rule b must never fire")
	}
}

// TestEnabledDeltaMatchesFullScan drives the shared incremental primitive
// directly over random mutation sequences and compares against EnabledOf.
func TestEnabledDeltaMatchesFullScan(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomConnected(5+rng.Intn(8), 20, rng)
		rules := maxProgram().Rules()
		cfg := make([]State, g.N())
		for i := range cfg {
			cfg[i] = &intState{v: rng.Intn(6)}
		}
		enabled := EnabledOf(g, rules, cfg)
		for step := 0; step < 30; step++ {
			k := 1 + rng.Intn(3)
			changed := make([]graph.ProcessID, 0, k)
			for i := 0; i < k; i++ {
				p := graph.ProcessID(rng.Intn(g.N()))
				cfg[p] = &intState{v: rng.Intn(6)}
				changed = append(changed, p)
			}
			enabled = EnabledDelta(g, rules, cfg, enabled, changed)
			want := EnabledOf(g, rules, cfg)
			if d := diffEnabled(rules, want, enabled); d != "" {
				t.Fatalf("seed %d step %d: delta diverged from full scan:\n%s", seed, step, d)
			}
		}
	}
}

// TestNonIncrementalEngineUnaffected: the naive path must behave exactly
// like the incremental one on the pinned round scenarios.
func TestNonIncrementalEngineUnaffected(t *testing.T) {
	g := graph.Ring(4)
	e := NewEngine(g, incProgram(3), NewTestRoundRobin(), intConfig(0, 0, 0, 0), WithIncremental(false))
	_, terminal := e.Run(100, nil)
	if !terminal || e.Steps() != 12 || e.Rounds() != 3 {
		t.Fatalf("naive engine: steps=%d rounds=%d terminal=%v, want 12/3/true", e.Steps(), e.Rounds(), terminal)
	}
	if st := e.Stats(); st.Flushes != 0 || st.FullScans == 0 {
		t.Fatalf("naive engine stats: %+v", st)
	}
}
