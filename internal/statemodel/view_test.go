package statemodel

import (
	"fmt"
	"strings"
	"testing"

	"ssmfp/internal/graph"
)

// TestViewReadLocality pins View.Read's locality contract in both
// directions: reads of the closed neighborhood succeed, any other read
// panics with a message naming both processors. The incremental engine
// relies on exactly this contract (a guard at p depends only on N[p]), so
// the panic is load-bearing, not cosmetic.
func TestViewReadLocality(t *testing.T) {
	g := graph.Line(4) // 0-1-2-3
	cfg := intConfig(10, 11, 12, 13)
	cases := []struct {
		name      string
		reader    graph.ProcessID
		target    graph.ProcessID
		wantPanic bool
	}{
		{"self", 1, 1, false},
		{"left neighbor", 1, 0, false},
		{"right neighbor", 1, 2, false},
		{"distance two", 0, 2, true},
		{"distance three", 0, 3, true},
		{"reverse non-neighbor", 3, 1, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			v := &View{id: c.reader, g: g, snapshot: cfg}
			defer func() {
				r := recover()
				if c.wantPanic {
					if r == nil {
						t.Fatalf("Read(%d) from %d: expected locality panic", c.target, c.reader)
					}
					msg := fmt.Sprint(r)
					if !strings.Contains(msg, "locality violation") ||
						!strings.Contains(msg, fmt.Sprint(c.reader)) ||
						!strings.Contains(msg, fmt.Sprint(c.target)) {
						t.Fatalf("panic message should name the violation and both processors, got: %s", msg)
					}
					return
				}
				if r != nil {
					t.Fatalf("Read(%d) from %d: unexpected panic %v", c.target, c.reader, r)
				}
			}()
			if got := v.Read(c.target).(*intState).v; got != 10+int(c.target) {
				t.Fatalf("Read(%d) = %d, want %d", c.target, got, 10+int(c.target))
			}
		})
	}
}

// TestRuleOfBackfill pins the emit-backfill behavior: an event emitted via
// View.Emit carries no rule name and the engine fills it from the next
// "fire" marker of the same processor. When the ordering is unexpected —
// no later fire marker for that processor — the rule stays empty rather
// than borrowing another processor's rule. These are the current
// semantics; checkers treat an empty Rule as "unknown origin".
func TestRuleOfBackfill(t *testing.T) {
	fire := func(p graph.ProcessID, rule string) Event {
		return Event{Process: p, Rule: rule, Kind: "fire"}
	}
	emit := func(p graph.ProcessID) Event {
		return Event{Process: p, Kind: "deliver"}
	}
	cases := []struct {
		name   string
		events []Event
		idx    int
		want   string
	}{
		{"emit then own fire", []Event{emit(1), fire(1, "R6@1")}, 0, "R6@1"},
		{"interleaved processors", []Event{emit(1), fire(2, "R1@2"), fire(1, "R6@1")}, 0, "R6@1"},
		{"two emits same step", []Event{emit(1), emit(2), fire(1, "R6@1"), fire(2, "R4@2")}, 1, "R4@2"},
		{"first of two fires wins", []Event{emit(1), fire(1, "R1@1"), fire(1, "R2@1")}, 0, "R1@1"},
		{"no fire at all", []Event{emit(1)}, 0, ""},
		{"only other processor fires", []Event{emit(1), fire(2, "R1@2")}, 0, ""},
		{"fire before emit (unexpected order)", []Event{fire(1, "R6@1"), emit(1)}, 1, ""},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := ruleOf(c.events, c.idx); got != c.want {
				t.Fatalf("ruleOf(%v, %d) = %q, want %q", c.events, c.idx, got, c.want)
			}
		})
	}
}

// TestEngineBackfillsEmitRule drives the backfill end to end: events
// published by the engine carry the emitting rule's name.
func TestEngineBackfillsEmitRule(t *testing.T) {
	prog := NewProgram(Rule{
		Name:  "announce",
		Guard: func(v *View) bool { return v.Self().(*intState).v == 0 },
		Action: func(v *View) {
			v.Emit("hello", nil)
			v.Self().(*intState).v = 1
		},
	})
	g := graph.Line(2)
	e := NewEngine(g, prog, allDaemon{}, intConfig(0, 0))
	var rules []string
	e.Subscribe(func(ev Event) {
		if ev.Kind == "hello" {
			rules = append(rules, ev.Rule)
		}
	})
	e.Run(10, nil)
	if len(rules) != 2 || rules[0] != "announce" || rules[1] != "announce" {
		t.Fatalf("backfilled rules = %v, want [announce announce]", rules)
	}
}
