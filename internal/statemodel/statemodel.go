// Package statemodel implements the locally shared memory model of
// computation from §2.1 of the paper: every processor runs a finite set of
// guarded actions over shared variables, a processor may write only its own
// variables and read its own and its neighbors', and execution proceeds in
// atomic three-phase steps — (i) every processor evaluates its guards on the
// current configuration, (ii) a daemon chooses a non-empty subset of the
// enabled processors, (iii) every chosen processor executes one of its
// enabled actions, all reads referring to the pre-step configuration.
//
// The package also implements the round complexity measure of
// Dolev-Israeli-Moran as modified by Bui-Datta-Petit-Villain: the first
// round of an execution is its minimal prefix in which every processor that
// was enabled at the start of the round has either executed an action or
// been neutralized.
package statemodel

import (
	"fmt"
	"sort"

	"ssmfp/internal/graph"
	"ssmfp/internal/obs"
)

// State is the local state of one processor: the values of its shared
// variables. States must be deep-cloneable so that actions can mutate a
// private copy while every other action in the same step still reads the
// pre-step snapshot.
type State interface {
	Clone() State
}

// Event is an observable side effect emitted by an action, e.g. the
// delivery of a message to the higher layer. Events are how specification
// checkers observe an execution without peeking into protocol internals.
//
// This stringly-typed event is the engine's original observation channel
// and lives on as a compatibility shim: the checker, the trace recorder
// and the fairness oracles consume it via Engine.Subscribe. New consumers
// should use the typed bus instead (Engine.Obs, package obs), which adds
// step/round markers, message values, and a machine-readable JSONL form.
type Event struct {
	Step    int             // step index at which the action executed
	Process graph.ProcessID // processor whose action emitted the event
	Rule    string          // rule name, e.g. "R6"
	Kind    string          // event kind, e.g. "deliver"
	Payload any             // event-specific data
}

// View is a rule's window onto the configuration. During guard evaluation
// it provides read-only access to the processor's own state and its
// neighbors' states (pre-step snapshot). During action execution Self
// returns a private mutable clone; reads of other processors still see the
// pre-step snapshot, which gives the model's composite atomicity.
type View struct {
	id       graph.ProcessID
	g        *graph.Graph
	snapshot []State
	self     State // nil during guard evaluation (fall back to snapshot)
	step     int
	events   *[]Event
	obsBuf   *[]obs.Event // typed-event buffer; nil when no bus subscriber is attached
}

// ID returns the processor evaluating or executing the rule.
func (v *View) ID() graph.ProcessID { return v.id }

// Step returns the index of the current step.
func (v *View) Step() int { return v.step }

// Graph returns the network topology (identities, neighbor sets, Δ, D are
// assumed known to every processor, per §2 of the paper).
func (v *View) Graph() *graph.Graph { return v.g }

// Neighbors returns N_p for the executing processor.
func (v *View) Neighbors() []graph.ProcessID { return v.g.Neighbors(v.id) }

// Self returns the processor's own state: the snapshot during guard
// evaluation, a private mutable clone during action execution.
func (v *View) Self() State {
	if v.self != nil {
		return v.self
	}
	return v.snapshot[v.id]
}

// Read returns the pre-step state of processor q. The shared memory model
// only allows a processor to read its own variables and its neighbors';
// Read panics on any other access, catching locality violations in
// protocol code.
func (v *View) Read(q graph.ProcessID) State {
	if q != v.id && !v.g.HasEdge(v.id, q) {
		panic(fmt.Sprintf("statemodel: locality violation: %d read state of non-neighbor %d", v.id, q))
	}
	return v.snapshot[q]
}

// Emit records an observable event; only meaningful during action
// execution.
func (v *View) Emit(kind string, payload any) {
	if v.events == nil {
		panic("statemodel: Emit outside action execution")
	}
	*v.events = append(*v.events, Event{Step: v.step, Process: v.id, Kind: kind, Payload: payload})
}

// Observing reports whether a typed-event consumer is attached to the
// executing engine. Actions use it to skip observability work — including
// the construction of obs.Event values — on the zero-subscriber fast
// path. Always false during guard evaluation.
func (v *View) Observing() bool { return v.obsBuf != nil }

// Observe records a typed observability event; a no-op when no consumer
// is attached. The engine stamps Step, Round, Proc and Rule after the
// action returns, so actions only fill the kind-specific fields.
func (v *View) Observe(ev obs.Event) {
	if v.obsBuf != nil {
		*v.obsBuf = append(*v.obsBuf, ev)
	}
}

// Rule is one guarded action < label > :: < guard > → < statement >.
// Guards must be side-effect free; actions mutate only v.Self() and emit
// events. Priority implements the paper's inter-protocol priority: a
// processor with an enabled rule of priority k never executes a rule of
// priority > k (lower number = higher priority). The routing algorithm A
// runs at priority 0, SSMFP at priority 1.
type Rule struct {
	Name     string
	Priority int
	Guard    func(v *View) bool
	Action   func(v *View)
}

// Program is the collection of rules run by every processor. Programs are
// uniform: all processors run the same rule set (rules observe v.ID() to
// behave per-processor, e.g. the destination acts differently).
type Program interface {
	Rules() []Rule
}

// Compose concatenates programs into one, preserving each rule's declared
// priority. Use it to run the routing algorithm A "simultaneously" with
// SSMFP as the paper prescribes.
func Compose(programs ...Program) Program {
	var rules []Rule
	for _, p := range programs {
		rules = append(rules, p.Rules()...)
	}
	return rulesProgram(rules)
}

type rulesProgram []Rule

func (r rulesProgram) Rules() []Rule { return r }

// NewProgram builds a Program from an explicit rule list.
func NewProgram(rules ...Rule) Program { return rulesProgram(rules) }

// Choice lists, for one enabled processor, the indices of its enabled rules
// after priority filtering (only the minimal enabled priority class is
// offered, per the paper's priority assumption).
type Choice struct {
	Process graph.ProcessID
	Rules   []int
}

// Selection is a daemon's decision to activate one rule at one processor.
type Selection struct {
	Process graph.ProcessID
	Rule    int
}

// Daemon decides which enabled processors execute at each step. Contract
// (checked by the engine): the returned set is non-empty whenever enabled
// is non-empty, contains each processor at most once, and every selection
// picks a rule offered in that processor's Choice. This matches the
// distributed daemon of §2.1; a central daemon simply returns a single
// selection.
type Daemon interface {
	Name() string
	Select(step int, enabled []Choice) []Selection
}

// EnabledOf computes the enabled choices of an arbitrary configuration —
// the pure-function core of Engine.Enabled, exported for exhaustive
// state-space exploration (internal/explore), which needs to evaluate
// configurations that are not installed in any engine. Priority filtering
// is applied exactly as in the engine.
func EnabledOf(g *graph.Graph, rules []Rule, cfg []State) []Choice {
	return scanEnabled(g, rules, cfg, 0, nil)
}

// scanEnabled is the naive full sweep: every guard of every processor is
// evaluated on cfg. guardEvals, when non-nil, accumulates the number of
// guard invocations.
func scanEnabled(g *graph.Graph, rules []Rule, cfg []State, step int, guardEvals *int64) []Choice {
	var enabled []Choice
	for p := 0; p < g.N(); p++ {
		c := enabledAtConfig(g, rules, cfg, graph.ProcessID(p), step, guardEvals)
		if len(c.Rules) > 0 {
			enabled = append(enabled, c)
		}
	}
	return enabled
}

// EnabledDelta incrementally updates an enabled set after a localized
// configuration change: prev must be the enabled choices of the
// configuration cfg was derived from, and changed the processors whose
// state differs. Because a guard at p reads only the closed neighborhood
// N[p] (enforced by View.Read), enabledness can have changed only inside
// N[changed]; exactly those processors are re-evaluated and everything
// else is carried over from prev. The result is freshly allocated and
// sorted by processor ID, identical to EnabledOf(g, rules, cfg).
func EnabledDelta(g *graph.Graph, rules []Rule, cfg []State, prev []Choice, changed []graph.ProcessID) []Choice {
	out, _ := enabledDelta(g, rules, cfg, prev, changed, 0, nil)
	return out
}

// enabledDelta is EnabledDelta with instrumentation: it additionally
// reports how many processors were re-evaluated (|N[changed]|) and, when
// guardEvals is non-nil, accumulates guard invocations.
func enabledDelta(g *graph.Graph, rules []Rule, cfg []State, prev []Choice, changed []graph.ProcessID, step int, guardEvals *int64) (out []Choice, evaluated int) {
	dirty := make([]bool, g.N())
	reeval := make([]graph.ProcessID, 0, 4*len(changed))
	mark := func(p graph.ProcessID) {
		if !dirty[p] {
			dirty[p] = true
			reeval = append(reeval, p)
		}
	}
	for _, p := range changed {
		mark(p)
		for _, q := range g.Neighbors(p) {
			mark(q)
		}
	}
	sort.Slice(reeval, func(i, j int) bool { return reeval[i] < reeval[j] })

	// Merge the untouched entries of prev with the re-evaluated closed
	// neighborhood, keeping ascending processor order.
	out = make([]Choice, 0, len(prev)+len(reeval))
	pi := 0
	for _, p := range reeval {
		for pi < len(prev) && prev[pi].Process < p {
			out = append(out, prev[pi])
			pi++
		}
		if pi < len(prev) && prev[pi].Process == p {
			pi++
		}
		if c := enabledAtConfig(g, rules, cfg, p, step, guardEvals); len(c.Rules) > 0 {
			out = append(out, c)
		}
	}
	out = append(out, prev[pi:]...)
	return out, len(reeval)
}

// enabledAtConfig evaluates the guards of p on cfg, offering only the
// minimal enabled priority class. guardEvals, when non-nil, accumulates
// the number of guard invocations.
func enabledAtConfig(g *graph.Graph, rules []Rule, cfg []State, p graph.ProcessID, step int, guardEvals *int64) Choice {
	v := &View{id: p, g: g, snapshot: cfg, step: step}
	best := int(^uint(0) >> 1)
	var idxs []int
	evals := int64(0)
	for i, r := range rules {
		if r.Priority > best {
			continue
		}
		evals++
		if r.Guard(v) {
			if r.Priority < best {
				best = r.Priority
				idxs = idxs[:0]
			}
			idxs = append(idxs, i)
		}
	}
	if guardEvals != nil {
		*guardEvals += evals
	}
	return Choice{Process: p, Rules: idxs}
}

// ApplySelection executes one selection against cfg without mutating it:
// it returns the successor state of the selected processor (a mutated
// clone) and the events the action emitted. The caller is responsible for
// only applying selections whose guards hold on cfg.
func ApplySelection(g *graph.Graph, rules []Rule, cfg []State, sel Selection, step int) (State, []Event) {
	var events []Event
	r := rules[sel.Rule]
	v := &View{
		id:       sel.Process,
		g:        g,
		snapshot: cfg,
		self:     cfg[sel.Process].Clone(),
		step:     step,
		events:   &events,
	}
	r.Action(v)
	for i := range events {
		if events[i].Rule == "" {
			events[i].Rule = r.Name
		}
	}
	return v.self, events
}
