package statemodel

import (
	"testing"

	"ssmfp/internal/graph"
	"ssmfp/internal/obs"
)

// obsProgram increments like incProgram but also emits a typed event from
// the action when a consumer is attached.
func obsProgram(limit int) Program {
	return NewProgram(Rule{
		Name:  "inc",
		Guard: func(v *View) bool { return v.Self().(*intState).v < limit },
		Action: func(v *View) {
			v.Self().(*intState).v++
			if v.Observing() {
				v.Observe(obs.Event{Kind: obs.KindGenerate, Dest: v.ID()})
			}
		},
	})
}

func TestEngineTypedBusPublishesStampedEvents(t *testing.T) {
	g := graph.Line(2)
	e := NewEngine(g, obsProgram(2), allDaemon{}, intConfig(0, 0))
	var got []obs.Event
	e.Obs().Subscribe(func(ev obs.Event) { got = append(got, ev) })
	for e.Step() {
	}
	if e.Steps() != 2 {
		t.Fatalf("steps = %d, want 2", e.Steps())
	}
	// Per step: 2 actions × (1 action event + 1 fire) + 1 step marker,
	// plus round events at boundaries.
	var fires, steps, rounds, gens int
	for _, ev := range got {
		switch ev.Kind {
		case obs.KindFire:
			fires++
			if ev.Rule != "inc" {
				t.Fatalf("fire rule = %q", ev.Rule)
			}
		case obs.KindStep:
			steps++
			if ev.Count != 2 {
				t.Fatalf("step count = %d, want 2", ev.Count)
			}
		case obs.KindRound:
			rounds++
		case obs.KindGenerate:
			gens++
		}
	}
	if fires != 4 || steps != 2 || gens != 4 {
		t.Fatalf("fires=%d steps=%d gens=%d, want 4/2/4", fires, steps, gens)
	}
	if rounds == 0 {
		t.Fatal("no round boundary events published")
	}
	// Action events are stamped with their selection's identity before the
	// matching fire, and the stream is ordered by Seq.
	for i, ev := range got {
		if ev.Seq != uint64(i+1) {
			t.Fatalf("event %d has seq %d", i, ev.Seq)
		}
		if ev.Kind == obs.KindGenerate && ev.Rule != "inc" {
			t.Fatalf("action event not stamped with rule: %+v", ev)
		}
	}
	// Round count on the bus matches the engine's accounting.
	if last := got[len(got)-1]; e.Rounds() < last.Round {
		t.Fatalf("bus round %d exceeds engine rounds %d", last.Round, e.Rounds())
	}
}

func TestEngineObservingFalseWithoutSubscriber(t *testing.T) {
	g := graph.Line(2)
	observed := false
	prog := NewProgram(Rule{
		Name:  "inc",
		Guard: func(v *View) bool { return v.Self().(*intState).v < 1 },
		Action: func(v *View) {
			v.Self().(*intState).v++
			if v.Observing() {
				observed = true
			}
		},
	})
	e := NewEngine(g, prog, allDaemon{}, intConfig(0, 0))
	for e.Step() {
	}
	if observed {
		t.Fatal("Observing() reported true with no bus subscriber")
	}
	if e.Obs().Active() {
		t.Fatal("bus reports active with no subscriber")
	}
}
