package core

import (
	"testing"

	"ssmfp/internal/graph"
	sm "ssmfp/internal/statemodel"
)

// syncDaemon activates every enabled processor with its first offered rule;
// a local copy so white-box micro-tests stay self-contained.
type syncDaemon struct{}

func (syncDaemon) Name() string { return "test-sync" }
func (syncDaemon) Select(step int, enabled []sm.Choice) []sm.Selection {
	out := make([]sm.Selection, len(enabled))
	for i, c := range enabled {
		out[i] = sm.Selection{Process: c.Process, Rule: c.Rules[0]}
	}
	return out
}

func node(cfg []sm.State, p graph.ProcessID) *Node { return cfg[p].(*Node) }

func engineNode(e *sm.Engine, p graph.ProcessID) *Node { return e.StateOf(p).(*Node) }

// newLineEngine builds a 3-processor line with correct tables, the full
// composed program, and the synchronous daemon.
func newLineEngine(t *testing.T) (*graph.Graph, []sm.State, *sm.Engine) {
	t.Helper()
	g := graph.Line(3)
	cfg := CleanConfig(g)
	e := sm.NewEngine(g, FullProgram(g), syncDaemon{}, cfg)
	return g, cfg, e
}

func TestR1GeneratesMessage(t *testing.T) {
	g, cfg, e := newLineEngine(t)
	_ = g
	node(cfg, 0).FW.Enqueue("hello", 2)

	if names := e.EnabledRuleNames(0); len(names) != 1 || names[0] != "R1@2" {
		t.Fatalf("enabled at 0: %v, want [R1@2]", names)
	}
	var gen *Message
	e.Subscribe(func(ev sm.Event) {
		if ev.Kind == KindGenerate {
			gen = ev.Payload.(GenerateEvent).Msg
		}
	})
	e.Step()

	fw0 := engineNode(e, 0).FW
	m := fw0.Dests[2].BufR
	if m == nil {
		t.Fatal("R1 did not fill bufR")
	}
	if m.Payload != "hello" || m.LastHop != 0 || m.Color != 0 {
		t.Fatalf("R1 produced %v, want (hello,q=0,c=0)", m)
	}
	if !m.Valid || m.Src != 0 || m.Dest != 2 {
		t.Fatalf("bookkeeping wrong: %+v", m)
	}
	if fw0.Request || len(fw0.Pending) != 0 {
		t.Fatal("R1 must clear the request and pop pending")
	}
	if gen == nil || gen.UID != m.UID {
		t.Fatal("generate event missing or wrong")
	}
}

func TestR1BlockedByOccupiedBufR(t *testing.T) {
	_, cfg, e := newLineEngine(t)
	node(cfg, 0).FW.Dests[2].BufR = &Message{Payload: "stale", LastHop: 0, Color: 1}
	node(cfg, 0).FW.Enqueue("hello", 2)
	for _, name := range e.EnabledRuleNames(0) {
		if name == "R1@2" {
			t.Fatal("R1 must be disabled while bufR is occupied")
		}
	}
}

func TestR1RearmsForNextPending(t *testing.T) {
	_, cfg, e := newLineEngine(t)
	node(cfg, 0).FW.Enqueue("a", 2)
	node(cfg, 0).FW.Enqueue("b", 1)
	e.Step() // R1 accepts "a"
	fw0 := engineNode(e, 0).FW
	if !fw0.Request || len(fw0.Pending) != 1 {
		t.Fatal("request must re-arm while messages are pending")
	}
	if d, _ := fw0.NextDestination(); d != 1 {
		t.Fatal("next destination must advance")
	}
}

// walkOneMessage drives the canonical happy path on the line 0-1-2 for a
// message 0→2, asserting the buffer contents after every step.
func TestFullForwardingPath(t *testing.T) {
	_, cfg, e := newLineEngine(t)
	node(cfg, 0).FW.Enqueue("hello", 2)

	var delivered []*Message
	e.Subscribe(func(ev sm.Event) {
		if ev.Kind == KindDeliver {
			delivered = append(delivered, ev.Payload.(DeliverEvent).Msg)
		}
	})

	// Step 1: R1 at 0.
	e.Step()
	if m := engineNode(e, 0).FW.Dests[2].BufR; m == nil || m.LastHop != 0 || m.Color != 0 {
		t.Fatalf("after R1: bufR_0(2) = %v", m)
	}

	// Step 2: R2 at 0 — internal move, fresh color (neighbors' bufR empty → 0).
	e.Step()
	n0 := engineNode(e, 0).FW.Dests[2]
	if n0.BufR != nil {
		t.Fatal("R2 must empty bufR")
	}
	if n0.BufE == nil || n0.BufE.LastHop != 0 || n0.BufE.Color != 0 {
		t.Fatalf("after R2: bufE_0(2) = %v", n0.BufE)
	}

	// Step 3: R3 at 1 pulls the message.
	e.Step()
	m1 := engineNode(e, 1).FW.Dests[2].BufR
	if m1 == nil || m1.LastHop != 0 || m1.Color != 0 || m1.Payload != "hello" {
		t.Fatalf("after R3: bufR_1(2) = %v", m1)
	}
	if engineNode(e, 0).FW.Dests[2].BufE == nil {
		t.Fatal("R3 copies; the origin emission buffer keeps the message until R4")
	}

	// Step 4: R4 at 0 erases the forwarded original. (R2 at 1 is blocked
	// until then because bufE_0 still matches (m, ·, c).)
	e.Step()
	if engineNode(e, 0).FW.Dests[2].BufE != nil {
		t.Fatal("R4 must erase bufE_0")
	}

	// Step 5: R2 at 1.
	e.Step()
	n1 := engineNode(e, 1).FW.Dests[2]
	if n1.BufR != nil || n1.BufE == nil || n1.BufE.LastHop != 1 {
		t.Fatalf("after R2 at 1: bufR=%v bufE=%v", n1.BufR, n1.BufE)
	}

	// Steps 6-8: R3 at 2, R4 at 1, R2 at 2.
	e.Step()
	if m := engineNode(e, 2).FW.Dests[2].BufR; m == nil || m.LastHop != 1 {
		t.Fatalf("after R3 at 2: %v", m)
	}
	e.Step()
	if engineNode(e, 1).FW.Dests[2].BufE != nil {
		t.Fatal("R4 must erase bufE_1")
	}
	e.Step()
	if m := engineNode(e, 2).FW.Dests[2].BufE; m == nil || m.LastHop != 2 {
		t.Fatalf("after R2 at 2: %v", m)
	}

	// Step 9: R6 delivers at the destination.
	e.Step()
	if len(delivered) != 1 || delivered[0].Payload != "hello" {
		t.Fatalf("delivered = %v", delivered)
	}
	if !Quiescent(configOf(e)) {
		t.Fatal("system must be quiescent after delivery")
	}
	if !e.Terminal() {
		t.Fatal("no rule may remain enabled")
	}
}

func configOf(e *sm.Engine) []sm.State {
	cfg := make([]sm.State, e.Graph().N())
	for p := 0; p < e.Graph().N(); p++ {
		cfg[p] = e.StateOf(graph.ProcessID(p))
	}
	return cfg
}

func TestR2BlockedWhileOriginHoldsMessage(t *testing.T) {
	_, cfg, e := newLineEngine(t)
	// bufR_1(2) holds (m,0,1) and bufE_0(2) still holds (m,·,1): R2 at 1
	// must wait (otherwise the same message could advance twice).
	node(cfg, 1).FW.Dests[2].BufR = &Message{Payload: "m", LastHop: 0, Color: 1}
	node(cfg, 0).FW.Dests[2].BufE = &Message{Payload: "m", LastHop: 0, Color: 1}
	for _, name := range e.EnabledRuleNames(1) {
		if name == "R2@2" {
			t.Fatal("R2 must be blocked while bufE of the last hop matches (m,·,c)")
		}
	}
	// Different color at the origin: R2 unblocks.
	node(cfg, 0).FW.Dests[2].BufE = &Message{Payload: "m", LastHop: 0, Color: 2}
	found := false
	for _, name := range e.EnabledRuleNames(1) {
		if name == "R2@2" {
			found = true
		}
	}
	if !found {
		t.Fatal("R2 must be enabled when colors differ")
	}
}

func TestR2SelfGeneratedBypassesOriginCheck(t *testing.T) {
	_, cfg, e := newLineEngine(t)
	// LastHop = p itself (generated here): the origin check is vacuous.
	node(cfg, 1).FW.Dests[2].BufR = &Message{Payload: "m", LastHop: 1, Color: 1}
	node(cfg, 1).FW.Dests[2].BufE = nil
	found := false
	for _, name := range e.EnabledRuleNames(1) {
		if name == "R2@2" {
			found = true
		}
	}
	if !found {
		t.Fatal("R2 must be enabled for self-generated messages")
	}
}

func TestFreshColorAvoidsNeighborReceptionBuffers(t *testing.T) {
	g := graph.Star(4) // center 0, leaves 1..3; Δ=3 → colors {0..3}
	cfg := CleanConfig(g)
	// Center is about to run R2 for destination 3; its neighbors' bufR(3)
	// hold colors 0, 1, 2 → the fresh color must be 3.
	node(cfg, 0).FW.Dests[3].BufR = &Message{Payload: "m", LastHop: 0, Color: 0}
	node(cfg, 1).FW.Dests[3].BufR = &Message{Payload: "x", LastHop: 1, Color: 0}
	node(cfg, 2).FW.Dests[3].BufR = &Message{Payload: "y", LastHop: 2, Color: 1}
	node(cfg, 3).FW.Dests[3].BufR = &Message{Payload: "z", LastHop: 3, Color: 2}
	e := sm.NewEngine(g, NewProgram(g), syncDaemon{}, cfg)

	// Force only R2 at 0 by stepping a scripted-like single selection: the
	// sync daemon would fire everyone, so check the guard and run the
	// action through a one-step engine on a restricted program instead.
	prog := sm.NewProgram(destRules(3, PolicyQueue)[1]) // R2@3 only
	e = sm.NewEngine(g, prog, syncDaemon{}, cfg)
	e.Step()
	m := engineNode(e, 0).FW.Dests[3].BufE
	if m == nil || m.Color != 3 {
		t.Fatalf("fresh color = %v, want 3", m)
	}
}

func TestR4RequiresExactCopyAtNextHopOnly(t *testing.T) {
	g := graph.Star(4) // center 0, leaves 1,2,3
	cfg := CleanConfig(g)
	// Center forwarded (m,0,1) toward destination 3 (nextHop_0(3)=3).
	node(cfg, 0).FW.Dests[3].BufE = &Message{Payload: "m", LastHop: 0, Color: 1}
	node(cfg, 3).FW.Dests[3].BufR = &Message{Payload: "m", LastHop: 0, Color: 1}
	// A stale exact copy also sits at leaf 2: R4 must be blocked.
	node(cfg, 2).FW.Dests[3].BufR = &Message{Payload: "m", LastHop: 0, Color: 1}
	e := sm.NewEngine(g, FullProgram(g), syncDaemon{}, cfg)

	for _, name := range e.EnabledRuleNames(0) {
		if name == "R4@3" {
			t.Fatal("R4 must be blocked while another neighbor holds the exact copy")
		}
	}
	// R5 must be enabled at leaf 2 (origin 0 holds (m,·,1), nextHop_0(3)=3≠2).
	r5 := false
	for _, name := range e.EnabledRuleNames(2) {
		if name == "R5@3" {
			r5 = true
		}
	}
	if !r5 {
		t.Fatalf("R5 must clear the stale duplicate; enabled at 2: %v", e.EnabledRuleNames(2))
	}
	// Clear the stale copy; now R4 fires.
	node(cfg, 2).FW.Dests[3].BufR = nil
	r4 := false
	for _, name := range e.EnabledRuleNames(0) {
		if name == "R4@3" {
			r4 = true
		}
	}
	if !r4 {
		t.Fatalf("R4 must be enabled once the copy is unique; enabled at 0: %v", e.EnabledRuleNames(0))
	}
}

func TestR4NeverFiresAtDestination(t *testing.T) {
	_, cfg, e := newLineEngine(t)
	node(cfg, 2).FW.Dests[2].BufE = &Message{Payload: "m", LastHop: 2, Color: 0}
	for _, name := range e.EnabledRuleNames(2) {
		if name == "R4@2" {
			t.Fatal("R4 is for p ≠ d only; the destination consumes via R6")
		}
	}
	r6 := false
	for _, name := range e.EnabledRuleNames(2) {
		if name == "R6@2" {
			r6 = true
		}
	}
	if !r6 {
		t.Fatal("R6 must be enabled at the destination")
	}
}

func TestR5RequiresReroutedOrigin(t *testing.T) {
	g := graph.Star(4)
	cfg := CleanConfig(g)
	// Copy at leaf 1 whose origin 0 still holds (m,·,c) but routes to 1:
	// this is a normal in-flight forward, R5 must NOT fire.
	node(cfg, 1).FW.Dests[1].BufR = &Message{Payload: "m", LastHop: 0, Color: 2}
	node(cfg, 0).FW.Dests[1].BufE = &Message{Payload: "m", LastHop: 0, Color: 2}
	e := sm.NewEngine(g, FullProgram(g), syncDaemon{}, cfg)
	for _, name := range e.EnabledRuleNames(1) {
		if name == "R5@1" {
			t.Fatal("R5 must not fire when the origin still routes here")
		}
	}
}

func TestR6DeliversAndEmpties(t *testing.T) {
	_, cfg, e := newLineEngine(t)
	msg := &Message{Payload: "m", LastHop: 1, Color: 2, UID: 42, Dest: 2, Valid: true}
	node(cfg, 2).FW.Dests[2].BufE = msg
	var got *Message
	e.Subscribe(func(ev sm.Event) {
		if ev.Kind == KindDeliver {
			got = ev.Payload.(DeliverEvent).Msg
		}
	})
	e.Step()
	if got == nil || got.UID != 42 {
		t.Fatalf("delivered %v", got)
	}
	if engineNode(e, 2).FW.Dests[2].BufE != nil {
		t.Fatal("R6 must empty the buffer")
	}
}

func TestRoutingPriorityPreemptsForwarding(t *testing.T) {
	_, cfg, e := newLineEngine(t)
	// Processor 2 could consume (R6@2) but its routing table is corrupt:
	// the A rule must preempt.
	node(cfg, 2).FW.Dests[2].BufE = &Message{Payload: "m", LastHop: 2, Color: 0}
	node(cfg, 2).RT.Dist[0] = 7 // incorrect distance to 0
	names := e.EnabledRuleNames(2)
	if len(names) != 1 || names[0] != "A@0" {
		t.Fatalf("enabled at 2: %v, want only the routing correction", names)
	}
}

func TestChoiceFIFONoPassing(t *testing.T) {
	g := graph.Star(4) // leaves 1,2,3 all forward to center 0 for dest 0
	cfg := CleanConfig(g)
	for _, leaf := range []graph.ProcessID{1, 2, 3} {
		node(cfg, leaf).FW.Dests[0].BufE = &Message{
			Payload: "from" + string(rune('0'+leaf)), LastHop: leaf, Color: 0, UID: uint64(leaf), Valid: true, Dest: 0,
		}
	}
	// Restrict to R3@0 so only the center's pulls execute; queue order must
	// be 1, 2, 3 (ID order on first normalization) regardless of daemon.
	prog := sm.NewProgram(destRules(0, PolicyQueue)[2])
	e := sm.NewEngine(g, prog, syncDaemon{}, cfg)
	e.Step()
	first := engineNode(e, 0).FW.Dests[0].BufR
	if first == nil || first.LastHop != 1 {
		t.Fatalf("first served should be 1, got %v", first)
	}
	if q := engineNode(e, 0).FW.Dests[0].Queue; len(q) != 2 || q[0] != 2 || q[1] != 3 {
		t.Fatalf("queue after first serve = %v, want [2 3]", q)
	}
	// bufR occupied → R3 disabled; empty it (as R2 would) and pull again.
	engineNode(e, 0).FW.Dests[0].BufR = nil
	e.Step()
	second := engineNode(e, 0).FW.Dests[0].BufR
	if second == nil || second.LastHop != 2 {
		t.Fatalf("second served should be 2, got %v", second)
	}
	// Leaf 1 re-arrives (it never left: its bufE is still occupied) — it
	// must requeue BEHIND 3.
	if q := engineNode(e, 0).FW.Dests[0].Queue; len(q) != 2 || q[0] != 3 || q[1] != 1 {
		t.Fatalf("queue after second serve = %v, want [3 1]", q)
	}
}

func TestCorruptQueueEntriesIgnored(t *testing.T) {
	_, cfg, e := newLineEngine(t)
	// Queue at 1 stuffed with entries that are not candidates; a real
	// candidate (0, holding a message routed to 1) must still be served.
	node(cfg, 0).FW.Dests[2].BufE = &Message{Payload: "m", LastHop: 0, Color: 0, Valid: true, Dest: 2}
	node(cfg, 1).FW.Dests[2].Queue = []graph.ProcessID{2, 1, 1, 2}
	e.Step() // sync: R3 at 1 fires (choice normalizes to [0])
	if m := engineNode(e, 1).FW.Dests[2].BufR; m == nil || m.LastHop != 0 {
		t.Fatalf("bufR_1(2) = %v; corrupt queue entries must be ignored", m)
	}
}

func TestCaterpillarClassification(t *testing.T) {
	g := graph.Line(3)
	cfg := CleanConfig(g)

	// Type 1: message in bufR_1 whose origin 0 no longer holds (m,·,c).
	cfg[1].(*Node).FW.Dests[2].BufR = &Message{Payload: "m", LastHop: 0, Color: 1}
	if got := ClassifyR(g, cfg, 1, 2); got != Type1 {
		t.Fatalf("ClassifyR = %v, want type-1", got)
	}
	// Tail of an in-flight forward: origin still holds (m,·,c) → not a head.
	cfg[0].(*Node).FW.Dests[2].BufE = &Message{Payload: "m", LastHop: 0, Color: 1}
	if got := ClassifyR(g, cfg, 1, 2); got != None {
		t.Fatalf("ClassifyR = %v, want none while origin holds the message", got)
	}
	// The origin's emission occurrence: neighbor 1 holds the copy (m,0,1) → type 3.
	if got := ClassifyE(g, cfg, 0, 2); got != Type3 {
		t.Fatalf("ClassifyE = %v, want type-3", got)
	}
	// Self-generated in bufR → type 1 regardless of neighbors.
	cfg[1].(*Node).FW.Dests[2].BufR = &Message{Payload: "m", LastHop: 1, Color: 1}
	if got := ClassifyR(g, cfg, 1, 2); got != Type1 {
		t.Fatalf("ClassifyR = %v, want type-1 for self-generated", got)
	}
	// Emission buffer with no copy anywhere → type 2.
	cfg[1].(*Node).FW.Dests[2].BufR = nil
	cfg[0].(*Node).FW.Dests[2].BufE = nil
	cfg[1].(*Node).FW.Dests[2].BufE = &Message{Payload: "w", LastHop: 1, Color: 0}
	if got := ClassifyE(g, cfg, 1, 2); got != Type2 {
		t.Fatalf("ClassifyE = %v, want type-2", got)
	}
	// Empty buffers classify as none.
	if ClassifyR(g, cfg, 0, 2) != None || ClassifyE(g, cfg, 0, 2) != None {
		t.Fatal("empty buffers must classify as none")
	}
}

func TestCaterpillarCensus(t *testing.T) {
	g := graph.Line(3)
	cfg := CleanConfig(g)
	cfg[0].(*Node).FW.Dests[2].BufE = &Message{Payload: "m", LastHop: 0, Color: 1}
	cfg[1].(*Node).FW.Dests[2].BufR = &Message{Payload: "m", LastHop: 0, Color: 1}
	cfg[2].(*Node).FW.Dests[2].BufE = &Message{Payload: "z", LastHop: 2, Color: 0}
	census := CaterpillarCensus(g, cfg, 2)
	if census[Type3] != 1 || census[Type2] != 1 || census[Type1] != 0 {
		t.Fatalf("census = %v, want 1×type-3, 1×type-2", census)
	}
}
