package core

import (
	"ssmfp/internal/graph"
	sm "ssmfp/internal/statemodel"
)

// LiteralR5Program builds the composed system with rule R5 exactly as
// Algorithm 1 prints it — WITHOUT the q ≠ p restriction this reproduction
// derives from the paper's prose (see the comment on R5 in destRules and
// EXPERIMENTS.md, "Reproduction findings"). It exists as an executable
// record of the finding: under the literal rule, a freshly generated
// message (m, p, 0) in bufR_p is erased whenever the processor's own
// bufE_p holds an invalid message with the same payload and color 0, and
// both the exhaustive model checker (cmd/ssmfp-check -scenario r5-literal)
// and the randomized tests exhibit the resulting loss. Never use this
// program for anything but demonstrating the defect.
func LiteralR5Program(g *graph.Graph) sm.Program {
	var rules []sm.Rule
	for dd := 0; dd < g.N(); dd++ {
		d := graph.ProcessID(dd)
		dr := destRules(d, PolicyQueue)
		ds := func(v *sm.View) *DestState { return &v.Self().(*Node).FW.Dests[d] }
		peer := func(v *sm.View, q graph.ProcessID) *Node {
			if q == v.ID() {
				return v.Self().(*Node)
			}
			return v.Read(q).(*Node)
		}
		// Replace R5 (index 4 in the R1..R6 listing) with the literal rule.
		dr[4] = sm.Rule{
			Name:     RuleName("R5", d),
			Priority: PriorityForwarding,
			Guard: func(v *sm.View) bool {
				s := ds(v)
				if s.BufR == nil {
					return false
				}
				q := s.BufR.LastHop // literal: q = p is NOT excluded
				origin := peer(v, q)
				return origin.FW.Dests[d].BufE.SameMC(s.BufR) && origin.RT.NextHop(d) != v.ID()
			},
			Action: func(v *sm.View) { ds(v).BufR = nil },
		}
		rules = append(rules, dr...)
	}
	return sm.Compose(routingProgram(g), sm.NewProgram(rules...))
}
