package core

import (
	"fmt"

	"ssmfp/internal/graph"
	"ssmfp/internal/obs"
	sm "ssmfp/internal/statemodel"
)

// RuleName renders the canonical name of an SSMFP rule instance, e.g.
// RuleName("R3", 1) == "R3@1". The per-destination instances of Algorithm 1
// are mutually independent and run simultaneously; naming them apart lets
// scripted replays and move counters address individual instances.
func RuleName(base string, d graph.ProcessID) string { return fmt.Sprintf("%s@%d", base, d) }

// NewProgram returns the SSMFP program for every destination of g: the six
// rules of Algorithm 1 instantiated per destination, all at priority
// PriorityForwarding so that the routing algorithm A (priority
// routing.Priority) preempts them wherever both are enabled. Compose with
// routing.NewProgram(g, RoutingOf) to obtain the full system of the paper.
// The choice_p(d) macro uses the paper's FIFO queue (PolicyQueue).
func NewProgram(g *graph.Graph) sm.Program {
	return NewProgramWithPolicy(g, PolicyQueue)
}

// NewProgramWithPolicy is NewProgram with an explicit choice_p(d) policy —
// the ablation hook of experiment E-X5 (the paper's conclusion asks
// whether a different selection scheme can improve the worst case; the
// unfair PolicyLowestID also demonstrates why fairness is required).
func NewProgramWithPolicy(g *graph.Graph, policy ChoicePolicy) sm.Program {
	var rules []sm.Rule
	for dd := 0; dd < g.N(); dd++ {
		rules = append(rules, destRules(graph.ProcessID(dd), policy)...)
	}
	return sm.NewProgram(rules...)
}

// destRules instantiates R1..R6 for destination d.
func destRules(d graph.ProcessID, policy ChoicePolicy) []sm.Rule {
	ds := func(v *sm.View) *DestState { return &v.Self().(*Node).FW.Dests[d] }
	peer := func(v *sm.View, q graph.ProcessID) *Node {
		if q == v.ID() {
			return v.Self().(*Node)
		}
		return v.Read(q).(*Node)
	}

	return []sm.Rule{
		// (R1) Generation: request_p ∧ nextDestination_p = d ∧
		// bufR_p(d) = ∅ ∧ choice_p(d) = p  →
		// bufR_p(d) := (nextMessage_p, p, 0); request_p := false.
		{
			Name:     RuleName("R1", d),
			Priority: PriorityForwarding,
			Guard: func(v *sm.View) bool {
				self := v.Self().(*Node).FW
				if !self.Request || self.Dests[d].BufR != nil {
					return false
				}
				if nd, ok := self.NextDestination(); !ok || nd != d {
					return false
				}
				c, _, ok := choose(policy, v, d)
				return ok && c == v.ID()
			},
			Action: func(v *sm.View) {
				self := v.Self().(*Node).FW
				_, rest, _ := choose(policy, v, d)
				out := self.Pending[0]
				self.Pending = self.Pending[1:]
				msg := &Message{
					Payload: out.Payload,
					LastHop: v.ID(),
					Color:   0,
					UID:     (uint64(v.ID())+1)<<32 | self.NextSeq, // +1 keeps UID 0 free as the checker's "no message" sentinel
					Src:     v.ID(),
					Dest:    d,
					Valid:   true,
					GenStep: v.Step(),
				}
				self.NextSeq++
				self.Dests[d].BufR = msg
				self.Dests[d].Queue = rest // p has been served
				v.Emit(KindServe, ServeEvent{Dest: d, Served: v.ID()})
				// The paper sets request := false and lets the (blocking)
				// higher layer raise it again; we model an eager higher
				// layer that immediately re-requests while messages wait.
				self.Request = len(self.Pending) > 0
				v.Emit(KindGenerate, GenerateEvent{Msg: msg})
				if v.Observing() {
					v.Observe(obs.Event{Kind: obs.KindGenerate, Dest: d, Msg: msg.Record()})
				}
			},
		},
		// (R2) Internal forwarding: bufE_p(d) = ∅ ∧ bufR_p(d) = (m,q,c) ∧
		// (q = p ∨ bufE_q(d) ≠ (m,q',c))  →
		// bufE_p(d) := (m, p, color_p(d)); bufR_p(d) := ∅.
		{
			Name:     RuleName("R2", d),
			Priority: PriorityForwarding,
			Guard: func(v *sm.View) bool {
				s := ds(v)
				if s.BufE != nil || s.BufR == nil {
					return false
				}
				q := s.BufR.LastHop
				if q == v.ID() {
					return true
				}
				return !v.Read(q).(*Node).FW.Dests[d].BufE.SameMC(s.BufR)
			},
			Action: func(v *sm.View) {
				s := ds(v)
				s.BufE = s.BufR.WithHopColor(v.ID(), freshColor(v, d))
				s.BufR = nil
				if v.Observing() {
					v.Observe(obs.Event{Kind: obs.KindInternal, Dest: d, Msg: s.BufE.Record()})
				}
			},
		},
		// (R3) Forwarding: bufR_p(d) = ∅ ∧ choice_p(d) = s ∧ s ≠ p ∧
		// bufE_s(d) = (m,q,c)  →  bufR_p(d) := (m, s, c).
		{
			Name:     RuleName("R3", d),
			Priority: PriorityForwarding,
			Guard: func(v *sm.View) bool {
				if ds(v).BufR != nil {
					return false
				}
				c, _, ok := choose(policy, v, d)
				return ok && c != v.ID()
			},
			Action: func(v *sm.View) {
				s := ds(v)
				src, rest, _ := choose(policy, v, d)
				// Candidacy guarantees bufE_src(d) is occupied; the copy
				// keeps the color and records src as the last hop. (If the
				// stored last hop of bufE_src differs from src the message
				// was present at the initial configuration — footnote 1.)
				s.BufR = v.Read(src).(*Node).FW.Dests[d].BufE.WithHop(src)
				s.Queue = rest // src has been served
				v.Emit(KindServe, ServeEvent{Dest: d, Served: src})
				if v.Observing() {
					v.Observe(obs.Event{Kind: obs.KindForward, Dest: d, From: src, Msg: s.BufR.Record()})
				}
			},
		},
		// (R4) Erasing after forwarding: bufE_p(d) = (m,q,c) ∧ p ≠ d ∧
		// bufR_nextHop_p(d)(d) = (m,p,c) ∧
		// ∀r ∈ N_p∖{nextHop_p(d)}: bufR_r(d) ≠ (m,p,c)  →  bufE_p(d) := ∅.
		{
			Name:     RuleName("R4", d),
			Priority: PriorityForwarding,
			Guard: func(v *sm.View) bool {
				if v.ID() == d {
					return false
				}
				s := ds(v)
				if s.BufE == nil {
					return false
				}
				hop := v.Self().(*Node).RT.NextHop(d)
				if !matchesForward(v.Read(hop).(*Node).FW.Dests[d].BufR, s.BufE, v.ID()) {
					return false
				}
				for _, r := range v.Neighbors() {
					if r == hop {
						continue
					}
					if matchesForward(v.Read(r).(*Node).FW.Dests[d].BufR, s.BufE, v.ID()) {
						return false
					}
				}
				return true
			},
			Action: func(v *sm.View) {
				s := ds(v)
				if v.Observing() {
					v.Observe(obs.Event{Kind: obs.KindErase, Dest: d, Buf: obs.BufEmission, Msg: s.BufE.Record()})
				}
				s.BufE = nil
			},
		},
		// (R5) Erasing after duplication: bufR_p(d) = (m,q,c) ∧ q ≠ p ∧
		// bufE_q(d) = (m,q',c) ∧ nextHop_q(d) ≠ p  →  bufR_p(d) := ∅.
		//
		// The q ≠ p restriction is a reproduction finding: Algorithm 1 as
		// printed does not exclude q = p, but then a freshly generated
		// message (m, p, 0) sitting in bufR_p is erased whenever the
		// processor's own bufE_p happens to hold an invalid message with
		// the same payload and color 0 (nextHop_p(d) ≠ p holds trivially)
		// — a valid message would be lost, contradicting Lemma 4. The
		// paper's own reading of R5 ("R5 is enabled for each *neighbor* q
		// of p", §3.3) restricts q to N_p, which is what we implement; the
		// self-generated case is instead drained by R2 once bufE_p frees.
		{
			Name:     RuleName("R5", d),
			Priority: PriorityForwarding,
			Guard: func(v *sm.View) bool {
				s := ds(v)
				if s.BufR == nil {
					return false
				}
				q := s.BufR.LastHop
				if q == v.ID() {
					return false
				}
				origin := peer(v, q)
				return origin.FW.Dests[d].BufE.SameMC(s.BufR) && origin.RT.NextHop(d) != v.ID()
			},
			Action: func(v *sm.View) {
				s := ds(v)
				if v.Observing() {
					v.Observe(obs.Event{Kind: obs.KindErase, Dest: d, Buf: obs.BufReception, Msg: s.BufR.Record()})
				}
				s.BufR = nil
			},
		},
		// (R6) Consumption: bufE_p(p) = (m,q,c)  →
		// deliver_p(m); bufE_p(p) := ∅.
		{
			Name:     RuleName("R6", d),
			Priority: PriorityForwarding,
			Guard: func(v *sm.View) bool {
				return v.ID() == d && ds(v).BufE != nil
			},
			Action: func(v *sm.View) {
				s := ds(v)
				v.Emit(KindDeliver, DeliverEvent{Msg: s.BufE})
				if v.Observing() {
					v.Observe(obs.Event{Kind: obs.KindDeliver, Dest: d, Msg: s.BufE.Record()})
				}
				s.BufE = nil
			},
		},
	}
}

// FullProgram composes the routing algorithm A with SSMFP exactly as the
// paper runs them: simultaneously, with A at higher priority.
func FullProgram(g *graph.Graph) sm.Program {
	return FullProgramWithPolicy(g, PolicyQueue)
}

// FullProgramWithPolicy is FullProgram with an explicit choice policy.
func FullProgramWithPolicy(g *graph.Graph, policy ChoicePolicy) sm.Program {
	return sm.Compose(routingProgram(g), NewProgramWithPolicy(g, policy))
}

// DestRulesForTest exposes the per-destination rule set for white-box
// tests in external packages (rule indices follow the R1..R6 order).
func DestRulesForTest(d graph.ProcessID, policy ChoicePolicy) []sm.Rule {
	return destRules(d, policy)
}
