package core

import (
	"math/rand"
	"testing"

	"ssmfp/internal/graph"
)

func TestMessageEqualityHelpers(t *testing.T) {
	a := &Message{Payload: "x", LastHop: 1, Color: 2}
	b := &Message{Payload: "x", LastHop: 3, Color: 2}
	c := &Message{Payload: "x", LastHop: 1, Color: 0}
	d := &Message{Payload: "y", LastHop: 1, Color: 2}

	if !a.SameMC(b) {
		t.Error("SameMC must ignore last hop")
	}
	if a.SameMC(c) {
		t.Error("SameMC must compare color")
	}
	if a.SameMC(d) {
		t.Error("SameMC must compare payload")
	}
	if a.Equals(b) {
		t.Error("Equals must compare last hop")
	}
	if !a.Equals(&Message{Payload: "x", LastHop: 1, Color: 2, UID: 999}) {
		t.Error("Equals must ignore simulation-side fields")
	}
	if a.SameMC(nil) || a.Equals(nil) || (*Message)(nil).SameMC(a) || (*Message)(nil).Equals(a) {
		t.Error("nil never matches")
	}
}

func TestMessageWithHelpersCopy(t *testing.T) {
	m := &Message{Payload: "x", LastHop: 1, Color: 2, UID: 7, Valid: true}
	h := m.WithHop(4)
	if h == m || h.LastHop != 4 || h.Color != 2 || h.UID != 7 || !h.Valid {
		t.Fatalf("WithHop wrong: %+v", h)
	}
	hc := m.WithHopColor(5, 0)
	if hc.LastHop != 5 || hc.Color != 0 || hc.UID != 7 {
		t.Fatalf("WithHopColor wrong: %+v", hc)
	}
	if m.LastHop != 1 || m.Color != 2 {
		t.Fatal("original mutated")
	}
}

func TestMessageString(t *testing.T) {
	if got := (*Message)(nil).String(); got != "∅" {
		t.Errorf("nil string = %q", got)
	}
	m := &Message{Payload: "hi", LastHop: 2, Color: 1, Valid: true}
	if got := m.String(); got != "(hi,q=2,c=1,valid)" {
		t.Errorf("String() = %q", got)
	}
}

func TestNodeCloneIsDeep(t *testing.T) {
	g := graph.Line(3)
	n := CleanNode(g, 1)
	n.FW.Enqueue("a", 0)
	n.FW.Dests[0].BufR = &Message{Payload: "x"}
	n.FW.Dests[0].Queue = []graph.ProcessID{0, 1}

	c := n.Clone().(*Node)
	c.FW.Pending[0].Payload = "mutated"
	c.FW.Dests[0].BufR = nil
	c.FW.Dests[0].Queue[0] = 2
	c.RT.Dist[0] = 99

	if n.FW.Pending[0].Payload != "a" {
		t.Error("Pending shared")
	}
	if n.FW.Dests[0].BufR == nil {
		t.Error("buffer field shared")
	}
	if n.FW.Dests[0].Queue[0] != 0 {
		t.Error("queue shared")
	}
	if n.RT.Dist[0] == 99 {
		t.Error("routing table shared")
	}
}

func TestEnqueueRaisesRequestOnce(t *testing.T) {
	g := graph.Line(2)
	s := EmptyState(g)
	if s.Request {
		t.Fatal("fresh state must not request")
	}
	s.Enqueue("a", 1)
	if !s.Request || len(s.Pending) != 1 {
		t.Fatal("Enqueue must raise request and append")
	}
	s.Enqueue("b", 0)
	if len(s.Pending) != 2 {
		t.Fatal("second Enqueue must append")
	}
	d, ok := s.NextDestination()
	if !ok || d != 1 {
		t.Fatalf("NextDestination = %d,%v; want 1,true", d, ok)
	}
}

func TestNextDestinationEmpty(t *testing.T) {
	s := EmptyState(graph.Line(2))
	if _, ok := s.NextDestination(); ok {
		t.Fatal("NextDestination on empty pending must report false")
	}
}

func TestRandomConfigWellTyped(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := graph.Figure1Network()
	delta := g.MaxDegree()
	for trial := 0; trial < 30; trial++ {
		cfg := RandomConfig(g, rng, DefaultCorrupt)
		if len(cfg) != g.N() {
			t.Fatal("wrong config length")
		}
		for pp, s := range cfg {
			p := graph.ProcessID(pp)
			node := s.(*Node)
			for d := 0; d < g.N(); d++ {
				ds := node.FW.Dests[d]
				for _, m := range []*Message{ds.BufR, ds.BufE} {
					if m == nil {
						continue
					}
					if m.Valid {
						t.Fatal("initial messages must be invalid")
					}
					if m.Color < 0 || m.Color > delta {
						t.Fatalf("color %d out of range", m.Color)
					}
					if !g.IsNeighborOrSelf(p, m.LastHop) {
						t.Fatalf("last hop %d not in N_%d ∪ {%d}", m.LastHop, p, p)
					}
				}
				for _, q := range ds.Queue {
					if !g.IsNeighborOrSelf(p, q) {
						t.Fatalf("queue entry %d ill-typed at %d", q, p)
					}
				}
				if len(ds.Queue) > delta+1 {
					t.Fatalf("queue longer than Δ+1: %d", len(ds.Queue))
				}
			}
		}
	}
}

func TestRandomConfigRespectsOptions(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := graph.Ring(5)
	cfg := RandomConfig(g, rng, CorruptOptions{BufferFill: 0, CorruptRouting: false})
	for pp, s := range cfg {
		node := s.(*Node)
		for d := 0; d < g.N(); d++ {
			if node.FW.Dests[d].BufR != nil || node.FW.Dests[d].BufE != nil {
				t.Fatal("BufferFill=0 must leave buffers empty")
			}
			if len(node.FW.Dests[d].Queue) != 0 {
				t.Fatal("CorruptQueues=false must leave queues empty")
			}
		}
		if node.FW.Request {
			t.Fatal("PhantomRequests=false must leave request down")
		}
		for d := 0; d < g.N(); d++ {
			if node.RT.Dist[d] != g.Dist(graph.ProcessID(pp), graph.ProcessID(d)) {
				t.Fatal("CorruptRouting=false must give correct tables")
			}
		}
	}
}

func TestInvalidMessagesCollects(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := graph.Line(4)
	cfg := RandomConfig(g, rng, CorruptOptions{BufferFill: 1})
	inv := InvalidMessages(cfg)
	if len(inv) != 2*g.N()*g.N() { // every buffer of every (p, d) pair filled
		t.Fatalf("got %d invalid messages, want %d", len(inv), 2*g.N()*g.N())
	}
	for uid, m := range inv {
		if m.UID != uid || m.Valid {
			t.Fatal("bad invalid-message indexing")
		}
	}
}

func TestOccupancyAndQuiescent(t *testing.T) {
	g := graph.Line(3)
	cfg := CleanConfig(g)
	if !Quiescent(cfg) {
		t.Fatal("clean config must be quiescent")
	}
	total, valid := Occupancy(cfg, 0)
	if total != 0 || valid != 0 {
		t.Fatal("clean config must have empty buffers")
	}
	cfg[1].(*Node).FW.Dests[0].BufR = &Message{Payload: "x", Valid: true}
	cfg[2].(*Node).FW.Dests[0].BufE = &Message{Payload: "y"}
	if Quiescent(cfg) {
		t.Fatal("occupied config must not be quiescent")
	}
	total, valid = Occupancy(cfg, 0)
	if total != 2 || valid != 1 {
		t.Fatalf("occupancy = %d,%d; want 2,1", total, valid)
	}
	cfg2 := CleanConfig(g)
	cfg2[0].(*Node).FW.Enqueue("z", 1)
	if Quiescent(cfg2) {
		t.Fatal("pending generation must break quiescence")
	}
}

func TestCaterpillarTypeString(t *testing.T) {
	for typ, want := range map[CaterpillarType]string{
		None: "none", Type1: "type-1", Type2: "type-2", Type3: "type-3",
	} {
		if typ.String() != want {
			t.Errorf("%d.String() = %q, want %q", typ, typ.String(), want)
		}
	}
}

func TestRuleName(t *testing.T) {
	if RuleName("R3", 7) != "R3@7" {
		t.Fatalf("RuleName wrong: %s", RuleName("R3", 7))
	}
}

func TestNormalizeQueue(t *testing.T) {
	cases := []struct {
		stored, cands, want []graph.ProcessID
	}{
		{nil, nil, []graph.ProcessID{}},
		{nil, []graph.ProcessID{2, 5}, []graph.ProcessID{2, 5}},
		{[]graph.ProcessID{5, 2}, []graph.ProcessID{2, 5}, []graph.ProcessID{5, 2}},    // stored order kept
		{[]graph.ProcessID{9, 5}, []graph.ProcessID{2, 5}, []graph.ProcessID{5, 2}},    // stale 9 dropped, 2 appended
		{[]graph.ProcessID{5, 5, 2}, []graph.ProcessID{2, 5}, []graph.ProcessID{5, 2}}, // duplicates collapsed
		{[]graph.ProcessID{1, 2, 3}, []graph.ProcessID{}, []graph.ProcessID{}},         // all stale
		{[]graph.ProcessID{3}, []graph.ProcessID{1, 2, 3}, []graph.ProcessID{3, 1, 2}}, // head kept, arrivals appended
	}
	for i, c := range cases {
		got := normalizeQueue(c.stored, c.cands)
		if len(got) != len(c.want) {
			t.Fatalf("case %d: got %v, want %v", i, got, c.want)
		}
		for j := range got {
			if got[j] != c.want[j] {
				t.Fatalf("case %d: got %v, want %v", i, got, c.want)
			}
		}
	}
}
