package core_test

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"ssmfp/internal/checker"
	"ssmfp/internal/core"
	"ssmfp/internal/daemon"
	"ssmfp/internal/graph"
	sm "ssmfp/internal/statemodel"
)

// inject enqueues a send request at src before (or during) a run.
func inject(cfg []sm.State, src graph.ProcessID, payload string, dest graph.ProcessID) {
	cfg[src].(*core.Node).FW.Enqueue(payload, dest)
}

// runToTerminal drives the engine to a terminal configuration, failing the
// test if the step cap is hit.
func runToTerminal(t *testing.T, e *sm.Engine, maxSteps int) {
	t.Helper()
	_, terminal := e.Run(maxSteps, nil)
	if !terminal {
		t.Fatalf("execution did not terminate within %d steps", maxSteps)
	}
}

// newTracked builds the composed engine plus an attached tracker.
func newTracked(g *graph.Graph, d sm.Daemon, cfg []sm.State) (*sm.Engine, *checker.Tracker) {
	e := sm.NewEngine(g, core.FullProgram(g), d, cfg)
	tr := checker.New(g)
	tr.RecordInitial(cfg)
	tr.Attach(e)
	return e, tr
}

func assertSP(t *testing.T, tr *checker.Tracker, wantGenerated int) {
	t.Helper()
	if v := tr.Violations(); len(v) > 0 {
		t.Fatalf("specification violations: %v", v)
	}
	if tr.GeneratedCount() != wantGenerated {
		t.Fatalf("generated %d messages, want %d", tr.GeneratedCount(), wantGenerated)
	}
	if !tr.AllValidDelivered() {
		t.Fatalf("undelivered valid messages: %v", tr.UndeliveredValid())
	}
}

func TestSingleMessageCleanNetwork(t *testing.T) {
	g := graph.Line(5)
	cfg := core.CleanConfig(g)
	inject(cfg, 0, "hello", 4)
	e, tr := newTracked(g, daemon.NewSynchronous(1), cfg)
	runToTerminal(t, e, 10_000)
	assertSP(t, tr, 1)
	if tr.InvalidDeliveredTotal() != 0 {
		t.Fatal("clean run must deliver no invalid messages")
	}
}

func TestSelfSendDelivers(t *testing.T) {
	g := graph.Line(3)
	cfg := core.CleanConfig(g)
	inject(cfg, 1, "to-myself", 1)
	e, tr := newTracked(g, daemon.NewSynchronous(1), cfg)
	runToTerminal(t, e, 10_000)
	assertSP(t, tr, 1)
}

func TestIdenticalPayloadsBackToBack(t *testing.T) {
	// Two messages with the same useful information from the same source to
	// the same destination: the color flag must keep them apart and both
	// must be delivered exactly once (the proof's central subtlety).
	g := graph.Line(4)
	cfg := core.CleanConfig(g)
	inject(cfg, 0, "same", 3)
	inject(cfg, 0, "same", 3)
	inject(cfg, 0, "same", 3)
	e, tr := newTracked(g, daemon.NewSynchronous(7), cfg)
	runToTerminal(t, e, 50_000)
	assertSP(t, tr, 3)
	if len(tr.Deliveries()) != 3 {
		t.Fatalf("deliveries = %d, want exactly 3", len(tr.Deliveries()))
	}
}

func TestManyToOneFairNoStarvation(t *testing.T) {
	g := graph.Star(6) // leaves 1..5 all send to the center
	cfg := core.CleanConfig(g)
	for leaf := graph.ProcessID(1); leaf < 6; leaf++ {
		for k := 0; k < 3; k++ {
			inject(cfg, leaf, fmt.Sprintf("m-%d-%d", leaf, k), 0)
		}
	}
	e, tr := newTracked(g, daemon.NewWeaklyFair(daemon.NewCentralLIFO(), 50), cfg)
	runToTerminal(t, e, 500_000)
	assertSP(t, tr, 15)
}

func TestCorruptedRoutingStillDeliversExactlyOnce(t *testing.T) {
	// Inject a routing loop on the message's path; the message must still
	// be delivered exactly once after A repairs the tables.
	g := graph.Line(5)
	cfg := core.CleanConfig(g)
	tables := make([]*core.Node, g.N())
	for p := range tables {
		tables[p] = cfg[p].(*core.Node)
	}
	// For destination 4, make 1 and 2 route at each other (loop).
	tables[1].RT.Parent[4] = 2
	tables[2].RT.Parent[4] = 1
	tables[2].RT.Dist[4] = 3
	inject(cfg, 0, "through-the-loop", 4)
	e, tr := newTracked(g, daemon.NewCentralRandom(3), cfg)
	runToTerminal(t, e, 500_000)
	assertSP(t, tr, 1)
}

func TestFullyCorruptConfigurationSnapStabilizes(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	for trial := 0; trial < 8; trial++ {
		g := graph.RandomConnected(4+rng.Intn(5), 12, rng)
		cfg := core.RandomConfig(g, rng, core.DefaultCorrupt)
		var want int
		for k := 0; k < 5; k++ {
			src := graph.ProcessID(rng.Intn(g.N()))
			dst := graph.ProcessID(rng.Intn(g.N()))
			inject(cfg, src, fmt.Sprintf("v%d", k), dst)
			want++
		}
		e, tr := newTracked(g, daemon.NewSynchronous(rng.Int63()), cfg)
		runToTerminal(t, e, 2_000_000)
		assertSP(t, tr, want)
		if !core.Quiescent(snapshot(e)) {
			t.Fatal("terminal configuration must be quiescent")
		}
	}
}

func snapshot(e *sm.Engine) []sm.State {
	cfg := make([]sm.State, e.Graph().N())
	for p := 0; p < e.Graph().N(); p++ {
		cfg[p] = e.StateOf(graph.ProcessID(p))
	}
	return cfg
}

func TestNoLossInvariantHoldsEveryStep(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	g := graph.Figure1Network()
	cfg := core.RandomConfig(g, rng, core.DefaultCorrupt)
	inject(cfg, 3, "precious-1", 2)
	inject(cfg, 4, "precious-2", 0)
	inject(cfg, 0, "precious-3", 4)
	e, tr := newTracked(g, daemon.NewCentralRandom(5), cfg)
	for i := 0; i < 1_000_000; i++ {
		if !e.Step() {
			break
		}
		if err := tr.CheckNoLoss(snapshot(e)); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
	if !e.Terminal() {
		t.Fatal("did not terminate")
	}
	assertSP(t, tr, 3)
}

func TestInvalidDeliveriesWithinProp4Bound(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 6; trial++ {
		g := graph.RandomConnected(4+rng.Intn(4), 10, rng)
		cfg := core.RandomConfig(g, rng, core.CorruptOptions{
			BufferFill:     1, // every buffer stuffed with an invalid message
			CorruptRouting: true,
			CorruptQueues:  true,
		})
		e, tr := newTracked(g, daemon.NewSynchronous(rng.Int63()), cfg)
		runToTerminal(t, e, 2_000_000)
		for d, c := range tr.InvalidDeliveredPerDest() {
			if c > 2*g.N() {
				t.Fatalf("trial %d: destination %d got %d invalid deliveries > 2n=%d", trial, d, c, 2*g.N())
			}
		}
		if len(tr.Violations()) > 0 {
			t.Fatalf("trial %d: %v", trial, tr.Violations())
		}
	}
}

func TestMidRunInjectionUnderLoad(t *testing.T) {
	// Keep injecting messages while the system is still digesting invalid
	// traffic and repairing tables; everything must still be exactly-once.
	rng := rand.New(rand.NewSource(31))
	g := graph.Grid(3, 3)
	cfg := core.RandomConfig(g, rng, core.DefaultCorrupt)
	e, tr := newTracked(g, daemon.NewDistributedRandom(9, 0.5), cfg)

	injected := 0
	for i := 0; i < 2_000_000; i++ {
		if i%50 == 0 && injected < 20 {
			src := graph.ProcessID(rng.Intn(g.N()))
			dst := graph.ProcessID(rng.Intn(g.N()))
			e.StateOf(src).(*core.Node).FW.Enqueue(fmt.Sprintf("live-%d", injected), dst)
			injected++
		}
		if !e.Step() {
			break
		}
	}
	if !e.Terminal() {
		t.Fatal("did not terminate")
	}
	assertSP(t, tr, injected)
}

func TestCaterpillarCensusConsistentDuringRun(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	g := graph.Figure1Network()
	cfg := core.RandomConfig(g, rng, core.DefaultCorrupt)
	inject(cfg, 0, "x", 4)
	e, _ := newTracked(g, daemon.NewCentralRandom(8), cfg)
	for i := 0; i < 500_000; i++ {
		for d := graph.ProcessID(0); int(d) < g.N(); d++ {
			census := core.CaterpillarCensus(g, snapshot(e), d)
			total, _ := core.Occupancy(snapshot(e), d)
			heads := census[core.Type1] + census[core.Type2] + census[core.Type3]
			if heads > total {
				t.Fatalf("more caterpillar heads (%d) than occupied buffers (%d) for dest %d", heads, total, d)
			}
			if total > 0 && heads == 0 {
				t.Fatalf("occupied buffers but no caterpillar head for dest %d", d)
			}
		}
		if !e.Step() {
			break
		}
	}
}

func TestDeterministicReplaySameSeed(t *testing.T) {
	run := func() (int, int, int) {
		rng := rand.New(rand.NewSource(99))
		g := graph.Ring(6)
		cfg := core.RandomConfig(g, rng, core.DefaultCorrupt)
		inject(cfg, 0, "a", 3)
		inject(cfg, 2, "b", 5)
		e, tr := newTracked(g, daemon.NewCentralRandom(4), cfg)
		e.Run(2_000_000, nil)
		return e.Steps(), e.Rounds(), len(tr.Deliveries())
	}
	s1, r1, d1 := run()
	s2, r2, d2 := run()
	if s1 != s2 || r1 != r2 || d1 != d2 {
		t.Fatalf("non-deterministic run: (%d,%d,%d) vs (%d,%d,%d)", s1, r1, d1, s2, r2, d2)
	}
}

// Property: for random small graphs, random corruption, random daemon mix
// and a random batch of sends, SSMFP satisfies SP and terminates.
func TestQuickSnapStabilization(t *testing.T) {
	if testing.Short() {
		t.Skip("property test skipped in -short mode")
	}
	f := func(seed int64, nRaw, kRaw, daemonRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + int(nRaw)%5
		g := graph.RandomConnected(n, n+int(kRaw)%6, rng)
		cfg := core.RandomConfig(g, rng, core.DefaultCorrupt)
		want := 1 + int(kRaw)%4
		for k := 0; k < want; k++ {
			inject(cfg, graph.ProcessID(rng.Intn(n)), fmt.Sprintf("q%d", k), graph.ProcessID(rng.Intn(n)))
		}
		var d sm.Daemon
		switch daemonRaw % 4 {
		case 0:
			d = daemon.NewSynchronous(seed)
		case 1:
			d = daemon.NewCentralRandom(seed)
		case 2:
			d = daemon.NewDistributedRandom(seed, 0.4)
		default:
			d = daemon.NewWeaklyFair(daemon.NewCentralLIFO(), 8*n)
		}
		e, tr := newTracked(g, d, cfg)
		_, terminal := e.Run(4_000_000, nil)
		return terminal && len(tr.Violations()) == 0 && tr.AllValidDelivered() && tr.GeneratedCount() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestR5SelfHopDoesNotEraseFreshGeneration(t *testing.T) {
	// Regression for a reproduction finding: with R5 applied at q = p (as
	// Algorithm 1 literally reads), a freshly generated (m, p, 0) in
	// bufR_p is erased whenever the processor's own bufE_p holds an
	// invalid message with the same payload and color 0 — losing a valid
	// message. R5 must be restricted to neighbors (q ∈ N_p).
	g := graph.Ring(6)
	cfg := core.CleanConfig(g)
	cfg[3].(*core.Node).FW.Dests[0].BufE = &core.Message{
		Payload: "x", LastHop: 3, Color: 0, UID: 1 << 40, Src: 3, Dest: 0, Valid: false}
	inject(cfg, 3, "x", 0) // same payload; R1 will stamp color 0
	e, tr := newTracked(g, daemon.NewCentralRandom(2009), cfg)
	for i := 0; i < 1_000_000; i++ {
		if err := tr.CheckNoLoss(snapshot(e)); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		if !e.Step() {
			break
		}
	}
	assertSP(t, tr, 1)
}

func TestCollidingPayloadsUnderFullCorruption(t *testing.T) {
	// All traffic shares payloads with the planted invalid messages (the
	// corruption alphabet) so every (m, q, c) comparison is under maximal
	// collision pressure.
	rng := rand.New(rand.NewSource(4242))
	for trial := 0; trial < 10; trial++ {
		g := graph.RandomConnected(4+rng.Intn(5), 12, rng)
		cfg := core.RandomConfig(g, rng, core.DefaultCorrupt)
		alphabet := []string{"m0", "m1", "m2"} // DefaultCorrupt's payloads
		want := 0
		for k := 0; k < 6; k++ {
			src := graph.ProcessID(rng.Intn(g.N()))
			dst := graph.ProcessID(rng.Intn(g.N()))
			inject(cfg, src, alphabet[rng.Intn(len(alphabet))], dst)
			want++
		}
		e, tr := newTracked(g, daemon.NewCentralRandom(rng.Int63()), cfg)
		for i := 0; i < 4_000_000; i++ {
			if i%64 == 0 {
				if err := tr.CheckNoLoss(snapshot(e)); err != nil {
					t.Fatalf("trial %d step %d: %v", trial, i, err)
				}
			}
			if !e.Step() {
				break
			}
		}
		if !e.Terminal() {
			t.Fatalf("trial %d did not terminate", trial)
		}
		assertSP(t, tr, want)
	}
}

func TestWellTypednessPreservedEveryStep(t *testing.T) {
	// §3.2's domains are invariant: starting well-typed (but arbitrary),
	// no rule ever produces an out-of-domain value.
	rng := rand.New(rand.NewSource(808))
	for trial := 0; trial < 4; trial++ {
		g := graph.RandomConnected(4+rng.Intn(4), 10, rng)
		cfg := core.RandomConfig(g, rng, core.DefaultCorrupt)
		inject(cfg, 0, "wt", graph.ProcessID(g.N()-1))
		e, _ := newTracked(g, daemon.NewCentralRandom(rng.Int63()), cfg)
		for i := 0; i < 500_000; i++ {
			if err := checker.WellTyped(g, snapshot(e)); err != nil {
				t.Fatalf("trial %d step %d: %v", trial, i, err)
			}
			if !e.Step() {
				break
			}
		}
		if !e.Terminal() {
			t.Fatalf("trial %d did not terminate", trial)
		}
	}
}
