package core

import (
	"ssmfp/internal/graph"
	"ssmfp/internal/routing"
	sm "ssmfp/internal/statemodel"
)

// CaterpillarType classifies a buffer occurrence of a message per
// Definition 3 of the paper. The proofs track a message's progress as its
// caterpillar cycles 1 → 2 → 3 → (1 on the next hop); Figure 4 illustrates
// the three shapes.
type CaterpillarType int

// Caterpillar kinds; None means the buffer occurrence heads no caterpillar
// (e.g. a reception-buffer copy whose origin's emission buffer still holds
// the message — the tail of someone else's caterpillar).
const (
	None CaterpillarType = iota
	Type1
	Type2
	Type3
)

func (t CaterpillarType) String() string {
	switch t {
	case Type1:
		return "type-1"
	case Type2:
		return "type-2"
	case Type3:
		return "type-3"
	default:
		return "none"
	}
}

// routingProgram adapts routing.NewProgram to the composed Node state.
func routingProgram(g *graph.Graph) sm.Program {
	return routing.NewProgram(g, RoutingOf)
}

// ClassifyR classifies the message in bufR_p(d) of the configuration cfg.
// A reception occurrence (m, q, c) heads a caterpillar of type 1 iff the
// origin q's emission buffer no longer carries (m, ·, c) or the message was
// generated here (q = p).
func ClassifyR(g *graph.Graph, cfg []sm.State, p, d graph.ProcessID) CaterpillarType {
	m := fw(cfg[p]).Dests[d].BufR
	if m == nil {
		return None
	}
	if m.LastHop == p {
		return Type1
	}
	if !fw(cfg[m.LastHop]).Dests[d].BufE.SameMC(m) {
		return Type1
	}
	return None
}

// ClassifyE classifies the message in bufE_p(d): type 2 when the next hop's
// reception buffer does not hold the forwarded copy (m, p, c) yet, type 3
// when some neighbor's reception buffer does. At the destination itself
// (p = d, where nextHop is not consulted and R6 consumes directly) the
// occurrence is classified type 2 unless a neighbor holds a copy.
func ClassifyE(g *graph.Graph, cfg []sm.State, p, d graph.ProcessID) CaterpillarType {
	m := fw(cfg[p]).Dests[d].BufE
	if m == nil {
		return None
	}
	for _, q := range g.Neighbors(p) {
		if matchesForward(fw(cfg[q]).Dests[d].BufR, m, p) {
			return Type3
		}
	}
	return Type2
}

// CaterpillarCensus counts, over the whole configuration, the buffer
// occurrences of each caterpillar type for destination d. Invariant (used
// by tests and experiment E-F4): every occupied buffer is either the head
// of a caterpillar or the tail of exactly one type-3 caterpillar.
func CaterpillarCensus(g *graph.Graph, cfg []sm.State, d graph.ProcessID) map[CaterpillarType]int {
	out := make(map[CaterpillarType]int)
	for pp := 0; pp < g.N(); pp++ {
		p := graph.ProcessID(pp)
		if t := ClassifyR(g, cfg, p, d); t != None {
			out[t]++
		}
		if t := ClassifyE(g, cfg, p, d); t != None {
			out[t]++
		}
	}
	return out
}

// Occupancy returns how many buffers currently hold a message for
// destination d (0..2n), and how many of those hold valid messages.
func Occupancy(cfg []sm.State, d graph.ProcessID) (total, valid int) {
	for _, s := range cfg {
		ds := fw(s).Dests[d]
		for _, m := range []*Message{ds.BufR, ds.BufE} {
			if m != nil {
				total++
				if m.Valid {
					valid++
				}
			}
		}
	}
	return total, valid
}

// Quiescent reports whether no message for any destination occupies any
// buffer and no generation is pending anywhere — the all-delivered state
// experiments run to.
func Quiescent(cfg []sm.State) bool {
	for _, s := range cfg {
		n := fw(s)
		if len(n.Pending) > 0 {
			return false
		}
		for _, ds := range n.Dests {
			if ds.BufR != nil || ds.BufE != nil {
				return false
			}
		}
	}
	return true
}
