package core

import (
	"fmt"
	"strings"

	sm "ssmfp/internal/statemodel"
)

// Fingerprint renders a configuration of composed Nodes canonically: equal
// configurations (routing tables, buffers, queues, higher-layer state)
// produce equal strings. It is the state identity used by the exhaustive
// explorer (internal/explore) to deduplicate the reachable state space.
func Fingerprint(cfg []sm.State) string {
	var sb strings.Builder
	for p, s := range cfg {
		n := s.(*Node)
		fmt.Fprintf(&sb, "p%d[", p)
		sb.WriteString("rt:")
		for d := range n.RT.Dist {
			fmt.Fprintf(&sb, "%d>%d;", n.RT.Dist[d], n.RT.Parent[d])
		}
		fmt.Fprintf(&sb, " rq:%v seq:%d pd:", n.FW.Request, n.FW.NextSeq)
		for _, out := range n.FW.Pending {
			fmt.Fprintf(&sb, "%s>%d;", out.Payload, out.Dest)
		}
		for d := range n.FW.Dests {
			ds := &n.FW.Dests[d]
			if ds.BufR == nil && ds.BufE == nil && len(ds.Queue) == 0 {
				continue
			}
			fmt.Fprintf(&sb, " d%d:%s/%s/q%v", d, fingerprintMsg(ds.BufR), fingerprintMsg(ds.BufE), ds.Queue)
		}
		sb.WriteString("] ")
	}
	return sb.String()
}

func fingerprintMsg(m *Message) string {
	if m == nil {
		return "-"
	}
	// UID and validity are part of state identity: two configurations that
	// differ only in which message occupies a buffer are different states.
	return fmt.Sprintf("(%s,%d,%d,%x,%v)", m.Payload, m.LastHop, m.Color, m.UID, m.Valid)
}
