// Package core implements SSMFP, the snap-stabilizing message forwarding
// protocol of the paper (§3.2, Algorithm 1). Every processor p keeps, per
// destination d, a reception buffer bufR_p(d) and an emission buffer
// bufE_p(d); messages are triples (m, q, c) of useful information, last hop
// and color; six guarded rules R1–R6 generate, advance, duplicate-erase and
// deliver messages so that — provided the self-stabilizing silent routing
// algorithm A (internal/routing) runs simultaneously with priority — every
// generated message is delivered to its destination once and only once,
// regardless of the initial configuration (Specification SP).
package core

import (
	"fmt"

	"ssmfp/internal/graph"
	"ssmfp/internal/obs"
)

// Message is the protocol's message triple (m, q, c): Payload is the useful
// information m, LastHop the identity q ∈ N_p ∪ {p} of the last processor
// the message crossed, Color the flag c ∈ {0..Δ} that prevents merges and
// losses. The destination is implicit in the buffer index holding the
// message.
//
// The remaining fields are simulation-side bookkeeping that no guard or
// action ever reads: UID is the true identity of the message (the paper's
// proof-level notion that two messages with equal useful information are
// still distinct messages), Src/Dest/Valid/GenStep feed the specification
// checkers.
type Message struct {
	Payload string
	LastHop graph.ProcessID
	Color   int

	UID     uint64
	Src     graph.ProcessID
	Dest    graph.ProcessID
	Valid   bool
	GenStep int
}

// SameMC reports whether two messages agree on payload and color — the
// paper's "(m, q', c)" comparisons in R2 and R5 that ignore the last hop.
// Either operand may be nil (an empty buffer), which never matches.
func (m *Message) SameMC(o *Message) bool {
	if m == nil || o == nil {
		return false
	}
	return m.Payload == o.Payload && m.Color == o.Color
}

// Equals reports whether two messages agree on the full protocol triple
// (payload, last hop, color) — the exact "(m, p, c)" comparison of R4.
// Either operand may be nil, which never matches.
func (m *Message) Equals(o *Message) bool {
	if m == nil || o == nil {
		return false
	}
	return m.Payload == o.Payload && m.LastHop == o.LastHop && m.Color == o.Color
}

// WithHop returns a copy of m carrying a new last hop (the forwarding copy
// of R3). Messages are treated as immutable values; rules always construct
// fresh copies.
func (m *Message) WithHop(q graph.ProcessID) *Message {
	c := *m
	c.LastHop = q
	return &c
}

// WithHopColor returns a copy of m with a new last hop and color (the
// internal move of R2).
func (m *Message) WithHopColor(q graph.ProcessID, color int) *Message {
	c := *m
	c.LastHop = q
	c.Color = color
	return &c
}

// Record converts the message into its observability image: the value an
// obs.Event carries. A nil message records as nil (an empty buffer).
func (m *Message) Record() *obs.MsgRecord {
	if m == nil {
		return nil
	}
	return &obs.MsgRecord{Payload: m.Payload, LastHop: m.LastHop, Color: m.Color, UID: m.UID, Valid: m.Valid}
}

// String renders the protocol-visible triple plus validity, e.g.
// "(hello,q=2,c=1,valid)".
func (m *Message) String() string {
	if m == nil {
		return "∅"
	}
	v := "invalid"
	if m.Valid {
		v = "valid"
	}
	return fmt.Sprintf("(%s,q=%d,c=%d,%s)", m.Payload, m.LastHop, m.Color, v)
}

// GenerateEvent is emitted by R1 when a message is accepted from the higher
// layer. DeliverEvent is emitted by R6 when a message is handed to the
// higher layer at its destination. Both carry the delivered message; the
// checkers correlate them by UID. ServeEvent is emitted whenever
// choice_p(d) serves a candidate (R1 serving the processor itself, R3
// serving a neighbor) — the observable the fairness analyses of
// Propositions 5 and 6 are about.
type (
	GenerateEvent struct{ Msg *Message }
	DeliverEvent  struct{ Msg *Message }
	ServeEvent    struct {
		Dest   graph.ProcessID // destination whose reception buffer was filled
		Served graph.ProcessID // the candidate that was served
	}
)

// Event kinds used with statemodel.View.Emit.
const (
	KindGenerate = "generate"
	KindDeliver  = "deliver"
	KindServe    = "serve"
)
