package core

import (
	"math/rand"

	"ssmfp/internal/graph"
	"ssmfp/internal/routing"
	sm "ssmfp/internal/statemodel"
)

// Outbound is a higher-layer send request: a payload waiting to be injected
// for a destination. The paper's nextMessage_p / nextDestination_p macros
// read the head of the pending FIFO.
type Outbound struct {
	Payload string
	Dest    graph.ProcessID
}

// DestState is the per-destination part of a processor's forwarding state:
// the two buffers of the paper's buffer graph plus the fair-selection queue
// behind choice_p(d) (a FIFO over N_p ∪ {p}, length at most Δ+1).
type DestState struct {
	BufR  *Message // reception buffer; nil = empty
	BufE  *Message // emission buffer; nil = empty
	Queue []graph.ProcessID
}

func (d *DestState) clone() DestState {
	return DestState{BufR: d.BufR, BufE: d.BufE, Queue: append([]graph.ProcessID(nil), d.Queue...)}
}

// NodeState is the forwarding state of one processor: the shared request
// bit of the higher-layer interface, the pending FIFO behind the
// nextMessage/nextDestination macros, per-destination buffer pairs, and a
// sequence counter minting simulation UIDs for generated messages.
type NodeState struct {
	Request bool
	Pending []Outbound
	Dests   []DestState
	NextSeq uint64
}

// Clone deep-copies the forwarding state. Messages are immutable and may be
// shared between clones.
func (s *NodeState) Clone() *NodeState {
	c := &NodeState{
		Request: s.Request,
		Pending: append([]Outbound(nil), s.Pending...),
		Dests:   make([]DestState, len(s.Dests)),
		NextSeq: s.NextSeq,
	}
	for i := range s.Dests {
		c.Dests[i] = s.Dests[i].clone()
	}
	return c
}

// NextDestination returns the destination of the head pending message and
// whether one exists (the paper's nextDestination_p macro, null when the
// higher layer has nothing waiting).
func (s *NodeState) NextDestination() (graph.ProcessID, bool) {
	if len(s.Pending) == 0 {
		return 0, false
	}
	return s.Pending[0].Dest, true
}

// Enqueue appends a higher-layer send request and raises the request bit if
// it is down — the only transition the paper allows the higher layer
// ("the higher layer can set request_p to true when its value is false and
// when there is a waiting message").
func (s *NodeState) Enqueue(payload string, dest graph.ProcessID) {
	s.Pending = append(s.Pending, Outbound{Payload: payload, Dest: dest})
	if !s.Request {
		s.Request = true
	}
}

// Node is the complete per-processor state of the composed system: the
// routing table maintained by the self-stabilizing algorithm A and the
// SSMFP forwarding state. Both protocols' rules operate on this one state
// type, A at priority routing.Priority and SSMFP at PriorityForwarding.
type Node struct {
	RT *routing.NodeState
	FW *NodeState
}

// Clone implements statemodel.State.
func (n *Node) Clone() sm.State { return &Node{RT: n.RT.Clone(), FW: n.FW.Clone()} }

// RoutingOf adapts Node for routing.NewProgram.
func RoutingOf(s sm.State) *routing.NodeState { return s.(*Node).RT }

// fw extracts the forwarding component.
func fw(s sm.State) *NodeState { return s.(*Node).FW }

// PriorityForwarding is the rule priority of SSMFP; strictly lower priority
// (larger number) than the routing algorithm, per the paper's assumption
// that A preempts SSMFP at any processor where both are enabled.
const PriorityForwarding = routing.Priority + 1

// CleanNode returns the "good" initial state for processor p: correct
// routing tables, empty buffers, empty queues, no request. Used by
// fault-free experiments (E-X2) and as the baseline for corruption.
func CleanNode(g *graph.Graph, p graph.ProcessID) *Node {
	return &Node{RT: routing.CorrectState(g, p), FW: EmptyState(g)}
}

// EmptyState returns a forwarding state with all buffers empty.
func EmptyState(g *graph.Graph) *NodeState {
	return &NodeState{Dests: make([]DestState, g.N())}
}

// CleanConfig returns the fault-free initial configuration on g.
func CleanConfig(g *graph.Graph) []sm.State {
	cfg := make([]sm.State, g.N())
	for p := 0; p < g.N(); p++ {
		cfg[p] = CleanNode(g, graph.ProcessID(p))
	}
	return cfg
}

// CorruptOptions tunes RandomConfig's adversarial initial configurations.
type CorruptOptions struct {
	// BufferFill is the probability that each buffer holds an invalid
	// message.
	BufferFill float64
	// PayloadAlphabet is the set of payloads invalid messages draw from;
	// a small alphabet forces (m, q, c) collisions with valid traffic.
	// Empty means {"m0", "m1", "m2"}.
	PayloadAlphabet []string
	// CorruptRouting randomizes routing tables when true; otherwise tables
	// start correct.
	CorruptRouting bool
	// CorruptQueues fills choice queues with random well-typed contents.
	CorruptQueues bool
	// PhantomRequests randomly raises request bits with nothing pending.
	PhantomRequests bool
}

// DefaultCorrupt is the standard adversarial configuration used by the
// experiments: everything the paper allows to be arbitrary is randomized.
var DefaultCorrupt = CorruptOptions{
	BufferFill:      0.5,
	CorruptRouting:  true,
	CorruptQueues:   true,
	PhantomRequests: true,
}

var invalidUID uint64 = 1<<63 + 1

// RandomConfig returns a well-typed but otherwise arbitrary initial
// configuration: the starting point of every snap-stabilization experiment.
// Message fields stay in their domains (LastHop ∈ N_p ∪ {p}, Color ∈
// {0..Δ}) as §3.2 defines, but contents are adversarial: invalid messages,
// corrupted queues, phantom requests and (optionally) corrupted routing
// tables. Invalid messages receive fresh UIDs with the high bit set so
// checkers can track them individually.
func RandomConfig(g *graph.Graph, rng *rand.Rand, opts CorruptOptions) []sm.State {
	alphabet := opts.PayloadAlphabet
	if len(alphabet) == 0 {
		alphabet = []string{"m0", "m1", "m2"}
	}
	delta := g.MaxDegree()
	cfg := make([]sm.State, g.N())
	for pp := 0; pp < g.N(); pp++ {
		p := graph.ProcessID(pp)
		var rt *routing.NodeState
		if opts.CorruptRouting {
			rt = routing.RandomState(g, p, rng)
		} else {
			rt = routing.CorrectState(g, p)
		}
		fwState := EmptyState(g)
		hops := append(append([]graph.ProcessID(nil), g.Neighbors(p)...), p)
		for d := 0; d < g.N(); d++ {
			mk := func() *Message {
				invalidUID++
				return &Message{
					Payload: alphabet[rng.Intn(len(alphabet))],
					LastHop: hops[rng.Intn(len(hops))],
					Color:   rng.Intn(delta + 1),
					UID:     invalidUID,
					Src:     p,
					Dest:    graph.ProcessID(d),
					Valid:   false,
				}
			}
			if rng.Float64() < opts.BufferFill {
				fwState.Dests[d].BufR = mk()
			}
			if rng.Float64() < opts.BufferFill {
				fwState.Dests[d].BufE = mk()
			}
			if opts.CorruptQueues {
				perm := rng.Perm(len(hops))
				k := rng.Intn(len(hops) + 1)
				for _, i := range perm[:k] {
					fwState.Dests[d].Queue = append(fwState.Dests[d].Queue, hops[i])
				}
			}
		}
		if opts.PhantomRequests && rng.Intn(2) == 0 {
			fwState.Request = true
		}
		cfg[pp] = &Node{RT: rt, FW: fwState}
	}
	return cfg
}

// InvalidMessages returns the messages occupying buffers in the
// configuration that are not marked Valid, keyed by UID. Proposition 4
// bounds how many of these can ever be delivered to a destination.
func InvalidMessages(cfg []sm.State) map[uint64]*Message {
	out := make(map[uint64]*Message)
	for _, s := range cfg {
		for _, ds := range fw(s).Dests {
			for _, m := range []*Message{ds.BufR, ds.BufE} {
				if m != nil && !m.Valid {
					out[m.UID] = m
				}
			}
		}
	}
	return out
}
