package core_test

import (
	"strings"
	"testing"

	"ssmfp/internal/core"
	"ssmfp/internal/explore"
	"ssmfp/internal/graph"
)

// TestExhaustiveLiteralR5FindsTheLoss runs the exhaustive explorer against
// the composed system with R5 exactly as Algorithm 1 prints it (no q ≠ p
// restriction) on the collision scenario of the reproduction finding. The
// explorer must find a schedule that loses the freshly generated valid
// message — demonstrating both that the literal rule is unsound and that
// the model checker is strong enough to catch it. The fixed rule passes
// the same exploration (TestExhaustiveR5RegressionScenario in
// internal/explore).
func TestExhaustiveLiteralR5FindsTheLoss(t *testing.T) {
	g := graph.Line(3)
	cfg := core.CleanConfig(g)
	cfg[0].(*core.Node).FW.Dests[2].BufE = &core.Message{
		Payload: "x", LastHop: 0, Color: 0, UID: 1 << 51, Src: 0, Dest: 2, Valid: false,
	}
	cfg[0].(*core.Node).FW.Enqueue("x", 2)

	r := explore.Explore(g, core.LiteralR5Program(g), cfg, explore.CoreOptions(g))
	if r.InvariantErr == nil {
		t.Fatalf("the literal R5 should lose the message under some schedule: %s", r)
	}
	if !strings.Contains(r.InvariantErr.Error(), "lost") {
		t.Fatalf("expected a loss, got: %v", r.InvariantErr)
	}
	if len(r.Witness) == 0 {
		t.Fatal("counterexample witness missing")
	}
	t.Logf("literal R5 loss found after %d states: %v\n  schedule: %v", r.States, r.InvariantErr, r.Witness)
}
