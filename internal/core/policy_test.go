package core_test

import (
	"fmt"
	"math/rand"
	"testing"

	"ssmfp/internal/checker"
	"ssmfp/internal/core"
	"ssmfp/internal/daemon"
	"ssmfp/internal/graph"
	sm "ssmfp/internal/statemodel"
)

func newTrackedWithPolicy(g *graph.Graph, policy core.ChoicePolicy, d sm.Daemon, cfg []sm.State) (*sm.Engine, *checker.Tracker) {
	e := sm.NewEngine(g, core.FullProgramWithPolicy(g, policy), d, cfg)
	tr := checker.New(g)
	tr.RecordInitial(cfg)
	tr.Attach(e)
	return e, tr
}

func TestPolicyStrings(t *testing.T) {
	if core.PolicyQueue.String() != "fifo-queue" ||
		core.PolicyLowestID.String() != "lowest-id" ||
		core.PolicyRotating.String() != "rotating" ||
		core.ChoicePolicy(9).String() != "unknown-policy" {
		t.Fatal("policy names wrong")
	}
}

func TestRotatingPolicySnapStabilizes(t *testing.T) {
	rng := rand.New(rand.NewSource(2025))
	for trial := 0; trial < 6; trial++ {
		g := graph.RandomConnected(4+rng.Intn(5), 12, rng)
		cfg := core.RandomConfig(g, rng, core.DefaultCorrupt)
		want := 0
		for k := 0; k < 5; k++ {
			inject(cfg, graph.ProcessID(rng.Intn(g.N())), fmt.Sprintf("rot-%d", k), graph.ProcessID(rng.Intn(g.N())))
			want++
		}
		e, tr := newTrackedWithPolicy(g, core.PolicyRotating, daemon.NewCentralRandom(rng.Int63()), cfg)
		runToTerminal(t, e, 4_000_000)
		assertSP(t, tr, want)
	}
}

func TestRotatingPolicyServesRoundRobin(t *testing.T) {
	// Star center pulling from three loaded leaves: rotating must cycle
	// 1, 2, 3, 1, ... regardless of who was served before.
	g := graph.Star(4)
	cfg := core.CleanConfig(g)
	for _, leaf := range []graph.ProcessID{1, 2, 3} {
		cfg[leaf].(*core.Node).FW.Dests[0].BufE = &core.Message{
			Payload: fmt.Sprintf("L%d", leaf), LastHop: leaf, Color: 0,
			UID: uint64(leaf), Valid: true, Dest: 0,
		}
	}
	prog := sm.NewProgram(core.DestRulesForTest(0, core.PolicyRotating)[2]) // R3@0 only
	e := sm.NewEngine(g, prog, syncOnly{}, cfg)

	var served []graph.ProcessID
	for i := 0; i < 6; i++ {
		e.Step()
		m := e.StateOf(0).(*core.Node).FW.Dests[0].BufR
		if m == nil {
			t.Fatal("pull failed")
		}
		served = append(served, m.LastHop)
		e.StateOf(0).(*core.Node).FW.Dests[0].BufR = nil // drain for the next pull
	}
	want := []graph.ProcessID{1, 2, 3, 1, 2, 3}
	for i := range want {
		if served[i] != want[i] {
			t.Fatalf("rotation order = %v, want %v", served, want)
		}
	}
}

func TestLowestIDPolicyPassesWaitingCandidates(t *testing.T) {
	// Same setup; lowest-id must serve leaf 1 forever while it stays a
	// candidate — the unfairness the paper's queue exists to prevent.
	g := graph.Star(4)
	cfg := core.CleanConfig(g)
	for _, leaf := range []graph.ProcessID{1, 2, 3} {
		cfg[leaf].(*core.Node).FW.Dests[0].BufE = &core.Message{
			Payload: fmt.Sprintf("L%d", leaf), LastHop: leaf, Color: 0,
			UID: uint64(leaf), Valid: true, Dest: 0,
		}
	}
	prog := sm.NewProgram(core.DestRulesForTest(0, core.PolicyLowestID)[2])
	e := sm.NewEngine(g, prog, syncOnly{}, cfg)
	for i := 0; i < 5; i++ {
		e.Step()
		m := e.StateOf(0).(*core.Node).FW.Dests[0].BufR
		if m.LastHop != 1 {
			t.Fatalf("lowest-id served %d, want 1 every time", m.LastHop)
		}
		e.StateOf(0).(*core.Node).FW.Dests[0].BufR = nil
	}
}

// syncOnly activates every enabled processor with its first rule (local
// copy for the external test package).
type syncOnly struct{}

func (syncOnly) Name() string { return "sync-only" }
func (syncOnly) Select(step int, enabled []sm.Choice) []sm.Selection {
	out := make([]sm.Selection, len(enabled))
	for i, c := range enabled {
		out[i] = sm.Selection{Process: c.Process, Rule: c.Rules[0]}
	}
	return out
}
