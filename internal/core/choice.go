package core

import (
	"ssmfp/internal/graph"
	sm "ssmfp/internal/statemodel"
)

// candidates returns, in deterministic order (sorted neighbors, then the
// processor itself), the processors currently satisfying the candidacy
// predicate of choice_p(d): neighbors q with a message in bufE_q(d) routed
// to p (nextHop_q(d) = p), plus p itself when the higher layer requests a
// generation for destination d.
func candidates(v *sm.View, d graph.ProcessID) []graph.ProcessID {
	p := v.ID()
	var cands []graph.ProcessID
	for _, q := range v.Neighbors() {
		nq := v.Read(q).(*Node)
		if nq.FW.Dests[d].BufE != nil && nq.RT.NextHop(d) == p {
			cands = append(cands, q)
		}
	}
	self := v.Self().(*Node).FW
	if self.Request {
		if nd, ok := self.NextDestination(); ok && nd == d {
			cands = append(cands, p)
		}
	}
	return cands
}

// normalizeQueue reconciles the persisted FIFO with the current candidate
// set: stored entries that are still candidates keep their order (no
// candidate is ever passed by a later arrival), stale or duplicate or
// ill-typed entries are dropped, and new candidates are appended in
// deterministic order. The result has length ≤ Δ+1 since candidates ⊆
// N_p ∪ {p}. Both guards and actions recompute this same function, so
// guards stay side-effect free while fairness state persists across steps.
func normalizeQueue(stored, cands []graph.ProcessID) []graph.ProcessID {
	isCand := make(map[graph.ProcessID]bool, len(cands))
	for _, q := range cands {
		isCand[q] = true
	}
	out := make([]graph.ProcessID, 0, len(cands))
	seen := make(map[graph.ProcessID]bool, len(cands))
	for _, q := range stored {
		if isCand[q] && !seen[q] {
			out = append(out, q)
			seen[q] = true
		}
	}
	for _, q := range cands {
		if !seen[q] {
			out = append(out, q)
			seen[q] = true
		}
	}
	return out
}

// ChoicePolicy selects among the implementations of the choice_p(d)
// macro. The paper prescribes the FIFO queue (PolicyQueue) and its
// conclusion asks whether a different selection scheme could improve the
// worst case — experiment E-X5 ablates the alternatives.
type ChoicePolicy int

// The available policies.
const (
	// PolicyQueue is the paper's scheme: a persisted FIFO of candidates
	// (length ≤ Δ+1); no candidate is ever passed once enqueued. Fair.
	PolicyQueue ChoicePolicy = iota
	// PolicyLowestID always serves the smallest-ID candidate. Simple and
	// cheap but unfair: under sustained load from a low-ID neighbor,
	// higher-ID candidates starve — the livelock the paper's fairness
	// requirement exists to prevent.
	PolicyLowestID
	// PolicyRotating serves candidates in cyclic ID order starting after
	// the last served one (round robin). Fair, with the same Δ+1 passing
	// bound as the queue but no stored order among waiting candidates.
	PolicyRotating
)

func (p ChoicePolicy) String() string {
	switch p {
	case PolicyQueue:
		return "fifo-queue"
	case PolicyLowestID:
		return "lowest-id"
	case PolicyRotating:
		return "rotating"
	default:
		return "unknown-policy"
	}
}

// choose evaluates choice_p(d) under the policy. It returns the chosen
// processor, the queue contents to persist after serving it, and whether
// any candidate exists. For PolicyQueue the persisted value is the
// normalized queue minus its head; for PolicyRotating it is the served
// candidate (the rotation point); PolicyLowestID persists nothing.
func choose(policy ChoicePolicy, v *sm.View, d graph.ProcessID) (graph.ProcessID, []graph.ProcessID, bool) {
	cands := candidates(v, d)
	if len(cands) == 0 {
		return 0, nil, false
	}
	stored := v.Self().(*Node).FW.Dests[d].Queue
	switch policy {
	case PolicyLowestID:
		best := cands[0]
		for _, c := range cands {
			if c < best {
				best = c
			}
		}
		return best, nil, true
	case PolicyRotating:
		last := graph.ProcessID(-1)
		if len(stored) > 0 {
			last = stored[0]
		}
		// Smallest candidate strictly greater than last, wrapping around.
		best := graph.ProcessID(-1)
		for _, c := range cands {
			if c > last && (best < 0 || c < best) {
				best = c
			}
		}
		if best < 0 { // wrap
			best = cands[0]
			for _, c := range cands {
				if c < best {
					best = c
				}
			}
		}
		return best, []graph.ProcessID{best}, true
	default: // PolicyQueue
		q := normalizeQueue(stored, cands)
		return q[0], q[1:], true
	}
}

// freshColor implements color_p(d): the smallest c ∈ {0..Δ} such that no
// reception buffer bufR_q(d) of a neighbor q holds a message colored c.
// Since p has at most Δ neighbors and Δ+1 colors exist, a free color always
// exists.
func freshColor(v *sm.View, d graph.ProcessID) int {
	delta := v.Graph().MaxDegree()
	used := make([]bool, delta+1)
	for _, q := range v.Neighbors() {
		if m := v.Read(q).(*Node).FW.Dests[d].BufR; m != nil && m.Color >= 0 && m.Color <= delta {
			used[m.Color] = true
		}
	}
	for c := 0; c <= delta; c++ {
		if !used[c] {
			return c
		}
	}
	panic("core: no free color — more than Δ neighbors?")
}

// matchesForward reports whether bufR holds exactly the forwarded copy
// (m, p, c) of the message in bufE at processor p — the comparison R4 makes
// against the next hop's (and every other neighbor's) reception buffer.
func matchesForward(bufR, bufE *Message, p graph.ProcessID) bool {
	if bufR == nil || bufE == nil {
		return false
	}
	return bufR.Payload == bufE.Payload && bufR.LastHop == p && bufR.Color == bufE.Color
}
