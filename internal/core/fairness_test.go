package core_test

import (
	"fmt"
	"math/rand"
	"testing"

	"ssmfp/internal/core"
	"ssmfp/internal/daemon"
	"ssmfp/internal/graph"
	sm "ssmfp/internal/statemodel"
)

// TestPassingBoundDeltaPlusOne verifies the fairness lemma behind
// Propositions 5 and 6 at the system level: once a processor q becomes
// (and remains) a candidate for choice_p(d), at most Δ other serves of
// bufR_p(d) can happen before q itself is served — "at most Δ messages
// can pass m at each hop". The test saturates a star center and tracks,
// for every candidacy interval of every leaf, how many other candidates
// were served in between.
func TestPassingBoundDeltaPlusOne(t *testing.T) {
	g := graph.Star(6) // center 0, Δ = 5
	const center = graph.ProcessID(0)
	cfg := core.CleanConfig(g)
	// Heavy sustained load: every leaf sends 8 messages to the center.
	for leaf := graph.ProcessID(1); leaf < 6; leaf++ {
		for k := 0; k < 8; k++ {
			cfg[leaf].(*core.Node).FW.Enqueue(fmt.Sprintf("m%d-%d", leaf, k), center)
		}
	}
	e := sm.NewEngine(g, core.FullProgram(g), daemon.NewCentralRandom(11), cfg)

	// passedSince[q] counts serves of bufR_center(center) since q became a
	// continuous candidate; reset when q is served or stops being one.
	passedSince := make(map[graph.ProcessID]int)
	delta := g.MaxDegree()

	isCandidate := func(q graph.ProcessID) bool {
		n := e.StateOf(q).(*core.Node)
		return n.FW.Dests[center].BufE != nil && n.RT.NextHop(center) == center
	}
	var violation string
	e.Subscribe(func(ev sm.Event) {
		if ev.Kind != core.KindServe || ev.Process != center {
			return
		}
		se := ev.Payload.(core.ServeEvent)
		if se.Dest != center {
			return
		}
		for q := range passedSince {
			if q == se.Served {
				continue
			}
			passedSince[q]++
			if passedSince[q] > delta && violation == "" {
				violation = fmt.Sprintf("candidate %d was passed %d times (Δ = %d) at step %d",
					q, passedSince[q], delta, ev.Step)
			}
		}
		delete(passedSince, se.Served)
	})

	for i := 0; i < 1_000_000; i++ {
		// Refresh the candidacy set before the step: entering candidates
		// start their passing counter; lapsed ones are dropped.
		for leaf := graph.ProcessID(1); leaf < 6; leaf++ {
			if isCandidate(leaf) {
				if _, ok := passedSince[leaf]; !ok {
					passedSince[leaf] = 0
				}
			} else {
				delete(passedSince, leaf)
			}
		}
		if !e.Step() {
			break
		}
		if violation != "" {
			t.Fatal(violation)
		}
	}
	if !e.Terminal() {
		t.Fatal("did not terminate")
	}
}

// TestPassingBoundHoldsOnRandomGraphs repeats the check on random
// topologies and random destinations under corrupted starts (after the
// tables stabilize, the bound applies at every processor).
func TestPassingBoundHoldsOnRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 5; trial++ {
		g := graph.RandomConnected(5+rng.Intn(4), 12, rng)
		cfg := core.RandomConfig(g, rng, core.DefaultCorrupt)
		for k := 0; k < 10; k++ {
			src := graph.ProcessID(rng.Intn(g.N()))
			dst := graph.ProcessID(rng.Intn(g.N()))
			cfg[src].(*core.Node).FW.Enqueue(fmt.Sprintf("t%d-%d", trial, k), dst)
		}
		e := sm.NewEngine(g, core.FullProgram(g), daemon.NewCentralRandom(rng.Int63()), cfg)
		delta := g.MaxDegree()

		// One passing counter per (p, d, candidate q).
		type key struct{ p, d, q graph.ProcessID }
		passed := make(map[key]int)
		candidateOf := func(p, d, q graph.ProcessID) bool {
			if q == p {
				n := e.StateOf(p).(*core.Node)
				nd, ok := n.FW.NextDestination()
				return n.FW.Request && ok && nd == d
			}
			n := e.StateOf(q).(*core.Node)
			return n.FW.Dests[d].BufE != nil && n.RT.NextHop(d) == p
		}
		var violation string
		e.Subscribe(func(ev sm.Event) {
			if ev.Kind != core.KindServe {
				return
			}
			se := ev.Payload.(core.ServeEvent)
			for k := range passed {
				if k.p != ev.Process || k.d != se.Dest || k.q == se.Served {
					continue
				}
				passed[k]++
				if passed[k] > delta && violation == "" {
					violation = fmt.Sprintf("trial candidate %+v passed %d times (Δ=%d)", k, passed[k], delta)
				}
			}
			delete(passed, key{ev.Process, se.Dest, se.Served})
		})
		for i := 0; i < 2_000_000; i++ {
			for p := graph.ProcessID(0); int(p) < g.N(); p++ {
				for d := graph.ProcessID(0); int(d) < g.N(); d++ {
					nbrs := append([]graph.ProcessID(nil), g.Neighbors(p)...)
					for _, q := range append(nbrs, p) {
						k := key{p, d, q}
						if candidateOf(p, d, q) {
							if _, ok := passed[k]; !ok {
								passed[k] = 0
							}
						} else {
							delete(passed, k)
						}
					}
				}
			}
			if !e.Step() {
				break
			}
			if violation != "" {
				t.Fatal(violation)
			}
		}
		if !e.Terminal() {
			t.Fatalf("trial %d did not terminate", trial)
		}
	}
}

// TestPassingBoundIsAttained constructs the worst case of the fairness
// queue: all Δ neighbors of a star center already hold messages routed to
// it when the center's own generation request arrives, so the request is
// served exactly after Δ other serves — the "Δ messages can pass m" the
// Δ^D bound of Proposition 5 compounds per hop.
func TestPassingBoundIsAttained(t *testing.T) {
	g := graph.Star(5) // center 0, leaves 1..4; Δ = 4
	const center = graph.ProcessID(0)
	cfg := core.CleanConfig(g)
	for leaf := graph.ProcessID(1); leaf < 5; leaf++ {
		cfg[leaf].(*core.Node).FW.Dests[center].BufE = &core.Message{
			Payload: fmt.Sprintf("ahead-%d", leaf), LastHop: leaf, Color: 0,
			UID: uint64(leaf), Valid: true, Dest: center,
		}
	}
	cfg[center].(*core.Node).FW.Enqueue("probe", center)

	e := sm.NewEngine(g, core.FullProgram(g), daemon.NewCentralRandom(3), cfg)
	var serves []graph.ProcessID
	e.Subscribe(func(ev sm.Event) {
		if ev.Kind == core.KindServe && ev.Process == center {
			if se := ev.Payload.(core.ServeEvent); se.Dest == center {
				serves = append(serves, se.Served)
			}
		}
	})
	if _, terminal := e.Run(1_000_000, nil); !terminal {
		t.Fatal("did not terminate")
	}
	// The probe (served == center, via R1) must be the 5th serve: exactly
	// Δ = 4 messages passed it.
	if len(serves) < 5 {
		t.Fatalf("serves = %v", serves)
	}
	for i := 0; i < 4; i++ {
		if serves[i] == center {
			t.Fatalf("probe served at position %d; the queue should make it wait out Δ serves: %v", i, serves)
		}
	}
	if serves[4] != center {
		t.Fatalf("probe not served 5th: %v", serves)
	}
}
