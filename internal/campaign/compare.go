package campaign

import (
	"fmt"
)

// Thresholds configures the regression gate. Percentage thresholds apply
// to cost growth relative to the baseline; the Min* floors exempt cells
// too small to measure reliably (a 30% jump on a 2ms cell is noise).
// Guard evaluations are deterministic per (cell, seed) and host-
// independent, so GuardPct can be tight; wall time is host-dependent and
// should stay generous.
type Thresholds struct {
	WallPct  float64
	AllocPct float64
	GuardPct float64

	MinWallNS     int64
	MinAllocs     int64
	MinGuardEvals int64
}

// DefaultThresholds is the gate used by ssmfp-bench compare and CI: 25%
// on wall time (generous, host noise), 10% on allocations, 1% on guard
// evaluations (deterministic, any growth is a real code change).
func DefaultThresholds() Thresholds {
	return Thresholds{
		WallPct: 25, AllocPct: 10, GuardPct: 1,
		MinWallNS: 20e6, MinAllocs: 200_000, MinGuardEvals: 100_000,
	}
}

// Delta is one per-cell metric change.
type Delta struct {
	Key    string  `json:"key"`
	Metric string  `json:"metric"` // "wall_ns", "allocs", "guard_evals"
	Base   int64   `json:"base"`
	Cur    int64   `json:"cur"`
	Pct    float64 `json:"pct"`
}

func (d Delta) String() string {
	return fmt.Sprintf("%s: %s %d -> %d (%+.1f%%)", d.Key, d.Metric, d.Base, d.Cur, d.Pct)
}

// CompareResult is the gate's verdict.
type CompareResult struct {
	// Regressions are metric growths past their thresholds, plus any
	// cell that passed in the baseline and fails now (reported with
	// Metric "ok").
	Regressions []Delta
	// Improvements are metric shrinkages past the same thresholds —
	// informational (a candidate for refreshing the baseline).
	Improvements []Delta
	// Missing are baseline cells absent from the current report;
	// Added are current cells absent from the baseline (informational).
	Missing []string
	Added   []string
}

// Clean reports whether the gate passes: no regressions and no cells
// silently dropped.
func (c CompareResult) Clean() bool {
	return len(c.Regressions) == 0 && len(c.Missing) == 0
}

// Compare diffs cur against base cell by cell (matched on key and
// repetition). Schema equality is assumed (Load enforces it).
func Compare(base, cur *Report, th Thresholds) CompareResult {
	var out CompareResult
	curBy := make(map[string]CellReport, len(cur.Cells))
	for _, c := range cur.Cells {
		curBy[fmt.Sprintf("%s#%d", c.Key, c.Rep)] = c
	}
	seen := make(map[string]bool, len(base.Cells))
	for _, b := range base.Cells {
		id := fmt.Sprintf("%s#%d", b.Key, b.Rep)
		seen[id] = true
		c, ok := curBy[id]
		if !ok {
			out.Missing = append(out.Missing, id)
			continue
		}
		if b.OK && !c.OK {
			out.Regressions = append(out.Regressions, Delta{Key: id, Metric: "ok", Base: 1, Cur: 0})
		}
		check := func(metric string, bv, cv int64, pct float64, floor int64) {
			if pct <= 0 || bv < floor {
				return
			}
			d := Delta{Key: id, Metric: metric, Base: bv, Cur: cv,
				Pct: 100 * float64(cv-bv) / float64(bv)}
			switch {
			case d.Pct > pct:
				out.Regressions = append(out.Regressions, d)
			case d.Pct < -pct:
				out.Improvements = append(out.Improvements, d)
			}
		}
		check("wall_ns", b.WallNS, c.WallNS, th.WallPct, th.MinWallNS)
		check("allocs", b.Allocs, c.Allocs, th.AllocPct, th.MinAllocs)
		check("guard_evals", b.Measure.GuardEvals, c.Measure.GuardEvals, th.GuardPct, th.MinGuardEvals)
	}
	for _, c := range cur.Cells {
		id := fmt.Sprintf("%s#%d", c.Key, c.Rep)
		if !seen[id] {
			out.Added = append(out.Added, id)
		}
	}
	return out
}
