// Package campaign fans the experiment cell grid (sim.CellGrid) across a
// worker pool and aggregates the outcomes into a versioned,
// machine-readable report. Determinism contract: every cell derives its
// seed from (campaign seed, cell key, repetition) alone, and the report
// lists cells in canonical grid order — so the deterministic part of the
// report (everything except wall-clock, allocation and host fields, see
// Report.Normalize) is byte-identical no matter how many workers ran or
// how the scheduler interleaved them.
package campaign

import (
	"encoding/json"
	"fmt"
	"os"

	"ssmfp/internal/sim"
)

// Schema is the report format version. Bump it on any field change that
// is not strictly additive; compare refuses mismatched schemas.
const Schema = "ssmfp-campaign-report/v1"

// CellReport is one cell's outcome and cost.
type CellReport struct {
	// Key is "exp" or "exp/variant"; Rep distinguishes repetitions of the
	// same cell under derived seeds (rep 0 runs the campaign seed itself,
	// so its numbers match a plain ssmfp-bench run).
	Key     string `json:"key"`
	Exp     string `json:"exp"`
	Variant string `json:"variant,omitempty"`
	Rep     int    `json:"rep"`
	Seed    int64  `json:"seed"`
	Heavy   bool   `json:"heavy,omitempty"`

	// OK is the cell's acceptance verdict (the experiment's own criterion
	// restricted to this cell); Err reports a run error (unknown cell,
	// cancellation).
	OK  bool   `json:"ok"`
	Err string `json:"err,omitempty"`

	// Measure holds the deterministic, paper-facing quantities.
	Measure sim.CellMeasure `json:"measure"`

	// WallNS, Allocs and AllocBytes are volatile cost measurements
	// (zeroed by Normalize). Allocation deltas come from global
	// runtime.MemStats, so they are precise only at -parallel 1;
	// concurrent workers bleed into each other's deltas.
	WallNS     int64 `json:"wall_ns,omitempty"`
	Allocs     int64 `json:"allocs,omitempty"`
	AllocBytes int64 `json:"alloc_bytes,omitempty"`
}

// Totals are integer sums over all cells. Sums (not means) keep the
// deterministic section free of floating-point merge-order effects.
type Totals struct {
	Cells            int   `json:"cells"`
	Failed           int   `json:"failed"`
	Steps            int64 `json:"steps"`
	Rounds           int64 `json:"rounds"`
	GuardEvals       int64 `json:"guard_evals"`
	Generated        int64 `json:"generated"`
	DeliveredValid   int64 `json:"delivered_valid"`
	DeliveredInvalid int64 `json:"delivered_invalid"`
}

// RunInfo describes the host and the schedule of one campaign run. All of
// it is volatile: two runs of the same campaign differ here and nowhere
// else.
type RunInfo struct {
	Parallel  int    `json:"parallel,omitempty"`
	Shards    int    `json:"shards,omitempty"`
	WallNS    int64  `json:"wall_ns,omitempty"`
	NumCPU    int    `json:"num_cpu,omitempty"`
	GoVersion string `json:"go_version,omitempty"`
	GOOS      string `json:"goos,omitempty"`
	GOARCH    string `json:"goarch,omitempty"`
	StartedAt string `json:"started_at,omitempty"`
}

// Report is the campaign's machine-readable output.
type Report struct {
	Schema   string       `json:"schema"`
	Seed     int64        `json:"seed"`
	Seeds    int          `json:"seeds"`
	Quick    bool         `json:"quick,omitempty"`
	Paranoid bool         `json:"paranoid,omitempty"`
	Filter   string       `json:"filter,omitempty"`
	Cells    []CellReport `json:"cells"`
	Totals   Totals       `json:"totals"`
	Run      RunInfo      `json:"run"`
}

// Normalize zeroes the volatile fields (wall clock, allocations, host
// info) in place and returns the report. Two normalized reports of the
// same campaign configuration marshal to identical bytes regardless of
// worker count or scheduling.
func (r *Report) Normalize() *Report {
	r.Run = RunInfo{}
	for i := range r.Cells {
		r.Cells[i].WallNS = 0
		r.Cells[i].Allocs = 0
		r.Cells[i].AllocBytes = 0
	}
	return r
}

// AvailableParallelism estimates the speedup ceiling recorded in this
// report: sum of cell wall times over the longest single cell. It is the
// best any worker count can do on this grid (the critical path is one
// cell).
func (r *Report) AvailableParallelism() float64 {
	var sum, max int64
	for _, c := range r.Cells {
		sum += c.WallNS
		if c.WallNS > max {
			max = c.WallNS
		}
	}
	if max == 0 {
		return 0
	}
	return float64(sum) / float64(max)
}

// Marshal renders the report as indented JSON with a trailing newline.
func (r *Report) Marshal() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// WriteFile writes the report to path.
func (r *Report) WriteFile(path string) error {
	b, err := r.Marshal()
	if err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

// Load reads a report from path and validates its schema.
func Load(path string) (*Report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("campaign: %s: %w", path, err)
	}
	if r.Schema != Schema {
		return nil, fmt.Errorf("campaign: %s: schema %q, want %q", path, r.Schema, Schema)
	}
	return &r, nil
}
