package campaign

import (
	"context"
	"fmt"
	"hash/fnv"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"ssmfp/internal/obs"
	"ssmfp/internal/sim"
)

// Config parameterizes one campaign run.
type Config struct {
	// Seed is the campaign seed. Repetition 0 of every cell runs it
	// directly (matching a plain ssmfp-bench run); higher repetitions
	// derive per-cell seeds via CellSeed.
	Seed int64

	// Seeds is the number of repetitions per cell (default 1).
	Seeds int

	// Parallel is the worker count (default runtime.NumCPU()). Any value
	// yields the same normalized report; it only changes wall time.
	Parallel int

	// Filter restricts the grid to cells whose key has one of the given
	// comma-separated prefixes ("p5", "ep/grid", "f3,x1").
	Filter string

	// Quick skips the cells marked Heavy in the grid.
	Quick bool

	// Paranoid threads the engine differential self-check into every
	// cell (the explicit replacement for the old SSMFP_PARANOID env var).
	Paranoid bool

	// Shards > 1 runs every cell's engines on the sharded parallel step
	// engine (statemodel.WithShards). Like Parallel, any value yields the
	// same normalized report; it only changes wall time. It is recorded in
	// the volatile RunInfo, not in the deterministic section.
	Shards int

	// Bus, when non-nil, receives cell-start/cell-done progress events.
	Bus *obs.Bus

	// OnResult, when non-nil, is called serially (from the aggregation
	// loop, in completion order) after each cell finishes.
	OnResult func(done, total int, cr CellReport, res sim.CellResult)
}

// CellSeed derives the seed of one (cell, repetition). Repetition 0
// passes the campaign seed through unchanged — experiments already
// decorrelate their cases by canonical case index, and passing the seed
// through keeps cell numbers identical to a plain full-experiment run.
// Higher repetitions hash (key, rep, seed) so each repetition of each
// cell explores an independent point.
func CellSeed(campaignSeed int64, key string, rep int) int64 {
	if rep == 0 {
		return campaignSeed
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%s#%d#%d", key, rep, campaignSeed)
	return int64(h.Sum64() & (1<<63 - 1))
}

// Select applies Filter and Quick to the canonical grid.
func Select(cfg Config) []sim.CellSpec {
	var prefixes []string
	if cfg.Filter != "" {
		for _, f := range strings.Split(cfg.Filter, ",") {
			if f = strings.TrimSpace(f); f != "" {
				prefixes = append(prefixes, f)
			}
		}
	}
	var out []sim.CellSpec
	for _, s := range sim.CellGrid() {
		if cfg.Quick && s.Heavy {
			continue
		}
		if len(prefixes) > 0 {
			hit := false
			for _, p := range prefixes {
				if strings.HasPrefix(s.Key(), p) {
					hit = true
					break
				}
			}
			if !hit {
				continue
			}
		}
		out = append(out, s)
	}
	return out
}

// job is one unit of work: a cell repetition with its canonical report
// index.
type job struct {
	idx  int
	spec sim.CellSpec
	rep  int
	seed int64
}

// Run executes the campaign: it expands the selected grid by the
// repetition count, fans the cells across the worker pool, aggregates
// incrementally as cells complete (no barrier until the final report),
// and returns the report plus the per-cell results (tables, trace text)
// in canonical order. On context cancellation it returns the partial
// report together with the context's error.
func Run(ctx context.Context, cfg Config) (*Report, []sim.CellResult, error) {
	seeds := cfg.Seeds
	if seeds < 1 {
		seeds = 1
	}
	par := cfg.Parallel
	if par < 1 {
		par = runtime.NumCPU()
	}
	specs := Select(cfg)

	var jobs []job
	for _, s := range specs {
		for rep := 0; rep < seeds; rep++ {
			jobs = append(jobs, job{idx: len(jobs), spec: s, rep: rep, seed: CellSeed(cfg.Seed, s.Key(), rep)})
		}
	}

	rep := &Report{
		Schema: Schema, Seed: cfg.Seed, Seeds: seeds,
		Quick: cfg.Quick, Paranoid: cfg.Paranoid, Filter: cfg.Filter,
		Cells: make([]CellReport, len(jobs)),
	}
	results := make([]sim.CellResult, len(jobs))
	// Prefill the identity fields in canonical order so a cancelled run
	// still yields a structurally complete (if partly empty) report.
	for _, j := range jobs {
		rep.Cells[j.idx] = CellReport{
			Key: j.spec.Key(), Exp: j.spec.Exp, Variant: j.spec.Variant,
			Rep: j.rep, Seed: j.seed, Heavy: j.spec.Heavy,
		}
	}

	// Schedule heavy cells first (stable within each class): the longest
	// cell bounds campaign wall time, so it must not start last.
	order := make([]job, len(jobs))
	copy(order, jobs)
	sort.SliceStable(order, func(i, k int) bool { return order[i].spec.Heavy && !order[k].spec.Heavy })

	start := time.Now()
	jobCh := make(chan job)
	doneCh := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobCh {
				cfg.Bus.Publish(obs.Event{
					Kind: obs.KindCellStart, Step: -1, Round: -1,
					Detail: j.spec.Key(), Count: j.idx,
				})
				rep.Cells[j.idx], results[j.idx] = runOne(ctx, cfg, j)
				doneCh <- j.idx
			}
		}()
	}
	go func() {
		defer close(jobCh)
		for _, j := range order {
			select {
			case jobCh <- j:
			case <-ctx.Done():
				return
			}
		}
	}()
	go func() {
		wg.Wait()
		close(doneCh)
	}()

	completed := 0
	for idx := range doneCh {
		completed++
		cr := rep.Cells[idx]
		verdict := "ok"
		if !cr.OK {
			verdict = "fail"
		}
		cfg.Bus.Publish(obs.Event{
			Kind: obs.KindCellDone, Step: -1, Round: -1,
			Detail: cr.Key, Count: completed, Rule: verdict,
		})
		if cfg.OnResult != nil {
			cfg.OnResult(completed, len(jobs), cr, results[idx])
		}
	}

	for _, c := range rep.Cells {
		rep.Totals.Cells++
		if !c.OK {
			rep.Totals.Failed++
		}
		rep.Totals.Steps += int64(c.Measure.Steps)
		rep.Totals.Rounds += int64(c.Measure.Rounds)
		rep.Totals.GuardEvals += c.Measure.GuardEvals
		rep.Totals.Generated += int64(c.Measure.Generated)
		rep.Totals.DeliveredValid += int64(c.Measure.DeliveredValid)
		rep.Totals.DeliveredInvalid += int64(c.Measure.DeliveredInvalid)
	}
	rep.Run = RunInfo{
		Parallel: par, Shards: cfg.Shards, WallNS: time.Since(start).Nanoseconds(),
		NumCPU: runtime.NumCPU(), GoVersion: runtime.Version(),
		GOOS: runtime.GOOS, GOARCH: runtime.GOARCH,
		StartedAt: start.UTC().Format(time.RFC3339),
	}
	return rep, results, ctx.Err()
}

// runOne executes a single cell, measuring wall time and (global, hence
// only meaningful at -parallel 1) allocation deltas.
func runOne(ctx context.Context, cfg Config, j job) (CellReport, sim.CellResult) {
	cr := CellReport{
		Key: j.spec.Key(), Exp: j.spec.Exp, Variant: j.spec.Variant,
		Rep: j.rep, Seed: j.seed, Heavy: j.spec.Heavy,
	}
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	t0 := time.Now()
	res, err := sim.RunCell(j.spec, sim.Options{Seed: j.seed, Paranoid: cfg.Paranoid, Shards: cfg.Shards, Ctx: ctx})
	cr.WallNS = time.Since(t0).Nanoseconds()
	runtime.ReadMemStats(&m1)
	cr.Allocs = int64(m1.Mallocs - m0.Mallocs)
	cr.AllocBytes = int64(m1.TotalAlloc - m0.TotalAlloc)
	cr.OK = err == nil && res.OK
	if err != nil {
		cr.Err = err.Error()
	} else if ctx.Err() != nil {
		cr.Err = "interrupted: " + ctx.Err().Error()
		cr.OK = false
	}
	cr.Measure = res.Measure
	return cr, res
}
