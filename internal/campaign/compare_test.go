package campaign

import (
	"testing"

	"ssmfp/internal/sim"
)

func syntheticReport() *Report {
	return &Report{
		Schema: Schema, Seed: 1, Seeds: 1,
		Cells: []CellReport{
			{Key: "f4", Exp: "f4", OK: true, WallNS: 400e6, Allocs: 1e6,
				Measure: sim.CellMeasure{GuardEvals: 2_000_000}},
			{Key: "p5/line-3", Exp: "p5", Variant: "line-3", OK: true, WallNS: 50e6, Allocs: 500_000,
				Measure: sim.CellMeasure{GuardEvals: 300_000}},
			{Key: "p7/d2", Exp: "p7", Variant: "d2", OK: true, WallNS: 1e6, Allocs: 10_000,
				Measure: sim.CellMeasure{GuardEvals: 5_000}},
		},
	}
}

// TestCompareClean: identical reports gate clean.
func TestCompareClean(t *testing.T) {
	r := Compare(syntheticReport(), syntheticReport(), DefaultThresholds())
	if !r.Clean() || len(r.Improvements) != 0 || len(r.Added) != 0 {
		t.Errorf("identical reports not clean: %+v", r)
	}
}

// TestCompareWallRegression: a 25%-threshold gate must fire on a 30%
// slowdown of a large cell and stay quiet below the threshold.
func TestCompareWallRegression(t *testing.T) {
	base, cur := syntheticReport(), syntheticReport()
	cur.Cells[0].WallNS = int64(float64(base.Cells[0].WallNS) * 1.30)
	r := Compare(base, cur, DefaultThresholds())
	if r.Clean() || len(r.Regressions) != 1 {
		t.Fatalf("30%% slowdown not flagged: %+v", r)
	}
	d := r.Regressions[0]
	if d.Key != "f4#0" || d.Metric != "wall_ns" || d.Pct < 29 || d.Pct > 31 {
		t.Errorf("wrong delta: %+v", d)
	}

	cur2 := syntheticReport()
	cur2.Cells[0].WallNS = int64(float64(base.Cells[0].WallNS) * 1.20)
	if r := Compare(base, cur2, DefaultThresholds()); !r.Clean() {
		t.Errorf("20%% slowdown flagged at a 25%% threshold: %+v", r.Regressions)
	}
}

// TestCompareFloors: small cells are exempt from percentage gates (noise),
// and an improvement is informational, not a failure.
func TestCompareFloors(t *testing.T) {
	base, cur := syntheticReport(), syntheticReport()
	cur.Cells[2].WallNS = base.Cells[2].WallNS * 10 // tiny cell, below MinWallNS
	if r := Compare(base, cur, DefaultThresholds()); !r.Clean() {
		t.Errorf("sub-floor cell gated: %+v", r.Regressions)
	}
	cur2 := syntheticReport()
	cur2.Cells[0].WallNS = base.Cells[0].WallNS / 2
	r := Compare(base, cur2, DefaultThresholds())
	if !r.Clean() || len(r.Improvements) != 1 {
		t.Errorf("halved wall time not reported as improvement: %+v", r)
	}
}

// TestCompareGuardEvals: guard evaluations are deterministic, so even a
// small growth past the tight threshold must gate.
func TestCompareGuardEvals(t *testing.T) {
	base, cur := syntheticReport(), syntheticReport()
	cur.Cells[0].Measure.GuardEvals = int64(float64(base.Cells[0].Measure.GuardEvals) * 1.05)
	r := Compare(base, cur, DefaultThresholds())
	if r.Clean() || r.Regressions[0].Metric != "guard_evals" {
		t.Errorf("5%% guard-eval growth not flagged: %+v", r)
	}
}

// TestCompareOKAndMissing: acceptance regressions and dropped cells fail
// the gate; new cells do not.
func TestCompareOKAndMissing(t *testing.T) {
	base, cur := syntheticReport(), syntheticReport()
	cur.Cells[1].OK = false
	r := Compare(base, cur, DefaultThresholds())
	if r.Clean() || r.Regressions[0].Metric != "ok" {
		t.Errorf("OK->fail not flagged: %+v", r)
	}

	cur2 := syntheticReport()
	cur2.Cells = cur2.Cells[:2]
	cur2.Cells = append(cur2.Cells, CellReport{Key: "x9/new", Exp: "x9", OK: true})
	r2 := Compare(base, cur2, DefaultThresholds())
	if r2.Clean() || len(r2.Missing) != 1 || r2.Missing[0] != "p7/d2#0" {
		t.Errorf("dropped cell not flagged: %+v", r2)
	}
	if len(r2.Added) != 1 || r2.Added[0] != "x9/new#0" {
		t.Errorf("added cell not reported: %+v", r2)
	}
}
