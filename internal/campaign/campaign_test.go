package campaign

import (
	"bytes"
	"context"
	"strings"
	"sync/atomic"
	"testing"

	"ssmfp/internal/obs"
	"ssmfp/internal/sim"
)

// TestGridUnique guards the campaign's addressing: every cell key is
// unique, and the grid covers every experiment ID the bench CLI accepts.
func TestGridUnique(t *testing.T) {
	grid := sim.CellGrid()
	seen := map[string]bool{}
	exps := map[string]bool{}
	for _, s := range grid {
		k := s.Key()
		if seen[k] {
			t.Errorf("duplicate cell key %q", k)
		}
		seen[k] = true
		exps[s.Exp] = true
	}
	for _, e := range []string{"f1", "f2", "f3", "f4", "p4", "p5", "p6", "p7",
		"x1", "x2", "x3", "x4", "x5", "x6", "ra", "mc", "ep"} {
		if !exps[e] {
			t.Errorf("experiment %q missing from the grid", e)
		}
	}
	if len(grid) < 40 {
		t.Errorf("grid has %d cells, want >= 40", len(grid))
	}
}

func TestCellSeed(t *testing.T) {
	if got := CellSeed(2009, "p5/line-3", 0); got != 2009 {
		t.Errorf("rep 0 must pass the campaign seed through, got %d", got)
	}
	a := CellSeed(2009, "p5/line-3", 1)
	b := CellSeed(2009, "p5/line-5", 1)
	c := CellSeed(2009, "p5/line-3", 2)
	if a == 2009 || a == b || a == c {
		t.Errorf("derived seeds must differ per (key, rep): %d %d %d", a, b, c)
	}
	if again := CellSeed(2009, "p5/line-3", 1); again != a {
		t.Errorf("CellSeed not deterministic: %d vs %d", a, again)
	}
}

func TestSelect(t *testing.T) {
	all := Select(Config{})
	quick := Select(Config{Quick: true})
	if len(quick) >= len(all) {
		t.Errorf("quick did not drop heavy cells: %d vs %d", len(quick), len(all))
	}
	for _, s := range quick {
		if s.Heavy {
			t.Errorf("quick selected heavy cell %s", s.Key())
		}
	}
	p5 := Select(Config{Filter: "p5"})
	if len(p5) == 0 {
		t.Fatal("filter p5 selected nothing")
	}
	for _, s := range p5 {
		if s.Exp != "p5" {
			t.Errorf("filter p5 selected %s", s.Key())
		}
	}
	multi := Select(Config{Filter: "f1, x2/ring"})
	var keys []string
	for _, s := range multi {
		keys = append(keys, s.Key())
	}
	if strings.Join(keys, " ") != "f1 x2/ring-8" {
		t.Errorf("multi filter selected %v", keys)
	}
}

// determinismFilter is a small but representative slice of the grid:
// engine-driven sweeps, single-cell experiments, and multi-engine
// comparisons. (x3 is excluded only for speed — it runs real goroutines
// with wall-clock waits; its measures are deterministic too.)
const determinismFilter = "f1,f2,f3,p4/n4,p5/line-3,p5/star-4,p6/star-6,p7/d2,x2/ring-8,x5,x6/w1,ep/grid-5x5"

// TestDeterminism is the campaign's core contract: the normalized report
// is byte-identical no matter the worker count, and repetitions > 0 stay
// deterministic as well.
func TestDeterminism(t *testing.T) {
	run := func(parallel int) []byte {
		rep, _, err := Run(context.Background(), Config{
			Seed: 42, Seeds: 2, Parallel: parallel, Filter: determinismFilter,
		})
		if err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		b, err := rep.Normalize().Marshal()
		if err != nil {
			t.Fatalf("parallel=%d: marshal: %v", parallel, err)
		}
		return b
	}
	serial := run(1)
	parallel := run(8)
	if !bytes.Equal(serial, parallel) {
		t.Errorf("normalized reports differ between -parallel 1 and -parallel 8:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, parallel)
	}
}

// TestShardDeterminism locks the sharded engine's campaign-level
// contract: the normalized report is byte-identical at -shards 1, 2 and
// 4. The filter leans on cells that actually drive engines (including an
// E-EP cell, whose incremental run goes through the sharded path).
func TestShardDeterminism(t *testing.T) {
	run := func(shards int) []byte {
		rep, _, err := Run(context.Background(), Config{
			Seed: 42, Parallel: 2, Shards: shards,
			Filter: "p4/n4,p5/line-3,p6/star-6,x2/ring-8,ep/grid-5x5",
		})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		b, err := rep.Normalize().Marshal()
		if err != nil {
			t.Fatalf("shards=%d: marshal: %v", shards, err)
		}
		return b
	}
	one := run(1)
	for _, k := range []int{2, 4} {
		if got := run(k); !bytes.Equal(one, got) {
			t.Errorf("normalized reports differ between -shards 1 and -shards %d:\n--- shards 1 ---\n%s\n--- shards %d ---\n%s", k, one, k, got)
		}
	}
}

// TestRunPublishesProgress checks the obs bus wiring and the OnResult
// serialization contract.
func TestRunPublishesProgress(t *testing.T) {
	bus := obs.NewBus()
	var starts, dones atomic.Int64
	bus.Subscribe(func(ev obs.Event) {
		switch ev.Kind {
		case obs.KindCellStart:
			starts.Add(1)
		case obs.KindCellDone:
			dones.Add(1)
		}
		if ev.Step != -1 || ev.Round != -1 {
			t.Errorf("campaign events must be wall-clock domain, got step=%d round=%d", ev.Step, ev.Round)
		}
	})
	calls := 0
	rep, results, err := Run(context.Background(), Config{
		Seed: 7, Parallel: 4, Filter: "f1,f2,p7/d2", Bus: bus,
		OnResult: func(done, total int, cr CellReport, res sim.CellResult) {
			calls++
			if done != calls {
				t.Errorf("OnResult not serialized: done=%d after %d calls", done, calls)
			}
			if total != 3 {
				t.Errorf("total = %d, want 3", total)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Cells) != 3 || len(results) != 3 {
		t.Fatalf("got %d cells, %d results, want 3", len(rep.Cells), len(results))
	}
	if starts.Load() != 3 || dones.Load() != 3 {
		t.Errorf("bus saw %d starts, %d dones, want 3 each", starts.Load(), dones.Load())
	}
	if rep.Totals.Cells != 3 || rep.Totals.Failed != 0 {
		t.Errorf("totals = %+v", rep.Totals)
	}
}

// TestCancellation checks that a cancelled campaign returns the context
// error instead of hanging.
func TestCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := Run(ctx, Config{Seed: 1, Filter: "f1,f2"})
	if err == nil {
		t.Error("cancelled campaign returned nil error")
	}
}

func TestReportRoundTrip(t *testing.T) {
	rep, _, err := Run(context.Background(), Config{Seed: 5, Filter: "f1,p7/d2"})
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/r.json"
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Schema != Schema || len(back.Cells) != len(rep.Cells) {
		t.Errorf("round trip lost data: %+v", back)
	}
	if back.Run.WallNS == 0 {
		t.Error("run info lost in round trip")
	}
	// A wrong schema must be rejected.
	bad := *back
	bad.Schema = "ssmfp-campaign-report/v0"
	if err := bad.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Error("Load accepted a mismatched schema")
	}
}
