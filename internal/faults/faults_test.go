package faults_test

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"ssmfp/internal/checker"
	"ssmfp/internal/core"
	"ssmfp/internal/daemon"
	"ssmfp/internal/faults"
	"ssmfp/internal/graph"
	sm "ssmfp/internal/statemodel"
)

func newSystem(g *graph.Graph, seed int64) (*sm.Engine, *checker.Tracker) {
	cfg := core.CleanConfig(g)
	e := sm.NewEngine(g, core.FullProgram(g), daemon.NewCentralRandom(seed), cfg)
	tr := checker.New(g)
	tr.RecordInitial(cfg)
	tr.Attach(e)
	return e, tr
}

func enqueue(e *sm.Engine, src graph.ProcessID, payload string, dst graph.ProcessID) {
	e.StateOf(src).(*core.Node).FW.Enqueue(payload, dst)
}

func TestKindStrings(t *testing.T) {
	for _, k := range faults.AllKinds {
		if k.String() == "unknown-fault" {
			t.Fatalf("kind %d has no name", k)
		}
	}
	if faults.Kind(99).String() != "unknown-fault" {
		t.Fatal("unknown kind must say so")
	}
}

func TestStrikeReportsTouchedMessages(t *testing.T) {
	g := graph.Line(4)
	e, _ := newSystem(g, 1)
	// Put a valid message in flight.
	e.StateOf(1).(*core.Node).FW.Dests[3].BufE = &core.Message{
		Payload: "v", LastHop: 1, Color: 0, UID: 42, Src: 1, Dest: 3, Valid: true}
	in := faults.NewInjector(g, 5, []faults.Kind{faults.BufferDrop})
	var got []uint64
	for i := 0; i < 200 && len(got) == 0; i++ {
		got = in.Strike(e, 1)
	}
	if len(got) == 0 || got[0] != 42 {
		t.Fatalf("BufferDrop never reported the destroyed message: %v", got)
	}
}

func TestInFlightValid(t *testing.T) {
	g := graph.Line(4)
	e, _ := newSystem(g, 1)
	if ids := faults.InFlightValid(e, g); len(ids) != 0 {
		t.Fatalf("clean system has no in-flight messages, got %v", ids)
	}
	e.StateOf(1).(*core.Node).FW.Dests[3].BufE = &core.Message{UID: 7, Valid: true}
	e.StateOf(2).(*core.Node).FW.Dests[3].BufR = &core.Message{UID: 7, Valid: true} // copy, same UID
	e.StateOf(0).(*core.Node).FW.Dests[2].BufR = &core.Message{UID: 9, Valid: false}
	ids := faults.InFlightValid(e, g)
	if len(ids) != 1 || ids[0] != 7 {
		t.Fatalf("InFlightValid = %v, want [7] (dedup, valid only)", ids)
	}
}

func TestRearmRequests(t *testing.T) {
	g := graph.Line(3)
	e, _ := newSystem(g, 1)
	fw := e.StateOf(0).(*core.Node).FW
	fw.Pending = append(fw.Pending, core.Outbound{Payload: "x", Dest: 2})
	fw.Request = false // fault knocked it down
	faults.RearmRequests(e, g)
	if !fw.Request {
		t.Fatal("request must be re-raised while messages wait")
	}
}

// TestSnapStabilizationAfterMidRunFault is the headline property: a
// transient fault strikes mid-execution; every message generated after the
// strike (and every unaffected earlier one) is still delivered exactly
// once.
func TestSnapStabilizationAfterMidRunFault(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 8; trial++ {
		g := graph.RandomConnected(5+rng.Intn(5), 14, rng)
		e, tr := newSystem(g, rng.Int63())
		in := faults.NewInjector(g, rng.Int63(), nil)

		// Phase 1: traffic before the fault.
		for k := 0; k < 5; k++ {
			enqueue(e, graph.ProcessID(rng.Intn(g.N())), fmt.Sprintf("pre-%d", k), graph.ProcessID(rng.Intn(g.N())))
		}
		for i := 0; i < 30; i++ {
			e.Step()
		}

		// The strike: corrupt state, exempt everything in flight, let the
		// higher layer re-arm.
		tr.MarkCompromised(faults.InFlightValid(e, g)...)
		tr.MarkCompromised(in.Strike(e, g.N()/2)...)
		faults.RearmRequests(e, g)

		// Phase 2: traffic after the fault — fully guaranteed.
		for k := 0; k < 5; k++ {
			enqueue(e, graph.ProcessID(rng.Intn(g.N())), fmt.Sprintf("post-%d", k), graph.ProcessID(rng.Intn(g.N())))
		}
		if _, terminal := e.Run(4_000_000, nil); !terminal {
			t.Fatalf("trial %d: did not terminate after the fault", trial)
		}
		if v := tr.Violations(); len(v) > 0 {
			t.Fatalf("trial %d: violations after fault: %v", trial, v)
		}
		if !tr.AllValidDelivered() {
			t.Fatalf("trial %d: undelivered non-compromised messages: %v", trial, tr.UndeliveredValid())
		}
	}
}

// TestRepeatedFaultStorm strikes several times; after the *last* strike
// everything generated afterwards must still be exactly-once.
func TestRepeatedFaultStorm(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g := graph.Grid(3, 3)
	e, tr := newSystem(g, 3)
	in := faults.NewInjector(g, 7, nil)

	for wave := 0; wave < 4; wave++ {
		for k := 0; k < 3; k++ {
			enqueue(e, graph.ProcessID(rng.Intn(g.N())), fmt.Sprintf("w%d-%d", wave, k), graph.ProcessID(rng.Intn(g.N())))
		}
		for i := 0; i < 40; i++ {
			e.Step()
		}
		tr.MarkCompromised(faults.InFlightValid(e, g)...)
		tr.MarkCompromised(in.Strike(e, 3)...)
		faults.RearmRequests(e, g)
	}
	// Final guaranteed wave.
	for k := 0; k < 4; k++ {
		enqueue(e, graph.ProcessID(rng.Intn(g.N())), fmt.Sprintf("final-%d", k), graph.ProcessID(rng.Intn(g.N())))
	}
	if _, terminal := e.Run(4_000_000, nil); !terminal {
		t.Fatal("did not terminate after the storm")
	}
	if v := tr.Violations(); len(v) > 0 {
		t.Fatalf("violations: %v", v)
	}
	if !tr.AllValidDelivered() {
		t.Fatalf("undelivered: %v", tr.UndeliveredValid())
	}
	if tr.Compromised() == 0 {
		t.Fatal("the storm should have compromised something (else the test is vacuous)")
	}
}

// Property: random fault classes, random strike sizes, random timing —
// post-fault generations are always exactly-once.
func TestQuickPostFaultGuarantee(t *testing.T) {
	if testing.Short() {
		t.Skip("property test skipped in -short mode")
	}
	f := func(seed int64, strikeRaw, whenRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomConnected(4+int(strikeRaw)%4, 10, rng)
		e, tr := newSystem(g, seed)
		in := faults.NewInjector(g, seed+1, nil)
		enqueue(e, 0, "pre", graph.ProcessID(g.N()-1))
		for i := 0; i < int(whenRaw)%50; i++ {
			e.Step()
		}
		tr.MarkCompromised(faults.InFlightValid(e, g)...)
		tr.MarkCompromised(in.Strike(e, 1+int(strikeRaw)%5)...)
		faults.RearmRequests(e, g)
		enqueue(e, graph.ProcessID(g.N()-1), "post", 0)
		if _, terminal := e.Run(4_000_000, nil); !terminal {
			return false
		}
		return len(tr.Violations()) == 0 && tr.AllValidDelivered()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestEachFaultKindBehaves(t *testing.T) {
	g := graph.Line(4)
	mkEngine := func() *sm.Engine {
		e, _ := newSystem(g, 1)
		return e
	}
	place := func(e *sm.Engine, p graph.ProcessID, d int, uid uint64) *core.Message {
		m := &core.Message{Payload: "v", LastHop: p, Color: 0, UID: uid,
			Src: p, Dest: graph.ProcessID(d), Valid: true}
		e.StateOf(p).(*core.Node).FW.Dests[d].BufE = m
		return m
	}
	countMsgs := func(e *sm.Engine) int {
		n := 0
		for p := 0; p < g.N(); p++ {
			for _, ds := range e.StateOf(graph.ProcessID(p)).(*core.Node).FW.Dests {
				for _, m := range []*core.Message{ds.BufR, ds.BufE} {
					if m != nil {
						n++
					}
				}
			}
		}
		return n
	}

	t.Run("buffer-garbage overwrites or fills", func(t *testing.T) {
		e := mkEngine()
		in := faults.NewInjector(g, 3, []faults.Kind{faults.BufferGarbage})
		in.Strike(e, 10)
		if countMsgs(e) == 0 {
			t.Fatal("garbage strikes should plant messages")
		}
	})
	t.Run("buffer-clone duplicates into the sibling", func(t *testing.T) {
		e := mkEngine()
		place(e, 1, 3, 71)
		in := faults.NewInjector(g, 5, []faults.Kind{faults.BufferClone})
		var compromised []uint64
		for i := 0; i < 400 && len(compromised) == 0; i++ {
			compromised = in.Strike(e, 1)
		}
		if len(compromised) != 1 || compromised[0] != 71 {
			t.Fatalf("clone never reported: %v", compromised)
		}
		ds := e.StateOf(1).(*core.Node).FW.Dests[3]
		if ds.BufR == nil || ds.BufE == nil || ds.BufR.UID != ds.BufE.UID {
			t.Fatal("clone must occupy both buffers with the same UID")
		}
	})
	t.Run("color-scramble recolors in place", func(t *testing.T) {
		e := mkEngine()
		place(e, 2, 0, 72)
		in := faults.NewInjector(g, 7, []faults.Kind{faults.ColorScramble})
		var compromised []uint64
		for i := 0; i < 400 && len(compromised) == 0; i++ {
			compromised = in.Strike(e, 1)
		}
		if len(compromised) != 1 || compromised[0] != 72 {
			t.Fatalf("recolor never reported: %v", compromised)
		}
		if m := e.StateOf(2).(*core.Node).FW.Dests[0].BufE; m == nil || m.UID != 72 {
			t.Fatal("recolored message must stay in place")
		}
	})
	t.Run("queue-scramble stays well-typed", func(t *testing.T) {
		e := mkEngine()
		in := faults.NewInjector(g, 9, []faults.Kind{faults.QueueScramble})
		in.Strike(e, 20)
		cfg := make([]sm.State, g.N())
		for p := 0; p < g.N(); p++ {
			cfg[p] = e.StateOf(graph.ProcessID(p))
		}
		if err := checker.WellTyped(g, cfg); err != nil {
			t.Fatalf("queue scramble broke typing: %v", err)
		}
	})
	t.Run("request-flip toggles", func(t *testing.T) {
		e := mkEngine()
		in := faults.NewInjector(g, 11, []faults.Kind{faults.RequestFlip})
		in.Strike(e, 15)
		flipped := 0
		for p := 0; p < g.N(); p++ {
			if e.StateOf(graph.ProcessID(p)).(*core.Node).FW.Request {
				flipped++
			}
		}
		if flipped == 0 {
			t.Fatal("15 request flips should leave some request bit up")
		}
	})
	t.Run("table-scramble stays well-typed", func(t *testing.T) {
		e := mkEngine()
		in := faults.NewInjector(g, 13, []faults.Kind{faults.TableScramble})
		in.Strike(e, 10)
		cfg := make([]sm.State, g.N())
		for p := 0; p < g.N(); p++ {
			cfg[p] = e.StateOf(graph.ProcessID(p))
		}
		if err := checker.WellTyped(g, cfg); err != nil {
			t.Fatalf("table scramble broke typing: %v", err)
		}
	})
}
