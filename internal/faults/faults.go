// Package faults injects transient faults into a running execution —
// the scenario snap-stabilization is about. A transient fault hits
// between two steps and arbitrarily corrupts state: routing tables,
// buffer contents (overwriting, dropping or cloning messages), fairness
// queues, request bits. Snap-stabilization then guarantees that every
// message generated *after* the fault is delivered exactly once; messages
// that were in flight when the fault hit may have been destroyed or
// duplicated by the fault itself (their buffers are state like any
// other), so the oracle marks them compromised and exempts them —
// exactly the paper's treatment of "invalid" messages, applied to a
// mid-execution fault instead of time zero.
package faults

import (
	"math/rand"

	"ssmfp/internal/core"
	"ssmfp/internal/graph"
	"ssmfp/internal/obs"
	"ssmfp/internal/routing"
	sm "ssmfp/internal/statemodel"
)

// Kind enumerates fault classes.
type Kind int

// The injectable fault classes.
const (
	// TableScramble randomizes a processor's routing table.
	TableScramble Kind = iota
	// BufferDrop empties an occupied buffer (destroys its message).
	BufferDrop
	// BufferGarbage overwrites a buffer with a fresh invalid message.
	BufferGarbage
	// BufferClone copies an in-flight message into another empty buffer
	// (the fault-made duplicate the oracle must tolerate).
	BufferClone
	// QueueScramble rewrites a fairness queue with random well-typed
	// contents.
	QueueScramble
	// RequestFlip toggles a request bit.
	RequestFlip
	// ColorScramble recolors a buffered message.
	ColorScramble
)

func (k Kind) String() string {
	switch k {
	case TableScramble:
		return "table-scramble"
	case BufferDrop:
		return "buffer-drop"
	case BufferGarbage:
		return "buffer-garbage"
	case BufferClone:
		return "buffer-clone"
	case QueueScramble:
		return "queue-scramble"
	case RequestFlip:
		return "request-flip"
	case ColorScramble:
		return "color-scramble"
	default:
		return "unknown-fault"
	}
}

// AllKinds lists every fault class.
var AllKinds = []Kind{
	TableScramble, BufferDrop, BufferGarbage, BufferClone,
	QueueScramble, RequestFlip, ColorScramble,
}

// Injector strikes a running engine with random transient faults.
type Injector struct {
	g     *graph.Graph
	rng   *rand.Rand
	kinds []Kind
}

// NewInjector builds an injector over g drawing from the given fault
// classes (nil = AllKinds).
func NewInjector(g *graph.Graph, seed int64, kinds []Kind) *Injector {
	if len(kinds) == 0 {
		kinds = AllKinds
	}
	return &Injector{g: g, rng: rand.New(rand.NewSource(seed)), kinds: kinds}
}

var garbageUID uint64 = 1<<61 + 1

// Strike applies count random faults to the engine's current configuration
// (between steps — the engine holds no snapshot then). It returns the UIDs
// of every message the faults destroyed, overwrote, cloned or recolored:
// the messages whose exactly-once obligation the fault voided. Callers
// pass them to checker.Tracker.MarkCompromised.
func (in *Injector) Strike(e *sm.Engine, count int) []uint64 {
	var compromised []uint64
	for i := 0; i < count; i++ {
		p := graph.ProcessID(in.rng.Intn(in.g.N()))
		node := e.StateOf(p).(*core.Node)
		// The in-place corruption below invalidates the engine's round
		// bookkeeping (the pending set describes a configuration that no
		// longer exists) on top of the cache dirtying StateOf already did.
		e.Invalidate(p)
		d := in.rng.Intn(in.g.N())
		ds := &node.FW.Dests[d]
		buf := &ds.BufR
		if in.rng.Intn(2) == 0 {
			buf = &ds.BufE
		}
		kind := in.kinds[in.rng.Intn(len(in.kinds))]
		if bus := e.Obs(); bus.Active() {
			bus.Publish(obs.Event{
				Kind: obs.KindFault, Step: e.Steps(), Round: e.Rounds(),
				Proc: p, Dest: graph.ProcessID(d), Detail: kind.String(),
			})
		}
		switch kind {
		case TableScramble:
			*node.RT = *routing.RandomState(in.g, p, in.rng)
		case BufferDrop:
			if *buf != nil {
				compromised = append(compromised, (*buf).UID)
				*buf = nil
			}
		case BufferGarbage:
			if *buf != nil {
				compromised = append(compromised, (*buf).UID)
			}
			garbageUID++
			hops := append(append([]graph.ProcessID(nil), in.g.Neighbors(p)...), p)
			*buf = &core.Message{
				Payload: "fault-garbage",
				LastHop: hops[in.rng.Intn(len(hops))],
				Color:   in.rng.Intn(in.g.MaxDegree() + 1),
				UID:     garbageUID,
				Src:     p,
				Dest:    graph.ProcessID(d),
				Valid:   false,
			}
		case BufferClone:
			if *buf != nil {
				// Clone into the sibling buffer if free; the duplicate is
				// protocol-visible state, so the original's exactly-once
				// obligation is voided.
				var sibling **core.Message
				if buf == &ds.BufR {
					sibling = &ds.BufE
				} else {
					sibling = &ds.BufR
				}
				if *sibling == nil {
					clone := **buf
					*sibling = &clone
					compromised = append(compromised, (*buf).UID)
				}
			}
		case QueueScramble:
			hops := append(append([]graph.ProcessID(nil), in.g.Neighbors(p)...), p)
			perm := in.rng.Perm(len(hops))
			k := in.rng.Intn(len(hops) + 1)
			q := make([]graph.ProcessID, 0, k)
			for _, idx := range perm[:k] {
				q = append(q, hops[idx])
			}
			ds.Queue = q
		case RequestFlip:
			node.FW.Request = !node.FW.Request
		case ColorScramble:
			if *buf != nil {
				compromised = append(compromised, (*buf).UID)
				recolored := **buf
				recolored.Color = in.rng.Intn(in.g.MaxDegree() + 1)
				*buf = &recolored
			}
		}
	}
	return compromised
}

// InFlightValid returns the UIDs of every valid message currently
// occupying any buffer. A transient fault can interact with any in-flight
// message (e.g. recoloring one message can make it impersonate another's
// forwarded copy), so the sound exemption set for a strike is the whole
// in-flight population at strike time: snap-stabilization promises
// exactly-once for messages generated after the last fault, not for those
// the fault could touch.
func InFlightValid(e *sm.Engine, g *graph.Graph) []uint64 {
	var out []uint64
	seen := make(map[uint64]bool)
	for p := 0; p < g.N(); p++ {
		fw := e.PeekStateOf(graph.ProcessID(p)).(*core.Node).FW
		for _, ds := range fw.Dests {
			for _, m := range []*core.Message{ds.BufR, ds.BufE} {
				if m != nil && m.Valid && !seen[m.UID] {
					seen[m.UID] = true
					out = append(out, m.UID)
				}
			}
		}
	}
	return out
}

// RearmRequests re-raises the request bit of every processor with pending
// higher-layer messages — the legal reaction of the paper's higher layer
// ("set request_p to true when its value is false and a message waits")
// after a fault may have knocked the bit down.
func RearmRequests(e *sm.Engine, g *graph.Graph) {
	for p := 0; p < g.N(); p++ {
		fw := e.StateOf(graph.ProcessID(p)).(*core.Node).FW
		if len(fw.Pending) > 0 && !fw.Request {
			fw.Request = true
		}
	}
}
