package telemetry

import "testing"

// BenchmarkTelemetryHotPath is gated by `make bench-allocs` at 0
// allocs/op: one iteration is the telemetry cost of one "message step" on
// a hot protocol path — a frame-kind counter, an occupancy gauge
// transition pair (with peak tracking), and one latency-component
// observation. If registering handles ever leaks into the update path, or
// an update starts boxing values, this benchmark catches it before the
// msgpass gates see the regression second-hand.
func BenchmarkTelemetryHotPath(b *testing.B) {
	r := New()
	frames := r.Counter(SeriesFramesSent, "", L("kind", "offer"))
	occ := r.Gauge(SeriesBufOccupancy, "", L("proc", "0"), L("buf", "R"))
	lat := r.Hist(SeriesLatencyComponent, "", L("component", "queued"))
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		v := int64(17)
		for pb.Next() {
			frames.Inc()
			occ.Add(1)
			lat.Observe(v)
			occ.Add(-1)
			v = v*2862933555777941757 + 3037000493 // splmix: spread bucket traffic
			if v < 0 {
				v = -v
			}
			v %= 1 << 32
		}
	})
}
