package telemetry

import (
	"bufio"
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	"ssmfp/internal/obs"
)

func TestEmitterWritesSchemaLinesAndBusEvents(t *testing.T) {
	r := New()
	r.Counter(SeriesDeliveries, "").Add(7)
	var buf bytes.Buffer
	bus := obs.NewBus()
	var mu sync.Mutex
	var events []obs.Event
	bus.Subscribe(func(ev obs.Event) {
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
	})

	e := NewEmitter(r, "node3", &buf, bus, 10*time.Millisecond)
	e.Start()
	time.Sleep(35 * time.Millisecond)
	e.Close()

	sc := bufio.NewScanner(&buf)
	lines := 0
	for sc.Scan() {
		lines++
		snap, err := ParseSnapshot(sc.Bytes())
		if err != nil {
			t.Fatalf("line %d: %v", lines, err)
		}
		if snap.Node != "node3" || snap.Schema != SnapshotSchema {
			t.Fatalf("line %d: node=%q schema=%q", lines, snap.Node, snap.Schema)
		}
		if int64(lines) != snap.Seq {
			t.Fatalf("line %d has seq %d — stream not monotone from 1", lines, snap.Seq)
		}
		found := false
		for _, s := range snap.Samples {
			if s.Name == SeriesDeliveries && s.Value == 7 {
				found = true
			}
		}
		if !found {
			t.Fatalf("line %d: registered counter missing from snapshot", lines)
		}
	}
	if lines < 2 {
		t.Fatalf("only %d JSONL lines after 3 periods + final frame", lines)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(events) != lines {
		t.Fatalf("%d bus events, %d JSONL lines — must match", len(events), lines)
	}
	for _, ev := range events {
		if ev.Kind != obs.KindTelemetry || ev.Step != -1 {
			t.Fatalf("bad event: %+v", ev)
		}
		if _, err := ParseSnapshot([]byte(ev.Detail)); err != nil {
			t.Fatalf("event Detail is not a snapshot line: %v", err)
		}
	}
}

func TestParseSnapshotRejectsForeignSchema(t *testing.T) {
	if _, err := ParseSnapshot([]byte(`{"schema":"ssmfp-telemetry/v999","node":"x"}`)); err == nil {
		t.Fatal("foreign schema accepted")
	}
	if _, err := ParseSnapshot([]byte(`not json`)); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestCheckHealth(t *testing.T) {
	healthy := []PromSample{
		{Name: SeriesDeliveries, Value: 100},
		{Name: SeriesTagMismatches, Value: 0},
	}
	if rep := CheckHealth(healthy); !rep.Healthy || len(rep.Flags) != 0 {
		t.Fatalf("healthy samples flagged: %v", rep)
	}
	sick := []PromSample{
		{Name: SeriesTagMismatches, Value: 2},
		{Name: SeriesWatermarkViolations, Value: 1},
		{Name: SeriesDeliveries, Value: 5},
	}
	rep := CheckHealth(sick)
	if rep.Healthy || len(rep.Flags) != 2 {
		t.Fatalf("want 2 flags, got %v", rep)
	}
	if !strings.Contains(rep.String(), SeriesTagMismatches) {
		t.Fatalf("String() omits the flagged series: %s", rep.String())
	}
}
