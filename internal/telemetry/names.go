package telemetry

// Canonical series names of the SSMFP telemetry plane. The registry does
// not care what a metric is called, but every consumer — the load report
// builder, the spawn judge, the -scrape aggregator, the health detector,
// and the CI metrics check — keys on these, so they live here, below all
// of them. msgpass registers the protocol series; cmd binaries register
// the process-level ones.
const (
	// Protocol frame counters (label kind=dv|offer|accept|cancel|cancelAck).
	SeriesFramesSent = "ssmfp_frames_sent_total"
	// Higher-layer activity.
	SeriesSends             = "ssmfp_sends_total"
	SeriesDeliveries        = "ssmfp_deliveries_total"
	SeriesInvalidDeliveries = "ssmfp_invalid_deliveries_total"
	// Buffer occupancy gauges (labels proc, and buf=R|E for SeriesBufOccupancy).
	// The paper's central resource: one reception and one emission buffer
	// per (processor, destination).
	SeriesBufOccupancy = "ssmfp_buf_occupancy"
	SeriesPending      = "ssmfp_pending"
	SeriesParked       = "ssmfp_parked"
	// Congested-hop and retransmission counters.
	SeriesParkEvents    = "ssmfp_park_events_total"
	SeriesParkEvictions = "ssmfp_park_evictions_total"
	SeriesRetransmits   = "ssmfp_retransmits_total"
	// Stabilization-health counters: nonzero values indicate the cluster
	// is (or recently was) operating outside the stabilized regime.
	SeriesWatermarkViolations = "ssmfp_watermark_violations_total"
	SeriesTagMismatches       = "ssmfp_tag_mismatches_total"
	SeriesPhantomDeliveries   = "ssmfp_phantom_deliveries_total"
	// Per-hop latency attribution (label component=queued|park|deliver),
	// nanoseconds. queued and park are also folded into the payload tag's
	// hold slot; deliver rides the Delivery struct.
	SeriesLatencyComponent = "ssmfp_latency_component_ns"
	// Transport-wide wire counters.
	SeriesWireFramesSent  = "ssmfp_wire_frames_sent_total"
	SeriesWireFramesRecvd = "ssmfp_wire_frames_recvd_total"
	SeriesWireBytesSent   = "ssmfp_wire_bytes_sent_total"
	SeriesWireBytesRecvd  = "ssmfp_wire_bytes_recvd_total"
	SeriesWireDropped     = "ssmfp_wire_dropped_total" // label cause=full|impair
	SeriesWireDuplicated  = "ssmfp_wire_duplicated_total"
	SeriesWireDials       = "ssmfp_wire_dials_total"
	SeriesWireRedials     = "ssmfp_wire_redials_total"
	// Per-directed-link counters (label link="u->v").
	SeriesLinkFramesSent = "ssmfp_link_frames_sent_total"
	SeriesLinkBytesSent  = "ssmfp_link_bytes_sent_total"
	SeriesLinkDropped    = "ssmfp_link_dropped_total"
	SeriesLinkQueued     = "ssmfp_link_queued"
	// Secure transport: inbound frames (or handshakes, or admin requests)
	// rejected by the trust domain, labelled by reason:
	//   handshake  — TLS handshake failed (wrong CA, expired, no role)
	//   role       — authenticated peer's role does not admit the frame kind
	//   sender     — certificate identity contradicts Frame.From
	//   membership — valid node certificate, but not a configured neighbor
	//   admin      — authenticated client's role does not admit the admin verb
	// Registered only by nodes running a secure transport; deliberately not
	// in CoreSeries so plaintext clusters scrape clean.
	SeriesSecureRejected = "ssmfp_secure_rejected_frames_total"
	// Elastic membership: the applied epoch sequence, the member count,
	// and drain progress (started/completed drains, buffered messages a
	// draining processor handed off on its way out).
	SeriesClusterEpoch    = "ssmfp_cluster_epoch"
	SeriesClusterMembers  = "ssmfp_cluster_members"
	SeriesDrainsStarted   = "ssmfp_cluster_drains_started_total"
	SeriesDrainsCompleted = "ssmfp_cluster_drains_completed_total"
	SeriesDrainHandoffs   = "ssmfp_cluster_drain_handoffs_total"
)

// CoreSeries is the minimum set a healthy node's /metrics scrape must
// contain; the spawn judge and the CI metrics check assert presence.
var CoreSeries = []string{
	SeriesFramesSent,
	SeriesSends,
	SeriesDeliveries,
	SeriesBufOccupancy,
	SeriesPending,
	SeriesParkEvents,
	SeriesRetransmits,
	SeriesLatencyComponent + "_count",
	SeriesWireFramesSent,
	SeriesClusterEpoch,
	SeriesClusterMembers,
	SeriesDrainsStarted,
	SeriesDrainsCompleted,
	SeriesDrainHandoffs,
}
