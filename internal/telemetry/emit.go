package telemetry

import (
	"encoding/json"
	"io"
	"sync"
	"time"

	"ssmfp/internal/obs"
)

// SnapshotSchema is the JSONL snapshot stream format version. Bump it on
// any field change that is not strictly additive.
const SnapshotSchema = "ssmfp-telemetry/v1"

// Snapshot is one line of the JSONL stream: a self-describing image of a
// registry (or an aggregation of several) at one instant.
type Snapshot struct {
	Schema    string   `json:"schema"`
	Node      string   `json:"node"` // "node3", or "cluster" for aggregates
	Seq       int64    `json:"seq"`  // per-emitter monotone
	UnixNanos int64    `json:"unix_nanos"`
	Samples   []Sample `json:"samples"`
}

// Snap captures the registry under a node name and sequence number.
func Snap(r *Registry, node string, seq int64) Snapshot {
	return Snapshot{
		Schema:    SnapshotSchema,
		Node:      node,
		Seq:       seq,
		UnixNanos: time.Now().UnixNano(),
		Samples:   r.Snapshot(),
	}
}

// Emitter periodically writes registry snapshots as JSONL (one line per
// period) and/or publishes them on an obs bus as KindTelemetry events
// (Detail carries the encoded line; Count the sample count). Emission is
// a cold path: it allocates freely, off the protocol goroutines.
type Emitter struct {
	reg    *Registry
	node   string
	w      io.Writer
	bus    *obs.Bus
	period time.Duration

	seq  int64
	stop chan struct{}
	wg   sync.WaitGroup
	once sync.Once
}

// NewEmitter builds an emitter; w and bus may each be nil (but not both,
// or the emitter has nowhere to write). Start begins the stream.
func NewEmitter(reg *Registry, node string, w io.Writer, bus *obs.Bus, period time.Duration) *Emitter {
	if period <= 0 {
		period = time.Second
	}
	return &Emitter{reg: reg, node: node, w: w, bus: bus, period: period, stop: make(chan struct{})}
}

// Start launches the periodic emission goroutine.
func (e *Emitter) Start() {
	e.wg.Add(1)
	go func() {
		defer e.wg.Done()
		t := time.NewTicker(e.period)
		defer t.Stop()
		for {
			select {
			case <-e.stop:
				return
			case <-t.C:
				e.EmitOnce()
			}
		}
	}()
}

// EmitOnce writes one snapshot immediately (also used by Close for the
// final frame, so a short run still produces at least one line).
func (e *Emitter) EmitOnce() {
	e.seq++
	snap := Snap(e.reg, e.node, e.seq)
	line, err := json.Marshal(snap)
	if err != nil {
		return
	}
	if e.w != nil {
		e.w.Write(append(line, '\n'))
	}
	if e.bus.Active() {
		// One batch per emission: consumers that fan telemetry into the
		// same stream as protocol events see each snapshot as one
		// contiguous seq reservation.
		e.bus.PublishBatch([]obs.Event{{
			Kind: obs.KindTelemetry, Step: -1, Round: -1,
			Count:  len(snap.Samples),
			Detail: string(line),
		}})
	}
}

// Close stops the goroutine and emits one final snapshot.
func (e *Emitter) Close() {
	e.once.Do(func() {
		close(e.stop)
		e.wg.Wait()
		e.EmitOnce()
	})
}

// ParseSnapshot decodes one JSONL line and validates its schema.
func ParseSnapshot(line []byte) (Snapshot, error) {
	var s Snapshot
	if err := json.Unmarshal(line, &s); err != nil {
		return s, err
	}
	if s.Schema != SnapshotSchema {
		return s, &SchemaError{Got: s.Schema}
	}
	return s, nil
}

// SchemaError reports a snapshot line of a foreign schema version.
type SchemaError struct{ Got string }

func (e *SchemaError) Error() string {
	return "telemetry: snapshot schema " + e.Got + ", want " + SnapshotSchema
}
