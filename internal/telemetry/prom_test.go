package telemetry

import (
	"strings"
	"testing"
)

func buildTestRegistry() *Registry {
	r := New()
	r.Counter(SeriesFramesSent, "Frames sent by kind.", L("kind", "offer")).Add(10)
	r.Counter(SeriesFramesSent, "Frames sent by kind.", L("kind", "dv")).Add(20)
	g := r.Gauge(SeriesBufOccupancy, "Occupied buffers.", L("proc", "0"), L("buf", "R"))
	g.Add(3)
	g.Add(-1)
	h := r.Hist(SeriesLatencyComponent, "Latency components.", L("component", "queued"))
	for i := int64(1); i <= 100; i++ {
		h.Observe(i * 1000)
	}
	r.GaugeFunc(SeriesLinkQueued, "Outbound queue depth.", func() int64 { return 5 }, L("link", "0->1"))
	return r
}

// TestPromRoundTrip: what WritePrometheus emits, ParsePrometheus reads
// back — same series, same values. This is the contract the CI metrics
// check and the spawn judge rely on.
func TestPromRoundTrip(t *testing.T) {
	r := buildTestRegistry()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	samples, err := ParsePrometheus(strings.NewReader(text))
	if err != nil {
		t.Fatalf("own output does not parse: %v\n%s", err, text)
	}
	if v := SumSeries(samples, SeriesFramesSent); v != 30 {
		t.Fatalf("frames_sent sums to %g, want 30\n%s", v, text)
	}
	var gauge, peak float64 = -1, -1
	for _, s := range samples {
		switch s.Name {
		case SeriesBufOccupancy:
			gauge = s.Value
			if s.Labels["proc"] != "0" || s.Labels["buf"] != "R" {
				t.Fatalf("gauge labels wrong: %v", s.Labels)
			}
		case SeriesBufOccupancy + "_peak":
			peak = s.Value
		}
	}
	if gauge != 2 || peak != 3 {
		t.Fatalf("gauge=%g peak=%g, want 2 and 3", gauge, peak)
	}
	if v := SumSeries(samples, SeriesLatencyComponent+"_count"); v != 100 {
		t.Fatalf("hist count = %g, want 100", v)
	}
	// Quantile series carry the quantile label.
	foundQ := false
	for _, s := range samples {
		if s.Name == SeriesLatencyComponent && s.Labels["quantile"] == "0.99" {
			foundQ = true
			if s.Value < 90000 {
				t.Fatalf("p99 = %g, implausibly low", s.Value)
			}
		}
	}
	if !foundQ {
		t.Fatalf("no quantile-labelled series for %s\n%s", SeriesLatencyComponent, text)
	}
	if !HasSeries(samples, SeriesLinkQueued) {
		t.Fatal("func gauge missing from exposition")
	}
}

func TestParsePrometheusRejectsMalformed(t *testing.T) {
	bad := []string{
		"ssmfp_x{unterminated 3",
		`ssmfp_x{k="v"} notanumber`,
		"123bad_name 1",
		`ssmfp_x{k=unquoted} 1`,
		"# TYPE ssmfp_x frobnicator",
		"# TYPE ssmfp_x",
	}
	for _, in := range bad {
		if _, err := ParsePrometheus(strings.NewReader(in)); err == nil {
			t.Errorf("ParsePrometheus accepted %q", in)
		}
	}
	ok := "# HELP x help text\n# TYPE x counter\nx 1\nx_with_ts 2 1700000000\n\n# free comment\n"
	samples, err := ParsePrometheus(strings.NewReader(ok))
	if err != nil {
		t.Fatalf("ParsePrometheus rejected valid input: %v", err)
	}
	if len(samples) != 2 {
		t.Fatalf("got %d samples, want 2", len(samples))
	}
}

func TestPromEscapedLabelValues(t *testing.T) {
	r := New()
	r.Counter("esc_total", "", L("k", `quo"te\back`+"\nnl")).Add(1)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	samples, err := ParsePrometheus(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("escaped output does not parse: %v\n%s", err, b.String())
	}
	if samples[0].Labels["k"] != `quo"te\back`+"\nnl" {
		t.Fatalf("label round trip: %q", samples[0].Labels["k"])
	}
}

func TestSeriesHelpers(t *testing.T) {
	samples := []PromSample{
		{Name: "a", Value: 3}, {Name: "a", Value: 9}, {Name: "b", Value: 1},
	}
	if v := SumSeries(samples, "a"); v != 12 {
		t.Fatalf("SumSeries = %g", v)
	}
	if v := MaxSeries(samples, "a"); v != 9 {
		t.Fatalf("MaxSeries = %g", v)
	}
	if HasSeries(samples, "c") || !HasSeries(samples, "b") {
		t.Fatal("HasSeries wrong")
	}
	s := PromSample{Name: "x", Labels: map[string]string{"b": "2", "a": "1"}}
	if s.Key() != `x{a="1",b="2"}` {
		t.Fatalf("Key = %q", s.Key())
	}
}
