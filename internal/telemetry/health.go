package telemetry

import "fmt"

// Stabilization-health detector. Snap-stabilization promises correct
// service from any configuration — including one where buffers hold
// messages nobody sent and sequence state points at the future. A cluster
// *in* that regime is detectable from its counters: this detector turns a
// set of scraped series into a verdict. It deliberately reads aggregated
// Prometheus samples, not a live registry, so the same check runs against
// one node's scrape, a merged cluster scrape, and a CI-captured file.

// HealthFlagged is one triggered indicator.
type HealthFlagged struct {
	Series string  `json:"series"`
	Value  float64 `json:"value"`
	Why    string  `json:"why"`
}

// HealthReport is the detector's verdict over one set of samples.
type HealthReport struct {
	Healthy bool            `json:"healthy"`
	Flags   []HealthFlagged `json:"flags,omitempty"`
}

// healthChecks are the counter series whose nonzero value indicates
// pre-stabilization (or otherwise anomalous) behavior somewhere in the
// scrape's scope.
var healthChecks = []struct {
	series string
	why    string
}{
	{SeriesTagMismatches, "foreign-version payload tags: a node on this cluster speaks a different tag codec"},
	{SeriesPhantomDeliveries, "phantom deliveries: messages delivered that no plan entry sent"},
	{SeriesInvalidDeliveries, "invalid messages delivered: corrupted initial buffer state reached a destination"},
	{SeriesWatermarkViolations, "watermark violations: handshake acks referencing sequences never issued"},
	{SeriesSecureRejected, "secure rejections: frames, handshakes or admin calls refused by the trust domain — someone is probing the cluster"},
}

// SecureFlag reports whether f is the secure-rejection indicator — the
// one flag a byzantine-injection judge *expects* to fire while any other
// flag stays a violation.
func (f HealthFlagged) SecureFlag() bool { return f.Series == SeriesSecureRejected }

// CheckHealth evaluates the stabilization-health indicators over samples
// (typically the union of every node's scrape).
func CheckHealth(samples []PromSample) HealthReport {
	rep := HealthReport{Healthy: true}
	for _, c := range healthChecks {
		if v := SumSeries(samples, c.series); v > 0 {
			rep.Healthy = false
			rep.Flags = append(rep.Flags, HealthFlagged{Series: c.series, Value: v, Why: c.why})
		}
	}
	return rep
}

// String renders the report for logs.
func (r HealthReport) String() string {
	if r.Healthy {
		return "healthy"
	}
	s := fmt.Sprintf("%d stabilization-health flags:", len(r.Flags))
	for _, f := range r.Flags {
		s += fmt.Sprintf(" [%s=%g: %s]", f.Series, f.Value, f.Why)
	}
	return s
}
