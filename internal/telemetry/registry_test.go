package telemetry

import (
	"math/rand"
	"sync"
	"testing"

	"ssmfp/internal/metrics"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := New()
	c := r.Counter("c_total", "help")
	c.Inc()
	c.Add(4)
	if c.Load() != 5 {
		t.Fatalf("counter = %d, want 5", c.Load())
	}
	g := r.Gauge("g", "help")
	g.Add(3)
	g.Add(-2)
	g.Add(4)
	g.Add(-5)
	if g.Load() != 0 {
		t.Fatalf("gauge = %d, want 0", g.Load())
	}
	if g.Peak() != 5 {
		t.Fatalf("peak = %d, want 5 (3-2+4)", g.Peak())
	}
	g.Set(2)
	if g.Load() != 2 || g.Peak() != 5 {
		t.Fatalf("after Set(2): load=%d peak=%d", g.Load(), g.Peak())
	}
}

// TestRegistrationIdempotent pins the handle contract: same (name,
// labels) yields the same handle; a kind change is a programming error.
func TestRegistrationIdempotent(t *testing.T) {
	r := New()
	a := r.Counter("x_total", "", L("k", "v"))
	b := r.Counter("x_total", "", L("k", "v"))
	if a != b {
		t.Fatal("same (name, labels) returned distinct counters")
	}
	if r.Counter("x_total", "", L("k", "w")) == a {
		t.Fatal("different label value returned the same counter")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("x_total", "", L("k", "v"))
}

// TestHistMatchesLatencyHist holds the shared-bucket contract: a Hist fed
// the same observations as a LatencyHist snapshots to identical quantiles
// and summary.
func TestHistMatchesLatencyHist(t *testing.T) {
	r := New()
	h := r.Hist("lat_ns", "")
	var want metrics.LatencyHist
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 5000; i++ {
		v := rng.Int63n(1 << 30)
		h.Observe(v)
		want.Add(v)
	}
	got := h.Snapshot()
	if got.Count() != want.Count() || got.Sum() != want.Sum() ||
		got.Min() != want.Min() || got.Max() != want.Max() {
		t.Fatalf("summary mismatch: got (%d,%d,%d,%d) want (%d,%d,%d,%d)",
			got.Count(), got.Sum(), got.Min(), got.Max(),
			want.Count(), want.Sum(), want.Min(), want.Max())
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		if got.Quantile(q) != want.Quantile(q) {
			t.Fatalf("q%.3f: got %d want %d", q, got.Quantile(q), want.Quantile(q))
		}
	}
}

func TestHistEmptyAndNegative(t *testing.T) {
	r := New()
	h := r.Hist("lat_ns", "")
	if s := h.Snapshot(); s.Count() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Fatalf("empty snapshot not zero: %+v", s)
	}
	h.Observe(-5) // clamps to 0, like LatencyHist.Add
	if s := h.Snapshot(); s.Count() != 1 || s.Min() != 0 || s.Max() != 0 {
		t.Fatalf("negative observation mishandled: count=%d min=%d max=%d", s.Count(), s.Min(), s.Max())
	}
}

// TestGaugePeakExactUnderConcurrency: the peak must capture the true
// high-water mark even when increments and decrements race.
func TestGaugePeakExactUnderConcurrency(t *testing.T) {
	r := New()
	g := r.Gauge("occ", "")
	const workers, rounds = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				g.Add(1)
				g.Add(-1)
			}
		}()
	}
	wg.Wait()
	if g.Load() != 0 {
		t.Fatalf("gauge = %d after balanced adds, want 0", g.Load())
	}
	if p := g.Peak(); p < 1 || p > workers {
		t.Fatalf("peak = %d, want within [1,%d]", p, workers)
	}
}

func TestSnapshotSortedAndTyped(t *testing.T) {
	r := New()
	r.Gauge("b_gauge", "").Set(7)
	r.Counter("a_total", "").Add(3)
	r.CounterFunc("c_fn_total", "", func() int64 { return 42 })
	r.Hist("d_ns", "").Observe(100)
	snap := r.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("snapshot has %d samples, want 4", len(snap))
	}
	for i := 1; i < len(snap); i++ {
		if snap[i-1].Name > snap[i].Name {
			t.Fatalf("snapshot not sorted: %q before %q", snap[i-1].Name, snap[i].Name)
		}
	}
	byName := map[string]Sample{}
	for _, s := range snap {
		byName[s.Name] = s
	}
	if s := byName["a_total"]; s.Kind != KindCounter || s.Value != 3 {
		t.Fatalf("a_total: %+v", s)
	}
	if s := byName["b_gauge"]; s.Kind != KindGauge || s.Value != 7 || s.Peak != 7 {
		t.Fatalf("b_gauge: %+v", s)
	}
	if s := byName["c_fn_total"]; s.Kind != KindCounter || s.Value != 42 {
		t.Fatalf("c_fn_total: %+v", s)
	}
	if s := byName["d_ns"]; s.Kind != KindHist || s.Hist == nil || s.Hist.Count() != 1 {
		t.Fatalf("d_ns: %+v", s)
	}
}

func TestLookupHelpers(t *testing.T) {
	r := New()
	r.Gauge("occ", "", L("proc", "0")).Add(2)
	r.Gauge("occ", "", L("proc", "1")).Add(9)
	r.Gauge("occ", "", L("proc", "1")).Add(-6)
	r.Counter("ev_total", "", L("proc", "0")).Add(3)
	r.Counter("ev_total", "", L("proc", "1")).Add(4)

	if v, ok := r.Value("occ", L("proc", "0")); !ok || v != 2 {
		t.Fatalf("Value(occ,proc=0) = %d,%v", v, ok)
	}
	if _, ok := r.Value("occ", L("proc", "7")); ok {
		t.Fatal("Value found an unregistered series")
	}
	if p, ok := r.PeakValue("occ", L("proc", "1")); !ok || p != 9 {
		t.Fatalf("PeakValue = %d,%v, want 9", p, ok)
	}
	if m := r.MaxPeak("occ"); m != 9 {
		t.Fatalf("MaxPeak = %d, want 9", m)
	}
	if s := r.SumValues("ev_total"); s != 7 {
		t.Fatalf("SumValues = %d, want 7", s)
	}
}

// TestHotPathAllocFree is the unit-test twin of BenchmarkTelemetryHotPath:
// every hot-path update must be allocation-free.
func TestHotPathAllocFree(t *testing.T) {
	r := New()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Hist("h_ns", "")
	allocs := testing.AllocsPerRun(500, func() {
		c.Inc()
		c.Add(2)
		g.Add(1)
		g.Add(-1)
		h.Observe(12345)
	})
	if allocs != 0 {
		t.Fatalf("hot-path updates allocate %.1f times per run, want 0", allocs)
	}
}
