// Package telemetry is the cluster telemetry plane: a zero-allocation
// metrics registry that the protocol layers (msgpass, transport, load)
// update from their hot paths, plus the two export surfaces every consumer
// scrapes — Prometheus text exposition (prom.go) and a self-describing
// ssmfp-telemetry/v1 JSONL snapshot stream (emit.go) — and a
// stabilization-health detector over scraped series (health.go).
//
// The contract mirrors the obs bus's: all registration happens at setup
// time (Registry methods take a lock and may allocate), while every
// hot-path update — Counter.Inc, Gauge.Add, Hist.Observe — is a handful of
// atomic operations with zero heap allocations, so the `make bench-allocs`
// gate holds with telemetry always on. There is no "disabled" mode:
// msgpass owns a registry unconditionally, and an un-scraped registry
// costs exactly those atomics.
//
// Histograms accumulate into the same log-linear bucket layout as
// metrics.LatencyHist (≤12.5% relative quantile error) and snapshot into
// one, so node-side component histograms and the load collector's
// end-to-end histogram quantile and merge identically.
//
// The package sits beside msgpass: it may import internal/metrics and
// internal/obs only.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"ssmfp/internal/metrics"
)

// Counter is a monotonically increasing metric. The zero value is usable,
// but handles normally come from Registry.Counter so they are exported.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1. Lock-free, alloc-free.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative for the counter contract to hold;
// this is not checked on the hot path).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is an instantaneous level with a built-in high-water mark. Updates
// are event-driven (the owner adjusts it at every occupancy transition),
// so Peak is exact — a value held for a microsecond between two samples is
// still recorded, which is what lets the spawn judge assert invariants
// like "a node that delivered has had an occupied emission buffer".
type Gauge struct {
	v    atomic.Int64
	peak atomic.Int64
}

// Add adjusts the level by d and folds the new level into the peak.
// Lock-free, alloc-free.
func (g *Gauge) Add(d int64) {
	v := g.v.Add(d)
	for {
		p := g.peak.Load()
		if v <= p || g.peak.CompareAndSwap(p, v) {
			return
		}
	}
}

// Set stores the level and folds it into the peak.
func (g *Gauge) Set(v int64) {
	g.v.Store(v)
	for {
		p := g.peak.Load()
		if v <= p || g.peak.CompareAndSwap(p, v) {
			return
		}
	}
}

// Load returns the current level.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Peak returns the highest level ever folded in (0 if never positive).
func (g *Gauge) Peak() int64 { return g.peak.Load() }

// Hist is a lock-free histogram over the metrics.LatencyHist bucket
// layout. Observe is atomics only; Snapshot reconstructs a mergeable
// LatencyHist. Min/max are maintained with CAS loops, so a snapshot taken
// under concurrent Observe calls is a consistent-enough summary (counts
// may lag sum by in-flight observations; both are monotone).
type Hist struct {
	counts [metrics.HistBuckets]atomic.Int64
	count  atomic.Int64
	sum    atomic.Int64
	min    atomic.Int64 // MaxInt64 until the first observation
	max    atomic.Int64
}

func newHist() *Hist {
	h := &Hist{}
	h.min.Store(math.MaxInt64)
	return h
}

// Observe folds one observation (negative values clamp to 0, matching
// LatencyHist.Add). Lock-free, alloc-free.
func (h *Hist) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[metrics.HistBucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		m := h.min.Load()
		if v >= m || h.min.CompareAndSwap(m, v) {
			break
		}
	}
	for {
		m := h.max.Load()
		if v <= m || h.max.CompareAndSwap(m, v) {
			break
		}
	}
}

// Count returns the number of observations so far.
func (h *Hist) Count() int64 { return h.count.Load() }

// Snapshot reconstructs the accumulated state as a metrics.LatencyHist,
// ready for Quantile, Merge, and the sparse JSON encoding.
func (h *Hist) Snapshot() metrics.LatencyHist {
	var counts [metrics.HistBuckets]int64
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	min := h.min.Load()
	if min == math.MaxInt64 {
		min = 0
	}
	return metrics.HistFromCounts(counts[:], h.count.Load(), h.sum.Load(), min, h.max.Load())
}

// Label is one name="value" dimension of a metric.
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// L builds a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Metric kinds of the registry (and of the JSONL snapshot schema).
const (
	KindCounter = "counter"
	KindGauge   = "gauge"
	KindHist    = "hist"
)

// entry is one registered metric.
type entry struct {
	name   string
	help   string
	labels []Label
	kind   string // KindCounter / KindGauge / KindHist

	counter *Counter
	gauge   *Gauge
	hist    *Hist
	fn      func() int64 // non-nil for Func variants; kind carries semantics
}

func (e *entry) key() string {
	if len(e.labels) == 0 {
		return e.name
	}
	var b strings.Builder
	b.WriteString(e.name)
	for _, l := range e.labels {
		b.WriteByte('\x00')
		b.WriteString(l.Key)
		b.WriteByte('\x01')
		b.WriteString(l.Value)
	}
	return b.String()
}

// Registry holds a process's metrics. Registration (the typed methods) is
// idempotent — asking twice for the same (name, labels) returns the same
// handle — and is the only place that locks or allocates; handles update
// lock-free. A nil *Registry is invalid: owners that want telemetry "off"
// still hold a real registry and simply never export it.
type Registry struct {
	mu      sync.Mutex
	entries []*entry
	index   map[string]*entry
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{index: make(map[string]*entry)}
}

// register interns an entry, enforcing kind consistency per key.
func (r *Registry) register(e *entry) *entry {
	k := e.key()
	r.mu.Lock()
	defer r.mu.Unlock()
	if prev, ok := r.index[k]; ok {
		if prev.kind != e.kind || (prev.fn == nil) != (e.fn == nil) {
			panic(fmt.Sprintf("telemetry: %s re-registered as a different kind", e.name))
		}
		return prev
	}
	r.index[k] = e
	r.entries = append(r.entries, e)
	return e
}

// Counter registers (or finds) a counter.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	e := r.register(&entry{name: name, help: help, labels: labels, kind: KindCounter, counter: &Counter{}})
	return e.counter
}

// Gauge registers (or finds) a gauge.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	e := r.register(&entry{name: name, help: help, labels: labels, kind: KindGauge, gauge: &Gauge{}})
	return e.gauge
}

// Hist registers (or finds) a histogram.
func (r *Registry) Hist(name, help string, labels ...Label) *Hist {
	e := r.register(&entry{name: name, help: help, labels: labels, kind: KindHist, hist: newHist()})
	return e.hist
}

// CounterFunc registers a counter whose value is read from fn at snapshot
// time — the bridge to subsystems that already keep their own atomics
// (transport link stats). fn must be safe for concurrent use.
func (r *Registry) CounterFunc(name, help string, fn func() int64, labels ...Label) {
	r.register(&entry{name: name, help: help, labels: labels, kind: KindCounter, fn: fn})
}

// GaugeFunc registers a gauge read from fn at snapshot time. Func gauges
// carry no peak (nothing observes them between snapshots).
func (r *Registry) GaugeFunc(name, help string, fn func() int64, labels ...Label) {
	r.register(&entry{name: name, help: help, labels: labels, kind: KindGauge, fn: fn})
}

// Sample is one metric's state at snapshot time. Hist is non-nil only for
// histograms; Peak is meaningful only for non-func gauges.
type Sample struct {
	Name   string               `json:"name"`
	Labels []Label              `json:"labels,omitempty"`
	Kind   string               `json:"kind"`
	Value  int64                `json:"value"`
	Peak   int64                `json:"peak,omitempty"`
	Hist   *metrics.LatencyHist `json:"hist,omitempty"`
}

// Snapshot reads every metric, sorted by (name, labels) so two snapshots
// of registries built in different orders compare field-for-field.
func (r *Registry) Snapshot() []Sample {
	r.mu.Lock()
	entries := make([]*entry, len(r.entries))
	copy(entries, r.entries)
	r.mu.Unlock()

	out := make([]Sample, 0, len(entries))
	for _, e := range entries {
		s := Sample{Name: e.name, Labels: e.labels, Kind: e.kind}
		switch {
		case e.fn != nil:
			s.Value = e.fn()
		case e.counter != nil:
			s.Value = e.counter.Load()
		case e.gauge != nil:
			s.Value = e.gauge.Load()
			s.Peak = e.gauge.Peak()
		case e.hist != nil:
			h := e.hist.Snapshot()
			s.Value = h.Count()
			s.Hist = &h
		}
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return labelString(out[i].Labels) < labelString(out[j].Labels)
	})
	return out
}

// labelString renders labels in Prometheus form: {k="v",k2="v2"}.
func labelString(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// Value finds a non-hist metric by (name, labels) and returns its current
// value; ok is false when absent. Consumers (the load report builder) use
// it to pull specific series without walking a snapshot.
func (r *Registry) Value(name string, labels ...Label) (int64, bool) {
	e := r.find(name, labels)
	if e == nil {
		return 0, false
	}
	switch {
	case e.fn != nil:
		return e.fn(), true
	case e.counter != nil:
		return e.counter.Load(), true
	case e.gauge != nil:
		return e.gauge.Load(), true
	case e.hist != nil:
		return e.hist.Count(), true
	}
	return 0, false
}

// PeakValue finds a gauge by (name, labels) and returns its peak.
func (r *Registry) PeakValue(name string, labels ...Label) (int64, bool) {
	e := r.find(name, labels)
	if e == nil || e.gauge == nil {
		return 0, false
	}
	return e.gauge.Peak(), true
}

// HistSnapshot finds a histogram by (name, labels) and snapshots it.
func (r *Registry) HistSnapshot(name string, labels ...Label) (metrics.LatencyHist, bool) {
	e := r.find(name, labels)
	if e == nil || e.hist == nil {
		return metrics.LatencyHist{}, false
	}
	return e.hist.Snapshot(), true
}

// MaxPeak returns the largest peak across every gauge named name,
// regardless of labels — the deployment-wide high-water mark of a
// per-processor gauge family.
func (r *Registry) MaxPeak(name string) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	var max int64
	for _, e := range r.entries {
		if e.name == name && e.gauge != nil {
			if p := e.gauge.Peak(); p > max {
				max = p
			}
		}
	}
	return max
}

// SumValues returns the sum of the current values across every metric
// named name, regardless of labels.
func (r *Registry) SumValues(name string) int64 {
	r.mu.Lock()
	entries := make([]*entry, 0, len(r.entries))
	for _, e := range r.entries {
		if e.name == name {
			entries = append(entries, e)
		}
	}
	r.mu.Unlock()
	var sum int64
	for _, e := range entries {
		switch {
		case e.fn != nil:
			sum += e.fn()
		case e.counter != nil:
			sum += e.counter.Load()
		case e.gauge != nil:
			sum += e.gauge.Load()
		case e.hist != nil:
			sum += e.hist.Count()
		}
	}
	return sum
}

func (r *Registry) find(name string, labels []Label) *entry {
	probe := entry{name: name, labels: labels}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.index[probe.key()]
}
