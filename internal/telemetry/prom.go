package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition (version 0.0.4), the scrape surface of the
// telemetry plane. Counters and gauges render one series each; gauges add
// a `<name>_peak` companion (the exact event-driven high-water mark, which
// plain Prometheus sampling cannot reconstruct); histograms render
// summary-style — quantile-labelled series plus `_sum` and `_count` —
// because the log-linear buckets are an internal layout, not `le` bounds.
//
// ParsePrometheus is the matching reader: the -scrape aggregator, the
// spawn judge, and the CI metrics check all consume scrapes through it,
// so "the endpoint serves parseable Prometheus text" is enforced by the
// same code everywhere.

// summaryQuantiles are the quantile labels a histogram exports.
var summaryQuantiles = []struct {
	label string
	q     float64
}{
	{"0.5", 0.50},
	{"0.9", 0.90},
	{"0.99", 0.99},
}

// WritePrometheus renders every registered metric.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	samples := r.Snapshot()
	typed := make(map[string]bool)
	emitType := func(name, kind, help string) {
		if typed[name] {
			return
		}
		typed[name] = true
		if help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", name, help)
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", name, kind)
	}
	// Re-read help strings: Snapshot deliberately drops them.
	help := make(map[string]string)
	r.mu.Lock()
	for _, e := range r.entries {
		if help[e.name] == "" {
			help[e.name] = e.help
		}
	}
	r.mu.Unlock()

	for i := range samples {
		s := &samples[i]
		ls := labelString(s.Labels)
		switch s.Kind {
		case KindCounter:
			emitType(s.Name, "counter", help[s.Name])
			fmt.Fprintf(bw, "%s%s %d\n", s.Name, ls, s.Value)
		case KindGauge:
			emitType(s.Name, "gauge", help[s.Name])
			fmt.Fprintf(bw, "%s%s %d\n", s.Name, ls, s.Value)
			if s.Peak > 0 || s.Value > 0 {
				peakName := s.Name + "_peak"
				emitType(peakName, "gauge", "High-water mark of "+s.Name+" (event-driven, exact).")
				fmt.Fprintf(bw, "%s%s %d\n", peakName, ls, s.Peak)
			}
		case KindHist:
			emitType(s.Name, "summary", help[s.Name])
			for _, sq := range summaryQuantiles {
				fmt.Fprintf(bw, "%s%s %d\n", s.Name, quantileLabels(s.Labels, sq.label), s.Hist.Quantile(sq.q))
			}
			fmt.Fprintf(bw, "%s_sum%s %d\n", s.Name, ls, s.Hist.Sum())
			fmt.Fprintf(bw, "%s_count%s %d\n", s.Name, ls, s.Hist.Count())
		}
	}
	return bw.Flush()
}

// quantileLabels renders {labels...,quantile="q"}.
func quantileLabels(labels []Label, q string) string {
	withQ := make([]Label, 0, len(labels)+1)
	withQ = append(withQ, labels...)
	withQ = append(withQ, L("quantile", q))
	return labelString(withQ)
}

// Handler serves the registry as Prometheus text under any path (mount it
// at /metrics).
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := r.WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}

// PromSample is one parsed series of a Prometheus text scrape.
type PromSample struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  float64           `json:"value"`
}

// Key renders the sample's identity as name{k="v",...} with sorted keys.
func (s PromSample) Key() string {
	if len(s.Labels) == 0 {
		return s.Name
	}
	keys := make([]string, 0, len(s.Labels))
	for k := range s.Labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(s.Name)
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, s.Labels[k])
	}
	b.WriteByte('}')
	return b.String()
}

// ParsePrometheus reads a text-format scrape and returns its samples. It
// is a validator as much as a parser: malformed metric names, unbalanced
// label syntax, and non-numeric values are errors with line numbers, so a
// CI check that the endpoint "parses" means exactly this function.
func ParsePrometheus(r io.Reader) ([]PromSample, error) {
	var out []PromSample
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			// Only HELP and TYPE comments are defined; anything else is
			// still a legal comment, but a malformed TYPE is not.
			fields := strings.Fields(line)
			if len(fields) >= 2 && fields[1] == "TYPE" {
				if len(fields) < 4 {
					return nil, fmt.Errorf("telemetry: line %d: malformed TYPE comment", lineNo)
				}
				switch fields[3] {
				case "counter", "gauge", "summary", "histogram", "untyped":
				default:
					return nil, fmt.Errorf("telemetry: line %d: unknown metric type %q", lineNo, fields[3])
				}
			}
			continue
		}
		s, err := parsePromLine(line)
		if err != nil {
			return nil, fmt.Errorf("telemetry: line %d: %v", lineNo, err)
		}
		out = append(out, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func parsePromLine(line string) (PromSample, error) {
	var s PromSample
	rest := line
	// Metric name: [a-zA-Z_:][a-zA-Z0-9_:]*
	i := 0
	for i < len(rest) && isNameChar(rest[i], i == 0) {
		i++
	}
	if i == 0 {
		return s, fmt.Errorf("no metric name in %q", line)
	}
	s.Name = rest[:i]
	rest = rest[i:]
	if strings.HasPrefix(rest, "{") {
		end := strings.Index(rest, "}")
		if end < 0 {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		labels, err := parsePromLabels(rest[1:end])
		if err != nil {
			return s, err
		}
		s.Labels = labels
		rest = rest[end+1:]
	}
	rest = strings.TrimSpace(rest)
	// Value, optionally followed by a timestamp we ignore.
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return s, fmt.Errorf("want value [timestamp] after series in %q", line)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return s, fmt.Errorf("bad value %q: %v", fields[0], err)
	}
	s.Value = v
	return s, nil
}

func parsePromLabels(body string) (map[string]string, error) {
	labels := make(map[string]string)
	rest := body
	for rest != "" {
		eq := strings.Index(rest, "=")
		if eq < 0 {
			return nil, fmt.Errorf("label without '=' in {%s}", body)
		}
		key := strings.TrimSpace(rest[:eq])
		if key == "" {
			return nil, fmt.Errorf("empty label name in {%s}", body)
		}
		rest = rest[eq+1:]
		if !strings.HasPrefix(rest, `"`) {
			return nil, fmt.Errorf("unquoted label value in {%s}", body)
		}
		rest = rest[1:]
		var val strings.Builder
		closed := false
		for i := 0; i < len(rest); i++ {
			c := rest[i]
			if c == '\\' && i+1 < len(rest) {
				i++
				switch rest[i] {
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(rest[i])
				}
				continue
			}
			if c == '"' {
				rest = rest[i+1:]
				closed = true
				break
			}
			val.WriteByte(c)
		}
		if !closed {
			return nil, fmt.Errorf("unterminated label value in {%s}", body)
		}
		labels[key] = val.String()
		rest = strings.TrimPrefix(strings.TrimSpace(rest), ",")
		rest = strings.TrimSpace(rest)
	}
	return labels, nil
}

func isNameChar(c byte, first bool) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		return true
	case c >= '0' && c <= '9':
		return !first
	}
	return false
}

// SumSeries sums the values of every sample named name (any labels) — the
// aggregation the scrape mode and health detector run over a cluster's
// merged scrapes.
func SumSeries(samples []PromSample, name string) float64 {
	var sum float64
	for _, s := range samples {
		if s.Name == name {
			sum += s.Value
		}
	}
	return sum
}

// SumSeriesLabel sums the values of every sample named name whose label
// key equals val — e.g. the per-reason slices of the secure-rejection
// counter across a cluster's merged scrapes.
func SumSeriesLabel(samples []PromSample, name, key, val string) float64 {
	var sum float64
	for _, s := range samples {
		if s.Name == name && s.Labels[key] == val {
			sum += s.Value
		}
	}
	return sum
}

// MaxSeries returns the maximum value of every sample named name.
func MaxSeries(samples []PromSample, name string) float64 {
	var max float64
	for _, s := range samples {
		if s.Name == name && s.Value > max {
			max = s.Value
		}
	}
	return max
}

// HasSeries reports whether any sample is named name.
func HasSeries(samples []PromSample, name string) bool {
	for _, s := range samples {
		if s.Name == name {
			return true
		}
	}
	return false
}
