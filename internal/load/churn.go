package load

import (
	"sync"
	"time"

	"ssmfp/internal/graph"
)

// Sender is one injection path into a running deployment: count messages
// src→dst under payload, returning the UIDs the network accepted. The
// cluster operator plane's Inject (local or over HTTP) adapts to this
// directly; so does a bare msgpass.Network.Send in a loop.
type Sender func(src, dst graph.ProcessID, count int, payload string) ([]uint64, error)

// SustainedStream is one traffic stream that must keep flowing across
// membership churn: a fixed (src, dst) pair injected at a steady cadence
// under a stream-distinguishing payload. The payload doubles as the
// exactly-once namespace — UID streams restart with a node's
// incarnation, so churn-era oracles key deliveries on (payload, uid) and
// every stream needs its own payload.
type SustainedStream struct {
	Src, Dst graph.ProcessID
	Payload  string
	// Period is the injection cadence; 0 selects 2ms.
	Period time.Duration
}

// Sustain starts one goroutine per stream, each injecting a message
// every Period until the returned stop function is called (it blocks
// until all streams have wound down). A refused or failed injection —
// a node mid-reconfiguration, an admin endpoint briefly unreachable —
// is simply skipped: the next beat retries, which is what "sustained
// across churn" means; only messages the network actually accepted are
// recorded. record is called from the stream goroutines and must be
// safe for concurrent use.
func Sustain(send Sender, streams []SustainedStream, record func(payload string, uids []uint64)) (stop func()) {
	done := make(chan struct{})
	var wg sync.WaitGroup
	for _, s := range streams {
		period := s.Period
		if period <= 0 {
			period = 2 * time.Millisecond
		}
		wg.Add(1)
		go func(s SustainedStream, period time.Duration) {
			defer wg.Done()
			t := time.NewTicker(period)
			defer t.Stop()
			for {
				select {
				case <-done:
					return
				case <-t.C:
				}
				uids, err := send(s.Src, s.Dst, 1, s.Payload)
				if err != nil {
					continue
				}
				record(s.Payload, uids)
			}
		}(s, period)
	}
	return func() {
		close(done)
		wg.Wait()
	}
}
