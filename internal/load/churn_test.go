package load

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ssmfp/internal/graph"
)

// TestSustainRecordsOnlyAcceptedInjections: a sender that fails every
// third call models a node mid-reconfiguration; Sustain must keep the
// stream alive, record exactly the accepted UIDs under the right
// payloads, and wind down cleanly on stop.
func TestSustainRecordsOnlyAcceptedInjections(t *testing.T) {
	var calls atomic.Int64
	var nextUID atomic.Uint64
	send := func(src, dst graph.ProcessID, count int, payload string) ([]uint64, error) {
		if calls.Add(1)%3 == 0 {
			return nil, fmt.Errorf("mid-epoch")
		}
		uids := make([]uint64, count)
		for i := range uids {
			uids[i] = nextUID.Add(1)
		}
		return uids, nil
	}

	var mu sync.Mutex
	got := make(map[string][]uint64)
	record := func(payload string, uids []uint64) {
		mu.Lock()
		defer mu.Unlock()
		got[payload] = append(got[payload], uids...)
	}

	stop := Sustain(send, []SustainedStream{
		{Src: 0, Dst: 2, Payload: "a", Period: time.Millisecond},
		{Src: 2, Dst: 0, Payload: "b", Period: time.Millisecond},
	}, record)

	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		enough := len(got["a"]) >= 5 && len(got["b"]) >= 5
		mu.Unlock()
		if enough {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("streams never produced 5 accepted injections each")
		}
		time.Sleep(time.Millisecond)
	}
	stop() // must block until the goroutines are gone — no records after this

	mu.Lock()
	defer mu.Unlock()
	recorded := 0
	seen := make(map[uint64]bool)
	for payload, uids := range got {
		if payload != "a" && payload != "b" {
			t.Fatalf("unexpected payload %q", payload)
		}
		for _, uid := range uids {
			if seen[uid] {
				t.Fatalf("uid %d recorded twice", uid)
			}
			seen[uid] = true
		}
		recorded += len(uids)
	}
	if accepted := int(nextUID.Load()); recorded != accepted {
		t.Fatalf("recorded %d injections, sender accepted %d", recorded, accepted)
	}
}
