// Package load is the load-generation subsystem: open- and closed-loop
// traffic drivers that run against a live SSMFP deployment, measure
// per-message latency from the delivery stream, and fold the results into
// mergeable histograms and a versioned report (report.go) that the bench
// comparison gate understands.
//
// The open-loop driver injects messages on a precomputed arrival schedule
// (seeded Poisson or constant rate) and timestamps each message with its
// *scheduled* instant, so backpressure shows up as latency instead of
// being absorbed by a slowed-down generator — the classic coordinated-
// omission trap. The closed-loop driver keeps K messages outstanding per
// source and measures response time. Either way, exactly-once delivery is
// asserted continuously by the Collector while traffic flows, not by a
// post-hoc sweep: the load subsystem is itself an oracle for the
// snap-stabilizing forwarding protocol under stress.
//
// Sweep (sweep.go) steps the offered rate up a fixed geometric ladder to
// locate the saturation knee of a topology. The ladder is part of the
// configuration, so the deterministic section of a sweep report is
// byte-identical across runs of the same seed; the knee itself is a
// wall-clock measurement and lives with the volatile fields.
package load

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"ssmfp/internal/graph"
	"ssmfp/internal/msgpass"
	"ssmfp/internal/obs"
	"ssmfp/internal/telemetry"
)

// Network is the slice of the live-network surface the drivers need.
// *msgpass.Network implements it; the cmd/ssmfp-load adapter projects the
// public LiveNetwork onto it.
type Network interface {
	Send(src graph.ProcessID, payload string, dst graph.ProcessID) (uint64, error)
	QueueDepths() []msgpass.QueueDepth
}

// telemetrySource is the optional extension a Network may implement to
// hand the driver its metrics registry; *msgpass.Network does. Run uses
// it for the park-event counters in the step report — a Network without
// one just reports zeros there.
type telemetrySource interface {
	Telemetry() *telemetry.Registry
}

// Driver and arrival-process names accepted by Config.
const (
	DriverOpen   = "open"
	DriverClosed = "closed"

	ArrivalPoisson  = "poisson"
	ArrivalConstant = "constant"
)

// Config tunes one load step.
type Config struct {
	// Driver selects open-loop (schedule-driven) or closed-loop (window-
	// driven) injection. Default open.
	Driver string
	// Arrival is the open-loop arrival process: seeded-Poisson
	// (exponential gaps) or constant spacing. Default poisson.
	Arrival string
	// Rate is the open-loop offered rate in messages/second.
	Rate float64
	// Outstanding is the closed-loop window per source. Default 1.
	Outstanding int
	// Messages is the total number of messages to inject. Default 200.
	Messages int
	// Sources are the injecting processors; nil means all of them.
	// Destinations are drawn uniformly from the other processors.
	Sources []graph.ProcessID
	// Seed drives the plan (sources, destinations, arrival gaps). The
	// plan is a pure function of (Seed, topology size, Config), so two
	// runs of the same configuration inject the same traffic.
	Seed int64
	// Warmup messages are injected and awaited before the measured phase:
	// they heat the routing tables, the allocator and the scheduler so
	// the recorded quantiles measure the steady state, not deployment
	// cold start. Excluded from the histogram and the verdict. Default 0.
	Warmup int
	// DrainTimeout bounds the wait for stragglers after the last
	// injection. Default 60s.
	DrainTimeout time.Duration
	// TickEvery, when positive, publishes a KindLoadTick progress beat on
	// Bus at this period. Queue-depth gauges are sampled on the same
	// ticker (at a default period when TickEvery is zero).
	TickEvery time.Duration
	// Bus receives load-tick and load-done events; nil is fine.
	Bus *obs.Bus
	// Step is the step index stamped into events and the report (a sweep
	// sets it; single runs leave it 0).
	Step int
}

func (c Config) withDefaults() Config {
	if c.Driver == "" {
		c.Driver = DriverOpen
	}
	if c.Arrival == "" {
		c.Arrival = ArrivalPoisson
	}
	if c.Outstanding <= 0 {
		c.Outstanding = 1
	}
	if c.Messages <= 0 {
		c.Messages = 200
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 60 * time.Second
	}
	return c
}

func (c Config) validate(g *graph.Graph) error {
	switch c.Driver {
	case DriverOpen:
		if c.Rate <= 0 {
			return fmt.Errorf("load: open-loop driver needs Rate > 0")
		}
	case DriverClosed:
	default:
		return fmt.Errorf("load: unknown driver %q", c.Driver)
	}
	if c.Arrival != ArrivalPoisson && c.Arrival != ArrivalConstant {
		return fmt.Errorf("load: unknown arrival process %q", c.Arrival)
	}
	if g.N() < 2 {
		return fmt.Errorf("load: need at least 2 processors, have %d", g.N())
	}
	for _, s := range c.Sources {
		if int(s) < 0 || int(s) >= g.N() {
			return fmt.Errorf("load: source %d out of range for %d processors", s, g.N())
		}
	}
	return nil
}

// planEntry is one scheduled injection: At is the offset from run start
// (meaningful for the open-loop driver only).
type planEntry struct {
	Src, Dst graph.ProcessID
	At       time.Duration
}

// planSeedSalt decorrelates the plan stream from the protocol's own seed
// usage ("LOAD" in ASCII).
const planSeedSalt = 0x4c4f4144

// buildPlan derives the full injection plan from the configuration alone.
func buildPlan(g *graph.Graph, cfg Config) []planEntry {
	rng := rand.New(rand.NewSource(cfg.Seed ^ planSeedSalt))
	sources := cfg.Sources
	if sources == nil {
		sources = make([]graph.ProcessID, g.N())
		for i := range sources {
			sources[i] = graph.ProcessID(i)
		}
	}
	plan := make([]planEntry, cfg.Messages)
	var at time.Duration
	for i := range plan {
		src := sources[rng.Intn(len(sources))]
		d := graph.ProcessID(rng.Intn(g.N() - 1))
		if d >= src {
			d++
		}
		if cfg.Driver == DriverOpen {
			switch cfg.Arrival {
			case ArrivalConstant:
				at = time.Duration(float64(i) / cfg.Rate * float64(time.Second))
			default: // poisson: cumulative exponential gaps
				at += time.Duration(rng.ExpFloat64() / cfg.Rate * float64(time.Second))
			}
		}
		plan[i] = planEntry{Src: src, Dst: d, At: at}
	}
	return plan
}

// Run executes one load step against nw, whose options must route
// deliveries into hook (msgpass.Options.OnDeliver = hook.OnDeliver).
// It returns the step's report; an error means the configuration was
// unusable, not that the step failed its verdict.
func Run(nw Network, g *graph.Graph, hook *Hook, cfg Config) (StepReport, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(g); err != nil {
		return StepReport{}, err
	}
	plan := buildPlan(g, cfg)
	col := newCollector(plan)
	hook.Attach(col)
	defer hook.Detach()
	warmUp(nw, g, col, cfg)

	// Park-event baseline after warmup: the step reports the delta, so
	// warmup congestion and earlier steps on a shared registry don't leak
	// into this step's counters.
	var reg *telemetry.Registry
	if ts, ok := nw.(telemetrySource); ok {
		reg = ts.Telemetry()
	}
	var parkBase int64
	if reg != nil {
		parkBase, _ = reg.Value(telemetry.SeriesParkEvents)
	}

	var sent atomic.Int64
	var peaks queuePeaks
	stopTick := make(chan struct{})
	var tickWG sync.WaitGroup
	tickWG.Add(1)
	go func() {
		defer tickWG.Done()
		period := cfg.TickEvery
		if period <= 0 {
			period = 25 * time.Millisecond
		}
		t := time.NewTicker(period)
		defer t.Stop()
		for {
			select {
			case <-stopTick:
				return
			case <-t.C:
				peaks.sample(nw.QueueDepths())
				if cfg.TickEvery > 0 && cfg.Bus.Active() {
					cfg.Bus.Publish(obs.Event{
						Kind: obs.KindLoadTick, Step: -1, Round: -1,
						Count:  col.Delivered(),
						Detail: fmt.Sprintf("step=%d sent=%d delivered=%d", cfg.Step, sent.Load(), col.Delivered()),
					})
				}
			}
		}
	}()

	start := time.Now()
	var sendErr error
	if cfg.Driver == DriverOpen {
		sendErr = injectOpen(nw, plan, col, &sent, start)
	} else {
		sendErr = injectClosed(nw, plan, col, &sent, cfg)
	}
	injectNS := time.Since(start).Nanoseconds()

	// Drain: wait for every sent message to land (the protocol guarantees
	// it will; the timeout bounds a broken deployment, and expiring here
	// surfaces as missing-delivery violations in the verdict). The wait is
	// event-driven off the delivery hook — the driver wakes on the final
	// delivery, not on the next poll tick.
	col.waitUntil(func() bool { return col.Delivered() >= int(sent.Load()) },
		time.Now().Add(cfg.DrainTimeout))
	spanNS := time.Since(start).Nanoseconds()
	close(stopTick)
	tickWG.Wait()
	peaks.sample(nw.QueueDepths())
	hook.Detach()

	exactlyOnce, violations := col.finish(int(sent.Load()))
	if sendErr != nil {
		exactlyOnce = false
		violations = append(violations, sendErr.Error())
	}
	var parkEvents int64
	if reg != nil {
		now, _ := reg.Value(telemetry.SeriesParkEvents)
		parkEvents = now - parkBase
	}
	rep := buildStepReport(cfg, plan, col, int(sent.Load()), exactlyOnce, violations, injectNS, spanNS, &peaks, parkEvents)

	if cfg.Bus.Active() {
		verdict := "ok"
		if !rep.ExactlyOnce {
			verdict = "fail"
		}
		cfg.Bus.Publish(obs.Event{
			Kind: obs.KindLoadDone, Step: -1, Round: -1,
			Count: cfg.Step, Rule: verdict,
			Detail: fmt.Sprintf("rate=%.0f sent=%d delivered=%d p99=%s",
				cfg.Rate, rep.Sent, rep.Delivered, time.Duration(rep.Latency.P99NS)),
		})
	}
	return rep, nil
}

// warmUp floods cfg.Warmup untracked messages round-robin across the
// processors and waits (bounded) for them to land, so the measured phase
// starts against a hot deployment. Send errors are ignored here — the
// measured phase will surface anything real.
func warmUp(nw Network, g *graph.Graph, col *Collector, cfg Config) {
	if cfg.Warmup <= 0 {
		return
	}
	sent := 0
	for i := 0; i < cfg.Warmup; i++ {
		src := graph.ProcessID(i % g.N())
		dst := graph.ProcessID((i + 1 + i/g.N()) % g.N())
		if dst == src {
			dst = (dst + 1) % graph.ProcessID(g.N())
		}
		if _, err := nw.Send(src, fmt.Sprintf("%sw%d", warmupPrefix, i), dst); err == nil {
			sent++
		}
	}
	col.waitUntil(func() bool { return int(col.warm.Load()) >= sent },
		time.Now().Add(5*time.Second))
}

// injectOpen replays the arrival schedule: sleep until each entry's
// scheduled instant (catching up without sleeping when behind — the
// open-loop discipline) and tag it with that instant.
func injectOpen(nw Network, plan []planEntry, col *Collector, sent *atomic.Int64, start time.Time) error {
	for seq, e := range plan {
		sched := start.Add(e.At)
		if d := time.Until(sched); d > 0 {
			time.Sleep(d)
		}
		col.markSent(seq)
		if _, err := nw.Send(e.Src, EncodeTag(seq, e.Src, e.Dst, sched.UnixNano()), e.Dst); err != nil {
			col.unmarkSent(seq)
			return fmt.Errorf("send of seq %d failed: %w", seq, err)
		}
		sent.Add(1)
	}
	return nil
}

// injectClosed runs one goroutine per source, each keeping at most
// cfg.Outstanding messages in flight; the collector's completion callback
// refills the window. Tags carry the actual send instant, so latency is
// response time.
func injectClosed(nw Network, plan []planEntry, col *Collector, sent *atomic.Int64, cfg Config) error {
	perSource := make(map[graph.ProcessID][]int)
	for seq, e := range plan {
		perSource[e.Src] = append(perSource[e.Src], seq)
	}
	refill := make(map[graph.ProcessID]chan struct{}, len(perSource))
	for src, seqs := range perSource {
		refill[src] = make(chan struct{}, len(seqs))
	}
	col.mu.Lock()
	col.onComplete = func(src graph.ProcessID) {
		if ch, ok := refill[src]; ok {
			ch <- struct{}{}
		}
	}
	col.mu.Unlock()

	var wg sync.WaitGroup
	errc := make(chan error, len(perSource))
	for src, seqs := range perSource {
		wg.Add(1)
		go func(src graph.ProcessID, seqs []int) {
			defer wg.Done()
			timeout := time.After(cfg.DrainTimeout)
			inFlight := 0
			for _, seq := range seqs {
				for inFlight >= cfg.Outstanding {
					select {
					case <-refill[src]:
						inFlight--
					case <-timeout:
						errc <- fmt.Errorf("source %d stalled with %d in flight", src, inFlight)
						return
					}
				}
				e := plan[seq]
				col.markSent(seq)
				if _, err := nw.Send(src, EncodeTag(seq, src, e.Dst, time.Now().UnixNano()), e.Dst); err != nil {
					col.unmarkSent(seq)
					errc <- fmt.Errorf("send of seq %d failed: %w", seq, err)
					return
				}
				sent.Add(1)
				inFlight++
			}
		}(src, seqs)
	}
	wg.Wait()
	select {
	case err := <-errc:
		return err
	default:
		return nil
	}
}

// queuePeaks tracks the high-water marks of the queue gauges across the
// run's samples (deployment-wide maxima, not sums).
type queuePeaks struct {
	mu                                          sync.Mutex
	inbox, pending, bufR, bufE, wireOut, parked int
}

func (p *queuePeaks) sample(depths []msgpass.QueueDepth) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, q := range depths {
		if q.Inbox > p.inbox {
			p.inbox = q.Inbox
		}
		if q.Pending > p.pending {
			p.pending = q.Pending
		}
		if q.BufR > p.bufR {
			p.bufR = q.BufR
		}
		if q.BufE > p.bufE {
			p.bufE = q.BufE
		}
		if q.WireOut > p.wireOut {
			p.wireOut = q.WireOut
		}
		if q.Parked > p.parked {
			p.parked = q.Parked
		}
	}
}
