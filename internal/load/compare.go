package load

import "fmt"

// Thresholds gate a load comparison. Latency regressions are judged per
// step against both a relative growth bound and an absolute noise floor
// (a p99 going from 40µs to 70µs on an idle step is scheduler noise, not
// a regression); throughput regressions symmetrically. Exactly-once
// flips and missing steps always gate, thresholds notwithstanding.
type Thresholds struct {
	// P99Pct is the allowed p99 latency growth in percent. Default 75.
	P99Pct float64
	// P99MinNS ignores p99 deltas below this absolute floor. Default 250µs.
	P99MinNS int64
	// RatePct is the allowed achieved-rate (and knee-rate) drop in
	// percent. Default 25.
	RatePct float64
	// RateMin ignores rate deltas below this many msgs/s. Default 50.
	RateMin float64
}

func (t Thresholds) withDefaults() Thresholds {
	if t.P99Pct <= 0 {
		t.P99Pct = 75
	}
	if t.P99MinNS <= 0 {
		t.P99MinNS = 250_000
	}
	if t.RatePct <= 0 {
		t.RatePct = 25
	}
	if t.RateMin <= 0 {
		t.RateMin = 50
	}
	return t
}

// Delta is one metric's movement between two reports.
type Delta struct {
	Step   int     `json:"step"`
	Metric string  `json:"metric"`
	Old    float64 `json:"old,omitempty"`
	New    float64 `json:"new,omitempty"`
	Pct    float64 `json:"pct"`
}

func (d Delta) String() string {
	return fmt.Sprintf("step %d %s: %.0f -> %.0f (%+.1f%%)", d.Step, d.Metric, d.Old, d.New, d.Pct)
}

// CompareResult classifies every gated metric's movement.
type CompareResult struct {
	// Broken are hard failures: schema/config mismatches, exactly-once
	// flips, missing steps. Any entry fails the gate.
	Broken []string `json:"broken,omitempty"`
	// Regressions exceeded their threshold; Improvements moved the other
	// way by the same margin (informational).
	Regressions  []Delta `json:"regressions,omitempty"`
	Improvements []Delta `json:"improvements,omitempty"`
}

// Clean reports whether the comparison passes the gate.
func (r *CompareResult) Clean() bool {
	return len(r.Broken) == 0 && len(r.Regressions) == 0
}

// Compare gates report next against baseline prev.
func Compare(prev, next *Report, th Thresholds) *CompareResult {
	th = th.withDefaults()
	res := &CompareResult{}
	if prev.Schema != next.Schema {
		res.Broken = append(res.Broken, fmt.Sprintf("schema mismatch: %q vs %q", prev.Schema, next.Schema))
		return res
	}
	if prev.Topology != next.Topology || prev.Driver != next.Driver || prev.Seed != next.Seed {
		res.Broken = append(res.Broken,
			fmt.Sprintf("configuration mismatch: %s/%s/seed %d vs %s/%s/seed %d",
				prev.Topology, prev.Driver, prev.Seed, next.Topology, next.Driver, next.Seed))
		return res
	}
	if len(next.Steps) < len(prev.Steps) {
		res.Broken = append(res.Broken,
			fmt.Sprintf("missing steps: baseline has %d, new report %d", len(prev.Steps), len(next.Steps)))
	}
	if prev.ExactlyOnce && !next.ExactlyOnce {
		res.Broken = append(res.Broken, "exactly-once verdict flipped to fail")
	}
	for i := range prev.Steps {
		if i >= len(next.Steps) {
			break
		}
		p, n := &prev.Steps[i], &next.Steps[i]
		if p.ExactlyOnce && !n.ExactlyOnce {
			res.Broken = append(res.Broken, fmt.Sprintf("step %d: exactly-once flipped to fail", i))
		}
		res.classify(i, "p99_latency_ns", float64(p.Latency.P99NS), float64(n.Latency.P99NS),
			true, th.P99Pct, float64(th.P99MinNS))
		res.classify(i, "achieved_rate", p.AchievedRate, n.AchievedRate,
			false, th.RatePct, th.RateMin)
	}
	if prev.Sweep && next.Sweep {
		res.classify(-1, "knee_rate", prev.KneeRate, next.KneeRate, false, th.RatePct, th.RateMin)
		res.classify(-1, "max_achieved", prev.MaxAchieved, next.MaxAchieved, false, th.RatePct, th.RateMin)
	}
	return res
}

// classify files the movement of one metric. higherBad marks metrics
// where growth is the regression direction (latency); otherwise shrink
// is (throughput). Deltas under the absolute floor are noise either way.
func (r *CompareResult) classify(step int, metric string, old, new float64, higherBad bool, pct, floor float64) {
	if old == 0 {
		return // no baseline signal
	}
	diff := new - old
	if !higherBad {
		diff = -diff
	}
	if diff < 0 {
		// moved in the good direction; report past the same margin
		if -diff >= floor && -diff/old*100 >= pct {
			r.Improvements = append(r.Improvements, Delta{Step: step, Metric: metric, Old: old, New: new, Pct: (new - old) / old * 100})
		}
		return
	}
	if diff >= floor && diff/old*100 >= pct {
		r.Regressions = append(r.Regressions, Delta{Step: step, Metric: metric, Old: old, New: new, Pct: (new - old) / old * 100})
	}
}
