package load

import (
	"math/rand"
	"strings"
	"testing"

	"ssmfp/internal/graph"
)

// TestTagRoundTripProperty drives the v3 codec across a seeded sample of
// the field space: every encodable tuple decodes to itself, the encoding
// is the documented fixed width, and a fresh tag carries zero hold.
func TestTagRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := [][4]int64{
		{0, 0, 1, 0},
		{maxTagField, maxTagField, maxTagField, 1<<63 - 1},
		{1, 2, 3, 4},
	}
	for i := 0; i < 500; i++ {
		cases = append(cases, [4]int64{
			rng.Int63n(maxTagField + 1),
			rng.Int63n(maxTagField + 1),
			rng.Int63n(maxTagField + 1),
			rng.Int63(),
		})
	}
	for _, c := range cases {
		tag := EncodeTag(int(c[0]), graph.ProcessID(c[1]), graph.ProcessID(c[2]), c[3])
		if len(tag) != tagV3Len {
			t.Fatalf("EncodeTag%v produced %d bytes, want %d", c, len(tag), tagV3Len)
		}
		seq, src, dst, sched, ok := ParseTag(tag)
		if !ok || int64(seq) != c[0] || int64(src) != c[1] || int64(dst) != c[2] || sched != c[3] {
			t.Fatalf("round trip of %v gave (%d,%d,%d,%d,%v)", c, seq, src, dst, sched, ok)
		}
		if hold, ok := ParseTagHold(tag); !ok || hold != 0 {
			t.Fatalf("fresh tag carries hold (%d,%v), want (0,true)", hold, ok)
		}
		if v := TagVersion(tag); v != TagVersionCurrent {
			t.Fatalf("TagVersion(%q) = %d", tag, v)
		}
	}
}

// TestAddHold pins the attribution slot: accumulation across rewrite
// points, microsecond truncation, u32 saturation, and pass-through of
// payloads that carry no v3 tag.
func TestAddHold(t *testing.T) {
	tag := EncodeTag(7, 1, 2, 123456789)

	t1, ok := AddHold(tag, 1_500_000) // 1.5ms -> 1500us
	if !ok {
		t.Fatal("AddHold rejected a v3 tag")
	}
	if h, _ := ParseTagHold(t1); h != 1_500_000 {
		t.Fatalf("hold after first stamp = %dns, want 1500000", h)
	}
	t2, _ := AddHold(t1, 2_000_999) // +2000us (sub-microsecond truncated)
	if h, _ := ParseTagHold(t2); h != 3_500_000 {
		t.Fatalf("hold after second stamp = %dns, want 3500000", h)
	}
	// The plan coordinates survive the rewrites untouched.
	seq, src, dst, sched, ok := ParseTag(t2)
	if !ok || seq != 7 || src != 1 || dst != 2 || sched != 123456789 {
		t.Fatalf("AddHold corrupted coordinates: (%d,%d,%d,%d,%v)", seq, src, dst, sched, ok)
	}

	// Saturation, not wraparound.
	sat, _ := AddHold(tag, (1<<40)*1000)
	if h, _ := ParseTagHold(sat); h != (1<<32-1)*1000 {
		t.Fatalf("saturated hold = %d, want u32 max in nanos", h)
	}
	sat2, _ := AddHold(sat, 1_000_000)
	if h, _ := ParseTagHold(sat2); h != (1<<32-1)*1000 {
		t.Fatalf("post-saturation stamp moved the slot: %d", h)
	}

	// Negative waits clamp to zero (clock weirdness must not panic or wrap).
	neg, ok := AddHold(tag, -5)
	if !ok {
		t.Fatal("AddHold rejected a negative wait")
	}
	if h, _ := ParseTagHold(neg); h != 0 {
		t.Fatalf("negative wait produced hold %d", h)
	}

	// Foreign payloads pass through unchanged: nodes stamp blindly.
	for _, foreign := range []string{"", "hello", EncodeTagV2(1, 2, 3, 4), EncodeTagV1(1, 2, 3, 4), "lw1:w3"} {
		got, ok := AddHold(foreign, 1000)
		if ok || got != foreign {
			t.Errorf("AddHold(%q) = (%q,%v), want unchanged pass-through", foreign, got, ok)
		}
		if _, ok := ParseTagHold(foreign); ok {
			t.Errorf("ParseTagHold(%q) accepted a non-v3 payload", foreign)
		}
	}
}

func TestEncodeTagRejectsOutOfRange(t *testing.T) {
	cases := [][4]int64{
		{-1, 0, 1, 0},
		{0, -1, 1, 0},
		{0, 0, -1, 0},
		{0, 0, 1, -1},
		{maxTagField + 1, 0, 1, 0},
		{0, maxTagField + 1, 1, 0},
		{0, 0, maxTagField + 1, 0},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("EncodeTag%v did not panic", c)
				}
			}()
			EncodeTag(int(c[0]), graph.ProcessID(c[1]), graph.ProcessID(c[2]), c[3])
		}()
	}
}

func TestParseTagRejectsMalformed(t *testing.T) {
	good := EncodeTag(1, 2, 3, 4)
	bad := []string{
		"",
		"lt3:",
		good[:tagV3Len-1],       // truncated
		good + "x",              // trailing byte
		"lt2:" + good[4:],       // right width, prior version magic
		"xx3:" + good[4:],       // right width, wrong magic
		EncodeTagV2(1, 2, 3, 4), // well-formed v2 is not v3
		strings.Repeat("z", tagV3Len),
	}
	for _, b := range bad {
		if _, _, _, _, ok := ParseTag(b); ok {
			t.Errorf("ParseTag(%q) accepted a malformed payload", b)
		}
	}
}

// TestParseTagV2Fixture pins the prior binary format so the cross-version
// guards keep something real to detect: a v2 tag round-trips through its
// own codec, is rejected by the v3 parser, and reports version 2.
func TestParseTagV2Fixture(t *testing.T) {
	tag := EncodeTagV2(42, 3, 7, 1234567890123)
	if len(tag) != tagV2Len {
		t.Fatalf("v2 tag is %d bytes, want %d", len(tag), tagV2Len)
	}
	seq, src, dst, sched, ok := ParseTagV2(tag)
	if !ok || seq != 42 || src != 3 || dst != 7 || sched != 1234567890123 {
		t.Fatalf("v2 round trip gave (%d,%d,%d,%d,%v)", seq, src, dst, sched, ok)
	}
	if _, _, _, _, ok := ParseTag(tag); ok {
		t.Fatal("v3 parser accepted a v2 tag")
	}
	if _, _, _, _, ok := ParseTagV2(EncodeTag(42, 3, 7, 1234567890123)); ok {
		t.Fatal("v2 parser accepted a v3 tag")
	}
	if v := TagVersion(tag); v != 2 {
		t.Fatalf("TagVersion(v2 tag) = %d", v)
	}
}

// TestParseTagAllocFree pins the hot-path contract: decoding a delivery
// tag (coordinates and hold slot) performs zero allocations.
func TestParseTagAllocFree(t *testing.T) {
	tag, _ := AddHold(EncodeTag(7, 1, 2, 123456789), 5000)
	if allocs := testing.AllocsPerRun(200, func() {
		if _, _, _, _, ok := ParseTag(tag); !ok {
			t.Fatal("parse failed")
		}
		if _, ok := ParseTagHold(tag); !ok {
			t.Fatal("hold parse failed")
		}
	}); allocs > 0 {
		t.Fatalf("tag decode allocates %.1f times per call, want 0", allocs)
	}
}

// TestParseTagV1RejectsNegativeAndOverflow is the regression test for the
// latent v1 parser bug: strconv.Atoi accepted negative seq/src/dst (and
// 64-bit overflow of int32 process IDs), casting them straight into
// graph.ProcessID. The hardened parser refuses them.
func TestParseTagV1RejectsNegativeAndOverflow(t *testing.T) {
	bad := []string{
		"lt1:-1:0:1:0",
		"lt1:0:-7:1:0",
		"lt1:0:0:-2:0",
		"lt1:0:0:1:-5",                  // negative schedule instant
		"lt1:2147483648:0:1:0",          // seq beyond int32
		"lt1:0:2147483648:1:0",          // src beyond int32
		"lt1:0:0:2147483648:0",          // dst beyond int32
		"lt1:9223372036854775808:0:1:0", // beyond int64
		"lt1:1:2:3",                     // missing field
		"lt1:1:2:3:4:5",                 // extra field
		"lt1:x:2:3:4",
		"lt1:1:2:3:y",
		"lt2:1:2:3:4", // foreign version
	}
	for _, b := range bad {
		if seq, src, dst, _, ok := ParseTagV1(b); ok {
			t.Errorf("ParseTagV1(%q) accepted (%d,%d,%d)", b, seq, src, dst)
		}
	}
	tag := EncodeTagV1(42, 3, 7, 1234567890123)
	seq, src, dst, sched, ok := ParseTagV1(tag)
	if !ok || seq != 42 || src != 3 || dst != 7 || sched != 1234567890123 {
		t.Fatalf("v1 round trip gave (%d,%d,%d,%d,%v)", seq, src, dst, sched, ok)
	}
}

func TestTagVersion(t *testing.T) {
	cases := map[string]int{
		EncodeTag(1, 2, 3, 4):   3,
		EncodeTagV2(1, 2, 3, 4): 2,
		EncodeTagV1(1, 2, 3, 4): 1,
		"lt1:":                  1, // truncated body still claims v1
		"lt2:garbage":           2,
		"lt3:short":             3,
		"lt9:1:2:3:4":           0, // unknown version digit
		"lw1:w0":                0, // warmup is not a load tag
		"":                      0,
		"hello":                 0,
		"lt":                    0,
	}
	for payload, want := range cases {
		if got := TagVersion(payload); got != want {
			t.Errorf("TagVersion(%q) = %d, want %d", payload, got, want)
		}
	}
}

// FuzzParseTag holds the parsers to totality and round-trip identity:
// arbitrary payloads either fail to parse or parse into fields that —
// after re-applying the decoded hold — re-encode to the identical
// payload. Corpus entries from the v2 era remain valid inputs; they now
// exercise the rejection path of the v3 parser.
func FuzzParseTag(f *testing.F) {
	f.Add(EncodeTag(0, 0, 1, 0))
	f.Add(EncodeTag(maxTagField, maxTagField, maxTagField, 1<<63-1))
	f.Add(EncodeTag(42, 3, 7, 1234567890123))
	f.Add(func() string { s, _ := AddHold(EncodeTag(42, 3, 7, 1234567890123), 5_000_000); return s }())
	f.Add(EncodeTagV2(42, 3, 7, 1234567890123))
	f.Add(EncodeTagV1(42, 3, 7, 1234567890123))
	f.Add("lt1:-1:-7:2:0")
	f.Add("lt2:1:2:3:4")
	f.Add("lw1:w17")
	f.Add("")
	f.Fuzz(func(t *testing.T, payload string) {
		if seq, src, dst, sched, ok := ParseTag(payload); ok {
			// EncodeTag writes a zero hold slot; folding the decoded hold
			// back in must reproduce the input byte for byte. ParseTagHold
			// returns whole microseconds as nanos, so no truncation loss.
			hold, hok := ParseTagHold(payload)
			if !hok {
				t.Fatalf("v3 tag %q parsed but ParseTagHold refused it", payload)
			}
			back, _ := AddHold(EncodeTag(seq, src, dst, sched), hold)
			if back != payload {
				t.Fatalf("v3 re-encode mismatch: %q -> %q", payload, back)
			}
			if TagVersion(payload) != 3 {
				t.Fatalf("parseable v3 tag %q claims version %d", payload, TagVersion(payload))
			}
		}
		if seq, src, dst, sched, ok := ParseTagV2(payload); ok {
			if back := EncodeTagV2(seq, src, dst, sched); back != payload {
				t.Fatalf("v2 re-encode mismatch: %q -> %q", payload, back)
			}
			if TagVersion(payload) != 2 {
				t.Fatalf("parseable v2 tag %q claims version %d", payload, TagVersion(payload))
			}
		}
		if seq, src, dst, sched, ok := ParseTagV1(payload); ok {
			if seq < 0 || src < 0 || dst < 0 || sched < 0 {
				t.Fatalf("v1 parser leaked a negative field from %q", payload)
			}
			// The text form is not bijective (leading zeros, "+" signs), so
			// the property is semantic: re-encoding re-parses identically.
			back := EncodeTagV1(seq, src, dst, sched)
			s2, sr2, d2, sc2, ok2 := ParseTagV1(back)
			if !ok2 || s2 != seq || sr2 != src || d2 != dst || sc2 != sched {
				t.Fatalf("v1 semantic round trip broke: %q -> %q", payload, back)
			}
		}
	})
}
