package load

import (
	"math/rand"
	"strings"
	"testing"

	"ssmfp/internal/graph"
)

// TestTagRoundTripProperty drives the v2 codec across a seeded sample of
// the field space: every encodable tuple decodes to itself, and the
// encoding is the documented fixed width.
func TestTagRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := [][4]int64{
		{0, 0, 1, 0},
		{maxTagField, maxTagField, maxTagField, 1<<63 - 1},
		{1, 2, 3, 4},
	}
	for i := 0; i < 500; i++ {
		cases = append(cases, [4]int64{
			rng.Int63n(maxTagField + 1),
			rng.Int63n(maxTagField + 1),
			rng.Int63n(maxTagField + 1),
			rng.Int63(),
		})
	}
	for _, c := range cases {
		tag := EncodeTag(int(c[0]), graph.ProcessID(c[1]), graph.ProcessID(c[2]), c[3])
		if len(tag) != tagV2Len {
			t.Fatalf("EncodeTag%v produced %d bytes, want %d", c, len(tag), tagV2Len)
		}
		seq, src, dst, sched, ok := ParseTag(tag)
		if !ok || int64(seq) != c[0] || int64(src) != c[1] || int64(dst) != c[2] || sched != c[3] {
			t.Fatalf("round trip of %v gave (%d,%d,%d,%d,%v)", c, seq, src, dst, sched, ok)
		}
		if v := TagVersion(tag); v != TagVersionCurrent {
			t.Fatalf("TagVersion(%q) = %d", tag, v)
		}
	}
}

func TestEncodeTagRejectsOutOfRange(t *testing.T) {
	cases := [][4]int64{
		{-1, 0, 1, 0},
		{0, -1, 1, 0},
		{0, 0, -1, 0},
		{0, 0, 1, -1},
		{maxTagField + 1, 0, 1, 0},
		{0, maxTagField + 1, 1, 0},
		{0, 0, maxTagField + 1, 0},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("EncodeTag%v did not panic", c)
				}
			}()
			EncodeTag(int(c[0]), graph.ProcessID(c[1]), graph.ProcessID(c[2]), c[3])
		}()
	}
}

func TestParseTagRejectsMalformed(t *testing.T) {
	good := EncodeTag(1, 2, 3, 4)
	bad := []string{
		"",
		"lt2:",
		good[:tagV2Len-1], // truncated
		good + "x",        // trailing byte
		"lt1:" + good[4:], // right width, wrong version
		"xx2:" + good[4:], // right width, wrong magic
		strings.Repeat("z", tagV2Len),
	}
	for _, b := range bad {
		if _, _, _, _, ok := ParseTag(b); ok {
			t.Errorf("ParseTag(%q) accepted a malformed payload", b)
		}
	}
}

// TestParseTagAllocFree pins the hot-path contract: decoding a delivery
// tag performs zero allocations.
func TestParseTagAllocFree(t *testing.T) {
	tag := EncodeTag(7, 1, 2, 123456789)
	if allocs := testing.AllocsPerRun(200, func() {
		if _, _, _, _, ok := ParseTag(tag); !ok {
			t.Fatal("parse failed")
		}
	}); allocs > 0 {
		t.Fatalf("ParseTag allocates %.1f times per call, want 0", allocs)
	}
}

// TestParseTagV1RejectsNegativeAndOverflow is the regression test for the
// latent v1 parser bug: strconv.Atoi accepted negative seq/src/dst (and
// 64-bit overflow of int32 process IDs), casting them straight into
// graph.ProcessID. The hardened parser refuses them.
func TestParseTagV1RejectsNegativeAndOverflow(t *testing.T) {
	bad := []string{
		"lt1:-1:0:1:0",
		"lt1:0:-7:1:0",
		"lt1:0:0:-2:0",
		"lt1:0:0:1:-5",                  // negative schedule instant
		"lt1:2147483648:0:1:0",          // seq beyond int32
		"lt1:0:2147483648:1:0",          // src beyond int32
		"lt1:0:0:2147483648:0",          // dst beyond int32
		"lt1:9223372036854775808:0:1:0", // beyond int64
		"lt1:1:2:3",                     // missing field
		"lt1:1:2:3:4:5",                 // extra field
		"lt1:x:2:3:4",
		"lt1:1:2:3:y",
		"lt2:1:2:3:4", // foreign version
	}
	for _, b := range bad {
		if seq, src, dst, _, ok := ParseTagV1(b); ok {
			t.Errorf("ParseTagV1(%q) accepted (%d,%d,%d)", b, seq, src, dst)
		}
	}
	tag := EncodeTagV1(42, 3, 7, 1234567890123)
	seq, src, dst, sched, ok := ParseTagV1(tag)
	if !ok || seq != 42 || src != 3 || dst != 7 || sched != 1234567890123 {
		t.Fatalf("v1 round trip gave (%d,%d,%d,%d,%v)", seq, src, dst, sched, ok)
	}
}

func TestTagVersion(t *testing.T) {
	cases := map[string]int{
		EncodeTag(1, 2, 3, 4):   2,
		EncodeTagV1(1, 2, 3, 4): 1,
		"lt1:":                  1, // truncated body still claims v1
		"lt2:garbage":           2,
		"lt9:1:2:3:4":           0, // unknown version digit
		"lw1:w0":                0, // warmup is not a load tag
		"":                      0,
		"hello":                 0,
		"lt":                    0,
	}
	for payload, want := range cases {
		if got := TagVersion(payload); got != want {
			t.Errorf("TagVersion(%q) = %d, want %d", payload, got, want)
		}
	}
}

// FuzzParseTag holds both parsers to totality and round-trip identity:
// arbitrary payloads either fail to parse or parse into fields that
// re-encode to the identical payload.
func FuzzParseTag(f *testing.F) {
	f.Add(EncodeTag(0, 0, 1, 0))
	f.Add(EncodeTag(maxTagField, maxTagField, maxTagField, 1<<63-1))
	f.Add(EncodeTag(42, 3, 7, 1234567890123))
	f.Add(EncodeTagV1(42, 3, 7, 1234567890123))
	f.Add("lt1:-1:-7:2:0")
	f.Add("lt2:1:2:3:4")
	f.Add("lw1:w17")
	f.Add("")
	f.Fuzz(func(t *testing.T, payload string) {
		if seq, src, dst, sched, ok := ParseTag(payload); ok {
			if back := EncodeTag(seq, src, dst, sched); back != payload {
				t.Fatalf("v2 re-encode mismatch: %q -> %q", payload, back)
			}
			if TagVersion(payload) != 2 {
				t.Fatalf("parseable v2 tag %q claims version %d", payload, TagVersion(payload))
			}
		}
		if seq, src, dst, sched, ok := ParseTagV1(payload); ok {
			if seq < 0 || src < 0 || dst < 0 || sched < 0 {
				t.Fatalf("v1 parser leaked a negative field from %q", payload)
			}
			// The text form is not bijective (leading zeros, "+" signs), so
			// the property is semantic: re-encoding re-parses identically.
			back := EncodeTagV1(seq, src, dst, sched)
			s2, sr2, d2, sc2, ok2 := ParseTagV1(back)
			if !ok2 || s2 != seq || sr2 != src || d2 != dst || sc2 != sched {
				t.Fatalf("v1 semantic round trip broke: %q -> %q", payload, back)
			}
		}
	})
}
