package load

import (
	"encoding/binary"
	"strconv"
	"strings"

	"ssmfp/internal/graph"
)

// Payload tag codec.
//
// Every load-generated message carries its plan coordinates in the
// payload — sequence number, source, intended destination, and the
// scheduled injection instant in Unix nanoseconds — so the latency and
// exactly-once verdict of a delivery are computable from the delivery
// stream alone. No side table has to cross process boundaries, which is
// what lets the same collector serve the in-process LiveNetwork and the
// TCP cluster (whose nodes share the host clock via loopback).
//
// Version 3 (current) is a fixed-width binary layout:
//
//	tag := "lt3:" u32be(seq) u32be(src) u32be(dst) u64be(schedNanos) u32be(holdMicros)
//
// The trailing u32 is the per-hop latency-attribution slot: the
// accumulated *hold* time — higher-layer queueing at the source (R1 wait)
// plus parked-offer waits at congested hops — in microseconds, saturating.
// Nodes fold wait time in with AddHold at the two per-message rewrite
// points (accepting a send into bufR, accepting a parked offer); the
// collector reads it with ParseTagHold and attributes the rest of the
// end-to-end latency to wire transfer and destination-side delivery. One
// u32 slot keeps the tag compact; microsecond resolution saturates at
// ~71 minutes, far beyond any latency this system measures.
//
// Encoding is one string conversion; parsing is fixed-offset reads with
// zero allocations. Version 2 ("lt2:", the same layout without the hold
// slot) and version 1 ("lt1:<seq>:<src>:<dst>:<sched>", colon-separated
// decimal) remain decodable via ParseTagV2/ParseTagV1 so mixed-version
// deployments are *detected* (TagVersion) and failed loudly instead of
// silently mis-parsed; neither is emitted by this build outside tests.
//
// All parsers reject negative and out-of-range fields: a corrupted or
// hostile payload must not cast into a bogus graph.ProcessID and
// misattribute a delivery.

// Tag version prefixes. All versions are 4 bytes, "lt" + digit + ':'.
const (
	tagPrefixV1 = "lt1:"
	tagPrefixV2 = "lt2:"
	tagPrefixV3 = "lt3:"

	// TagVersionCurrent is the version EncodeTag writes.
	TagVersionCurrent = 3
)

// warmupPrefix tags warmup traffic: counted on arrival so the driver can
// wait for the deployment to be hot, but excluded from the histogram and
// the exactly-once verdict.
const warmupPrefix = "lw1:"

// Exact tag lengths: prefix + fields.
const (
	tagV2Len = 4 + 4 + 4 + 4 + 8     // prefix, seq, src, dst, sched
	tagV3Len = 4 + 4 + 4 + 4 + 8 + 4 // v2 fields + holdMicros
)

// holdOffset locates the hold slot inside a v3 tag.
const holdOffset = 24

// maxTagField bounds seq/src/dst in every version: values beyond int32
// (or negative ones, in the v1 text form) are rejected, not cast.
const maxTagField = 1<<31 - 1

// EncodeTag renders the load payload for plan entry seq: source, intended
// destination, and the scheduled injection instant in Unix nanoseconds.
// The hold slot starts at zero; nodes accumulate into it with AddHold.
// The scheduled (not actual) instant is the open-loop anti-coordinated-
// omission guarantee: a send delayed by backpressure counts that delay as
// latency instead of silently shifting the schedule. Fields outside
// [0, 2³¹) panic — plan indices and processor IDs never get there.
func EncodeTag(seq int, src, dst graph.ProcessID, schedNanos int64) string {
	if seq < 0 || seq > maxTagField || src < 0 || int(src) > maxTagField ||
		dst < 0 || int(dst) > maxTagField || schedNanos < 0 {
		panic("load: tag field out of range")
	}
	var b [tagV3Len]byte
	copy(b[:4], tagPrefixV3)
	binary.BigEndian.PutUint32(b[4:8], uint32(seq))
	binary.BigEndian.PutUint32(b[8:12], uint32(src))
	binary.BigEndian.PutUint32(b[12:16], uint32(dst))
	binary.BigEndian.PutUint64(b[16:24], uint64(schedNanos))
	// b[24:28] stays zero: no hold accumulated yet.
	return string(b[:])
}

// ParseTag decodes a payload written by EncodeTag; ok is false for
// foreign payloads (untagged traffic sharing the network, or a tag of a
// different version — use TagVersion to tell the two apart). It performs
// no allocation.
func ParseTag(payload string) (seq int, src, dst graph.ProcessID, schedNanos int64, ok bool) {
	if len(payload) != tagV3Len || payload[:4] != tagPrefixV3 {
		return 0, 0, 0, 0, false
	}
	s := binary.BigEndian.Uint32([]byte(payload[4:8]))
	sr := binary.BigEndian.Uint32([]byte(payload[8:12]))
	ds := binary.BigEndian.Uint32([]byte(payload[12:16]))
	sch := binary.BigEndian.Uint64([]byte(payload[16:24]))
	if s > maxTagField || sr > maxTagField || ds > maxTagField || sch > 1<<63-1 {
		return 0, 0, 0, 0, false
	}
	return int(s), graph.ProcessID(sr), graph.ProcessID(ds), int64(sch), true
}

// ParseTagHold reads the accumulated hold time out of a v3 tag, in
// nanoseconds (the slot stores saturating microseconds). ok is false for
// anything that is not a well-formed v3 tag. No allocation.
func ParseTagHold(payload string) (holdNanos int64, ok bool) {
	if len(payload) != tagV3Len || payload[:4] != tagPrefixV3 {
		return 0, false
	}
	us := binary.BigEndian.Uint32([]byte(payload[holdOffset : holdOffset+4]))
	return int64(us) * 1000, true
}

// AddHold folds waitNanos of hold time into a v3 tag's attribution slot,
// returning the rewritten payload; ok is false (payload returned
// unchanged) for non-v3 payloads, so nodes can stamp blindly. The slot
// saturates at its u32 capacity rather than wrapping. One string
// allocation per call — callers invoke it per message at bounded rewrite
// points (R1 acceptance, parked-offer acceptance), never per frame.
func AddHold(payload string, waitNanos int64) (string, bool) {
	if len(payload) != tagV3Len || payload[:4] != tagPrefixV3 {
		return payload, false
	}
	if waitNanos < 0 {
		waitNanos = 0
	}
	var b [tagV3Len]byte
	copy(b[:], payload)
	cur := uint64(binary.BigEndian.Uint32(b[holdOffset : holdOffset+4]))
	next := cur + uint64(waitNanos/1000)
	if next > 1<<32-1 {
		next = 1<<32 - 1
	}
	binary.BigEndian.PutUint32(b[holdOffset:holdOffset+4], uint32(next))
	return string(b[:]), true
}

// TagVersion identifies which tag version a payload carries: 1, 2 or 3
// for the known formats (matched on prefix alone, so a malformed or
// truncated body still reports its claimed version) and 0 for untagged
// traffic. Collectors use it to fail loudly on version-mismatched load
// traffic — the cross-version cluster test pins that behavior.
func TagVersion(payload string) int {
	if len(payload) < 4 || payload[:2] != "lt" || payload[3] != ':' {
		return 0
	}
	switch payload[2] {
	case '1':
		return 1
	case '2':
		return 2
	case '3':
		return 3
	}
	return 0
}

// EncodeTagV2 renders the previous binary tag (no hold slot). It exists
// for the cross-version tests (simulating a pre-v3 binary on a mixed
// cluster) and is not used on any current path.
func EncodeTagV2(seq int, src, dst graph.ProcessID, schedNanos int64) string {
	if seq < 0 || seq > maxTagField || src < 0 || int(src) > maxTagField ||
		dst < 0 || int(dst) > maxTagField || schedNanos < 0 {
		panic("load: tag field out of range")
	}
	var b [tagV2Len]byte
	copy(b[:4], tagPrefixV2)
	binary.BigEndian.PutUint32(b[4:8], uint32(seq))
	binary.BigEndian.PutUint32(b[8:12], uint32(src))
	binary.BigEndian.PutUint32(b[12:16], uint32(dst))
	binary.BigEndian.PutUint64(b[16:24], uint64(schedNanos))
	return string(b[:])
}

// ParseTagV2 decodes the previous binary tag, with the same range checks
// as ParseTag.
func ParseTagV2(payload string) (seq int, src, dst graph.ProcessID, schedNanos int64, ok bool) {
	if len(payload) != tagV2Len || payload[:4] != tagPrefixV2 {
		return 0, 0, 0, 0, false
	}
	s := binary.BigEndian.Uint32([]byte(payload[4:8]))
	sr := binary.BigEndian.Uint32([]byte(payload[8:12]))
	ds := binary.BigEndian.Uint32([]byte(payload[12:16]))
	sch := binary.BigEndian.Uint64([]byte(payload[16:24]))
	if s > maxTagField || sr > maxTagField || ds > maxTagField || sch > 1<<63-1 {
		return 0, 0, 0, 0, false
	}
	return int(s), graph.ProcessID(sr), graph.ProcessID(ds), int64(sch), true
}

// EncodeTagV1 renders the legacy colon-separated text tag. It exists for
// the cross-version tests (simulating an old binary on a mixed cluster)
// and is not used on any current path.
func EncodeTagV1(seq int, src, dst graph.ProcessID, schedNanos int64) string {
	return tagPrefixV1 +
		strconv.Itoa(seq) + ":" +
		strconv.Itoa(int(src)) + ":" +
		strconv.Itoa(int(dst)) + ":" +
		strconv.FormatInt(schedNanos, 10)
}

// ParseTagV1 decodes the legacy text tag. Unlike the pre-v2 parser it
// rejects negative and overflowing seq/src/dst instead of silently
// casting them into graph.ProcessID — a hostile payload like
// "lt1:-1:-7:2:0" is foreign traffic, not a delivery record.
func ParseTagV1(payload string) (seq int, src, dst graph.ProcessID, schedNanos int64, ok bool) {
	rest, found := strings.CutPrefix(payload, tagPrefixV1)
	if !found {
		return 0, 0, 0, 0, false
	}
	parts := strings.Split(rest, ":")
	if len(parts) != 4 {
		return 0, 0, 0, 0, false
	}
	// ParseUint with a 31-bit size refuses signs and overflow in one shot.
	s, err := strconv.ParseUint(parts[0], 10, 31)
	if err != nil {
		return 0, 0, 0, 0, false
	}
	sr, err := strconv.ParseUint(parts[1], 10, 31)
	if err != nil {
		return 0, 0, 0, 0, false
	}
	ds, err := strconv.ParseUint(parts[2], 10, 31)
	if err != nil {
		return 0, 0, 0, 0, false
	}
	sch, err := strconv.ParseInt(parts[3], 10, 64)
	if err != nil || sch < 0 {
		return 0, 0, 0, 0, false
	}
	return int(s), graph.ProcessID(sr), graph.ProcessID(ds), sch, true
}
