package load

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"ssmfp/internal/metrics"
)

// Schema is the load-report format version. Bump it on any field change
// that is not strictly additive; compare refuses mismatched schemas.
const Schema = "ssmfp-load-report/v1"

// LatencySummary is the quantile view of one step's latency histogram,
// in nanoseconds. All of it is volatile (wall-clock measurements).
type LatencySummary struct {
	P50NS  int64   `json:"p50_ns,omitempty"`
	P90NS  int64   `json:"p90_ns,omitempty"`
	P99NS  int64   `json:"p99_ns,omitempty"`
	P999NS int64   `json:"p999_ns,omitempty"`
	MinNS  int64   `json:"min_ns,omitempty"`
	MaxNS  int64   `json:"max_ns,omitempty"`
	MeanNS float64 `json:"mean_ns,omitempty"`
}

// SummarizeHist folds a latency histogram into its quantile view. An
// empty histogram yields the zero summary.
func SummarizeHist(h *metrics.LatencyHist) LatencySummary {
	if h == nil || h.Count() == 0 {
		return LatencySummary{}
	}
	return LatencySummary{
		P50NS:  h.Quantile(0.50),
		P90NS:  h.Quantile(0.90),
		P99NS:  h.Quantile(0.99),
		P999NS: h.Quantile(0.999),
		MinNS:  h.Min(),
		MaxNS:  h.Max(),
		MeanNS: h.Mean(),
	}
}

// Attribution splits the step's end-to-end latency into where the time
// went: hold (source-side R1 queueing plus congested-hop park waits,
// stamped into the payload tag's hold slot by the nodes), deliver
// (destination-side bufR→R6 wait), and wire (the residual — transfer and
// handshake time). Per-message the three sum to the end-to-end latency,
// up to the hold slot's microsecond granularity and the wire clamp at
// zero. Volatile.
type Attribution struct {
	Hold    LatencySummary `json:"hold"`
	Deliver LatencySummary `json:"deliver"`
	Wire    LatencySummary `json:"wire"`
}

// QueueSummary holds the deployment-wide high-water marks of the live
// queue gauges sampled during the step, plus the park counters read from
// the deployment's telemetry registry. Volatile.
type QueueSummary struct {
	PeakInbox   int `json:"peak_inbox,omitempty"`
	PeakPending int `json:"peak_pending,omitempty"`
	PeakBufR    int `json:"peak_bufR,omitempty"`
	PeakBufE    int `json:"peak_bufE,omitempty"`
	PeakWireOut int `json:"peak_wireOut,omitempty"`
	PeakParked  int `json:"peak_parked,omitempty"`
	// ParkEvents counts offers parked at congested hops during the step
	// (0 when the network exposes no telemetry registry).
	ParkEvents int64 `json:"park_events,omitempty"`
}

// StepReport is one load step's outcome. The deterministic section
// (step, offered rate, message counts, verdict, violations) is a pure
// function of the configuration on a healthy deployment; everything
// timed is volatile and zeroed by Normalize.
type StepReport struct {
	Step        int      `json:"step"`
	OfferedRate float64  `json:"offered_rate,omitempty"` // msgs/s; 0 for closed loop
	Messages    int      `json:"messages"`
	Sent        int      `json:"sent"`
	Delivered   int      `json:"delivered"`
	ExactlyOnce bool     `json:"exactly_once"`
	Violations  []string `json:"violations,omitempty"`

	// Volatile wall-clock measurements.
	InjectNS     int64                `json:"inject_ns,omitempty"`
	SpanNS       int64                `json:"span_ns,omitempty"`
	AchievedRate float64              `json:"achieved_rate,omitempty"` // delivered / span
	GoodputRatio float64              `json:"goodput_ratio,omitempty"` // achieved / offered
	Latency      LatencySummary       `json:"latency"`
	Attribution  *Attribution         `json:"attribution,omitempty"`
	Hist         *metrics.LatencyHist `json:"hist,omitempty"`
	Queues       QueueSummary         `json:"queues"`
}

// buildStepReport folds a finished step into its report.
func buildStepReport(cfg Config, plan []planEntry, col *Collector, sent int,
	exactlyOnce bool, violations []string, injectNS, spanNS int64, peaks *queuePeaks,
	parkEvents int64) StepReport {
	h := col.Hist()
	rep := StepReport{
		Step:        cfg.Step,
		Messages:    len(plan),
		Sent:        sent,
		Delivered:   col.Delivered(),
		ExactlyOnce: exactlyOnce,
		Violations:  violations,
		InjectNS:    injectNS,
		SpanNS:      spanNS,
		Latency:     SummarizeHist(h),
		Queues: QueueSummary{
			PeakInbox:   peaks.inbox,
			PeakPending: peaks.pending,
			PeakBufR:    peaks.bufR,
			PeakBufE:    peaks.bufE,
			PeakWireOut: peaks.wireOut,
			PeakParked:  peaks.parked,
			ParkEvents:  parkEvents,
		},
	}
	if hold, deliver, wire := col.AttributionHists(); hold.Count() > 0 {
		rep.Attribution = &Attribution{
			Hold:    SummarizeHist(hold),
			Deliver: SummarizeHist(deliver),
			Wire:    SummarizeHist(wire),
		}
	}
	if cfg.Driver == DriverOpen {
		rep.OfferedRate = cfg.Rate
	}
	if spanNS > 0 {
		rep.AchievedRate = float64(rep.Delivered) / (float64(spanNS) / float64(time.Second))
	}
	if rep.OfferedRate > 0 {
		rep.GoodputRatio = rep.AchievedRate / rep.OfferedRate
	}
	if h.Count() > 0 {
		hc := *h // snapshot; the collector is detached by now
		rep.Hist = &hc
	}
	return rep
}

// RunInfo describes the host and wall-clock cost of one load run. All of
// it is volatile.
type RunInfo struct {
	WallNS    int64  `json:"wall_ns,omitempty"`
	NumCPU    int    `json:"num_cpu,omitempty"`
	GoVersion string `json:"go_version,omitempty"`
	StartedAt string `json:"started_at,omitempty"`
}

// NewRunInfo captures the current host for a report's Run section.
func NewRunInfo(start time.Time) RunInfo {
	return RunInfo{
		WallNS:    time.Since(start).Nanoseconds(),
		NumCPU:    runtime.NumCPU(),
		GoVersion: runtime.Version(),
		StartedAt: start.UTC().Format(time.RFC3339),
	}
}

// Report is the load subsystem's machine-readable output: configuration,
// one StepReport per rate step (single runs have exactly one), and the
// sweep's knee summary. Determinism contract: after Normalize, the report
// is a pure function of (topology, configuration, seed) on a healthy
// deployment — the rate ladder is fixed up front, never adapted to
// measurements, which is what keeps the step list deterministic.
type Report struct {
	Schema      string  `json:"schema"`
	Topology    string  `json:"topology"`
	Driver      string  `json:"driver"`
	Arrival     string  `json:"arrival,omitempty"`
	Outstanding int     `json:"outstanding,omitempty"`
	Seed        int64   `json:"seed"`
	Messages    int     `json:"messages"` // per step
	Sweep       bool    `json:"sweep,omitempty"`
	KneeRatio   float64 `json:"knee_ratio,omitempty"`

	Steps       []StepReport `json:"steps"`
	ExactlyOnce bool         `json:"exactly_once"` // AND over steps

	// Knee summary (sweeps only). Which step is the knee depends on
	// measured throughput, so all of it is volatile.
	Saturated   bool    `json:"saturated,omitempty"`
	KneeStep    int     `json:"knee_step,omitempty"`
	KneeRate    float64 `json:"knee_rate,omitempty"`    // offered rate at the knee
	MaxAchieved float64 `json:"max_achieved,omitempty"` // best measured throughput

	Run RunInfo `json:"run"`
}

// NewReport assembles a report from finished steps. topology is a human-
// readable deployment label ("grid-4x4"), recorded verbatim.
func NewReport(topology string, cfg Config, sweep bool, steps []StepReport) *Report {
	cfg = cfg.withDefaults()
	r := &Report{
		Schema:      Schema,
		Topology:    topology,
		Driver:      cfg.Driver,
		Seed:        cfg.Seed,
		Messages:    cfg.Messages,
		Sweep:       sweep,
		Steps:       steps,
		ExactlyOnce: true,
	}
	if cfg.Driver == DriverOpen {
		r.Arrival = cfg.Arrival
	} else {
		r.Outstanding = cfg.Outstanding
	}
	for _, s := range steps {
		if !s.ExactlyOnce {
			r.ExactlyOnce = false
		}
	}
	return r
}

// Normalize zeroes the volatile fields (latency, throughput, knee, queue
// gauges, host info) in place and returns the report. Two normalized
// reports of the same configuration on healthy deployments marshal to
// identical bytes.
func (r *Report) Normalize() *Report {
	r.Run = RunInfo{}
	r.Saturated = false
	r.KneeStep = 0
	r.KneeRate = 0
	r.MaxAchieved = 0
	for i := range r.Steps {
		s := &r.Steps[i]
		s.InjectNS = 0
		s.SpanNS = 0
		s.AchievedRate = 0
		s.GoodputRatio = 0
		s.Latency = LatencySummary{}
		s.Attribution = nil
		s.Hist = nil
		s.Queues = QueueSummary{}
	}
	return r
}

// Marshal renders the report as indented JSON with a trailing newline.
func (r *Report) Marshal() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// WriteFile writes the report to path.
func (r *Report) WriteFile(path string) error {
	b, err := r.Marshal()
	if err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

// Load reads a report from path and validates its schema.
func Load(path string) (*Report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("load: %s: %w", path, err)
	}
	if r.Schema != Schema {
		return nil, fmt.Errorf("load: %s: schema %q, want %q", path, r.Schema, Schema)
	}
	return &r, nil
}
