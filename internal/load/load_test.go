package load_test

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"ssmfp/internal/graph"
	"ssmfp/internal/load"
	"ssmfp/internal/msgpass"
	"ssmfp/internal/obs"
)

// newNet builds and starts a msgpass deployment wired to a fresh hook.
func newNet(g *graph.Graph, opts msgpass.Options) (*msgpass.Network, *load.Hook) {
	hook := &load.Hook{}
	opts.OnDeliver = hook.OnDeliver
	nw := msgpass.New(g, opts)
	nw.Start()
	return nw, hook
}

func TestTagRoundTrip(t *testing.T) {
	tag := load.EncodeTag(42, 3, 7, 1234567890123)
	seq, src, dst, sched, ok := load.ParseTag(tag)
	if !ok || seq != 42 || src != 3 || dst != 7 || sched != 1234567890123 {
		t.Fatalf("round trip gave (%d,%d,%d,%d,%v)", seq, src, dst, sched, ok)
	}
	for _, bad := range []string{"", "m-1-2", "lt1:x:1:2:3", "lt1:1:2:3", "lt2:1:2:3:4"} {
		if _, _, _, _, ok := load.ParseTag(bad); ok {
			t.Errorf("ParseTag(%q) accepted a foreign payload", bad)
		}
	}
}

func TestOpenLoopExactlyOnce(t *testing.T) {
	g := graph.Grid(3, 3)
	nw, hook := newNet(g, msgpass.Options{Seed: 11})
	defer nw.Stop()
	rep, err := load.Run(nw, g, hook, load.Config{
		Driver: load.DriverOpen, Arrival: load.ArrivalPoisson,
		Rate: 2000, Messages: 200, Seed: 11, DrainTimeout: 60 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.ExactlyOnce {
		t.Fatalf("exactly-once violated: %v", rep.Violations)
	}
	if rep.Sent != 200 || rep.Delivered != 200 {
		t.Fatalf("sent %d delivered %d, want 200/200", rep.Sent, rep.Delivered)
	}
	if rep.Hist == nil || rep.Hist.Count() != 200 {
		t.Fatalf("histogram incomplete: %+v", rep.Hist)
	}
	if rep.Latency.P50NS <= 0 || rep.Latency.P99NS < rep.Latency.P50NS {
		t.Fatalf("implausible quantiles: %+v", rep.Latency)
	}
}

func TestClosedLoopExactlyOnce(t *testing.T) {
	g := graph.Grid(3, 3)
	nw, hook := newNet(g, msgpass.Options{Seed: 12})
	defer nw.Stop()
	rep, err := load.Run(nw, g, hook, load.Config{
		Driver: load.DriverClosed, Outstanding: 2,
		Messages: 150, Seed: 12, DrainTimeout: 60 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.ExactlyOnce {
		t.Fatalf("exactly-once violated: %v", rep.Violations)
	}
	if rep.Sent != 150 || rep.Delivered != 150 {
		t.Fatalf("sent %d delivered %d, want 150/150", rep.Sent, rep.Delivered)
	}
	if rep.OfferedRate != 0 {
		t.Fatalf("closed loop must not claim an offered rate, got %v", rep.OfferedRate)
	}
}

func TestLoadEventsOnBus(t *testing.T) {
	g := graph.Grid(2, 2)
	bus := obs.NewBus()
	var mu sync.Mutex
	var ticks, dones int
	bus.Subscribe(func(ev obs.Event) {
		mu.Lock()
		defer mu.Unlock()
		switch ev.Kind {
		case obs.KindLoadTick:
			ticks++
		case obs.KindLoadDone:
			dones++
			if ev.Rule != "ok" {
				t.Errorf("load-done verdict %q, want ok", ev.Rule)
			}
		}
	})
	nw, hook := newNet(g, msgpass.Options{Seed: 13})
	defer nw.Stop()
	_, err := load.Run(nw, g, hook, load.Config{
		Rate: 500, Messages: 100, Seed: 13,
		TickEvery: 20 * time.Millisecond, Bus: bus, DrainTimeout: 60 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if ticks == 0 {
		t.Error("no load-tick events for a ~200ms run with a 20ms beat")
	}
	if dones != 1 {
		t.Errorf("%d load-done events, want 1", dones)
	}
}

// sweepOnce runs a small fixed ladder on a 3x3 grid.
func sweepOnce(t *testing.T) *load.Report {
	t.Helper()
	g := graph.Grid(3, 3)
	factory := func(step int) (load.Network, *load.Hook, func(), error) {
		nw, hook := newNet(g, msgpass.Options{Seed: 21 + int64(step)})
		return nw, hook, func() { nw.Stop() }, nil
	}
	rep, err := load.Sweep("grid-3x3", g, factory, load.SweepConfig{
		Base:  load.Config{Messages: 120, Seed: 21, DrainTimeout: 60 * time.Second},
		Start: 500, Factor: 4, Steps: 3, KneeRatio: 0.9,
	})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestSweepKneeAndDeterminism(t *testing.T) {
	rep := sweepOnce(t)
	if rep.Schema != load.Schema {
		t.Fatalf("schema %q", rep.Schema)
	}
	if !rep.ExactlyOnce {
		t.Fatalf("sweep violated exactly-once: %+v", rep.Steps)
	}
	if len(rep.Steps) != 3 {
		t.Fatalf("%d steps, want 3", len(rep.Steps))
	}
	for i, s := range rep.Steps {
		if i > 0 && s.OfferedRate <= rep.Steps[i-1].OfferedRate {
			t.Fatalf("ladder not increasing at step %d", i)
		}
		if s.Step != i {
			t.Fatalf("step %d labeled %d", i, s.Step)
		}
		l := s.Latency
		if l.P50NS > l.P90NS || l.P90NS > l.P99NS || l.P99NS > l.P999NS {
			t.Fatalf("step %d quantiles out of order: %+v", i, l)
		}
	}
	// Latency under a heavier offered rate cannot beat the lightest
	// rung's median (weak cross-step monotonicity; the strong form is
	// host-timing dependent).
	last := rep.Steps[len(rep.Steps)-1].Latency
	if last.P99NS < rep.Steps[0].Latency.P50NS {
		t.Fatalf("top-rung p99 %d below first-rung p50 %d", last.P99NS, rep.Steps[0].Latency.P50NS)
	}
	if rep.MaxAchieved <= 0 {
		t.Fatal("no measured throughput")
	}
	// The first rung (500 msg/s on an idle 3x3 grid) must be under the
	// knee; whether the top rung saturates is host-dependent.
	if rep.KneeRate <= 0 {
		t.Fatalf("no knee found: %+v", rep)
	}

	// Determinism: a second sweep of the same configuration must match
	// byte-for-byte once volatile fields are normalized.
	rep2 := sweepOnce(t)
	b1, err := rep.Normalize().Marshal()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := rep2.Normalize().Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("normalized reports differ:\n%s\n---\n%s", b1, b2)
	}
}

// TestBandwidthCapClampsGoodput drives sustained open-loop traffic far
// above what a bandwidth-capped wire can carry and checks that the
// protocol degrades by queueing — throughput clamps, latency grows —
// while exactly-once still holds.
func TestBandwidthCapClampsGoodput(t *testing.T) {
	if testing.Short() {
		t.Skip("sustained-traffic test skipped in -short mode")
	}
	g := graph.Line(3)
	// Every frame — offers, acks, gossip, retransmissions — shares the
	// capped line, so the cap must leave the control plane breathing room:
	// this topology moves ~5000 msg/s uncapped, ~700 msg/s at 256 KiB/s,
	// and collapses into retransmission storms much below that.
	nw, hook := newNet(g, msgpass.Options{Seed: 31, BandwidthBps: 256 << 10})
	defer nw.Stop()
	rep, err := load.Run(nw, g, hook, load.Config{
		Rate: 5000, Messages: 300, Seed: 31,
		Sources:      []graph.ProcessID{0},
		DrainTimeout: 120 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.ExactlyOnce {
		t.Fatalf("exactly-once violated under bandwidth cap: %v", rep.Violations)
	}
	if rep.GoodputRatio > 0.5 {
		t.Fatalf("goodput ratio %.2f — the cap did not bind", rep.GoodputRatio)
	}
	// Scheduled-time latency accounting: the wire backlog must show up in
	// the tail, an order of magnitude above the ~2ms uncapped p99.
	if rep.Latency.P99NS < (20 * time.Millisecond).Nanoseconds() {
		t.Fatalf("p99 %v too small for a saturated wire", time.Duration(rep.Latency.P99NS))
	}
}

func TestCompareGates(t *testing.T) {
	mk := func() *load.Report {
		return &load.Report{
			Schema: load.Schema, Topology: "grid-3x3", Driver: load.DriverOpen,
			Seed: 1, Sweep: true, ExactlyOnce: true,
			KneeRate: 8000, MaxAchieved: 9000,
			Steps: []load.StepReport{
				{Step: 0, OfferedRate: 1000, Sent: 100, Delivered: 100, ExactlyOnce: true,
					AchievedRate: 1000, Latency: load.LatencySummary{P99NS: 2_000_000}},
				{Step: 1, OfferedRate: 8000, Sent: 100, Delivered: 100, ExactlyOnce: true,
					AchievedRate: 7800, Latency: load.LatencySummary{P99NS: 5_000_000}},
			},
		}
	}
	base := mk()
	if res := load.Compare(base, mk(), load.Thresholds{}); !res.Clean() {
		t.Fatalf("identical reports flagged: %+v", res)
	}
	// Exactly-once flip always gates.
	bad := mk()
	bad.ExactlyOnce = false
	bad.Steps[1].ExactlyOnce = false
	if res := load.Compare(base, bad, load.Thresholds{}); res.Clean() || len(res.Broken) == 0 {
		t.Fatalf("exactly-once flip not gated: %+v", res)
	}
	// Large p99 regression gates; small one is noise.
	slow := mk()
	slow.Steps[1].Latency.P99NS = 20_000_000
	if res := load.Compare(base, slow, load.Thresholds{}); res.Clean() {
		t.Fatal("4x p99 growth not gated")
	}
	noisy := mk()
	noisy.Steps[1].Latency.P99NS = 5_100_000
	if res := load.Compare(base, noisy, load.Thresholds{}); !res.Clean() {
		t.Fatalf("2%% p99 growth gated: %+v", res)
	}
	// Knee collapse gates.
	kneeless := mk()
	kneeless.KneeRate = 1000
	if res := load.Compare(base, kneeless, load.Thresholds{}); res.Clean() {
		t.Fatal("knee-rate collapse not gated")
	}
	// Missing steps gate.
	short := mk()
	short.Steps = short.Steps[:1]
	if res := load.Compare(base, short, load.Thresholds{}); res.Clean() || len(res.Broken) == 0 {
		t.Fatalf("missing step not gated: %+v", res)
	}
}

func TestReportFileRoundTrip(t *testing.T) {
	rep := &load.Report{
		Schema: load.Schema, Topology: "line-3", Driver: load.DriverOpen,
		Arrival: load.ArrivalPoisson, Seed: 5, Messages: 10, ExactlyOnce: true,
		Steps: []load.StepReport{{Step: 0, OfferedRate: 100, Sent: 10, Delivered: 10, ExactlyOnce: true}},
	}
	path := t.TempDir() + "/rep.json"
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := load.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Topology != rep.Topology || len(back.Steps) != 1 || back.Steps[0].Sent != 10 {
		t.Fatalf("round trip mismatch: %+v", back)
	}
	// Wrong schema refuses to load.
	rep.Schema = "ssmfp-load-report/v0"
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := load.Load(path); err == nil {
		t.Fatal("loaded a report with a foreign schema")
	}
}

// TestAttributionInReport: with HoldStamp wired, the step report carries
// a latency attribution whose components are consistent with the
// end-to-end histogram — per message hold+wire+deliver == e2e (hold is
// whole microseconds and wire clamps at zero, so means match within that
// granularity), and the telemetry-backed queue fields are populated.
func TestAttributionInReport(t *testing.T) {
	g := graph.Grid(3, 3)
	nw, hook := newNet(g, msgpass.Options{Seed: 13, HoldStamp: load.AddHold})
	defer nw.Stop()
	rep, err := load.Run(nw, g, hook, load.Config{
		Driver: load.DriverOpen, Arrival: load.ArrivalPoisson,
		Rate: 3000, Messages: 300, Seed: 13, DrainTimeout: 60 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.ExactlyOnce {
		t.Fatalf("exactly-once violated: %v", rep.Violations)
	}
	a := rep.Attribution
	if a == nil {
		t.Fatal("report has no attribution")
	}
	if a.Deliver.MeanNS <= 0 || a.Wire.MeanNS <= 0 {
		t.Fatalf("degenerate attribution: %+v", a)
	}
	sum := a.Hold.MeanNS + a.Wire.MeanNS + a.Deliver.MeanNS
	e2e := rep.Latency.MeanNS
	// The wire clamp only ever makes sum >= e2e; the hold slot's µs
	// granularity can shave up to 1µs per stamp off sum. Allow 5%.
	if diff := sum - e2e; diff < -0.05*e2e || diff > 0.05*e2e {
		t.Fatalf("attribution sum %.0fns vs e2e mean %.0fns", sum, e2e)
	}

	// Normalize drops the volatile attribution and queue sections.
	r := load.NewReport("grid-3x3", load.Config{Seed: 13}, false, []load.StepReport{rep})
	r.Normalize()
	if r.Steps[0].Attribution != nil || r.Steps[0].Queues != (load.QueueSummary{}) {
		t.Fatalf("Normalize left volatile telemetry: %+v", r.Steps[0])
	}
}
