package load

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ssmfp/internal/graph"
	"ssmfp/internal/metrics"
	"ssmfp/internal/msgpass"
)

// maxViolationDetails caps the per-violation detail strings kept in a
// report; beyond it only counters grow.
const maxViolationDetails = 8

// expectRec is the collector's per-plan-entry state.
type expectRec struct {
	src, dst graph.ProcessID
	sent     bool
	seen     int
}

// Collector folds the delivery stream of one load step into latency and
// exactly-once accounting. It is pre-seeded with the full injection plan,
// marks entries as the driver sends them, and continuously cross-checks
// every tagged delivery: unknown sequence numbers, deliveries at the
// wrong destination, duplicates, deliveries of never-sent entries, and
// tags of a foreign codec version are all violations the moment they
// happen, not at the end of the run.
type Collector struct {
	mu        sync.Mutex
	expect    []expectRec
	delivered atomic.Int64
	warm      atomic.Int64
	dupes     int
	misrouted int
	unsent    int
	badver    int
	details   []string
	hist      metrics.LatencyHist

	// Latency attribution: every first delivery's end-to-end latency is
	// split into hold (node-stamped queued + park wait carried in the v3
	// tag's hold slot), deliver (destination-side bufR→R6 wait, carried on
	// the Delivery struct because the destination never rewrites the
	// payload), and wire (the residual: transfer + handshake time, clamped
	// at zero against clock skew between the stamping nodes).
	holdHist    metrics.LatencyHist
	deliverHist metrics.LatencyHist
	wireHist    metrics.LatencyHist

	// progress is the drain wake-up: observe pulses it (non-blocking,
	// capacity 1) whenever a counter the driver may be waiting on moves,
	// so Run's drain and warmUp block on deliveries instead of polling.
	progress chan struct{}

	// onComplete, when non-nil, is called once per first delivery with the
	// source of the completed message — the closed-loop driver's token
	// refill. Called outside the collector lock, from the destination's
	// node goroutine.
	onComplete func(src graph.ProcessID)
}

// newCollector seeds a collector with the plan's (src, dst) pairs.
func newCollector(plan []planEntry) *Collector {
	c := &Collector{
		expect:   make([]expectRec, len(plan)),
		progress: make(chan struct{}, 1),
	}
	for i, e := range plan {
		c.expect[i] = expectRec{src: e.Src, dst: e.Dst}
	}
	return c
}

// markSent records that plan entry seq is about to be injected. It must
// run before the Send so a fast delivery can never race the bookkeeping.
func (c *Collector) markSent(seq int) {
	c.mu.Lock()
	c.expect[seq].sent = true
	c.mu.Unlock()
}

// unmarkSent rolls markSent back after a failed Send.
func (c *Collector) unmarkSent(seq int) {
	c.mu.Lock()
	c.expect[seq].sent = false
	c.mu.Unlock()
}

// signal pulses the progress channel; capacity 1 and a non-blocking send
// make it a level trigger, never a queue.
func (c *Collector) signal() {
	select {
	case c.progress <- struct{}{}:
	default:
	}
}

// waitUntil blocks until cond holds or the deadline passes, waking on
// each progress pulse. The pulse is buffered, so a delivery landing
// between the cond check and the receive is never lost; the short timer
// cap only bounds deadline resolution, it is not the wake mechanism.
func (c *Collector) waitUntil(cond func() bool, deadline time.Time) bool {
	for {
		if cond() {
			return true
		}
		d := time.Until(deadline)
		if d <= 0 {
			return cond()
		}
		if d > 50*time.Millisecond {
			d = 50 * time.Millisecond
		}
		t := time.NewTimer(d)
		select {
		case <-c.progress:
		case <-t.C:
		}
		t.Stop()
	}
}

// observe folds one delivery. Invalid messages (planted junk from
// corrupted starts) and untagged payloads are not load traffic and are
// ignored; tags of a recognizable but foreign version are a violation —
// a mixed-version cluster must fail its verdict loudly, not mis-parse.
func (c *Collector) observe(d msgpass.Delivery) {
	if !d.Msg.Valid {
		return
	}
	if strings.HasPrefix(d.Msg.Payload, warmupPrefix) {
		c.warm.Add(1)
		c.signal()
		return
	}
	seq, src, dst, sched, ok := ParseTag(d.Msg.Payload)
	if !ok {
		if v := TagVersion(d.Msg.Payload); v != 0 && v != TagVersionCurrent {
			c.mu.Lock()
			c.badver++
			c.detail("tag version %d delivery at %d (this build speaks v%d)", v, d.At, TagVersionCurrent)
			c.mu.Unlock()
		}
		return
	}
	var complete func(graph.ProcessID)
	c.mu.Lock()
	switch {
	case seq < 0 || seq >= len(c.expect):
		c.misrouted++
		c.detail("delivery of unknown seq %d at %d", seq, d.At)
	case !c.expect[seq].sent:
		c.unsent++
		c.detail("delivery of never-sent seq %d at %d", seq, d.At)
	default:
		rec := &c.expect[seq]
		if d.At != rec.dst || dst != rec.dst || src != rec.src {
			c.misrouted++
			c.detail("seq %d delivered at %d, want %d", seq, d.At, rec.dst)
		}
		rec.seen++
		if rec.seen > 1 {
			c.dupes++
			c.detail("seq %d delivered %d times", seq, rec.seen)
		} else {
			e2e := d.Time.UnixNano() - sched
			c.hist.Add(e2e)
			hold, _ := ParseTagHold(d.Msg.Payload)
			deliver := d.DeliverWaitNS
			wire := e2e - hold - deliver
			if wire < 0 {
				wire = 0
			}
			c.holdHist.Add(hold)
			c.deliverHist.Add(deliver)
			c.wireHist.Add(wire)
			c.delivered.Add(1)
			complete = c.onComplete
		}
	}
	c.mu.Unlock()
	c.signal()
	if complete != nil {
		complete(src)
	}
}

func (c *Collector) detail(format string, args ...any) {
	if len(c.details) < maxViolationDetails {
		c.details = append(c.details, fmt.Sprintf(format, args...))
	}
}

// Delivered returns the number of distinct plan entries delivered so far;
// safe without the lock (the progress ticker reads it concurrently).
func (c *Collector) Delivered() int { return int(c.delivered.Load()) }

// finish closes the books after the drain window: it counts entries that
// were sent but never delivered and returns the step's verdict. sent is
// the driver's count of successful Sends.
func (c *Collector) finish(sent int) (exactlyOnce bool, violations []string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	missing := 0
	for seq := range c.expect {
		if c.expect[seq].sent && c.expect[seq].seen == 0 {
			missing++
			c.detail("seq %d sent but never delivered", seq)
		}
	}
	total := c.dupes + c.misrouted + c.unsent + c.badver + missing
	if total > len(c.details) {
		c.details = append(c.details, fmt.Sprintf("... and %d more violations", total-len(c.details)))
	}
	return total == 0 && c.Delivered() == sent, c.details
}

// Hist returns the latency histogram; call only after the run is drained
// and the hook detached (the returned pointer is not further synchronized).
func (c *Collector) Hist() *metrics.LatencyHist { return &c.hist }

// AttributionHists returns the hold/deliver/wire component histograms;
// same synchronization contract as Hist.
func (c *Collector) AttributionHists() (hold, deliver, wire *metrics.LatencyHist) {
	return &c.holdHist, &c.deliverHist, &c.wireHist
}

// Hook is the stable OnDeliver callback wired once into a network's
// options; the collector behind it swaps per load step. A detached hook
// costs one atomic load per delivery.
type Hook struct {
	c atomic.Pointer[Collector]
}

// OnDeliver routes one delivery to the attached collector, if any. Wire
// this method into msgpass.Options.OnDeliver.
func (h *Hook) OnDeliver(d msgpass.Delivery) {
	if c := h.c.Load(); c != nil {
		c.observe(d)
	}
}

// Attach directs subsequent deliveries to c.
func (h *Hook) Attach(c *Collector) { h.c.Store(c) }

// Detach stops observing; in-flight observe calls may still complete.
func (h *Hook) Detach() { h.c.Store(nil) }
