package load

import (
	"testing"
	"time"

	"ssmfp/internal/msgpass"
)

// TestDrainWakesPromptlyOnDelivery pins the event-driven drain contract
// of satellite work on the busy-poll removal: waitUntil must return on
// the delivery's progress pulse, not on the next poll interval or the
// 50ms deadline-resolution timer. The delivery lands ~5ms in; returning
// well before the first 50ms timer tick proves the pulse did the waking.
func TestDrainWakesPromptlyOnDelivery(t *testing.T) {
	plan := []planEntry{{Src: 0, Dst: 1}}
	col := newCollector(plan)
	col.markSent(0)

	start := time.Now()
	go func() {
		time.Sleep(5 * time.Millisecond)
		col.observe(msgpass.Delivery{
			Msg: msgpass.Message{Payload: EncodeTag(0, 0, 1, start.UnixNano()), Src: 0, Dest: 1, Valid: true},
			At:  1, Time: time.Now(),
		})
	}()
	deadline := start.Add(10 * time.Second)
	if !col.waitUntil(func() bool { return col.Delivered() >= 1 }, deadline) {
		t.Fatal("waitUntil gave up before the delivery")
	}
	if elapsed := time.Since(start); elapsed >= 45*time.Millisecond {
		t.Fatalf("drain woke after %v — the delivery pulse at ~5ms should have woken it "+
			"before the 50ms fallback timer", elapsed)
	}
}

// TestWaitUntilDeadline pins the timeout half of the contract: a condition
// that never becomes true returns false once the deadline passes.
func TestWaitUntilDeadline(t *testing.T) {
	col := newCollector([]planEntry{{Src: 0, Dst: 1}})
	start := time.Now()
	if col.waitUntil(func() bool { return false }, start.Add(60*time.Millisecond)) {
		t.Fatal("waitUntil reported success for an impossible condition")
	}
	if elapsed := time.Since(start); elapsed < 55*time.Millisecond {
		t.Fatalf("waitUntil gave up after %v, before the deadline", elapsed)
	}
}

// TestWarmupDeliveryPulsesProgress holds the warmup path to the same
// event-driven discipline as the measured drain.
func TestWarmupDeliveryPulsesProgress(t *testing.T) {
	col := newCollector(nil)
	start := time.Now()
	go func() {
		time.Sleep(5 * time.Millisecond)
		col.observe(msgpass.Delivery{
			Msg: msgpass.Message{Payload: warmupPrefix + "w0", Valid: true},
			At:  0, Time: time.Now(),
		})
	}()
	if !col.waitUntil(func() bool { return col.warm.Load() >= 1 }, start.Add(10*time.Second)) {
		t.Fatal("warmup wait gave up")
	}
	if elapsed := time.Since(start); elapsed >= 45*time.Millisecond {
		t.Fatalf("warmup wait woke after %v, want the ~5ms pulse", elapsed)
	}
}

// TestCollectorFlagsForeignTagVersion pins the loud-failure contract for
// mixed-version deployments: a delivery carrying a recognizable tag of
// another version is a verdict-breaking violation, while untagged traffic
// stays invisible.
func TestCollectorFlagsForeignTagVersion(t *testing.T) {
	col := newCollector([]planEntry{{Src: 0, Dst: 1}})
	col.markSent(0)
	deliver := func(payload string) {
		col.observe(msgpass.Delivery{
			Msg: msgpass.Message{Payload: payload, Src: 0, Dest: 1, Valid: true},
			At:  1, Time: time.Now(),
		})
	}
	deliver("unrelated traffic")                       // ignored
	deliver(EncodeTagV1(0, 0, 1, 1))                   // old binary on the cluster: violation
	deliver(EncodeTagV2(1, 0, 1, 1))                   // previous binary format: also a violation
	deliver(EncodeTag(0, 0, 1, time.Now().UnixNano())) // the real delivery
	ok, violations := col.finish(1)
	if ok {
		t.Fatalf("verdict passed despite foreign-tagged deliveries: %v", violations)
	}
	found, foundV2 := false, false
	for _, v := range violations {
		if v == "tag version 1 delivery at 1 (this build speaks v3)" {
			found = true
		}
		if v == "tag version 2 delivery at 1 (this build speaks v3)" {
			foundV2 = true
		}
	}
	if !foundV2 {
		t.Fatalf("no v2-mismatch violation recorded: %v", violations)
	}
	if !found {
		t.Fatalf("no version-mismatch violation recorded: %v", violations)
	}
}
