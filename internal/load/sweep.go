package load

import (
	"fmt"
	"time"

	"ssmfp/internal/graph"
)

// SweepConfig drives a saturation sweep: the open-loop driver is run once
// per rung of a fixed geometric rate ladder, each rung on a freshly built
// deployment so a saturated step's backlog cannot poison the next. The
// ladder never adapts to measurements — determinism of the step list is
// what makes sweep reports comparable across runs.
type SweepConfig struct {
	// Base configures each step; Rate and Step are overwritten per rung,
	// and Driver must be open-loop (the default).
	Base Config
	// Start is the first rung's offered rate in messages/second.
	// Default 100.
	Start float64
	// Factor multiplies the rate between rungs. Default 2.
	Factor float64
	// Steps is the number of rungs. Default 6.
	Steps int
	// KneeRatio is the goodput threshold defining saturation: the knee is
	// the highest rung whose achieved/offered ratio still meets it.
	// Default 0.9.
	KneeRatio float64
}

func (sc SweepConfig) withDefaults() SweepConfig {
	if sc.Start <= 0 {
		sc.Start = 100
	}
	if sc.Factor <= 1 {
		sc.Factor = 2
	}
	if sc.Steps <= 0 {
		sc.Steps = 6
	}
	if sc.KneeRatio <= 0 || sc.KneeRatio > 1 {
		sc.KneeRatio = 0.9
	}
	return sc
}

// Rates returns the full ladder, a pure function of the configuration.
func (sc SweepConfig) Rates() []float64 {
	sc = sc.withDefaults()
	rates := make([]float64, sc.Steps)
	r := sc.Start
	for i := range rates {
		rates[i] = r
		r *= sc.Factor
	}
	return rates
}

// Sweep runs the ladder on topology g. factory builds a fresh deployment
// for rung i and returns the network, the hook its OnDeliver is wired to,
// and a teardown. topology is the report's human-readable label. The
// returned error covers setup problems only; a failed verdict is
// reported, not returned.
func Sweep(topology string, g *graph.Graph, factory func(step int) (Network, *Hook, func(), error), sc SweepConfig) (*Report, error) {
	sc = sc.withDefaults()
	if sc.Base.Driver == DriverClosed {
		return nil, fmt.Errorf("load: sweep needs the open-loop driver")
	}
	start := time.Now()
	var steps []StepReport
	for i, rate := range sc.Rates() {
		nw, hook, closeFn, err := factory(i)
		if err != nil {
			return nil, fmt.Errorf("load: building deployment for step %d: %w", i, err)
		}
		cfg := sc.Base
		cfg.Rate = rate
		cfg.Step = i
		rep, err := Run(nw, g, hook, cfg)
		closeFn()
		if err != nil {
			return nil, fmt.Errorf("load: step %d: %w", i, err)
		}
		steps = append(steps, rep)
	}
	r := NewReport(topology, sc.Base, true, steps)
	r.KneeRatio = sc.KneeRatio
	detectKnee(r, sc.KneeRatio)
	r.Run = NewRunInfo(start)
	return r, nil
}

// detectKnee fills the report's knee summary from the measured rates: the
// knee is the highest step whose goodput ratio meets kneeRatio, and the
// sweep saturated if any step fell below it.
func detectKnee(r *Report, kneeRatio float64) {
	r.KneeStep = 0
	for i, s := range r.Steps {
		if s.AchievedRate > r.MaxAchieved {
			r.MaxAchieved = s.AchievedRate
		}
		if s.GoodputRatio >= kneeRatio {
			r.KneeStep = i
			r.KneeRate = s.OfferedRate
		} else {
			r.Saturated = true
		}
	}
}
