package sim

import (
	"fmt"
	"strconv"

	"ssmfp/internal/metrics"
)

// CellMeasure collects the paper-facing quantities of one experiment cell
// in machine-readable form: step/round/guard-evaluation costs plus the
// delivery accounting behind Propositions 4-7. All fields are
// deterministic for a given (cell, seed) — wall-clock and allocation
// numbers live in the campaign report, not here.
type CellMeasure struct {
	Steps             int   `json:"steps,omitempty"`
	Rounds            int   `json:"rounds,omitempty"`
	GuardEvals        int64 `json:"guard_evals,omitempty"`
	Generated         int   `json:"generated,omitempty"`
	DeliveredValid    int   `json:"delivered_valid,omitempty"`
	DeliveredInvalid  int   `json:"delivered_invalid,omitempty"`
	MaxInvalidPerDest int   `json:"max_invalid_per_dest,omitempty"`
	// InvalidBound is the 2n reference of Proposition 4 (set by E-P4).
	InvalidBound int `json:"invalid_bound,omitempty"`
	// DelayRounds and MaxWaitingRounds are the Proposition 6 quantities
	// (set by E-P6); MaxLatencyRounds is the Proposition 5 quantity.
	DelayRounds      int `json:"delay_rounds,omitempty"`
	MaxWaitingRounds int `json:"max_waiting_rounds,omitempty"`
	MaxLatencyRounds int `json:"max_latency_rounds,omitempty"`
	// Extra carries experiment-specific scalars (amortized cost, overhead
	// ratio, caterpillar counts, ...). JSON maps marshal with sorted keys,
	// so reports containing Extra stay byte-comparable.
	Extra map[string]float64 `json:"extra,omitempty"`
}

// measureOf lifts a scenario Result into the cell measurement schema.
func measureOf(r Result) CellMeasure {
	return CellMeasure{
		Steps:             r.Steps,
		Rounds:            r.Rounds,
		GuardEvals:        r.Stats.GuardEvals,
		Generated:         r.Generated,
		DeliveredValid:    r.DeliveredValid,
		DeliveredInvalid:  r.InvalidDelivered,
		MaxInvalidPerDest: r.MaxInvalidPerDst,
	}
}

// CellSpec names one cell of the experiment grid: an experiment ID
// (f1..ep, as in ssmfp-bench -experiment) and, for sweep experiments, the
// canonical case variant. Heavy marks the cells a -quick campaign skips.
type CellSpec struct {
	Exp     string `json:"exp"`
	Variant string `json:"variant,omitempty"`
	Heavy   bool   `json:"heavy,omitempty"`
}

// Key renders the spec as "exp" or "exp/variant" — the identifier used in
// campaign reports, -filter expressions, and obs cell events.
func (s CellSpec) Key() string {
	if s.Variant == "" {
		return s.Exp
	}
	return s.Exp + "/" + s.Variant
}

// heavyCells marks the grid's expensive cells (hundreds of milliseconds
// and up at the default seed): they dominate campaign wall time, so
// -quick skips them and the scheduler starts them first.
var heavyCells = map[string]bool{
	"f4":            true, // 500k-step census with per-step classification
	"p4/n8":         true,
	"p4/n10":        true,
	"p5/line-9":     true,
	"p5/star-8":     true,
	"p7/d8":         true,
	"mc":            true, // exhaustive state-space exploration
	"ep/grid-20x20": true, // naive baseline is Θ(n²·rules) per step
	"ep/random-100": true,
	"ep/random-400": true,
}

// CellGrid enumerates the full experiment grid in canonical order (the
// order ssmfp-bench prints, f1 → ep). The variants are derived from the
// same canonical case lists the experiments iterate, so the grid cannot
// drift from the experiments.
func CellGrid() []CellSpec {
	var cells []CellSpec
	add := func(exp, variant string) {
		s := CellSpec{Exp: exp, Variant: variant}
		s.Heavy = heavyCells[s.Key()]
		cells = append(cells, s)
	}
	add("f1", "")
	add("f2", "")
	add("f3", "")
	add("f4", "")
	for _, n := range P4Sizes {
		add("p4", fmt.Sprintf("n%d", n))
	}
	for _, c := range p5Cases() {
		add("p5", c.name)
	}
	for _, c := range p6Cases() {
		add("p6", c.name)
	}
	for _, d := range P7Diameters {
		add("p7", fmt.Sprintf("d%d", d))
	}
	add("x1", "")
	for _, c := range x2Cases() {
		add("x2", c.name)
	}
	for _, c := range x3Cases() {
		add("x3", c.slug)
	}
	for _, c := range x4Cases() {
		add("x4", c.slug)
	}
	for _, p := range x5Policies() {
		add("x5", p.String())
	}
	for _, w := range X6Waves {
		add("x6", fmt.Sprintf("w%d", w))
	}
	add("ra", "")
	add("mc", "")
	for _, c := range epCases() {
		add("ep", c.slug)
	}
	return cells
}

// CellResult is one cell's outcome: the acceptance verdict (the same
// criterion ssmfp-bench applies to the full experiment, restricted to
// this cell), the one-row table fragment (or Text for f3's rendered
// trace), and the measurements.
type CellResult struct {
	Spec    CellSpec
	OK      bool
	Table   *metrics.Table // nil for f3 (Text carries the trace)
	Text    string
	Measure CellMeasure
}

// RunCell executes one cell of the grid under the given options. The
// options' Cases and OnCell fields are overwritten (RunCell owns the
// case selection); Seed, Paranoid and Ctx are honored. Cells are
// independent: a cell's numbers do not depend on which other cells run,
// because sweep experiments tie per-case seeds to canonical case
// indices, not subset positions.
func RunCell(spec CellSpec, o Options) (CellResult, error) {
	res := CellResult{Spec: spec}
	o.Cases = nil
	if spec.Variant != "" {
		o.Cases = []string{spec.Variant}
	}
	var captured CellMeasure
	o.OnCell = func(_ string, m CellMeasure) { captured = m }

	oneRow := func(n int, what string) error {
		if n != 1 {
			return fmt.Errorf("sim: cell %s selected %d %s, want 1 (unknown variant?)", spec.Key(), n, what)
		}
		return nil
	}

	switch spec.Exp {
	case "f1":
		r := ExperimentF1()
		res.OK = r.Acyclic && r.AllTrees && r.Components == 5
		res.Table = r.Table
		res.Measure = CellMeasure{Extra: map[string]float64{"components": float64(r.Components)}}
	case "f2":
		r := ExperimentF2()
		res.OK = r.CleanAcyclic && r.CycleLen > 0
		res.Table = r.Table
		res.Measure = CellMeasure{Extra: map[string]float64{"cycle_len": float64(r.CycleLen)}}
	case "f3":
		r := ExperimentF3()
		res.OK = r.OK
		res.Text = fmt.Sprintf("== E-F3: Figure 3 execution replay ==\n%s\ndeliveries=%d (valid %d, invalid %d), m's color=%d, initial cycle=%v\n",
			r.Trace, r.Deliveries, r.ValidDelivered, r.InvalidDelivered, r.HelloColor, r.CycleInitially)
		res.Measure = CellMeasure{
			DeliveredValid:   r.ValidDelivered,
			DeliveredInvalid: r.InvalidDelivered,
			Extra:            map[string]float64{"hello_color": float64(r.HelloColor)},
		}
	case "f4":
		r, m := ExperimentF4With(o)
		res.OK = r.AllTypesHit && r.Consistent
		res.Table = r.Table
		res.Measure = m
	case "p4":
		n, err := variantInt(spec.Variant, "n")
		if err != nil {
			return res, err
		}
		r := ExperimentP4With(o, []int{n})
		if err := oneRow(len(r.Rows), "sizes"); err != nil {
			return res, err
		}
		res.OK = r.WithinBound
		res.Table = r.Table
		res.Measure = captured
	case "p5":
		r := ExperimentP5With(o)
		if err := oneRow(len(r.Rows), "topologies"); err != nil {
			return res, err
		}
		res.OK = r.WithinBound
		res.Table = r.Table
		res.Measure = captured
	case "p6":
		r := ExperimentP6With(o)
		if err := oneRow(len(r.Rows), "topologies"); err != nil {
			return res, err
		}
		res.OK = true
		res.Table = r.Table
		res.Measure = captured
	case "p7":
		d, err := variantInt(spec.Variant, "d")
		if err != nil {
			return res, err
		}
		r := ExperimentP7With(o, []int{d})
		if err := oneRow(len(r.Rows), "diameters"); err != nil {
			return res, err
		}
		res.OK = r.Within
		res.Table = r.Table
		res.Measure = captured
	case "x1":
		r, m := ExperimentX1With(o)
		res.OK = r.SSMFPOK
		res.Table = r.Table
		res.Measure = m
	case "x2":
		r := ExperimentX2With(o)
		if err := oneRow(len(r.Rows), "topologies"); err != nil {
			return res, err
		}
		res.OK = r.MaxOverhead < 8
		res.Table = r.Table
		res.Measure = captured
	case "x3":
		r := ExperimentX3With(o)
		if err := oneRow(len(r.Rows), "configurations"); err != nil {
			return res, err
		}
		res.OK = r.AllOK
		res.Table = r.Table
		res.Measure = captured
	case "x4":
		r := ExperimentX4With(o)
		if err := oneRow(len(r.Rows), "topologies"); err != nil {
			return res, err
		}
		res.OK = r.AllOK
		res.Table = r.Table
		res.Measure = captured
	case "x5":
		r := ExperimentX5With(o)
		if err := oneRow(len(r.Rows), "policies"); err != nil {
			return res, err
		}
		res.OK = r.Rows[0].AllDelivered
		res.Table = r.Table
		res.Measure = captured
	case "x6":
		r := ExperimentX6With(o)
		if err := oneRow(len(r.Rows), "storm intensities"); err != nil {
			return res, err
		}
		res.OK = r.AllOK
		res.Table = r.Table
		res.Measure = captured
	case "ra":
		r := ExperimentRAWith(o)
		res.OK = r.Tracks
		res.Table = r.Table
		extra := map[string]float64{}
		for _, row := range r.Rows {
			pfx := "fast"
			if row.Variant == "slow A (unit steps)" {
				pfx = "slow"
			}
			extra[pfx+"_ra_rounds"] = float64(row.RoutingRound)
			extra[pfx+"_probe_delay"] = float64(row.ProbeDelay)
		}
		res.Measure = CellMeasure{Extra: extra}
	case "mc":
		r := ExperimentMC()
		res.OK = r.AllOK
		res.Table = r.Table
		states := 0
		for _, row := range r.Rows {
			states += row.States
		}
		res.Measure = CellMeasure{Extra: map[string]float64{
			"states_total":      float64(states + r.LiteralR5States),
			"literal_r5_states": float64(r.LiteralR5States),
		}}
	case "ep":
		r := ExperimentEnginePerfWith(o)
		if err := oneRow(len(r.Rows), "topologies"); err != nil {
			return res, err
		}
		row := r.Rows[0]
		res.OK = row.Match && (spec.Variant != "grid-20x20" || row.Ratio >= 3)
		res.Table = r.Table
		res.Measure = captured
	default:
		return res, fmt.Errorf("sim: unknown experiment %q", spec.Exp)
	}
	return res, nil
}

// variantInt parses sweep variants of the form "<prefix><int>" ("n8",
// "d4").
func variantInt(variant, prefix string) (int, error) {
	if len(variant) <= len(prefix) || variant[:len(prefix)] != prefix {
		return 0, fmt.Errorf("sim: variant %q: want %s<int>", variant, prefix)
	}
	n, err := strconv.Atoi(variant[len(prefix):])
	if err != nil {
		return 0, fmt.Errorf("sim: variant %q: %v", variant, err)
	}
	return n, nil
}
