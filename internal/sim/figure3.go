package sim

import (
	"fmt"
	"strings"

	"ssmfp/internal/buffergraph"
	"ssmfp/internal/checker"
	"ssmfp/internal/core"
	"ssmfp/internal/daemon"
	"ssmfp/internal/graph"
	"ssmfp/internal/obs"
	"ssmfp/internal/routing"
	sm "ssmfp/internal/statemodel"
	"ssmfp/internal/trace"
)

// Figure3Names maps the reconstruction's processor IDs to the paper's
// names.
var Figure3Names = map[graph.ProcessID]string{0: "a", 1: "b", 2: "c", 3: "e"}

// F3Result is the outcome of the Figure 3 replay.
type F3Result struct {
	OK               bool
	Failures         []string
	CycleInitially   bool // buffer-graph cycle involving a and c, as in the figure
	HelloColor       int  // color given to m when it enters bufE_c (paper: 1)
	Deliveries       int  // total deliveries (paper: 3 — m, m', and the invalid)
	ValidDelivered   int
	InvalidDelivered int
	Trace            string
}

// ExperimentF3 reenacts the execution example of the paper's Figure 3 on
// the reconstructed 4-processor network (a, b, c, e with Δ = 3): an
// invalid message with color 0 sits in bufR_b(b); the routing tables start
// with the a↔c cycle for destination b; c emits a message m that receives
// color 1 (0 is occupied by the invalid at the neighbor b) and a second
// message m' sharing the invalid's payload; tables are repaired
// mid-execution; all three messages are delivered, the valid ones exactly
// once.
//
// Deviation from the paper's drawing: our concrete routing algorithm A
// detects a corrupted table entry locally and immediately, and has priority
// over SSMFP — so c's table is repaired before c's first emission (script
// step 1) rather than later, and messages flow c→b directly instead of
// taking the corrupted detour via a. The figure's phenomena — color
// avoidance, no merge of equal payloads, repair mid-flight, exactly-once —
// are all asserted.
func ExperimentF3() F3Result {
	r, _, _ := experimentF3(false)
	return r
}

// ExperimentF3Recorded runs the Figure 3 replay while recording its typed
// event stream and JSONL trace header. The returned header and events are
// exactly what Scenario.TraceOut would have streamed: feeding them through
// obs.WriteJSONL → obs.Load → trace.ReplayFrames reproduces the rendered
// trace in F3Result.Trace byte for byte (the golden round-trip).
func ExperimentF3Recorded() (F3Result, obs.Header, []obs.Event) {
	return experimentF3(true)
}

func experimentF3(record bool) (F3Result, obs.Header, []obs.Event) {
	g := graph.Figure3Network()
	const a, b, c = 0, 1, 2
	res := F3Result{}
	fail := func(format string, args ...any) {
		res.Failures = append(res.Failures, fmt.Sprintf(format, args...))
	}

	// --- Initial configuration --------------------------------------
	cfg := core.CleanConfig(g)
	node := func(p graph.ProcessID) *core.Node { return cfg[p].(*core.Node) }
	// Routing cycle a↔c for destination b.
	node(a).RT.Parent[b] = c
	node(a).RT.Dist[b] = 2
	node(c).RT.Parent[b] = a
	node(c).RT.Dist[b] = 2
	// Invalid message m' (payload "data") with color 0 in bufR_b(b).
	node(b).FW.Dests[b].BufR = &core.Message{
		Payload: "data", LastHop: c, Color: 0, UID: 1 << 50, Src: b, Dest: b, Valid: false,
	}
	// The higher layer at c wants to send m ("hello") and m' ("data").
	node(c).FW.Enqueue("hello", b)
	node(c).FW.Enqueue("data", b)

	// The corrupted tables must show the figure's buffer cycle.
	tables := []*routing.NodeState{node(0).RT, node(1).RT, node(2).RT, node(3).RT}
	bg := buffergraph.SSMFP(g, tables)
	cycle := bg.Restrict(b).FindCycle()
	res.CycleInitially = cycle != nil
	if !res.CycleInitially {
		fail("expected an initial buffer-graph cycle involving a and c")
	}

	// --- Script -------------------------------------------------------
	prog := core.FullProgram(g)
	script := []daemon.ScriptStep{
		{daemon.Act(c, "A@1")},  // (1) A repairs c (priority over SSMFP)
		{daemon.Act(c, "R1@1")}, // (2) c emits m = "hello" with color 0
		{daemon.Act(c, "R2@1")}, // (3) m moves to bufE_c — color 1: 0 is taken by the invalid at b
		{daemon.Act(c, "R1@1")}, // (4) c emits m' = "data", the invalid's payload
		{daemon.Act(b, "R2@1")}, // (5) b drains the invalid into bufE_b
		{daemon.Act(b, "R3@1")}, // (6) b pulls m into bufR_b
		{daemon.Act(b, "R6@1")}, // (7) the invalid "data" is delivered (counts toward the 2n bound)
		{daemon.Act(a, "A@1")},  // (8) A repairs a — the figure's mid-flight repair
		{daemon.Act(c, "R4@1")}, // (9) c erases m after its forwarding
		{daemon.Act(b, "R2@1")}, // (10) m reaches bufE_b
		{daemon.Act(b, "R6@1")}, // (11) m = "hello" delivered
		{daemon.Act(c, "R2@1")}, // (12) m' moves to bufE_c
		{daemon.Act(b, "R3@1")}, // (13) b pulls m'
		{daemon.Act(c, "R4@1")}, // (14) c erases m'
		{daemon.Act(b, "R2@1")}, // (15) m' reaches bufE_b
		{daemon.Act(b, "R6@1")}, // (16) m' = "data" delivered — not merged with the invalid
	}
	d := daemon.NewScripted(prog, script, nil)
	e := sm.NewEngine(g, prog, d, cfg)
	tr := checker.New(g)
	tr.RecordInitial(cfg)
	tr.Attach(e)
	rec := trace.NewRecorder(e, trace.NewRenderer(g, Figure3Names), b, 0)
	var hdr obs.Header
	var events []obs.Event
	if record {
		hdr = trace.HeaderFor(g, Figure3Names, cfg, "figure3", b)
		e.Obs().Subscribe(func(ev obs.Event) { events = append(events, ev) })
	}

	engNode := func(p graph.ProcessID) *core.Node { return e.PeekStateOf(p).(*core.Node) }
	for i := range script {
		if !e.Step() {
			fail("execution became terminal at script step %d", i+1)
			break
		}
		switch i + 1 {
		case 2:
			m := engNode(c).FW.Dests[b].BufR
			if m == nil || m.Payload != "hello" || m.Color != 0 || m.LastHop != c {
				fail("after (2): bufR_c(b) = %v, want (hello,q=c,c=0)", m)
			}
		case 3:
			m := engNode(c).FW.Dests[b].BufE
			if m == nil {
				fail("after (3): bufE_c(b) empty")
			} else {
				res.HelloColor = m.Color
				if m.Color != 1 {
					fail("after (3): m's color = %d, want 1 (0 occupied by the invalid at b)", m.Color)
				}
			}
		case 4:
			m := engNode(c).FW.Dests[b].BufR
			if m == nil || m.Payload != "data" || m.Color != 0 {
				fail("after (4): bufR_c(b) = %v, want (data,q=c,c=0)", m)
			}
		case 7:
			if got := tr.InvalidDeliveredTotal(); got != 1 {
				fail("after (7): invalid deliveries = %d, want 1", got)
			}
		case 8:
			if !routing.Correct(g, a, engNode(a).RT) {
				fail("after (8): a's table still incorrect")
			}
		case 11:
			if got := tr.DeliveredValid(); got != 1 {
				fail("after (11): valid deliveries = %d, want 1", got)
			}
		}
	}
	if !d.Exhausted() {
		fail("script not exhausted")
	}
	if !e.Terminal() {
		fail("configuration not terminal after the script; enabled: %s", describeEnabled(e, g))
	}
	res.Deliveries = len(tr.Deliveries())
	res.ValidDelivered = tr.DeliveredValid()
	res.InvalidDelivered = tr.InvalidDeliveredTotal()
	if res.Deliveries != 3 || res.ValidDelivered != 2 || res.InvalidDelivered != 1 {
		fail("deliveries = %d (valid %d, invalid %d), want 3 (2, 1)",
			res.Deliveries, res.ValidDelivered, res.InvalidDelivered)
	}
	if v := tr.Violations(); len(v) > 0 {
		fail("specification violations: %v", v)
	}
	if !core.Quiescent(snapshotStates(e, g)) {
		fail("buffers not empty at the end")
	}
	res.Trace = rec.String()
	res.OK = len(res.Failures) == 0
	return res, hdr, events
}

func snapshotStates(e *sm.Engine, g *graph.Graph) []sm.State {
	out := make([]sm.State, g.N())
	for p := 0; p < g.N(); p++ {
		out[p] = e.PeekStateOf(graph.ProcessID(p))
	}
	return out
}

func describeEnabled(e *sm.Engine, g *graph.Graph) string {
	var parts []string
	for p := 0; p < g.N(); p++ {
		if names := e.EnabledRuleNames(graph.ProcessID(p)); len(names) > 0 {
			parts = append(parts, fmt.Sprintf("p%d:%v", p, names))
		}
	}
	return strings.Join(parts, " ")
}
