package sim

import (
	"bytes"
	"strings"
	"testing"

	"ssmfp/internal/core"
	"ssmfp/internal/graph"
	"ssmfp/internal/obs"
	"ssmfp/internal/trace"
	"ssmfp/internal/workload"
)

// TestF3TraceRoundTripsThroughJSONL is the golden round-trip of the
// observability layer: record the Figure 3 replay, serialize its event
// stream to JSONL, load it back, fold it over the header's initial
// configuration, and require the re-rendered frames to be byte-identical
// to the live recording.
func TestF3TraceRoundTripsThroughJSONL(t *testing.T) {
	res, hdr, events := ExperimentF3Recorded()
	if !res.OK {
		t.Fatalf("F3 replay failed: %v", res.Failures)
	}
	if len(events) == 0 {
		t.Fatal("recorded run produced no typed events")
	}

	var buf bytes.Buffer
	if err := obs.WriteJSONL(&buf, hdr, events); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	h, evs, err := obs.Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(evs) != len(events) {
		t.Fatalf("loaded %d events, wrote %d", len(evs), len(events))
	}

	g, err := trace.GraphFromHeader(h)
	if err != nil {
		t.Fatalf("GraphFromHeader: %v", err)
	}
	r := trace.NewRenderer(g, trace.NamesFromHeader(h))
	frames, err := trace.ReplayFrames(r, h, evs, graph.ProcessID(h.Dest))
	if err != nil {
		t.Fatalf("ReplayFrames: %v", err)
	}
	if got := trace.RenderFrames(frames); got != res.Trace {
		t.Fatalf("replayed trace differs from live recording:\n--- live ---\n%s\n--- replay ---\n%s", res.Trace, got)
	}
}

// TestScenarioTraceAndLifecycle drives a grid scenario with both
// observability consumers attached: the JSONL sink must produce a loadable
// stream and the lifecycle tracker a report whose delivery counts agree
// with the specification checker.
func TestScenarioTraceAndLifecycle(t *testing.T) {
	g := graph.Grid(3, 3)
	var buf bytes.Buffer
	res := Run(Scenario{
		Name:      "grid-obs",
		Graph:     g,
		Corrupt:   &core.DefaultCorrupt,
		Daemon:    CentralRandom,
		Seed:      11,
		Workload:  workload.AllToOne(g, 4, 2),
		MaxSteps:  500_000,
		TraceOut:  &buf,
		TraceDest: 4,
		Lifecycle: true,
	})
	if !res.OK() {
		t.Fatalf("scenario failed: %+v", res)
	}
	if res.TraceErr != nil {
		t.Fatalf("trace sink error: %v", res.TraceErr)
	}

	h, evs, err := obs.Load(&buf)
	if err != nil {
		t.Fatalf("written trace does not load: %v", err)
	}
	if h.Scenario != "grid-obs" || h.N != g.N() || h.Dest != 4 {
		t.Fatalf("header = %+v", h)
	}
	if len(evs) != res.TraceEvents {
		t.Fatalf("loaded %d events, sink reported %d", len(evs), res.TraceEvents)
	}

	if res.Lifecycle == nil {
		t.Fatal("no lifecycle report")
	}
	rep := res.Lifecycle
	if rep.Messages != res.Generated || rep.Delivered != res.DeliveredValid {
		t.Fatalf("lifecycle counts gen=%d dlv=%d, checker gen=%d dlv=%d",
			rep.Messages, rep.Delivered, res.Generated, res.DeliveredValid)
	}
	if rep.DeliveryRounds.N != res.DeliveredValid {
		t.Fatalf("delivery summary over %d messages, want %d", rep.DeliveryRounds.N, res.DeliveredValid)
	}
	// The lifecycle latencies must agree with the checker's (both measure
	// generation round → delivery round of valid messages).
	if rep.DeliveryRounds.Mean != res.LatencyRounds.Mean {
		t.Fatalf("lifecycle mean latency %v, checker %v", rep.DeliveryRounds.Mean, res.LatencyRounds.Mean)
	}
	if rep.DelayRounds.N == 0 || rep.WaitingRounds.N == 0 {
		t.Fatalf("delay/waiting summaries empty: %+v", rep)
	}
	for _, tl := range rep.Timelines {
		if !tl.Delivered {
			t.Fatalf("undelivered timeline in an OK run: %+v", tl)
		}
		if tl.DeliverRound < tl.GenRound {
			t.Fatalf("timeline delivers before generation: %+v", tl)
		}
	}
}

// TestScenarioStatusCallback checks the OnStatus hook fires and ends on
// final numbers.
func TestScenarioStatusCallback(t *testing.T) {
	g := graph.Line(4)
	var last Status
	calls := 0
	res := Run(Scenario{
		Name:        "status",
		Graph:       g,
		Daemon:      Synchronous,
		Workload:    workload.SinglePair(0, 3, 2),
		MaxSteps:    100_000,
		OnStatus:    func(st Status) { last = st; calls++ },
		StatusEvery: 1,
	})
	if !res.OK() {
		t.Fatalf("scenario failed: %+v", res)
	}
	if calls == 0 {
		t.Fatal("OnStatus never called")
	}
	if last.Steps != res.Steps || last.Delivered != res.DeliveredValid {
		t.Fatalf("final status %+v does not match result steps=%d dlv=%d", last, res.Steps, res.DeliveredValid)
	}
	if last.Moves["R6@3"] == 0 {
		t.Fatalf("status move counts missing deliveries: %v", last.Moves)
	}
	if !strings.HasPrefix(last.Name, "status") {
		t.Fatalf("status name = %q", last.Name)
	}
}
