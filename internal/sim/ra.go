package sim

import (
	"math/rand"

	"ssmfp/internal/checker"
	"ssmfp/internal/core"
	"ssmfp/internal/graph"
	"ssmfp/internal/metrics"
	"ssmfp/internal/routing"
	sm "ssmfp/internal/statemodel"
)

// RARow is one routing-variant measurement.
type RARow struct {
	Variant      string
	RoutingRound int // R_A: rounds until every table is canonical
	ProbeDelay   int // rounds before the probe's R1 fires (Prop. 6 delay)
	ProbeOK      bool
}

// RAResult isolates the max(R_A, ·) term of Propositions 5-7: the same
// corrupted scenario is run with the normal routing algorithm A and with a
// deliberately slowed variant (routing.NewSlowProgram). A is prioritized,
// so a processor whose table is still wrong cannot execute R1; the probe's
// generation delay (Prop. 6) therefore tracks the source's share of R_A —
// the R_A branch of the paper's O(max(R_A, Δ^D)) bounds, exhibited
// empirically. (End-to-end latency does NOT have to track global R_A: a
// message only needs the tables along its own path, which usually repair
// long before the whole network is silent — a nuance the bound hides.)
type RAResult struct {
	Rows   []RARow
	Tracks bool // slow R_A > fast R_A and slow latency > fast latency
	Table  *metrics.Table
}

// ExperimentRA runs the ablation.
func ExperimentRA(seed int64) RAResult {
	return ExperimentRAWith(Options{Seed: seed})
}

// ExperimentRAWith runs the ablation with explicit options.
func ExperimentRAWith(o Options) RAResult {
	seed := o.Seed
	res := RAResult{}
	t := metrics.NewTable("E-RA: generation delay tracks R_A (the max(R_A, ·) term of Props. 5-7)",
		"routing variant", "R_A (rounds)", "probe generation delay (rounds)", "probe delivered")

	run := func(name string, prog func(*graph.Graph, routing.Accessor) sm.Program) RARow {
		g := graph.Grid(3, 3)
		rng := rand.New(rand.NewSource(seed))
		// Corrupt only the routing tables, with maximal distance error at
		// the probe source so its local repair work dominates; buffers
		// start clean.
		cfg := core.CleanConfig(g)
		for p := 0; p < g.N(); p++ {
			cfg[p].(*core.Node).RT = routing.RandomState(g, graph.ProcessID(p), rng)
		}
		src := cfg[0].(*core.Node).RT
		for d := 1; d < g.N(); d++ {
			src.Dist[d] = g.N() // worst-case error: the slow variant pays per unit
		}
		cfg[0].(*core.Node).FW.Enqueue("ra-probe", graph.ProcessID(g.N()-1))

		full := sm.Compose(prog(g, core.RoutingOf), core.NewProgram(g))
		e := sm.NewEngine(g, full, NewDaemon(CentralRoundRobin, seed, g.N()), cfg, o.engineOpts()...)
		tr := checker.New(g)
		tr.Attach(e)

		row := RARow{Variant: name, RoutingRound: -1}
		for i := 0; i < 10_000_000; i++ {
			if i%1024 == 0 && o.cancelled() {
				break
			}
			if row.RoutingRound < 0 && routingCorrect(g, e) {
				row.RoutingRound = e.Rounds()
			}
			if !e.Step() {
				break
			}
		}
		if gens := tr.GenerationRounds(); len(gens) == 1 {
			row.ProbeDelay = gens[0]
			row.ProbeOK = tr.AllValidDelivered() && len(tr.Violations()) == 0
		}
		return row
	}

	fast := run("fast A (jump to target)", routing.NewProgram)
	slow := run("slow A (unit steps)", routing.NewSlowProgram)
	res.Rows = []RARow{fast, slow}
	res.Tracks = fast.ProbeOK && slow.ProbeOK &&
		slow.RoutingRound > fast.RoutingRound &&
		slow.ProbeDelay > fast.ProbeDelay
	for _, r := range res.Rows {
		t.AddRow(r.Variant, r.RoutingRound, r.ProbeDelay, r.ProbeOK)
	}
	res.Table = t
	return res
}
