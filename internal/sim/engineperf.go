package sim

import (
	"fmt"
	"math/rand"

	"ssmfp/internal/core"
	"ssmfp/internal/graph"
	"ssmfp/internal/metrics"
	sm "ssmfp/internal/statemodel"
	"ssmfp/internal/workload"
)

// --- E-EP: incremental enabled-set engine vs naive rescan --------------

// EPRow is one sweep point of experiment E-EP.
type EPRow struct {
	Topology        string
	N               int
	Steps           int
	NaivePerStep    float64 // guard evaluations per step, full rescan
	IncPerStep      float64 // guard evaluations per step, incremental
	Ratio           float64 // naive / incremental
	ProcsSkippedPct float64 // share of processor evaluations the cache avoided
	Match           bool    // both modes produced identical executions
}

// EPResult compares the incremental enabled-set engine against the naive
// full rescan on the composed SSMFP+routing program. The two modes must
// produce bit-identical executions (same steps, same per-rule move
// counts); the payoff column is guard evaluations per step, which for the
// naive scan is Θ(n · rules) and for the incremental engine is
// proportional to the executed processors' neighborhoods.
type EPResult struct {
	Rows     []EPRow
	AllMatch bool
	Table    *metrics.Table
}

// epRun drives one engine over the scenario and reports its stats plus an
// execution fingerprint (per-rule move counts) for the determinism check.
// Self-check is off in both modes so the guard-evaluation counts are the
// modes' real costs, not the harness's.
func epRun(g *graph.Graph, seed int64, steps int, incremental bool) (sm.Stats, int, map[string]int) {
	cfg := core.CleanConfig(g)
	e := sm.NewEngine(g, core.FullProgram(g), NewDaemon(CentralRandom, seed, g.N()), cfg,
		sm.WithIncremental(incremental), sm.WithSelfCheck(false))
	rng := rand.New(rand.NewSource(seed))
	in := workload.NewInjector(workload.RandomPairs(g, g.N(), rng),
		func(st sm.State) workload.Enqueuer { return st.(*core.Node).FW })
	in.Tick(e)
	ran, _ := e.Run(steps, nil)
	return e.Stats(), ran, e.MoveCounts()
}

func sameMoves(a, b map[string]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// ExperimentEnginePerf sweeps grids and random connected graphs at
// n ∈ {25, 100, 400} under a central random daemon with a random-pairs
// workload. Step caps shrink with n to keep the naive baseline affordable
// (it costs Θ(n² · n) guard evaluations overall: n processors × ~6n+1
// rules each, every step).
func ExperimentEnginePerf(seed int64) EPResult {
	res := EPResult{AllMatch: true}
	t := metrics.NewTable("E-EP: guard evaluations per step — naive rescan vs incremental enabled set",
		"topology", "n", "steps", "naive evals/step", "incremental evals/step", "ratio", "procs skipped", "identical run")
	type tc struct {
		name  string
		g     *graph.Graph
		steps int
	}
	rng := rand.New(rand.NewSource(seed))
	cases := []tc{
		{"grid 5x5", graph.Grid(5, 5), 200},
		{"grid 10x10", graph.Grid(10, 10), 80},
		{"grid 20x20", graph.Grid(20, 20), 24},
		{"random n=25 m=50", graph.RandomConnected(25, 50, rng), 200},
		{"random n=100 m=200", graph.RandomConnected(100, 200, rng), 80},
		{"random n=400 m=800", graph.RandomConnected(400, 800, rng), 24},
	}
	for i, c := range cases {
		runSeed := seed + int64(i)
		nStats, nSteps, nMoves := epRun(c.g, runSeed, c.steps, false)
		iStats, iSteps, iMoves := epRun(c.g, runSeed, c.steps, true)
		match := nSteps == iSteps && sameMoves(nMoves, iMoves)
		if !match {
			res.AllMatch = false
		}
		steps := iSteps
		if steps == 0 {
			steps = 1
		}
		evaluated := iStats.ProcsEvaluated + iStats.ProcsSkipped
		skippedPct := 0.0
		if evaluated > 0 {
			skippedPct = 100 * float64(iStats.ProcsSkipped) / float64(evaluated)
		}
		row := EPRow{
			Topology:        c.name,
			N:               c.g.N(),
			Steps:           iSteps,
			NaivePerStep:    float64(nStats.GuardEvals) / float64(steps),
			IncPerStep:      float64(iStats.GuardEvals) / float64(steps),
			ProcsSkippedPct: skippedPct,
			Match:           match,
		}
		if row.IncPerStep > 0 {
			row.Ratio = row.NaivePerStep / row.IncPerStep
		}
		res.Rows = append(res.Rows, row)
		t.AddRow(row.Topology, row.N, row.Steps,
			fmt.Sprintf("%.0f", row.NaivePerStep),
			fmt.Sprintf("%.0f", row.IncPerStep),
			fmt.Sprintf("%.1fx", row.Ratio),
			fmt.Sprintf("%.1f%%", row.ProcsSkippedPct),
			row.Match)
	}
	res.Table = t
	return res
}
