package sim

import (
	"fmt"
	"math/rand"

	"ssmfp/internal/core"
	"ssmfp/internal/graph"
	"ssmfp/internal/metrics"
	sm "ssmfp/internal/statemodel"
	"ssmfp/internal/workload"
)

// --- E-EP: incremental enabled-set engine vs naive rescan --------------

// EPRow is one sweep point of experiment E-EP.
type EPRow struct {
	Topology        string
	N               int
	Steps           int
	NaivePerStep    float64 // guard evaluations per step, full rescan
	IncPerStep      float64 // guard evaluations per step, incremental
	Ratio           float64 // naive / incremental
	ProcsSkippedPct float64 // share of processor evaluations the cache avoided
	Match           bool    // both modes produced identical executions
}

// EPResult compares the incremental enabled-set engine against the naive
// full rescan on the composed SSMFP+routing program. The two modes must
// produce bit-identical executions (same steps, same per-rule move
// counts); the payoff column is guard evaluations per step, which for the
// naive scan is Θ(n · rules) and for the incremental engine is
// proportional to the executed processors' neighborhoods.
type EPResult struct {
	Rows     []EPRow
	AllMatch bool
	Table    *metrics.Table
}

// epRun drives one engine over the scenario and reports its stats plus an
// execution fingerprint (per-rule move counts) for the determinism check.
// Self-check is off in both modes so the guard-evaluation counts are the
// modes' real costs, not the harness's. shards > 1 runs the engine on the
// sharded parallel path; the fingerprint comparison then doubles as the
// sweep-wide determinism oracle for the parallel engine.
func epRun(g *graph.Graph, seed int64, steps int, incremental bool, shards int) (sm.Stats, int, map[string]int) {
	cfg := core.CleanConfig(g)
	opts := []sm.EngineOption{sm.WithIncremental(incremental), sm.WithSelfCheck(false)}
	if shards > 1 {
		opts = append(opts, sm.WithShards(shards, seed))
	}
	e := sm.NewEngine(g, core.FullProgram(g), NewDaemon(CentralRandom, seed, g.N()), cfg, opts...)
	rng := rand.New(rand.NewSource(seed))
	in := workload.NewInjector(workload.RandomPairs(g, g.N(), rng),
		func(st sm.State) workload.Enqueuer { return st.(*core.Node).FW })
	in.Tick(e)
	ran, _ := e.Run(steps, nil)
	return e.Stats(), ran, e.MoveCounts()
}

func sameMoves(a, b map[string]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// epCase is one sweep point of E-EP. Random graphs derive from a per-case
// seed offset (not one rng shared across the sweep) so a case builds the
// same graph whether it runs alone as a campaign cell or inside the full
// sweep.
type epCase struct {
	slug    string
	display string
	steps   int
	make    func(seed int64) *graph.Graph
}

// epCases is the canonical case list of E-EP. Step caps shrink with n to
// keep the naive baseline affordable (it costs Θ(n² · n) guard
// evaluations overall: n processors × ~6n+1 rules each, every step).
func epCases() []epCase {
	randomCase := func(n, m, off int) func(int64) *graph.Graph {
		return func(seed int64) *graph.Graph {
			return graph.RandomConnected(n, m, rand.New(rand.NewSource(seed+int64(off))))
		}
	}
	return []epCase{
		{"grid-5x5", "grid 5x5", 200, func(int64) *graph.Graph { return graph.Grid(5, 5) }},
		{"grid-10x10", "grid 10x10", 80, func(int64) *graph.Graph { return graph.Grid(10, 10) }},
		{"grid-20x20", "grid 20x20", 24, func(int64) *graph.Graph { return graph.Grid(20, 20) }},
		{"random-25", "random n=25 m=50", 200, randomCase(25, 50, 103)},
		{"random-100", "random n=100 m=200", 80, randomCase(100, 200, 104)},
		{"random-400", "random n=400 m=800", 24, randomCase(400, 800, 105)},
	}
}

// epCell runs one canonical case of E-EP: the same scenario through the
// naive and the incremental engine, comparing fingerprints. Self-check
// stays off in both modes regardless of paranoia so the guard-evaluation
// counts are the modes' real costs, not the harness's.
func epCell(o Options, idx int) (EPRow, CellMeasure) {
	c := epCases()[idx]
	g := c.make(o.Seed)
	runSeed := o.Seed + int64(idx)
	nStats, nSteps, nMoves := epRun(g, runSeed, c.steps, false, 1)
	iStats, iSteps, iMoves := epRun(g, runSeed, c.steps, true, o.Shards)
	match := nSteps == iSteps && sameMoves(nMoves, iMoves)
	steps := iSteps
	if steps == 0 {
		steps = 1
	}
	evaluated := iStats.ProcsEvaluated + iStats.ProcsSkipped
	skippedPct := 0.0
	if evaluated > 0 {
		skippedPct = 100 * float64(iStats.ProcsSkipped) / float64(evaluated)
	}
	row := EPRow{
		Topology:        c.display,
		N:               g.N(),
		Steps:           iSteps,
		NaivePerStep:    float64(nStats.GuardEvals) / float64(steps),
		IncPerStep:      float64(iStats.GuardEvals) / float64(steps),
		ProcsSkippedPct: skippedPct,
		Match:           match,
	}
	if row.IncPerStep > 0 {
		row.Ratio = row.NaivePerStep / row.IncPerStep
	}
	return row, CellMeasure{
		Steps:      iSteps,
		GuardEvals: iStats.GuardEvals,
		Extra:      map[string]float64{"ratio": row.Ratio, "naive_guard_evals": float64(nStats.GuardEvals)},
	}
}

// ExperimentEnginePerf sweeps grids and random connected graphs at
// n ∈ {25, 100, 400} under a central random daemon with a random-pairs
// workload.
func ExperimentEnginePerf(seed int64) EPResult {
	return ExperimentEnginePerfWith(Options{Seed: seed})
}

// ExperimentEnginePerfWith runs the E-EP sweep with explicit options;
// Options.Cases uses the slugs (grid-5x5 ... random-400).
func ExperimentEnginePerfWith(o Options) EPResult {
	res := EPResult{AllMatch: true}
	t := metrics.NewTable("E-EP: guard evaluations per step — naive rescan vs incremental enabled set",
		"topology", "n", "steps", "naive evals/step", "incremental evals/step", "ratio", "procs skipped", "identical run")
	for i, c := range epCases() {
		if !o.wants(c.slug) || o.cancelled() {
			continue
		}
		row, m := epCell(o, i)
		o.report(c.slug, m)
		if !row.Match {
			res.AllMatch = false
		}
		res.Rows = append(res.Rows, row)
		t.AddRow(row.Topology, row.N, row.Steps,
			fmt.Sprintf("%.0f", row.NaivePerStep),
			fmt.Sprintf("%.0f", row.IncPerStep),
			fmt.Sprintf("%.1fx", row.Ratio),
			fmt.Sprintf("%.1f%%", row.ProcsSkippedPct),
			row.Match)
	}
	res.Table = t
	return res
}
